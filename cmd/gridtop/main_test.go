package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestReplayDeterministic pins the dashboard's core promise: two replays
// of the same seed render byte-identical frames, including the alert
// transitions and black-box listings.
func TestReplayDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := run(&buf, 3, 0.75, time.Minute, true, 2); err != nil {
			t.Fatalf("run: %v", err)
		}
		return buf.String()
	}
	a := render()
	if b := render(); a != b {
		t.Fatalf("replays differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	for _, want := range []string{
		"fire broker-orphans",
		"ALERTING: [broker-orphans]",
		"resolve broker-orphans",
		"black boxes:",
		"first page broker-orphans",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("replay missing %q:\n%s", want, a)
		}
	}
}

// TestFaultFreeReplayIsSilent pins the other half: a fault-free replay
// renders no alerts and freezes no black boxes.
func TestFaultFreeReplayIsSilent(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 3, 0, time.Minute, true, 3); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "summary: 0 alert fires, 0 resolves") || strings.Contains(out, "ALERTING") {
		t.Fatalf("fault-free replay alerted:\n%s", out)
	}
	if !strings.Contains(out, "black boxes: 0 frozen") {
		t.Fatalf("fault-free replay froze a black box:\n%s", out)
	}
}
