// Gridtop is a text dashboard over the grid's observability plane. It
// replays the deterministic chaos workload with the SLO engine armed and
// renders the run frame by frame in virtual time: gauge levels, alert
// transitions, the set of rules alerting at each frame, and the
// flight-recorder black boxes each fire froze. Because the simulation is
// deterministic, the "live" view and a replay of the same seed are the
// same bytes — what you see after an incident is exactly what a live
// screen would have shown.
//
// Usage:
//
//	gridtop [-seed N] [-rate R] [-step D] [-smoke] [-tail N]
//
// -rate is the injected per-machine fault probability (default 0.75 with
// -smoke, otherwise 1). -step is the frame interval (default: the run
// divided into 12 frames). -tail caps how many events of each black box
// are printed (0 disables dump listings).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"cogrid/internal/experiments"
	"cogrid/internal/grid"
)

func main() {
	seed := flag.Int64("seed", 0, "scenario seed (0: the study's stock seed)")
	rate := flag.Float64("rate", -1, "fault rate to replay (-1: 1, or 0.75 with -smoke)")
	step := flag.Duration("step", 0, "frame interval (0: auto, 12 frames)")
	smoke := flag.Bool("smoke", false, "replay the seconds-long CI configuration")
	tail := flag.Int("tail", 3, "black-box events to print per dump (0: skip dumps)")
	flag.Parse()
	if err := run(os.Stdout, *seed, *rate, *step, *smoke, *tail); err != nil {
		fmt.Fprintln(os.Stderr, "gridtop:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, seed int64, rate float64, step time.Duration, smoke bool, tail int) error {
	cfg := experiments.SLOConfig{Chaos: experiments.ChaosConfig{Seed: seed}}
	if smoke {
		cfg = experiments.SLOSmokeConfig(seed)
	}
	if rate < 0 {
		rate = 1
		if smoke {
			rate = 0.75
		}
	}
	row, g, eng := experiments.SLORun(cfg, rate)
	end := g.Sim.Now()
	if step <= 0 {
		step = (end / 12).Round(10 * time.Second)
		if step <= 0 {
			step = 10 * time.Second
		}
	}

	fmt.Fprintf(w, "gridtop — chaos replay, seed %d, fault rate %.2f, %d faults (first at %v)\n",
		cfg.Chaos.Seed, rate, row.Faults, row.FirstFault)
	fmt.Fprintf(w, "%d requests: %d completed, %d failed; run ends at %v\n\n",
		row.Requests, row.Completed, row.Failed, end)

	alerts := eng.Alerts()
	active := map[string]bool{}
	shown := 0
	for t := step; ; t += step {
		if t > end {
			t = end
		}
		frameHeader(w, g, t)
		for shown < len(alerts) && alerts[shown].At <= t {
			a := alerts[shown]
			fmt.Fprintf(w, "   [%v] %s %s (%s): %s\n", a.At, a.State, a.Rule, a.Severity, a.Detail)
			active[a.Rule] = a.State == "fire"
			shown++
		}
		if names := activeNames(active); len(names) > 0 {
			fmt.Fprintf(w, "   ALERTING: %v\n", names)
		}
		if t == end {
			break
		}
	}

	fmt.Fprintf(w, "\nsummary: %d alert fires, %d resolves", row.Alerts, row.Resolves)
	if row.Detected {
		fmt.Fprintf(w, "; first page %s after %v", row.FirstRule, row.DetectionLag)
	}
	fmt.Fprintln(w)
	h := g.Hists.H("broker.request.latency")
	if h.Count() > 0 {
		fmt.Fprintf(w, "request latency: p50 %v  p99 %v  max %v  (%d served)\n",
			time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.99)),
			time.Duration(h.Max()), h.Count())
	}
	dumps := g.Flight.Dumps()
	fmt.Fprintf(w, "black boxes: %d frozen, %d beyond retention\n", len(dumps), g.Flight.Skipped())
	if tail > 0 {
		for _, d := range dumps {
			fmt.Fprintf(w, "  [%v] %s (%s) — %d events\n", d.At, d.Trigger, d.Detail, len(d.Events))
			events := d.Events
			if len(events) > tail {
				events = events[len(events)-tail:]
			}
			for _, ev := range events {
				fmt.Fprintf(w, "      %v %s.%s proc=%s\n", ev.At, ev.Cat, ev.Name, ev.Proc)
			}
		}
	}
	return nil
}

// frameHeader renders one frame's gauge line: the levels the SLO rules
// watch, read from the delta logs at exactly t.
func frameHeader(w io.Writer, g *grid.Grid, t time.Duration) {
	fmt.Fprintf(w, "── t=%-8v queue=%g orphans=%g drops=%g active-alerts=%g\n", t,
		g.Gauges.G("broker.queue_depth@broker0").Value(t),
		g.Gauges.G("broker.orphans@broker0").Value(t),
		g.Gauges.G("transport.drops").Value(t),
		g.Gauges.G("slo.alerts.active").Value(t))
}

func activeNames(active map[string]bool) []string {
	var names []string
	for rule, on := range active {
		if on {
			names = append(names, rule)
		}
	}
	sort.Strings(names)
	return names
}
