// Command dstgrid runs the deterministic simulation-testing harness:
// randomized co-allocation scenarios generated from seeds, executed on
// the virtual-time kernel, audited against the protocol invariant
// library, and shrunk to minimal replayable reproductions on violation.
//
// Usage:
//
//	dstgrid -seeds 200 -smoke          # sweep seeds 1..200, small profile
//	dstgrid -fed-seeds 50 -smoke       # sweep federated broker scenarios
//	dstgrid -seed 42                   # one seed, full profile
//	dstgrid -scenario '<json>'         # replay an exact scenario
//	dstgrid -corpus internal/dst/testdata  # re-run the regression corpus
//	dstgrid -seeds 200 -kernel heap    # same sweep on the reference timer engine
//
// The process exits non-zero if any run violates an invariant. Output is
// deterministic: the same seeds produce byte-identical reports — on
// either timer engine (-kernel wheel|heap), which is the property the
// kernel-equivalence suite in internal/vtime locks down byte for byte.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cogrid/internal/dst"
	"cogrid/internal/vtime"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 0, "sweep seeds 1..N")
		fedSeeds = flag.Int("fed-seeds", 0, "sweep seeds 1..N forcing federated broker scenarios")
		seed     = flag.Int64("seed", 0, "run a single seed")
		scenario = flag.String("scenario", "", "replay an exact scenario (JSON, or @file)")
		corpus   = flag.String("corpus", "", "re-run every .json scenario in a directory")
		smoke    = flag.Bool("smoke", false, "use the small smoke profile")
		kernel   = flag.String("kernel", "wheel", "kernel timer engine: wheel (production) or heap (reference)")
		jsonOut  = flag.Bool("json", false, "emit one JSON line per run")
		shrink   = flag.Bool("shrink", true, "shrink violating scenarios to minimal reproductions")
	)
	flag.Parse()

	engine, err := vtime.ParseTimerEngine(*kernel)
	if err != nil {
		fatalf("dstgrid: %v", err)
	}
	opts := dst.RunOptions{Engine: engine}

	profile := dst.DefaultProfile
	if *smoke {
		profile = dst.SmokeProfile
	}
	budget := 0
	if *shrink {
		budget = dst.DefaultShrinkBudget
	}

	violated := false
	var reports []dst.SeedReport
	emit := func(r dst.SeedReport) {
		reports = append(reports, r)
		if *jsonOut {
			fmt.Println(r.JSON())
		} else {
			fmt.Print(r.Text())
		}
		if !r.Result.OK() {
			violated = true
		}
	}

	ran := false
	if *scenario != "" {
		ran = true
		runScenario(*scenario, opts, budget, *jsonOut, &violated)
	}
	if *corpus != "" {
		ran = true
		files, err := filepath.Glob(filepath.Join(*corpus, "*.json"))
		if err != nil || len(files) == 0 {
			fatalf("dstgrid: no scenarios under %s", *corpus)
		}
		sort.Strings(files)
		for _, f := range files {
			runScenario("@"+f, opts, budget, *jsonOut, &violated)
		}
	}
	if *seed != 0 {
		ran = true
		emit(dst.RunSeed(*seed, profile, opts, budget))
	}
	if *seeds > 0 {
		ran = true
		for s := int64(1); s <= int64(*seeds); s++ {
			emit(dst.RunSeed(s, profile, opts, budget))
		}
	}
	if *fedSeeds > 0 {
		ran = true
		fp := profile
		fp.BrokerProb, fp.FedProb = 1, 1
		for s := int64(1); s <= int64(*fedSeeds); s++ {
			emit(dst.RunSeed(s, fp, opts, budget))
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if len(reports) > 0 && !*jsonOut {
		fmt.Println(dst.Summarize(reports))
	}
	if violated {
		os.Exit(1)
	}
}

// runScenario replays one explicit scenario (inline JSON or @file).
func runScenario(src string, opts dst.RunOptions, budget int, jsonOut bool, violated *bool) {
	data := []byte(src)
	name := "scenario"
	if strings.HasPrefix(src, "@") {
		b, err := os.ReadFile(src[1:])
		if err != nil {
			fatalf("dstgrid: %v", err)
		}
		data, name = b, filepath.Base(src[1:])
	}
	sc, err := dst.ParseScenario(data)
	if err != nil {
		fatalf("dstgrid: %v", err)
	}
	res, err := dst.Run(sc, opts)
	if err != nil {
		fatalf("dstgrid: %v", err)
	}
	rep := dst.SeedReport{Seed: sc.Seed, Result: res}
	if len(res.Violations) > 0 && budget != 0 {
		sr := dst.Shrink(sc, opts, budget)
		rep.Shrunk = &sr
	}
	if jsonOut {
		fmt.Println(rep.JSON())
	} else {
		fmt.Printf("%s: ", name)
		fmt.Print(rep.Text())
	}
	if !res.OK() {
		*violated = true
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintln(os.Stderr, fmt.Sprintf(format, args...))
	os.Exit(1)
}
