// Command dstgrid runs the deterministic simulation-testing harness:
// randomized co-allocation scenarios generated from seeds, executed on
// the virtual-time kernel, audited against the protocol invariant
// library, and shrunk to minimal replayable reproductions on violation.
//
// Usage:
//
//	dstgrid -seeds 200 -smoke          # sweep seeds 1..200, small profile
//	dstgrid -fed-seeds 50 -smoke       # sweep federated broker scenarios
//	dstgrid -seed 42                   # one seed, full profile
//	dstgrid -scenario '<json>'         # replay an exact scenario
//	dstgrid -corpus internal/dst/testdata  # re-run the regression corpus
//
// The process exits non-zero if any run violates an invariant. Output is
// deterministic: the same seeds produce byte-identical reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cogrid/internal/dst"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 0, "sweep seeds 1..N")
		fedSeeds = flag.Int("fed-seeds", 0, "sweep seeds 1..N forcing federated broker scenarios")
		seed     = flag.Int64("seed", 0, "run a single seed")
		scenario = flag.String("scenario", "", "replay an exact scenario (JSON, or @file)")
		corpus   = flag.String("corpus", "", "re-run every .json scenario in a directory")
		smoke    = flag.Bool("smoke", false, "use the small smoke profile")
		jsonOut  = flag.Bool("json", false, "emit one JSON line per run")
		shrink   = flag.Bool("shrink", true, "shrink violating scenarios to minimal reproductions")
	)
	flag.Parse()

	profile := dst.DefaultProfile
	if *smoke {
		profile = dst.SmokeProfile
	}
	budget := 0
	if *shrink {
		budget = dst.DefaultShrinkBudget
	}

	violated := false
	var reports []dst.SeedReport
	emit := func(r dst.SeedReport) {
		reports = append(reports, r)
		if *jsonOut {
			fmt.Println(r.JSON())
		} else {
			fmt.Print(r.Text())
		}
		if !r.Result.OK() {
			violated = true
		}
	}

	ran := false
	if *scenario != "" {
		ran = true
		runScenario(*scenario, budget, *jsonOut, &violated)
	}
	if *corpus != "" {
		ran = true
		files, err := filepath.Glob(filepath.Join(*corpus, "*.json"))
		if err != nil || len(files) == 0 {
			fatalf("dstgrid: no scenarios under %s", *corpus)
		}
		sort.Strings(files)
		for _, f := range files {
			runScenario("@"+f, budget, *jsonOut, &violated)
		}
	}
	if *seed != 0 {
		ran = true
		emit(dst.RunSeed(*seed, profile, dst.RunOptions{}, budget))
	}
	if *seeds > 0 {
		ran = true
		for s := int64(1); s <= int64(*seeds); s++ {
			emit(dst.RunSeed(s, profile, dst.RunOptions{}, budget))
		}
	}
	if *fedSeeds > 0 {
		ran = true
		fp := profile
		fp.BrokerProb, fp.FedProb = 1, 1
		for s := int64(1); s <= int64(*fedSeeds); s++ {
			emit(dst.RunSeed(s, fp, dst.RunOptions{}, budget))
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if len(reports) > 0 && !*jsonOut {
		fmt.Println(dst.Summarize(reports))
	}
	if violated {
		os.Exit(1)
	}
}

// runScenario replays one explicit scenario (inline JSON or @file).
func runScenario(src string, budget int, jsonOut bool, violated *bool) {
	data := []byte(src)
	name := "scenario"
	if strings.HasPrefix(src, "@") {
		b, err := os.ReadFile(src[1:])
		if err != nil {
			fatalf("dstgrid: %v", err)
		}
		data, name = b, filepath.Base(src[1:])
	}
	sc, err := dst.ParseScenario(data)
	if err != nil {
		fatalf("dstgrid: %v", err)
	}
	res, err := dst.Run(sc, dst.RunOptions{})
	if err != nil {
		fatalf("dstgrid: %v", err)
	}
	rep := dst.SeedReport{Seed: sc.Seed, Result: res}
	if len(res.Violations) > 0 && budget != 0 {
		sr := dst.Shrink(sc, dst.RunOptions{}, budget)
		rep.Shrunk = &sr
	}
	if jsonOut {
		fmt.Println(rep.JSON())
	} else {
		fmt.Printf("%s: ", name)
		fmt.Print(rep.Text())
	}
	if !res.OK() {
		*violated = true
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintln(os.Stderr, fmt.Sprintf(format, args...))
	os.Exit(1)
}
