// Rslfmt parses, validates, and pretty-prints RSL resource specifications.
//
// Usage:
//
//	rslfmt [-c] [-e] [file...]
//
// With no files it reads standard input. -c prints the canonical compact
// form instead of the indented one; -e additionally decomposes a
// multirequest into its subjobs, reporting each one's co-allocation
// attributes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cogrid/internal/core"
	"cogrid/internal/rsl"
)

func main() {
	compact := flag.Bool("c", false, "print the compact canonical form")
	explain := flag.Bool("e", false, "decompose a multirequest into subjobs")
	flag.Parse()

	exit := 0
	if flag.NArg() == 0 {
		if err := process("<stdin>", os.Stdin, *compact, *explain); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		if err := process(path, f, *compact, *explain); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
		}
		f.Close()
	}
	os.Exit(exit)
}

func process(name string, r io.Reader, compact, explain bool) error {
	src, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	node, err := rsl.Parse(string(src))
	if err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if compact {
		fmt.Println(node.String())
	} else {
		fmt.Println(rsl.Format(node))
	}
	if !explain {
		return nil
	}
	req, err := core.ParseRequest(string(src))
	if err != nil {
		return fmt.Errorf("%s: not a co-allocation request: %v", name, err)
	}
	fmt.Printf("\n%d subjob(s):\n", len(req.Subjobs))
	for i, sj := range req.Subjobs {
		label := sj.Label
		if label == "" {
			label = fmt.Sprintf("(sj%d)", i)
		}
		fmt.Printf("  %-12s %-11s count=%-4d executable=%-12s contact=%s",
			label, sj.Type, sj.Count, sj.Executable, sj.Contact)
		if sj.MaxTime > 0 {
			fmt.Printf(" maxTime=%v", sj.MaxTime)
		}
		if sj.ReservationID != "" {
			fmt.Printf(" reservation=%s", sj.ReservationID)
		}
		fmt.Println()
	}
	return nil
}
