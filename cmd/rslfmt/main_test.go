package main

import (
	"strings"
	"testing"
)

func TestProcessValidRequest(t *testing.T) {
	src := `+(&(resourceManagerContact=rm1:gram)(count=1)(executable=master)(subjobStartType=required))
	        (&(resourceManagerContact=rm2:gram)(count=4)(executable=worker)(subjobStartType=optional)(maxTime=30))`
	if err := process("test", strings.NewReader(src), false, true); err != nil {
		t.Fatalf("process: %v", err)
	}
	if err := process("test", strings.NewReader(src), true, false); err != nil {
		t.Fatalf("process compact: %v", err)
	}
}

func TestProcessSyntaxError(t *testing.T) {
	if err := process("bad", strings.NewReader("&(count=)"), false, false); err == nil {
		t.Fatal("syntax error not reported")
	}
}

func TestProcessExplainRejectsNonRequest(t *testing.T) {
	// Parses as RSL but is not a co-allocation request (no contact).
	if err := process("plain", strings.NewReader("&(count=4)"), false, true); err == nil {
		t.Fatal("explain accepted a non-request")
	}
}
