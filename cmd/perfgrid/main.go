// Perfgrid is the performance observatory's harness: it runs the declared
// benchmark suite (internal/perf.Suite) plus the deterministic broker-load
// and federated-broker scenarios, and emits a schema-versioned
// BENCH_grid.json snapshot.
//
// Usage:
//
//	perfgrid [-out BENCH_grid.json] [-bench regexp] [-benchtime 1s]
//	         [-seed N] [-smoke] [-scale] [-compare BENCH_grid.json]
//	         [-threshold 0.2] [-strict] [-prom file] [-cpuprofile file]
//	         [-memprofile file]
//
// Modes compose: a single invocation can measure, write a fresh snapshot,
// and compare it against a committed baseline.
//
//   - -smoke shrinks benchtime to 20ms and validates the snapshot shape:
//     every layer series present and Histogram.Record at 0 allocs/op.
//   - -compare diffs the run against a baseline snapshot, printing a
//     benchstat-style table. Regressions beyond -threshold (default 20%
//     ns/op) are reported; with -strict or STRICT_BENCH=1 they are fatal.
//     Wall-clock noise makes the gate advisory by default.
//   - -prom writes the scenario's Prometheus text exposition ("-" for
//     stdout) — byte-stable for a fixed -seed.
//   - -cpuprofile / -memprofile capture pprof profiles of the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"cogrid/internal/perf"
)

func main() {
	out := flag.String("out", "", "write the snapshot JSON to this file")
	benchRE := flag.String("bench", "", "regexp selecting suite benchmarks (default: all)")
	benchTime := flag.String("benchtime", "", "per-benchmark measuring time, e.g. 1s, 50ms, 100x (default 1s)")
	seed := flag.Int64("seed", 1, "seed for the deterministic scenario run")
	smoke := flag.Bool("smoke", false, "fast validation run: 20ms benchtime, checks snapshot shape and 0 allocs/op on the histogram hot path")
	compare := flag.String("compare", "", "baseline snapshot to diff this run against")
	threshold := flag.Float64("threshold", 0.20, "ns/op regression threshold for -compare")
	strict := flag.Bool("strict", false, "exit non-zero on regressions (also enabled by STRICT_BENCH=1)")
	prom := flag.String("prom", "", "write the scenario's Prometheus exposition to this file (\"-\" for stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run")
	memprofile := flag.String("memprofile", "", "write a heap profile after the run")
	scenarioOnly := flag.Bool("scenario-only", false, "skip wall-clock benchmarks, run only the deterministic scenario")
	scale := flag.Bool("scale", false, "also run the full-size B4 scale study (10⁶ jobs / 10⁴ machines, minutes of wall clock) and record it as the scale.b4.full series")
	flag.Parse()
	// Register the testing flags only after parsing perfgrid's own, so
	// -h stays readable and test.* flags cannot be set from the command
	// line directly.
	testing.Init()

	cfg := perf.RunConfig{
		BenchTime:    *benchTime,
		Seed:         *seed,
		SkipBench:    *scenarioOnly,
		SkipScenario: false,
	}
	if *smoke && cfg.BenchTime == "" {
		cfg.BenchTime = "20ms"
	}
	if *benchRE != "" {
		re, err := regexp.Compile(*benchRE)
		if err != nil {
			fatal(err)
		}
		cfg.BenchRE = re
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	snap, err := perf.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if *scale {
		snap.Series = append(snap.Series, perf.ScaleSeries(*seed)...)
	}
	snap.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Fprintf(os.Stderr, "perfgrid: %d series measured in %v\n", len(snap.Series), time.Since(start).Round(time.Millisecond))

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *smoke {
		if err := validateSmoke(snap, *scenarioOnly); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "perfgrid: smoke ok")
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := perf.WriteJSON(f, snap); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "perfgrid: snapshot written to %s\n", *out)
	}

	if *prom != "" {
		w := os.Stdout
		if *prom != "-" {
			f, err := os.Create(*prom)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		_, g, _ := perf.RunScenario(*seed)
		if err := g.WriteMetrics(w); err != nil {
			fatal(err)
		}
	}

	if *compare != "" {
		base, err := perf.ReadSnapshot(*compare)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "perfgrid: no baseline at %s, skipping compare\n", *compare)
				return
			}
			fatal(err)
		}
		res, err := perf.Compare(base, snap, *threshold)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Report(*threshold))
		if len(res.Regressions()) > 0 && (*strict || os.Getenv("STRICT_BENCH") == "1") {
			os.Exit(1)
		}
	}
}

// validateSmoke checks the acceptance shape of a snapshot: at least eight
// distinct series spanning the instrumented layers, and an allocation-free
// histogram hot path.
func validateSmoke(snap perf.Snapshot, scenarioOnly bool) error {
	if len(snap.Series) < 8 {
		return fmt.Errorf("smoke: only %d series, want >= 8", len(snap.Series))
	}
	if !scenarioOnly {
		h := snap.Find("histogram_record")
		if h == nil {
			return fmt.Errorf("smoke: histogram_record series missing")
		}
		if h.AllocsPerOp != 0 {
			return fmt.Errorf("smoke: histogram_record allocates %.2f/op, want 0", h.AllocsPerOp)
		}
		for _, name := range []string{"trace_export_jsonl", "rpc_call", "transport_roundtrip",
			"vtime_timer", "lrm_submit", "core_2pc", "broker_submit",
			"wire_encode", "wire_decode", "flightrec_record"} {
			if snap.Find(name) == nil {
				return fmt.Errorf("smoke: bench series %s missing", name)
			}
		}
		if f := snap.Find("flightrec_record"); f.AllocsPerOp != 0 {
			return fmt.Errorf("smoke: flightrec_record allocates %.2f/op, want 0", f.AllocsPerOp)
		}
	}
	for _, name := range []string{"scenario.broker.load", "scenario.vtime.kernel",
		"scenario.hist.rpc.call.latency", "scenario.hist.broker.request.latency",
		"scenario.fed.load", "scenario.fed.hist.fed.election.latency",
		"scenario.fed.hist.fed.handoff.time",
		"scenario.wire.json", "scenario.wire.binary", "scenario.wire.binary_batched",
		"scenario.slo.detection", "scenario.slo.flightrec"} {
		if snap.Find(name) == nil {
			return fmt.Errorf("smoke: scenario series %s missing", name)
		}
	}
	if s := snap.Find("scenario.slo.detection"); s.Values["alerts_fired"] == 0 ||
		s.Values["detection_lag_ms"] <= 0 {
		return fmt.Errorf("smoke: slo scenario detected nothing (fired %.0f, lag %.0fms)",
			s.Values["alerts_fired"], s.Values["detection_lag_ms"])
	}
	if s := snap.Find("scenario.slo.flightrec"); s.Values["dump_errors"] != 0 {
		return fmt.Errorf("smoke: slo scenario produced %.0f invalid flight dumps", s.Values["dump_errors"])
	}
	if s := snap.Find("scenario.broker.load"); s.Values["completed"] == 0 {
		return fmt.Errorf("smoke: scenario completed no requests")
	}
	if s := snap.Find("scenario.fed.load"); s.Values["completed"] == 0 || s.Values["elections"] == 0 {
		return fmt.Errorf("smoke: federation scenario did not exercise the failure path")
	}
	j, b := snap.Find("scenario.wire.json"), snap.Find("scenario.wire.binary")
	if j.Values["dropped"] != 0 || b.Values["dropped"] != 0 {
		return fmt.Errorf("smoke: wire scenario dropped messages (json %.0f, binary %.0f)",
			j.Values["dropped"], b.Values["dropped"])
	}
	if b.Values["wire_bytes"] >= j.Values["wire_bytes"] {
		return fmt.Errorf("smoke: binary wire bytes %.0f not below JSON %.0f",
			b.Values["wire_bytes"], j.Values["wire_bytes"])
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfgrid:", err)
	os.Exit(1)
}
