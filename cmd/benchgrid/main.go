// Benchgrid regenerates every table and figure from the paper's
// evaluation on the simulated grid and prints them as text.
//
// Usage:
//
//	benchgrid [-fig 2|3|4|5|all]
//	          [-app atomic|bigrun|overprov|staleness|reserve|load|broker|chaos|federation|wire|slo|scale|ablation|all]
//	          [-seed N] [-trials N] [-json] [-smoke] [-analyze trace.jsonl]
//
// With no flags everything runs. Timings are virtual (simulated) seconds;
// see EXPERIMENTS.md for the paper-versus-measured comparison. With -json
// the selected results are emitted as one JSON document (durations in
// nanoseconds) for plotting pipelines. -smoke shrinks the broker load and
// chaos studies to seconds-long configurations for CI gates. -analyze
// reads a JSONL trace (exported by `gridsim -trace-jsonl`), rebuilds the
// per-request causal trees, and prints the critical-path attribution
// report instead of running any experiment — the same analysis
// `cmd/tracegrid` performs.
//
// The chaos study doubles as a leak check: benchgrid exits non-zero if
// any row leaves a non-terminal job on a machine after quiescence or
// records an orphan that was never reaped. The wire study (B3) likewise
// enforces its acceptance bar: the binary codec must beat JSON on both
// messages/sec and allocs/op, with zero drops in the deterministic rows.
// The scale study (B4) smoke configuration runs the same job stream on
// the reference heap and the production timing wheel and exits non-zero
// if any deterministic virtual-time column differs between the engines,
// or if any job fails or goes missing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cogrid/internal/experiments"
	"cogrid/internal/perf"
	"cogrid/internal/trace"
	"cogrid/internal/vtime"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2, 3, 4, 5, or all")
	app := flag.String("app", "all", "application study: atomic, bigrun, overprov, staleness, reserve, load, broker, chaos, federation, wire, slo, scale, ablation, all, or none")
	seed := flag.Int64("seed", 1, "random seed for stochastic studies")
	trials := flag.Int("trials", 5, "trials per setting in stochastic studies")
	jsonOut := flag.Bool("json", false, "emit one JSON document instead of text tables (durations in nanoseconds)")
	smoke := flag.Bool("smoke", false, "shrink the broker study to a tiny smoke-test configuration")
	analyze := flag.String("analyze", "", "read a JSONL trace and print the causal critical-path report instead of running experiments")
	metricsPath := flag.String("metrics-out", "", "run the deterministic perf scenario and write its full metric registry (counters, gauges, histograms) in Prometheus text format")
	flag.Parse()

	if *metricsPath != "" {
		if err := metricsOut(*metricsPath, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "benchgrid:", err)
			os.Exit(2)
		}
		return
	}

	if *analyze != "" {
		if err := analyzeTrace(*analyze); err != nil {
			fmt.Fprintln(os.Stderr, "benchgrid:", err)
			os.Exit(2)
		}
		return
	}

	if *jsonOut {
		if err := emitJSON(os.Stdout, *fig, *app, *seed, *trials, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "benchgrid:", err)
			os.Exit(2)
		}
		return
	}

	ran := false
	switch *fig {
	case "2":
		figure2()
	case "3":
		figure3()
	case "4":
		figure4()
	case "5":
		figure5()
	case "all":
		figure2()
		figure3()
		figure4()
		figure5()
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "benchgrid: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	ran = *fig != "none"

	switch *app {
	case "atomic":
		atomicStudy(*seed, *trials)
	case "bigrun":
		bigRun(*seed)
	case "overprov":
		overProvision(*seed, *trials)
	case "staleness":
		staleness(*seed, *trials)
	case "reserve":
		reserve(*seed)
	case "load":
		loadStudy(*seed, *trials)
	case "broker":
		brokerStudy(*seed, *smoke)
	case "chaos":
		chaosStudy(*seed, *smoke)
	case "federation":
		federationStudy(*seed, *smoke)
	case "wire":
		wireStudy(*seed, *smoke)
	case "slo":
		sloStudy(*seed, *smoke)
	case "scale":
		scaleStudy(*seed, *smoke)
	case "ablation":
		ablation()
	case "all":
		atomicStudy(*seed, *trials)
		bigRun(*seed)
		overProvision(*seed, *trials)
		staleness(*seed, *trials)
		reserve(*seed)
		loadStudy(*seed, *trials)
		brokerStudy(*seed, *smoke)
		chaosStudy(*seed, *smoke)
		federationStudy(*seed, *smoke)
		wireStudy(*seed, *smoke)
		sloStudy(*seed, *smoke)
		scaleStudy(*seed, *smoke)
		ablation()
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "benchgrid: unknown study %q\n", *app)
		os.Exit(2)
	}
	if !ran && *app == "none" {
		fmt.Fprintln(os.Stderr, "benchgrid: nothing to do")
		os.Exit(2)
	}
}

// metricsOut runs the perf package's deterministic broker-load scenario
// and writes the resulting grid's Prometheus exposition — the same series
// cmd/perfgrid snapshots into BENCH_grid.json. "-" writes to stdout.
func metricsOut(path string, seed int64) error {
	_, g, row := perf.RunScenario(seed)
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteMetrics(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchgrid: scenario seed %d: %d/%d completed, throughput %.2f/min\n",
		seed, row.Completed, row.Requests, row.ThroughputPerMin)
	return nil
}

// emitJSON runs the selected experiments and marshals their structured
// results as one JSON object keyed by experiment id.
func emitJSON(w io.Writer, fig, app string, seed int64, trials int, smoke bool) error {
	out := make(map[string]any)
	figOn := func(want string) bool { return fig == "all" || fig == want }
	appOn := func(want string) bool { return app == "all" || app == want }
	if figOn("2") {
		out["figure2"] = experiments.Figure2([]int{1, 8, 16, 32, 64})
	}
	if figOn("3") {
		out["figure3"] = experiments.Figure3()
	}
	if figOn("4") {
		out["figure4"] = experiments.Figure4(64, []int{1, 2, 4, 8, 12, 16, 20, 25})
		out["figure4_flat"] = experiments.Figure4Flat(4, []int{8, 16, 32, 64})
	}
	if figOn("5") {
		out["figure5_timeline"] = experiments.Figure5(4, 16)
	}
	if appOn("atomic") {
		out["a1_atomic_vs_interactive"] = experiments.AtomicVsInteractive(
			5, 15*time.Minute, []float64{0, 0.1, 0.2, 0.3}, trials, seed)
	}
	if appOn("bigrun") {
		out["a2_bigrun"] = experiments.BigRun(seed)
	}
	if appOn("overprov") {
		out["s1_overprovision"] = experiments.OverProvisionSweep(3, 9,
			[]float64{1, 1.33, 2, 3}, []float64{0, 1, 8}, trials, seed)
	}
	if appOn("staleness") {
		out["s2_staleness"] = experiments.StalenessSweep(3, 10,
			[]time.Duration{0, 15 * time.Minute, time.Hour, 2 * time.Hour}, trials, seed)
	}
	if appOn("reserve") {
		out["r1_coreservation"] = experiments.CoReservationStudy(seed)
	}
	if appOn("load") {
		out["r2_load_crossover"] = experiments.BestEffortVsReservation(3,
			[]float64{0.3, 0.5, 0.7, 0.85}, trials, seed)
	}
	if appOn("broker") {
		out["b1_broker_load"] = experiments.BrokerLoadStudy(brokerConfig(seed, smoke))
	}
	if appOn("chaos") {
		res := experiments.ChaosStudy(chaosConfig(seed, smoke))
		if err := chaosLeakCheck(res); err != nil {
			return err
		}
		out["b2_chaos"] = res
	}
	if appOn("federation") {
		res := experiments.FederationLoadStudy(federationConfig(seed, smoke))
		if err := federationScalingCheck(res); err != nil {
			return err
		}
		out["b6_federation"] = res
	}
	if appOn("wire") {
		res := experiments.WireStudy(wireConfig(seed, smoke))
		if err := wireCheck(res); err != nil {
			return err
		}
		out["b3_wire"] = res
	}
	if appOn("slo") {
		res := experiments.SLOStudy(sloConfig(seed, smoke))
		if err := sloCheck(res); err != nil {
			return err
		}
		out["b7_slo"] = res
	}
	if appOn("scale") {
		res := experiments.ScaleStudy(scaleConfig(seed, smoke))
		if err := scaleCheck(res); err != nil {
			return err
		}
		out["b4_scale"] = res
	}
	if appOn("ablation") {
		out["ab1_submission_ablation"] = experiments.SubmissionAblation(64, []int{1, 5, 10, 25})
		out["wide_area"] = experiments.WideAreaStudy(8, 64, []time.Duration{
			time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond,
		})
	}
	if len(out) == 0 {
		return fmt.Errorf("nothing selected (fig=%q, app=%q)", fig, app)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// analyzeTrace rebuilds causal request trees from a JSONL trace and prints
// the deterministic critical-path attribution report.
func analyzeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	events, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("read %s: %v", path, err)
	}
	fmt.Print(trace.Analyze(events).Report())
	return nil
}

func section(title string) {
	fmt.Println()
	fmt.Println("==============================================================")
	fmt.Println(title)
	fmt.Println("==============================================================")
}

func figure2() {
	section("Figure 2 — GRAM submission latency vs process count")
	res := experiments.Figure2([]int{1, 8, 16, 32, 64})
	fmt.Print(res.Table())
	fmt.Println("(paper: latency is largely insensitive to the number of processes)")
}

func figure3() {
	section("Figure 3 — breakdown of a single-process GRAM request")
	res := experiments.Figure3()
	fmt.Print(res.Table())
	fmt.Println("(paper: initgroups 0.7s, authentication 0.5s, misc 0.01s, fork 0.001s)")
}

func figure4() {
	section("Figure 4 — DUROC submission time vs subjob count (64 processes)")
	res := experiments.Figure4(64, []int{1, 2, 4, 8, 12, 16, 20, 25})
	fmt.Print(res.Table())
	fmt.Println()
	fmt.Print(res.Summary())
	fmt.Println()
	fmt.Println("Companion: DUROC time vs process count at 4 subjobs (paper: flat)")
	for _, row := range experiments.Figure4Flat(4, []int{8, 16, 32, 64}) {
		fmt.Printf("  %3d processes: %.3fs\n", row.Processes, row.Measured.Seconds())
	}
}

func figure5() {
	section("Figure 5 — timeline of a DUROC submission (4 subjobs, 16 processes)")
	fmt.Print(experiments.Figure5(4, 16))
}

func atomicStudy(seed int64, trials int) {
	section("A1 — atomic (GRAB) restarts vs interactive (DUROC) transactions")
	res := experiments.AtomicVsInteractive(5, 15*time.Minute, []float64{0, 0.1, 0.2, 0.3}, trials, seed)
	fmt.Print(res.Table())
	fmt.Println("(paper: restarts of 15-minute startups made atomic transactions untenable)")
}

func bigRun(seed int64) {
	section("A2 — 1386 processors, 13 machines, 9 sites, with failures")
	res := experiments.BigRun(seed)
	fmt.Print(res.Table())
	fmt.Println("\nfailures configured around:")
	for _, line := range res.Narrative {
		fmt.Println("  " + line)
	}
}

func overProvision(seed int64, trials int) {
	section("S1 — over-provisioning and forecast quality")
	res := experiments.OverProvisionSweep(3, 9,
		[]float64{1, 1.33, 2, 3}, []float64{0, 1, 8}, trials, seed)
	fmt.Print(res.Table())
	fmt.Println("(Section 2.2: forecasts and over-provisioning improve co-allocation)")
}

func staleness(seed int64, trials int) {
	section("S2 — co-allocation time vs load-information age")
	res := experiments.StalenessSweep(3, 10,
		[]time.Duration{0, 15 * time.Minute, time.Hour, 2 * time.Hour}, trials, seed)
	fmt.Print(res.Table())
	fmt.Println("([14]: load information helps only while it remains valid)")
}

func reserve(seed int64) {
	section("R1 — co-reservation (Section 5 future work)")
	res := experiments.CoReservationStudy(seed)
	fmt.Print(res.Table())
}

func loadStudy(seed int64, trials int) {
	section("R2 — best-effort co-allocation vs co-reservation under load")
	res := experiments.BestEffortVsReservation(3, []float64{0.3, 0.5, 0.7, 0.85}, trials, seed)
	fmt.Print(res.Table())
	fmt.Println("(Section 5: ensuring a co-allocation request succeeds ultimately")
	fmt.Println(" requires advance reservation; the crossover falls at moderate load)")
}

// brokerConfig selects the broker study size: the stock configuration, or
// a seconds-long smoke setting for CI (make bench-smoke).
func brokerConfig(seed int64, smoke bool) experiments.BrokerLoadConfig {
	if !smoke {
		return experiments.BrokerLoadConfig{Seed: seed}
	}
	return experiments.BrokerLoadConfig{
		Machines:      3,
		MachineSize:   16,
		Sites:         2,
		ProcsPerSite:  4,
		Workers:       2,
		WorkTime:      time.Minute,
		Requests:      8,
		Tenants:       2,
		RatesPerMin:   []float64{4, 12},
		QueueBounds:   []int{2},
		ClosedClients: []int{2},
		Seed:          seed,
	}
}

func brokerStudy(seed int64, smoke bool) {
	section("B1 — broker throughput and latency vs offered load and queue bound")
	res := experiments.BrokerLoadStudy(brokerConfig(seed, smoke))
	fmt.Print(res.Table())
	fmt.Println("(internal/broker: bounded admission pushes back when offered load")
	fmt.Println(" exceeds what the machines drain; rejects are admission rejections)")
}

// chaosConfig selects the chaos study size: the stock configuration, or a
// seconds-long smoke setting for CI (make chaos-smoke). The smoke run
// shifts the default seed to 3, where the high-fault row exercises the
// full orphan pipeline — a host crash strands committed subjobs, a
// machine restart brings the gatekeeper back, and the reaper drains them.
func chaosConfig(seed int64, smoke bool) experiments.ChaosConfig {
	if !smoke {
		return experiments.ChaosConfig{Seed: seed}
	}
	if seed == 1 {
		seed = 3
	}
	return experiments.ChaosConfig{
		Machines:     4,
		MachineSize:  16,
		Sites:        2,
		ProcsPerSite: 4,
		Spares:       1,
		Workers:      2,
		WorkTime:     45 * time.Second,
		Requests:     6,
		Tenants:      2,
		RatePerMin:   4,
		FaultRates:   []float64{0, 0.75},
		Window:       2 * time.Minute,
		MaxTime:      4 * time.Minute,
		SubmitBudget: 6 * time.Minute,
		Seed:         seed,
	}
}

// chaosLeakCheck enforces the chaos study's resilience criterion: no row
// may leave live jobs on any machine after quiescence, and every orphan
// recorded mid-2PC must have been reaped at its resource manager.
func chaosLeakCheck(res experiments.ChaosResult) error {
	for _, row := range res.Rows {
		if row.LeakedJobs != 0 {
			return fmt.Errorf("chaos: fault rate %.2f leaked %d jobs after quiescence",
				row.FaultRate, row.LeakedJobs)
		}
		if row.OrphansRecorded != row.OrphansReaped {
			return fmt.Errorf("chaos: fault rate %.2f recorded %d orphans but reaped %d",
				row.FaultRate, row.OrphansRecorded, row.OrphansReaped)
		}
	}
	return nil
}

func chaosStudy(seed int64, smoke bool) {
	section("B2 — broker resilience under injected faults (chaos study)")
	res := experiments.ChaosStudy(chaosConfig(seed, smoke))
	fmt.Print(res.Table())
	fmt.Println("(internal/failure through internal/broker: every fault heals in-run,")
	fmt.Println(" so the acceptance bar is zero leaked jobs and orphans rec == reaped)")
	if err := chaosLeakCheck(res); err != nil {
		fmt.Fprintln(os.Stderr, "benchgrid:", err)
		os.Exit(1)
	}
}

// federationConfig selects the federation study size: the stock
// 1/2/4/8-replica sweep, or just the 1-vs-2 rows for CI (make fed-smoke).
func federationConfig(seed int64, smoke bool) experiments.FederationLoadConfig {
	cfg := experiments.FederationLoadConfig{Seed: seed}
	if smoke {
		cfg.ReplicaCounts = []int{1, 2}
	}
	return cfg
}

// federationScalingCheck enforces the study's acceptance bar: at least one
// multi-replica row must sustain higher admitted throughput than the
// single-replica row at no worse p99 — even though the multi-replica rows
// also absorb a leader crash mid-run.
func federationScalingCheck(res experiments.FederationLoadResult) error {
	var base *experiments.FederationLoadRow
	for i := range res.Rows {
		if res.Rows[i].Replicas == 1 {
			base = &res.Rows[i]
		}
	}
	if base == nil {
		return nil // no single-replica baseline in this sweep
	}
	for _, row := range res.Rows {
		if row.Replicas > 1 && row.ThroughputPerMin > base.ThroughputPerMin && row.P99 <= base.P99 {
			return nil
		}
	}
	return fmt.Errorf("federation: no multi-replica row beat the single-replica baseline (%.2f/min, p99 %v)",
		base.ThroughputPerMin, base.P99)
}

func federationStudy(seed int64, smoke bool) {
	section("B6 — federated broker scaling vs replica count (with a leader crash)")
	res := experiments.FederationLoadStudy(federationConfig(seed, smoke))
	fmt.Print(res.Table())
	fmt.Println("(internal/federation: replicas split the admission load; rows with")
	fmt.Println(" two or more replicas crash and restart the leader mid-run, so the")
	fmt.Println(" gains are earned under election, hand-off, and client failover)")
	if err := federationScalingCheck(res); err != nil {
		fmt.Fprintln(os.Stderr, "benchgrid:", err)
		os.Exit(1)
	}
}

// wireConfig selects the wire study size: the stock configuration, or a
// seconds-long smoke setting for CI (make wire-smoke).
func wireConfig(seed int64, smoke bool) experiments.WireConfig {
	cfg := experiments.WireConfig{Seed: seed}
	if smoke {
		cfg.Messages = 2000
		cfg.BenchTime = "30ms"
	}
	return cfg
}

// wireCheck enforces the B3 acceptance bar: the binary codec's unbatched
// row must beat JSON's on both messages/sec and allocs/op, and no study
// row may drop a message — the flow-controlled stream fits the queue, so
// any drop means the wire lost something it accounted as sent.
func wireCheck(res experiments.WireResult) error {
	var jsonRow, binRow *experiments.WireRow
	for i := range res.Rows {
		row := &res.Rows[i]
		if row.Dropped != 0 {
			return fmt.Errorf("wire: codec %s (batched=%t) dropped %d messages",
				row.Codec, row.Batched, row.Dropped)
		}
		if !row.Batched {
			switch row.Codec {
			case "json":
				jsonRow = row
			case "binary":
				binRow = row
			}
		}
	}
	if jsonRow == nil || binRow == nil {
		return fmt.Errorf("wire: study missing the unbatched json/binary rows")
	}
	if binRow.MsgsPerSec <= jsonRow.MsgsPerSec {
		return fmt.Errorf("wire: binary %.0f msgs/sec does not beat JSON %.0f",
			binRow.MsgsPerSec, jsonRow.MsgsPerSec)
	}
	if binRow.AllocsPerOp >= jsonRow.AllocsPerOp {
		return fmt.Errorf("wire: binary %.1f allocs/op not below JSON %.1f",
			binRow.AllocsPerOp, jsonRow.AllocsPerOp)
	}
	return nil
}

func wireStudy(seed int64, smoke bool) {
	section("B3 — wire throughput: JSON vs binary codec, with and without batching")
	res := experiments.WireStudy(wireConfig(seed, smoke))
	fmt.Print(res.Table())
	fmt.Println("(internal/wire through internal/rpc: the binary envelope codec must")
	fmt.Println(" beat JSON on both messages/sec and allocs/op; batching coalesces")
	fmt.Println(" same-destination sends at the cost of up to its flush delay)")
	if err := wireCheck(res); err != nil {
		fmt.Fprintln(os.Stderr, "benchgrid:", err)
		os.Exit(1)
	}
}

// sloConfig selects the SLO study size: the stock configuration over the
// full chaos workload, or a seconds-long smoke setting for CI
// (make slo-smoke). Both reuse the chaos workload so the detection-lag
// numbers describe the same faults B2 already characterizes.
func sloConfig(seed int64, smoke bool) experiments.SLOConfig {
	if smoke {
		return experiments.SLOSmokeConfig(seed)
	}
	return experiments.SLOConfig{Chaos: experiments.ChaosConfig{Seed: seed}}
}

// sloCheck enforces the B7 acceptance bar: fault-free rows are silent
// (zero alerts, zero dumps), every faulted row fires at least one alert
// within the detection budget, each fire freezes exactly one black box,
// and every retained dump validates.
func sloCheck(res experiments.SLOResult) error {
	if bad := res.Check(); len(bad) > 0 {
		return fmt.Errorf("slo: %s", bad[0])
	}
	return nil
}

func sloStudy(seed int64, smoke bool) {
	section("B7 — SLO detection latency and flight-recorder coverage")
	res := experiments.SLOStudy(sloConfig(seed, smoke))
	fmt.Print(res.Table())
	fmt.Println("(internal/slo over internal/flightrec: fault-free rows must stay")
	fmt.Println(" silent; every faulted row must page within the detection budget,")
	fmt.Println(" and each fire freezes one validated black-box dump)")
	if err := sloCheck(res); err != nil {
		fmt.Fprintln(os.Stderr, "benchgrid:", err)
		os.Exit(1)
	}
}

// scaleConfig selects the scale study size: the stock 10⁶-job run on the
// production wheel alone, or a seconds-long dual-engine smoke setting for
// CI (make scale-smoke) whose rows benchgrid diffs column by column.
func scaleConfig(seed int64, smoke bool) experiments.ScaleConfig {
	if !smoke {
		return experiments.ScaleConfig{Seed: seed}
	}
	return experiments.ScaleConfig{
		Jobs:             10_000,
		Machines:         100,
		MachineSize:      32,
		MeanInterarrival: 200 * time.Millisecond,
		Engines:          []vtime.TimerEngine{vtime.EngineHeap, vtime.EngineWheel},
		Seed:             seed,
	}
}

// scaleCheck enforces the B4 acceptance bar: every row accounts for every
// job with zero failures (wall limits are sized so a correctly scheduled
// job cannot hit one), and when the sweep runs more than one timer engine,
// every deterministic virtual-time column must agree across the rows —
// the smoke-sized kernel-equivalence differential.
func scaleCheck(res experiments.ScaleResult) error {
	for _, row := range res.Rows {
		if got := row.Done + row.Failed; got != int64(res.Jobs) {
			return fmt.Errorf("scale: engine %s accounted for %d of %d jobs", row.Engine, got, res.Jobs)
		}
		if row.Failed != 0 {
			return fmt.Errorf("scale: engine %s failed %d jobs", row.Engine, row.Failed)
		}
	}
	for i := 1; i < len(res.Rows); i++ {
		if !res.Rows[0].VirtualEqual(res.Rows[i]) {
			return fmt.Errorf("scale: engines %s and %s diverge on virtual-time columns:\n  %+v\n  %+v",
				res.Rows[0].Engine, res.Rows[i].Engine, res.Rows[0], res.Rows[i])
		}
	}
	return nil
}

func scaleStudy(seed int64, smoke bool) {
	section("B4 — kernel throughput at scale: timer wheel vs reference heap")
	res := experiments.ScaleStudy(scaleConfig(seed, smoke))
	fmt.Print(res.Table())
	fmt.Println("(internal/vtime + internal/lrm: the timing wheel, passive dispatch")
	fmt.Println(" pool, and release index carry the whole job stream; dual-engine")
	fmt.Println(" rows must agree on every virtual-time column, byte for byte)")
	if err := scaleCheck(res); err != nil {
		fmt.Fprintln(os.Stderr, "benchgrid:", err)
		os.Exit(1)
	}
}

func ablation() {
	section("Ablation — sequential vs parallel subjob submission")
	rows := experiments.SubmissionAblation(64, []int{1, 5, 10, 25})
	fmt.Print(experiments.AblationTable(rows))
	fmt.Println("(the paper's DUROC submitted sequentially — Figure 5 — leaving")
	fmt.Println(" pipelining as the only overlap; parallel submission is flat)")
	fmt.Println()
	wide := experiments.WideAreaStudy(8, 64, []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond, 200 * time.Millisecond,
	})
	fmt.Print(experiments.WideAreaTable(wide))
	fmt.Println("(Section 4.2: wide-area barrier costs are negligible next to startup delays)")
}
