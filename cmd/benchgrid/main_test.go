package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestEmitJSONFigure3(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSON(&buf, "3", "none", 1, 1, false); err != nil {
		t.Fatalf("emitJSON: %v", err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	raw, ok := out["figure3"]
	if !ok {
		t.Fatalf("missing figure3 key: %v", out)
	}
	var fig struct {
		Phases map[string]int64 `json:"Phases"`
	}
	if err := json.Unmarshal(raw, &fig); err != nil {
		t.Fatalf("figure3 shape: %v", err)
	}
	if fig.Phases["initgroups"] != 700_000_000 {
		t.Errorf("initgroups = %d ns, want 0.7s", fig.Phases["initgroups"])
	}
}

func TestEmitJSONNothingSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSON(&buf, "none", "none", 1, 1, false); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestEmitJSONBrokerSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSON(&buf, "none", "broker", 1, 1, true); err != nil {
		t.Fatalf("emitJSON: %v", err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	raw, ok := out["b1_broker_load"]
	if !ok {
		t.Fatalf("missing b1_broker_load key: %v", out)
	}
	var study struct {
		Rows []struct {
			Mode      string `json:"mode"`
			Requests  int    `json:"requests"`
			Completed int    `json:"completed"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &study); err != nil {
		t.Fatalf("b1_broker_load shape: %v", err)
	}
	if len(study.Rows) < 3 {
		t.Fatalf("rows = %d, want >= 3", len(study.Rows))
	}
	for i, row := range study.Rows {
		if row.Completed == 0 {
			t.Errorf("row %d (%s): nothing completed", i, row.Mode)
		}
	}
}

func TestEmitJSONAblationOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSON(&buf, "none", "ablation", 1, 1, false); err != nil {
		t.Fatalf("emitJSON: %v", err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	for _, key := range []string{"ab1_submission_ablation", "wide_area"} {
		if _, ok := out[key]; !ok {
			t.Errorf("missing %s", key)
		}
	}
}
