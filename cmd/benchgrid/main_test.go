package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestEmitJSONFigure3(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSON(&buf, "3", "none", 1, 1); err != nil {
		t.Fatalf("emitJSON: %v", err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	raw, ok := out["figure3"]
	if !ok {
		t.Fatalf("missing figure3 key: %v", out)
	}
	var fig struct {
		Phases map[string]int64 `json:"Phases"`
	}
	if err := json.Unmarshal(raw, &fig); err != nil {
		t.Fatalf("figure3 shape: %v", err)
	}
	if fig.Phases["initgroups"] != 700_000_000 {
		t.Errorf("initgroups = %d ns, want 0.7s", fig.Phases["initgroups"])
	}
}

func TestEmitJSONNothingSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSON(&buf, "none", "none", 1, 1); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestEmitJSONAblationOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := emitJSON(&buf, "none", "ablation", 1, 1); err != nil {
		t.Fatalf("emitJSON: %v", err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	for _, key := range []string{"ab1_submission_ablation", "wide_area"} {
		if _, ok := out[key]; !ok {
			t.Errorf("missing %s", key)
		}
	}
}
