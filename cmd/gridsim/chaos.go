package main

import (
	"fmt"
	"time"

	"cogrid/internal/experiments"
)

// runChaosDemo runs the built-in chaos scenario: the smoke-sized B2
// configuration at its highest fault rate. Machines crash, hang, slow
// down, and partition from the broker mid-run while Poisson arrivals keep
// submitting; the narrative shows how many requests still commit, what
// the per-attempt watchdog aborted, and — the point of the exercise —
// that every committed-but-lost subjob was reaped at its resource
// manager, so nothing keeps holding processors. Observability outputs
// (trace, counters) follow opts.
func runChaosDemo(opts runOptions) error {
	cfg := experiments.ChaosConfig{
		Machines:     4,
		MachineSize:  16,
		Sites:        2,
		ProcsPerSite: 4,
		Spares:       1,
		Workers:      2,
		WorkTime:     45 * time.Second,
		Requests:     6,
		Tenants:      2,
		RatePerMin:   4,
		Window:       2 * time.Minute,
		MaxTime:      4 * time.Minute,
		SubmitBudget: 6 * time.Minute,
		// Seed 3's draw includes host crashes followed by machine restarts,
		// so the orphan reaper has real work to show.
		Seed: 3,
	}
	const faultRate = 0.75
	fmt.Printf("chaos demo: %d batch machines x %d procs, %d broker workers, fault rate %.2f\n",
		cfg.Machines, cfg.MachineSize, cfg.Workers, faultRate)
	fmt.Printf("requests: %d arrivals (Poisson, %.0f/min) of %d sites x %d processes each\n\n",
		cfg.Requests, cfg.RatePerMin, cfg.Sites, cfg.ProcsPerSite)

	row, g := experiments.ChaosRun(cfg, faultRate)

	fmt.Printf("faults injected: %d (%s)\n", row.Faults, row.FaultKinds)
	fmt.Printf("requests:        %d committed, %d failed, %d abandoned at deadline\n",
		row.Completed, row.Failed, row.Abandoned)
	fmt.Printf("broker retries:  %d (admission rejects: %d)\n", row.Retries, row.Rejects)
	fmt.Printf("watchdog aborts: %d\n", row.WatchdogAborts)
	if row.FaultClasses != "" {
		fmt.Printf("fault classes:   %s\n", row.FaultClasses)
	}
	fmt.Printf("orphans:         %d recorded, %d reaped\n", row.OrphansRecorded, row.OrphansReaped)
	fmt.Printf("leaked jobs:     %d (live LRM jobs after quiescence)\n", row.LeakedJobs)
	if row.Completed > 0 {
		fmt.Printf("latency:         p50 %v, p99 %v\n", row.P50, row.P99)
	}

	if err := writeOutputs(g, opts); err != nil {
		return err
	}
	if row.LeakedJobs != 0 || row.OrphansRecorded != row.OrphansReaped {
		return fmt.Errorf("chaos demo leaked: %d live jobs, orphans %d/%d",
			row.LeakedJobs, row.OrphansRecorded, row.OrphansReaped)
	}
	fmt.Println("\nno leaks: every orphaned subjob was cancelled at its resource manager")
	return nil
}
