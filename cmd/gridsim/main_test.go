package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadScenario(t *testing.T, name string) Scenario {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return sc
}

func TestDemoScenarioRuns(t *testing.T) {
	if err := run(demoScenario()); err != nil {
		t.Fatalf("demo scenario: %v", err)
	}
}

func TestFederationDemoRuns(t *testing.T) {
	if err := runFederationDemo(runOptions{}); err != nil {
		t.Fatalf("federation demo: %v", err)
	}
}

func TestFigure1ScenarioRuns(t *testing.T) {
	if err := run(loadScenario(t, "figure1.json")); err != nil {
		t.Fatalf("figure1 scenario: %v", err)
	}
}

func TestBatchQueueScenarioRuns(t *testing.T) {
	if err := run(loadScenario(t, "batch-queue.json")); err != nil {
		t.Fatalf("batch scenario: %v", err)
	}
}

func TestAtomicFailureScenarioFailsCleanly(t *testing.T) {
	err := run(loadScenario(t, "atomic-failure.json"))
	if err == nil {
		t.Fatal("atomic scenario with a dead machine succeeded")
	}
	if !strings.Contains(err.Error(), "co-allocation failed") {
		t.Fatalf("error = %v", err)
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := demoScenario()
	sc.Faults = append(sc.Faults, FaultSpec{Kind: "meteor-strike", Target: "x"})
	if err := run(sc); err == nil || !strings.Contains(err.Error(), "unknown fault kind") {
		t.Fatalf("unknown fault kind accepted: %v", err)
	}
	sc = demoScenario()
	sc.Strategy = "hope"
	if err := run(sc); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("unknown strategy accepted: %v", err)
	}
	sc = demoScenario()
	sc.Request = "((("
	if err := run(sc); err == nil {
		t.Fatal("bad RSL accepted")
	}
	sc = demoScenario()
	sc.Pool = []string{"not-an-addr"}
	if err := run(sc); err == nil {
		t.Fatal("bad pool address accepted")
	}
}
