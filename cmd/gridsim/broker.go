package main

import (
	"fmt"
	"sync"
	"time"

	"cogrid/internal/broker"
	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// runBrokerDemo runs the built-in broker scenario: four batch machines
// publishing to a directory, a 2-worker broker with a deliberately small
// admission queue, and three tenants submitting co-allocations — one of
// them flooding, so backpressure and round-robin fairness are visible in
// the output. Observability outputs (trace, counters) follow opts.
func runBrokerDemo(opts runOptions) error {
	const (
		machines     = 4
		procs        = 32
		workTime     = 90 * time.Second
		sites        = 2
		procsPerSite = 8
	)
	g := grid.New(grid.Options{Seed: 7, Trace: true})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		return err
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
	for i := 0; i < machines; i++ {
		name := fmt.Sprintf("site%02d", i)
		m := g.AddMachine(name, procs, lrm.Batch)
		mds.Publish(m, dir, g.Contact(name), 31*time.Second, procsPerSite, procs)
	}
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(workTime, time.Second)
	})
	b, err := broker.New(g.Net.AddHost("broker0"), core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}, broker.Options{
		Directory:  dir,
		QueueBound: 3,
		Workers:    2,
		RetryAfter: 15 * time.Second,
	})
	if err != nil {
		return err
	}
	fmt.Printf("broker demo: %d batch machines x %d procs, broker queue bound 3, 2 workers\n",
		machines, procs)
	fmt.Printf("requests: %d sites x %d processes each; tenant-a floods 5, b and c send 1\n\n",
		sites, procsPerSite)

	type submission struct {
		tenant string
		at     time.Duration
	}
	var subs []submission
	for i := 0; i < 5; i++ {
		subs = append(subs, submission{"tenant-a", 10*time.Second + time.Duration(i)*100*time.Millisecond})
	}
	subs = append(subs,
		submission{"tenant-b", 11 * time.Second},
		submission{"tenant-c", 12 * time.Second})

	var mu sync.Mutex
	simErr := g.Sim.Run("driver", func() {
		wg := vtime.NewWaitGroup(g.Sim)
		wg.Add(len(subs))
		for i, sub := range subs {
			i, sub := i, sub
			host := g.Net.AddHost(fmt.Sprintf("%s-%d", sub.tenant, i))
			g.Sim.GoDaemon(fmt.Sprintf("driver:%s/%d", sub.tenant, i), func() {
				defer wg.Done()
				g.Sim.SleepUntil(sub.at)
				ctx := trace.NewRequest(host.Name())
				start := g.Sim.Now()
				c, err := broker.DialCtx(host, b.Contact(), ctx)
				if err != nil {
					mu.Lock()
					fmt.Printf("%s: dial failed: %v\n", sub.tenant, err)
					mu.Unlock()
					return
				}
				defer c.Close()
				reply, rejects, err := c.SubmitWait(broker.Request{
					Tenant:       sub.tenant,
					Sites:        sites,
					ProcsPerSite: procsPerSite,
					Executable:   "app",
					Spares:       1,
				}, 0, 20)
				g.Tracer.SpanAtCtx(ctx, "client", "request", host.Name(), sub.tenant, "", start, g.Sim.Now())
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					fmt.Printf("t=%-8v %s request %d: FAILED: %v\n", g.Sim.Now(), sub.tenant, i, err)
					return
				}
				fmt.Printf("t=%-8v %s: committed job %s (%d procs, %d attempt(s), %d substitution(s), %d admission reject(s), queued %v)\n",
					g.Sim.Now(), sub.tenant, reply.JobID, reply.WorldSize,
					reply.Attempts, reply.Substitutions, rejects, reply.QueueWait)
			})
		}
		wg.Wait()
	})
	if err := writeOutputs(g, opts); err != nil {
		return err
	}
	return simErr
}
