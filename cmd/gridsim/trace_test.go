package main

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// traceOf runs the figure1 scenario with tracing and returns the Chrome
// trace bytes and the counter table.
func traceOf(t *testing.T) ([]byte, string) {
	t.Helper()
	var trace, counters bytes.Buffer
	sc := loadScenario(t, "figure1.json")
	if err := runWith(sc, runOptions{TraceW: &trace, CountersW: &counters}); err != nil {
		t.Fatalf("runWith: %v", err)
	}
	return trace.Bytes(), counters.String()
}

// Two runs of the same seeded scenario must produce byte-identical traces:
// simulated processes may interleave arbitrarily in real time, but event
// content and the export order are functions of virtual time only.
func TestTraceIsDeterministic(t *testing.T) {
	a, ca := traceOf(t)
	b, cb := traceOf(t)
	if !bytes.Equal(a, b) {
		t.Error("same-seed runs produced different trace bytes")
	}
	if ca != cb {
		t.Error("same-seed runs produced different counter tables")
	}
}

// The trace of a full co-allocation run must contain every layer's events:
// transport hops, correlated RPC call/serve pairs, GRAM job state
// transitions, and the DUROC commit and barrier phases.
func TestTraceCoversAllLayers(t *testing.T) {
	raw, counters := traceOf(t)
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			ID   string            `json:"id"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}

	hops := 0
	callIDs := map[string]bool{}
	serveIDs := map[string]bool{}
	states := map[string]bool{}
	durocNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Cat == "transport" && ev.Name == "hop":
			hops++
		case ev.Cat == "rpc" && strings.HasPrefix(ev.Name, "call:"):
			callIDs[ev.ID] = true
		case ev.Cat == "rpc" && strings.HasPrefix(ev.Name, "serve:"):
			serveIDs[ev.ID] = true
		case ev.Cat == "gram" && strings.HasPrefix(ev.Name, "state:"):
			states[strings.TrimPrefix(ev.Name, "state:")] = true
		case ev.Cat == "duroc":
			durocNames[ev.Name] = true
		}
	}
	if hops == 0 {
		t.Error("no transport hop spans")
	}
	if len(callIDs) == 0 {
		t.Error("no rpc call spans")
	}
	for id := range callIDs {
		if !serveIDs[id] {
			t.Errorf("call %q has no serve span with the same correlation ID", id)
		}
	}
	// Figure 1's jobs run to completion: both transitions must be traced.
	for _, want := range []string{"ACTIVE", "DONE"} {
		if !states[want] {
			t.Errorf("no gram state:%s transition in trace (have %v)", want, states)
		}
	}
	for _, want := range []string{"submit", "commit", "barrier", "barrier-enter", "release", "committed"} {
		if !durocNames[want] {
			t.Errorf("no duroc %q event in trace (have %v)", want, durocNames)
		}
	}
	// One hop span per transport send: the hop count equals the sum of the
	// per-host send counters.
	var sends int
	for _, line := range strings.Split(counters, "\n") {
		if strings.HasPrefix(line, "transport.msgs.send@") {
			fields := strings.Fields(line)
			n, err := strconv.Atoi(fields[len(fields)-1])
			if err != nil {
				t.Fatalf("bad counter line %q: %v", line, err)
			}
			sends += n
		}
	}
	if hops != sends {
		t.Errorf("hop spans = %d, transport sends = %d; want equal", hops, sends)
	}
}
