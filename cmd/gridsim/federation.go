package main

import (
	"fmt"
	"sync"
	"time"

	"cogrid/internal/broker"
	"cogrid/internal/core"
	"cogrid/internal/federation"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// runFederationDemo runs the built-in federation scenario: a three-replica
// broker group over six batch machines, with keyed requests spread
// round-robin across the replicas. Mid-run the leader is crashed and later
// restarted: the survivors elect a new leader, take over the dead
// replica's shard, adopt its journal entries, and the crashed replica's
// clients fail over to the next replica in the ring. The output narrates
// each commit, the crash, and the post-run journal so the replication
// machinery is visible end to end. Observability outputs follow opts.
func runFederationDemo(opts runOptions) error {
	const (
		machines     = 6
		procs        = 16
		replicas     = 3
		workTime     = 90 * time.Second
		sites        = 2
		procsPerSite = 4
		requests     = 9
		crashAt      = 45 * time.Second
		outage       = 2 * time.Minute
	)
	g := grid.New(grid.Options{Seed: 7, Trace: true})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		return err
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
	for i := 0; i < machines; i++ {
		name := fmt.Sprintf("site%02d", i)
		m := g.AddMachine(name, procs, lrm.Batch)
		mds.Publish(m, dir, g.Contact(name), 31*time.Second, procsPerSite, procs)
	}
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(workTime, time.Second)
	})
	fed, err := federation.New(g.Net, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}, federation.Options{
		Replicas:  replicas,
		Directory: dir,
		Broker: broker.Options{
			Directory:  dir,
			QueueBound: 4,
			Workers:    2,
			RetryAfter: 15 * time.Second,
		},
	})
	if err != nil {
		return err
	}
	leader := fed.Replica(replicas - 1) // highest id wins the first election
	fmt.Printf("federation demo: %d broker replicas over %d batch machines x %d procs\n",
		replicas, machines, procs)
	fmt.Printf("requests: %d sites x %d processes, keyed, round-robin across replicas\n", sites, procsPerSite)
	fmt.Printf("schedule: leader %s crashes at t=%v, restarts at t=%v\n\n",
		leader.Name(), crashAt, crashAt+outage)

	var mu sync.Mutex
	simErr := g.Sim.Run("driver", func() {
		g.Sim.GoDaemon("demo-crash", func() {
			g.Sim.SleepUntil(crashAt)
			mu.Lock()
			fmt.Printf("t=%-8v !! crashing %s (current leader)\n", g.Sim.Now(), leader.Name())
			mu.Unlock()
			leader.Crash()
			g.Sim.Sleep(outage)
			if err := leader.Restart(); err != nil {
				panic(fmt.Sprintf("restart %s: %v", leader.Name(), err))
			}
			mu.Lock()
			fmt.Printf("t=%-8v !! %s restarted; it rejoins as a follower and re-bootstraps the shard map\n",
				g.Sim.Now(), leader.Name())
			mu.Unlock()
		})
		wg := vtime.NewWaitGroup(g.Sim)
		wg.Add(requests)
		for i := 0; i < requests; i++ {
			i := i
			host := g.Net.AddHost(fmt.Sprintf("client%02d", i))
			g.Sim.GoDaemon(fmt.Sprintf("driver:client%02d", i), func() {
				defer wg.Done()
				g.Sim.SleepUntil(10*time.Second + time.Duration(i)*7*time.Second)
				ctx := trace.NewRequest(host.Name())
				start := g.Sim.Now()
				req := broker.Request{
					Tenant:       fmt.Sprintf("tenant-%c", 'a'+i%3),
					Sites:        sites,
					ProcsPerSite: procsPerSite,
					Executable:   "app",
					Spares:       1,
					Key:          fmt.Sprintf("req%02d", i),
				}
				// Client-side failover: walk the ring from the home
				// replica until one answers. The idempotency key makes
				// the walk safe — a committed-but-unreplied key is
				// answered from the replicated journal, not re-allocated.
				for k := 0; k < replicas; k++ {
					r := fed.Replica((i + k) % replicas)
					c, err := broker.DialCtx(host, r.BrokerContact(), ctx)
					if err != nil {
						mu.Lock()
						fmt.Printf("t=%-8v %s: %s unreachable (%v), failing over to %s\n",
							g.Sim.Now(), req.Key, r.Name(), err,
							fed.Replica((i+k+1)%replicas).Name())
						mu.Unlock()
						continue
					}
					reply, rejects, err := c.SubmitWait(req, 0, 20)
					c.Close()
					if err != nil {
						mu.Lock()
						fmt.Printf("t=%-8v %s: %s died mid-request (%v), failing over\n",
							g.Sim.Now(), req.Key, r.Name(), err)
						mu.Unlock()
						continue
					}
					g.Tracer.SpanAtCtx(ctx, "client", "request", host.Name(), req.Tenant, "", start, g.Sim.Now())
					mu.Lock()
					if !reply.OK() {
						fmt.Printf("t=%-8v %s via %s: FAILED: %s\n", g.Sim.Now(), req.Key, r.Name(), reply.Error)
					} else {
						via := ""
						if reply.Hops > 0 {
							via = fmt.Sprintf(", %d forward(s)", reply.Hops)
						}
						fmt.Printf("t=%-8v %s via %s: committed job %s (%d procs, %d reject(s)%s, leader now %s)\n",
							g.Sim.Now(), req.Key, r.Name(), reply.JobID, reply.WorldSize,
							rejects, via, r.LeaderName())
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				fmt.Printf("t=%-8v %s: no replica reachable\n", g.Sim.Now(), req.Key)
				mu.Unlock()
			})
		}
		wg.Wait()
		// Let the running jobs drain and the peer reaper settle any
		// entries the crash handed off, so the journal below is final.
		g.Sim.Sleep(workTime + time.Minute)
		g.Sim.Sleep(3 * fed.Options().PeerReapInterval)
	})

	fmt.Println()
	byState := map[string]int{}
	handedOff := 0
	for _, e := range fed.MergedJournal() {
		byState[e.State]++
		if e.HandoffAt > 0 {
			handedOff++
		}
	}
	fmt.Printf("replicated journal: %d open / %d closed / %d reaped; %d entr(ies) handed off after the crash\n",
		byState[federation.StateOpen], byState[federation.StateClosed],
		byState[federation.StateReaped], handedOff)
	for _, r := range fed.Replicas() {
		fmt.Printf("  %s alive=%-5v sees leader %s\n", r.Name(), r.Alive(), r.LeaderName())
	}
	if err := writeOutputs(g, opts); err != nil {
		return err
	}
	return simErr
}
