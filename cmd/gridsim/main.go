// Gridsim runs a co-allocation scenario from a JSON specification: it
// builds the described grid, applies the fault schedule, submits the RSL
// co-allocation request under the chosen strategy, and reports every
// event and the final outcome.
//
// Usage:
//
//	gridsim [-f scenario.json | scenario.json] [-demo] [-broker] [-chaos]
//	        [-federation] [-trace out.json] [-trace-jsonl out.jsonl]
//	        [-counters] [-gauges out.csv] [-gauge-step 5s]
//
// The scenario file may be given either with -f or as the positional
// argument. -trace writes a Chrome trace_event file of the whole run
// (open it in chrome://tracing or https://ui.perfetto.dev); -trace-jsonl
// writes the raw event stream as JSON Lines — the input format of the
// `tracegrid -analyze` causal critical-path analyzer; -counters prints
// the event-counter registry after the run; -gauges writes the
// virtual-time gauge series (queue depth, outstanding 2PC, busy
// processors, unreaped orphans) as CSV sampled every -gauge-step. -broker runs the
// built-in multi-tenant broker scenario instead of a co-allocation
// scenario file: three tenants (one flooding) submit through a bounded
// admission queue, showing backpressure and round-robin fairness. -chaos
// runs the built-in chaos scenario: the broker load replayed against a
// grid where machines crash, hang, and partition mid-run, showing the
// request deadline, the per-attempt watchdog, and the orphan reaper
// keeping the grid leak-free. -federation runs the built-in federated
// broker scenario: a three-replica control plane whose leader crashes
// mid-run, showing leader election, shard hand-off, journal adoption by
// the survivors, and client fail-over with idempotency keys.
//
// With -demo (or no flags) a built-in scenario runs: five machines, one
// crashing mid-startup and one slow, handled by substitution from a spare
// pool. The scenario file format:
//
//	{
//	  "seed": 1,
//	  "machines": [{"name": "m1", "processors": 64, "mode": "fork"}],
//	  "request": "+(&(resourceManagerContact=m1:gram)(count=8)(executable=app)(subjobStartType=required))",
//	  "strategy": "interactive",            // or "atomic"
//	  "pool": ["spare:gram"],               // substitution pool
//	  "drop_unreplaceable": true,
//	  "work_seconds": 60,                   // app run time after release
//	  "faults": [{"at_seconds": 10, "kind": "host-crash", "target": "m2"}]
//	}
//
// Fault kinds: host-crash, host-hang, host-restore, machine-slow (with
// "factor"), machine-down, machine-up, partition/heal (with "target2"),
// revoke-user, reinstate-user, machine-restart.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/core"
	"cogrid/internal/failure"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/transport"
)

// Scenario is the JSON file format.
type Scenario struct {
	Seed              int64         `json:"seed"`
	Machines          []MachineSpec `json:"machines"`
	Request           string        `json:"request"`
	Strategy          string        `json:"strategy"`
	Pool              []string      `json:"pool"`
	DropUnreplaceable bool          `json:"drop_unreplaceable"`
	WorkSeconds       int           `json:"work_seconds"`
	Faults            []FaultSpec   `json:"faults"`
	TimeoutSeconds    int           `json:"timeout_seconds"`
	// Timeline renders the Figure 5-style submission timeline and the
	// co-allocation event history after the run.
	Timeline bool `json:"timeline"`
}

// MachineSpec describes one machine.
type MachineSpec struct {
	Name       string `json:"name"`
	Processors int    `json:"processors"`
	Mode       string `json:"mode"`
}

// FaultSpec describes one scheduled fault.
type FaultSpec struct {
	AtSeconds float64 `json:"at_seconds"`
	Kind      string  `json:"kind"`
	Target    string  `json:"target"`
	Target2   string  `json:"target2"`
	Factor    float64 `json:"factor"`
}

var faultKinds = map[string]failure.Kind{
	"host-crash":      failure.HostCrash,
	"host-hang":       failure.HostHang,
	"host-restore":    failure.HostRestore,
	"machine-slow":    failure.MachineSlow,
	"machine-down":    failure.MachineDown,
	"machine-up":      failure.MachineUp,
	"partition":       failure.Partition,
	"heal":            failure.Heal,
	"revoke-user":     failure.RevokeUser,
	"reinstate-user":  failure.ReinstateUser,
	"machine-restart": failure.MachineRestart,
}

func main() {
	file := flag.String("f", "", "scenario file (JSON)")
	demo := flag.Bool("demo", false, "run the built-in demo scenario")
	brokerDemo := flag.Bool("broker", false, "run the built-in multi-tenant broker scenario")
	chaosDemo := flag.Bool("chaos", false, "run the built-in broker chaos scenario (faults injected mid-run)")
	federationDemo := flag.Bool("federation", false, "run the built-in federated broker scenario (leader crash, election, fail-over)")
	timeline := flag.Bool("timeline", false, "render the submission timeline and event history")
	tracePath := flag.String("trace", "", "write a Chrome trace_event file of the run")
	jsonlPath := flag.String("trace-jsonl", "", "write the raw trace events as JSON Lines (input for tracegrid -analyze)")
	counters := flag.Bool("counters", false, "print the event-counter registry after the run")
	gaugesPath := flag.String("gauges", "", "write the virtual-time gauge series (queue depth, outstanding 2PC, busy processors, orphans) as CSV")
	gaugeStep := flag.Duration("gauge-step", 5*time.Second, "sampling cadence for -gauges")
	metricsPath := flag.String("metrics-out", "", "write counters, gauges, and latency histograms in Prometheus text format after the run")
	flag.Parse()

	scenarioPath := *file
	if scenarioPath == "" && flag.NArg() > 0 {
		scenarioPath = flag.Arg(0)
	}
	var opts runOptions
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts.TraceW = f
	}
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts.JSONLW = f
	}
	if *counters {
		opts.CountersW = os.Stdout
	}
	if *gaugesPath != "" {
		f, err := os.Create(*gaugesPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts.GaugesW = f
		opts.GaugeStep = *gaugeStep
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		opts.MetricsW = f
	}

	if *brokerDemo {
		if err := runBrokerDemo(opts); err != nil {
			fatal(err)
		}
		return
	}
	if *chaosDemo {
		if err := runChaosDemo(opts); err != nil {
			fatal(err)
		}
		return
	}
	if *federationDemo {
		if err := runFederationDemo(opts); err != nil {
			fatal(err)
		}
		return
	}

	var sc Scenario
	switch {
	case scenarioPath != "":
		raw, err := os.ReadFile(scenarioPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(raw, &sc); err != nil {
			fatal(fmt.Errorf("%s: %v", scenarioPath, err))
		}
	default:
		_ = demo
		sc = demoScenario()
		fmt.Println("gridsim: running the built-in demo scenario (see -f for custom ones)")
	}
	sc.Timeline = sc.Timeline || *timeline

	if err := runWith(sc, opts); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridsim:", err)
	os.Exit(1)
}

func demoScenario() Scenario {
	return Scenario{
		Seed: 7,
		Machines: []MachineSpec{
			{Name: "anl-sp2", Processors: 128, Mode: "fork"},
			{Name: "caltech-hp", Processors: 256, Mode: "fork"},
			{Name: "ncsa-o2k", Processors: 128, Mode: "fork"},
			{Name: "sdsc-sp2", Processors: 128, Mode: "fork"},
			{Name: "spare-a", Processors: 256, Mode: "fork"},
		},
		Request: `+(&(resourceManagerContact=anl-sp2:gram)(count=64)(executable=app)(subjobStartType=required)(label=coordinator))
  (&(resourceManagerContact=caltech-hp:gram)(count=128)(executable=app)(subjobStartType=interactive)(label=caltech))
  (&(resourceManagerContact=ncsa-o2k:gram)(count=64)(executable=app)(subjobStartType=interactive)(label=ncsa))
  (&(resourceManagerContact=sdsc-sp2:gram)(count=64)(executable=app)(subjobStartType=interactive)(label=sdsc))`,
		Strategy:          "interactive",
		Pool:              []string{"spare-a:gram"},
		DropUnreplaceable: true,
		WorkSeconds:       30,
		Faults: []FaultSpec{
			{AtSeconds: 3, Kind: "host-crash", Target: "ncsa-o2k"},
			{AtSeconds: 0, Kind: "machine-slow", Target: "sdsc-sp2", Factor: 100},
		},
	}
}

// runOptions selects observability outputs for one run.
type runOptions struct {
	// TraceW, when set, receives a Chrome trace_event JSON file of the run.
	TraceW io.Writer
	// JSONLW, when set, receives the raw event stream as JSON Lines — the
	// format tracegrid -analyze consumes.
	JSONLW io.Writer
	// CountersW, when set, receives the counter-registry table after the run.
	CountersW io.Writer
	// GaugesW, when set, receives the virtual-time gauge series as CSV,
	// sampled every GaugeStep.
	GaugesW   io.Writer
	GaugeStep time.Duration
	// MetricsW, when set, receives the full metric registry — counters,
	// gauges, and latency histograms — in Prometheus text format.
	MetricsW io.Writer
}

// writeOutputs emits the selected observability outputs of a finished run.
// It is shared by the scenario runner and the built-in demos, and runs
// even when the scenario failed — a trace of a failed co-allocation is
// exactly what one wants to read.
func writeOutputs(g *grid.Grid, opts runOptions) error {
	if opts.TraceW != nil {
		if err := g.Tracer.WriteChromeTrace(opts.TraceW); err != nil {
			return fmt.Errorf("write trace: %v", err)
		}
	}
	if opts.JSONLW != nil {
		if err := g.Tracer.WriteJSONL(opts.JSONLW); err != nil {
			return fmt.Errorf("write jsonl trace: %v", err)
		}
	}
	if opts.CountersW != nil {
		fmt.Fprintln(opts.CountersW, "\ncounters:")
		fmt.Fprint(opts.CountersW, g.Counters.String())
	}
	if opts.GaugesW != nil {
		step := opts.GaugeStep
		if step <= 0 {
			step = 5 * time.Second
		}
		if err := g.Gauges.Series(step, g.Sim.Now()).WriteCSV(opts.GaugesW); err != nil {
			return fmt.Errorf("write gauges: %v", err)
		}
	}
	if opts.MetricsW != nil {
		if err := g.WriteMetrics(opts.MetricsW); err != nil {
			return fmt.Errorf("write metrics: %v", err)
		}
	}
	return nil
}

func run(sc Scenario) error { return runWith(sc, runOptions{}) }

func runWith(sc Scenario, opts runOptions) error {
	g := grid.New(grid.Options{
		Seed:           sc.Seed,
		RecordTimeline: sc.Timeline,
		Trace:          opts.TraceW != nil || opts.JSONLW != nil || opts.CountersW != nil || opts.GaugesW != nil || opts.MetricsW != nil,
	})
	for _, m := range sc.Machines {
		mode := lrm.Fork
		if m.Mode == "batch" {
			mode = lrm.Batch
		}
		g.AddMachine(m.Name, m.Processors, mode)
	}
	work := time.Duration(sc.WorkSeconds) * time.Second
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		if work > 0 {
			return p.Work(work, time.Second)
		}
		return nil
	})

	var plan failure.Plan
	for _, f := range sc.Faults {
		kind, ok := faultKinds[f.Kind]
		if !ok {
			return fmt.Errorf("unknown fault kind %q", f.Kind)
		}
		plan = append(plan, failure.Action{
			At:      time.Duration(f.AtSeconds * float64(time.Second)),
			Kind:    kind,
			Target:  f.Target,
			Target2: f.Target2,
			Factor:  f.Factor,
		})
	}
	plan.Apply(g)
	for _, a := range plan.Sorted() {
		fmt.Println("fault scheduled:", a)
	}

	req, err := core.ParseRequest(sc.Request)
	if err != nil {
		return fmt.Errorf("request: %v", err)
	}
	for i := range req.Subjobs {
		if req.Subjobs[i].StartupTimeout == 0 {
			req.Subjobs[i].StartupTimeout = 2 * time.Minute
		}
	}
	ctrlCfg := core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}
	if g.Timeline != nil {
		ctrlCfg.Timeline = g.Timeline
	}
	ctrl, err := core.NewController(g.Workstation, ctrlCfg)
	if err != nil {
		return err
	}
	var pool []transport.Addr
	for _, p := range sc.Pool {
		addr, err := transport.ParseAddr(p)
		if err != nil {
			return err
		}
		pool = append(pool, addr)
	}
	timeout := time.Duration(sc.TimeoutSeconds) * time.Second

	var runErr error
	simErr := g.Sim.Run("agent", func() {
		// Event reporter: everything the co-allocator tells the agent.
		var res agent.Result
		var err error
		switch sc.Strategy {
		case "atomic":
			res, err = agent.Atomic(ctrl, req, timeout)
		case "", "interactive":
			res, err = agent.WithSubstitution(ctrl, req, agent.SubstituteOptions{
				Pool:              pool,
				CommitTimeout:     timeout,
				DropUnreplaceable: sc.DropUnreplaceable,
			})
		default:
			runErr = fmt.Errorf("unknown strategy %q", sc.Strategy)
			return
		}
		if err != nil {
			runErr = fmt.Errorf("co-allocation failed at t=%v: %v", g.Sim.Now(), err)
			return
		}
		fmt.Printf("\ncommitted at t=%v: %d subjobs, %d processes",
			g.Sim.Now(), res.Config.NSubjobs, res.Config.WorldSize)
		if res.Substitutions > 0 || res.Deleted > 0 {
			fmt.Printf(" (%d substituted, %d dropped)", res.Substitutions, res.Deleted)
		}
		fmt.Println()
		for _, info := range res.Job.Status() {
			fmt.Printf("  subjob %-14s %-10s %s\n", info.Spec.Label, info.Status, info.Reason)
		}
		res.Job.Done().Wait()
		fmt.Printf("computation finished at t=%v", g.Sim.Now())
		if msg := res.Job.Err(); msg != "" {
			fmt.Printf(" (%s)", msg)
		}
		fmt.Println()
		if sc.Timeline {
			fmt.Println("\nevent history:")
			for _, ev := range res.Job.History() {
				fmt.Println("  " + ev.String())
			}
			fmt.Println("\nsubmission timeline:")
			fmt.Print(g.Timeline.Render(96))
		}
	})
	if err := writeOutputs(g, opts); err != nil {
		return err
	}
	if simErr != nil {
		return simErr
	}
	return runErr
}
