// Command tracegrid reconstructs causal request trees from a cogrid
// trace and prints the deterministic critical-path attribution report —
// per request, which layer (broker queue wait, DUROC commit legs, GRAM
// submission, LRM startup) the end-to-end latency went to, and which
// subjob gated barrier release.
//
// It either reads a JSONL trace exported by `gridsim -trace-jsonl` /
// `benchgrid` (-analyze FILE, "-" for stdin), or runs the built-in B1
// smoke scenario in-process (-smoke) and analyzes its trace directly.
// With -check it validates the causal-tracing invariants (≥99% request-id
// coverage, single-rooted request trees, critical-path durations summing
// exactly to end-to-end latency) and exits non-zero on any violation —
// the mode `make trace-smoke` runs in CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cogrid/internal/experiments"
	"cogrid/internal/trace"
)

func main() {
	var (
		analyze   = flag.String("analyze", "", "read a JSONL trace from this file (\"-\" = stdin) and report on it")
		smoke     = flag.Bool("smoke", false, "run the built-in B1 smoke scenario in-process and analyze its trace")
		seed      = flag.Int64("seed", 1, "simulation seed for -smoke")
		check     = flag.Bool("check", false, "validate causal-tracing invariants; exit non-zero on any violation")
		traceOut  = flag.String("trace", "", "with -smoke: also write the JSONL trace to this file (\"-\" = stdout)")
		gaugesOut = flag.String("gauges", "", "with -smoke: write the gauge time-series CSV to this file (\"-\" = stdout)")
		gaugeStep = flag.Duration("gauge-step", 5*time.Second, "sampling cadence for -gauges")
	)
	flag.Parse()
	if err := run(*analyze, *smoke, *seed, *check, *traceOut, *gaugesOut, *gaugeStep); err != nil {
		fmt.Fprintf(os.Stderr, "tracegrid: %v\n", err)
		os.Exit(1)
	}
}

func run(analyze string, smoke bool, seed int64, check bool, traceOut, gaugesOut string, gaugeStep time.Duration) error {
	if (analyze == "") == !smoke {
		return fmt.Errorf("exactly one of -analyze FILE or -smoke is required")
	}

	var events []trace.Event
	switch {
	case smoke:
		cfg := experiments.BrokerLoadConfig{
			Machines:     3,
			MachineSize:  16,
			Sites:        2,
			ProcsPerSite: 4,
			Workers:      2,
			WorkTime:     time.Minute,
			Requests:     8,
			Tenants:      2,
			Seed:         seed,
		}
		_, g := experiments.BrokerLoadRun(cfg, 12, 2)
		events = g.Tracer.Events()
		if traceOut != "" {
			if err := writeTo(traceOut, g.Tracer.WriteJSONL); err != nil {
				return fmt.Errorf("write trace: %v", err)
			}
		}
		if gaugesOut != "" {
			series := g.Gauges.Series(gaugeStep, g.Sim.Now())
			if err := writeTo(gaugesOut, series.WriteCSV); err != nil {
				return fmt.Errorf("write gauges: %v", err)
			}
		}
	case analyze == "-":
		var err error
		if events, err = trace.ReadJSONL(os.Stdin); err != nil {
			return fmt.Errorf("read stdin: %v", err)
		}
	default:
		f, err := os.Open(analyze)
		if err != nil {
			return err
		}
		events, err = trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("read %s: %v", analyze, err)
		}
	}

	a := trace.Analyze(events)
	fmt.Print(a.Report())
	if check {
		if problems := a.Check(); len(problems) > 0 {
			fmt.Fprintf(os.Stderr, "\ntracegrid: %d invariant violation(s):\n", len(problems))
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "  - %s\n", p)
			}
			os.Exit(2)
		}
		fmt.Println("\ncheck: ok (coverage, tree shape, critical-path sums)")
	}
	return nil
}

// writeTo streams write(w) to a file path, with "-" meaning stdout.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
