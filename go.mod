module cogrid

go 1.22
