// Package wire implements the compact binary envelope codec the RPC
// layer puts on the simulated network: VLQ (varint) integers, a builtin
// method-name dictionary verified at connection handshake, CRC16-framed
// messages, and pooled encode buffers.
//
// The codec replaces the double json.Marshal the JSON envelope path paid
// per send (body, then envelope around it): the binary envelope is a few
// flag-driven length-prefixed fields followed by a memcpy of the
// already-encoded body. Frames are self-describing enough to survive a
// lossy transport — every frame carries its own method (dictionary ID or
// inline name) and a trailing CRC, so a dropped frame never desynchronizes
// the decoder. The JSON envelope format remains available (EncodeJSON) and
// the decoder distinguishes the two by first byte, so mixed-codec peers
// interoperate.
package wire

// VLQ integers: 7 value bits per byte, least-significant group first, high
// bit set on every byte except the last. Identical to encoding/binary's
// unsigned varint, implemented here so the codec owns (and benchmarks) its
// own hot path.

// maxVarintLen is the longest VLQ encoding of a uint64 (10 bytes).
const maxVarintLen = 10

// AppendUvarint appends the VLQ encoding of x to dst and returns the
// extended slice.
func AppendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// Uvarint decodes a VLQ integer from the front of buf. It returns the
// value and the number of bytes consumed; n == 0 reports a truncated or
// overlong encoding.
func Uvarint(buf []byte) (x uint64, n int) {
	var shift uint
	for i := 0; i < len(buf); i++ {
		if i == maxVarintLen {
			return 0, 0 // overlong
		}
		b := buf[i]
		if b < 0x80 {
			if i == maxVarintLen-1 && b > 1 {
				return 0, 0 // overflows uint64
			}
			return x | uint64(b)<<shift, i + 1
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0 // truncated
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendBytes appends a length-prefixed byte slice.
func appendBytes(dst []byte, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// cutBytes splits a length-prefixed field from the front of buf, returning
// the field, the remainder, and ok.
func cutBytes(buf []byte) (field, rest []byte, ok bool) {
	l, n := Uvarint(buf)
	if n == 0 || l > uint64(len(buf)-n) {
		return nil, nil, false
	}
	return buf[n : n+int(l)], buf[n+int(l):], true
}
