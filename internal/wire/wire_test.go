package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// sampleEnvelopes covers every field combination the RPC layer produces.
func sampleEnvelopes() []Envelope {
	return []Envelope{
		{Kind: KindCall, ID: 1, Method: "submit", Req: "req-1", Span: "/call:submit#1", Body: []byte(`{"rsl":"+(executable=app)"}`)},
		{Kind: KindCall, ID: 7, Method: "a-method-outside-the-dictionary", Body: []byte(`{"x":1}`)},
		{Kind: KindReply, ID: 1, Body: []byte(`{"contact":"m0:gram/j1"}`)},
		{Kind: KindReply, ID: 9, Error: "gram: no such job"},
		{Kind: KindNotify, Method: "job-state", Req: "req-2", Span: "/submit/serve", Body: []byte(`{"state":"ACTIVE"}`)},
		{Kind: KindNotify, Method: "checkin"},
		{Kind: KindCall, ID: 1<<64 - 1, Method: "heartbeat", Body: []byte(`"` + string(bytes.Repeat([]byte{'x'}, 300)) + `"`)},
		{Kind: KindCall, ID: 3, Method: "query"},
	}
}

func envEqual(a, b Envelope) bool {
	return a.Kind == b.Kind && a.ID == b.ID && a.Method == b.Method &&
		a.Error == b.Error && a.Req == b.Req && a.Span == b.Span &&
		bytes.Equal(a.Body, b.Body)
}

func TestWireRoundTrip(t *testing.T) {
	var enc Encoder
	var dec Decoder
	for i, want := range sampleEnvelopes() {
		frame := enc.Encode(nil, &want)
		var got Envelope
		if err := dec.Decode(frame, &got); err != nil {
			t.Fatalf("envelope %d: decode: %v", i, err)
		}
		if !envEqual(want, got) {
			t.Errorf("envelope %d: round trip mismatch:\nwant %+v\ngot  %+v", i, want, got)
		}
		if i == 0 && frame[0] != magicPrologue {
			t.Errorf("first frame does not start with the handshake prologue (got 0x%02x)", frame[0])
		}
		if i > 0 && frame[0] != magicFrame {
			t.Errorf("envelope %d: non-first frame carries a prologue (got 0x%02x)", i, frame[0])
		}
	}
	// The binary path is payload-agnostic: bodies need not be JSON.
	raw := Envelope{Kind: KindNotify, Method: "blob", Body: bytes.Repeat([]byte{magicFrame, magicPrologue, '{'}, 100)}
	frame := enc.Encode(nil, &raw)
	var got Envelope
	if err := dec.Decode(frame, &got); err != nil || !envEqual(raw, got) {
		t.Errorf("arbitrary-bytes body round trip failed: err=%v", err)
	}
}

func TestWireJSONRoundTrip(t *testing.T) {
	var dec Decoder
	for i, want := range sampleEnvelopes() {
		raw, err := EncodeJSON(&want)
		if err != nil {
			t.Fatalf("envelope %d: encode json: %v", i, err)
		}
		if raw[0] != '{' {
			t.Fatalf("envelope %d: json envelope does not start with '{'", i)
		}
		var got Envelope
		if err := dec.Decode(raw, &got); err != nil {
			t.Fatalf("envelope %d: decode json: %v", i, err)
		}
		if !envEqual(want, got) {
			t.Errorf("envelope %d: json round trip mismatch:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// TestWireBinarySmallerThanJSON pins the point of the codec: a typical
// call envelope must be substantially smaller in binary form.
func TestWireBinarySmallerThanJSON(t *testing.T) {
	env := Envelope{Kind: KindCall, ID: 42, Method: "submit",
		Req: "req-17", Span: "/submit/attempt-1/call:submit#42",
		Body: []byte(`{"rsl":"+(&(executable=app)(count=16))"}`)}
	var enc Encoder
	enc.wrotePrologue = true // steady state: no prologue
	bin := enc.Encode(nil, &env)
	js, err := EncodeJSON(&env)
	if err != nil {
		t.Fatal(err)
	}
	overhead := len(bin) - len(env.Body)
	jsOverhead := len(js) - len(env.Body)
	if overhead*2 > jsOverhead {
		t.Errorf("binary envelope overhead %dB not < half of JSON's %dB", overhead, jsOverhead)
	}
}

func TestWireCRCCorruptionDetected(t *testing.T) {
	var enc Encoder
	env := Envelope{Kind: KindCall, ID: 5, Method: "submit", Body: []byte(`{"n":1}`)}
	frame := enc.Encode(nil, &env)
	var dec Decoder
	for i := range frame {
		corrupt := append([]byte(nil), frame...)
		corrupt[i] ^= 0x40
		var got Envelope
		if err := dec.Decode(corrupt, &got); err == nil {
			// A flip may still parse only if it produced a valid frame of
			// identical content — impossible with a single-bit CRC16 flip.
			t.Errorf("bit flip at byte %d went undetected", i)
		} else if got.Kind != 0 || got.Body != nil {
			t.Errorf("bit flip at byte %d: decode error left fields populated: %+v", i, got)
		}
	}
}

func TestWireTruncatedFrames(t *testing.T) {
	var enc Encoder
	env := Envelope{Kind: KindNotify, Method: "job-state", Req: "r", Span: "s", Body: []byte(`{"a":1}`)}
	frame := enc.Encode(nil, &env)
	var dec Decoder
	for n := 0; n < len(frame); n++ {
		var got Envelope
		if err := dec.Decode(frame[:n], &got); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully: %+v", n, got)
		}
	}
}

func TestWireDictHit(t *testing.T) {
	var enc Encoder
	enc.wrotePrologue = true
	inDict := enc.Encode(nil, &Envelope{Kind: KindNotify, Method: "submit"})
	var enc2 Encoder
	enc2.wrotePrologue = true
	outDict := enc2.Encode(nil, &Envelope{Kind: KindNotify, Method: "submitx"})
	if len(inDict) >= len(outDict) {
		t.Errorf("dictionary method frame (%dB) not smaller than inline method frame (%dB)", len(inDict), len(outDict))
	}
	// The dictionary must hold the hot-path methods.
	for _, m := range []string{"submit", "job-state", "checkin", "heartbeat", "query", "initgroups"} {
		if _, ok := methodID(m); !ok {
			t.Errorf("method %q missing from the builtin dictionary", m)
		}
	}
}

func TestWireJSONFormatUnchanged(t *testing.T) {
	// The JSON side of the codec must keep the legacy field layout.
	env := Envelope{Kind: KindCall, ID: 3, Method: "submit", Req: "r1", Span: "/s", Body: []byte(`{"x":1}`)}
	raw, err := EncodeJSON(&env)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"id", "kind", "method", "req", "span", "body"} {
		if _, ok := m[key]; !ok {
			t.Errorf("json envelope missing legacy field %q (got %s)", key, raw)
		}
	}
	if string(m["kind"]) != `"call"` {
		t.Errorf("kind = %s, want \"call\"", m["kind"])
	}
}

func TestUvarint(t *testing.T) {
	cases := []uint64{0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 1<<32 - 1, 1 << 32, 1<<64 - 1}
	for _, want := range cases {
		buf := AppendUvarint(nil, want)
		got, n := Uvarint(buf)
		if n != len(buf) || got != want {
			t.Errorf("Uvarint(Append(%d)) = %d (n=%d, len=%d)", want, got, n, len(buf))
		}
		if _, n := Uvarint(buf[:len(buf)-1]); n != 0 {
			t.Errorf("truncated varint for %d decoded with n=%d", want, n)
		}
	}
	// Overlong and overflowing encodings must be rejected.
	if _, n := Uvarint(bytes.Repeat([]byte{0x80}, 11)); n != 0 {
		t.Error("overlong varint accepted")
	}
	if _, n := Uvarint(append(bytes.Repeat([]byte{0xff}, 9), 0x02)); n != 0 {
		t.Error("overflowing varint accepted")
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16(check vector) = %#04x, want 0x29b1", got)
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	*b = append(*b, 1, 2, 3)
	PutBuf(b)
	b2 := GetBuf()
	if len(*b2) != 0 {
		t.Errorf("pooled buffer not reset: len %d", len(*b2))
	}
	PutBuf(b2)
}

// TestStandalonePrologue: EncodePrologue emits a CRC-framed prologue with
// no envelope; the decoder validates it, leaves env zeroed (Kind 0), and
// subsequent frames from the same encoder carry no prologue of their own.
func TestStandalonePrologue(t *testing.T) {
	var enc Encoder
	var dec Decoder
	prologue := enc.EncodePrologue(nil)
	var env Envelope
	if err := dec.Decode(prologue, &env); err != nil {
		t.Fatalf("Decode(standalone prologue) = %v", err)
	}
	if env.Kind != 0 {
		t.Fatalf("prologue-only frame decoded to kind %d, want 0", env.Kind)
	}
	// A corrupted prologue must still fail its CRC.
	bad := append([]byte(nil), prologue...)
	bad[2] ^= 0xFF
	if err := dec.Decode(bad, &env); err != ErrCRC {
		t.Fatalf("Decode(corrupted prologue) = %v, want ErrCRC", err)
	}
	// The next data frame is bare: no second prologue.
	frame := enc.Encode(nil, &Envelope{Kind: KindNotify, Method: "status"})
	if frame[0] != 0xC7 {
		t.Fatalf("frame after EncodePrologue starts with %#x, want bare 0xC7", frame[0])
	}
	if err := dec.Decode(frame, &env); err != nil || env.Method != "status" {
		t.Fatalf("bare frame after prologue: env %+v, err %v", env, err)
	}
}
