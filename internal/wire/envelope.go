package wire

import (
	"encoding/json"
	"errors"
	"sync"
)

// Envelope kinds, carried in the low two flag bits of a binary frame and
// as strings ("call", "reply", "notify") in the JSON format.
const (
	KindCall   byte = 1
	KindReply  byte = 2
	KindNotify byte = 3
)

// Version is the wire protocol version the handshake prologue announces.
const Version = 1

// Frame markers. Neither collides with '{', so the decoder distinguishes
// binary frames from JSON envelopes by first byte.
const (
	magicFrame    = 0xC7 // every binary envelope frame
	magicPrologue = 0xC0 // handshake prologue, prefixed to a direction's first frame
)

// Flag bits of a binary frame.
const (
	flagKindMask     = 0x03
	flagID           = 1 << 2 // envelope carries a call/reply ID
	flagDictMethod   = 1 << 3 // method as builtin dictionary ID
	flagInlineMethod = 1 << 4 // method as inline length-prefixed name
	flagError        = 1 << 5 // reply carries a remote error string
	flagCtx          = 1 << 6 // causal span context (req + span strings)
	flagBody         = 1 << 7 // length-prefixed body bytes follow
)

// Decode errors.
var (
	ErrFrame   = errors.New("wire: malformed frame")
	ErrCRC     = errors.New("wire: bad frame checksum")
	ErrVersion = errors.New("wire: unsupported protocol version")
	ErrDict    = errors.New("wire: dictionary mismatch in handshake prologue")
)

// Envelope is one RPC message in codec-independent form. Body holds the
// already-encoded (JSON) application payload; the envelope codec treats it
// as opaque bytes.
type Envelope struct {
	Kind   byte
	ID     uint64
	Method string
	Error  string
	Req    string // causal span context: request ID
	Span   string // causal span context: span path
	Body   []byte
}

// Encoder encodes binary envelope frames for one direction of one
// connection. Its only state is whether the handshake prologue has been
// sent; frames themselves are stateless and independently decodable, so a
// frame lost in flight never desynchronizes the peer.
type Encoder struct {
	wrotePrologue bool
}

// Encode appends env as a binary frame to dst and returns the extended
// slice. The first frame an Encoder produces is prefixed with the
// handshake prologue (version, dictionary length, dictionary hash); the
// trailing CRC16 covers prologue and frame alike.
func (e *Encoder) Encode(dst []byte, env *Envelope) []byte {
	start := len(dst)
	if !e.wrotePrologue {
		e.wrotePrologue = true
		dst = appendPrologue(dst)
	}
	flags := env.Kind & flagKindMask
	dictID, inDict := uint32(0), false
	if env.Method != "" {
		if id, ok := methodID(env.Method); ok {
			dictID, inDict = id, true
			flags |= flagDictMethod
		} else {
			flags |= flagInlineMethod
		}
	}
	if env.ID != 0 {
		flags |= flagID
	}
	if env.Error != "" {
		flags |= flagError
	}
	if env.Req != "" || env.Span != "" {
		flags |= flagCtx
	}
	if len(env.Body) != 0 {
		flags |= flagBody
	}
	dst = append(dst, magicFrame, flags)
	if flags&flagID != 0 {
		dst = AppendUvarint(dst, env.ID)
	}
	if inDict {
		dst = AppendUvarint(dst, uint64(dictID))
	} else if flags&flagInlineMethod != 0 {
		dst = appendString(dst, env.Method)
	}
	if flags&flagError != 0 {
		dst = appendString(dst, env.Error)
	}
	if flags&flagCtx != 0 {
		dst = appendString(dst, env.Req)
		dst = appendString(dst, env.Span)
	}
	if flags&flagBody != 0 {
		dst = appendBytes(dst, env.Body)
	}
	crc := CRC16(dst[start:])
	return append(dst, byte(crc>>8), byte(crc))
}

// EncodePrologue appends the handshake prologue as a standalone
// CRC-framed message and marks it sent, so subsequent Encode calls emit
// bare frames. Connection-oriented senders use this at setup: which data
// frame goes out first can depend on goroutine scheduling within a
// virtual instant, so piggybacking the prologue there would make
// per-message sizes nondeterministic.
func (e *Encoder) EncodePrologue(dst []byte) []byte {
	start := len(dst)
	e.wrotePrologue = true
	dst = appendPrologue(dst)
	crc := CRC16(dst[start:])
	return append(dst, byte(crc>>8), byte(crc))
}

// appendPrologue appends the raw handshake prologue: version, dictionary
// length, dictionary hash.
func appendPrologue(dst []byte) []byte {
	dst = append(dst, magicPrologue, 'g')
	dst = AppendUvarint(dst, Version)
	dst = AppendUvarint(dst, uint64(DictLen()))
	h := DictHash()
	return append(dst, byte(h>>24), byte(h>>16), byte(h>>8), byte(h))
}

// Decoder decodes envelope frames from one direction of one connection,
// accepting both binary frames and JSON envelopes (detected by first
// byte). It is stateless across frames: a prologue is validated wherever
// it appears, and its loss costs nothing but the validation.
type Decoder struct{}

// Decode parses one received frame into env. On the binary path,
// env.Body aliases frame's storage — valid for as long as the caller
// keeps frame alive, which the receive path does (each delivered message
// owns its buffer). Any error leaves env zeroed.
func (d *Decoder) Decode(frame []byte, env *Envelope) error {
	*env = Envelope{}
	if len(frame) == 0 {
		return ErrFrame
	}
	if frame[0] == '{' {
		return decodeJSON(frame, env)
	}
	buf, ok := checkCRC(frame)
	if !ok {
		return ErrCRC
	}
	if len(buf) >= 2 && buf[0] == magicPrologue {
		if buf[1] != 'g' {
			return ErrFrame
		}
		buf = buf[2:]
		v, n := Uvarint(buf)
		if n == 0 {
			return ErrFrame
		}
		buf = buf[n:]
		if v != Version {
			return ErrVersion
		}
		dictLen, n := Uvarint(buf)
		if n == 0 || len(buf) < n+4 {
			return ErrFrame
		}
		buf = buf[n:]
		hash := uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])
		buf = buf[4:]
		if dictLen != uint64(DictLen()) || hash != DictHash() {
			return ErrDict
		}
		if len(buf) == 0 {
			// Standalone prologue frame: validated, carries no envelope.
			// env stays zeroed (Kind 0); receive loops skip it.
			return nil
		}
	}
	if len(buf) < 2 || buf[0] != magicFrame {
		return ErrFrame
	}
	flags := buf[1]
	buf = buf[2:]
	kind := flags & flagKindMask
	if kind == 0 || flags&flagDictMethod != 0 && flags&flagInlineMethod != 0 {
		return ErrFrame
	}
	if flags&flagID != 0 {
		id, n := Uvarint(buf)
		if n == 0 {
			return ErrFrame
		}
		env.ID = id
		buf = buf[n:]
	}
	if flags&flagDictMethod != 0 {
		id, n := Uvarint(buf)
		if n == 0 {
			return ErrFrame
		}
		buf = buf[n:]
		name, ok := methodName(id)
		if !ok {
			*env = Envelope{}
			return ErrFrame
		}
		env.Method = name
	} else if flags&flagInlineMethod != 0 {
		f, rest, ok := cutBytes(buf)
		if !ok {
			*env = Envelope{}
			return ErrFrame
		}
		env.Method = string(f)
		buf = rest
	}
	if flags&flagError != 0 {
		f, rest, ok := cutBytes(buf)
		if !ok {
			*env = Envelope{}
			return ErrFrame
		}
		env.Error = string(f)
		buf = rest
	}
	if flags&flagCtx != 0 {
		req, rest, ok := cutBytes(buf)
		if !ok {
			*env = Envelope{}
			return ErrFrame
		}
		span, rest2, ok := cutBytes(rest)
		if !ok {
			*env = Envelope{}
			return ErrFrame
		}
		env.Req, env.Span = string(req), string(span)
		buf = rest2
	}
	if flags&flagBody != 0 {
		f, rest, ok := cutBytes(buf)
		if !ok {
			*env = Envelope{}
			return ErrFrame
		}
		env.Body = f
		buf = rest
	}
	env.Kind = kind
	if len(buf) != 0 {
		*env = Envelope{}
		return ErrFrame
	}
	return nil
}

// jsonEnvelope is the legacy JSON wire layout, preserved field for field
// so binary and JSON peers interoperate during the codec comparison.
type jsonEnvelope struct {
	ID     uint64          `json:"id,omitempty"`
	Kind   string          `json:"kind"`
	Method string          `json:"method,omitempty"`
	Error  string          `json:"error,omitempty"`
	Req    string          `json:"req,omitempty"`
	Span   string          `json:"span,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
}

var kindNames = [...]string{KindCall: "call", KindReply: "reply", KindNotify: "notify"}

// EncodeJSON encodes env in the legacy JSON envelope format.
func EncodeJSON(env *Envelope) ([]byte, error) {
	je := jsonEnvelope{
		ID:     env.ID,
		Method: env.Method,
		Error:  env.Error,
		Req:    env.Req,
		Span:   env.Span,
		Body:   env.Body,
	}
	if int(env.Kind) < len(kindNames) {
		je.Kind = kindNames[env.Kind]
	}
	return json.Marshal(je)
}

func decodeJSON(raw []byte, env *Envelope) error {
	var je jsonEnvelope
	if err := json.Unmarshal(raw, &je); err != nil {
		return ErrFrame
	}
	switch je.Kind {
	case "call":
		env.Kind = KindCall
	case "reply":
		env.Kind = KindReply
	case "notify":
		env.Kind = KindNotify
	default:
		// Unknown kinds decode to Kind 0; dispatch loops ignore them, as
		// the JSON-only protocol always did.
	}
	env.ID = je.ID
	env.Method = je.Method
	env.Error = je.Error
	env.Req = je.Req
	env.Span = je.Span
	env.Body = je.Body
	return nil
}

// bufPool recycles envelope encode buffers: Encode appends into a pooled
// slice, the transport copies the frame onto the wire, and the buffer
// returns to the pool — the steady-state encode path allocates nothing.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuf returns a pooled, empty encode buffer.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf recycles a buffer obtained from GetBuf. Oversized buffers are
// dropped so one huge body doesn't pin its capacity in the pool.
func PutBuf(b *[]byte) {
	if cap(*b) > 1<<16 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
