package wire

import "hash/fnv"

// The builtin method dictionary: every RPC method name the stack's
// services use in production. Both ends of a connection compile the same
// table into the binary, so a dictionary method costs one VLQ byte on the
// wire instead of its name. The handshake prologue each direction sends
// with its first frame carries the table's length and hash; a decoder
// rejects a prologue whose dictionary disagrees with its own, which is
// what "exchanging" the dictionary means for co-compiled endpoints.
//
// Methods outside the table (tests, future services) are sent with their
// name inline in every frame rather than through a negotiated dynamic ID:
// the transport drops messages under partitions and overload, and a
// dictionary built from frames that may never arrive would desynchronize.
// Inline names keep every frame independently decodable.
var builtin = []string{
	"append",            // federation: journal replication
	"cancel",            // gram: job cancellation
	"cancelreservation", // gram: advance-reservation release
	"checkin",           // core: DUROC runtime barrier checkin
	"coordinator",       // federation: bully election victory
	"earliestslot",      // gram: reservation slot probe
	"election",          // federation: bully election round
	"estimatewait",      // gram: queue-wait forecast
	"getmeta",           // mds: metadata fetch
	"heartbeat",         // federation: leader lease + shard map
	"initgroups",        // nis: group lookup
	"job-state",         // gram: asynchronous state callback
	"putmeta",           // mds: metadata publish
	"query",             // mds: resource discovery
	"queueinfo",         // gram: LRM queue introspection
	"register",          // mds: resource registration
	"reserve",           // gram: advance reservation
	"signal",            // gram: suspend/resume
	"stats",             // broker: service statistics
	"status",            // gram: job status poll
	"submit",            // gram + broker: the hot path
	"unregister",        // mds: resource removal
}

var builtinID = func() map[string]uint32 {
	m := make(map[string]uint32, len(builtin))
	for i, name := range builtin {
		m[name] = uint32(i)
	}
	return m
}()

// DictLen returns the number of builtin dictionary entries.
func DictLen() int { return len(builtin) }

// DictHash returns the FNV-32a hash of the builtin dictionary, the value
// the handshake prologue carries so both ends can verify they compiled
// the same table.
func DictHash() uint32 {
	h := fnv.New32a()
	for _, name := range builtin {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	return h.Sum32()
}

// methodID returns the dictionary ID for a method name.
func methodID(name string) (uint32, bool) {
	id, ok := builtinID[name]
	return id, ok
}

// methodName returns the dictionary entry for an ID.
func methodName(id uint64) (string, bool) {
	if id >= uint64(len(builtin)) {
		return "", false
	}
	return builtin[id], true
}
