package wire

import (
	"bytes"
	"testing"
)

// FuzzWireEnvelope drives the decoder with arbitrary bytes and, whenever
// they decode, re-encodes and re-decodes to prove the codec is a
// round-trip fixpoint. The seed corpus holds valid binary frames (with
// and without prologue), JSON envelopes, and classic parser traps.
func FuzzWireEnvelope(f *testing.F) {
	var enc Encoder
	for _, env := range sampleEnvelopes() {
		env := env
		f.Add(enc.Encode(nil, &env))
		if js, err := EncodeJSON(&env); err == nil {
			f.Add(js)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{magicFrame})
	f.Add([]byte{magicFrame, 0xFF})
	f.Add([]byte{magicPrologue, 'g'})
	f.Add([]byte(`{"kind":"call","id":1}`))
	f.Add([]byte(`{"kind":"frobnicate"}`))
	f.Add([]byte(`{`))
	f.Add(bytes.Repeat([]byte{0x80}, 64))                                                      // overlong varints everywhere
	f.Add(append([]byte{magicFrame, flagBody | byte(KindCall)}, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F)) // huge body length
	f.Fuzz(func(t *testing.T, data []byte) {
		var dec Decoder
		var env Envelope
		if err := dec.Decode(data, &env); err != nil {
			if env.Kind != 0 || env.ID != 0 || env.Method != "" || env.Body != nil {
				t.Fatalf("decode error left envelope populated: %+v", env)
			}
			return
		}
		if env.Kind == 0 {
			return // valid JSON of an unknown kind: ignored by dispatch
		}
		// Whatever decoded must survive a binary round trip bit for bit.
		var enc Encoder
		enc.wrotePrologue = true
		frame := enc.Encode(nil, &env)
		var again Envelope
		if err := dec.Decode(frame, &again); err != nil {
			t.Fatalf("re-decode of re-encoded envelope failed: %v (env %+v)", err, env)
		}
		if !envEqual(env, again) {
			t.Fatalf("round trip not a fixpoint:\nfirst  %+v\nsecond %+v", env, again)
		}
	})
}
