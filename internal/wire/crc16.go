package wire

// CRC16 (CCITT-FALSE: polynomial 0x1021, initial value 0xFFFF) frames
// every binary envelope. The simulated transport never corrupts bytes, but
// the checksum is what lets the decoder reject garbage cheaply — a frame
// that is not a frame (fuzzed input, a stray JSON or handshake fragment)
// fails the CRC before any field is parsed.

const crcPoly = 0x1021

var crcTable = buildCRCTable()

func buildCRCTable() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for bit := 0; bit < 8; bit++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ crcPoly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}

// CRC16 returns the CCITT-FALSE checksum of data.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}

// checkCRC verifies a frame's trailing checksum and returns the frame body
// without it.
func checkCRC(frame []byte) (body []byte, ok bool) {
	if len(frame) < 2 {
		return nil, false
	}
	body = frame[:len(frame)-2]
	want := uint16(frame[len(frame)-2])<<8 | uint16(frame[len(frame)-1])
	return body, CRC16(body) == want
}
