package federation

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"cogrid/internal/gram"
	"cogrid/internal/mds"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// reapCancelTimeout bounds each adopted-entry cancel so a hung LRM does
// not stall the whole sweep.
const reapCancelTimeout = 30 * time.Second

// Protocol messages. All four methods run on the "fed" service.
type heartbeatMsg struct {
	From  string   `json:"from"`
	Epoch int      `json:"epoch"`
	Shard ShardMap `json:"shard"`
	// UpdStart is the log offset Updates continues from (the leader's
	// record of what this follower has acknowledged).
	UpdStart int     `json:"upd_start"`
	Updates  []Entry `json:"updates,omitempty"`
}

type heartbeatReply struct {
	// Ack is the log length the follower has now received; -1 rejects a
	// stale leader (Epoch then carries the follower's newer epoch).
	Ack   int `json:"ack"`
	Epoch int `json:"epoch"`
	// Updates are the follower's journal mutations not yet sequenced by
	// the leader, piggybacked on the heartbeat reply.
	Updates []Entry `json:"updates,omitempty"`
}

type electionMsg struct {
	From string `json:"from"`
	ID   int    `json:"id"`
}

type coordMsg struct {
	From  string   `json:"from"`
	Epoch int      `json:"epoch"`
	Shard ShardMap `json:"shard"`
}

type appendMsg struct {
	From    string  `json:"from"`
	Entries []Entry `json:"entries"`
}

type appendReply struct {
	// Entries are the sequenced copies of what was pushed, so the
	// follower can drain its unacked buffer immediately.
	Entries []Entry `json:"entries,omitempty"`
}

type ackReply struct{}

// replicaID resolves a replica host name back to its index (-1 unknown).
func (f *Federation) replicaID(name string) int {
	if !strings.HasPrefix(name, f.opts.HostPrefix) {
		return -1
	}
	var id int
	if _, err := fmt.Sscanf(name[len(f.opts.HostPrefix):], "%d", &id); err != nil {
		return -1
	}
	if id < 0 || id >= f.opts.Replicas {
		return -1
	}
	return id
}

// errPeerTimeout reports a protocol call that exceeded the probe bound.
var errPeerTimeout = fmt.Errorf("fed: peer call timed out")

// peerCall makes one federation protocol call to a peer, bounded by the
// probe timeout end to end — including connection establishment, since
// dialing a dead peer costs the transport's full SYN-retry window, far
// longer than a heartbeat round can afford to stall. The dial and call
// run in a helper process that hands the raw result back over a
// channel; on timeout the helper is abandoned (its TrySend lands in the
// buffer unread) and the caller records a miss.
func (inc *incarnation) peerCall(peer, method string, req, reply any) error {
	f := inc.r.fed
	type outcome struct {
		body json.RawMessage
		err  error
	}
	ch := vtime.NewChan[outcome](f.sim, fmt.Sprintf("fed-call:%s/g%d>%s", inc.r.name, inc.gen, peer), 1)
	f.sim.GoDaemon(fmt.Sprintf("fed-call:%s/g%d>%s/%s", inc.r.name, inc.gen, peer, method), func() {
		conn, err := inc.r.host.DialCtx(transport.Addr{Host: peer, Service: ServiceName},
			inc.ctx.Child(method+">"+peer))
		if err != nil {
			ch.TrySend(outcome{err: err})
			return
		}
		c := rpc.NewClient(f.sim, conn)
		defer c.Close()
		var body json.RawMessage
		err = c.Call(method, req, &body, f.opts.ProbeTimeout)
		ch.TrySend(outcome{body: body, err: err})
	})
	out, res := ch.RecvTimeout(f.opts.ProbeTimeout)
	if res != vtime.RecvOK {
		return errPeerTimeout
	}
	if out.err != nil {
		return out.err
	}
	if reply == nil || len(out.body) == 0 {
		return nil
	}
	return json.Unmarshal(out.body, reply)
}

// handleCall serves the federation protocol endpoint.
func (inc *incarnation) handleCall(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
	switch method {
	case "heartbeat":
		var req heartbeatMsg
		if err := rpc.Decode(body, &req); err != nil {
			return nil, err
		}
		return inc.handleHeartbeat(req)
	case "election":
		var req electionMsg
		if err := rpc.Decode(body, &req); err != nil {
			return nil, err
		}
		return inc.handleElection(req)
	case "coordinator":
		var req coordMsg
		if err := rpc.Decode(body, &req); err != nil {
			return nil, err
		}
		return inc.handleCoordinator(req)
	case "append":
		var req appendMsg
		if err := rpc.Decode(body, &req); err != nil {
			return nil, err
		}
		return inc.handleAppend(req)
	}
	return nil, fmt.Errorf("fed: unknown method %q", method)
}

func (inc *incarnation) handleHeartbeat(req heartbeatMsg) (any, error) {
	f := inc.r.fed
	fromID := f.replicaID(req.From)
	inc.mu.Lock()
	if req.Epoch < inc.epoch ||
		(req.Epoch == inc.epoch && inc.leader == inc.r.id && fromID < inc.r.id) {
		// Stale leadership: reject with our epoch so the sender steps
		// down. Equal-epoch splits (possible after concurrent elections
		// during a partition) resolve to the higher id, matching the
		// bully protocol's order.
		epoch := inc.epoch
		inc.mu.Unlock()
		return heartbeatReply{Ack: -1, Epoch: epoch}, nil
	}
	inc.leader = fromID
	inc.epoch = req.Epoch
	inc.lastBeat = f.sim.Now()
	inc.electing = false
	inc.mu.Unlock()
	inc.adoptShard(req.Shard)
	inc.jour.applyBroadcast(req.Updates)
	inc.count("heartbeat", "recv", 1)
	return heartbeatReply{
		Ack:     req.UpdStart + len(req.Updates),
		Epoch:   req.Epoch,
		Updates: inc.jour.pending(),
	}, nil
}

func (inc *incarnation) handleElection(req electionMsg) (any, error) {
	// A lower id is probing for live higher replicas. Answering suppresses
	// its candidacy; per the bully protocol we then ensure a leader
	// emerges at or above our own id.
	inc.mu.Lock()
	takeover := inc.leader != inc.r.id && !inc.electing
	inc.mu.Unlock()
	if takeover {
		inc.sim().GoDaemon(fmt.Sprintf("fed-elect:%s/g%d", inc.r.name, inc.gen), inc.runElection)
	}
	return ackReply{}, nil
}

func (inc *incarnation) handleCoordinator(req coordMsg) (any, error) {
	f := inc.r.fed
	fromID := f.replicaID(req.From)
	inc.mu.Lock()
	if req.Epoch >= inc.epoch {
		inc.epoch = req.Epoch
		inc.leader = fromID
		inc.electing = false
		inc.lastBeat = f.sim.Now()
	}
	inc.mu.Unlock()
	inc.adoptShard(req.Shard)
	inc.count("coordinator", "recv", 1)
	return ackReply{}, nil
}

func (inc *incarnation) handleAppend(req appendMsg) (any, error) {
	inc.mu.Lock()
	isLeader := inc.leader == inc.r.id
	inc.mu.Unlock()
	if !isLeader {
		return nil, fmt.Errorf("fed: %s is not leader", inc.r.name)
	}
	seqd := make([]Entry, 0, len(req.Entries))
	for _, e := range req.Entries {
		inc.jour.leaderAccept(e)
		if cur, ok := inc.jour.get(e.Key); ok {
			seqd = append(seqd, cur)
		}
	}
	inc.count("append", "recv", 1)
	return appendReply{Entries: seqd}, nil
}

// monitor is the replica's protocol clock: as leader it heartbeats the
// peer group every interval; as follower it watches the lease and starts
// an election when the leader has gone silent.
func (inc *incarnation) monitor() {
	f := inc.r.fed
	for {
		inc.mu.Lock()
		leader, electing, lastBeat := inc.leader, inc.electing, inc.lastBeat
		inc.mu.Unlock()
		switch {
		case leader == inc.r.id:
			inc.heartbeatRound()
		case electing:
			// A takeover election spawned by handleElection is running.
		case f.sim.Now()-lastBeat > f.opts.LeaseTimeout:
			inc.runElection()
		}
		if inc.stop.WaitTimeout(f.opts.HeartbeatInterval) {
			return
		}
	}
}

// heartbeatRound sends one heartbeat to every peer in parallel and folds
// the replies back in ascending peer order, so the round's effect on the
// journal and liveness view is a deterministic function of the replies.
func (inc *incarnation) heartbeatRound() {
	f := inc.r.fed
	n := f.opts.Replicas
	inc.mu.Lock()
	epoch := inc.epoch
	shard := inc.shard
	acked := append([]int(nil), inc.acked...)
	inc.mu.Unlock()

	type beat struct {
		ok    bool
		reply heartbeatReply
	}
	results := make([]beat, n)
	wg := vtime.NewWaitGroup(f.sim)
	for p := 0; p < n; p++ {
		if p == inc.r.id {
			continue
		}
		p := p
		wg.Add(1)
		f.sim.GoDaemon(fmt.Sprintf("fed-beat:%s/g%d>%02d", inc.r.name, inc.gen, p), func() {
			defer wg.Done()
			updates, _ := inc.jour.logSuffix(acked[p])
			req := heartbeatMsg{
				From: inc.r.name, Epoch: epoch, Shard: shard,
				UpdStart: acked[p], Updates: updates,
			}
			var reply heartbeatReply
			err := inc.peerCall(f.replicaName(p), "heartbeat", req, &reply)
			results[p] = beat{ok: err == nil, reply: reply}
		})
	}
	wg.Wait()

	inc.mu.Lock()
	if inc.leader != inc.r.id || inc.epoch != epoch {
		// Deposed while the round was in flight.
		inc.mu.Unlock()
		return
	}
	var dead []int
	rejoined := false
	for p := 0; p < n; p++ {
		if p == inc.r.id {
			continue
		}
		res := results[p]
		switch {
		case res.ok && res.reply.Ack < 0:
			// A peer with a newer epoch: this leadership is stale.
			inc.leader = -1
			inc.lastBeat = f.sim.Now()
			inc.mu.Unlock()
			inc.count("leader", "stepdown", 1)
			return
		case res.ok:
			if !inc.live[p] {
				inc.live[p] = true
				rejoined = true
			}
			inc.misses[p] = 0
			if res.reply.Ack > inc.acked[p] {
				inc.acked[p] = res.reply.Ack
			}
			for _, e := range res.reply.Updates {
				inc.jour.leaderAccept(e)
			}
		case inc.live[p]:
			inc.misses[p]++
			if inc.misses[p] >= f.opts.DeadBeats {
				inc.live[p] = false
				dead = append(dead, p)
			}
		}
	}
	var newShard ShardMap
	reshard := rejoined || len(dead) > 0
	if reshard {
		newShard = inc.recomputeShardLocked()
		for _, p := range dead {
			inc.handoffLocked(f.replicaName(p))
		}
	}
	inc.mu.Unlock()

	inc.count("heartbeat", "round", 1)
	for _, p := range dead {
		inc.count("replica", "declare-dead", 1)
		f.tracer().InstantCtx(inc.ctx, "fed", "declare-dead", inc.r.name, inc.r.name, "",
			trace.Arg{Key: "peer", Val: f.replicaName(p)})
	}
	if reshard {
		inc.publishShardMap(newShard)
	}
}

// runElection is the bully protocol: probe every higher id; any answer
// suppresses this candidacy (the higher replica takes over), no answer
// means this replica wins the group.
func (inc *incarnation) runElection() {
	f := inc.r.fed
	inc.mu.Lock()
	if inc.electing || inc.leader == inc.r.id {
		inc.mu.Unlock()
		return
	}
	inc.electing = true
	startEpoch := inc.epoch
	inc.mu.Unlock()
	start := f.sim.Now()
	inc.count("election", "start", 1)

	higherAlive := false
	for p := inc.r.id + 1; p < f.opts.Replicas; p++ {
		var reply ackReply
		if inc.peerCall(f.replicaName(p), "election", electionMsg{From: inc.r.name, ID: inc.r.id}, &reply) == nil {
			higherAlive = true
			break
		}
	}
	if higherAlive {
		inc.mu.Lock()
		inc.electing = false
		// Renew the lease: the higher replica's own election (or its
		// existing heartbeats) will claim the group.
		inc.lastBeat = f.sim.Now()
		inc.mu.Unlock()
		inc.count("election", "yield", 1)
		return
	}

	inc.mu.Lock()
	if inc.epoch != startEpoch || inc.leader == inc.r.id {
		// A coordinator announcement landed while we probed.
		inc.electing = false
		inc.mu.Unlock()
		return
	}
	inc.epoch = startEpoch + 1
	inc.leader = inc.r.id
	inc.electing = false
	inc.lastBeat = f.sim.Now()
	inc.jour.becomeLeader()
	for i := range inc.live {
		inc.live[i] = true
		inc.misses[i] = 0
		inc.acked[i] = 0
	}
	shard := inc.recomputeShardLocked()
	epoch := inc.epoch
	inc.mu.Unlock()

	f.hists().H("fed.election.latency").Record(int64(f.sim.Now() - start))
	inc.count("election", "win", 1)
	f.tracer().InstantCtx(inc.ctx, "fed", "leader-elected", inc.r.name, inc.r.name, "",
		trace.Arg{Key: "epoch", Val: fmt.Sprint(epoch)})
	// Announce in ascending id order; peers that are down simply miss the
	// announcement and learn the leader from its first heartbeat.
	for p := 0; p < f.opts.Replicas; p++ {
		if p == inc.r.id {
			continue
		}
		var reply ackReply
		inc.peerCall(f.replicaName(p), "coordinator", coordMsg{From: inc.r.name, Epoch: epoch, Shard: shard}, &reply)
	}
	inc.publishShardMap(shard)
}

// recomputeShardLocked rebuilds the shard map over the currently-live
// replica view. Caller holds inc.mu.
func (inc *incarnation) recomputeShardLocked() ShardMap {
	f := inc.r.fed
	var names []string
	for p := 0; p < f.opts.Replicas; p++ {
		if inc.live[p] {
			names = append(names, f.replicaName(p))
		}
	}
	m := ShardMap{
		Version:  inc.shard.Version + 1,
		Epoch:    inc.epoch,
		Leader:   inc.r.name,
		Replicas: names,
		VNodes:   f.opts.VNodes,
	}
	inc.shard = m
	inc.shardRing = m.Ring()
	return m
}

// handoffLocked reassigns a dead replica's open journal entries: its
// in-flight tickets close (the process driving them is gone), its live
// allocations and unconfirmed cancels pass to the ring successor, whose
// reaper settles them against the LRMs. Caller holds inc.mu with the
// shard map already recomputed without the dead replica.
func (inc *incarnation) handoffLocked(dead string) {
	now := inc.now()
	ring := inc.shardRing
	for _, e := range inc.jour.openOwnedBy(dead) {
		switch e.Kind {
		case KindTicket:
			e.State = StateClosed
		default:
			heir := ring.Owner(e.Key)
			if heir == "" || heir == dead {
				heir = inc.r.name
			}
			e.Owner = heir
			e.HandoffAt = now
		}
		e.Rev++
		e.At = now
		inc.jour.leaderAccept(e)
		inc.count("handoff", e.Kind, 1)
	}
}

// publishShardMap records the map in the directory's meta store (best
// effort, asynchronous: the authoritative propagation path is the
// heartbeat; the directory copy only bootstraps restarted replicas).
func (inc *incarnation) publishShardMap(m ShardMap) {
	f := inc.r.fed
	inc.sim().GoDaemon(fmt.Sprintf("fed-publish:%s/g%d/v%d", inc.r.name, inc.gen, m.Version), func() {
		client, err := mds.DialCtx(inc.r.host, f.opts.Directory, inc.ctx.Child("shardmap-publish"))
		if err != nil {
			inc.count("shardmap", "publish-error", 1)
			return
		}
		defer client.Close()
		if err := client.PutMeta(ShardMapMetaKey, m.JSON()); err != nil {
			inc.count("shardmap", "publish-error", 1)
			return
		}
		inc.count("shardmap", "publish", 1)
	})
}

// bootstrapShardMap loads the last published map from the directory — a
// restarted replica's first view until a heartbeat repairs it.
func (inc *incarnation) bootstrapShardMap() {
	f := inc.r.fed
	client, err := mds.DialCtx(inc.r.host, f.opts.Directory, inc.ctx.Child("shardmap-bootstrap"))
	if err != nil {
		return
	}
	defer client.Close()
	meta, err := client.GetMeta(ShardMapMetaKey)
	if err != nil {
		return
	}
	m, err := ParseShardMap(meta.Value)
	if err != nil {
		return
	}
	inc.adoptShard(m)
	inc.count("shardmap", "bootstrap", 1)
}

// pusher forwards this replica's journal mutations to the leader as they
// happen, instead of waiting for the next heartbeat to collect them. The
// periodic wake retries anything a failed push left buffered.
func (inc *incarnation) pusher() {
	f := inc.r.fed
	for {
		_, res := inc.pushWake.RecvTimeout(f.opts.HeartbeatInterval)
		if res == vtime.RecvClosed || inc.stop.IsSet() {
			return
		}
		// Batch boundary: the kernel runs every goroutine of the current
		// virtual instant concurrently, so a wake must not snapshot the
		// buffer until the instant's remaining mutations have landed —
		// sleeping forces time to advance past them. The per-replica
		// stagger keeps two replicas' pushes from reaching the leader at
		// the same instant, which would make sequencing order a race.
		f.sim.Sleep(time.Millisecond * time.Duration(1+inc.r.id))
		if inc.stop.IsSet() {
			return
		}
		for {
			if _, ok := inc.pushWake.TryRecv(); !ok {
				break
			}
		}
		pending := inc.jour.pending()
		if len(pending) == 0 {
			continue
		}
		inc.mu.Lock()
		leader := inc.leader
		inc.mu.Unlock()
		if leader == inc.r.id {
			inc.jour.leaderFlush()
			continue
		}
		if leader < 0 {
			continue // no leader known; the next wake retries
		}
		var reply appendReply
		if err := inc.peerCall(f.replicaName(leader), "append", appendMsg{From: inc.r.name, Entries: pending}, &reply); err != nil {
			inc.count("push", "error", 1)
			continue // heartbeat exchange repairs
		}
		inc.jour.applyBroadcast(reply.Entries)
		inc.count("push", "ok", 1)
	}
}

// peerReaper sweeps journal entries this replica owns but did not
// create: allocations and orphans handed off from a dead peer (or left
// behind by this replica's own previous incarnation). Each is settled by
// cancelling the underlying LRM job — idempotent, since cancelling a
// finished job is a no-op at the machine.
func (inc *incarnation) peerReaper() {
	f := inc.r.fed
	for {
		if inc.stop.WaitTimeout(f.opts.PeerReapInterval) {
			return
		}
		inc.reapAdopted()
	}
}

func (inc *incarnation) reapAdopted() {
	reaped := 0
	for _, e := range inc.jour.openOwnedBy(inc.r.name) {
		inc.mu.Lock()
		mine := inc.created[e.Key]
		inc.mu.Unlock()
		if mine {
			continue
		}
		switch e.Kind {
		case KindTicket:
			// An adopted open ticket has no process driving its 2PC;
			// close it uncommitted so it cannot be double-served.
			inc.jour.upsert(e.Key, inc.now(), func(cur Entry) Entry {
				if cur.State != StateOpen {
					return cur
				}
				cur.State = StateClosed
				return cur
			})
			reaped++
		case KindAlloc, KindOrphan:
			if inc.reapEntry(e) {
				reaped++
			}
		}
	}
	if reaped > 0 {
		inc.pushWake.TrySend(struct{}{})
	}
}

// reapEntry cancels one adopted allocation at its LRM and marks the
// journal entry reaped. Failures leave the entry open for the next sweep.
func (inc *incarnation) reapEntry(e Entry) bool {
	f := inc.r.fed
	rm, err := transport.ParseAddr(e.RM)
	if err != nil {
		// Unparseable entries can never be settled; reap them rather
		// than spinning forever.
		inc.jour.upsert(e.Key, inc.now(), func(cur Entry) Entry {
			if cur.State != StateOpen {
				return cur
			}
			cur.State = StateReaped
			return cur
		})
		return true
	}
	client, err := gram.Dial(inc.r.host, rm, gram.ClientConfig{
		Credential: f.ctrlCfg.Credential,
		Registry:   f.ctrlCfg.Registry,
		AuthCost:   f.ctrlCfg.AuthCost,
		Ctx:        inc.ctx.Child("reap:" + e.Key),
	})
	if err != nil {
		inc.count("reap", "retry", 1)
		return false
	}
	defer client.Close()
	if err := client.CancelTimeout(e.Contact, reapCancelTimeout); err != nil {
		inc.count("reap", "retry", 1)
		return false
	}
	now := inc.now()
	inc.jour.upsert(e.Key, now, func(cur Entry) Entry {
		if cur.State != StateOpen {
			return cur
		}
		cur.State = StateReaped
		return cur
	})
	if e.HandoffAt > 0 {
		f.hists().H("fed.handoff.time").Record(int64(now - e.HandoffAt))
	}
	inc.count("reap", e.Kind, 1)
	return true
}
