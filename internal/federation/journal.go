package federation

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Entry kinds: a ticket (one admitted co-allocation request), an alloc
// (one subjob holding an LRM job contact), or an orphan (a cancel the
// owning controller could not confirm).
const (
	KindTicket = "ticket"
	KindAlloc  = "alloc"
	KindOrphan = "orphan"
)

// Entry states. State only advances (open -> closed/reaped), which is
// what makes journal replication a monotone merge: any two copies of an
// entry reconcile to the more advanced one, regardless of arrival order
// or split-brain intervals.
const (
	StateOpen   = "open"
	StateClosed = "closed"
	StateReaped = "reaped"
)

// Entry is one replicated ticket-journal record. Keys are namespaced:
// "t/<ticket>" for tickets, "a/<job>/<subjob>" for allocations,
// "o/<job>/<subjob>" for orphans.
type Entry struct {
	Key  string `json:"key"`
	Kind string `json:"kind"`
	// Origin is the replica whose broker created the entry; Owner is the
	// replica currently responsible for settling it. They differ after a
	// hand-off: the leader reassigns a dead replica's open entries to a
	// live peer, whose reaper cancels the underlying LRM jobs.
	Origin string `json:"origin"`
	Owner  string `json:"owner"`
	// ReqKey is the federation-wide idempotency key (tickets only); the
	// at-most-once invariant is "<= 1 committed ticket per req key".
	ReqKey string `json:"req_key,omitempty"`
	// JobID and Committed record a ticket's outcome.
	JobID     string `json:"job_id,omitempty"`
	Committed bool   `json:"committed,omitempty"`
	// RM and Contact locate the LRM job to cancel (allocs and orphans).
	RM      string `json:"rm,omitempty"`
	Contact string `json:"contact,omitempty"`
	State   string `json:"state"`
	// Rev is the per-key revision: bumped by every local mutation, it
	// orders copies of the same entry during merge.
	Rev int `json:"rev"`
	// Seq is the leader-assigned global order (0 = not yet sequenced).
	Seq int `json:"seq,omitempty"`
	// At is the virtual time of the last transition; HandoffAt is set
	// when the leader reassigns the entry after its origin died.
	At        time.Duration `json:"at"`
	HandoffAt time.Duration `json:"handoff_at,omitempty"`
}

// stateRank orders states for merge: an entry never goes back to open.
func stateRank(s string) int {
	switch s {
	case StateClosed:
		return 1
	case StateReaped:
		return 2
	}
	return 0
}

// supersedes reports whether a is a strictly newer copy of the same key
// than b.
func supersedes(a, b Entry) bool {
	if a.Rev != b.Rev {
		return a.Rev > b.Rev
	}
	return stateRank(a.State) > stateRank(b.State)
}

// journal is one replica's copy of the federation ticket journal: an
// entry map plus, on the leader, the globally ordered update log that
// heartbeats broadcast. Followers buffer local mutations in unacked and
// push them to the leader; an entry leaves unacked once it is observed
// back with a leader-assigned sequence number.
type journal struct {
	mu      sync.Mutex
	entries map[string]Entry
	// log is the leader-ordered broadcast stream: every update the
	// leader accepts, in acceptance order. Followers receive log
	// suffixes piggybacked on heartbeats.
	log     []Entry
	nextSeq int
	unacked []Entry
	// logged tracks, per key, the highest revision already appended to
	// the log (leader only) — the dedup that keeps re-pushed copies from
	// being ordered twice without losing genuinely new transitions.
	logged map[string]int
}

func newJournal() *journal {
	return &journal{
		entries: make(map[string]Entry),
		nextSeq: 1,
		logged:  make(map[string]int),
	}
}

// upsert applies a local mutation: the entry's revision is bumped past
// the stored copy's and the update is buffered for the leader. mutate
// receives the current copy (zero Entry if absent) and returns the new
// one; returning the input unchanged cancels the mutation.
func (j *journal) upsert(key string, now time.Duration, mutate func(Entry) Entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cur := j.entries[key]
	next := mutate(cur)
	if next == cur {
		return
	}
	next.Key = key
	next.Rev = cur.Rev + 1
	next.Seq = cur.Seq
	next.At = now
	j.entries[key] = next
	j.unacked = append(j.unacked, next)
}

// get returns the stored copy of key.
func (j *journal) get(key string) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	return e, ok
}

// merge folds a remote copy in, keeping the more advanced revision and
// the maximum sequence number. Reports whether the stored entry changed.
func (j *journal) merge(e Entry) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.mergeLocked(e)
}

func (j *journal) mergeLocked(e Entry) bool {
	cur, ok := j.entries[e.Key]
	if ok && e.Seq < cur.Seq {
		e.Seq = cur.Seq
	}
	if !ok || supersedes(e, cur) {
		j.entries[e.Key] = e
		return true
	}
	if e.Seq > cur.Seq {
		cur.Seq = e.Seq
		j.entries[e.Key] = cur
	}
	return false
}

// applyBroadcast merges a heartbeat's log suffix and drains unacked
// entries the leader has demonstrably sequenced (stored copy at or past
// the buffered revision, with a sequence number).
func (j *journal) applyBroadcast(updates []Entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range updates {
		j.mergeLocked(e)
	}
	kept := j.unacked[:0]
	for _, u := range j.unacked {
		cur, ok := j.entries[u.Key]
		if ok && cur.Seq > 0 && cur.Rev >= u.Rev {
			continue
		}
		kept = append(kept, u)
	}
	j.unacked = kept
}

// leaderAccept sequences one update into the broadcast log (leader
// only). Revisions already in the log are dropped, so duplicate pushes
// of the same copy are ordered exactly once.
func (j *journal) leaderAccept(e Entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.acceptLocked(e)
}

func (j *journal) acceptLocked(e Entry) {
	cur, ok := j.entries[e.Key]
	if ok && supersedes(cur, e) {
		// A newer copy is already stored; order that one instead.
		e = cur
	}
	if j.logged[e.Key] >= e.Rev {
		return
	}
	e.Seq = j.nextSeq
	j.nextSeq++
	j.entries[e.Key] = e
	j.logged[e.Key] = e.Rev
	j.log = append(j.log, e)
}

// leaderFlush sequences this replica's own buffered mutations into the
// log (leader only) and clears the buffer.
func (j *journal) leaderFlush() {
	j.mu.Lock()
	defer j.mu.Unlock()
	sortBatch(j.unacked)
	for _, u := range j.unacked {
		j.acceptLocked(u)
	}
	j.unacked = j.unacked[:0]
}

// sortBatch orders buffered updates by (At, Key, Rev). Goroutines running
// at the same virtual instant append to the buffer in whatever order the
// scheduler ran them; sequencing must not depend on that order.
func sortBatch(batch []Entry) {
	sort.Slice(batch, func(a, b int) bool {
		if batch[a].At != batch[b].At {
			return batch[a].At < batch[b].At
		}
		if batch[a].Key != batch[b].Key {
			return batch[a].Key < batch[b].Key
		}
		return batch[a].Rev < batch[b].Rev
	})
}

// becomeLeader rebuilds the broadcast log from the local entry map —
// the new baseline every follower re-receives (merge is idempotent, so
// re-broadcast is safe). Entries are ordered by known sequence then key,
// and re-sequenced densely.
func (j *journal) becomeLeader() {
	j.mu.Lock()
	defer j.mu.Unlock()
	keys := make([]string, 0, len(j.entries))
	for k := range j.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ea, eb := j.entries[keys[a]], j.entries[keys[b]]
		if ea.Seq != eb.Seq {
			return ea.Seq < eb.Seq
		}
		return keys[a] < keys[b]
	})
	j.log = j.log[:0]
	j.nextSeq = 1
	j.logged = make(map[string]int, len(keys))
	for _, k := range keys {
		e := j.entries[k]
		e.Seq = j.nextSeq
		j.nextSeq++
		j.entries[k] = e
		j.logged[k] = e.Rev
		j.log = append(j.log, e)
	}
	// The new leader's own buffered updates are sequenced in the rebuild
	// (they are in the entry map already).
	j.unacked = j.unacked[:0]
}

// logSuffix returns the broadcast log from offset on, with the current
// log length.
func (j *journal) logSuffix(from int) ([]Entry, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 || from > len(j.log) {
		from = 0
	}
	out := make([]Entry, len(j.log)-from)
	copy(out, j.log[from:])
	return out, len(j.log)
}

// pending snapshots the unacked local updates in deterministic order.
func (j *journal) pending() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Entry, len(j.unacked))
	copy(out, j.unacked)
	sortBatch(out)
	return out
}

// snapshot returns every entry sorted by key.
func (j *journal) snapshot() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Entry, 0, len(j.entries))
	for _, e := range j.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// openOwnedBy returns open entries owned by the given replica, sorted by
// key.
func (j *journal) openOwnedBy(owner string) []Entry {
	var out []Entry
	for _, e := range j.snapshot() {
		if e.State == StateOpen && e.Owner == owner {
			out = append(out, e)
		}
	}
	return out
}

// allocKeysForJob lists open alloc entries belonging to a DUROC job id.
func (j *journal) allocKeysForJob(job string) []string {
	prefix := "a/" + job + "/"
	var out []string
	for _, e := range j.snapshot() {
		if e.State == StateOpen && strings.HasPrefix(e.Key, prefix) {
			out = append(out, e.Key)
		}
	}
	return out
}
