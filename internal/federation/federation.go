package federation

import (
	"fmt"
	"sync"
	"time"

	"cogrid/internal/broker"
	"cogrid/internal/core"
	"cogrid/internal/mds"
	"cogrid/internal/metrics"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// ServiceName is the transport service replicas speak the federation
// protocol (heartbeat, election, coordinator, append) on.
const ServiceName = "fed"

// ShardMapMetaKey is the MDS meta document the leader publishes the
// current shard map under, so a restarting replica can bootstrap its
// view before the first heartbeat reaches it.
const ShardMapMetaKey = "fed/shardmap"

// Defaults for Options zero values. The intervals sit off the machines'
// 31-second publish rounds and off whole minutes, so federation
// maintenance does not pile onto the same virtual instants as directory
// traffic.
const (
	DefaultHeartbeatInterval = 5 * time.Second
	DefaultLeaseTimeout      = 17 * time.Second
	DefaultProbeTimeout      = 4 * time.Second
	DefaultDeadBeats         = 3
	DefaultMaxHops           = 2
	DefaultPeerReapInterval  = 40 * time.Second
)

// Options configures a federation.
type Options struct {
	// Replicas is the peer-group size (>= 1).
	Replicas int
	// Directory is the MDS every replica's broker caches records from
	// and the leader publishes the shard map to.
	Directory transport.Addr
	// Broker is the per-replica broker configuration; Directory,
	// ReplicaID, and the federation hooks are overridden per replica.
	Broker broker.Options
	// HostPrefix names replica hosts: <prefix>00, <prefix>01, ...
	// Default "fed".
	HostPrefix string
	// HeartbeatInterval paces the leader's rounds; LeaseTimeout is how
	// long a follower tolerates silence before starting an election;
	// ProbeTimeout bounds each peer-to-peer protocol call; DeadBeats is
	// how many consecutive missed heartbeats declare a replica dead.
	HeartbeatInterval time.Duration
	LeaseTimeout      time.Duration
	ProbeTimeout      time.Duration
	DeadBeats         int
	// MaxHops caps broker-to-broker forwards per request.
	MaxHops int
	// VNodes is the consistent-hash virtual-node count per replica.
	VNodes int
	// PeerReapInterval paces each replica's sweep of handed-off journal
	// entries.
	PeerReapInterval time.Duration
}

func (o *Options) fill() {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.HostPrefix == "" {
		o.HostPrefix = "fed"
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = DefaultLeaseTimeout
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	if o.DeadBeats <= 0 {
		o.DeadBeats = DefaultDeadBeats
	}
	if o.MaxHops <= 0 {
		o.MaxHops = DefaultMaxHops
	}
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.PeerReapInterval <= 0 {
		o.PeerReapInterval = DefaultPeerReapInterval
	}
}

// Federation is a running peer group of broker replicas.
type Federation struct {
	sim      *vtime.Sim
	net      *transport.Network
	ctrlCfg  core.ControllerConfig
	opts     Options
	replicas []*Replica
}

// Replica is one member of the peer group. Its process state (broker,
// controller, election and journal state, daemons) lives in the current
// incarnation; Crash discards it and Restart builds a fresh one, so a
// restarted replica remembers nothing it did not re-learn from its
// peers.
type Replica struct {
	fed  *Federation
	id   int
	name string
	host *transport.Host

	mu      sync.Mutex
	alive   bool
	inc     *incarnation
	gen     int
	brokers []*broker.Broker // every incarnation's broker, for audits
}

// New builds and starts a federation of opts.Replicas brokers on fresh
// hosts of net. The highest-id replica starts as leader (the state a
// completed bully election converges to), and every replica starts with
// the same initial shard map over the full peer set.
func New(net *transport.Network, ctrlCfg core.ControllerConfig, opts Options) (*Federation, error) {
	opts.fill()
	f := &Federation{
		sim:     net.Sim(),
		net:     net,
		ctrlCfg: ctrlCfg,
		opts:    opts,
	}
	initial := ShardMap{
		Version:  1,
		Epoch:    1,
		Leader:   f.replicaName(opts.Replicas - 1),
		Replicas: f.allNames(),
		VNodes:   opts.VNodes,
	}
	for i := 0; i < opts.Replicas; i++ {
		r := &Replica{
			fed:  f,
			id:   i,
			name: f.replicaName(i),
			host: net.AddHost(f.replicaName(i)),
		}
		f.replicas = append(f.replicas, r)
	}
	for _, r := range f.replicas {
		if err := r.start(initial); err != nil {
			return nil, err
		}
	}
	// The initial leader publishes the bootstrap shard map.
	if lead := f.replicas[opts.Replicas-1]; lead.inc != nil {
		lead.inc.publishShardMap(initial)
	}
	f.gauges().G("fed.live_replicas").Add(float64(opts.Replicas))
	return f, nil
}

func (f *Federation) replicaName(i int) string {
	return fmt.Sprintf("%s%02d", f.opts.HostPrefix, i)
}

// brokerAddr is the broker endpoint of the named replica.
func (f *Federation) brokerAddr(name string) transport.Addr {
	return transport.Addr{Host: name, Service: broker.ServiceName}
}

func (f *Federation) allNames() []string {
	names := make([]string, f.opts.Replicas)
	for i := range names {
		names[i] = f.replicaName(i)
	}
	return names
}

// Replicas returns the peer group in id order.
func (f *Federation) Replicas() []*Replica { return f.replicas }

// Replica returns peer i.
func (f *Federation) Replica(i int) *Replica { return f.replicas[i] }

// Options exposes the filled configuration.
func (f *Federation) Options() Options { return f.opts }

func (f *Federation) tracer() *trace.Tracer        { return f.net.Tracer() }
func (f *Federation) counters() *trace.Counters    { return f.net.Counters() }
func (f *Federation) gauges() *metrics.GaugeSet    { return f.net.Gauges() }
func (f *Federation) hists() *metrics.HistogramSet { return f.net.Hists() }

// MergedJournal merges every live replica's journal copy — the audit
// surface the DST invariants read. Entries only known to a crashed
// process died with it; what survives here is exactly what the
// replication protocol preserved.
func (f *Federation) MergedJournal() []Entry {
	merged := newJournal()
	for _, r := range f.replicas {
		r.mu.Lock()
		inc := r.inc
		r.mu.Unlock()
		if inc == nil {
			continue
		}
		for _, e := range inc.jour.snapshot() {
			merged.merge(e)
		}
	}
	return merged.snapshot()
}

// Name returns the replica's host name (also its replica id).
func (r *Replica) Name() string { return r.name }

// ID returns the replica's index.
func (r *Replica) ID() int { return r.id }

// Host returns the replica's simulated host.
func (r *Replica) Host() *transport.Host { return r.host }

// Alive reports whether the replica process is up.
func (r *Replica) Alive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.alive
}

// Broker returns the current incarnation's broker (nil while crashed).
func (r *Replica) Broker() *broker.Broker {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inc == nil {
		return nil
	}
	return r.inc.b
}

// Brokers returns every incarnation's broker, oldest first — the audit
// surface for per-job invariants across crashes.
func (r *Replica) Brokers() []*broker.Broker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*broker.Broker(nil), r.brokers...)
}

// BrokerContact is the address clients submit to.
func (r *Replica) BrokerContact() transport.Addr {
	return transport.Addr{Host: r.name, Service: broker.ServiceName}
}

// fedAddr is the replica's federation protocol endpoint.
func (r *Replica) fedAddr() transport.Addr {
	return transport.Addr{Host: r.name, Service: ServiceName}
}

// LeaderName reports who this replica currently believes leads ("" while
// crashed or unknown).
func (r *Replica) LeaderName() string {
	r.mu.Lock()
	inc := r.inc
	r.mu.Unlock()
	if inc == nil {
		return ""
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.leader < 0 {
		return ""
	}
	return r.fed.replicaName(inc.leader)
}

// ShardMapView returns the replica's current shard map (zero while
// crashed).
func (r *Replica) ShardMapView() ShardMap {
	r.mu.Lock()
	inc := r.inc
	r.mu.Unlock()
	if inc == nil {
		return ShardMap{}
	}
	return inc.shardMap()
}

// start builds a fresh incarnation: broker with federation hooks, the
// protocol endpoint, and the maintenance daemons.
func (r *Replica) start(shard ShardMap) error {
	f := r.fed
	r.mu.Lock()
	r.gen++
	gen := r.gen
	r.mu.Unlock()
	inc := &incarnation{
		r:   r,
		gen: gen,
		// Maintenance traffic (heartbeats, elections, journal pushes,
		// shard-map publication, adopted reaps) is attributed under a
		// synthetic per-process request, like the directory publishers'
		// rounds, so causal-trace coverage accounts for it.
		ctx:      trace.NewRequest(fmt.Sprintf("fed@%s", r.name)).Child(fmt.Sprintf("g%d", gen)),
		stop:     vtime.NewEvent(f.sim, fmt.Sprintf("fed-stop:%s/g%d", r.name, gen)),
		pushWake: vtime.NewChan[struct{}](f.sim, fmt.Sprintf("fed-push:%s/g%d", r.name, gen), 1),
		leader:   f.opts.Replicas - 1,
		epoch:    shard.Epoch,
		lastBeat: f.sim.Now(),
		shard:    shard,
		jour:     newJournal(),
		created:  make(map[string]bool),
		acked:    make([]int, f.opts.Replicas),
		misses:   make([]int, f.opts.Replicas),
		live:     make([]bool, f.opts.Replicas),
	}
	for i := range inc.live {
		inc.live[i] = true
	}
	if shard.Version == 0 {
		// Restart bootstrap: no map handed in; leadership unknown.
		inc.leader = -1
		inc.epoch = 0
	}
	inc.shardRing = inc.shard.Ring()

	ctrlCfg := f.ctrlCfg
	ctrlCfg.OnAllocation = inc.onAllocation
	bOpts := f.opts.Broker
	bOpts.Directory = f.opts.Directory
	bOpts.ReplicaID = r.name
	bOpts.CandidateFilter = inc.filterRecords
	bOpts.Forward = inc.forward
	bOpts.OnTicket = inc.onTicket
	bOpts.OnOrphan = inc.onOrphan
	bOpts.OnReap = inc.onReap
	b, err := broker.New(r.host, ctrlCfg, bOpts)
	if err != nil {
		return fmt.Errorf("federation: replica %s: %v", r.name, err)
	}
	inc.b = b
	l, err := r.host.Listen(ServiceName)
	if err != nil {
		b.Close()
		return fmt.Errorf("federation: replica %s: %v", r.name, err)
	}
	inc.server = rpc.Serve(f.sim, l, rpc.HandlerFuncs{Call: inc.handleCall}, nil)

	r.mu.Lock()
	r.alive = true
	r.inc = inc
	r.brokers = append(r.brokers, b)
	r.mu.Unlock()

	// Stagger each replica's protocol clock slightly so rounds from
	// different replicas never share a virtual instant with each other
	// or with the publishers' rounds.
	offset := f.opts.HeartbeatInterval + time.Duration(r.id)*37*time.Millisecond
	f.sim.GoDaemon(fmt.Sprintf("fed-mon:%s/g%d", r.name, gen), func() {
		if inc.stop.WaitTimeout(offset) {
			return
		}
		inc.monitor()
	})
	f.sim.GoDaemon(fmt.Sprintf("fed-pusher:%s/g%d", r.name, gen), inc.pusher)
	f.sim.GoDaemon(fmt.Sprintf("fed-reaper:%s/g%d", r.name, gen), inc.peerReaper)
	if shard.Version == 0 {
		// Bootstrap the shard map from the directory in the background;
		// heartbeats will correct it if stale.
		f.sim.GoDaemon(fmt.Sprintf("fed-bootstrap:%s/g%d", r.name, gen), inc.bootstrapShardMap)
	}
	return nil
}

// Crash kills the replica process: daemons stop, the host's network
// presence dies, and every unfinished co-allocation its controller was
// driving is torn down locally (the process is gone; only what the
// journal already replicated survives for peers to act on).
func (r *Replica) Crash() {
	r.mu.Lock()
	if !r.alive {
		r.mu.Unlock()
		return
	}
	r.alive = false
	inc := r.inc
	r.inc = nil
	r.mu.Unlock()

	inc.stop.Set()
	inc.pushWake.Close()
	r.host.Crash()
	inc.server.Close()
	inc.b.Close()
	for _, j := range inc.b.Controller().Jobs() {
		if !j.Done().IsSet() {
			j.Abort("federation: replica crashed")
		}
	}
	f := r.fed
	f.counters().Add(trace.Key("fed", "replica", "crash", r.name), 1)
	f.gauges().G("fed.live_replicas").Add(-1)
	f.tracer().InstantCtx(inc.ctx, "fed", "crash", r.name, r.name, "")
	// Black-box the moments before the crash: the handoff and re-election
	// that follow are best debugged from what the dead replica last saw.
	f.net.FlightRec().Trigger("replica-crash", r.name)
}

// Restart brings the replica back as a fresh process: empty journal,
// unknown leader, shard map bootstrapped from the directory and repaired
// by the next heartbeat that reaches it.
func (r *Replica) Restart() error {
	r.mu.Lock()
	if r.alive {
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	r.host.RestoreCrashed()
	if err := r.start(ShardMap{}); err != nil {
		return err
	}
	f := r.fed
	r.mu.Lock()
	inc := r.inc
	r.mu.Unlock()
	f.counters().Add(trace.Key("fed", "replica", "restart", r.name), 1)
	f.gauges().G("fed.live_replicas").Add(1)
	f.tracer().InstantCtx(inc.ctx, "fed", "restart", r.name, r.name, "")
	return nil
}

// incarnation is one replica process lifetime.
type incarnation struct {
	r        *Replica
	gen      int
	ctx      trace.Ctx
	b        *broker.Broker
	server   *rpc.Server
	stop     *vtime.Event
	pushWake *vtime.Chan[struct{}]
	jour     *journal

	mu        sync.Mutex
	leader    int // replica id, -1 unknown
	epoch     int
	lastBeat  time.Duration
	electing  bool
	shard     ShardMap
	shardRing *ring
	// created marks journal keys this incarnation's own broker produced:
	// the peer reaper leaves them to the broker's own lifecycle and only
	// settles adopted keys (handed off, or left behind by a previous
	// incarnation of this same replica).
	created map[string]bool
	// Leader bookkeeping (valid while leader): per-replica broadcast
	// acks, consecutive miss counts, and liveness view.
	acked  []int
	misses []int
	live   []bool
}

func (inc *incarnation) sim() *vtime.Sim { return inc.r.fed.sim }
func (inc *incarnation) now() time.Duration {
	return inc.r.fed.sim.Now()
}

func (inc *incarnation) count(object, verb string, delta int64) {
	inc.r.fed.counters().Add(trace.Key("fed", object, verb, inc.r.name), delta)
}

func (inc *incarnation) shardMap() ShardMap {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.shard
}

// adoptShard installs a newer shard map (version-compared).
func (inc *incarnation) adoptShard(m ShardMap) {
	if m.Version == 0 {
		return
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if m.Version <= inc.shard.Version {
		return
	}
	inc.shard = m
	inc.shardRing = m.Ring()
}

// filterRecords keeps the directory records this replica's shard owns.
// With no shard map yet (bootstrap), selection is unrestricted.
func (inc *incarnation) filterRecords(records []mds.Record) []mds.Record {
	inc.mu.Lock()
	ring := inc.shardRing
	inc.mu.Unlock()
	if ring == nil {
		return records
	}
	out := records[:0:0]
	for _, rec := range records {
		if ring.Owner(rec.Name) == inc.r.name {
			out = append(out, rec)
		}
	}
	return out
}

// --- journal feed hooks (run on broker/controller paths) ---

func (inc *incarnation) markCreated(key string) {
	inc.mu.Lock()
	inc.created[key] = true
	inc.mu.Unlock()
}

func (inc *incarnation) onTicket(ev broker.TicketEvent) {
	now := inc.now()
	key := "t/" + ev.Ticket
	switch ev.Kind {
	case "open":
		inc.markCreated(key)
		inc.jour.upsert(key, now, func(e Entry) Entry {
			e.Kind = KindTicket
			e.Origin = inc.r.name
			e.Owner = inc.r.name
			e.ReqKey = ev.Key
			e.State = StateOpen
			return e
		})
	case "close":
		inc.jour.upsert(key, now, func(e Entry) Entry {
			e.Kind = KindTicket
			e.Origin = inc.r.name
			e.Owner = inc.r.name
			e.ReqKey = ev.Key
			e.State = StateClosed
			if ev.JobID != "" {
				e.JobID = ev.JobID
				e.Committed = true
			}
			return e
		})
		// Discarded attempts' allocations settle with the ticket: their
		// subjobs were cancelled by the 2PC abort (or escalated to
		// orphan entries, which outlive the ticket). The committed job's
		// allocations stay open while its subjobs run — they are exactly
		// what a peer must reap if this replica dies — and close when
		// the job terminates.
		for _, job := range ev.JobIDs {
			if job == ev.JobID {
				continue
			}
			for _, ak := range inc.jour.allocKeysForJob(job) {
				inc.jour.upsert(ak, now, func(e Entry) Entry {
					e.State = StateClosed
					return e
				})
			}
		}
		if ev.JobID != "" {
			inc.watchJob(ev.JobID)
		}
	}
	inc.pushWake.TrySend(struct{}{})
}

// watchJob closes a committed job's allocation entries once the job
// terminates (all subjobs finished, or the job was aborted/killed).
func (inc *incarnation) watchJob(jobID string) {
	var job *core.Job
	for _, j := range inc.b.Controller().Jobs() {
		if j.ID() == jobID {
			job = j
			break
		}
	}
	if job == nil {
		return
	}
	inc.sim().GoDaemon(fmt.Sprintf("fed-watch:%s/g%d/%s", inc.r.name, inc.gen, jobID), func() {
		job.Done().Wait()
		if inc.stop.IsSet() {
			// The replica died first; settling is now a peer's duty.
			return
		}
		now := inc.now()
		for _, ak := range inc.jour.allocKeysForJob(jobID) {
			inc.jour.upsert(ak, now, func(e Entry) Entry {
				e.State = StateClosed
				return e
			})
		}
		inc.pushWake.TrySend(struct{}{})
	})
}

func (inc *incarnation) onAllocation(job, subjob string, rm transport.Addr, contact string) {
	key := "a/" + job + "/" + subjob
	inc.markCreated(key)
	inc.jour.upsert(key, inc.now(), func(e Entry) Entry {
		e.Kind = KindAlloc
		e.Origin = inc.r.name
		e.Owner = inc.r.name
		e.RM = rm.String()
		e.Contact = contact
		e.State = StateOpen
		return e
	})
	inc.pushWake.TrySend(struct{}{})
}

func (inc *incarnation) onOrphan(o core.Orphan) {
	now := inc.now()
	key := "o/" + o.Job + "/" + o.Subjob
	inc.markCreated(key)
	inc.jour.upsert(key, now, func(e Entry) Entry {
		e.Kind = KindOrphan
		e.Origin = inc.r.name
		e.Owner = inc.r.name
		e.RM = o.RM.String()
		e.Contact = o.JobContact
		e.State = StateOpen
		return e
	})
	// The orphan entry carries the reap duty from here on; the matching
	// alloc entry would double-cancel.
	inc.jour.upsert("a/"+o.Job+"/"+o.Subjob, now, func(e Entry) Entry {
		if e.Kind == "" || e.State != StateOpen {
			return e
		}
		e.State = StateClosed
		return e
	})
	inc.pushWake.TrySend(struct{}{})
}

func (inc *incarnation) onReap(key string) {
	inc.jour.upsert("o/"+key, inc.now(), func(e Entry) Entry {
		if e.Kind == "" {
			return e
		}
		e.State = StateReaped
		return e
	})
	inc.pushWake.TrySend(struct{}{})
}
