// Package federation runs a peer group of broker replicas as one
// co-allocation control plane: a leader elected by a bully protocol with
// virtual-time lease timeouts, machine ownership sharded across replicas
// by consistent hashing, peer-to-peer forwarding of requests a shard
// cannot host, and a replicated ticket journal so any replica can reap a
// dead peer's in-flight 2PC allocations.
//
// The paper's co-allocator (DUROC atop GRAM) is a single point of
// control; this package is the collective layer scaled out: N broker
// replicas, each owning a shard of the machine population, behaving to
// clients like one broker with no single point of failure.
package federation

import (
	"encoding/json"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the number of ring points per replica. Enough that an
// 8-replica ring spreads a dozen machines without pathological skew,
// small enough that map recomputation is trivial.
const DefaultVNodes = 64

// ShardMap is the leader-published assignment of machines to replicas:
// a consistent-hash ring over the live replica set. Replicas filter
// their candidate selection to machines they own; the map itself is
// versioned so stale copies lose to newer ones.
type ShardMap struct {
	// Version increases on every membership change; higher wins.
	Version int `json:"version"`
	// Epoch and Leader identify the leadership that published the map.
	Epoch  int    `json:"epoch"`
	Leader string `json:"leader"`
	// Replicas are the live replica names on the ring, sorted.
	Replicas []string `json:"replicas"`
	// VNodes is the virtual-node count per replica.
	VNodes int `json:"vnodes"`
}

// JSON renders the map for MDS meta publication.
func (m ShardMap) JSON() string {
	b, _ := json.Marshal(m)
	return string(b)
}

// ParseShardMap decodes a published map.
func ParseShardMap(s string) (ShardMap, error) {
	var m ShardMap
	err := json.Unmarshal([]byte(s), &m)
	return m, err
}

// ring is the materialized consistent-hash ring for one ShardMap.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash    uint32
	replica string
}

// Ring materializes the map's hash ring. Returns nil when the map is
// empty (bootstrap: no filtering, no forwarding).
func (m ShardMap) Ring() *ring {
	if len(m.Replicas) == 0 {
		return nil
	}
	vnodes := m.VNodes
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(m.Replicas)*vnodes)}
	for _, name := range m.Replicas {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash32(name + "#" + strconv.Itoa(v)),
				replica: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so the ring is a
		// pure function of the replica set.
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// Owner maps a key (machine name, journal key) to the replica owning it:
// the first ring point at or clockwise of the key's hash.
func (r *ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := hash32(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].replica
}

// Owner is the one-shot form of Ring().Owner for callers without a
// cached ring.
func (m ShardMap) Owner(key string) string { return m.Ring().Owner(key) }

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	x := h.Sum32()
	// Raw FNV clusters badly over short, similar strings (siteNN,
	// fedNN#v), which skews ring ownership to the point of starving
	// replicas; a murmur-style finalizer avalanches the bits.
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}
