package federation

import (
	"fmt"
	"sort"
	"time"

	"cogrid/internal/broker"
	"cogrid/internal/trace"
)

// forwardSubmitMargin bounds a forwarded submission when the original
// request carries no deadline.
const forwardSubmitMargin = 30 * time.Minute

// forward offers a request this replica's shard could not host to the
// peer whose shard looks most able to take it. The choice is made from
// the local directory view: for each peer, count its owned machines with
// enough free processors; a peer qualifies when it owns at least Sites
// such machines.
//
// Outcome semantics match the broker's contract: a committed reply is
// final; ErrForwardUnavailable (no peer worth trying) resumes the local
// retry policy; a definitive peer failure is returned as an ordinary
// error (also resuming local retries); an unacknowledged submission
// returns ErrForwardIndeterminate, which terminates the request — the
// peer may have committed, so any retry risks a second allocation under
// the same key.
func (inc *incarnation) forward(req broker.Request, ctx trace.Ctx) (broker.Reply, error) {
	f := inc.r.fed
	if req.Hops >= f.opts.MaxHops {
		return broker.Reply{}, broker.ErrForwardUnavailable
	}
	inc.mu.Lock()
	shard := inc.shard
	ring := inc.shardRing
	inc.mu.Unlock()
	if ring == nil || len(shard.Replicas) < 2 {
		return broker.Reply{}, broker.ErrForwardUnavailable
	}

	records, fetchedAt := inc.b.CacheView()
	score := make(map[string]int)
	for _, rec := range records {
		if rec.FreeProcessors < req.ProcsPerSite {
			continue
		}
		if owner := ring.Owner(rec.Name); owner != inc.r.name {
			score[owner]++
		}
	}
	peers := append([]string(nil), shard.Replicas...)
	sort.Strings(peers)
	best := ""
	for _, p := range peers {
		if p == inc.r.name || score[p] < req.Sites {
			continue
		}
		if best == "" || score[p] > score[best] {
			best = p
		}
	}
	if best == "" {
		inc.count("forward", "no-peer", 1)
		return broker.Reply{}, broker.ErrForwardUnavailable
	}

	fwdReq := req
	fwdReq.Hops = req.Hops + 1
	if fwdReq.Origin == "" {
		fwdReq.Origin = inc.r.name
	}
	if fetchedAt > fwdReq.ViewAsOf {
		// The peer must answer from a view at least as fresh as the one
		// that justified sending it this request.
		fwdReq.ViewAsOf = fetchedAt
	}
	timeout := forwardSubmitMargin
	if req.Deadline > 0 {
		timeout = req.Deadline - f.sim.Now()
		if timeout <= 0 {
			return broker.Reply{}, broker.ErrForwardUnavailable
		}
	}

	c, err := broker.DialCtx(inc.r.host, inc.r.fed.brokerAddr(best), ctx)
	if err != nil {
		// Nothing reached the peer: failing the forward is definitive.
		inc.count("forward", "dial-error", 1)
		return broker.Reply{}, fmt.Errorf("fed: forward dial %s: %v", best, err)
	}
	defer c.Close()
	inc.count("forward", "send", 1)
	reply, err := c.Submit(fwdReq, timeout)
	if err != nil {
		// The request left this process; whether the peer committed is
		// unknowable from here.
		inc.count("forward", "indeterminate", 1)
		return broker.Reply{}, fmt.Errorf("%w: peer %s: %v", broker.ErrForwardIndeterminate, best, err)
	}
	if !reply.Accepted {
		inc.count("forward", "peer-reject", 1)
		return broker.Reply{}, fmt.Errorf("fed: peer %s rejected admission", best)
	}
	if reply.Error != "" {
		inc.count("forward", "peer-fail", 1)
		return broker.Reply{}, fmt.Errorf("fed: peer %s: %s", best, reply.Error)
	}
	inc.count("forward", "commit", 1)
	f.hists().H("fed.forward.hops").Record(int64(reply.Hops + 1))
	return reply, nil
}
