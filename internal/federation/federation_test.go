package federation

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"cogrid/internal/broker"
	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

func TestShardRingConsistency(t *testing.T) {
	m := ShardMap{Version: 1, Replicas: []string{"fed00", "fed01", "fed02", "fed03"}, VNodes: DefaultVNodes}
	ring := m.Ring()
	owned := make(map[string]int)
	owners := make(map[string]string)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("site%02d", i)
		o := ring.Owner(key)
		if o == "" {
			t.Fatalf("Owner(%s) empty", key)
		}
		owned[o]++
		owners[key] = o
	}
	for _, rep := range m.Replicas {
		if owned[rep] == 0 {
			t.Errorf("replica %s owns no keys out of 64", rep)
		}
	}
	// Determinism: a rebuilt ring assigns identically.
	again := m.Ring()
	for key, o := range owners {
		if got := again.Owner(key); got != o {
			t.Errorf("Owner(%s) = %s on rebuild, was %s", key, got, o)
		}
	}
	// Consistency: removing one replica only moves the removed replica's
	// keys.
	smaller := ShardMap{Version: 2, Replicas: []string{"fed00", "fed01", "fed03"}, VNodes: DefaultVNodes}
	sring := smaller.Ring()
	for key, o := range owners {
		got := sring.Owner(key)
		if o != "fed02" && got != o {
			t.Errorf("Owner(%s) moved %s -> %s though its replica survived", key, o, got)
		}
		if o == "fed02" && got == "fed02" {
			t.Errorf("Owner(%s) still fed02 after removal", key)
		}
	}
}

func TestJournalReplication(t *testing.T) {
	leader := newJournal()
	follower := newJournal()

	// Follower records a local open, pushes it, leader sequences it.
	follower.upsert("t/x#req1", time.Second, func(e Entry) Entry {
		e.Kind = KindTicket
		e.Origin = "fed00"
		e.Owner = "fed00"
		e.State = StateOpen
		return e
	})
	for _, e := range follower.pending() {
		leader.leaderAccept(e)
	}
	suffix, n := leader.logSuffix(0)
	if n != 1 || len(suffix) != 1 || suffix[0].Seq != 1 {
		t.Fatalf("leader log = %+v (len %d), want one entry seq 1", suffix, n)
	}
	// The broadcast drains the follower's unacked buffer.
	follower.applyBroadcast(suffix)
	if p := follower.pending(); len(p) != 0 {
		t.Fatalf("follower still has %d unacked after broadcast", len(p))
	}

	// A state advance re-pushed twice is ordered once.
	follower.upsert("t/x#req1", 2*time.Second, func(e Entry) Entry {
		e.State = StateClosed
		e.Committed = true
		e.JobID = "job1"
		return e
	})
	pend := follower.pending()
	for _, e := range pend {
		leader.leaderAccept(e)
		leader.leaderAccept(e)
	}
	if _, n := leader.logSuffix(0); n != 2 {
		t.Fatalf("leader log length = %d after duplicate push, want 2", n)
	}
	got, _ := leader.get("t/x#req1")
	if got.State != StateClosed || !got.Committed || got.JobID != "job1" {
		t.Fatalf("leader entry = %+v, want closed committed job1", got)
	}

	// Merge never regresses: replaying the stale open copy changes nothing.
	stale := Entry{Key: "t/x#req1", Kind: KindTicket, State: StateOpen, Rev: 1}
	if leader.merge(stale) {
		t.Fatal("merge accepted a stale lower-revision copy")
	}

	// becomeLeader rebuilds a dense log from the entry map.
	follower.applyBroadcast(suffix)
	follower.merge(got)
	follower.becomeLeader()
	log, n := follower.logSuffix(0)
	if n != 1 || log[0].Seq != 1 || log[0].State != StateClosed {
		t.Fatalf("rebuilt log = %+v, want single closed entry seq 1", log)
	}
}

// fedRig is a grid with a directory, publishing machines, and a running
// federation.
type fedRig struct {
	g   *grid.Grid
	dir transport.Addr
	fed *Federation
}

func newFedRig(t *testing.T, seed int64, replicas, machines, procs int, workTime time.Duration) *fedRig {
	t.Helper()
	g := grid.New(grid.Options{Seed: seed, Trace: true})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		t.Fatalf("mds.NewServer: %v", err)
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
	for i := 0; i < machines; i++ {
		name := fmt.Sprintf("site%02d", i)
		m := g.AddMachine(name, procs, lrm.Fork)
		mds.Publish(m, dir, g.Contact(name), 31*time.Second, 4, 8, procs)
	}
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(workTime, workTime)
	})
	fed, err := New(g.Net, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}, Options{
		Replicas:  replicas,
		Directory: dir,
		Broker:    broker.Options{Workers: 2},
	})
	if err != nil {
		t.Fatalf("federation.New: %v", err)
	}
	return &fedRig{g: g, dir: dir, fed: fed}
}

// submit dials the given replica and submits one keyed request; errors
// are reported through the reply (simulated goroutines must not Fatalf).
func (r *fedRig) submit(rep *Replica, key string, sites, procs int) broker.Reply {
	c, err := broker.DialCtx(r.g.Workstation, rep.BrokerContact(), trace.NewRequest(key))
	if err != nil {
		return broker.Reply{Error: err.Error()}
	}
	defer c.Close()
	reply, _, err := c.SubmitWait(broker.Request{
		Tenant:       "tenant0",
		Sites:        sites,
		ProcsPerSite: procs,
		Executable:   "app",
		Key:          key,
	}, 30*time.Minute, 50)
	if err != nil {
		reply.Error = err.Error()
	}
	return reply
}

func TestFederationCommitsAcrossReplicas(t *testing.T) {
	r := newFedRig(t, 1, 2, 6, 16, time.Second)
	const reqs = 4
	replies := make([]broker.Reply, reqs)
	err := r.g.Sim.Run("main", func() {
		wg := vtime.NewWaitGroup(r.g.Sim)
		for i := 0; i < reqs; i++ {
			i := i
			wg.Add(1)
			r.g.Sim.GoDaemon(fmt.Sprintf("client%d", i), func() {
				defer wg.Done()
				r.g.Sim.Sleep(40*time.Second + time.Duration(i)*111*time.Millisecond)
				replies[i] = r.submit(r.fed.Replica(i%2), fmt.Sprintf("req%d", i), 2, 4)
			})
		}
		wg.Wait()
		// Let heartbeats replicate the final ticket states.
		r.g.Sim.Sleep(time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i, reply := range replies {
		if !reply.OK() {
			t.Errorf("req%d: %+v", i, reply)
		}
	}
	committed := make(map[string]int)
	for _, e := range r.fed.MergedJournal() {
		if e.Kind == KindTicket && e.State == StateOpen {
			t.Errorf("ticket %s still open after quiescence", e.Key)
		}
		if e.Kind == KindTicket && e.Committed {
			committed[e.ReqKey]++
		}
	}
	for i := 0; i < reqs; i++ {
		key := fmt.Sprintf("req%d", i)
		if committed[key] != 1 {
			t.Errorf("req key %s committed %d times, want 1", key, committed[key])
		}
	}
}

func TestLeaderElectionOnLeaderCrash(t *testing.T) {
	r := newFedRig(t, 2, 3, 4, 8, time.Second)
	err := r.g.Sim.Run("main", func() {
		r.g.Sim.Sleep(30 * time.Second)
		if got := r.fed.Replica(0).LeaderName(); got != "fed02" {
			t.Errorf("initial leader seen by fed00 = %q, want fed02", got)
		}
		r.fed.Replica(2).Crash()
		// Lease expiry (17s) + election + a few heartbeats.
		r.g.Sim.Sleep(2 * time.Minute)
		for i := 0; i < 2; i++ {
			if got := r.fed.Replica(i).LeaderName(); got != "fed01" {
				t.Errorf("leader seen by fed%02d = %q, want fed01", i, got)
			}
		}
		m := r.fed.Replica(0).ShardMapView()
		if len(m.Replicas) != 2 || m.Leader != "fed01" {
			t.Errorf("shard map after election = %+v, want 2 replicas led by fed01", m)
		}
		// The crashed replica rejoins and is re-admitted to the ring.
		if err := r.fed.Replica(2).Restart(); err != nil {
			t.Errorf("Restart: %v", err)
		}
		r.g.Sim.Sleep(2 * time.Minute)
		m = r.fed.Replica(2).ShardMapView()
		if len(m.Replicas) != 3 {
			t.Errorf("shard map after rejoin = %+v, want 3 replicas", m)
		}
		if got := r.fed.Replica(2).LeaderName(); got != "fed01" {
			t.Errorf("leader seen by rejoined fed02 = %q, want fed01", got)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if wins := r.g.Counters.Get(trace.Key("fed", "election", "win", "fed01")); wins == 0 {
		t.Error("fed01 recorded no election win")
	}
}

func TestForwardingAcrossShards(t *testing.T) {
	r := newFedRig(t, 3, 2, 8, 16, time.Second)
	// Work out the shard split the federation starts with and aim the
	// request at the replica owning the smaller shard, asking for more
	// sites than it owns.
	m := r.fed.Replica(0).ShardMapView()
	owned := map[string][]string{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("site%02d", i)
		owned[m.Owner(name)] = append(owned[m.Owner(name)], name)
	}
	small, large := r.fed.Replica(0), r.fed.Replica(1)
	if len(owned[small.Name()]) > len(owned[large.Name()]) {
		small, large = large, small
	}
	sites := len(owned[small.Name()]) + 1
	if sites > len(owned[large.Name()]) {
		t.Skipf("shard split %d/%d leaves no forwardable gap", len(owned[small.Name()]), len(owned[large.Name()]))
	}
	var reply broker.Reply
	err := r.g.Sim.Run("main", func() {
		r.g.Sim.Sleep(40 * time.Second)
		reply = r.submit(small, "fwd1", sites, 4)
		r.g.Sim.Sleep(time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !reply.OK() {
		t.Fatalf("forwarded request failed: %+v", reply)
	}
	if reply.Hops != 1 {
		t.Errorf("reply.Hops = %d, want 1", reply.Hops)
	}
	if n := r.g.Counters.Get(trace.Key("fed", "forward", "commit", small.Name())); n != 1 {
		t.Errorf("forward commit counter = %d, want 1", n)
	}
	// The origin's ticket closed as forwarded (uncommitted locally); the
	// serving replica committed its own ticket under the same key.
	committed := 0
	for _, e := range r.fed.MergedJournal() {
		if e.Kind == KindTicket && e.ReqKey == "fwd1" && e.Committed {
			committed++
			if e.Origin != large.Name() {
				t.Errorf("committed ticket origin = %s, want %s", e.Origin, large.Name())
			}
		}
	}
	if committed != 1 {
		t.Errorf("committed tickets for fwd1 = %d, want 1", committed)
	}
}

func TestHandoffReapsDeadReplicasAllocations(t *testing.T) {
	// Long-running work so allocations are live when the owner dies.
	r := newFedRig(t, 4, 3, 6, 16, 30*time.Minute)
	var victim *Replica
	var reply broker.Reply
	err := r.g.Sim.Run("main", func() {
		r.g.Sim.Sleep(40 * time.Second)
		victim = r.fed.Replica(0)
		reply = r.submit(victim, "doomed", 2, 4)
		if !reply.OK() {
			return
		}
		// Let the pusher replicate the allocations, then kill the owner.
		r.g.Sim.Sleep(20 * time.Second)
		victim.Crash()
		// Death detection (3 missed beats) + handoff + a reap sweep.
		r.g.Sim.Sleep(5 * time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !reply.OK() {
		t.Fatalf("setup submit failed: %+v", reply)
	}
	openLeft := 0
	reaped := 0
	for _, e := range r.fed.MergedJournal() {
		if e.State == StateOpen {
			openLeft++
			t.Errorf("entry %s (owner %s) still open after handoff window", e.Key, e.Owner)
		}
		if e.Kind == KindAlloc && e.State == StateReaped {
			reaped++
			if e.Owner == victim.Name() {
				t.Errorf("reaped alloc %s still owned by dead %s", e.Key, e.Owner)
			}
		}
	}
	if reaped == 0 {
		t.Error("no allocation was reaped by a surviving peer")
	}
	// The reaped jobs actually released their processors.
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("site%02d", i)
		if free := r.g.Machine(name).FreeProcessors(); free != 16 {
			t.Errorf("%s: %d processors free after reap, want 16", name, free)
		}
	}
	_ = openLeft
}

// fedWorkload runs a fixed federation workload and returns the counter
// snapshot and merged journal bytes.
func fedWorkload(t *testing.T, seed int64) (string, string) {
	t.Helper()
	r := newFedRig(t, seed, 3, 6, 16, time.Second)
	err := r.g.Sim.Run("main", func() {
		wg := vtime.NewWaitGroup(r.g.Sim)
		for i := 0; i < 6; i++ {
			i := i
			wg.Add(1)
			r.g.Sim.GoDaemon(fmt.Sprintf("client%d", i), func() {
				defer wg.Done()
				r.g.Sim.Sleep(40*time.Second + time.Duration(i)*211*time.Millisecond)
				r.submit(r.fed.Replica(i%3), fmt.Sprintf("req%d", i), 2, 4)
			})
		}
		wg.Wait()
		r.g.Sim.Sleep(90 * time.Second)
		r.fed.Replica(1).Crash()
		r.g.Sim.Sleep(3 * time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	jour, err := json.Marshal(r.fed.MergedJournal())
	if err != nil {
		t.Fatalf("marshal journal: %v", err)
	}
	return r.g.Counters.String(), string(jour)
}

func TestFederationDeterministic(t *testing.T) {
	c1, j1 := fedWorkload(t, 7)
	c2, j2 := fedWorkload(t, 7)
	if c1 != c2 {
		t.Errorf("counter snapshots differ across same-seed runs:\n--- run1\n%s\n--- run2\n%s", c1, c2)
	}
	if j1 != j2 {
		t.Errorf("merged journals differ across same-seed runs:\n--- run1\n%s\n--- run2\n%s", j1, j2)
	}
}
