package perf

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioDeterministic locks in the perf pipeline's determinism
// contract: for a fixed seed, the scenario half of BENCH_grid.json and the
// full Prometheus exposition are byte-identical run to run — every
// recorded quantity is virtual-time, so real goroutine interleaving must
// not leak into the snapshot.
func TestScenarioDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		snap, err := Run(RunConfig{Seed: 1, SkipBench: true})
		if err != nil {
			t.Fatal(err)
		}
		var js bytes.Buffer
		if err := WriteJSON(&js, snap.Canonical()); err != nil {
			t.Fatal(err)
		}
		_, g, _ := RunScenario(1)
		var prom bytes.Buffer
		if err := g.WriteMetrics(&prom); err != nil {
			t.Fatal(err)
		}
		return js.Bytes(), prom.Bytes()
	}
	js1, prom1 := run()
	js2, prom2 := run()
	if !bytes.Equal(js1, js2) {
		t.Fatalf("scenario snapshot not byte-identical across runs:\n--- run1\n%s\n--- run2\n%s", js1, js2)
	}
	if !bytes.Equal(prom1, prom2) {
		t.Fatalf("prometheus exposition not byte-identical across runs:\n--- run1\n%s\n--- run2\n%s", prom1, prom2)
	}
	if len(prom1) == 0 {
		t.Fatal("prometheus exposition empty: scenario grid lost its registries")
	}
}

// TestScenarioSeries checks the scenario covers the layers the snapshot
// promises: broker row, kernel counters, and the per-layer histograms.
func TestScenarioSeries(t *testing.T) {
	series, g, row := RunScenario(1)
	if row.Completed == 0 {
		t.Fatalf("scenario completed no requests: %+v", row)
	}
	names := map[string]bool{}
	for _, s := range series {
		if s.Kind != "scenario" {
			t.Fatalf("series %s has kind %q, want scenario", s.Name, s.Kind)
		}
		names[s.Name] = true
	}
	for _, want := range []string{
		"scenario.broker.load",
		"scenario.vtime.kernel",
		"scenario.hist.rpc.call.latency",
		"scenario.hist.transport.msg.delay",
		"scenario.hist.lrm.queue.wait",
		"scenario.hist.core.2pc.submit",
		"scenario.hist.broker.request.latency",
		"scenario.hist.vtime.timer.lead",
	} {
		if !names[want] {
			t.Fatalf("scenario series %q missing; have %v", want, names)
		}
	}
	if g.Sim.TimersFired() == 0 {
		t.Fatal("kernel fired no timers")
	}
}

// TestFedScenarioSeries checks the federation scenario earns its series:
// the load row must have absorbed a leader crash (election, hand-offs,
// failovers) and the federation's own histograms must be populated.
func TestFedScenarioSeries(t *testing.T) {
	series, g, row := RunFedScenario(1)
	if row.Completed == 0 {
		t.Fatalf("fed scenario completed no requests: %+v", row)
	}
	if row.Crashes != 1 || row.Elections == 0 || row.Handoffs == 0 {
		t.Fatalf("fed scenario did not exercise the failure path: %+v", row)
	}
	names := map[string]bool{}
	for _, s := range series {
		if s.Kind != "scenario" {
			t.Fatalf("series %s has kind %q, want scenario", s.Name, s.Kind)
		}
		names[s.Name] = true
	}
	for _, want := range []string{
		"scenario.fed.load",
		"scenario.fed.hist.fed.election.latency",
		"scenario.fed.hist.fed.handoff.time",
	} {
		if !names[want] {
			t.Fatalf("fed scenario series %q missing; have %v", want, names)
		}
	}
	// The returned grid's exposition carries the federation families for
	// the Prometheus endpoint (perfgrid -prom, benchgrid -metrics-out).
	var prom bytes.Buffer
	if err := g.WriteMetrics(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cogrid_fed_live_replicas", "cogrid_fed_election_latency",
		"cogrid_fed_handoff_time", "cogrid_broker_queue_depth",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("fed exposition missing %q", want)
		}
	}
}

// TestScaleScenarioSeries checks the scale scenario earns its series: the
// kernel slice must drain every job failure-free, with real timer and
// queueing volume behind the reported values.
func TestScaleScenarioSeries(t *testing.T) {
	series := RunScaleScenario(1)
	if len(series) != 1 || series[0].Name != "scenario.scale.kernel" {
		t.Fatalf("RunScaleScenario returned %+v, want one scenario.scale.kernel series", series)
	}
	s := series[0]
	if s.Kind != "scenario" {
		t.Fatalf("series kind %q, want scenario", s.Kind)
	}
	v := s.Values
	if v["done"] != float64(s.N) || v["failed"] != 0 {
		t.Fatalf("scale slice lost jobs: done=%v failed=%v of %d", v["done"], v["failed"], s.N)
	}
	if v["timers_fired"] <= v["done"] {
		t.Fatalf("timers_fired=%v implausibly low for %v jobs", v["timers_fired"], v["done"])
	}
	if v["virtual_end_ms"] <= 0 || v["p99_wait_ms"] < v["mean_wait_ms"] {
		t.Fatalf("implausible drain/wait values: %+v", v)
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) < 8 {
		t.Fatalf("suite has %d benchmarks, want >= 8", len(suite))
	}
	seen := map[string]bool{}
	for _, bn := range suite {
		if bn.Name == "" || bn.F == nil {
			t.Fatalf("malformed suite entry: %+v", bn)
		}
		if seen[bn.Name] {
			t.Fatalf("duplicate benchmark name %q", bn.Name)
		}
		seen[bn.Name] = true
	}
	for _, want := range []string{"histogram_record", "trace_export_jsonl", "rpc_call",
		"transport_roundtrip", "vtime_timer", "lrm_submit", "core_2pc", "broker_submit"} {
		if !seen[want] {
			t.Fatalf("suite missing %q", want)
		}
	}
}

func TestCompare(t *testing.T) {
	base := Snapshot{Schema: SchemaVersion, Series: []Series{
		{Name: "rpc_call", Kind: "bench", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "lrm_submit", Kind: "bench", NsPerOp: 2000, AllocsPerOp: 5},
		{Name: "gone", Kind: "bench", NsPerOp: 50},
		{Name: "scenario.broker.load", Kind: "scenario", Values: map[string]float64{"completed": 8}},
	}}
	cur := Snapshot{Schema: SchemaVersion, Series: []Series{
		{Name: "rpc_call", Kind: "bench", NsPerOp: 1300, AllocsPerOp: 12},  // +30%: regression
		{Name: "lrm_submit", Kind: "bench", NsPerOp: 2100, AllocsPerOp: 5}, // +5%: fine
		{Name: "fresh", Kind: "bench", NsPerOp: 10},
		{Name: "scenario.broker.load", Kind: "scenario", Values: map[string]float64{"completed": 4}},
	}}
	res, err := Compare(base, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if reg := res.Regressions(); len(reg) != 1 || reg[0] != "rpc_call" {
		t.Fatalf("Regressions = %v, want [rpc_call]", reg)
	}
	if len(res.Missing) != 1 || res.Missing[0] != "gone" {
		t.Fatalf("Missing = %v, want [gone]", res.Missing)
	}
	if len(res.Added) != 1 || res.Added[0] != "fresh" {
		t.Fatalf("Added = %v, want [fresh]", res.Added)
	}
	report := res.Report(0.20)
	if !strings.Contains(report, "REGRESSION") || !strings.Contains(report, "rpc_call") {
		t.Fatalf("report missing regression marker:\n%s", report)
	}

	// Scenario series never gate.
	for _, d := range res.Deltas {
		if strings.HasPrefix(d.Name, "scenario.") {
			t.Fatalf("scenario series %q compared as bench", d.Name)
		}
	}

	// Schema mismatch refuses to compare.
	if _, err := Compare(Snapshot{Schema: "other/v0"}, cur, 0.20); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap, err := Run(RunConfig{Seed: 1, SkipBench: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_grid.json")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || len(back.Series) != len(snap.Series) {
		t.Fatalf("round trip mangled snapshot: %d series vs %d", len(back.Series), len(snap.Series))
	}
	if s := back.Find("scenario.broker.load"); s == nil || s.Values["completed"] == 0 {
		t.Fatal("round trip lost scenario.broker.load values")
	}

	// A wrong-schema file is rejected.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bad); err == nil {
		t.Fatal("wrong schema must be rejected")
	}
}
