package perf

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// SchemaVersion identifies the BENCH_grid.json layout. Bump it on any
// incompatible change; Compare refuses to diff mismatched schemas.
const SchemaVersion = "cogrid-bench/v1"

// errRejected reports a broker admission rejection inside a benchmark.
var errRejected = errors.New("perf: broker rejected benchmark submission")

// Series is one measured line of the snapshot. Kind "bench" series carry
// wall-clock testing.B results; kind "scenario" series carry virtual-time
// quantities from a deterministic simulation run and are byte-stable for
// a fixed seed.
type Series struct {
	Name        string             `json:"name"`
	Kind        string             `json:"kind"` // "bench" | "scenario"
	N           int                `json:"n"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	OpsPerSec   float64            `json:"ops_per_sec,omitempty"`
	Values      map[string]float64 `json:"values,omitempty"`
}

// Snapshot is the full BENCH_grid.json document.
type Snapshot struct {
	Schema    string   `json:"schema"`
	CreatedAt string   `json:"created_at,omitempty"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	BenchTime string   `json:"bench_time,omitempty"`
	Seed      int64    `json:"seed"`
	Series    []Series `json:"series"`
}

// Canonical returns the snapshot with its timestamp cleared — the form
// determinism tests byte-compare.
func (s Snapshot) Canonical() Snapshot {
	s.CreatedAt = ""
	return s
}

// Find returns the series with the given name, or nil.
func (s *Snapshot) Find(name string) *Series {
	for i := range s.Series {
		if s.Series[i].Name == name {
			return &s.Series[i]
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON. Output is deterministic
// for identical snapshot values (encoding/json sorts map keys).
func WriteJSON(w io.Writer, s Snapshot) error {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// ReadSnapshot loads a snapshot file and validates its schema.
func ReadSnapshot(path string) (Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return Snapshot{}, fmt.Errorf("perf: %s: %w", path, err)
	}
	if s.Schema != SchemaVersion {
		return Snapshot{}, fmt.Errorf("perf: %s: schema %q, want %q", path, s.Schema, SchemaVersion)
	}
	return s, nil
}

// RunConfig parameterizes a measurement run.
type RunConfig struct {
	// BenchRE filters benchmark names; nil runs the full suite.
	BenchRE *regexp.Regexp
	// BenchTime is the testing -benchtime value ("1s", "20ms", "100x");
	// empty keeps the testing default of 1s.
	BenchTime string
	// Seed drives the deterministic scenario run.
	Seed int64
	// SkipBench / SkipScenario drop one half of the suite.
	SkipBench    bool
	SkipScenario bool
}

// Run executes the configured benchmarks and the scenario, returning the
// assembled snapshot (CreatedAt is left empty; stamp it at the edge).
func Run(cfg RunConfig) (Snapshot, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	snap := Snapshot{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		BenchTime: cfg.BenchTime,
		Seed:      cfg.Seed,
	}
	if !cfg.SkipBench {
		// testing.Init is idempotent; it registers the test.* flags that
		// testing.Benchmark consults.
		testing.Init()
		if cfg.BenchTime != "" {
			if err := flag.Set("test.benchtime", cfg.BenchTime); err != nil {
				return Snapshot{}, err
			}
		}
		for _, bn := range Suite() {
			if cfg.BenchRE != nil && !cfg.BenchRE.MatchString(bn.Name) {
				continue
			}
			r := testing.Benchmark(bn.F)
			if r.N == 0 {
				return Snapshot{}, fmt.Errorf("perf: benchmark %s failed", bn.Name)
			}
			ser := Series{
				Name:        bn.Name,
				Kind:        "bench",
				N:           r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: float64(r.AllocsPerOp()),
				BytesPerOp:  float64(r.AllocedBytesPerOp()),
				OpsPerSec:   opsPerSec(r),
			}
			if bn.Derive != nil {
				ser.Values = bn.Derive(r)
			}
			snap.Series = append(snap.Series, ser)
		}
	}
	if !cfg.SkipScenario {
		scen, _, _ := RunScenario(cfg.Seed)
		snap.Series = append(snap.Series, scen...)
		fed, _, _ := RunFedScenario(cfg.Seed)
		snap.Series = append(snap.Series, fed...)
		snap.Series = append(snap.Series, RunWireScenario(cfg.Seed)...)
		sloScen, _ := RunSLOScenario(cfg.Seed)
		snap.Series = append(snap.Series, sloScen...)
		snap.Series = append(snap.Series, RunScaleScenario(cfg.Seed)...)
	}
	return snap, nil
}

// Delta is one series' base-to-current comparison.
type Delta struct {
	Name        string
	BaseNs      float64
	CurNs       float64
	Change      float64 // (cur-base)/base
	BaseAllocs  float64
	CurAllocs   float64
	Regressed   bool
	AllocsGrown bool
}

// CompareResult is the regression analysis of two snapshots.
type CompareResult struct {
	Deltas  []Delta
	Missing []string // bench series in base absent from current
	Added   []string // bench series in current absent from base
}

// Regressions lists the names of series whose ns/op regressed beyond the
// compare threshold.
func (r CompareResult) Regressions() []string {
	var out []string
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d.Name)
		}
	}
	return out
}

// Compare diffs the wall-clock ("bench") series of two snapshots. A series
// regresses when its ns/op grows by more than threshold (0.20 = 20%).
// Scenario series are deterministic virtual-time quantities and are not
// gated here. Schemas must match.
func Compare(base, cur Snapshot, threshold float64) (CompareResult, error) {
	if base.Schema != cur.Schema {
		return CompareResult{}, fmt.Errorf("perf: schema mismatch: base %q vs current %q",
			base.Schema, cur.Schema)
	}
	if threshold <= 0 {
		threshold = 0.20
	}
	baseBench := map[string]Series{}
	for _, s := range base.Series {
		if s.Kind == "bench" {
			baseBench[s.Name] = s
		}
	}
	var res CompareResult
	seen := map[string]bool{}
	for _, s := range cur.Series {
		if s.Kind != "bench" {
			continue
		}
		seen[s.Name] = true
		b, ok := baseBench[s.Name]
		if !ok {
			res.Added = append(res.Added, s.Name)
			continue
		}
		d := Delta{
			Name: s.Name, BaseNs: b.NsPerOp, CurNs: s.NsPerOp,
			BaseAllocs: b.AllocsPerOp, CurAllocs: s.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			d.Change = (s.NsPerOp - b.NsPerOp) / b.NsPerOp
			d.Regressed = d.Change > threshold
		}
		d.AllocsGrown = s.AllocsPerOp > b.AllocsPerOp
		res.Deltas = append(res.Deltas, d)
	}
	for name := range baseBench {
		if !seen[name] {
			res.Missing = append(res.Missing, name)
		}
	}
	sort.Slice(res.Deltas, func(i, j int) bool { return res.Deltas[i].Name < res.Deltas[j].Name })
	sort.Strings(res.Missing)
	sort.Strings(res.Added)
	return res, nil
}

// Report renders a benchstat-style comparison table.
func (r CompareResult) Report(threshold float64) string {
	if threshold <= 0 {
		threshold = 0.20
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %14s %14s %9s %14s\n", "benchmark", "base ns/op", "cur ns/op", "delta", "allocs/op")
	for _, d := range r.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  << REGRESSION"
		} else if d.AllocsGrown {
			mark = "  (allocs grew)"
		}
		fmt.Fprintf(&sb, "%-22s %14.1f %14.1f %+8.1f%% %7.0f→%-6.0f%s\n",
			d.Name, d.BaseNs, d.CurNs, d.Change*100, d.BaseAllocs, d.CurAllocs, mark)
	}
	for _, name := range r.Missing {
		fmt.Fprintf(&sb, "%-22s missing from current run\n", name)
	}
	for _, name := range r.Added {
		fmt.Fprintf(&sb, "%-22s new (no baseline)\n", name)
	}
	if reg := r.Regressions(); len(reg) > 0 {
		fmt.Fprintf(&sb, "FAIL: %d series regressed beyond %.0f%%: %s\n",
			len(reg), threshold*100, strings.Join(reg, ", "))
	} else {
		fmt.Fprintf(&sb, "ok: no ns/op regression beyond %.0f%%\n", threshold*100)
	}
	return sb.String()
}
