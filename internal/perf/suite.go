// Package perf is the performance observatory's measurement engine: a
// declared suite of testing.B micro-benchmarks covering every hot layer
// (histogram, trace export, kernel, transport, RPC, LRM, DUROC 2PC,
// broker), plus a deterministic scenario run whose virtual-time series
// come from the same histogram registry the layers record into. The
// cmd/perfgrid harness drives both and emits a schema-versioned
// BENCH_grid.json snapshot that scripts/check.sh compares for
// regressions.
package perf

import (
	"encoding/json"
	"io"
	"testing"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/broker"
	"cogrid/internal/core"
	"cogrid/internal/flightrec"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/metrics"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
	"cogrid/internal/wire"
)

// Bench is one declared micro-benchmark. F follows testing.B conventions;
// Derive optionally turns the raw result into named throughput metrics
// (messages/sec, jobs/sec, kernel events/sec) for the snapshot.
type Bench struct {
	Name   string
	Desc   string
	F      func(b *testing.B)
	Derive func(r testing.BenchmarkResult) map[string]float64
}

// opsPerSec converts a benchmark result to operations per wall second.
func opsPerSec(r testing.BenchmarkResult) float64 {
	if r.T <= 0 || r.N <= 0 {
		return 0
	}
	return float64(r.N) / r.T.Seconds()
}

// Suite returns the declared benchmark suite, one entry per hot layer.
// Names are stable: they are the snapshot series keys the regression
// compare matches on.
func Suite() []Bench {
	return []Bench{
		{
			Name: "histogram_record",
			Desc: "metrics.Histogram.Record hot path (must be 0 allocs/op)",
			F:    benchHistogramRecord,
		},
		{
			Name: "histogram_quantile",
			Desc: "exact-rank quantile over a populated histogram",
			F:    benchHistogramQuantile,
		},
		{
			Name: "trace_export_jsonl",
			Desc: "pooled JSONL encode of one trace event",
			F:    benchTraceExportJSONL,
		},
		{
			Name: "flightrec_record",
			Desc: "flight-recorder ring record of one trace event (must be 0 allocs/op)",
			F:    benchFlightrecRecord,
			Derive: func(r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{"events_per_sec": opsPerSec(r)}
			},
		},
		{
			Name: "wire_encode",
			Desc: "binary envelope encode into a pooled buffer (must be 0 allocs/op)",
			F:    benchWireEncode,
			Derive: func(r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{"messages_per_sec": opsPerSec(r)}
			},
		},
		{
			Name: "wire_decode",
			Desc: "binary envelope decode of a typical call frame",
			F:    benchWireDecode,
			Derive: func(r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{"messages_per_sec": opsPerSec(r)}
			},
		},
		{
			Name: "vtime_timer",
			Desc: "kernel timer schedule + fire + context switch",
			F:    benchVtimeTimer,
			Derive: func(r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{"kernel_events_per_sec": opsPerSec(r)}
			},
		},
		{
			Name: "vtime_pingpong",
			Desc: "unbuffered channel rendezvous between two processes",
			F:    benchVtimePingPong,
		},
		{
			Name: "transport_roundtrip",
			Desc: "one message round trip through the simulated network",
			F:    benchTransportRoundTrip,
			Derive: func(r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{"messages_per_sec": 2 * opsPerSec(r)}
			},
		},
		{
			Name: "rpc_call",
			Desc: "RPC call round trip over the transport (binary codec)",
			F:    benchRPCCall,
			Derive: func(r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{"messages_per_sec": 2 * opsPerSec(r)}
			},
		},
		{
			Name: "lrm_submit",
			Desc: "fork-mode job submit through completion",
			F:    benchLRMSubmit,
			Derive: func(r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{"jobs_per_sec": opsPerSec(r)}
			},
		},
		{
			Name: "core_2pc",
			Desc: "two-subjob DUROC co-allocation: submit, barrier, release",
			F:    benchCore2PC,
			Derive: func(r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{"requests_per_sec": opsPerSec(r)}
			},
		},
		{
			Name: "broker_submit",
			Desc: "brokered co-allocation: admission, selection, 2PC",
			F:    benchBrokerSubmit,
			Derive: func(r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{"requests_per_sec": opsPerSec(r)}
			},
		},
	}
}

func benchHistogramRecord(b *testing.B) {
	h := metrics.NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func benchHistogramQuantile(b *testing.B) {
	h := metrics.NewHistogram()
	for i := int64(0); i < 100000; i++ {
		h.Record(i * 997 % (1 << 30))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func benchTraceExportJSONL(b *testing.B) {
	events := make([]trace.Event, 512)
	for i := range events {
		events[i] = trace.Event{
			At: time.Duration(i) * time.Millisecond, Cat: "rpc", Name: "call:submit",
			Proc: "workstation", Thr: "client", ID: "flow#1", Req: "req-1", Span: "/call",
			Dur:  2 * time.Millisecond,
			Args: []trace.Arg{{Key: "outcome", Val: "ok"}},
		}
	}
	_ = trace.WriteJSONL(io.Discard, events) // warm the buffer pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events) : i%len(events)+1]
		if err := trace.WriteJSONL(io.Discard, ev); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFlightrecRecord(b *testing.B) {
	sim := vtime.New()
	rec := flightrec.New(sim, flightrec.Options{RingCap: 512})
	ev := trace.Event{
		At: time.Millisecond, Cat: "rpc", Name: "call:submit",
		Proc: "workstation", Thr: "client", Req: "req-1", Span: "/call",
		Args: []trace.Arg{{Key: "outcome", Val: "ok"}},
	}
	rec.Record(ev) // create the ring outside the measured region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(ev)
	}
}

// wireBenchEnvelope is the typical call frame both wire benches measure:
// a dictionary-hit method, causal context, and a small JSON body.
func wireBenchEnvelope() wire.Envelope {
	return wire.Envelope{
		Kind: wire.KindCall, ID: 42, Method: "submit",
		Req: "req-17", Span: "/submit/attempt-1/call:submit#42",
		Body: []byte(`{"rsl":"+(&(executable=app)(count=16))"}`),
	}
}

func benchWireEncode(b *testing.B) {
	env := wireBenchEnvelope()
	var enc wire.Encoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := wire.GetBuf()
		*buf = enc.Encode((*buf)[:0], &env)
		wire.PutBuf(buf)
	}
}

func benchWireDecode(b *testing.B) {
	env := wireBenchEnvelope()
	var enc wire.Encoder
	enc.Encode(nil, &env) // consume the prologue
	frame := enc.Encode(nil, &env)
	var dec wire.Decoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out wire.Envelope
		if err := dec.Decode(frame, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func benchVtimeTimer(b *testing.B) {
	b.ReportAllocs()
	sim := vtime.New()
	n := b.N
	b.ResetTimer()
	sim.Go("driver", func() {
		for i := 0; i < n; i++ {
			sim.Sleep(time.Microsecond)
		}
	})
	if err := sim.Wait(); err != nil {
		b.Fatal(err)
	}
}

func benchVtimePingPong(b *testing.B) {
	b.ReportAllocs()
	sim := vtime.New()
	ping := vtime.NewChan[int](sim, "ping", 0)
	pong := vtime.NewChan[int](sim, "pong", 0)
	n := b.N
	sim.GoDaemon("echo", func() {
		for {
			v, ok := ping.Recv()
			if !ok {
				return
			}
			pong.Send(v)
		}
	})
	b.ResetTimer()
	sim.Go("driver", func() {
		for i := 0; i < n; i++ {
			ping.Send(i)
			pong.Recv()
		}
	})
	if err := sim.Wait(); err != nil {
		b.Fatal(err)
	}
}

func benchTransportRoundTrip(b *testing.B) {
	b.ReportAllocs()
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	client, server := net.AddHost("a"), net.AddHost("b")
	l, err := server.Listen("echo")
	if err != nil {
		b.Fatal(err)
	}
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			if err := conn.Send(msg); err != nil {
				return
			}
		}
	})
	n := b.N
	var benchErr error
	b.ResetTimer()
	err = sim.Run("driver", func() {
		conn, err := client.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			benchErr = err
			return
		}
		defer conn.Close()
		payload := []byte("ping")
		for i := 0; i < n; i++ {
			if err := conn.Send(payload); err != nil {
				benchErr = err
				return
			}
			if _, err := conn.Recv(); err != nil {
				benchErr = err
				return
			}
		}
	})
	if err == nil {
		err = benchErr
	}
	if err != nil {
		b.Fatal(err)
	}
}

func benchRPCCall(b *testing.B) {
	b.ReportAllocs()
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	client, server := net.AddHost("c"), net.AddHost("s")
	l, err := server.Listen("svc")
	if err != nil {
		b.Fatal(err)
	}
	rpc.Serve(sim, l, rpc.HandlerFuncs{
		Call: func(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
			return body, nil
		},
	}, nil)
	n := b.N
	var benchErr error
	b.ResetTimer()
	err = sim.Run("driver", func() {
		conn, err := client.Dial(transport.Addr{Host: "s", Service: "svc"})
		if err != nil {
			benchErr = err
			return
		}
		c := rpc.NewClient(sim, conn)
		defer c.Close()
		var out int
		for i := 0; i < n; i++ {
			if err := c.Call("ping", i, &out, time.Minute); err != nil {
				benchErr = err
				return
			}
		}
	})
	if err == nil {
		err = benchErr
	}
	if err != nil {
		b.Fatal(err)
	}
}

func benchLRMSubmit(b *testing.B) {
	b.ReportAllocs()
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	m := lrm.NewMachine(net.AddHost("m0"), 64, lrm.Config{
		Mode:  lrm.Fork,
		Costs: lrm.Costs{Fork: time.Millisecond, ProcStartup: time.Millisecond},
	})
	m.RegisterExecutable("noop", func(p *lrm.Proc) error { return nil })
	n := b.N
	var benchErr error
	b.ResetTimer()
	err := sim.Run("driver", func() {
		for i := 0; i < n; i++ {
			job, err := m.Submit(lrm.JobSpec{Executable: "noop", Count: 4})
			if err != nil {
				benchErr = err
				return
			}
			job.Done().Wait()
		}
	})
	if err == nil {
		err = benchErr
	}
	if err != nil {
		b.Fatal(err)
	}
}

// barrierExec is the minimal DUROC application: attach, pass the startup
// barrier, exit — releasing processors immediately.
func barrierExec(p *lrm.Proc) error {
	rt, err := core.Attach(p)
	if err != nil {
		return err
	}
	defer rt.Close()
	_, err = rt.Barrier(true, "", 0)
	return err
}

func benchCore2PC(b *testing.B) {
	b.ReportAllocs()
	g := grid.New(grid.Options{})
	g.AddMachine("m0", 32, lrm.Fork)
	g.AddMachine("m1", 32, lrm.Fork)
	g.RegisterEverywhere("app", barrierExec)
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	var benchErr error
	b.ResetTimer()
	err = g.Sim.Run("driver", func() {
		for i := 0; i < n; i++ {
			res, err := agent.Atomic(ctrl, core.Request{Subjobs: []core.SubjobSpec{
				{Contact: g.Contact("m0"), Count: 2, Executable: "app"},
				{Contact: g.Contact("m1"), Count: 2, Executable: "app"},
			}}, time.Hour)
			if err != nil {
				benchErr = err
				return
			}
			res.Job.Done().Wait()
		}
	})
	if err == nil {
		err = benchErr
	}
	if err != nil {
		b.Fatal(err)
	}
}

func benchBrokerSubmit(b *testing.B) {
	b.ReportAllocs()
	g := grid.New(grid.Options{})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		b.Fatal(err)
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
	for _, name := range []string{"site00", "site01", "site02"} {
		m := g.AddMachine(name, 16, lrm.Batch)
		mds.Publish(m, dir, g.Contact(name), 31*time.Second, 4, 16)
	}
	g.RegisterEverywhere("app", barrierExec)
	_, err := broker.New(g.Net.AddHost("broker0"), core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}, broker.Options{Directory: dir, QueueBound: 8, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	clientHost := g.Net.AddHost("client0")
	brokerAddr := transport.Addr{Host: "broker0", Service: broker.ServiceName}
	n := b.N
	var benchErr error
	b.ResetTimer()
	err = g.Sim.Run("driver", func() {
		c, err := broker.Dial(clientHost, brokerAddr)
		if err != nil {
			benchErr = err
			return
		}
		defer c.Close()
		for i := 0; i < n; i++ {
			reply, _, err := c.SubmitWait(broker.Request{
				Tenant:       "bench",
				Sites:        2,
				ProcsPerSite: 4,
				Executable:   "app",
				Spares:       1,
			}, 0, 50)
			if err != nil {
				benchErr = err
				return
			}
			if !reply.Accepted {
				benchErr = errRejected
				return
			}
		}
	})
	if err == nil {
		err = benchErr
	}
	if err != nil {
		b.Fatal(err)
	}
}
