package perf

import (
	"strings"
	"time"

	"cogrid/internal/experiments"
	"cogrid/internal/grid"
	"cogrid/internal/rpc"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// scenarioConfig is the fixed broker-load setting the scenario series
// measure: small enough to finish in well under a second of real time,
// loaded enough to exercise admission queueing, the MDS cache, DUROC 2PC,
// and every instrumented layer underneath.
func scenarioConfig(seed int64) experiments.BrokerLoadConfig {
	return experiments.BrokerLoadConfig{
		Machines:     3,
		MachineSize:  16,
		Sites:        2,
		ProcsPerSite: 4,
		Workers:      2,
		WorkTime:     30 * time.Second,
		Requests:     8,
		Tenants:      2,
		Seed:         seed,
	}
}

// scenarioRate and scenarioQueueBound pin the open-loop row the scenario
// runs: 6 requests/min against an 8-deep admission queue.
const (
	scenarioRate       = 6.0
	scenarioQueueBound = 8
)

// RunScenario executes the deterministic broker-load scenario and distills
// it into "scenario" series: the client-observed row, kernel throughput
// counters, and per-layer latency quantiles read from the run's histogram
// registry. Every value is a virtual-time quantity, so for a fixed seed
// the returned series — and the grid's Prometheus exposition — are
// byte-stable run to run. The grid is returned so callers can export its
// registries (cmd/perfgrid -prom, benchgrid -metrics-out).
func RunScenario(seed int64) ([]Series, *grid.Grid, experiments.BrokerLoadRow) {
	if seed == 0 {
		seed = 1
	}
	row, g := experiments.BrokerLoadRun(scenarioConfig(seed), scenarioRate, scenarioQueueBound)

	series := []Series{
		{
			Name: "scenario.broker.load",
			Kind: "scenario",
			N:    row.Requests,
			Values: map[string]float64{
				"completed":          float64(row.Completed),
				"failed":             float64(row.Failed),
				"rejects":            float64(row.Rejects),
				"retries":            float64(row.Retries),
				"cache_hits":         float64(row.CacheHits),
				"throughput_per_min": row.ThroughputPerMin,
				"p50_ms":             float64(row.P50) / float64(time.Millisecond),
				"p99_ms":             float64(row.P99) / float64(time.Millisecond),
			},
		},
		{
			Name: "scenario.vtime.kernel",
			Kind: "scenario",
			N:    1,
			Values: map[string]float64{
				"timers_fired":     float64(g.Sim.TimersFired()),
				"net_messages":     float64(g.Net.Messages()),
				"net_bytes":        float64(g.Net.Bytes()),
				"final_virtual_ms": float64(g.Sim.Now()) / float64(time.Millisecond),
			},
		},
	}
	// One series per populated layer histogram, in sorted-name order.
	series = append(series, histSeries(g, "scenario.hist.")...)
	return series, g, row
}

// histSeries distills every populated histogram in the grid's registry
// into one quantile series apiece, under the given name prefix.
func histSeries(g *grid.Grid, prefix string) []Series {
	var out []Series
	for _, name := range g.Hists.Names() {
		h := g.Hists.H(name)
		n := h.Count()
		if n == 0 {
			continue
		}
		out = append(out, Series{
			Name: prefix + name,
			Kind: "scenario",
			N:    int(n),
			Values: map[string]float64{
				"p50_ns":  float64(h.Quantile(0.50)),
				"p90_ns":  float64(h.Quantile(0.90)),
				"p99_ns":  float64(h.Quantile(0.99)),
				"max_ns":  float64(h.Max()),
				"mean_ns": h.Mean(),
			},
		})
	}
	return out
}

// sloScenarioFaultRate pins the fault rate the SLO scenario replays: the
// smoke configuration's faulted row, where the orphan rule pages.
const sloScenarioFaultRate = 0.75

// RunSLOScenario executes the deterministic chaos workload with the SLO
// engine armed (the faulted row of the B7 smoke configuration) and
// distills the observability plane's behavior into "scenario.slo"
// series: alert and dump counts, the virtual-time detection lag from
// first fault onset to first page, and the fault-linked signal levels at
// quiescence. Byte-stable run to run like every scenario series.
func RunSLOScenario(seed int64) ([]Series, *grid.Grid) {
	if seed == 0 {
		seed = 1
	}
	cfg := experiments.SLOSmokeConfig(seed)
	row, g, _ := experiments.SLORun(cfg, sloScenarioFaultRate)
	end := g.Sim.Now()
	series := []Series{
		{
			Name: "scenario.slo.detection",
			Kind: "scenario",
			N:    row.Requests,
			Values: map[string]float64{
				"faults":           float64(row.Faults),
				"first_fault_ms":   float64(row.FirstFault) / float64(time.Millisecond),
				"alerts_fired":     float64(row.Alerts),
				"alerts_resolved":  float64(row.Resolves),
				"detection_lag_ms": float64(row.DetectionLag) / float64(time.Millisecond),
				"completed":        float64(row.Completed),
				"failed":           float64(row.Failed),
			},
		},
		{
			Name: "scenario.slo.flightrec",
			Kind: "scenario",
			N:    int(row.Dumps),
			Values: map[string]float64{
				"dumps":           float64(row.Dumps),
				"slo_dumps":       float64(row.SLODumps),
				"dump_errors":     float64(row.DumpErrors),
				"dump_skipped":    float64(row.DumpSkipped),
				"transport_drops": g.Gauges.G("transport.drops").Value(end),
				"orphans_end":     g.Gauges.G("broker.orphans@broker0").Value(end),
				"alerts_active":   g.Gauges.G("slo.alerts.active").Value(end),
			},
		},
	}
	return series, g
}

// wireScenarioMessages and wireScenarioBody pin the fixed stream the wire
// scenario runs per codec setting: enough messages that batch sizes and
// byte counts are stable, small enough to finish in milliseconds.
const (
	wireScenarioMessages = 2000
	wireScenarioBody     = 64
)

// wireScenarioBatch is the coalescing policy of the batched wire row.
func wireScenarioBatch() transport.BatchOptions {
	return transport.BatchOptions{MaxMsgs: 32, MaxBytes: 64 << 10, Delay: 500 * time.Microsecond}
}

// RunWireScenario executes the deterministic half of the B3 wire study —
// a fixed notification stream per codec setting — and distills each row
// into a "scenario.wire" series: wire bytes, per-message framing cost,
// deliveries, drops, and batch coalescing. Wall-clock throughput lives in
// the wire_encode/wire_decode benches and benchgrid -app wire; these
// series pin the codec's on-the-wire behavior byte-stably run to run.
func RunWireScenario(seed int64) []Series {
	if seed == 0 {
		seed = 1
	}
	_ = seed // the stream is fixed; the seed keeps the signature uniform
	rows := []struct {
		name  string
		codec rpc.Codec
		batch transport.BatchOptions
	}{
		{"scenario.wire.json", rpc.JSON, transport.BatchOptions{}},
		{"scenario.wire.binary", rpc.Binary, transport.BatchOptions{}},
		{"scenario.wire.binary_batched", rpc.Binary, wireScenarioBatch()},
	}
	var series []Series
	for _, r := range rows {
		row := experiments.WireNetRun(r.codec, r.batch, wireScenarioMessages, wireScenarioBody)
		vals := map[string]float64{
			"delivered":        float64(row.Delivered),
			"dropped":          float64(row.Dropped),
			"wire_bytes":       float64(row.WireBytes),
			"bytes_per_msg":    row.BytesPerMsg,
			"final_virtual_ms": row.VirtualMs,
		}
		if row.BatchP50 > 0 {
			vals["batch_p50_msgs"] = row.BatchP50
		}
		series = append(series, Series{
			Name:   r.name,
			Kind:   "scenario",
			N:      row.Messages,
			Values: vals,
		})
	}
	return series
}

// scaleScenarioConfig is the fixed sub-second slice of the B4 scale study
// the "scenario.scale" series measure: a Poisson batch-job stream over a
// small fleet, raw on the kernel, deep enough that the timing wheel,
// passive dispatch pool, and release index all carry real load.
func scaleScenarioConfig(seed int64) experiments.ScaleConfig {
	return experiments.ScaleConfig{
		Jobs:             2000,
		Machines:         50,
		MachineSize:      16,
		MeanInterarrival: time.Second,
		Seed:             seed,
	}
}

// RunScaleScenario executes the deterministic scale slice on the
// production timing wheel and distills it into one "scenario.scale.kernel"
// series: job accounting, timer dispatch volume, drain time, and queue-wait
// quantiles. Every value is a virtual-time quantity, byte-stable run to
// run; the wall-clock side of B4 lives in benchgrid -app scale.
func RunScaleScenario(seed int64) []Series {
	if seed == 0 {
		seed = 1
	}
	row := experiments.ScaleRun(scaleScenarioConfig(seed), vtime.EngineWheel)
	return []Series{{
		Name: "scenario.scale.kernel",
		Kind: "scenario",
		N:    row.Jobs,
		Values: map[string]float64{
			"done":            float64(row.Done),
			"failed":          float64(row.Failed),
			"timers_fired":    float64(row.TimersFired),
			"virtual_end_ms":  float64(row.VirtualEnd) / float64(time.Millisecond),
			"mean_wait_ms":    float64(row.MeanWait) / float64(time.Millisecond),
			"p99_wait_ms":     float64(row.P99Wait) / float64(time.Millisecond),
			"machines":        float64(row.Machines),
			"jobs_per_virt_s": float64(row.Jobs) / row.VirtualEnd.Seconds(),
		},
	}}
}

// ScaleSeries runs the FULL-SIZE B4 scale study — 10⁶ jobs over 10⁴
// machines on the production timing wheel, minutes of wall clock — and
// returns it as one "scale.b4.full" series: virtual-time accounting in
// Values, wall-clock ns/job and jobs/sec in the NsPerOp/OpsPerSec fields.
// Unlike the scenario series this is deliberately NOT part of Run: it is
// appended only when perfgrid is invoked with -scale, so the committed
// BENCH_grid.json documents the kernel's scale envelope without every
// snapshot or test paying for it. Kind "scale" keeps it out of the bench
// regression compare (wall-clock at this length is machine-dependent).
func ScaleSeries(seed int64) []Series {
	if seed == 0 {
		seed = 1
	}
	row := experiments.ScaleRun(experiments.ScaleConfig{Seed: seed}, vtime.EngineWheel)
	return []Series{{
		Name:      "scale.b4.full",
		Kind:      "scale",
		N:         row.Jobs,
		NsPerOp:   row.NsPerJob,
		OpsPerSec: row.JobsPerSec,
		Values: map[string]float64{
			"jobs":           float64(row.Jobs),
			"machines":       float64(row.Machines),
			"machine_size":   float64(row.MachineSize),
			"done":           float64(row.Done),
			"failed":         float64(row.Failed),
			"timers_fired":   float64(row.TimersFired),
			"virtual_end_ms": float64(row.VirtualEnd) / float64(time.Millisecond),
			"mean_wait_ms":   float64(row.MeanWait) / float64(time.Millisecond),
			"p99_wait_ms":    float64(row.P99Wait) / float64(time.Millisecond),
			"wall_ms":        float64(row.Wall) / float64(time.Millisecond),
		},
	}}
}

// fedScenarioConfig is the fixed federated setting the "scenario.fed"
// series measure: the stock B6 grid, run as a two-replica group absorbing
// a leader crash — still a fraction of a second of real time, and deep
// enough that election, shard hand-off, journal adoption, and client
// failover all leave samples in the federation histograms.
func fedScenarioConfig(seed int64) experiments.FederationLoadConfig {
	return experiments.FederationLoadConfig{Seed: seed}
}

// fedScenarioReplicas pins the replica count the federation scenario runs.
const fedScenarioReplicas = 2

// RunFedScenario executes the deterministic federated-broker scenario and
// distills it into "scenario.fed" series: the client-observed row plus
// quantiles of the federation's own histograms (election latency, journal
// hand-off age, forward hop counts). Like RunScenario, every value is a
// virtual-time quantity: for a fixed seed the series and the returned
// grid's Prometheus exposition are byte-stable run to run.
func RunFedScenario(seed int64) ([]Series, *grid.Grid, experiments.FederationLoadRow) {
	if seed == 0 {
		seed = 1
	}
	row, g := experiments.FederationLoadRun(fedScenarioConfig(seed), fedScenarioReplicas)

	series := []Series{{
		Name: "scenario.fed.load",
		Kind: "scenario",
		N:    row.Requests,
		Values: map[string]float64{
			"replicas":           float64(row.Replicas),
			"completed":          float64(row.Completed),
			"failed":             float64(row.Failed),
			"rejects":            float64(row.Rejects),
			"failovers":          float64(row.Failovers),
			"forwards":           float64(row.Forwards),
			"elections":          float64(row.Elections),
			"handoffs":           float64(row.Handoffs),
			"crashes":            float64(row.Crashes),
			"throughput_per_min": row.ThroughputPerMin,
			"p50_ms":             float64(row.P50) / float64(time.Millisecond),
			"p99_ms":             float64(row.P99) / float64(time.Millisecond),
		},
	}}
	// Only the federation's own histograms: the broker/RPC/kernel layers
	// are already covered by RunScenario's grid, and duplicating their
	// names here would collide in the snapshot.
	for _, s := range histSeries(g, "scenario.fed.hist.") {
		if strings.HasPrefix(s.Name, "scenario.fed.hist.fed.") {
			series = append(series, s)
		}
	}
	return series, g, row
}
