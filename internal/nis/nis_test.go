package nis

import (
	"errors"
	"testing"
	"time"

	"cogrid/internal/rpc"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

func setup(t *testing.T, serviceTime time.Duration) (*vtime.Sim, *transport.Host, *Server) {
	t.Helper()
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	nisHost := net.AddHost("nis-server")
	gram := net.AddHost("gram-host")
	srv, err := NewServer(nisHost, serviceTime)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.AddUser("grid-user", "users", "grid")
	return sim, gram, srv
}

func TestInitgroupsReturnsGroups(t *testing.T) {
	sim, gram, _ := setup(t, 0)
	err := sim.Run("main", func() {
		groups, err := Initgroups(gram, transport.Addr{Host: "nis-server", Service: ServiceName}, "grid-user", time.Minute)
		if err != nil {
			t.Errorf("Initgroups: %v", err)
			return
		}
		if len(groups) != 2 || groups[0] != "users" || groups[1] != "grid" {
			t.Errorf("groups = %v, want [users grid]", groups)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestInitgroupsCostMatchesFigure3(t *testing.T) {
	sim, gram, _ := setup(t, 0)
	err := sim.Run("main", func() {
		start := sim.Now()
		_, err := Initgroups(gram, transport.Addr{Host: "nis-server", Service: ServiceName}, "grid-user", time.Minute)
		if err != nil {
			t.Errorf("Initgroups: %v", err)
			return
		}
		// Dial RTT 2ms + call RTT 2ms + 696ms service = 700ms: the 0.7 s
		// Figure 3 charges to initgroups.
		if took := sim.Now() - start; took != 700*time.Millisecond {
			t.Errorf("initgroups took %v, want 700ms", took)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestInitgroupsUnknownUser(t *testing.T) {
	sim, gram, _ := setup(t, time.Millisecond)
	err := sim.Run("main", func() {
		_, err := Initgroups(gram, transport.Addr{Host: "nis-server", Service: ServiceName}, "nobody", time.Minute)
		var re rpc.RemoteError
		if !errors.As(err, &re) || re.Error() != ErrNoSuchUser.Error() {
			t.Errorf("Initgroups unknown user = %v, want no-such-user remote error", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestInitgroupsTimesOutAgainstHungServer(t *testing.T) {
	sim, gram, _ := setup(t, 10*time.Minute)
	err := sim.Run("main", func() {
		start := sim.Now()
		_, err := Initgroups(gram, transport.Addr{Host: "nis-server", Service: ServiceName}, "grid-user", 2*time.Second)
		if err != rpc.ErrTimeout {
			t.Errorf("Initgroups = %v, want rpc.ErrTimeout", err)
		}
		if took := sim.Now() - start; took < 2*time.Second || took > 3*time.Second {
			t.Errorf("timed out after %v, want about 2s", took)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestInitgroupsDialFailure(t *testing.T) {
	sim, gram, _ := setup(t, time.Millisecond)
	err := sim.Run("main", func() {
		_, err := Initgroups(gram, transport.Addr{Host: "no-such-host", Service: ServiceName}, "grid-user", time.Minute)
		if err == nil {
			t.Error("Initgroups against missing host succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestLookupsServeConcurrently(t *testing.T) {
	sim, gram, _ := setup(t, 500*time.Millisecond)
	wg := vtime.NewWaitGroup(sim)
	const n = 4
	wg.Add(n)
	for i := 0; i < n; i++ {
		sim.Go("lookup", func() {
			defer wg.Done()
			if _, err := Initgroups(gram, transport.Addr{Host: "nis-server", Service: ServiceName}, "grid-user", time.Minute); err != nil {
				t.Errorf("Initgroups: %v", err)
			}
		})
	}
	var end time.Duration
	sim.Go("main", func() {
		wg.Wait()
		end = sim.Now()
	})
	if err := sim.Wait(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	// Each lookup uses its own connection, so service times overlap.
	if end != 504*time.Millisecond {
		t.Fatalf("%d parallel lookups finished at %v, want 504ms", n, end)
	}
}
