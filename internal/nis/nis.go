// Package nis simulates the Network Information Service group database
// consulted by the Unix initgroups call.
//
// The paper's Figure 3 attributes the largest share of a GRAM request —
// 0.7 s — to initgroups, "expensive because it must consult remote group
// databases (via the Network Information Service)". We model NIS as a
// service with a configurable per-lookup service time, reached over the
// simulated network.
package nis

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// ServiceName is the transport service NIS listens on.
const ServiceName = "nis"

// DefaultServiceTime calibrates a lookup so that, with the default 2 ms
// network, initgroups costs Figure 3's 0.7 s.
const DefaultServiceTime = 696 * time.Millisecond

// ErrNoSuchUser is returned for lookups of unknown users.
var ErrNoSuchUser = errors.New("nis: no such user")

type lookupArgs struct {
	User string `json:"user"`
}

type lookupReply struct {
	Groups []string `json:"groups"`
}

// Server is a simulated NIS daemon.
type Server struct {
	sim         *vtime.Sim
	serviceTime time.Duration

	mu     sync.Mutex
	groups map[string][]string
}

// NewServer starts a NIS daemon on host with the given per-lookup service
// time (DefaultServiceTime if zero).
func NewServer(host *transport.Host, serviceTime time.Duration) (*Server, error) {
	if serviceTime == 0 {
		serviceTime = DefaultServiceTime
	}
	s := &Server{
		sim:         host.Network().Sim(),
		serviceTime: serviceTime,
		groups:      make(map[string][]string),
	}
	l, err := host.Listen(ServiceName)
	if err != nil {
		return nil, err
	}
	rpc.Serve(s.sim, l, rpc.HandlerFuncs{Call: s.handleCall}, nil)
	return s, nil
}

// AddUser registers a user's group list.
func (s *Server) AddUser(user string, groups ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groups[user] = append([]string(nil), groups...)
}

func (s *Server) handleCall(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
	if method != "initgroups" {
		return nil, fmt.Errorf("nis: unknown method %s", method)
	}
	var args lookupArgs
	if err := rpc.Decode(body, &args); err != nil {
		return nil, err
	}
	s.sim.Sleep(s.serviceTime)
	s.mu.Lock()
	groups, ok := s.groups[args.User]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNoSuchUser
	}
	return lookupReply{Groups: groups}, nil
}

// Initgroups performs a group lookup for user from the given host,
// blocking for the service time plus network round trips — the dominant
// term in a GRAM request's latency breakdown.
func Initgroups(from *transport.Host, server transport.Addr, user string, timeout time.Duration) ([]string, error) {
	return InitgroupsCtx(from, server, user, timeout, trace.Ctx{})
}

// InitgroupsCtx is Initgroups under a span context, so the lookup's
// network traffic stays attributed to the request that triggered it.
func InitgroupsCtx(from *transport.Host, server transport.Addr, user string, timeout time.Duration, ctx trace.Ctx) ([]string, error) {
	conn, err := from.DialCtx(server, ctx)
	if err != nil {
		return nil, fmt.Errorf("nis: dial: %w", err)
	}
	client := rpc.NewClient(from.Network().Sim(), conn)
	defer client.Close()
	var reply lookupReply
	if err := client.Call("initgroups", lookupArgs{User: user}, &reply, timeout); err != nil {
		return nil, err
	}
	return reply.Groups, nil
}
