// Package failure injects faults into a simulated grid: the crash, hang,
// slowdown, partition, and authentication failures whose diverse
// visibilities — "ranging from an error report to lack of progress" — the
// paper's Section 2 identifies as the defining difficulty of
// co-allocation.
//
// A Plan is a deterministic schedule of actions applied to a grid;
// RandomPlan draws one from seeded distributions for stress experiments.
package failure

import (
	"fmt"
	"sort"
	"time"

	"cogrid/internal/grid"
)

// Kind enumerates fault actions.
type Kind int

const (
	// HostCrash kills a host: connections error out (detectable).
	HostCrash Kind = iota
	// HostHang silently drops a host's traffic (lack of progress).
	HostHang
	// HostRestore brings a hung host back.
	HostRestore
	// MachineSlow multiplies a machine's process startup time by Factor.
	MachineSlow
	// MachineDown makes a machine's resource manager refuse submissions.
	MachineDown
	// MachineUp restores a downed resource manager.
	MachineUp
	// Partition severs connectivity between Target and Target2.
	Partition
	// Heal restores connectivity between Target and Target2.
	Heal
	// RevokeUser invalidates a credential: authentication fails.
	RevokeUser
	// ReinstateUser restores a revoked credential.
	ReinstateUser
	// MachineRestart reboots a crashed machine: the host comes back and a
	// fresh gatekeeper starts, with the LRM's job table intact — the
	// recovery action that lets leaked allocations on a crashed machine be
	// reaped.
	MachineRestart
)

func (k Kind) String() string {
	switch k {
	case HostCrash:
		return "host-crash"
	case HostHang:
		return "host-hang"
	case HostRestore:
		return "host-restore"
	case MachineSlow:
		return "machine-slow"
	case MachineDown:
		return "machine-down"
	case MachineUp:
		return "machine-up"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case RevokeUser:
		return "revoke-user"
	case ReinstateUser:
		return "reinstate-user"
	case MachineRestart:
		return "machine-restart"
	}
	return "invalid"
}

// Action is one scheduled fault.
type Action struct {
	At      time.Duration
	Kind    Kind
	Target  string
	Target2 string  // second endpoint for Partition/Heal
	Factor  float64 // slowdown factor for MachineSlow
}

func (a Action) String() string {
	switch a.Kind {
	case Partition, Heal:
		return fmt.Sprintf("t=%v %s %s<->%s", a.At, a.Kind, a.Target, a.Target2)
	case MachineSlow:
		return fmt.Sprintf("t=%v %s %s x%.1f", a.At, a.Kind, a.Target, a.Factor)
	default:
		return fmt.Sprintf("t=%v %s %s", a.At, a.Kind, a.Target)
	}
}

// Plan is a schedule of faults.
type Plan []Action

// Apply schedules every action on the grid's kernel. Actions with At in
// the past execute immediately.
func (p Plan) Apply(g *grid.Grid) {
	for _, a := range p {
		action := a
		g.Sim.AfterFunc(max(action.At-g.Sim.Now(), 0), func() {
			apply(g, action)
		})
	}
}

func apply(g *grid.Grid, a Action) {
	switch a.Kind {
	case HostCrash:
		if h := g.Net.Host(a.Target); h != nil {
			h.Crash()
		}
	case HostHang:
		if h := g.Net.Host(a.Target); h != nil {
			h.Hang()
		}
	case HostRestore:
		if h := g.Net.Host(a.Target); h != nil {
			h.Restore()
		}
	case MachineSlow:
		if m := g.Machine(a.Target); m != nil {
			m.SetSlowFactor(a.Factor)
		}
	case MachineDown:
		if m := g.Machine(a.Target); m != nil {
			m.SetDown(true)
		}
	case MachineUp:
		if m := g.Machine(a.Target); m != nil {
			m.SetDown(false)
		}
	case Partition:
		g.Net.Partition(a.Target, a.Target2)
	case Heal:
		g.Net.Heal(a.Target, a.Target2)
	case RevokeUser:
		g.Registry.Revoke(a.Target)
	case ReinstateUser:
		g.Registry.Reinstate(a.Target)
	case MachineRestart:
		if g.Machine(a.Target) != nil {
			g.RestartMachine(a.Target)
		}
	}
}

// Sorted returns the plan ordered by time.
func (p Plan) Sorted() Plan {
	out := append(Plan(nil), p...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// RandomOptions parameterizes RandomPlan.
type RandomOptions struct {
	// Targets are the machine names faults may hit.
	Targets []string
	// Window is the time span faults are drawn from.
	Window time.Duration
	// CrashProb, HangProb, SlowProb are per-target probabilities of each
	// fault (independent draws; at most one fault per target, checked in
	// this order).
	CrashProb float64
	HangProb  float64
	SlowProb  float64
	// SlowFactor is the startup multiplier for slow faults (default 20).
	SlowFactor float64
}

// RandomPlan draws a deterministic fault plan from the grid's seeded
// random source: at most one fault per target machine, uniformly placed
// in the window.
func RandomPlan(g *grid.Grid, opts RandomOptions) Plan {
	if opts.SlowFactor == 0 {
		opts.SlowFactor = 20
	}
	var plan Plan
	for _, target := range opts.Targets {
		at := time.Duration(g.Sim.RandFloat64() * float64(opts.Window))
		roll := g.Sim.RandFloat64()
		switch {
		case roll < opts.CrashProb:
			plan = append(plan, Action{At: at, Kind: HostCrash, Target: target})
		case roll < opts.CrashProb+opts.HangProb:
			plan = append(plan, Action{At: at, Kind: HostHang, Target: target})
		case roll < opts.CrashProb+opts.HangProb+opts.SlowProb:
			plan = append(plan, Action{At: at, Kind: MachineSlow, Target: target, Factor: opts.SlowFactor})
		}
	}
	return plan.Sorted()
}
