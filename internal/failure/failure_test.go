package failure_test

import (
	"strings"
	"testing"
	"time"

	"cogrid/internal/failure"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
)

func TestApplySchedulesActions(t *testing.T) {
	g := grid.New(grid.Options{})
	g.AddMachine("m1", 8, lrm.Fork)
	g.AddMachine("m2", 8, lrm.Fork)
	plan := failure.Plan{
		{At: 10 * time.Second, Kind: failure.MachineDown, Target: "m1"},
		{At: 20 * time.Second, Kind: failure.MachineUp, Target: "m1"},
		{At: 30 * time.Second, Kind: failure.MachineSlow, Target: "m2", Factor: 5},
		{At: 40 * time.Second, Kind: failure.HostHang, Target: "m2"},
		{At: 50 * time.Second, Kind: failure.HostRestore, Target: "m2"},
		{At: 60 * time.Second, Kind: failure.Partition, Target: "workstation", Target2: "m1"},
		{At: 70 * time.Second, Kind: failure.Heal, Target: "workstation", Target2: "m1"},
		{At: 80 * time.Second, Kind: failure.RevokeUser, Target: grid.DefaultUser},
		{At: 90 * time.Second, Kind: failure.ReinstateUser, Target: grid.DefaultUser},
	}
	plan.Apply(g)
	m1 := g.Machine("m1")
	g.RegisterEverywhere("noop", func(p *lrm.Proc) error { return nil })
	err := g.Sim.Run("main", func() {
		g.Sim.SleepUntil(15 * time.Second)
		if _, err := m1.Submit(lrm.JobSpec{Executable: "noop", Count: 1}); err == nil {
			t.Error("submit succeeded while machine down")
		}
		g.Sim.SleepUntil(25 * time.Second)
		if _, err := m1.Submit(lrm.JobSpec{Executable: "noop", Count: 1}); err != nil {
			t.Errorf("submit after machine-up: %v", err)
		}
		g.Sim.SleepUntil(45 * time.Second)
		if g.Net.Host("m2").Up() {
			t.Error("m2 not hung at t=45s")
		}
		g.Sim.SleepUntil(55 * time.Second)
		if !g.Net.Host("m2").Up() {
			t.Error("m2 not restored at t=55s")
		}
		g.Sim.SleepUntil(65 * time.Second)
		if !g.Net.Partitioned("workstation", "m1") {
			t.Error("partition not applied")
		}
		g.Sim.SleepUntil(75 * time.Second)
		if g.Net.Partitioned("workstation", "m1") {
			t.Error("partition not healed")
		}
		g.Sim.SleepUntil(95 * time.Second)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCrashIsTerminal(t *testing.T) {
	g := grid.New(grid.Options{})
	g.AddMachine("victim", 8, lrm.Fork)
	failure.Plan{{At: time.Second, Kind: failure.HostCrash, Target: "victim"}}.Apply(g)
	err := g.Sim.Run("main", func() {
		g.Sim.SleepUntil(2 * time.Second)
		if g.Net.Host("victim").Up() {
			t.Error("victim up after crash")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSortedOrdersByTime(t *testing.T) {
	p := failure.Plan{
		{At: 30 * time.Second, Kind: failure.HostCrash, Target: "c"},
		{At: 10 * time.Second, Kind: failure.HostCrash, Target: "a"},
		{At: 20 * time.Second, Kind: failure.HostCrash, Target: "b"},
	}
	s := p.Sorted()
	if s[0].Target != "a" || s[1].Target != "b" || s[2].Target != "c" {
		t.Fatalf("sorted = %v", s)
	}
	// Original untouched.
	if p[0].Target != "c" {
		t.Fatal("Sorted mutated the plan")
	}
}

func TestRandomPlanDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) failure.Plan {
		g := grid.New(grid.Options{Seed: seed})
		targets := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		return failure.RandomPlan(g, failure.RandomOptions{
			Targets:   targets,
			Window:    time.Hour,
			CrashProb: 0.3,
			HangProb:  0.2,
			SlowProb:  0.2,
		})
	}
	p1, p2 := mk(42), mk(42)
	if len(p1) != len(p2) {
		t.Fatalf("same seed, different plan lengths: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, p1[i], p2[i])
		}
	}
	p3 := mk(43)
	same := len(p1) == len(p3)
	if same {
		for i := range p1 {
			if p1[i] != p3[i] {
				same = false
				break
			}
		}
	}
	if same && len(p1) > 0 {
		t.Error("different seeds produced identical plans")
	}
}

func TestActionString(t *testing.T) {
	a := failure.Action{At: time.Second, Kind: failure.Partition, Target: "a", Target2: "b"}
	if !strings.Contains(a.String(), "a<->b") {
		t.Errorf("String = %q", a.String())
	}
	s := failure.Action{At: time.Second, Kind: failure.MachineSlow, Target: "m", Factor: 2.5}
	if !strings.Contains(s.String(), "x2.5") {
		t.Errorf("String = %q", s.String())
	}
}
