// Package core implements DUROC, the Dynamically Updated Resource Online
// Co-allocator — the paper's primary contribution — together with the
// application-side runtime library.
//
// A co-allocation request is a set of subjobs, each bound to one GRAM
// resource manager and classified as required, interactive, or optional
// (Section 3.2). The controller submits subjobs sequentially (the
// pipelining the paper's Figures 4 and 5 analyze), monitors GRAM
// callbacks, and lets the co-allocation agent edit the request — add,
// delete, substitute — until commit. Application processes call the
// runtime's Barrier; the two-phase commit releases them together with the
// configuration information of Section 3.3 (subjob count and sizes,
// global ranks, and an address book enabling intra- and inter-subjob
// communication).
//
// Failure semantics follow the paper exactly: a required subjob's failure
// or timeout terminates the whole computation, before or after commit; an
// interactive subjob's failure triggers a callback so the agent can delete
// or substitute it; optional subjobs do not participate in commitment and
// join the computation as and when they become active.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"cogrid/internal/rsl"
	"cogrid/internal/transport"
)

// SubjobType classifies a subjob's failure semantics (Section 3.2).
type SubjobType int

const (
	// Required: failure or timeout terminates the entire computation.
	Required SubjobType = iota
	// Interactive: failure or timeout triggers a callback; the agent can
	// delete the subjob or substitute another resource.
	Interactive
	// Optional: does not participate in commitment; failure is ignored.
	Optional
)

func (t SubjobType) String() string {
	switch t {
	case Required:
		return "required"
	case Interactive:
		return "interactive"
	case Optional:
		return "optional"
	}
	return "invalid"
}

// ParseSubjobType parses the RSL subjobStartType attribute value.
func ParseSubjobType(s string) (SubjobType, error) {
	switch s {
	case "required":
		return Required, nil
	case "interactive":
		return Interactive, nil
	case "optional":
		return Optional, nil
	}
	return 0, fmt.Errorf("duroc: unknown subjobStartType %q", s)
}

// SubjobSpec describes one subjob of a co-allocation request.
type SubjobSpec struct {
	// Label identifies the subjob within the request. Auto-generated when
	// empty.
	Label string
	// Contact is the GRAM resource manager to submit to.
	Contact transport.Addr
	// Count is the number of processes.
	Count int
	// Executable names the registered application executable.
	Executable string
	// Type is the failure-semantics class.
	Type SubjobType
	// MaxTime is the batch wall-time limit (0 = none).
	MaxTime time.Duration
	// StartupTimeout bounds the time from submission to full barrier
	// check-in; zero uses the controller default. For subjobs bound to an
	// advance reservation it must cover the wait until the window opens.
	StartupTimeout time.Duration
	// ReservationID binds the subjob to an advance reservation on the
	// target machine (the co-reservation extension of Section 5).
	ReservationID string
}

// Request is a co-allocation request: the editable set of subjobs.
type Request struct {
	Subjobs []SubjobSpec
}

// ParseRequest parses a Figure 1-style RSL multirequest. Recognized
// per-subjob attributes: resourceManagerContact (required), count
// (required), executable (required), subjobStartType (default required),
// label, maxTime (minutes).
func ParseRequest(src string) (Request, error) {
	node, err := rsl.Parse(src)
	if err != nil {
		return Request{}, err
	}
	subs, err := rsl.Subrequests(node)
	if err != nil {
		return Request{}, err
	}
	var req Request
	for i, sub := range subs {
		spec, err := parseSubjob(sub)
		if err != nil {
			return Request{}, fmt.Errorf("duroc: subjob %d: %w", i, err)
		}
		req.Subjobs = append(req.Subjobs, spec)
	}
	return req, nil
}

func parseSubjob(node rsl.Node) (SubjobSpec, error) {
	var spec SubjobSpec
	contact, ok, err := rsl.GetString(node, "resourceManagerContact", nil)
	if err != nil || !ok {
		return spec, fmt.Errorf("missing resourceManagerContact (%v)", err)
	}
	addr, err := transport.ParseAddr(contact)
	if err != nil {
		return spec, err
	}
	spec.Contact = addr
	if spec.Count, ok, err = rsl.GetInt(node, "count", nil); err != nil || !ok {
		return spec, fmt.Errorf("missing or bad count (%v)", err)
	}
	if spec.Executable, ok, err = rsl.GetString(node, "executable", nil); err != nil || !ok {
		return spec, fmt.Errorf("missing executable (%v)", err)
	}
	if st, present, err := rsl.GetString(node, "subjobStartType", nil); err != nil {
		return spec, err
	} else if present {
		if spec.Type, err = ParseSubjobType(st); err != nil {
			return spec, err
		}
	}
	if label, present, err := rsl.GetString(node, "label", nil); err != nil {
		return spec, err
	} else if present {
		spec.Label = label
	}
	if minutes, present, err := rsl.GetInt(node, "maxTime", nil); err != nil {
		return spec, err
	} else if present {
		spec.MaxTime = time.Duration(minutes) * time.Minute
	}
	if resID, present, err := rsl.GetString(node, "reservationID", nil); err != nil {
		return spec, err
	} else if present {
		spec.ReservationID = resID
	}
	return spec, nil
}

// RSL renders the request as a multirequest expression.
func (r Request) RSL() string {
	multi := &rsl.Boolean{Op: rsl.Multi}
	for _, s := range r.Subjobs {
		multi.Children = append(multi.Children, s.rslNode())
	}
	return multi.String()
}

func (s SubjobSpec) rslNode() rsl.Node {
	pairs := [][2]string{
		{"resourceManagerContact", s.Contact.String()},
		{"count", strconv.Itoa(s.Count)},
		{"executable", s.Executable},
		{"subjobStartType", s.Type.String()},
	}
	if s.Label != "" {
		pairs = append(pairs, [2]string{"label", s.Label})
	}
	if s.MaxTime > 0 {
		pairs = append(pairs, [2]string{"maxTime", strconv.Itoa(int(s.MaxTime / time.Minute))})
	}
	if s.ReservationID != "" {
		pairs = append(pairs, [2]string{"reservationID", s.ReservationID})
	}
	return rsl.Conj(pairs...)
}

// SubjobStatus is the lifecycle state of a subjob within a co-allocation.
type SubjobStatus int

const (
	// SJQueued: waiting for the controller to submit it.
	SJQueued SubjobStatus = iota
	// SJSubmitted: GRAM accepted the request.
	SJSubmitted
	// SJActive: processes created, not all checked in.
	SJActive
	// SJCheckedIn: every process reached the co-allocation barrier.
	SJCheckedIn
	// SJReleased: the barrier was released; the subjob is computing.
	SJReleased
	// SJDone: the subjob finished after release.
	SJDone
	// SJFailed: the subjob failed or timed out.
	SJFailed
	// SJDeleted: removed from the request by an edit.
	SJDeleted
)

func (s SubjobStatus) String() string {
	switch s {
	case SJQueued:
		return "queued"
	case SJSubmitted:
		return "submitted"
	case SJActive:
		return "active"
	case SJCheckedIn:
		return "checked-in"
	case SJReleased:
		return "released"
	case SJDone:
		return "done"
	case SJFailed:
		return "failed"
	case SJDeleted:
		return "deleted"
	}
	return "invalid"
}

// terminal reports whether the subjob can make no further progress.
func (s SubjobStatus) terminal() bool {
	return s == SJDone || s == SJFailed || s == SJDeleted
}

// EventKind classifies co-allocation events delivered to the agent.
type EventKind int

const (
	// EvSubmitted: GRAM accepted a subjob.
	EvSubmitted EventKind = iota
	// EvActive: a subjob's processes were created.
	EvActive
	// EvCheckedIn: all of a subjob's processes reached the barrier.
	EvCheckedIn
	// EvSubjobFailed: a subjob failed or timed out — the interactive
	// callback of Section 3.2.
	EvSubjobFailed
	// EvSubjobDone: a released subjob finished.
	EvSubjobDone
	// EvCommitted: the configuration was committed and barriers released.
	EvCommitted
	// EvAborted: the co-allocation was terminated before completion.
	EvAborted
	// EvDone: every released subjob finished.
	EvDone
)

func (k EventKind) String() string {
	switch k {
	case EvSubmitted:
		return "submitted"
	case EvActive:
		return "active"
	case EvCheckedIn:
		return "checked-in"
	case EvSubjobFailed:
		return "subjob-failed"
	case EvSubjobDone:
		return "subjob-done"
	case EvCommitted:
		return "committed"
	case EvAborted:
		return "aborted"
	case EvDone:
		return "done"
	}
	return "invalid"
}

// Event is a co-allocation state change.
type Event struct {
	Kind   EventKind
	Label  string
	Type   SubjobType
	Reason string
	At     time.Duration
}

func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%-10v %-13s", e.At, e.Kind)
	if e.Label != "" {
		fmt.Fprintf(&sb, " %s(%s)", e.Label, e.Type)
	}
	if e.Reason != "" {
		sb.WriteString(": ")
		sb.WriteString(e.Reason)
	}
	return sb.String()
}

// Config is the configuration information delivered to each process when
// the barrier releases (Section 3.3).
type Config struct {
	// NSubjobs is the number of subjobs in the committed configuration.
	NSubjobs int `json:"n_subjobs"`
	// SubjobSizes gives the process count of each committed subjob.
	SubjobSizes []int `json:"subjob_sizes"`
	// SubjobLabels gives each committed subjob's label.
	SubjobLabels []string `json:"subjob_labels"`
	// WorldSize is the total number of processes in the configuration.
	WorldSize int `json:"world_size"`
	// AddressBook holds each process's listener address, indexed by
	// global rank: ranks are assigned subjob-major in committed order.
	AddressBook []string `json:"address_book"`
	// MySubjob is the receiving process's subjob index, or -1 for a late
	// joiner from an optional subjob.
	MySubjob int `json:"my_subjob"`
	// MyRank is the receiving process's global rank, or -1 for a late
	// joiner.
	MyRank int `json:"my_rank"`
}

// RankOf returns the global rank of (subjob, localRank) in the committed
// configuration, or -1 if out of range.
func (c Config) RankOf(subjob, localRank int) int {
	if subjob < 0 || subjob >= c.NSubjobs || localRank < 0 || localRank >= c.SubjobSizes[subjob] {
		return -1
	}
	rank := 0
	for i := 0; i < subjob; i++ {
		rank += c.SubjobSizes[i]
	}
	return rank + localRank
}

// Errors returned by co-allocation operations.
var (
	ErrAborted        = errors.New("duroc: co-allocation aborted")
	ErrCommitted      = errors.New("duroc: request already committed")
	ErrNotCommitted   = errors.New("duroc: request not committed")
	ErrNoSuchSubjob   = errors.New("duroc: no such subjob")
	ErrCommitTimeout  = errors.New("duroc: commit timed out")
	ErrSubjobNotReady = errors.New("duroc: subjobs failed and were not edited out")
)
