package core_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
)

// testRig is a grid plus a controller and shared bookkeeping for the
// standard barrier-worker executable.
type testRig struct {
	g    *grid.Grid
	ctrl *core.Controller

	mu        sync.Mutex
	proceeded []core.Config // config seen by each proceeding process
	abortMsgs []string
}

// newRig builds a grid with the given machines (all fork mode, 64 procs)
// and registers the standard "app" executable: attach, optional startup
// delay via env, barrier, brief compute, exit.
func newRig(t *testing.T, machines ...string) *testRig {
	t.Helper()
	g := grid.New(grid.Options{})
	rig := &testRig{g: g}
	for _, name := range machines {
		g.AddMachine(name, 64, lrm.Fork)
	}
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		cfg, err := rt.Barrier(true, "", 0)
		if err != nil {
			if errors.Is(err, core.ErrBarrierAbort) {
				rig.mu.Lock()
				rig.abortMsgs = append(rig.abortMsgs, err.Error())
				rig.mu.Unlock()
				return nil // aborted before irreversible initialization
			}
			return err
		}
		rig.mu.Lock()
		rig.proceeded = append(rig.proceeded, *cfg)
		rig.mu.Unlock()
		return p.Work(time.Second, time.Second)
	})
	g.RegisterEverywhere("badstart", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		_, err = rt.Barrier(false, "local library check failed", 0)
		return nil // reported failure; exit quietly
	})
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	rig.ctrl = ctrl
	return rig
}

func (r *testRig) spec(machine string, count int, typ core.SubjobType) core.SubjobSpec {
	return core.SubjobSpec{
		Contact:    r.g.Contact(machine),
		Count:      count,
		Executable: "app",
		Type:       typ,
		Label:      machine,
	}
}

func (r *testRig) proceededCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.proceeded)
}

func TestAtomicStyleCoallocationSucceeds(t *testing.T) {
	rig := newRig(t, "m1", "m2", "m3")
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 4, core.Required),
			rig.spec("m2", 8, core.Required),
			rig.spec("m3", 2, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		cfg, err := job.Commit(0)
		if err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		if cfg.NSubjobs != 3 || cfg.WorldSize != 14 {
			t.Errorf("config = %+v", cfg)
		}
		if len(cfg.AddressBook) != 14 {
			t.Errorf("address book has %d entries, want 14", len(cfg.AddressBook))
		}
		job.Done().Wait()
		if job.Err() != "" {
			t.Errorf("job error: %s", job.Err())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if got := rig.proceededCount(); got != 14 {
		t.Fatalf("%d processes proceeded, want 14", got)
	}
}

func TestConfigRanksAndAddressBook(t *testing.T) {
	rig := newRig(t, "m1", "m2")
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 3, core.Required),
			rig.spec("m2", 2, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	rig.mu.Lock()
	defer rig.mu.Unlock()
	if len(rig.proceeded) != 5 {
		t.Fatalf("%d proceeded, want 5", len(rig.proceeded))
	}
	seenRanks := make(map[int]core.Config)
	for _, cfg := range rig.proceeded {
		if cfg.WorldSize != 5 || cfg.NSubjobs != 2 {
			t.Fatalf("bad config %+v", cfg)
		}
		if cfg.SubjobSizes[0] != 3 || cfg.SubjobSizes[1] != 2 {
			t.Fatalf("sizes = %v", cfg.SubjobSizes)
		}
		if _, dup := seenRanks[cfg.MyRank]; dup {
			t.Fatalf("duplicate global rank %d", cfg.MyRank)
		}
		seenRanks[cfg.MyRank] = cfg
	}
	for rank := 0; rank < 5; rank++ {
		cfg, ok := seenRanks[rank]
		if !ok {
			t.Fatalf("missing rank %d", rank)
		}
		wantSubjob := 0
		if rank >= 3 {
			wantSubjob = 1
		}
		if cfg.MySubjob != wantSubjob {
			t.Errorf("rank %d subjob = %d, want %d", rank, cfg.MySubjob, wantSubjob)
		}
		// Address book entries name the host the process runs on.
		wantHost := "m1"
		if rank >= 3 {
			wantHost = "m2"
		}
		if !strings.HasPrefix(cfg.AddressBook[rank], wantHost+":") {
			t.Errorf("address book[%d] = %q, want host %s", rank, cfg.AddressBook[rank], wantHost)
		}
	}
}

func TestRankOf(t *testing.T) {
	cfg := core.Config{NSubjobs: 3, SubjobSizes: []int{4, 2, 3}}
	cases := []struct{ sj, lr, want int }{
		{0, 0, 0}, {0, 3, 3}, {1, 0, 4}, {1, 1, 5}, {2, 2, 8},
		{3, 0, -1}, {-1, 0, -1}, {1, 2, -1}, {0, -1, -1},
	}
	for _, c := range cases {
		if got := cfg.RankOf(c.sj, c.lr); got != c.want {
			t.Errorf("RankOf(%d,%d) = %d, want %d", c.sj, c.lr, got, c.want)
		}
	}
}

func TestRequiredSubjobFailureAbortsEverything(t *testing.T) {
	rig := newRig(t, "m1", "m2")
	// m2 is down: its GRAM submission will fail.
	rig.g.Machine("m2").SetDown(true)
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 4, core.Required),
			rig.spec("m2", 4, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		_, err = job.Commit(0)
		if !errors.Is(err, core.ErrAborted) {
			t.Errorf("Commit = %v, want ErrAborted", err)
		}
		if !strings.Contains(job.Err(), "m2") {
			t.Errorf("job error %q does not name the failed subjob", job.Err())
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if rig.proceededCount() != 0 {
		t.Fatalf("%d processes proceeded after abort", rig.proceededCount())
	}
}

func TestInteractiveFailureCallbackAndSubstitute(t *testing.T) {
	// The paper's Section 2 scenario: a resource fails, the agent
	// substitutes a dynamically located alternative and proceeds.
	rig := newRig(t, "m1", "broken", "spare")
	rig.g.Machine("broken").SetDown(true)
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 4, core.Required),
			rig.spec("broken", 4, core.Interactive),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		// Drive from the event stream, exactly like a co-allocation agent.
		substituted := false
		committed := make(chan core.Config, 1)
		rig.g.Sim.Go("committer", func() {
			cfg, err := job.Commit(0)
			if err != nil {
				t.Errorf("Commit: %v", err)
			}
			committed <- cfg
		})
		for {
			ev, ok := job.Events().Recv()
			if !ok {
				t.Error("event stream closed before commit")
				return
			}
			if ev.Kind == core.EvSubjobFailed && ev.Label == "broken" {
				if ev.Type != core.Interactive {
					t.Errorf("failed subjob type = %v", ev.Type)
				}
				if err := job.Substitute("broken", rig.spec("spare", 4, core.Interactive)); err != nil {
					t.Errorf("Substitute: %v", err)
				}
				substituted = true
			}
			if ev.Kind == core.EvCommitted {
				break
			}
		}
		if !substituted {
			t.Error("no interactive failure callback was delivered")
		}
		cfg := <-committed
		if cfg.WorldSize != 8 {
			t.Errorf("world size = %d, want 8", cfg.WorldSize)
		}
		for i, l := range cfg.SubjobLabels {
			if l == "broken" {
				t.Errorf("committed labels[%d] = broken", i)
			}
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if rig.proceededCount() != 8 {
		t.Fatalf("%d proceeded, want 8", rig.proceededCount())
	}
}

func TestInteractiveFailureDeleteAndProceedWithFewer(t *testing.T) {
	// Second half of the Section 2 scenario: a subjob is slow; the agent
	// drops it and proceeds with reduced fidelity.
	rig := newRig(t, "m1", "m2", "slow")
	rig.g.Machine("slow").SetSlowFactor(1000) // startup far beyond timeout
	err := rig.g.Sim.Run("agent", func() {
		specs := []core.SubjobSpec{
			rig.spec("m1", 4, core.Required),
			rig.spec("m2", 4, core.Interactive),
			rig.spec("slow", 4, core.Interactive),
		}
		specs[2].StartupTimeout = 30 * time.Second
		job, err := rig.ctrl.Submit(core.Request{Subjobs: specs})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		sawTimeout := false
		rig.g.Sim.Go("agent-loop", func() {
			for {
				ev, ok := job.Events().Recv()
				if !ok {
					return
				}
				if ev.Kind == core.EvSubjobFailed && ev.Label == "slow" {
					sawTimeout = true
					if !strings.Contains(ev.Reason, "timeout") {
						t.Errorf("reason = %q, want startup timeout", ev.Reason)
					}
					if err := job.Delete("slow"); err != nil {
						t.Errorf("Delete: %v", err)
					}
				}
			}
		})
		cfg, err := job.Commit(0)
		if err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		if cfg.WorldSize != 8 || cfg.NSubjobs != 2 {
			t.Errorf("config = %+v, want 2 subjobs / 8 procs", cfg)
		}
		job.Done().Wait()
		if !sawTimeout {
			t.Error("never saw the slow subjob's timeout callback")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestOptionalSubjobsDoNotBlockCommit(t *testing.T) {
	rig := newRig(t, "m1", "off")
	rig.g.Machine("off").SetDown(true)
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 4, core.Required),
			rig.spec("off", 4, core.Optional),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		cfg, err := job.Commit(0)
		if err != nil {
			t.Errorf("Commit despite optional failure: %v", err)
			return
		}
		if cfg.WorldSize != 4 {
			t.Errorf("world size = %d, want 4 (optional subjob excluded)", cfg.WorldSize)
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestAppReportedStartupFailure(t *testing.T) {
	// A process performing local checks reports unsuccessful startup via
	// Barrier(false): application-defined failure (Section 2).
	rig := newRig(t, "m1", "m2")
	err := rig.g.Sim.Run("agent", func() {
		specs := []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
			{Contact: rig.g.Contact("m2"), Count: 2, Executable: "badstart", Type: core.Required, Label: "m2"},
		}
		job, err := rig.ctrl.Submit(core.Request{Subjobs: specs})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		_, err = job.Commit(0)
		if !errors.Is(err, core.ErrAborted) {
			t.Errorf("Commit = %v, want ErrAborted", err)
		}
		if !strings.Contains(job.Err(), "local library check failed") {
			t.Errorf("job error %q lacks application message", job.Err())
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestAbortReleasesBarrierWaiters(t *testing.T) {
	rig := newRig(t, "m1")
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 4, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		// Wait for full check-in, then abort instead of committing.
		for {
			ev, ok := job.Events().Recv()
			if !ok {
				return
			}
			if ev.Kind == core.EvCheckedIn {
				break
			}
		}
		job.Abort("operator changed mind")
		job.Done().Wait()
		if _, err := job.Commit(0); !errors.Is(err, core.ErrAborted) {
			t.Errorf("Commit after abort = %v", err)
		}
		// Let the abort replies propagate to the waiting processes before
		// the simulation ends.
		rig.g.Sim.Sleep(5 * time.Second)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	rig.mu.Lock()
	defer rig.mu.Unlock()
	if len(rig.abortMsgs) != 4 {
		t.Fatalf("%d processes saw barrier abort, want 4", len(rig.abortMsgs))
	}
	if len(rig.proceeded) != 0 {
		t.Fatalf("processes proceeded after abort")
	}
}

func TestKillTerminatesRunningComputation(t *testing.T) {
	rig := newRig(t, "m1")
	rig.g.RegisterEverywhere("longapp", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(time.Hour, time.Second)
	})
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			{Contact: rig.g.Contact("m1"), Count: 4, Executable: "longapp", Type: core.Required, Label: "m1"},
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		rig.g.Sim.Sleep(10 * time.Second)
		job.Kill()
		job.Done().Wait()
		if !strings.Contains(job.Err(), "killed") {
			t.Errorf("job error = %q", job.Err())
		}
		if rig.g.Sim.Now() > time.Minute {
			t.Errorf("kill took until %v", rig.g.Sim.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestEditAfterCommitRejected(t *testing.T) {
	rig := newRig(t, "m1", "m2")
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		if err := job.Add(rig.spec("m2", 2, core.Required)); !errors.Is(err, core.ErrCommitted) {
			t.Errorf("Add after commit = %v, want ErrCommitted", err)
		}
		if err := job.Delete("m1"); !errors.Is(err, core.ErrCommitted) {
			t.Errorf("Delete after commit = %v, want ErrCommitted", err)
		}
		if err := job.Substitute("m1", rig.spec("m2", 2, core.Required)); !errors.Is(err, core.ErrCommitted) {
			t.Errorf("Substitute after commit = %v, want ErrCommitted", err)
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestOptionalSubjobAddedAfterCommitJoinsLate(t *testing.T) {
	rig := newRig(t, "m1", "late")
	lateJoined := make(chan core.Config, 8)
	rig.g.RegisterEverywhere("latejoin", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		cfg, err := rt.Barrier(true, "", 0)
		if err != nil {
			return nil
		}
		lateJoined <- *cfg
		return nil
	})
	// The master must outlive the late join: an optional worker can only
	// join a computation that is still running.
	rig.g.RegisterEverywhere("master30s", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(30*time.Second, time.Second)
	})
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			{Contact: rig.g.Contact("m1"), Count: 2, Executable: "master30s", Type: core.Required, Label: "m1"},
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		err = job.Add(core.SubjobSpec{
			Contact: rig.g.Contact("late"), Count: 2, Executable: "latejoin",
			Type: core.Optional, Label: "late",
		})
		if err != nil {
			t.Errorf("Add optional after commit: %v", err)
			return
		}
		for i := 0; i < 2; i++ {
			select {
			case cfg := <-lateJoined:
				if cfg.MyRank != -1 {
					t.Errorf("late joiner rank = %d, want -1", cfg.MyRank)
				}
				if cfg.WorldSize != 2 {
					t.Errorf("late joiner world size = %d, want 2", cfg.WorldSize)
				}
			default:
				// Spin the simulation forward until the join lands.
				rig.g.Sim.Sleep(time.Second)
				i--
			}
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCommitTimeout(t *testing.T) {
	rig := newRig(t, "m1", "m2")
	// "sleeper" never reaches the barrier: the subjob stays in startup —
	// lack of progress, not an error report.
	rig.g.RegisterEverywhere("sleeper", func(p *lrm.Proc) error {
		return p.Work(2*time.Hour, time.Second)
	})
	err := rig.g.Sim.Run("agent", func() {
		specs := []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
			{Contact: rig.g.Contact("m2"), Count: 2, Executable: "sleeper",
				Type: core.Interactive, Label: "m2", StartupTimeout: time.Hour},
		}
		job, err := rig.ctrl.Submit(core.Request{Subjobs: specs})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		start := rig.g.Sim.Now()
		_, err = job.Commit(2 * time.Minute)
		if !errors.Is(err, core.ErrCommitTimeout) {
			t.Errorf("Commit = %v, want ErrCommitTimeout", err)
		}
		if took := rig.g.Sim.Now() - start; took != 2*time.Minute {
			t.Errorf("Commit timed out after %v, want 2m", took)
		}
		job.Abort("giving up")
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCommitReportsUneditedFailures(t *testing.T) {
	rig := newRig(t, "m1", "down")
	rig.g.Machine("down").SetDown(true)
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
			rig.spec("down", 2, core.Interactive),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		_, err = job.Commit(time.Minute)
		if !errors.Is(err, core.ErrSubjobNotReady) {
			t.Errorf("Commit = %v, want ErrSubjobNotReady", err)
		}
		r := job.Readiness()
		if r.Ready || len(r.Failed) != 1 || r.Failed[0] != "down" {
			t.Errorf("Readiness = %+v", r)
		}
		job.Abort("")
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestMachineCrashMidStartupIsRequiredFailure(t *testing.T) {
	rig := newRig(t, "m1", "crashy")
	err := rig.g.Sim.Run("agent", func() {
		// Crash crashy 3 seconds in: subjob submitted, processes starting.
		rig.g.Sim.AfterFunc(3*time.Second, func() {
			rig.g.Net.Host("crashy").Crash()
		})
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
			rig.spec("crashy", 2, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		_, err = job.Commit(0)
		if !errors.Is(err, core.ErrAborted) {
			t.Errorf("Commit = %v, want ErrAborted after crash", err)
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestParseRequestFigure1(t *testing.T) {
	src := `+(&(resourceManagerContact=rm1:gram)(count=1)(executable=master)(subjobStartType=required)(label=boss))
            (&(resourceManagerContact=rm2:gram)(count=4)(executable=worker)(subjobStartType=interactive))
            (&(resourceManagerContact=rm3:gram)(count=4)(executable=worker)(subjobStartType=optional)(maxTime=30))`
	req, err := core.ParseRequest(src)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if len(req.Subjobs) != 3 {
		t.Fatalf("%d subjobs", len(req.Subjobs))
	}
	s0 := req.Subjobs[0]
	if s0.Label != "boss" || s0.Count != 1 || s0.Type != core.Required || s0.Contact.Host != "rm1" {
		t.Errorf("subjob 0 = %+v", s0)
	}
	if req.Subjobs[1].Type != core.Interactive {
		t.Errorf("subjob 1 type = %v", req.Subjobs[1].Type)
	}
	if req.Subjobs[2].Type != core.Optional || req.Subjobs[2].MaxTime != 30*time.Minute {
		t.Errorf("subjob 2 = %+v", req.Subjobs[2])
	}
	// Round trip through RSL.
	again, err := core.ParseRequest(core.Request{Subjobs: req.Subjobs}.RSL())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(again.Subjobs) != 3 || again.Subjobs[0] != req.Subjobs[0] {
		t.Errorf("round trip mismatch: %+v", again.Subjobs)
	}
}

func TestParseRequestErrors(t *testing.T) {
	cases := []string{
		`+(&(count=1)(executable=x))`,                                                            // no contact
		`+(&(resourceManagerContact=rm:gram)(executable=x))`,                                     // no count
		`+(&(resourceManagerContact=rm:gram)(count=1))`,                                          // no executable
		`+(&(resourceManagerContact=rm:gram)(count=1)(executable=x)(subjobStartType=sometimes))`, // bad type
		`+(&(resourceManagerContact=bad)(count=1)(executable=x))`,                                // bad contact
	}
	for _, src := range cases {
		if _, err := core.ParseRequest(src); err == nil {
			t.Errorf("ParseRequest(%q) succeeded", src)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	rig := newRig(t, "m1")
	if _, err := rig.ctrl.Submit(core.Request{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
		{Contact: rig.g.Contact("m1"), Count: 0, Executable: "app"},
	}}); err == nil {
		t.Error("zero-count subjob accepted")
	}
	if _, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
		rig.spec("m1", 1, core.Required),
		rig.spec("m1", 1, core.Required),
	}}); err == nil {
		t.Error("duplicate labels accepted")
	}
	// Drain the sim so spawned daemons settle.
	_ = rig.g.Sim.Run("noop", func() {})
}

func TestBarrierWaitsRecorded(t *testing.T) {
	rig := newRig(t, "m1", "m2")
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
			rig.spec("m2", 2, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		waits := job.BarrierWaits()
		if len(waits) != 4 {
			t.Fatalf("%d barrier waits, want 4", len(waits))
		}
		var minWait, maxWait time.Duration = waits[0], waits[0]
		for _, w := range waits {
			if w < minWait {
				minWait = w
			}
			if w > maxWait {
				maxWait = w
			}
		}
		// Subjob 2 checks in last and is released immediately: its procs
		// wait ~0. Subjob 1's procs wait roughly one submission pipeline
		// step. (Section 4.2: "the shortest wait time is always zero".)
		if minWait > 10*time.Millisecond {
			t.Errorf("min barrier wait = %v, want ~0", minWait)
		}
		if maxWait < 500*time.Millisecond {
			t.Errorf("max barrier wait = %v, want at least one pipeline step", maxWait)
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
