package core_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/lrm"
)

// TestPolicyMatrixSingleSubjobFailure pins the Section 3.2 subjob-type
// policy matrix: one healthy required subjob plus one failing subjob of
// each type, failing either at startup (before the barrier vote) or
// while running (after release). Every cell asserts the final job
// state — whether the commit goes through, the committed world size,
// whether the controller terminates the computation on its own, and the
// terminal status of both subjobs.
func TestPolicyMatrixSingleSubjobFailure(t *testing.T) {
	cases := []struct {
		name     string
		failType core.SubjobType
		failExec string            // "badstart" fails pre-vote, "diesafter" post-release
		waitFor  core.SubjobStatus // shaky status to wait for before Commit (0 = none)

		commitOK  bool   // does Commit succeed?
		world     int    // committed world size when commitOK
		selfTerm  bool   // controller ends the job without agent help
		errSubstr string // substring of Job.Err after settling
		healthy   core.SubjobStatus
	}{
		{
			// Required startup failure kills the whole computation before
			// any process passes the barrier; the healthy subjob's vote is
			// revoked and its processes are torn down.
			name: "required-startup", failType: core.Required, failExec: "badstart",
			commitOK: false, selfTerm: true, errSubstr: "required subjob",
			healthy: core.SJFailed,
		},
		{
			// Interactive startup failure is reported to the agent, who
			// decides; with no reaction the commit times out and the agent
			// must clean up — the controller does not abort on its own.
			name: "interactive-startup", failType: core.Interactive, failExec: "badstart",
			commitOK: false, selfTerm: false, errSubstr: "agent gives up",
			healthy: core.SJFailed,
		},
		{
			// Optional startup failure is dropped from the configuration;
			// the rest of the computation commits without it and completes.
			// (Wait for the failure so the commit demonstrably happens
			// after it — otherwise an undecided optional is merely left out
			// of the initial configuration, which is the late-joiner path,
			// not the failure-policy path under test.)
			name: "optional-startup", failType: core.Optional, failExec: "badstart",
			waitFor:  core.SJFailed,
			commitOK: true, world: 2, selfTerm: true, errSubstr: "",
			healthy: core.SJDone,
		},
		{
			// Required running failure terminates the computation even
			// after a successful commit: the still-computing healthy subjob
			// is killed mid-flight.
			name: "required-running", failType: core.Required, failExec: "diesafter",
			waitFor:  core.SJCheckedIn,
			commitOK: true, world: 4, selfTerm: true, errSubstr: "required subjob",
			healthy: core.SJFailed,
		},
		{
			// Interactive running failure after release leaves the rest of
			// the computation to finish normally.
			name: "interactive-running", failType: core.Interactive, failExec: "diesafter",
			waitFor:  core.SJCheckedIn,
			commitOK: true, world: 4, selfTerm: true, errSubstr: "",
			healthy: core.SJDone,
		},
		{
			// Optional running failure likewise does not disturb the rest.
			// (Wait for the check-in so the optional is demonstrably inside
			// the committed configuration when it fails.)
			name: "optional-running", failType: core.Optional, failExec: "diesafter",
			waitFor:  core.SJCheckedIn,
			commitOK: true, world: 4, selfTerm: true, errSubstr: "",
			healthy: core.SJDone,
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rig := newRig(t, "healthy", "shaky")
			rig.g.RegisterEverywhere("diesafter", func(p *lrm.Proc) error {
				rt, err := core.Attach(p)
				if err != nil {
					return err
				}
				defer rt.Close()
				if _, err := rt.Barrier(true, "", 0); err != nil {
					return nil
				}
				if err := p.Work(5*time.Second, time.Second); err != nil {
					return err
				}
				return errors.New("application fault after release")
			})
			// The healthy subjob computes long enough that every
			// post-release failure lands while it is still running; a
			// required failure must be seen killing it, not racing its
			// natural completion.
			rig.g.RegisterEverywhere("longapp", func(p *lrm.Proc) error {
				rt, err := core.Attach(p)
				if err != nil {
					return err
				}
				defer rt.Close()
				if _, err := rt.Barrier(true, "", 0); err != nil {
					return nil
				}
				return p.Work(10*time.Minute, 10*time.Second)
			})
			err := rig.g.Sim.Run("agent", func() {
				healthy := rig.spec("healthy", 2, core.Required)
				healthy.Executable = "longapp"
				failing := rig.spec("shaky", 2, tc.failType)
				failing.Executable = tc.failExec
				job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{healthy, failing}})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if tc.waitFor != 0 && !waitSubjobStatus(rig, job, "shaky", tc.waitFor) {
					t.Errorf("shaky never reached %v", tc.waitFor)
					return
				}
				cfg, err := job.Commit(90 * time.Second)
				if (err == nil) != tc.commitOK {
					t.Errorf("Commit err = %v, want success=%v", err, tc.commitOK)
					return
				}
				if tc.commitOK && cfg.WorldSize != tc.world {
					t.Errorf("world size = %d, want %d", cfg.WorldSize, tc.world)
				}
				if tc.selfTerm {
					if !job.Done().WaitTimeout(30 * time.Minute) {
						t.Error("controller never settled the job on its own")
						return
					}
				} else {
					// The controller must NOT have ended the job: the policy
					// leaves the decision with the agent.
					rig.g.Sim.Sleep(2 * time.Minute)
					if job.Done().IsSet() {
						t.Error("controller terminated the job; the policy leaves that to the agent")
					}
					job.Abort("agent gives up")
					if !job.Done().WaitTimeout(10 * time.Minute) {
						t.Error("job never settled after agent abort")
						return
					}
				}
				if !strings.Contains(job.Err(), tc.errSubstr) {
					t.Errorf("job error = %q, want substring %q", job.Err(), tc.errSubstr)
				}
				for _, si := range job.Status() {
					switch si.Spec.Label {
					case "shaky":
						if si.Status != core.SJFailed {
							t.Errorf("failing subjob status = %v, want %v", si.Status, core.SJFailed)
						}
					case "healthy":
						if si.Status != tc.healthy {
							t.Errorf("healthy subjob status = %v, want %v", si.Status, tc.healthy)
						}
					}
				}
			})
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
		})
	}
}

// waitSubjobStatus polls until the labelled subjob reaches the given
// status, bounded at five virtual minutes.
func waitSubjobStatus(rig *testRig, job *core.Job, label string, want core.SubjobStatus) bool {
	for i := 0; i < 3000; i++ {
		for _, si := range job.Status() {
			if si.Spec.Label == label && si.Status == want {
				return true
			}
		}
		rig.g.Sim.Sleep(100 * time.Millisecond)
	}
	return false
}
