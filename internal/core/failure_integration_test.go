package core_test

import (
	"strings"
	"testing"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/failure"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
)

// These integration tests drive DUROC through the failure package's fault
// plans, covering the paper's full failure-visibility matrix: error
// reports (crash, app failure), and lack of progress (hang, partition).

func TestRequiredFailurePostCommitKillsComputation(t *testing.T) {
	// "Failure or timeout of a required resource causes the entire
	// computation to be terminated, regardless of whether a commit has
	// been issued or not."
	rig := newRig(t, "m1", "m2")
	rig.g.RegisterEverywhere("longapp", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(time.Hour, time.Second)
	})
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			{Contact: rig.g.Contact("m1"), Count: 2, Executable: "longapp", Type: core.Required, Label: "m1"},
			{Contact: rig.g.Contact("m2"), Count: 2, Executable: "longapp", Type: core.Required, Label: "m2"},
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		// Crash m2 mid-computation: a required resource failed after
		// commit, so the whole computation must terminate.
		rig.g.Sim.Sleep(30 * time.Second)
		rig.g.Net.Host("m2").Crash()
		job.Done().Wait()
		if !strings.Contains(job.Err(), "required subjob") {
			t.Errorf("job error = %q, want required-subjob termination", job.Err())
		}
		if rig.g.Sim.Now() > 10*time.Minute {
			t.Errorf("termination took until %v", rig.g.Sim.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestHungMachineSurfacesAsTimeoutNotError(t *testing.T) {
	// A hang produces no error report — only lack of progress, caught by
	// the subjob startup timeout.
	rig := newRig(t, "m1", "hangs")
	failure.Plan{
		{At: 2 * time.Second, Kind: failure.HostHang, Target: "hangs"},
	}.Apply(rig.g)
	err := rig.g.Sim.Run("agent", func() {
		specs := []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
			rig.spec("hangs", 2, core.Interactive),
		}
		specs[1].StartupTimeout = time.Minute
		job, err := rig.ctrl.Submit(core.Request{Subjobs: specs})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		var failureReason string
		rig.g.Sim.Go("watcher", func() {
			for {
				ev, ok := job.Events().Recv()
				if !ok {
					return
				}
				if ev.Kind == core.EvSubjobFailed && ev.Label == "hangs" {
					failureReason = ev.Reason
					job.Delete("hangs")
				}
			}
		})
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		job.Done().Wait()
		if !strings.Contains(failureReason, "timeout") && !strings.Contains(failureReason, "timed out") {
			t.Errorf("hang surfaced as %q, want a timeout (lack of progress)", failureReason)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestPartitionDuringBarrierRecovers(t *testing.T) {
	// A transient partition between the controller and a machine during
	// startup delays check-in; once healed, the co-allocation completes.
	rig := newRig(t, "m1", "m2")
	failure.Plan{
		{At: 100 * time.Millisecond, Kind: failure.Partition, Target: "workstation", Target2: "m2"},
		{At: 20 * time.Second, Kind: failure.Heal, Target: "workstation", Target2: "m2"},
	}.Apply(rig.g)
	err := rig.g.Sim.Run("agent", func() {
		specs := []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
			rig.spec("m2", 2, core.Required),
		}
		specs[1].StartupTimeout = 5 * time.Minute
		job, err := rig.ctrl.Submit(core.Request{Subjobs: specs})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		cfg, err := job.Commit(10 * time.Minute)
		if err != nil {
			t.Errorf("Commit after heal: %v", err)
			return
		}
		if cfg.WorldSize != 4 {
			t.Errorf("world size = %d", cfg.WorldSize)
		}
		// Commit must have waited for the heal.
		if rig.g.Sim.Now() < 20*time.Second {
			t.Errorf("committed at %v, before the partition healed", rig.g.Sim.Now())
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestAuthFailureIsErrorReport(t *testing.T) {
	// Revoked credentials produce an immediate error report, not a hang.
	rig := newRig(t, "m1")
	rig.g.Registry.Revoke(grid.DefaultUser)
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		_, err = job.Commit(0)
		if err == nil {
			t.Error("Commit succeeded with revoked credentials")
		}
		if rig.g.Sim.Now() > time.Minute {
			t.Errorf("auth failure took %v to surface", rig.g.Sim.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSeededFaultPlanEndToEnd(t *testing.T) {
	// A randomized fault plan over many machines: the substitution agent
	// must either commit a full-size world or fail cleanly — never hang.
	for seed := int64(1); seed <= 5; seed++ {
		rig := newRig(t, "w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7")
		plan := failure.RandomPlan(rig.g, failure.RandomOptions{
			Targets:   []string{"w0", "w1", "w2", "w3"},
			Window:    10 * time.Second,
			CrashProb: 0.3,
			HangProb:  0.2,
			SlowProb:  0.2,
		})
		plan.Apply(rig.g)
		err := rig.g.Sim.Run("agent", func() {
			var req core.Request
			for _, name := range []string{"w0", "w1", "w2", "w3"} {
				s := rig.spec(name, 4, core.Interactive)
				s.StartupTimeout = 30 * time.Second
				req.Subjobs = append(req.Subjobs, s)
			}
			job, err := rig.ctrl.Submit(req)
			if err != nil {
				t.Errorf("seed %d: Submit: %v", seed, err)
				return
			}
			pool := []string{"w4", "w5", "w6", "w7"}
			poolNext := 0
			rig.g.Sim.Go("fixer", func() {
				for {
					ev, ok := job.Events().Recv()
					if !ok {
						return
					}
					if ev.Kind == core.EvSubjobFailed && poolNext < len(pool) {
						s := rig.spec(pool[poolNext], 4, core.Interactive)
						s.Label = s.Label + "-sub"
						poolNext++
						job.Substitute(ev.Label, s)
					}
				}
			})
			cfg, err := job.Commit(5 * time.Minute)
			if err != nil {
				job.Abort("test cleanup")
				return // a clean failure is acceptable under heavy faults
			}
			if cfg.WorldSize != 16 {
				t.Errorf("seed %d: committed %d processes, want 16", seed, cfg.WorldSize)
			}
			job.Kill()
		})
		if err != nil {
			t.Fatalf("seed %d: sim: %v", seed, err)
		}
	}
}
