package core_test

import (
	"testing"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/rpc"
)

// checkinRaw drives the barrier wire protocol directly, as a foreign or
// buggy process would.
func checkinRaw(t *testing.T, rig *testRig, job, subjob string, rank int, ok bool) (proceed bool, reason string) {
	t.Helper()
	conn, err := rig.g.Workstation.Dial(rig.ctrl.Contact())
	if err != nil {
		t.Fatalf("dial barrier: %v", err)
	}
	client := rpc.NewClient(rig.g.Sim, conn)
	defer client.Close()
	var reply struct {
		Proceed bool   `json:"proceed"`
		Reason  string `json:"reason"`
	}
	err = client.Call("checkin", map[string]any{
		"job": job, "subjob": subjob, "rank": rank, "ok": ok, "addr": "workstation:fake",
	}, &reply, time.Minute)
	if err != nil {
		t.Fatalf("checkin call: %v", err)
	}
	return reply.Proceed, reply.Reason
}

func TestCheckinUnknownJobRejected(t *testing.T) {
	rig := newRig(t, "m1")
	err := rig.g.Sim.Run("main", func() {
		proceed, reason := checkinRaw(t, rig, "nope/coalloc9", "sj0", 0, true)
		if proceed {
			t.Error("unknown job proceeded")
		}
		if reason == "" {
			t.Error("no reason given")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCheckinUnknownSubjobRejected(t *testing.T) {
	rig := newRig(t, "m1")
	err := rig.g.Sim.Run("main", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 1, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		proceed, _ := checkinRaw(t, rig, job.ID(), "imposter", 0, true)
		if proceed {
			t.Error("unknown subjob proceeded")
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCheckinAfterAbortRejectedImmediately(t *testing.T) {
	rig := newRig(t, "m1")
	err := rig.g.Sim.Run("main", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		job.Abort("changed plans")
		job.Done().Wait()
		start := rig.g.Sim.Now()
		proceed, reason := checkinRaw(t, rig, job.ID(), "m1", 0, true)
		if proceed {
			t.Error("checkin after abort proceeded")
		}
		if reason == "" {
			t.Error("abort reason not propagated to late check-in")
		}
		// The reply is immediate — no barrier wait for a dead job.
		if rig.g.Sim.Now()-start > time.Second {
			t.Errorf("late checkin took %v", rig.g.Sim.Now()-start)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestHistoryRecordsLifecycle(t *testing.T) {
	rig := newRig(t, "m1", "m2")
	err := rig.g.Sim.Run("main", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
			rig.spec("m2", 2, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		job.Done().Wait()
		history := job.History()
		var kinds []core.EventKind
		for _, ev := range history {
			kinds = append(kinds, ev.Kind)
		}
		counts := map[core.EventKind]int{}
		for _, k := range kinds {
			counts[k]++
		}
		if counts[core.EvSubmitted] != 2 || counts[core.EvCheckedIn] != 2 ||
			counts[core.EvCommitted] != 1 || counts[core.EvDone] != 1 {
			t.Errorf("history kinds = %v", kinds)
		}
		// Events are time-ordered.
		for i := 1; i < len(history); i++ {
			if history[i].At < history[i-1].At {
				t.Errorf("history out of order at %d: %v", i, history)
				break
			}
		}
		// Stringer output is presentable.
		if s := history[0].String(); s == "" {
			t.Error("empty event string")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestDuplicateRankCheckinIsIdempotentForCounting(t *testing.T) {
	// A process retrying its check-in (e.g. after a transient network
	// blip on its side) must not inflate the arrival count and trigger a
	// premature commit.
	rig := newRig(t, "m1")
	err := rig.g.Sim.Run("main", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 3, core.Required), // 3 real processes
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		cfg, err := job.Commit(0)
		if err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		if cfg.WorldSize != 3 || len(cfg.AddressBook) != 3 {
			t.Errorf("config = %+v", cfg)
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
