package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"cogrid/internal/lrm"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
)

// Runtime errors.
var (
	ErrNotCoallocated = errors.New("duroc: process was not started by a co-allocator")
	ErrBarrierAbort   = errors.New("duroc: co-allocation aborted at barrier")
	ErrBarrierTimeout = errors.New("duroc: barrier timed out")
)

// DefaultBarrierTimeout bounds how long a process waits in the barrier for
// the commit decision.
const DefaultBarrierTimeout = time.Hour

// Runtime is the application-side DUROC library: a process started on a
// co-allocated resource attaches, performs its non-side-effect-producing
// startup checks, and calls Barrier before any irreversible
// initialization, exactly as Section 4.1 prescribes.
type Runtime struct {
	proc     *lrm.Proc
	contact  transport.Addr
	jobID    string
	subjob   string
	ctx      trace.Ctx
	listener *transport.Listener
	config   *Config
}

// Attach binds a process to its co-allocation using the environment the
// controller injected at submission. It also opens the process's
// application listener, whose address is published through the barrier's
// address book (Section 3.3's communication mechanism).
func Attach(p *lrm.Proc) (*Runtime, error) {
	contact := p.Getenv(EnvContact)
	jobID := p.Getenv(EnvJob)
	subjob := p.Getenv(EnvSubjob)
	if contact == "" || jobID == "" || subjob == "" {
		return nil, ErrNotCoallocated
	}
	addr, err := transport.ParseAddr(contact)
	if err != nil {
		return nil, fmt.Errorf("duroc: bad contact: %w", err)
	}
	rt := &Runtime{proc: p, contact: addr, jobID: jobID, subjob: subjob}
	// Rejoin the submitting request's causal tree when the controller
	// threaded its span context through the environment; each rank gets its
	// own child span so per-process barrier traffic is distinguishable.
	if enc := p.Getenv(EnvTrace); enc != "" {
		if ctx := trace.ParseCtx(enc); ctx.Valid() {
			rt.ctx = ctx.Child("rank" + strconv.Itoa(p.Rank))
		}
	}
	service := fmt.Sprintf("app.%s.%s.%d", sanitize(jobID), subjob, p.Rank)
	l, err := p.Host().Listen(service)
	if err != nil {
		return nil, fmt.Errorf("duroc: open application listener: %w", err)
	}
	rt.listener = l
	return rt, nil
}

// sanitize makes a job ID usable inside a service name.
func sanitize(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ':' || c == '/' {
			c = '_'
		}
		out[i] = c
	}
	return string(out)
}

// Proc returns the underlying process context.
func (rt *Runtime) Proc() *lrm.Proc { return rt.proc }

// JobID returns the co-allocation identifier.
func (rt *Runtime) JobID() string { return rt.jobID }

// Subjob returns this process's subjob label.
func (rt *Runtime) Subjob() string { return rt.subjob }

// Listener returns the process's application listener; its address is what
// peers find in the barrier's address book.
func (rt *Runtime) Listener() *transport.Listener { return rt.listener }

// Addr returns the application listener's address.
func (rt *Runtime) Addr() transport.Addr { return rt.listener.Addr() }

// Barrier reports startup success (ok) and blocks until the co-allocation
// commit decision. On proceed it returns the committed configuration; on
// abort it returns ErrBarrierAbort (the process must not have performed
// irreversible initialization). A zero timeout uses
// DefaultBarrierTimeout.
func (rt *Runtime) Barrier(ok bool, msg string, timeout time.Duration) (*Config, error) {
	if timeout == 0 {
		timeout = DefaultBarrierTimeout
	}
	conn, err := rt.proc.Host().DialCtx(rt.contact, rt.ctx)
	if err != nil {
		return nil, fmt.Errorf("duroc: dial barrier: %w", err)
	}
	client := rpc.NewClient(rt.proc.Sim(), conn)
	defer client.Close()
	var reply checkinReply
	err = client.CallCtx(rt.ctx, "checkin", checkinArgs{
		Job:    rt.jobID,
		Subjob: rt.subjob,
		Rank:   rt.proc.Rank,
		OK:     ok,
		Msg:    msg,
		Addr:   rt.Addr().String(),
	}, &reply, timeout)
	if err == rpc.ErrTimeout {
		return nil, ErrBarrierTimeout
	}
	if err != nil {
		return nil, fmt.Errorf("duroc: barrier: %w", err)
	}
	if !reply.Proceed {
		return nil, fmt.Errorf("%w: %s", ErrBarrierAbort, reply.Reason)
	}
	rt.config = &reply.Config
	return rt.config, nil
}

// Config returns the committed configuration after a successful Barrier.
func (rt *Runtime) Config() *Config { return rt.config }

// DialRank opens a connection to the process with the given global rank —
// the inter- and intra-subjob communication primitive of Section 3.3.
func (rt *Runtime) DialRank(rank int) (*transport.Conn, error) {
	if rt.config == nil {
		return nil, ErrNotCommitted
	}
	if rank < 0 || rank >= len(rt.config.AddressBook) {
		return nil, fmt.Errorf("duroc: rank %d out of range (world size %d)", rank, rt.config.WorldSize)
	}
	addr, err := transport.ParseAddr(rt.config.AddressBook[rank])
	if err != nil {
		return nil, err
	}
	return rt.proc.Host().Dial(addr)
}

// Close releases the application listener.
func (rt *Runtime) Close() {
	if rt.listener != nil {
		rt.listener.Close()
	}
}
