package core_test

import (
	"fmt"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
)

// A complete co-allocation: two machines, a barrier, a commit, and the
// configuration every process receives.
func Example() {
	g := grid.New(grid.Options{})
	g.AddMachine("mercury", 16, lrm.Fork)
	g.AddMachine("venus", 16, lrm.Fork)
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil // aborted before commit
		}
		return nil
	})
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred, Registry: g.Registry,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	err = g.Sim.Run("agent", func() {
		job, err := ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			{Label: "a", Contact: g.Contact("mercury"), Count: 2, Executable: "app", Type: core.Required},
			{Label: "b", Contact: g.Contact("venus"), Count: 3, Executable: "app", Type: core.Interactive},
		}})
		if err != nil {
			fmt.Println(err)
			return
		}
		cfg, err := job.Commit(time.Hour)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%d subjobs, %d processes, sizes %v\n", cfg.NSubjobs, cfg.WorldSize, cfg.SubjobSizes)
		job.Done().Wait()
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output:
	// 2 subjobs, 5 processes, sizes [2 3]
}

// ParseRequest reads the paper's RSL multirequest notation.
func ExampleParseRequest() {
	req, err := core.ParseRequest(`+(&(resourceManagerContact=rm1:gram)(count=1)
	     (executable=master)(subjobStartType=required))
	   (&(resourceManagerContact=rm2:gram)(count=4)
	     (executable=worker)(subjobStartType=interactive))`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, sj := range req.Subjobs {
		fmt.Printf("%s: %d x %s (%s)\n", sj.Contact, sj.Count, sj.Executable, sj.Type)
	}
	// Output:
	// rm1:gram: 1 x master (required)
	// rm2:gram: 4 x worker (interactive)
}
