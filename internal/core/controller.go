package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"cogrid/internal/gram"
	"cogrid/internal/gsi"
	"cogrid/internal/metrics"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// ServiceName is the transport service the controller's barrier endpoint
// listens on.
const ServiceName = "duroc"

// Environment keys passed to application processes.
const (
	EnvContact = "DUROC_CONTACT"
	EnvJob     = "DUROC_JOB"
	EnvSubjob  = "DUROC_SUBJOB"
	// EnvTrace carries the subjob's causal span context (trace.Ctx.String)
	// so application-side barrier check-ins join the request tree that
	// submitted them.
	EnvTrace = "DUROC_TRACE"
)

// Bugs injects known-wrong protocol behavior into a controller. It exists
// solely for the deterministic simulation-testing harness (internal/dst),
// whose self-tests must prove the invariant checker catches a broken
// two-phase commit; production configurations leave it zero.
type Bugs struct {
	// DoubleCommit makes the coordinator reach the commit decision as soon
	// as any participant has voted, without waiting for — or re-checking —
	// the remaining votes: the premature double commit-decision bug of a
	// broken 2PC implementation. Barriers release while non-optional
	// subjobs are still waiting or even failed.
	DoubleCommit bool
}

// ControllerConfig configures a co-allocation controller.
type ControllerConfig struct {
	Credential gsi.Credential
	Registry   *gsi.Registry
	AuthCost   gsi.CostModel // zero value replaced by gsi.DefaultCost
	// DefaultStartupTimeout bounds submission-to-check-in per subjob when
	// the spec does not override it. Default 10 minutes.
	DefaultStartupTimeout time.Duration
	// ParallelSubmission submits subjobs concurrently instead of the
	// sequential pipeline the paper's DUROC used (Figure 5 shows the
	// GRAM requests "must be submitted sequentially"). Exists for the
	// ablation study of that design choice.
	ParallelSubmission bool
	// Timeline, if set, records per-subjob submission, startup-wait, and
	// barrier phases (Figure 5).
	Timeline gram.PhaseRecorder
	// CancelTimeout bounds each best-effort cancel RPC issued when a
	// subjob is discarded. A hung or partitioned resource manager must
	// not pin the cancel daemon for the full GRAM call timeout; a short
	// bound converts it into an orphan report instead. Default 30 s.
	CancelTimeout time.Duration
	// OnOrphan, when set, receives every subjob whose LRM-side
	// cancellation could not be confirmed (resource-manager contact lost
	// mid-2PC): the remote job may still hold processors, and someone —
	// typically the broker's reaper — must retry the cancel until the
	// resource manager answers. The callback runs on the cancel daemon
	// and must not block.
	OnOrphan func(Orphan)
	// OnAllocation, when set, is called the moment a subjob obtains an
	// LRM job contact — the earliest point at which remote processors may
	// be held on this job's behalf. A federated broker journals these so
	// a peer can reap the allocation if this controller's process dies
	// mid-2PC. The callback runs on the submission path and must not
	// block.
	OnAllocation func(job, subjob string, rm transport.Addr, contact string)
	// Bugs injects deliberately broken protocol behavior for simulation
	// testing. Leave zero outside internal/dst self-tests.
	Bugs Bugs
}

// Orphan identifies a subjob whose cancel was issued but never
// acknowledged: a committed-but-lost allocation that may leak processors
// at its LRM until re-cancelled.
type Orphan struct {
	// Job and Subjob locate the co-allocation and its subjob label.
	Job    string
	Subjob string
	// RM is the GRAM gatekeeper to re-dial; JobContact the LRM job to
	// cancel there.
	RM         transport.Addr
	JobContact string
	// Reason is the error the failed cancel returned.
	Reason string
	// At is the virtual time the orphan was recorded.
	At time.Duration
	// Ctx is the subjob's causal span context: reap attempts parent their
	// events under the request that leaked the allocation.
	Ctx trace.Ctx
}

// Controller is the co-allocation agent's side of DUROC: it owns the
// barrier service and drives co-allocation jobs.
type Controller struct {
	sim  *vtime.Sim
	host *transport.Host
	cfg  ControllerConfig

	mu      sync.Mutex
	nextJob int
	jobs    map[string]*Job
	order   []*Job // submission order, for deterministic iteration
	server  *rpc.Server
}

// NewController starts a controller on host, listening for barrier
// check-ins.
func NewController(host *transport.Host, cfg ControllerConfig) (*Controller, error) {
	if cfg.AuthCost == (gsi.CostModel{}) {
		cfg.AuthCost = gsi.DefaultCost
	}
	if cfg.DefaultStartupTimeout == 0 {
		cfg.DefaultStartupTimeout = 10 * time.Minute
	}
	if cfg.CancelTimeout == 0 {
		cfg.CancelTimeout = 30 * time.Second
	}
	c := &Controller{
		sim:  host.Network().Sim(),
		host: host,
		cfg:  cfg,
		jobs: make(map[string]*Job),
	}
	l, err := host.Listen(ServiceName)
	if err != nil {
		return nil, err
	}
	c.server = rpc.Serve(c.sim, l, c, nil)
	return c, nil
}

// Close terminates every live co-allocation and stops the barrier
// service. A closed controller cannot accept further check-ins, so call
// it only when the computations are done with the co-allocator.
func (c *Controller) Close() {
	c.mu.Lock()
	jobs := make([]*Job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	for _, j := range jobs {
		if !j.done.IsSet() {
			j.Abort("controller closed")
		}
	}
	c.server.Close()
}

// Contact returns the barrier service address application processes check
// in to.
func (c *Controller) Contact() transport.Addr {
	return transport.Addr{Host: c.host.Name(), Service: ServiceName}
}

// Sim returns the kernel the controller runs on.
func (c *Controller) Sim() *vtime.Sim { return c.sim }

// Jobs returns every co-allocation this controller has accepted, in
// submission order — the post-run audit surface the simulation-testing
// harness checks protocol invariants against.
func (c *Controller) Jobs() []*Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Job(nil), c.order...)
}

// Submit starts a co-allocation for the request and returns immediately;
// submission, monitoring, and the barrier run in the background. The agent
// drives the job via its Events stream, edit operations, and Commit.
func (c *Controller) Submit(req Request) (*Job, error) {
	return c.SubmitCtx(req, trace.Ctx{})
}

// SubmitCtx is Submit under a causal span context: every subjob's 2PC legs
// (submit, startup-wait, barrier, commit) land in that request's tree. A
// zero context roots a fresh tree at the job id, so directly submitted
// jobs still trace causally.
func (c *Controller) SubmitCtx(req Request, ctx trace.Ctx) (*Job, error) {
	c.mu.Lock()
	c.nextJob++
	id := fmt.Sprintf("%s/coalloc%d", c.host.Name(), c.nextJob)
	c.mu.Unlock()
	if !ctx.Valid() {
		ctx = trace.NewRequest(id)
	}

	j := &Job{
		c:       c,
		id:      id,
		ctx:     ctx,
		byLabel: make(map[string]*subjob),
		queue:   vtime.NewChan[*subjob](c.sim, "duroc-queue:"+id, 4096),
		events:  vtime.NewChan[Event](c.sim, "duroc-events:"+id, 4096),
		signal:  vtime.NewChan[struct{}](c.sim, "duroc-signal:"+id, 1),
		done:    vtime.NewEvent(c.sim, "duroc-done:"+id),
	}
	j.mu.Lock()
	for _, spec := range req.Subjobs {
		if _, err := j.addLocked(spec); err != nil {
			j.mu.Unlock()
			return nil, err
		}
	}
	if len(j.subjobs) == 0 {
		j.mu.Unlock()
		return nil, fmt.Errorf("duroc: empty request")
	}
	j.mu.Unlock()

	c.mu.Lock()
	c.jobs[id] = j
	c.order = append(c.order, j)
	c.mu.Unlock()
	// Outstanding 2PC transactions gauge: one per live co-allocation,
	// decremented when the job finishes (committed-and-done or aborted).
	c.gauges().G("duroc.outstanding@" + c.host.Name()).Add(1)
	c.sim.GoDaemon("duroc-engine:"+id, j.engine)
	return j, nil
}

// SubmitRSL parses a multirequest and submits it.
func (c *Controller) SubmitRSL(src string) (*Job, error) {
	req, err := ParseRequest(src)
	if err != nil {
		return nil, err
	}
	return c.Submit(req)
}

// --- barrier service ---

type checkinArgs struct {
	Job    string `json:"job"`
	Subjob string `json:"subjob"`
	Rank   int    `json:"rank"`
	OK     bool   `json:"ok"`
	Msg    string `json:"msg,omitempty"`
	Addr   string `json:"addr,omitempty"`
}

type checkinReply struct {
	Proceed bool   `json:"proceed"`
	Reason  string `json:"reason,omitempty"`
	Config  Config `json:"config"`
}

// HandleCall implements rpc.Handler for the barrier service. The checkin
// call blocks until the commit decision — this is the application-visible
// barrier of the two-phase commit.
func (c *Controller) HandleCall(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
	if method != "checkin" {
		return nil, fmt.Errorf("duroc: unknown method %s", method)
	}
	var args checkinArgs
	if err := rpc.Decode(body, &args); err != nil {
		return nil, err
	}
	c.mu.Lock()
	j := c.jobs[args.Job]
	c.mu.Unlock()
	if j == nil {
		return checkinReply{Proceed: false, Reason: "unknown co-allocation " + args.Job}, nil
	}
	return j.checkin(args, sc.Ctx), nil
}

// HandleNotify implements rpc.Handler; the barrier service has no
// notifications.
func (c *Controller) HandleNotify(sc *rpc.ServerConn, method string, body json.RawMessage) {}

// orphaned records a failed cancel: the trace instant and counter make
// the potential processor leak visible, and the OnOrphan hook hands the
// contact to whoever owns reaping.
func (c *Controller) orphaned(o Orphan) {
	c.tracer().InstantCtx(o.Ctx, "duroc", "orphan", c.host.Name(), o.Job+"/"+o.Subjob, "",
		trace.Arg{Key: "rm", Val: o.RM.String()},
		trace.Arg{Key: "reason", Val: o.Reason})
	c.counters().Add(trace.Key("duroc", "orphan", "record", c.host.Name()), 1)
	if c.cfg.OnOrphan != nil {
		c.cfg.OnOrphan(o)
	}
}

// record emits a timeline span if a recorder is configured, and mirrors the
// phase into the trace stream so the Figure 5 timeline is derivable from a
// trace alone. The span lands at ctx's child named for the phase.
func (c *Controller) record(ctx trace.Ctx, actor, phase string, start, end time.Duration) {
	if c.cfg.Timeline != nil {
		c.cfg.Timeline.Add(actor, phase, start, end)
	}
	// Per-phase 2PC leg latency distribution (submit, startup-wait,
	// barrier): the histogram counterpart of the Figure 5 timeline spans.
	c.hists().H("core.2pc." + phase).Record(int64(end - start))
	c.host.Network().Tracer().SpanAtCtx(ctx.Child(trace.Seg(phase)), "duroc", phase, c.host.Name(), actor, "", start, end)
}

// tracer returns the network's tracer (nil-safe no-op when tracing is off).
func (c *Controller) tracer() *trace.Tracer { return c.host.Network().Tracer() }

// counters returns the network's counter registry (nil-safe).
func (c *Controller) counters() *trace.Counters { return c.host.Network().Counters() }

// gauges returns the network's gauge registry (nil-safe).
func (c *Controller) gauges() *metrics.GaugeSet { return c.host.Network().Gauges() }

// hists returns the network's histogram registry (nil-safe).
func (c *Controller) hists() *metrics.HistogramSet { return c.host.Network().Hists() }
