package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"cogrid/internal/gram"
	"cogrid/internal/lrm"
	"cogrid/internal/rsl"
	"cogrid/internal/trace"
	"cogrid/internal/vtime"
)

// subjob is the controller's view of one element of the resource set.
type subjob struct {
	spec    SubjobSpec
	status  SubjobStatus
	client  *gram.Client
	contact string
	reason  string
	// ctx is the subjob's causal span context, a child of the job's.
	ctx trace.Ctx

	checkins map[int]*procCheckin

	queuedAt    time.Duration
	submittedAt time.Duration
	checkedInAt time.Duration
}

// procCheckin records one process waiting in the barrier.
type procCheckin struct {
	rank  int
	addr  string
	at    time.Duration
	reply *vtime.Chan[checkinReply]
}

// Job is a co-allocation in progress: the single abstraction through which
// the agent monitors and controls the whole resource ensemble.
type Job struct {
	c  *Controller
	id string
	// ctx is the causal span context of the request that submitted this
	// co-allocation (a fresh root when none was supplied).
	ctx trace.Ctx

	mu       sync.Mutex
	subjobs  []*subjob
	byLabel  map[string]*subjob
	nextAuto int

	committing bool
	released   bool
	terminated bool
	termReason string
	config     Config
	releaseAt  time.Duration
	waits      []time.Duration

	queue   *vtime.Chan[*subjob]
	events  *vtime.Chan[Event]
	signal  *vtime.Chan[struct{}]
	done    *vtime.Event
	history []Event
}

// ID returns the co-allocation identifier.
func (j *Job) ID() string { return j.id }

// Events returns the job's event stream. It closes after the terminal
// EvDone or EvAborted event.
func (j *Job) Events() *vtime.Chan[Event] { return j.events }

// Done returns an event set when the co-allocation terminates: aborted, or
// all committed subjobs finished.
func (j *Job) Done() *vtime.Event { return j.done }

// Err returns the termination reason, or "" if none.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.termReason
}

// SubjobInfo is a snapshot of one subjob's progress.
type SubjobInfo struct {
	Spec    SubjobSpec
	Status  SubjobStatus
	Reason  string
	Contact string
}

// Status snapshots all subjobs in request order.
func (j *Job) Status() []SubjobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]SubjobInfo, len(j.subjobs))
	for i, sj := range j.subjobs {
		out[i] = SubjobInfo{Spec: sj.spec, Status: sj.status, Reason: sj.reason, Contact: sj.contact}
	}
	return out
}

// BarrierWaits returns, after release, each process's time spent in the
// co-allocation barrier (Figure 4's "Avg. barrier wait" data).
func (j *Job) BarrierWaits() []time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]time.Duration(nil), j.waits...)
}

// emit delivers an event to the agent and records it in the job history.
// Every lifecycle event is also mirrored into the trace stream as an
// instant so an external trace viewer sees the same record the agent does.
func (j *Job) emit(kind EventKind, sj *subjob, reason string) {
	ev := Event{Kind: kind, Reason: reason, At: j.c.sim.Now()}
	if sj != nil {
		ev.Label = sj.spec.Label
		ev.Type = sj.spec.Type
	}
	j.mu.Lock()
	j.history = append(j.history, ev)
	j.mu.Unlock()
	var args []trace.Arg
	if ev.Label != "" {
		args = append(args, trace.Arg{Key: "label", Val: ev.Label}, trace.Arg{Key: "type", Val: ev.Type.String()})
	}
	if reason != "" {
		args = append(args, trace.Arg{Key: "reason", Val: reason})
	}
	ctx := j.ctx
	if sj != nil {
		ctx = sj.ctx
	}
	j.c.tracer().InstantCtx(ctx, "duroc", kind.String(), j.c.host.Name(), j.id, "", args...)
	j.c.counters().Add(trace.Key("duroc", "event", kind.String(), j.c.host.Name()), 1)
	j.events.TrySend(ev)
}

// History returns every event emitted so far, in order — the monitoring
// record an agent or operator consults after the fact.
func (j *Job) History() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.history...)
}

// poke wakes a blocked Commit.
func (j *Job) poke() { j.signal.TrySend(struct{}{}) }

// --- request editing (Section 3.2: add, delete, substitute) ---

// addLocked registers a new subjob and queues it for submission. Caller
// holds j.mu.
func (j *Job) addLocked(spec SubjobSpec) (*subjob, error) {
	if spec.Count <= 0 {
		return nil, fmt.Errorf("duroc: subjob %q: count must be positive", spec.Label)
	}
	if spec.Executable == "" {
		return nil, fmt.Errorf("duroc: subjob %q: missing executable", spec.Label)
	}
	if spec.Label == "" {
		spec.Label = "sj" + strconv.Itoa(j.nextAuto)
		j.nextAuto++
	}
	if _, dup := j.byLabel[spec.Label]; dup {
		return nil, fmt.Errorf("duroc: duplicate subjob label %q", spec.Label)
	}
	if spec.StartupTimeout == 0 {
		spec.StartupTimeout = j.c.cfg.DefaultStartupTimeout
	}
	sj := &subjob{
		spec:     spec,
		status:   SJQueued,
		ctx:      j.ctx.Child("sj:" + trace.Seg(spec.Label)),
		checkins: make(map[int]*procCheckin),
		queuedAt: j.c.sim.Now(),
	}
	j.subjobs = append(j.subjobs, sj)
	j.byLabel[spec.Label] = sj
	j.queue.TrySend(sj)
	return sj, nil
}

// Add appends a subjob to the request. Allowed until the commit decision
// (for required and interactive subjobs) and, for optional subjobs, any
// time before termination.
func (j *Job) Add(spec SubjobSpec) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminated {
		return ErrAborted
	}
	if j.released && spec.Type != Optional {
		return ErrCommitted
	}
	_, err := j.addLocked(spec)
	if err == nil {
		j.pokeLocked()
	}
	return err
}

// Delete removes a subjob from the request, cancelling any resources it
// holds. Its barrier waiters are released with an abort.
func (j *Job) Delete(label string) error {
	j.mu.Lock()
	if j.terminated {
		j.mu.Unlock()
		return ErrAborted
	}
	if j.released {
		j.mu.Unlock()
		return ErrCommitted
	}
	sj, ok := j.byLabel[label]
	if !ok || sj.status == SJDeleted {
		j.mu.Unlock()
		return ErrNoSuchSubjob
	}
	j.editOutLocked(sj, "deleted by agent")
	j.pokeLocked()
	j.mu.Unlock()
	return nil
}

// editOutLocked removes a subjob from the request: live subjobs are
// discarded (resources cancelled, barrier waiters aborted); already-failed
// subjobs are simply marked deleted so they no longer block commitment.
// Caller holds j.mu.
func (j *Job) editOutLocked(sj *subjob, reason string) {
	if sj.status == SJFailed {
		sj.status = SJDeleted
		sj.reason = reason + " (after failure: " + sj.reason + ")"
		return
	}
	j.discardLocked(sj, SJDeleted, reason)
}

// Substitute replaces a subjob with a different resource specification, as
// one edit.
func (j *Job) Substitute(label string, spec SubjobSpec) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminated {
		return ErrAborted
	}
	if j.released {
		return ErrCommitted
	}
	sj, ok := j.byLabel[label]
	if !ok || sj.status == SJDeleted {
		return ErrNoSuchSubjob
	}
	j.editOutLocked(sj, "substituted by agent")
	if _, err := j.addLocked(spec); err != nil {
		return err
	}
	j.pokeLocked()
	return nil
}

// discardLocked cancels a subjob's resources and releases its barrier
// waiters with an abort. Caller holds j.mu.
func (j *Job) discardLocked(sj *subjob, status SubjobStatus, reason string) {
	if sj.status.terminal() {
		return
	}
	sj.status = status
	sj.reason = reason
	for _, ci := range sj.checkins {
		ci.reply.TrySend(checkinReply{Proceed: false, Reason: reason})
	}
	client, contact := sj.client, sj.contact
	sj.client = nil
	if client != nil {
		spec, ctx := sj.spec, sj.ctx
		j.c.sim.GoDaemon("duroc-cancel:"+j.id+"/"+spec.Label, func() {
			if contact != "" {
				j.cancelRemote(client, spec, contact, ctx)
			}
			client.Close()
		})
	}
}

// cancelRemote issues a best-effort cancel for a discarded subjob's LRM
// job. A cancel that cannot be confirmed — the resource manager crashed,
// hung, or partitioned away mid-2PC — is recorded as an orphan: the
// remote job may still hold processors, and the contact must be retried
// by whoever owns reaping (ControllerConfig.OnOrphan).
func (j *Job) cancelRemote(client *gram.Client, spec SubjobSpec, contact string, ctx trace.Ctx) {
	err := client.CancelTimeout(contact, j.c.cfg.CancelTimeout)
	if err == nil {
		return
	}
	j.c.counters().Add(trace.Key("duroc", "cancel", "fail", j.c.host.Name()), 1)
	j.c.orphaned(Orphan{
		Job:        j.id,
		Subjob:     spec.Label,
		RM:         spec.Contact,
		JobContact: contact,
		Reason:     err.Error(),
		At:         j.c.sim.Now(),
		Ctx:        ctx,
	})
}

func (j *Job) pokeLocked() {
	j.signal.TrySend(struct{}{})
}

// --- submission engine ---

// engine submits queued subjobs sequentially. The sequential structure is
// what produces the pipelined timeline of Figure 5: the client-serialized
// portion of each GRAM request (connection, authentication, request
// processing) staggers successive subjobs, while process startup and
// barrier waits overlap.
func (j *Job) engine() {
	for {
		sj, ok := j.queue.Recv()
		if !ok {
			return
		}
		j.mu.Lock()
		skip := sj.status != SJQueued || j.terminated
		j.mu.Unlock()
		if skip {
			continue
		}
		if j.c.cfg.ParallelSubmission {
			sj := sj
			j.c.sim.GoDaemon("duroc-submit:"+j.id+"/"+sj.spec.Label, func() {
				j.submitSubjob(sj)
			})
			continue
		}
		j.submitSubjob(sj)
	}
}

// submitSubjob performs one GRAM submission and wires up monitoring.
func (j *Job) submitSubjob(sj *subjob) {
	c := j.c
	start := c.sim.Now()
	client, err := gram.Dial(c.host, sj.spec.Contact, gram.ClientConfig{
		Credential: c.cfg.Credential,
		Registry:   c.cfg.Registry,
		AuthCost:   c.cfg.AuthCost,
		Ctx:        sj.ctx,
	})
	if err != nil {
		j.subjobFailed(sj, fmt.Sprintf("submit: %v", err))
		return
	}
	contact, err := client.Submit(j.subjobRSL(sj))
	c.record(sj.ctx, sj.spec.Label, "submit", start, c.sim.Now())
	if err != nil {
		client.Close()
		j.subjobFailed(sj, fmt.Sprintf("submit: %v", err))
		return
	}

	j.mu.Lock()
	if sj.status != SJQueued || j.terminated {
		// Deleted or aborted while we were submitting: undo. The undo is
		// subject to the same lost-contact risk as any discard, so an
		// unconfirmed cancel is recorded as an orphan here too.
		j.mu.Unlock()
		j.cancelRemote(client, sj.spec, contact, sj.ctx)
		client.Close()
		return
	}
	sj.client = client
	sj.contact = contact
	sj.status = SJSubmitted
	sj.submittedAt = c.sim.Now()
	j.mu.Unlock()
	if c.cfg.OnAllocation != nil {
		c.cfg.OnAllocation(j.id, sj.spec.Label, sj.spec.Contact, contact)
	}
	j.emit(EvSubmitted, sj, "")
	j.poke()

	// Startup timeout: submission to full check-in.
	c.sim.AfterFunc(sj.spec.StartupTimeout, func() {
		j.mu.Lock()
		pending := !sj.status.terminal() && sj.status != SJCheckedIn && sj.status != SJReleased && !j.released
		j.mu.Unlock()
		if pending {
			j.subjobFailed(sj, "startup timeout after "+sj.spec.StartupTimeout.String())
		}
	})

	c.sim.GoDaemon("duroc-monitor:"+j.id+"/"+sj.spec.Label, func() {
		j.monitorSubjob(sj, client)
	})
}

// subjobRSL builds the GRAM request for one subjob, injecting the DUROC
// environment the application runtime attaches to.
func (j *Job) subjobRSL(sj *subjob) string {
	node := rsl.Conj(
		[2]string{"executable", sj.spec.Executable},
		[2]string{"count", strconv.Itoa(sj.spec.Count)},
	)
	if sj.spec.MaxTime > 0 {
		node.Children = append(node.Children, &rsl.Relation{
			Attribute: "maxTime", Op: rsl.OpEq,
			Value: rsl.Literal(strconv.Itoa(int(sj.spec.MaxTime / time.Minute))),
		})
	}
	if sj.spec.ReservationID != "" {
		node.Children = append(node.Children, &rsl.Relation{
			Attribute: "reservationID", Op: rsl.OpEq,
			Value: rsl.Literal(sj.spec.ReservationID),
		})
	}
	env := rsl.Seq{
		rsl.Literal(EnvContact), rsl.Literal(j.c.Contact().String()),
		rsl.Literal(EnvJob), rsl.Literal(j.id),
		rsl.Literal(EnvSubjob), rsl.Literal(sj.spec.Label),
	}
	if sj.ctx.Valid() {
		// Thread the causal span context through the environment so the
		// application runtime's barrier check-in joins this request's tree.
		env = append(env, rsl.Literal(EnvTrace), rsl.Literal(sj.ctx.String()))
	}
	node.Children = append(node.Children, &rsl.Relation{
		Attribute: "environment", Op: rsl.OpEq,
		Value: env,
	})
	return node.String()
}

// monitorSubjob consumes GRAM callbacks for one subjob.
func (j *Job) monitorSubjob(sj *subjob, client *gram.Client) {
	for {
		ev, ok := client.Events().Recv()
		if !ok {
			// Connection lost: if the subjob is still in flight this is a
			// resource failure with error-report semantics.
			j.mu.Lock()
			inFlight := !sj.status.terminal() && sj.status != SJDone
			j.mu.Unlock()
			if inFlight {
				j.subjobFailed(sj, "lost contact with resource manager")
			}
			return
		}
		switch ev.State {
		case lrm.StateActive:
			j.mu.Lock()
			if sj.status == SJSubmitted {
				sj.status = SJActive
			}
			j.mu.Unlock()
			j.emit(EvActive, sj, "")
			j.poke()
		case lrm.StateFailed:
			j.subjobFailed(sj, "resource manager reported failure: "+ev.Reason)
		case lrm.StateDone:
			j.mu.Lock()
			released := sj.status == SJReleased
			// A fully checked-in optional subjob is part of the released
			// configuration and must finish through subjobDone like any
			// other participant; only optionals still outside it at release
			// time take the late-joiner path. Without the !released guard
			// the status flips to SJDone here and subjobDone's re-check
			// balks, so the job never observes the completion and EvDone
			// never fires.
			lateOptional := !released && j.released && sj.spec.Type == Optional && !sj.status.terminal()
			if lateOptional {
				sj.status = SJDone
			}
			j.mu.Unlock()
			switch {
			case released:
				j.subjobDone(sj)
			case lateOptional:
				j.emit(EvSubjobDone, sj, "")
			default:
				j.subjobFailed(sj, "processes exited before the co-allocation barrier")
			}
			return
		case lrm.StateCancelled:
			// Cancellation is initiated by this controller; the subjob has
			// already been marked. Nothing to do.
		}
	}
}

// subjobFailed applies the Section 3.2 failure semantics for sj's type.
func (j *Job) subjobFailed(sj *subjob, reason string) {
	j.mu.Lock()
	if sj.status.terminal() || j.terminated {
		j.mu.Unlock()
		return
	}
	wasReleased := sj.status == SJReleased
	j.discardLocked(sj, SJFailed, reason)
	typ := sj.spec.Type
	j.pokeLocked()
	j.mu.Unlock()

	j.emit(EvSubjobFailed, sj, reason)
	if typ == Required {
		// Required failure terminates the whole computation, before or
		// after commit.
		j.terminate(fmt.Sprintf("required subjob %q failed: %s", sj.spec.Label, reason))
		return
	}
	if wasReleased {
		j.checkAllDone()
	}
}

// subjobDone marks a released subjob finished.
func (j *Job) subjobDone(sj *subjob) {
	j.mu.Lock()
	if sj.status != SJReleased {
		j.mu.Unlock()
		return
	}
	sj.status = SJDone
	if sj.client != nil {
		client := sj.client
		sj.client = nil
		j.c.sim.GoDaemon("duroc-close:"+j.id+"/"+sj.spec.Label, client.Close)
	}
	j.mu.Unlock()
	j.emit(EvSubjobDone, sj, "")
	j.checkAllDone()
}

// completionGrace is how far past a released subjob's wall-time limit the
// controller waits for the completion callback before polling the
// resource manager directly, and the retry pace when the poll cannot get
// an answer.
const completionGrace = 30 * time.Second

// superviseReleased arms a completion watchdog on every released subjob
// that has a wall-time limit. Completion callbacks ride an event stream a
// network partition can drop silently: the LRM job finishes and frees its
// processors, but the controller would wait for EvSubjobDone forever.
// Once the wall-time limit plus grace passes, the job must have left the
// machine one way or another, so the watchdog polls the resource manager
// for the authoritative verdict. Subjobs without a limit are unbounded by
// contract and cannot be supervised this way.
func (j *Job) superviseReleased() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, sj := range j.subjobs {
		if sj.status == SJReleased && sj.spec.MaxTime > 0 {
			sj := sj
			j.c.sim.AfterFunc(sj.spec.MaxTime+completionGrace, func() { j.pollReleased(sj) })
		}
	}
}

// pollReleased resolves a released subjob whose completion notification is
// overdue: a fresh dial (the original connection may itself be the
// casualty) and a state poll, retried until the resource manager answers.
// The poll's verdict feeds the normal completion paths, so a lost DONE
// callback becomes subjobDone and a lost FAILED becomes the usual failure
// semantics.
func (j *Job) pollReleased(sj *subjob) {
	j.mu.Lock()
	overdue := sj.status == SJReleased
	spec := sj.spec
	contact := sj.contact
	ctx := sj.ctx
	j.mu.Unlock()
	if !overdue {
		return
	}
	retry := func() { j.c.sim.AfterFunc(completionGrace, func() { j.pollReleased(sj) }) }
	client, err := gram.Dial(j.c.host, spec.Contact, gram.ClientConfig{
		Credential: j.c.cfg.Credential,
		Registry:   j.c.cfg.Registry,
		AuthCost:   j.c.cfg.AuthCost,
		Ctx:        ctx.Child("completion-poll"),
	})
	if err != nil {
		retry()
		return
	}
	defer client.Close()
	state, reason, err := client.Status(contact)
	if err != nil {
		retry()
		return
	}
	j.c.counters().Add(trace.Key("duroc", "completion", "poll", j.c.host.Name()), 1)
	switch state {
	case lrm.StateDone:
		j.subjobDone(sj)
	case lrm.StateFailed:
		j.subjobFailed(sj, "completion watchdog: resource manager reports failure: "+reason)
	case lrm.StateCancelled:
		j.subjobFailed(sj, "completion watchdog: cancelled at resource manager")
	default:
		// Still on the machine: wall-time enforcement is evidently lax
		// here (fork-mode machines do not meter). Keep watching.
		retry()
	}
}

// checkAllDone completes the job once every released subjob has finished.
func (j *Job) checkAllDone() {
	j.mu.Lock()
	if !j.released || j.terminated {
		j.mu.Unlock()
		return
	}
	for _, sj := range j.subjobs {
		if sj.status == SJReleased {
			j.mu.Unlock()
			return
		}
	}
	j.terminated = true
	j.mu.Unlock()
	j.emit(EvDone, nil, "")
	j.finish()
}

// terminate aborts or kills the whole co-allocation.
func (j *Job) terminate(reason string) {
	j.mu.Lock()
	if j.terminated {
		j.mu.Unlock()
		return
	}
	j.terminated = true
	j.termReason = reason
	for _, sj := range j.subjobs {
		if !sj.status.terminal() {
			j.discardLocked(sj, SJFailed, reason)
		}
	}
	j.pokeLocked()
	j.mu.Unlock()
	j.emit(EvAborted, nil, reason)
	j.finish()
}

// finish closes the job's channels and sets done.
func (j *Job) finish() {
	j.mu.Lock()
	if !j.queue.IsClosed() {
		j.queue.Close()
	}
	j.mu.Unlock()
	j.events.Close()
	j.c.gauges().G("duroc.outstanding@" + j.c.host.Name()).Add(-1)
	j.done.Set()
}

// Abort terminates the co-allocation before commit; Kill is the collective
// control operation for a running computation (Section 3.4). They share
// semantics.
func (j *Job) Abort(reason string) {
	if reason == "" {
		reason = "aborted by agent"
	}
	j.terminate(reason)
}

// Kill terminates the whole running computation — the collective "kill"
// control operation of Section 3.4.
func (j *Job) Kill() { j.terminate("killed by agent") }

// Suspend pauses every released subjob's processes, treating the ensemble
// as a collective unit — one of the further control operations Section
// 3.4 anticipates. It returns the first error encountered.
func (j *Job) Suspend() error { return j.signalAll((*gram.Client).Suspend) }

// Resume continues a suspended computation.
func (j *Job) Resume() error { return j.signalAll((*gram.Client).Resume) }

func (j *Job) signalAll(op func(*gram.Client, string) error) error {
	j.mu.Lock()
	if !j.released {
		j.mu.Unlock()
		return ErrNotCommitted
	}
	type target struct {
		client  *gram.Client
		contact string
	}
	var targets []target
	for _, sj := range j.subjobs {
		if sj.status == SJReleased && sj.client != nil {
			targets = append(targets, target{client: sj.client, contact: sj.contact})
		}
	}
	j.mu.Unlock()
	var firstErr error
	for _, t := range targets {
		if err := op(t.client, t.contact); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- barrier and commit ---

// checkin handles one process's arrival at the co-allocation barrier. It
// blocks until the commit decision (or returns immediately for late
// joiners and failures). ctx is the caller's propagated span context (zero
// when the process attached without one); barrier instants land under it.
func (j *Job) checkin(args checkinArgs, ctx trace.Ctx) checkinReply {
	j.mu.Lock()
	sj, ok := j.byLabel[args.Subjob]
	if !ok {
		j.mu.Unlock()
		return checkinReply{Proceed: false, Reason: "unknown subjob " + args.Subjob}
	}
	if j.terminated || sj.status.terminal() {
		reason := j.termReason
		if reason == "" {
			reason = sj.reason
		}
		j.mu.Unlock()
		return checkinReply{Proceed: false, Reason: reason}
	}
	if !args.OK {
		j.mu.Unlock()
		j.subjobFailed(sj, fmt.Sprintf("process %d reported unsuccessful startup: %s", args.Rank, args.Msg))
		return checkinReply{Proceed: false, Reason: "startup rejected: " + args.Msg}
	}
	if j.released {
		// Late joiner from an optional subjob: proceed immediately with
		// the committed configuration.
		cfg := j.config
		cfg.MySubjob = j.committedIndexLocked(sj)
		cfg.MyRank = -1
		j.mu.Unlock()
		return checkinReply{Proceed: true, Config: cfg}
	}
	ci := &procCheckin{
		rank:  args.Rank,
		addr:  args.Addr,
		at:    j.c.sim.Now(),
		reply: vtime.NewChan[checkinReply](j.c.sim, "duroc-release:"+j.id+"/"+args.Subjob+"/"+strconv.Itoa(args.Rank), 1),
	}
	sj.checkins[args.Rank] = ci
	if !ctx.Valid() {
		ctx = sj.ctx
	}
	j.c.tracer().InstantCtx(ctx, "duroc", "barrier-enter", j.c.host.Name(), j.id+"/"+args.Subjob, "",
		trace.Arg{Key: "rank", Val: strconv.Itoa(args.Rank)})
	j.c.counters().Add(trace.Key("duroc", "barrier", "enter", j.c.host.Name()), 1)
	full := len(sj.checkins) == sj.spec.Count
	if full && (sj.status == SJActive || sj.status == SJSubmitted) {
		sj.status = SJCheckedIn
		sj.checkedInAt = j.c.sim.Now()
		j.c.record(sj.ctx, sj.spec.Label, "startup-wait", sj.submittedAt, sj.checkedInAt)
	}
	j.mu.Unlock()
	if full {
		j.emit(EvCheckedIn, sj, "")
		j.poke()
	}
	reply, _ := ci.reply.Recv()
	return reply
}

// committedIndexLocked returns sj's index within the committed
// configuration, or -1. Caller holds j.mu.
func (j *Job) committedIndexLocked(sj *subjob) int {
	for i, label := range j.config.SubjobLabels {
		if label == sj.spec.Label {
			return i
		}
	}
	return -1
}

// CommitReadiness describes what Commit is waiting for.
type CommitReadiness struct {
	Ready     bool
	Waiting   []string // labels not yet checked in (required/interactive)
	Failed    []string // failed, not yet edited out (required/interactive)
	CheckedIn []string
}

// Readiness reports whether the request could commit now.
func (j *Job) Readiness() CommitReadiness {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.readinessLocked()
}

func (j *Job) readinessLocked() CommitReadiness {
	r := CommitReadiness{Ready: true}
	for _, sj := range j.subjobs {
		if sj.spec.Type == Optional || sj.status == SJDeleted {
			continue
		}
		switch sj.status {
		case SJCheckedIn:
			r.CheckedIn = append(r.CheckedIn, sj.spec.Label)
		case SJFailed:
			r.Failed = append(r.Failed, sj.spec.Label)
			r.Ready = false
		default:
			r.Waiting = append(r.Waiting, sj.spec.Label)
			r.Ready = false
		}
	}
	if len(r.CheckedIn) == 0 {
		r.Ready = false
	}
	if j.c.cfg.Bugs.DoubleCommit && len(r.CheckedIn) > 0 {
		// Injected 2PC bug (see core.Bugs): one vote is treated as
		// unanimity, so the commit decision lands while non-optional
		// participants are still waiting or failed.
		r.Ready = true
	}
	return r
}

// Commit waits until every required and interactive subjob has fully
// checked in, then releases all barriers with the committed configuration.
// Edits remain possible while Commit blocks (that is what makes the
// transaction interactive). A zero timeout waits indefinitely; on timeout
// Commit returns ErrCommitTimeout or, if failed subjobs were never edited
// out, ErrSubjobNotReady.
func (j *Job) Commit(timeout time.Duration) (Config, error) {
	deadline := j.c.sim.Now() + timeout
	commitStart := j.c.sim.Now()
	finish := func(outcome string) {
		j.c.tracer().SpanCtx(j.ctx.Child("commit"), "duroc", "commit", j.c.host.Name(), j.id, "", commitStart,
			trace.Arg{Key: "outcome", Val: outcome})
		j.c.counters().Add(trace.Key("duroc", "commit", outcome, j.c.host.Name()), 1)
	}
	j.mu.Lock()
	j.committing = true
	j.mu.Unlock()
	for {
		j.mu.Lock()
		if j.terminated {
			reason := j.termReason
			j.mu.Unlock()
			finish("aborted")
			return Config{}, fmt.Errorf("%w: %s", ErrAborted, reason)
		}
		if j.released {
			cfg := j.config
			j.mu.Unlock()
			finish("ok")
			return cfg, nil
		}
		r := j.readinessLocked()
		if r.Ready {
			cfg := j.releaseLocked()
			j.mu.Unlock()
			j.emit(EvCommitted, nil, "")
			j.superviseReleased()
			finish("ok")
			return cfg, nil
		}
		j.mu.Unlock()
		if timeout == 0 {
			j.signal.Recv()
			continue
		}
		remaining := deadline - j.c.sim.Now()
		if remaining <= 0 {
			if r := j.Readiness(); len(r.Failed) > 0 {
				finish("not-ready")
				return Config{}, fmt.Errorf("%w: failed subjobs %v", ErrSubjobNotReady, r.Failed)
			}
			finish("timeout")
			return Config{}, ErrCommitTimeout
		}
		j.signal.RecvTimeout(remaining)
	}
}

// releaseLocked computes the committed configuration and releases every
// waiting process. Caller holds j.mu.
func (j *Job) releaseLocked() Config {
	now := j.c.sim.Now()
	cfg := Config{}
	var committed []*subjob
	for _, sj := range j.subjobs {
		// Fully checked-in subjobs of any type join the static
		// configuration; partially arrived optional subjobs become late
		// joiners below.
		if sj.status == SJCheckedIn {
			committed = append(committed, sj)
		}
	}
	for _, sj := range committed {
		cfg.NSubjobs++
		cfg.SubjobSizes = append(cfg.SubjobSizes, sj.spec.Count)
		cfg.SubjobLabels = append(cfg.SubjobLabels, sj.spec.Label)
		cfg.WorldSize += sj.spec.Count
	}
	cfg.AddressBook = make([]string, 0, cfg.WorldSize)
	for _, sj := range committed {
		ranks := make([]*procCheckin, 0, len(sj.checkins))
		for _, ci := range sj.checkins {
			ranks = append(ranks, ci)
		}
		sort.Slice(ranks, func(a, b int) bool { return ranks[a].rank < ranks[b].rank })
		for _, ci := range ranks {
			cfg.AddressBook = append(cfg.AddressBook, ci.addr)
		}
	}
	j.config = cfg
	j.released = true
	j.releaseAt = now
	j.c.tracer().InstantCtx(j.ctx, "duroc", "release", j.c.host.Name(), j.id, "",
		trace.Arg{Key: "world", Val: strconv.Itoa(cfg.WorldSize)},
		trace.Arg{Key: "subjobs", Val: strconv.Itoa(cfg.NSubjobs)})
	j.c.counters().Add(trace.Key("duroc", "barrier", "release", j.c.host.Name()), 1)

	for idx, sj := range committed {
		for _, ci := range sj.checkins {
			reply := checkinReply{Proceed: true, Config: cfg}
			reply.Config.MySubjob = idx
			reply.Config.MyRank = cfg.RankOf(idx, ci.rank)
			ci.reply.TrySend(reply)
			j.waits = append(j.waits, now-ci.at)
		}
		sj.status = SJReleased
		j.c.record(sj.ctx, sj.spec.Label, "barrier", sj.checkedInAt, now)
	}
	// Optional subjobs with partial check-ins become late joiners.
	for _, sj := range j.subjobs {
		if sj.spec.Type == Optional && !sj.status.terminal() && sj.status != SJReleased {
			for _, ci := range sj.checkins {
				reply := checkinReply{Proceed: true, Config: cfg}
				reply.Config.MySubjob = -1
				reply.Config.MyRank = -1
				ci.reply.TrySend(reply)
			}
		}
	}
	return cfg
}
