package core_test

import (
	"testing"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
)

// These tests interleave grid.RestartMachine with in-flight 2PC commits.
// A restart severs the network but keeps the LRM's job table, so the
// same job can be observed failing over the dead connection AND
// cancelled over the fresh one — the classic double-free window. Batch
// machines meter processors, so any double count shows up directly in
// FreeProcessors.

// restartRig is a two-batch-machine grid with the standard barrier app.
func restartRig(t *testing.T) (*grid.Grid, *core.Controller) {
	t.Helper()
	g := grid.New(grid.Options{})
	g.AddMachine("b1", 8, lrm.Batch)
	g.AddMachine("b2", 8, lrm.Batch)
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(time.Second, time.Second)
	})
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return g, ctrl
}

// waitAllCheckedIn polls until every subjob has voted, i.e. the
// reservation phase of the 2PC is complete on both machines.
func waitAllCheckedIn(g *grid.Grid, job *core.Job) bool {
	for i := 0; i < 3000; i++ {
		all := true
		for _, si := range job.Status() {
			if si.Status != core.SJCheckedIn {
				all = false
			}
		}
		if all {
			return true
		}
		g.Sim.Sleep(100 * time.Millisecond)
	}
	return false
}

// assertAccounting checks the no-double-count postcondition: once the
// grid quiesces, every batch machine must have exactly its full
// processor complement free — neither fewer (leak) nor the impossible
// more (double free) — and no live jobs in any LRM table.
func assertAccounting(t *testing.T, g *grid.Grid) {
	t.Helper()
	for _, name := range []string{"b1", "b2"} {
		m := g.Machine(name)
		if free, total := m.FreeProcessors(), m.Processors(); free != total {
			t.Errorf("%s: %d/%d processors free after quiescence", name, free, total)
		}
		if live := m.LiveJobs(); live != 0 {
			t.Errorf("%s: %d live LRM jobs after quiescence", name, live)
		}
	}
}

// proveExactCapacity submits a machine-filling job to b1 and commits it.
// It can only succeed if exactly 8 processors are free: a leak starves
// it, a double free would have tripped assertAccounting before the call.
func proveExactCapacity(t *testing.T, g *grid.Grid, ctrl *core.Controller) {
	job, err := ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{{
		Contact:    g.Contact("b1"),
		Count:      8,
		Executable: "app",
		Type:       core.Required,
		Label:      "fill",
	}}})
	if err != nil {
		t.Errorf("full-capacity Submit after restart: %v", err)
		return
	}
	if _, err := job.Commit(5 * time.Minute); err != nil {
		t.Errorf("full-capacity Commit after restart: %v", err)
		return
	}
	if free := g.Machine("b1").FreeProcessors(); free != 0 {
		t.Errorf("b1: %d processors free while a full-machine job runs, want 0", free)
	}
	if !job.Done().WaitTimeout(10 * time.Minute) {
		t.Error("full-capacity job never completed")
	}
}

// TestRestartMachineBetweenReserveAndCommit crashes and restarts b1
// after both subjobs check in but before the agent issues the commit.
// The severed callback connections fail the b1 subjob (required, so the
// whole job aborts), while the restarted gatekeeper accepts the
// controller's cancel for the same LRM job. The processors must be
// released exactly once.
func TestRestartMachineBetweenReserveAndCommit(t *testing.T) {
	g, ctrl := restartRig(t)
	err := g.Sim.Run("agent", func() {
		job, err := ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			{Contact: g.Contact("b1"), Count: 4, Executable: "app", Type: core.Required, Label: "b1"},
			{Contact: g.Contact("b2"), Count: 4, Executable: "app", Type: core.Required, Label: "b2"},
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if !waitAllCheckedIn(g, job) {
			t.Error("subjobs never checked in")
			return
		}
		// Reservation complete, commit not yet issued: bounce the machine.
		g.Net.Host("b1").Crash()
		g.Sim.Sleep(time.Second)
		g.RestartMachine("b1")

		// The commit may fail (required subjob lost its callbacks) or
		// succeed (votes were already recorded); either way the job must
		// settle and the accounting must balance.
		if _, err := job.Commit(5 * time.Minute); err != nil {
			if !job.Done().WaitTimeout(15 * time.Minute) {
				t.Error("aborted job never settled")
				return
			}
		} else if !job.Done().WaitTimeout(15 * time.Minute) {
			t.Error("committed job never completed")
			return
		}
		g.Sim.Sleep(2 * time.Minute) // let cancels and process exits drain
		assertAccounting(t, g)
		proveExactCapacity(t, g, ctrl)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	assertAccounting(t, g)
}

// TestRestartMachineDuringCommitWait bounces b1 while the agent is
// blocked inside Commit — the restart lands between the controller's
// readiness check and the release fan-out.
func TestRestartMachineDuringCommitWait(t *testing.T) {
	g, ctrl := restartRig(t)
	err := g.Sim.Run("agent", func() {
		job, err := ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			{Contact: g.Contact("b1"), Count: 4, Executable: "app", Type: core.Required, Label: "b1"},
			{Contact: g.Contact("b2"), Count: 4, Executable: "app", Type: core.Required, Label: "b2"},
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		g.Sim.Go("bouncer", func() {
			if !waitAllCheckedIn(g, job) {
				return // commit already settled the job
			}
			g.Net.Host("b1").Crash()
			g.Sim.Sleep(time.Second)
			g.RestartMachine("b1")
		})
		// Commit races the bounce; both outcomes are legal, the
		// accounting afterwards is not negotiable.
		if _, err := job.Commit(5 * time.Minute); err != nil {
			if !job.Done().WaitTimeout(15 * time.Minute) {
				t.Error("aborted job never settled")
				return
			}
		} else if !job.Done().WaitTimeout(15 * time.Minute) {
			t.Error("committed job never completed")
			return
		}
		g.Sim.Sleep(2 * time.Minute)
		assertAccounting(t, g)
		proveExactCapacity(t, g, ctrl)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	assertAccounting(t, g)
}
