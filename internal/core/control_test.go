package core_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
)

func TestCollectiveSuspendResume(t *testing.T) {
	g := grid.New(grid.Options{})
	for _, name := range []string{"m1", "m2"} {
		g.AddMachine(name, 16, lrm.Fork)
	}
	var mu sync.Mutex
	var finished []time.Duration
	g.RegisterEverywhere("tensec", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		if err := p.Work(10*time.Second, time.Second); err != nil {
			return err
		}
		mu.Lock()
		finished = append(finished, p.Sim().Now())
		mu.Unlock()
		return nil
	})
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred, Registry: g.Registry,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	err = g.Sim.Run("agent", func() {
		job, err := ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			{Label: "m1", Contact: g.Contact("m1"), Count: 2, Executable: "tensec", Type: core.Required},
			{Label: "m2", Contact: g.Contact("m2"), Count: 2, Executable: "tensec", Type: core.Required},
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if err := job.Suspend(); !errors.Is(err, core.ErrNotCommitted) {
			t.Errorf("Suspend before commit = %v, want ErrNotCommitted", err)
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		committedAt := g.Sim.Now()
		g.Sim.Sleep(2 * time.Second)
		if err := job.Suspend(); err != nil {
			t.Errorf("collective Suspend: %v", err)
			return
		}
		g.Sim.Sleep(30 * time.Second)
		if err := job.Resume(); err != nil {
			t.Errorf("collective Resume: %v", err)
			return
		}
		job.Done().Wait()
		// ~10s of work stretched by a 30s suspension on both machines.
		elapsed := g.Sim.Now() - committedAt
		if elapsed < 38*time.Second || elapsed > 44*time.Second {
			t.Errorf("computation took %v after commit, want ~40s", elapsed)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(finished) != 4 {
		t.Fatalf("%d processes finished, want 4", len(finished))
	}
}

func TestParallelSubmissionAblation(t *testing.T) {
	// The sequential pipeline costs T1 + k(M-1); parallel submission is
	// nearly flat in the subjob count. This validates the ablation switch
	// used by the experiments.
	run := func(parallel bool, subjobs int) time.Duration {
		g := grid.New(grid.Options{})
		g.AddMachine("origin", 64, lrm.Fork)
		g.RegisterEverywhere("app", func(p *lrm.Proc) error {
			rt, err := core.Attach(p)
			if err != nil {
				return err
			}
			defer rt.Close()
			if _, err := rt.Barrier(true, "", 0); err != nil {
				return nil
			}
			return nil
		})
		ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
			Credential:         g.UserCred,
			Registry:           g.Registry,
			ParallelSubmission: parallel,
		})
		if err != nil {
			t.Fatalf("NewController: %v", err)
		}
		var req core.Request
		for i := 0; i < subjobs; i++ {
			req.Subjobs = append(req.Subjobs, core.SubjobSpec{
				Contact: g.Contact("origin"), Count: 64 / subjobs,
				Executable: "app", Type: core.Required,
			})
		}
		var elapsed time.Duration
		err = g.Sim.Run("agent", func() {
			job, err := ctrl.Submit(req)
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			if _, err := job.Commit(0); err != nil {
				t.Errorf("Commit: %v", err)
				return
			}
			elapsed = g.Sim.Now()
			job.Done().Wait()
		})
		if err != nil {
			t.Fatalf("sim: %v", err)
		}
		return elapsed
	}
	seq1, seq8 := run(false, 1), run(false, 8)
	par1, par8 := run(true, 1), run(true, 8)
	if seq8 <= seq1+6*time.Second {
		t.Errorf("sequential 8 subjobs %v not ~7 pipeline steps beyond 1 subjob %v", seq8, seq1)
	}
	if par8 > par1+time.Second {
		t.Errorf("parallel submission not flat: 1 subjob %v, 8 subjobs %v", par1, par8)
	}
	if par8 >= seq8/2 {
		t.Errorf("parallel (%v) should be far below sequential (%v) at 8 subjobs", par8, seq8)
	}
}

func TestControllerCloseAbortsLiveJobs(t *testing.T) {
	rig := newRig(t, "m1")
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		rig.g.Sim.Sleep(500 * time.Millisecond) // mid-submission
		rig.ctrl.Close()
		job.Done().Wait()
		if job.Err() == "" {
			t.Error("job survived controller close")
		}
		if _, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
		}}); err != nil {
			// Submission still constructs a job; its barrier can never be
			// reached, but Submit itself is not required to fail. Either
			// behaviour is acceptable; just don't crash.
			_ = err
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCommitTwiceReturnsSameConfig(t *testing.T) {
	rig := newRig(t, "m1")
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		cfg1, err := job.Commit(0)
		if err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		cfg2, err := job.Commit(0)
		if err != nil {
			t.Errorf("second Commit: %v", err)
			return
		}
		if cfg1.WorldSize != cfg2.WorldSize || cfg1.NSubjobs != cfg2.NSubjobs {
			t.Errorf("configs differ: %+v vs %+v", cfg1, cfg2)
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSubstituteAutoLabel(t *testing.T) {
	rig := newRig(t, "m1", "bad", "spare")
	rig.g.Machine("bad").SetDown(true)
	err := rig.g.Sim.Run("agent", func() {
		job, err := rig.ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			rig.spec("m1", 2, core.Required),
			rig.spec("bad", 2, core.Interactive),
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		for {
			ev, ok := job.Events().Recv()
			if !ok {
				return
			}
			if ev.Kind == core.EvSubjobFailed {
				// Empty label: the controller must generate one.
				spec := rig.spec("spare", 2, core.Interactive)
				spec.Label = ""
				if err := job.Substitute("bad", spec); err != nil {
					t.Errorf("Substitute: %v", err)
				}
				break
			}
		}
		cfg, err := job.Commit(0)
		if err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		if cfg.WorldSize != 4 {
			t.Errorf("world size = %d", cfg.WorldSize)
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
