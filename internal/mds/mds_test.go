package mds_test

import (
	"sync"
	"testing"
	"time"

	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/transport"
)

func setup(t *testing.T) (*grid.Grid, transport.Addr) {
	t.Helper()
	g := grid.New(grid.Options{})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return g, transport.Addr{Host: "mds0", Service: mds.ServiceName}
}

func TestRegisterAndQuery(t *testing.T) {
	g, dir := setup(t)
	err := g.Sim.Run("main", func() {
		c, err := mds.Dial(g.Workstation, dir)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		for _, rec := range []mds.Record{
			{Name: "sp2", Contact: "sp2:gram", Processors: 128, Mode: "batch", FreeProcessors: 0},
			{Name: "origin", Contact: "origin:gram", Processors: 64, Mode: "fork", FreeProcessors: 64},
			{Name: "cluster", Contact: "cluster:gram", Processors: 16, Mode: "batch", FreeProcessors: 8},
		} {
			if err := c.Register(rec); err != nil {
				t.Errorf("Register %s: %v", rec.Name, err)
			}
		}
		all, err := c.Query(mds.Filter{})
		if err != nil || len(all) != 3 {
			t.Errorf("Query all = %d records, %v", len(all), err)
		}
		big, err := c.Query(mds.Filter{MinProcessors: 64})
		if err != nil || len(big) != 2 {
			t.Errorf("Query min 64 = %v, %v", big, err)
		}
		batch, err := c.Query(mds.Filter{Mode: "batch"})
		if err != nil || len(batch) != 2 {
			t.Errorf("Query batch = %v, %v", batch, err)
		}
		free, err := c.Query(mds.Filter{MinFree: 8})
		if err != nil || len(free) != 2 {
			t.Errorf("Query free = %v, %v", free, err)
		}
		if err := c.Unregister("sp2"); err != nil {
			t.Errorf("Unregister: %v", err)
		}
		after, _ := c.Query(mds.Filter{})
		if len(after) != 2 {
			t.Errorf("after unregister: %d records", len(after))
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRecordsExpire(t *testing.T) {
	g, dir := setup(t)
	err := g.Sim.Run("main", func() {
		c, err := mds.Dial(g.Workstation, dir)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		c.Register(mds.Record{Name: "stale", Processors: 8})
		g.Sim.Sleep(2 * time.Minute)
		c.Register(mds.Record{Name: "fresh", Processors: 8})
		g.Sim.Sleep(4 * time.Minute) // stale now 6m old, fresh 4m; TTL 5m
		recs, err := c.Query(mds.Filter{})
		if err != nil || len(recs) != 1 || recs[0].Name != "fresh" {
			t.Errorf("Query = %v, %v; want only fresh", recs, err)
		}
		// An explicit shorter MaxAge excludes fresh too.
		recs, _ = c.Query(mds.Filter{MaxAge: time.Minute})
		if len(recs) != 0 {
			t.Errorf("MaxAge 1m returned %v", recs)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// TestTTLExpiryRacesConcurrentPublishes drives TTL expiry against
// concurrent re-registrations and refreshing readers (run under -race by
// the check gate): a fast publisher republishes well inside the TTL, a
// slow one republishes at an interval longer than the TTL so its record
// flaps in and out of visibility, while two query clients poll
// throughout. The TTL invariant must hold at every observation — no query
// ever returns a record older than the TTL — and both visibility states
// of the slow record must actually occur.
func TestTTLExpiryRacesConcurrentPublishes(t *testing.T) {
	const ttl = 50 * time.Second
	g := grid.New(grid.Options{})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, ttl); err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}

	type observation struct {
		at    time.Duration
		names map[string]time.Duration // name -> record age at query time
	}
	var mu sync.Mutex
	var obs []observation

	const horizon = 5 * time.Minute
	publisher := func(host *transport.Host, name string, interval time.Duration) {
		g.Sim.GoDaemon("pub:"+name, func() {
			for g.Sim.Now() < horizon {
				c, err := mds.Dial(host, dir)
				if err == nil {
					c.Register(mds.Record{Name: name, Contact: name + ":gram", Processors: 8})
					c.Close()
				}
				g.Sim.Sleep(interval)
			}
		})
	}
	querier := func(host *transport.Host, every time.Duration) {
		g.Sim.GoDaemon("query:"+host.Name(), func() {
			for g.Sim.Now() < horizon {
				g.Sim.Sleep(every)
				c, err := mds.Dial(host, dir)
				if err != nil {
					continue
				}
				recs, err := c.Query(mds.Filter{})
				c.Close()
				if err != nil {
					continue
				}
				o := observation{at: g.Sim.Now(), names: map[string]time.Duration{}}
				for _, rec := range recs {
					o.names[rec.Name] = g.Sim.Now() - rec.UpdatedAt
				}
				mu.Lock()
				obs = append(obs, o)
				mu.Unlock()
			}
		})
	}

	err := g.Sim.Run("main", func() {
		publisher(g.Net.AddHost("pub-fast"), "fast", 20*time.Second)
		publisher(g.Net.AddHost("pub-slow"), "slow", 80*time.Second) // > TTL: flaps
		querier(g.Net.AddHost("q1"), 7*time.Second)
		querier(g.Net.AddHost("q2"), 11*time.Second)
		g.Sim.SleepUntil(horizon + time.Second)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(obs) < 20 {
		t.Fatalf("only %d observations", len(obs))
	}
	slowSeen, slowMissing := false, false
	for _, o := range obs {
		for name, age := range o.names {
			// The RPC takes a couple of network hops, so allow the
			// record to age marginally past the TTL in transit.
			if age > ttl+time.Second {
				t.Errorf("t=%v: query returned %s aged %v, past TTL %v", o.at, name, age, ttl)
			}
		}
		if o.at > 30*time.Second { // fast publisher established by then
			if _, ok := o.names["fast"]; !ok {
				t.Errorf("t=%v: fast record missing (republishes every 20s)", o.at)
			}
		}
		if _, ok := o.names["slow"]; ok {
			slowSeen = true
		} else if o.at > time.Second {
			slowMissing = true
		}
	}
	if !slowSeen || !slowMissing {
		t.Errorf("slow record should flap: seen=%v missing=%v over %d observations",
			slowSeen, slowMissing, len(obs))
	}
}

func TestRegisterWithoutNameRejected(t *testing.T) {
	g, dir := setup(t)
	err := g.Sim.Run("main", func() {
		c, err := mds.Dial(g.Workstation, dir)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		if err := c.Register(mds.Record{Processors: 4}); err == nil {
			t.Error("nameless record accepted")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRecordForAndPublish(t *testing.T) {
	g, dir := setup(t)
	m := g.AddMachine("batch1", 32, lrm.Batch)
	m.RegisterExecutable("work", func(p *lrm.Proc) error {
		return p.Work(time.Hour, time.Second)
	})
	err := g.Sim.Run("main", func() {
		if _, err := m.Submit(lrm.JobSpec{Executable: "work", Count: 32, TimeLimit: 2 * time.Hour}); err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		rec := mds.RecordFor(m, g.Contact("batch1"), 1, 32)
		if rec.Name != "batch1" || rec.Processors != 32 || rec.RunningJobs != 1 {
			t.Errorf("RecordFor = %+v", rec)
		}
		if rec.ForecastWait[32] <= 0 {
			t.Errorf("forecast for 32 procs = %v, want positive (machine full)", rec.ForecastWait[32])
		}
		stop := mds.Publish(m, dir, g.Contact("batch1"), 30*time.Second, 32)
		g.Sim.Sleep(time.Minute)
		c, err := mds.Dial(g.Workstation, dir)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		recs, err := c.Query(mds.Filter{})
		if err != nil || len(recs) != 1 {
			t.Errorf("Query after publish = %v, %v", recs, err)
			return
		}
		if recs[0].Name != "batch1" || recs[0].ForecastWait[32] <= 0 {
			t.Errorf("published record = %+v", recs[0])
		}
		stop()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
