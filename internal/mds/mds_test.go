package mds_test

import (
	"testing"
	"time"

	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/transport"
)

func setup(t *testing.T) (*grid.Grid, transport.Addr) {
	t.Helper()
	g := grid.New(grid.Options{})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return g, transport.Addr{Host: "mds0", Service: mds.ServiceName}
}

func TestRegisterAndQuery(t *testing.T) {
	g, dir := setup(t)
	err := g.Sim.Run("main", func() {
		c, err := mds.Dial(g.Workstation, dir)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		for _, rec := range []mds.Record{
			{Name: "sp2", Contact: "sp2:gram", Processors: 128, Mode: "batch", FreeProcessors: 0},
			{Name: "origin", Contact: "origin:gram", Processors: 64, Mode: "fork", FreeProcessors: 64},
			{Name: "cluster", Contact: "cluster:gram", Processors: 16, Mode: "batch", FreeProcessors: 8},
		} {
			if err := c.Register(rec); err != nil {
				t.Errorf("Register %s: %v", rec.Name, err)
			}
		}
		all, err := c.Query(mds.Filter{})
		if err != nil || len(all) != 3 {
			t.Errorf("Query all = %d records, %v", len(all), err)
		}
		big, err := c.Query(mds.Filter{MinProcessors: 64})
		if err != nil || len(big) != 2 {
			t.Errorf("Query min 64 = %v, %v", big, err)
		}
		batch, err := c.Query(mds.Filter{Mode: "batch"})
		if err != nil || len(batch) != 2 {
			t.Errorf("Query batch = %v, %v", batch, err)
		}
		free, err := c.Query(mds.Filter{MinFree: 8})
		if err != nil || len(free) != 2 {
			t.Errorf("Query free = %v, %v", free, err)
		}
		if err := c.Unregister("sp2"); err != nil {
			t.Errorf("Unregister: %v", err)
		}
		after, _ := c.Query(mds.Filter{})
		if len(after) != 2 {
			t.Errorf("after unregister: %d records", len(after))
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRecordsExpire(t *testing.T) {
	g, dir := setup(t)
	err := g.Sim.Run("main", func() {
		c, err := mds.Dial(g.Workstation, dir)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		c.Register(mds.Record{Name: "stale", Processors: 8})
		g.Sim.Sleep(2 * time.Minute)
		c.Register(mds.Record{Name: "fresh", Processors: 8})
		g.Sim.Sleep(4 * time.Minute) // stale now 6m old, fresh 4m; TTL 5m
		recs, err := c.Query(mds.Filter{})
		if err != nil || len(recs) != 1 || recs[0].Name != "fresh" {
			t.Errorf("Query = %v, %v; want only fresh", recs, err)
		}
		// An explicit shorter MaxAge excludes fresh too.
		recs, _ = c.Query(mds.Filter{MaxAge: time.Minute})
		if len(recs) != 0 {
			t.Errorf("MaxAge 1m returned %v", recs)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRegisterWithoutNameRejected(t *testing.T) {
	g, dir := setup(t)
	err := g.Sim.Run("main", func() {
		c, err := mds.Dial(g.Workstation, dir)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		if err := c.Register(mds.Record{Processors: 4}); err == nil {
			t.Error("nameless record accepted")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRecordForAndPublish(t *testing.T) {
	g, dir := setup(t)
	m := g.AddMachine("batch1", 32, lrm.Batch)
	m.RegisterExecutable("work", func(p *lrm.Proc) error {
		return p.Work(time.Hour, time.Second)
	})
	err := g.Sim.Run("main", func() {
		if _, err := m.Submit(lrm.JobSpec{Executable: "work", Count: 32, TimeLimit: 2 * time.Hour}); err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		rec := mds.RecordFor(m, g.Contact("batch1"), 1, 32)
		if rec.Name != "batch1" || rec.Processors != 32 || rec.RunningJobs != 1 {
			t.Errorf("RecordFor = %+v", rec)
		}
		if rec.ForecastWait[32] <= 0 {
			t.Errorf("forecast for 32 procs = %v, want positive (machine full)", rec.ForecastWait[32])
		}
		stop := mds.Publish(m, dir, g.Contact("batch1"), 30*time.Second, 32)
		g.Sim.Sleep(time.Minute)
		c, err := mds.Dial(g.Workstation, dir)
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		recs, err := c.Query(mds.Filter{})
		if err != nil || len(recs) != 1 {
			t.Errorf("Query after publish = %v, %v", recs, err)
			return
		}
		if recs[0].Name != "batch1" || recs[0].ForecastWait[32] <= 0 {
			t.Errorf("published record = %+v", recs[0])
		}
		stop()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
