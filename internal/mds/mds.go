// Package mds simulates the Metacomputing Directory Service: the
// information component of the Globus resource management architecture.
//
// Resources publish records (machine size, scheduling mode, queue depth,
// and queue-wait forecasts) which co-allocation agents query to select
// candidate resources (Section 2.2). Records expire after a TTL: the
// staleness bound matching [14]'s observation that load information is
// only useful over a minimum validity period.
package mds

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"cogrid/internal/lrm"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// ServiceName is the transport service the directory listens on.
const ServiceName = "mds"

// DefaultTTL is how long a record stays valid without refresh.
const DefaultTTL = 5 * time.Minute

// Record describes one published resource.
type Record struct {
	Name           string `json:"name"`
	Contact        string `json:"contact"` // GRAM contact
	Processors     int    `json:"processors"`
	Mode           string `json:"mode"`
	FreeProcessors int    `json:"free_processors"`
	RunningJobs    int    `json:"running_jobs"`
	QueuedJobs     int    `json:"queued_jobs"`
	// ForecastWait maps process counts to the machine's published
	// queue-wait forecasts.
	ForecastWait map[int]time.Duration `json:"forecast_wait,omitempty"`
	UpdatedAt    time.Duration         `json:"updated_at"`
}

// Filter selects records in a query.
type Filter struct {
	// MinProcessors excludes machines smaller than this.
	MinProcessors int `json:"min_processors,omitempty"`
	// MinFree excludes machines with fewer free processors.
	MinFree int `json:"min_free,omitempty"`
	// Mode, if non-empty, selects fork or batch machines only.
	Mode string `json:"mode,omitempty"`
	// MaxAge excludes records older than this (0 = server TTL).
	MaxAge time.Duration `json:"max_age,omitempty"`
}

// Meta is one control-plane key/value published through the directory —
// how a federation leader makes its shard map discoverable by replicas
// that were not up when it was broadcast (Section 2.2's information
// service carrying co-allocator state, not just resource records). Meta
// entries do not expire: a control-plane document stays authoritative
// until replaced by a newer version.
type Meta struct {
	Key       string        `json:"key"`
	Value     string        `json:"value"`
	UpdatedAt time.Duration `json:"updated_at"`
}

// Server is a directory service.
type Server struct {
	sim *vtime.Sim
	ttl time.Duration

	mu      sync.Mutex
	records map[string]Record
	meta    map[string]Meta
}

// NewServer starts a directory on host with the given record TTL
// (DefaultTTL if zero).
func NewServer(host *transport.Host, ttl time.Duration) (*Server, error) {
	if ttl == 0 {
		ttl = DefaultTTL
	}
	s := &Server{
		sim:     host.Network().Sim(),
		ttl:     ttl,
		records: make(map[string]Record),
		meta:    make(map[string]Meta),
	}
	l, err := host.Listen(ServiceName)
	if err != nil {
		return nil, err
	}
	rpc.Serve(s.sim, l, rpc.HandlerFuncs{Call: s.handleCall}, nil)
	return s, nil
}

func (s *Server) handleCall(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
	switch method {
	case "register":
		var rec Record
		if err := rpc.Decode(body, &rec); err != nil {
			return nil, err
		}
		if rec.Name == "" {
			return nil, fmt.Errorf("mds: record without name")
		}
		rec.UpdatedAt = s.sim.Now()
		s.mu.Lock()
		s.records[rec.Name] = rec
		s.mu.Unlock()
		return nil, nil
	case "unregister":
		var args struct {
			Name string `json:"name"`
		}
		if err := rpc.Decode(body, &args); err != nil {
			return nil, err
		}
		s.mu.Lock()
		delete(s.records, args.Name)
		s.mu.Unlock()
		return nil, nil
	case "query":
		var f Filter
		if err := rpc.Decode(body, &f); err != nil {
			return nil, err
		}
		return s.query(f), nil
	case "putmeta":
		var m Meta
		if err := rpc.Decode(body, &m); err != nil {
			return nil, err
		}
		if m.Key == "" {
			return nil, fmt.Errorf("mds: meta without key")
		}
		m.UpdatedAt = s.sim.Now()
		s.mu.Lock()
		s.meta[m.Key] = m
		s.mu.Unlock()
		return nil, nil
	case "getmeta":
		var args struct {
			Key string `json:"key"`
		}
		if err := rpc.Decode(body, &args); err != nil {
			return nil, err
		}
		s.mu.Lock()
		m, ok := s.meta[args.Key]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("mds: no meta %q", args.Key)
		}
		return m, nil
	}
	return nil, fmt.Errorf("mds: unknown method %s", method)
}

func (s *Server) query(f Filter) []Record {
	maxAge := f.MaxAge
	if maxAge == 0 {
		maxAge = s.ttl
	}
	now := s.sim.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, rec := range s.records {
		if now-rec.UpdatedAt > maxAge {
			continue
		}
		if rec.Processors < f.MinProcessors {
			continue
		}
		if rec.FreeProcessors < f.MinFree {
			continue
		}
		if f.Mode != "" && rec.Mode != f.Mode {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Client queries and updates a directory.
type Client struct {
	rpcc *rpc.Client
}

// Dial connects to a directory service.
func Dial(from *transport.Host, dir transport.Addr) (*Client, error) {
	return DialCtx(from, dir, trace.Ctx{})
}

// DialCtx is Dial under a causal span context: the connection and every
// call on it parent beneath ctx in the request tree.
func DialCtx(from *transport.Host, dir transport.Addr, ctx trace.Ctx) (*Client, error) {
	conn, err := from.DialCtx(dir, ctx)
	if err != nil {
		return nil, fmt.Errorf("mds: dial: %w", err)
	}
	return &Client{rpcc: rpc.NewClient(from.Network().Sim(), conn)}, nil
}

// CallTimeout bounds directory calls.
const CallTimeout = time.Minute

// Register publishes or refreshes a record.
func (c *Client) Register(rec Record) error {
	return c.rpcc.Call("register", rec, nil, CallTimeout)
}

// Unregister removes a record by name.
func (c *Client) Unregister(name string) error {
	return c.rpcc.Call("unregister", struct {
		Name string `json:"name"`
	}{Name: name}, nil, CallTimeout)
}

// Query returns records matching the filter.
func (c *Client) Query(f Filter) ([]Record, error) {
	var out []Record
	err := c.rpcc.Call("query", f, &out, CallTimeout)
	return out, err
}

// PutMeta publishes a control-plane key/value document.
func (c *Client) PutMeta(key, value string) error {
	return c.rpcc.Call("putmeta", Meta{Key: key, Value: value}, nil, CallTimeout)
}

// GetMeta fetches a control-plane document; errors when absent.
func (c *Client) GetMeta(key string) (Meta, error) {
	var m Meta
	err := c.rpcc.Call("getmeta", struct {
		Key string `json:"key"`
	}{Key: key}, &m, CallTimeout)
	return m, err
}

// Close releases the connection.
func (c *Client) Close() { c.rpcc.Close() }

// RecordFor builds a directory record from a machine's current state,
// forecasting waits for the given process counts.
func RecordFor(m *lrm.Machine, contact transport.Addr, forecastCounts ...int) Record {
	info := m.QueueInfo()
	rec := Record{
		Name:           m.Name(),
		Contact:        contact.String(),
		Processors:     info.Processors,
		Mode:           m.Mode().String(),
		FreeProcessors: info.FreeProcessors,
		RunningJobs:    info.RunningJobs,
		QueuedJobs:     len(info.QueuedJobs),
	}
	if len(forecastCounts) > 0 {
		rec.ForecastWait = make(map[int]time.Duration, len(forecastCounts))
		for _, n := range forecastCounts {
			rec.ForecastWait[n] = m.EstimateWait(n)
		}
	}
	return rec
}

// Publish runs a daemon that republishes a machine's record every
// interval until the returned stop function is called. The publishing
// host dials the directory each round, as a GRAM reporter would.
func Publish(m *lrm.Machine, dir transport.Addr, contact transport.Addr, interval time.Duration, forecastCounts ...int) (stop func()) {
	sim := m.Host().Network().Sim()
	stopped := vtime.NewEvent(sim, "mds-publish-stop:"+m.Name())
	// The publisher is a daemon, not part of any client request: it roots
	// its own causal tree, with every round's traffic under one child span
	// (rounds are sequential, so their intervals merge cleanly).
	ctx := trace.NewRequest("mds-publish@" + m.Name()).Child("round")
	sim.GoDaemon("mds-publish:"+m.Name(), func() {
		for {
			client, err := DialCtx(m.Host(), dir, ctx)
			if err == nil {
				client.Register(RecordFor(m, contact, forecastCounts...))
				client.Close()
			}
			if stopped.WaitTimeout(interval) {
				return
			}
		}
	})
	return stopped.Set
}
