// Package reservation implements co-reservation: the extension the
// paper's Section 5 identifies as future work ("we are currently
// investigating ... how the co-allocation approaches presented in this
// paper can be applied to co-reservation as well as co-allocation",
// reference [13]).
//
// CoReserve negotiates a common start time across machines by iterating
// earliest-slot queries to a fixpoint, then books all reservations
// atomically (backing off and retrying on admission races). The result
// converts directly into a DUROC request whose subjobs are bound to the
// reservations, so the ordinary interactive-transaction machinery starts
// the application exactly when the window opens.
package reservation

import (
	"errors"
	"fmt"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/gram"
	"cogrid/internal/transport"
)

// Errors returned by co-reservation.
var (
	ErrNoCommonSlot = errors.New("reservation: no common slot found")
	ErrEmpty        = errors.New("reservation: no participants")
)

// Participant is one machine's share of a co-reservation.
type Participant struct {
	Contact transport.Addr
	Count   int
}

// Options configures CoReserve.
type Options struct {
	// Duration is the reserved window length.
	Duration time.Duration
	// Earliest is the earliest acceptable start (0 = now).
	Earliest time.Duration
	// MaxRounds bounds negotiation rounds (default 16).
	MaxRounds int
	// Backoff is added to the candidate time after a booking race
	// (default 1 minute).
	Backoff time.Duration
}

// CoReservation is a successfully negotiated set of reservations sharing
// one start time.
type CoReservation struct {
	Start        time.Duration
	End          time.Duration
	Participants []Participant
	Reservations []gram.Reservation

	clients []*gram.Client
}

// CoReserve negotiates and books a common window on every participant.
// The from host dials each machine with cfg credentials. On success the
// returned CoReservation holds open GRAM connections; release them with
// Cancel or Close.
func CoReserve(from *transport.Host, cfg gram.ClientConfig, parts []Participant, opts Options) (*CoReservation, error) {
	if len(parts) == 0 {
		return nil, ErrEmpty
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 16
	}
	if opts.Backoff == 0 {
		opts.Backoff = time.Minute
	}
	cr := &CoReservation{Participants: parts}
	for _, p := range parts {
		client, err := gram.Dial(from, p.Contact, cfg)
		if err != nil {
			cr.Close()
			return nil, fmt.Errorf("reservation: dial %s: %w", p.Contact, err)
		}
		cr.clients = append(cr.clients, client)
	}

	candidate := opts.Earliest
	for round := 0; round < opts.MaxRounds; round++ {
		// Fixpoint pass: raise the candidate until every machine can
		// honor it.
		stable := false
		for !stable {
			stable = true
			for i, p := range parts {
				slot, err := cr.clients[i].EarliestSlot(p.Count, opts.Duration, candidate)
				if err != nil {
					cr.Close()
					return nil, fmt.Errorf("reservation: earliest slot on %s: %w", p.Contact, err)
				}
				if slot > candidate {
					candidate = slot
					stable = false
				}
			}
		}
		// Booking pass: reserve everywhere; on a race, release and retry
		// later.
		booked := make([]gram.Reservation, 0, len(parts))
		ok := true
		for i, p := range parts {
			res, err := cr.clients[i].Reserve(p.Count, candidate, opts.Duration)
			if err != nil {
				ok = false
				break
			}
			booked = append(booked, res)
		}
		if ok {
			cr.Start = candidate
			cr.End = candidate + opts.Duration
			cr.Reservations = booked
			return cr, nil
		}
		for i, res := range booked {
			cr.clients[i].CancelReservation(res.ID)
		}
		candidate += opts.Backoff
	}
	cr.Close()
	return nil, fmt.Errorf("%w after %d rounds", ErrNoCommonSlot, opts.MaxRounds)
}

// Request builds a DUROC request that claims the co-reservation: one
// required subjob per participant, bound to its reservation, with a
// startup timeout covering the wait until the window opens (measured from
// now) plus slack.
func (cr *CoReservation) Request(executable string, now time.Duration, slack time.Duration) core.Request {
	if slack == 0 {
		slack = 5 * time.Minute
	}
	var req core.Request
	for i, p := range cr.Participants {
		req.Subjobs = append(req.Subjobs, core.SubjobSpec{
			Label:          fmt.Sprintf("res-%s-%d", p.Contact.Host, i),
			Contact:        p.Contact,
			Count:          p.Count,
			Executable:     executable,
			Type:           core.Required,
			ReservationID:  cr.Reservations[i].ID,
			StartupTimeout: cr.Start - now + slack,
		})
	}
	return req
}

// Cancel releases every reservation and closes the connections.
func (cr *CoReservation) Cancel() {
	for i, res := range cr.Reservations {
		if i < len(cr.clients) {
			cr.clients[i].CancelReservation(res.ID)
		}
	}
	cr.Reservations = nil
	cr.Close()
}

// Close releases the GRAM connections without touching the reservations.
func (cr *CoReservation) Close() {
	for _, c := range cr.clients {
		if c != nil {
			c.Close()
		}
	}
	cr.clients = nil
}
