package reservation_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/reservation"
)

func newRig(t *testing.T) (*grid.Grid, *core.Controller) {
	t.Helper()
	g := grid.New(grid.Options{})
	for _, name := range []string{"sp1", "sp2", "sp3"} {
		g.AddMachine(name, 64, lrm.Batch)
	}
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return g, ctrl
}

func parts(g *grid.Grid, count int, names ...string) []reservation.Participant {
	var out []reservation.Participant
	for _, n := range names {
		out = append(out, reservation.Participant{Contact: g.Contact(n), Count: count})
	}
	return out
}

func TestCoReserveOnIdleMachines(t *testing.T) {
	g, _ := newRig(t)
	err := g.Sim.Run("agent", func() {
		cr, err := reservation.CoReserve(g.Workstation, g.ClientConfig(),
			parts(g, 32, "sp1", "sp2", "sp3"),
			reservation.Options{Duration: time.Hour, Earliest: 10 * time.Minute})
		if err != nil {
			t.Errorf("CoReserve: %v", err)
			return
		}
		defer cr.Cancel()
		if cr.Start != 10*time.Minute {
			t.Errorf("start = %v, want 10m (idle machines)", cr.Start)
		}
		if len(cr.Reservations) != 3 {
			t.Errorf("%d reservations", len(cr.Reservations))
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCoReserveFindsCommonSlotAroundConflicts(t *testing.T) {
	g, _ := newRig(t)
	// sp2's whole machine is already reserved for [0, 2h): the common
	// slot must move past it.
	if _, err := g.Machine("sp2").Reserve(64, 0, 2*time.Hour); err != nil {
		t.Fatalf("pre-reserve: %v", err)
	}
	err := g.Sim.Run("agent", func() {
		cr, err := reservation.CoReserve(g.Workstation, g.ClientConfig(),
			parts(g, 48, "sp1", "sp2", "sp3"),
			reservation.Options{Duration: time.Hour})
		if err != nil {
			t.Errorf("CoReserve: %v", err)
			return
		}
		defer cr.Cancel()
		if cr.Start != 2*time.Hour {
			t.Errorf("start = %v, want 2h (after sp2's conflict)", cr.Start)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCoReserveEmptyParticipants(t *testing.T) {
	g, _ := newRig(t)
	err := g.Sim.Run("agent", func() {
		_, err := reservation.CoReserve(g.Workstation, g.ClientConfig(), nil, reservation.Options{Duration: time.Hour})
		if !errors.Is(err, reservation.ErrEmpty) {
			t.Errorf("CoReserve(nil) = %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCoReservationClaimedThroughDUROC(t *testing.T) {
	g, ctrl := newRig(t)
	var mu sync.Mutex
	var startTimes []time.Duration
	g.RegisterEverywhere("synced", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		mu.Lock()
		startTimes = append(startTimes, p.Sim().Now())
		mu.Unlock()
		return p.Work(time.Minute, time.Second)
	})
	err := g.Sim.Run("agent", func() {
		cr, err := reservation.CoReserve(g.Workstation, g.ClientConfig(),
			parts(g, 16, "sp1", "sp2"),
			reservation.Options{Duration: time.Hour, Earliest: 30 * time.Minute})
		if err != nil {
			t.Errorf("CoReserve: %v", err)
			return
		}
		req := cr.Request("synced", g.Sim.Now(), 10*time.Minute)
		job, err := ctrl.Submit(req)
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		cfg, err := job.Commit(0)
		if err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		if cfg.WorldSize != 32 {
			t.Errorf("world size = %d", cfg.WorldSize)
		}
		job.Done().Wait()
		if job.Err() != "" {
			t.Errorf("job error: %s", job.Err())
		}
		cr.Close()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(startTimes) != 32 {
		t.Fatalf("%d processes released, want 32", len(startTimes))
	}
	for _, at := range startTimes {
		// Processes launch at the window start (30m) and release after
		// startup + check-in, still well inside the window.
		if at < 30*time.Minute || at > 40*time.Minute {
			t.Errorf("process released at %v, outside the reserved window start", at)
		}
	}
}

func TestCoReserveDialFailureCleansUp(t *testing.T) {
	g, _ := newRig(t)
	g.Net.Host("sp2").Crash()
	err := g.Sim.Run("agent", func() {
		_, err := reservation.CoReserve(g.Workstation, g.ClientConfig(),
			parts(g, 16, "sp1", "sp2"),
			reservation.Options{Duration: time.Hour})
		if err == nil {
			t.Error("CoReserve with a crashed machine succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCoReserveOversizedRequestFails(t *testing.T) {
	g, _ := newRig(t)
	err := g.Sim.Run("agent", func() {
		_, err := reservation.CoReserve(g.Workstation, g.ClientConfig(),
			parts(g, 128, "sp1"), // machine has 64
			reservation.Options{Duration: time.Hour})
		if err == nil {
			t.Error("oversized co-reservation succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRequestDefaultsSlack(t *testing.T) {
	g, _ := newRig(t)
	err := g.Sim.Run("agent", func() {
		cr, err := reservation.CoReserve(g.Workstation, g.ClientConfig(),
			parts(g, 8, "sp1"),
			reservation.Options{Duration: time.Hour, Earliest: time.Hour})
		if err != nil {
			t.Errorf("CoReserve: %v", err)
			return
		}
		defer cr.Cancel()
		req := cr.Request("work", g.Sim.Now(), 0)
		if len(req.Subjobs) != 1 {
			t.Fatalf("subjobs = %d", len(req.Subjobs))
		}
		sj := req.Subjobs[0]
		if sj.ReservationID == "" || sj.Type != core.Required {
			t.Errorf("subjob = %+v", sj)
		}
		// Default slack (5m) on top of the remaining wait until the
		// window (negotiation already consumed a little simulated time).
		want := time.Hour + 5*time.Minute
		if sj.StartupTimeout > want || sj.StartupTimeout < want-time.Minute {
			t.Errorf("StartupTimeout = %v, want just under 1h5m", sj.StartupTimeout)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCancelReleasesReservations(t *testing.T) {
	g, _ := newRig(t)
	err := g.Sim.Run("agent", func() {
		cr, err := reservation.CoReserve(g.Workstation, g.ClientConfig(),
			parts(g, 64, "sp1"),
			reservation.Options{Duration: time.Hour, Earliest: time.Minute})
		if err != nil {
			t.Errorf("CoReserve: %v", err)
			return
		}
		cr.Cancel()
		// The slot must be free again.
		if len(g.Machine("sp1").Reservations()) != 0 {
			t.Errorf("reservations remain after Cancel: %v", g.Machine("sp1").Reservations())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
