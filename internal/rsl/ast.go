// Package rsl implements the Resource Specification Language used by GRAM
// and the co-allocators to describe resource requests.
//
// The dialect follows the Globus RSL the paper shows in Figure 1:
//
//	+(&(resourceManagerContact=RM1)(count=1)(executable=master)
//	   (subjobStartType=required))
//	  (&(resourceManagerContact=RM2)(count=4)(executable=worker)
//	   (subjobStartType=interactive))
//
// A specification is a relation (attribute op value), or a boolean
// combination: & (conjunction), | (disjunction), + (multirequest). Values
// are unquoted tokens, quoted strings, sequences, or $(VAR) substitution
// references resolved against bindings supplied at evaluation time.
// Attribute names are case-insensitive. (* ... *) comments are ignored.
package rsl

import (
	"fmt"
	"strings"
)

// Op is a relational operator.
type Op int

// Relational operators.
const (
	OpEq Op = iota
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// BoolOp combines specifications.
type BoolOp int

// Boolean combinators.
const (
	And   BoolOp = iota // &: all relations must hold
	Or                  // |: alternatives
	Multi               // +: multirequest, one child per subjob
)

func (b BoolOp) String() string {
	switch b {
	case And:
		return "&"
	case Or:
		return "|"
	case Multi:
		return "+"
	}
	return "?"
}

// Node is a parsed RSL specification.
type Node interface {
	fmt.Stringer
	node()
}

// Relation is attribute op value.
type Relation struct {
	Attribute string
	Op        Op
	Value     Value
}

func (*Relation) node() {}

func (r *Relation) String() string {
	return fmt.Sprintf("%s%s%s", r.Attribute, r.Op, r.Value)
}

// Boolean is a combinator over child specifications.
type Boolean struct {
	Op       BoolOp
	Children []Node
}

func (*Boolean) node() {}

func (b *Boolean) String() string {
	var sb strings.Builder
	sb.WriteString(b.Op.String())
	for _, c := range b.Children {
		sb.WriteByte('(')
		sb.WriteString(c.String())
		sb.WriteByte(')')
	}
	return sb.String()
}

// Value is an RSL value: a literal, a variable reference, or a sequence.
type Value interface {
	fmt.Stringer
	value()
}

// Literal is a string or numeric value.
type Literal string

func (Literal) value() {}

func (l Literal) String() string {
	// Quote unless every byte is part of the lexer's bare-token alphabet;
	// anything else (spaces, syntax characters, arbitrary bytes) must be
	// quoted to survive a round trip.
	s := string(l)
	// A leading '*' must be quoted too: the lexer rejects bare tokens
	// starting with '*' because "(*" opens a comment.
	if s == "" || s[0] == '*' {
		return quote(s)
	}
	for i := 0; i < len(s); i++ {
		if !isTokenChar(s[i]) {
			return quote(s)
		}
	}
	return s
}

// VarRef is a $(NAME) substitution reference.
type VarRef string

func (VarRef) value() {}

func (v VarRef) String() string { return "$(" + string(v) + ")" }

// Seq is a parenthesized sequence of values.
type Seq []Value

func (Seq) value() {}

func (s Seq) String() string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

func quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			sb.WriteString(`""`)
		} else {
			sb.WriteByte(s[i])
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// Format pretty-prints a node with one relation or child per line, as in
// the paper's Figure 1.
func Format(n Node) string {
	var sb strings.Builder
	format(&sb, n, 0)
	return sb.String()
}

func format(sb *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch v := n.(type) {
	case *Relation:
		sb.WriteString(indent)
		sb.WriteString(v.String())
	case *Boolean:
		sb.WriteString(indent)
		sb.WriteString(v.Op.String())
		onlyRelations := true
		for _, c := range v.Children {
			if _, ok := c.(*Relation); !ok {
				onlyRelations = false
				break
			}
		}
		if onlyRelations {
			for _, c := range v.Children {
				sb.WriteByte('(')
				sb.WriteString(c.String())
				sb.WriteByte(')')
			}
			return
		}
		for _, c := range v.Children {
			sb.WriteString("\n")
			sb.WriteString(indent)
			sb.WriteString("(")
			sb.WriteString("\n")
			format(sb, c, depth+1)
			sb.WriteString("\n")
			sb.WriteString(indent)
			sb.WriteString(")")
		}
	}
}
