package rsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Bindings supplies values for $(VAR) references.
type Bindings map[string]string

// Eval resolves a value against bindings, concatenating sequences with
// spaces. Unbound variables are an error.
func Eval(v Value, env Bindings) (string, error) {
	switch val := v.(type) {
	case Literal:
		return string(val), nil
	case VarRef:
		if env != nil {
			if s, ok := env[string(val)]; ok {
				return s, nil
			}
		}
		return "", fmt.Errorf("rsl: unbound variable $(%s)", string(val))
	case Seq:
		parts := make([]string, len(val))
		for i, item := range val {
			s, err := Eval(item, env)
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		return strings.Join(parts, " "), nil
	}
	return "", fmt.Errorf("rsl: unknown value type %T", v)
}

// Substitute returns a copy of n with every VarRef replaced by its binding.
// Unbound variables are an error.
func Substitute(n Node, env Bindings) (Node, error) {
	switch v := n.(type) {
	case *Relation:
		nv, err := substituteValue(v.Value, env)
		if err != nil {
			return nil, err
		}
		return &Relation{Attribute: v.Attribute, Op: v.Op, Value: nv}, nil
	case *Boolean:
		out := &Boolean{Op: v.Op, Children: make([]Node, len(v.Children))}
		for i, c := range v.Children {
			nc, err := Substitute(c, env)
			if err != nil {
				return nil, err
			}
			out.Children[i] = nc
		}
		return out, nil
	}
	return nil, fmt.Errorf("rsl: unknown node type %T", n)
}

func substituteValue(v Value, env Bindings) (Value, error) {
	switch val := v.(type) {
	case Literal:
		return val, nil
	case VarRef:
		s, err := Eval(val, env)
		if err != nil {
			return nil, err
		}
		return Literal(s), nil
	case Seq:
		out := make(Seq, len(val))
		for i, item := range val {
			ni, err := substituteValue(item, env)
			if err != nil {
				return nil, err
			}
			out[i] = ni
		}
		return out, nil
	}
	return nil, fmt.Errorf("rsl: unknown value type %T", v)
}

// Attributes flattens a conjunction (or single relation) into an
// attribute->value map for = relations, with attribute names lowercased.
// Nested conjunctions are flattened; other operators are skipped.
func Attributes(n Node) map[string]Value {
	out := make(map[string]Value)
	collect(n, out)
	return out
}

func collect(n Node, out map[string]Value) {
	switch v := n.(type) {
	case *Relation:
		if v.Op == OpEq {
			out[strings.ToLower(v.Attribute)] = v.Value
		}
	case *Boolean:
		if v.Op == And {
			for _, c := range v.Children {
				collect(c, out)
			}
		}
	}
}

// GetString extracts an = relation's value as a string. ok is false if the
// attribute is absent.
func GetString(n Node, attr string, env Bindings) (s string, ok bool, err error) {
	v, present := Attributes(n)[strings.ToLower(attr)]
	if !present {
		return "", false, nil
	}
	s, err = Eval(v, env)
	return s, true, err
}

// GetInt extracts an = relation's value as an int.
func GetInt(n Node, attr string, env Bindings) (i int, ok bool, err error) {
	s, ok, err := GetString(n, attr, env)
	if !ok || err != nil {
		return 0, ok, err
	}
	i, err = strconv.Atoi(s)
	if err != nil {
		return 0, true, fmt.Errorf("rsl: attribute %s: %w", attr, err)
	}
	return i, true, nil
}

// Subrequests splits a multirequest into its children. A bare conjunction
// or relation is treated as a single-subjob multirequest. A disjunction at
// the top level is an error here: the co-allocator resolves alternatives
// before submission.
func Subrequests(n Node) ([]Node, error) {
	if b, ok := n.(*Boolean); ok {
		switch b.Op {
		case Multi:
			return b.Children, nil
		case Or:
			return nil, fmt.Errorf("rsl: top-level disjunction has no direct subjob decomposition")
		}
	}
	return []Node{n}, nil
}

// Conj builds a conjunction from attribute=value pairs in the given order.
func Conj(pairs ...[2]string) *Boolean {
	b := &Boolean{Op: And}
	for _, p := range pairs {
		b.Children = append(b.Children, &Relation{Attribute: p[0], Op: OpEq, Value: Literal(p[1])})
	}
	return b
}

// MultiOf builds a multirequest from subjob specifications.
func MultiOf(children ...Node) *Boolean {
	return &Boolean{Op: Multi, Children: children}
}

// WithAttribute returns a copy of a conjunction with attr set to value,
// replacing an existing = relation for it if present.
func WithAttribute(n Node, attr, value string) (Node, error) {
	b, ok := n.(*Boolean)
	if !ok || b.Op != And {
		return nil, fmt.Errorf("rsl: WithAttribute requires a conjunction")
	}
	out := &Boolean{Op: And}
	replaced := false
	for _, c := range b.Children {
		if r, isRel := c.(*Relation); isRel && r.Op == OpEq && strings.EqualFold(r.Attribute, attr) {
			out.Children = append(out.Children, &Relation{Attribute: r.Attribute, Op: OpEq, Value: Literal(value)})
			replaced = true
			continue
		}
		out.Children = append(out.Children, c)
	}
	if !replaced {
		out.Children = append(out.Children, &Relation{Attribute: attr, Op: OpEq, Value: Literal(value)})
	}
	return out, nil
}
