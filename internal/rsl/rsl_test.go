package rsl

import (
	"strings"
	"testing"
	"testing/quick"
)

// figure1 is the paper's example co-allocation request.
const figure1 = `+(&(resourceManagerContact=RM1)
     (count=1)(executable=master)
     (subjobStartType=required))
   (&(resourceManagerContact=RM2)
     (count=4)(executable=worker)
     (subjobStartType=interactive))
   (&(resourceManagerContact=RM3)
     (count=4)(executable=worker)
     (subjobStartType=interactive))`

func TestParseFigure1(t *testing.T) {
	n, err := Parse(figure1)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	subs, err := Subrequests(n)
	if err != nil {
		t.Fatalf("Subrequests: %v", err)
	}
	if len(subs) != 3 {
		t.Fatalf("subjobs = %d, want 3", len(subs))
	}
	rm, ok, err := GetString(subs[0], "resourceManagerContact", nil)
	if err != nil || !ok || rm != "RM1" {
		t.Errorf("subjob 0 contact = %q,%t,%v; want RM1", rm, ok, err)
	}
	count, ok, err := GetInt(subs[1], "count", nil)
	if err != nil || !ok || count != 4 {
		t.Errorf("subjob 1 count = %d,%t,%v; want 4", count, ok, err)
	}
	st, _, _ := GetString(subs[2], "subjobStartType", nil)
	if st != "interactive" {
		t.Errorf("subjob 2 start type = %q, want interactive", st)
	}
}

func TestParseRelationOperators(t *testing.T) {
	cases := []struct {
		src string
		op  Op
	}{
		{"memory=64", OpEq},
		{"memory!=64", OpNeq},
		{"memory<64", OpLt},
		{"memory<=64", OpLe},
		{"memory>64", OpGt},
		{"memory>=64", OpGe},
	}
	for _, c := range cases {
		n, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		r, ok := n.(*Relation)
		if !ok {
			t.Errorf("Parse(%q) = %T, want *Relation", c.src, n)
			continue
		}
		if r.Op != c.op {
			t.Errorf("Parse(%q).Op = %v, want %v", c.src, r.Op, c.op)
		}
	}
}

func TestParseQuotedStringsAndEscapes(t *testing.T) {
	n, err := Parse(`&(executable="/bin/my app")(arguments="say ""hi""")`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	exe, _, _ := GetString(n, "executable", nil)
	if exe != "/bin/my app" {
		t.Errorf("executable = %q", exe)
	}
	args, _, _ := GetString(n, "arguments", nil)
	if args != `say "hi"` {
		t.Errorf("arguments = %q", args)
	}
}

func TestParseValueSequence(t *testing.T) {
	n, err := Parse(`&(arguments=(alpha beta "gamma delta"))`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	args, _, err := GetString(n, "arguments", nil)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if args != "alpha beta gamma delta" {
		t.Errorf("arguments = %q", args)
	}
}

func TestParseDisjunction(t *testing.T) {
	n, err := Parse(`|(&(count=32))(&(count=16))`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	b, ok := n.(*Boolean)
	if !ok || b.Op != Or || len(b.Children) != 2 {
		t.Fatalf("got %v", n)
	}
	if _, err := Subrequests(n); err == nil {
		t.Error("Subrequests on a disjunction did not fail")
	}
}

func TestParseComments(t *testing.T) {
	n, err := Parse(`&(* the executable *)(executable=master)(* processor count *)(count=8)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	count, _, _ := GetInt(n, "count", nil)
	if count != 8 {
		t.Errorf("count = %d, want 8", count)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"&",
		"&(count=1",
		"&(count=)",
		"&(=1)",
		"count!",
		`executable="unterminated`,
		"&(count=1)(count=2))",
		"&(count=1)junk",
		"$(X",
		"count=$()",
		"(*unterminated",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorHasOffset(t *testing.T) {
	_, err := Parse("&(count=1)(executable=)")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error = %T, want *SyntaxError", err)
	}
	if se.Pos != 22 {
		t.Errorf("Pos = %d, want 22", se.Pos)
	}
	if !strings.Contains(se.Error(), "offset 22") {
		t.Errorf("message %q lacks offset", se.Error())
	}
}

func TestAttributeNamesCaseInsensitive(t *testing.T) {
	n := MustParse(`&(ResourceManagerContact=rm1)(COUNT=2)`)
	rm, ok, _ := GetString(n, "resourcemanagercontact", nil)
	if !ok || rm != "rm1" {
		t.Errorf("lookup failed: %q %t", rm, ok)
	}
	count, ok, _ := GetInt(n, "Count", nil)
	if !ok || count != 2 {
		t.Errorf("count = %d %t", count, ok)
	}
}

func TestVariableSubstitution(t *testing.T) {
	n := MustParse(`&(executable=$(HOME))(count=4)`)
	env := Bindings{"HOME": "/home/grid"}
	exe, ok, err := GetString(n, "executable", env)
	if err != nil || !ok || exe != "/home/grid" {
		t.Errorf("executable = %q,%t,%v", exe, ok, err)
	}
	if _, _, err := GetString(n, "executable", nil); err == nil {
		t.Error("unbound variable evaluated without error")
	}
	sub, err := Substitute(n, env)
	if err != nil {
		t.Fatalf("Substitute: %v", err)
	}
	if strings.Contains(sub.String(), "$(") {
		t.Errorf("Substitute left a reference: %s", sub)
	}
}

func TestSubstituteUnboundFails(t *testing.T) {
	n := MustParse(`&(dir=$(NOPE))`)
	if _, err := Substitute(n, Bindings{}); err == nil {
		t.Error("Substitute with unbound variable succeeded")
	}
}

func TestGetIntRejectsNonNumeric(t *testing.T) {
	n := MustParse(`&(count=many)`)
	if _, _, err := GetInt(n, "count", nil); err == nil {
		t.Error("GetInt on non-numeric value succeeded")
	}
}

func TestGetAbsentAttribute(t *testing.T) {
	n := MustParse(`&(count=1)`)
	if _, ok, err := GetString(n, "executable", nil); ok || err != nil {
		t.Errorf("absent attribute: ok=%t err=%v", ok, err)
	}
}

func TestConjAndWithAttribute(t *testing.T) {
	n := Conj([2]string{"count", "4"}, [2]string{"executable", "worker"})
	got, _, _ := GetString(n, "executable", nil)
	if got != "worker" {
		t.Fatalf("executable = %q", got)
	}
	n2, err := WithAttribute(n, "count", "8")
	if err != nil {
		t.Fatalf("WithAttribute: %v", err)
	}
	c2, _, _ := GetInt(n2, "count", nil)
	if c2 != 8 {
		t.Errorf("replaced count = %d, want 8", c2)
	}
	c1, _, _ := GetInt(n, "count", nil)
	if c1 != 4 {
		t.Errorf("original mutated: count = %d, want 4", c1)
	}
	n3, err := WithAttribute(n, "jobType", "mpi")
	if err != nil {
		t.Fatalf("WithAttribute add: %v", err)
	}
	jt, ok, _ := GetString(n3, "jobType", nil)
	if !ok || jt != "mpi" {
		t.Errorf("added attribute = %q,%t", jt, ok)
	}
}

func TestSubrequestsOnBareConjunction(t *testing.T) {
	n := MustParse(`&(count=1)`)
	subs, err := Subrequests(n)
	if err != nil || len(subs) != 1 {
		t.Fatalf("Subrequests = %v, %v", subs, err)
	}
}

func TestRoundTripFigure1(t *testing.T) {
	n := MustParse(figure1)
	reparsed, err := Parse(n.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !Equal(n, reparsed) {
		t.Fatalf("round trip changed structure:\n%s\nvs\n%s", n, reparsed)
	}
}

func TestFormatIsReparseable(t *testing.T) {
	n := MustParse(figure1)
	pretty := Format(n)
	reparsed, err := Parse(pretty)
	if err != nil {
		t.Fatalf("reparse of Format output: %v\n%s", err, pretty)
	}
	if !Equal(n, reparsed) {
		t.Fatal("Format output parses to a different tree")
	}
}

// Property: printing any literal value and reparsing it yields the same
// string, whatever bytes it contains — quoting must cover everything the
// bare-token alphabet does not.
func TestLiteralQuotingRoundTripProperty(t *testing.T) {
	f := func(raw string) bool {
		src := "&(attr=" + Literal(raw).String() + ")"
		n, err := Parse(src)
		if err != nil {
			return false
		}
		got, ok, err := GetString(n, "attr", nil)
		return err == nil && ok && got == raw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: String() output of a generated tree reparses to an Equal tree.
func TestTreeRoundTripProperty(t *testing.T) {
	attrs := []string{"count", "executable", "maxTime", "queue", "jobType"}
	vals := []Value{Literal("4"), Literal("a b"), VarRef("HOME"), Seq{Literal("x"), Literal("y z")}}
	f := func(shape []uint8) bool {
		b := &Boolean{Op: And}
		for i, s := range shape {
			if i >= 12 {
				break
			}
			b.Children = append(b.Children, &Relation{
				Attribute: attrs[int(s)%len(attrs)],
				Op:        Op(int(s) % 6),
				Value:     vals[int(s/7)%len(vals)],
			})
		}
		if len(b.Children) == 0 {
			b.Children = append(b.Children, &Relation{Attribute: "count", Op: OpEq, Value: Literal("1")})
		}
		multi := MultiOf(b, b)
		reparsed, err := Parse(multi.String())
		return err == nil && Equal(multi, reparsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
