package rsl_test

import (
	"fmt"

	"cogrid/internal/rsl"
)

// Parse the paper's Figure 1 request and inspect a subjob.
func ExampleParse() {
	node, err := rsl.Parse(`+(&(resourceManagerContact=RM1)(count=1)(executable=master)(subjobStartType=required))
	                         (&(resourceManagerContact=RM2)(count=4)(executable=worker)(subjobStartType=interactive))`)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	subjobs, _ := rsl.Subrequests(node)
	fmt.Println("subjobs:", len(subjobs))
	count, _, _ := rsl.GetInt(subjobs[1], "count", nil)
	exe, _, _ := rsl.GetString(subjobs[1], "executable", nil)
	fmt.Printf("subjob 1: %d x %s\n", count, exe)
	// Output:
	// subjobs: 2
	// subjob 1: 4 x worker
}

// Variables let one template serve many submissions.
func ExampleSubstitute() {
	node := rsl.MustParse(`&(executable=$(APP))(count=8)`)
	bound, err := rsl.Substitute(node, rsl.Bindings{"APP": "/opt/sim/bin/flow"})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(bound)
	// Output:
	// &(executable=/opt/sim/bin/flow)(count=8)
}
