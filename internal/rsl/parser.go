package rsl

import "strings"

// Parse parses an RSL specification.
func Parse(src string) (Node, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errAt(p.tok.pos, "trailing input after specification: %s", p.tok.kind)
	}
	return n, nil
}

// MustParse is Parse for known-good inputs; it panics on error.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// parseSpec parses a boolean combination or a bare relation.
func (p *parser) parseSpec() (Node, error) {
	switch p.tok.kind {
	case tokAmp:
		return p.parseBoolean(And)
	case tokPipe:
		return p.parseBoolean(Or)
	case tokPlus:
		return p.parseBoolean(Multi)
	case tokToken:
		// Attribute names are bare identifiers only; a quoted string here
		// would allow attributes (e.g. "") that Relation.String cannot
		// print back into parseable form.
		return p.parseRelation()
	}
	return nil, errAt(p.tok.pos, "expected '&', '|', '+' or a relation, found %s", p.tok.kind)
}

// parseBoolean parses OP '(' spec ')' ... with at least one child.
func (p *parser) parseBoolean(op BoolOp) (Node, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	b := &Boolean{Op: op}
	for p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		child, err := p.parseSpec()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, errAt(p.tok.pos, "expected ')', found %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		b.Children = append(b.Children, child)
	}
	if len(b.Children) == 0 {
		return nil, errAt(p.tok.pos, "%s must have at least one parenthesized child", op)
	}
	return b, nil
}

// parseRelation parses attribute op value.
func (p *parser) parseRelation() (Node, error) {
	attr := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokOp {
		return nil, errAt(p.tok.pos, "expected relational operator after %q, found %s", attr, p.tok.kind)
	}
	op := p.tok.op
	if err := p.advance(); err != nil {
		return nil, err
	}
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	return &Relation{Attribute: attr, Op: op, Value: v}, nil
}

// parseValue parses a literal, variable reference, or sequence.
func (p *parser) parseValue() (Value, error) {
	switch p.tok.kind {
	case tokToken, tokString:
		v := Literal(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return v, nil
	case tokVarRef:
		v := VarRef(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return v, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var seq Seq
		for p.tok.kind != tokRParen {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return seq, nil
	}
	return nil, errAt(p.tok.pos, "expected a value, found %s", p.tok.kind)
}

// Equal reports structural equality of two specifications, comparing
// attribute names case-insensitively.
func Equal(a, b Node) bool {
	switch av := a.(type) {
	case *Relation:
		bv, ok := b.(*Relation)
		if !ok {
			return false
		}
		return strings.EqualFold(av.Attribute, bv.Attribute) && av.Op == bv.Op && valueEqual(av.Value, bv.Value)
	case *Boolean:
		bv, ok := b.(*Boolean)
		if !ok || av.Op != bv.Op || len(av.Children) != len(bv.Children) {
			return false
		}
		for i := range av.Children {
			if !Equal(av.Children[i], bv.Children[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func valueEqual(a, b Value) bool {
	switch av := a.(type) {
	case Literal:
		bv, ok := b.(Literal)
		return ok && av == bv
	case VarRef:
		bv, ok := b.(VarRef)
		return ok && av == bv
	case Seq:
		bv, ok := b.(Seq)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !valueEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	}
	return false
}
