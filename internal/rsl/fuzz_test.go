package rsl

import (
	"testing"
	"testing/quick"
)

// Property: Parse never panics, whatever bytes it is fed; it either
// returns a tree or a *SyntaxError.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		node, err := Parse(src)
		if err == nil && node == nil {
			return false
		}
		if err != nil {
			if _, isSyntax := err.(*SyntaxError); !isSyntax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: successful parses survive String -> Parse round trips.
func TestParseRoundTripProperty(t *testing.T) {
	f := func(src string) bool {
		node, err := Parse(src)
		if err != nil {
			return true // nothing to round-trip
		}
		again, err := Parse(node.String())
		return err == nil && Equal(node, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// A grab bag of strange-but-valid inputs, ensuring the lexer's token
// classes stay stable.
func TestParseOddButValid(t *testing.T) {
	cases := []string{
		`a=1`,
		`&(a=1)`,
		`&( a = 1 )`,
		"\t&\n(a=1)\r\n",
		`&(a=())`,
		`&(a=((x) (y)))`,
		`&(path=/usr/local/bin/app-1.2_3)`,
		`&(contact=host.domain.org:gram)`,
		`&(expr=a*b?c~d%e,f)`,
		`|(&(a=1))(&(a=2))(&(a=3))`,
		`+(&(a=1))`,
		`&(s="")`,
		`&(s="()&|+=<>!")`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}
