package rsl

import (
	"testing"
	"testing/quick"
)

// Property: Parse never panics, whatever bytes it is fed; it either
// returns a tree or a *SyntaxError.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		node, err := Parse(src)
		if err == nil && node == nil {
			return false
		}
		if err != nil {
			if _, isSyntax := err.(*SyntaxError); !isSyntax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: successful parses survive String -> Parse round trips.
func TestParseRoundTripProperty(t *testing.T) {
	f := func(src string) bool {
		node, err := Parse(src)
		if err != nil {
			return true // nothing to round-trip
		}
		again, err := Parse(node.String())
		return err == nil && Equal(node, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// FuzzRSL feeds the parser arbitrary bytes under the native fuzzer. The
// contract mirrors the quick.Check property above — Parse returns a tree
// or a *SyntaxError, never panics, and successful parses round-trip
// through String — but the coverage-guided mutator digs far deeper into
// the lexer and recursive-descent corners than type-driven randomness.
// The seed corpus (testdata/fuzz/FuzzRSL) collects malformed specs:
// unterminated strings, dangling operators, deep nesting, stray bytes.
func FuzzRSL(f *testing.F) {
	seeds := []string{
		// well-formed anchors for the mutator
		`&(executable=app)(count=2)`,
		`+(&(resourceManagerContact=m01:gram)(count=8)(executable=a1)(subjobStartType=required))`,
		`|(&(a=1))(&(a=2))`,
		`&(env=(DUROC_JOB j1)(DUROC_SUBJOB sj0))`,
		`&(s="()&|+=<>!")`,
		// malformed specs
		``,
		`&`,
		`&(`,
		`&(a`,
		`&(a=`,
		`&(a=1`,
		`&(a=1))`,
		`&(a=")`,
		`&(a="unterminated`,
		`&(=1)`,
		`&(a==1)`,
		`&(a=1)(`,
		`+()`,
		`|`,
		`((((((((((`,
		`&(a=((((((((((1))))))))))`,
		`&(a=1)&(b=2)`,
		`&(a = "x" y)`,
		`&(a=#comment)`,
		"&(a=1)\x00",
		"&(a=\xff\xfe)",
		`&(count=-0x7fffffffffffffff)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		node, err := Parse(src)
		if err != nil {
			if _, isSyntax := err.(*SyntaxError); !isSyntax {
				t.Fatalf("Parse(%q): non-SyntaxError %T: %v", src, err, err)
			}
			return
		}
		if node == nil {
			t.Fatalf("Parse(%q): nil tree without error", src)
		}
		again, err := Parse(node.String())
		if err != nil {
			t.Fatalf("round trip of %q failed to parse %q: %v", src, node.String(), err)
		}
		if !Equal(node, again) {
			t.Fatalf("round trip of %q changed the tree: %q", src, node.String())
		}
	})
}

// A grab bag of strange-but-valid inputs, ensuring the lexer's token
// classes stay stable.
func TestParseOddButValid(t *testing.T) {
	cases := []string{
		`a=1`,
		`&(a=1)`,
		`&( a = 1 )`,
		"\t&\n(a=1)\r\n",
		`&(a=())`,
		`&(a=((x) (y)))`,
		`&(path=/usr/local/bin/app-1.2_3)`,
		`&(contact=host.domain.org:gram)`,
		`&(expr=a*b?c~d%e,f)`,
		`|(&(a=1))(&(a=2))(&(a=3))`,
		`+(&(a=1))`,
		`&(s="")`,
		`&(s="()&|+=<>!")`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}
