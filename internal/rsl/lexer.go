package rsl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLParen
	tokRParen
	tokAmp
	tokPipe
	tokPlus
	tokOp     // =, !=, <, <=, >, >=
	tokToken  // unquoted literal
	tokString // quoted literal (text holds the unquoted content)
	tokVarRef // $(NAME) (text holds NAME)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokAmp:
		return "'&'"
	case tokPipe:
		return "'|'"
	case tokPlus:
		return "'+'"
	case tokOp:
		return "operator"
	case tokToken:
		return "token"
	case tokString:
		return "string"
	case tokVarRef:
		return "variable reference"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	op   Op
	pos  int
}

// SyntaxError reports a lexical or grammatical error with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rsl: syntax error at offset %d: %s", e.Pos, e.Msg)
}

type lexer struct {
	src string
	pos int
}

func errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// isTokenChar reports whether c may appear in an unquoted token.
func isTokenChar(c byte) bool {
	if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) {
		return true
	}
	return strings.IndexByte("-_./:@#*?~%,", c) >= 0
}

func (l *lexer) next() (token, error) {
	for {
		// Skip whitespace.
		for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
			l.pos++
		}
		// Skip (* ... *) comments.
		if l.pos+1 < len(l.src) && l.src[l.pos] == '(' && l.src[l.pos+1] == '*' {
			end := strings.Index(l.src[l.pos+2:], "*)")
			if end < 0 {
				return token{}, errAt(l.pos, "unterminated comment")
			}
			l.pos += 2 + end + 2
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case '&':
		l.pos++
		return token{kind: tokAmp, pos: start}, nil
	case '|':
		l.pos++
		return token{kind: tokPipe, pos: start}, nil
	case '+':
		l.pos++
		return token{kind: tokPlus, pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokOp, op: OpEq, pos: start}, nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, op: OpNeq, pos: start}, nil
		}
		return token{}, errAt(start, "expected '=' after '!'")
	case '<':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, op: OpLe, pos: start}, nil
		}
		return token{kind: tokOp, op: OpLt, pos: start}, nil
	case '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, op: OpGe, pos: start}, nil
		}
		return token{kind: tokOp, op: OpGt, pos: start}, nil
	case '"':
		return l.lexString()
	case '$':
		return l.lexVarRef()
	}
	if isTokenChar(c) {
		// '*' may appear inside a token (a*b) but not start one: after a
		// '(' the sequence "(*" always opens a comment, so a leading '*'
		// could never be printed back unambiguously.
		if c == '*' {
			return token{}, errAt(start, "token may not start with '*'")
		}
		end := l.pos
		for end < len(l.src) && isTokenChar(l.src[end]) {
			end++
		}
		text := l.src[l.pos:end]
		l.pos = end
		return token{kind: tokToken, text: text, pos: start}, nil
	}
	return token{}, errAt(start, "unexpected character %q", c)
}

// lexString scans a double-quoted literal; embedded quotes are doubled.
func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				sb.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, errAt(start, "unterminated string")
}

// lexVarRef scans $(NAME).
func (l *lexer) lexVarRef() (token, error) {
	start := l.pos
	l.pos++ // '$'
	if l.pos >= len(l.src) || l.src[l.pos] != '(' {
		return token{}, errAt(start, "expected '(' after '$'")
	}
	l.pos++
	end := l.pos
	for end < len(l.src) && isTokenChar(l.src[end]) {
		end++
	}
	if end == l.pos {
		return token{}, errAt(start, "empty variable reference")
	}
	name := l.src[l.pos:end]
	if end >= len(l.src) || l.src[end] != ')' {
		return token{}, errAt(start, "unterminated variable reference $(%s", name)
	}
	l.pos = end + 1
	return token{kind: tokVarRef, text: name, pos: start}, nil
}
