package grid_test

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cogrid/internal/perf"
)

// promSample is one parsed exposition line: sanitized family name plus
// the scope label (empty when unscoped). Histogram bucket lines fold into
// their family via the _bucket suffix.
type promSample struct {
	family string
	scope  string
}

// promName mirrors the exposition writer's sanitization rule.
func promName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// expectedKey converts a registry name ("layer.object.verb@scope") into
// the exposition sample key it must appear under.
func expectedKey(name string) string {
	base, scope := name, ""
	if i := strings.LastIndexByte(name, '@'); i >= 0 {
		base, scope = name[:i], name[i+1:]
	}
	return "cogrid_" + promName(base) + "|" + scope
}

// parseExposition counts samples per family|scope key, separating plain
// samples (counters, gauges) from histogram families (seen via _count).
func parseExposition(t *testing.T, text string) (plain, histograms map[string]int) {
	t.Helper()
	plain, histograms = map[string]int{}, map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := strings.Cut(line, " ")
		scope := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labels := name[i+1 : len(name)-1]
			name = name[:i]
			for _, kv := range strings.Split(labels, ",") {
				if v, found := strings.CutPrefix(kv, `scope="`); found {
					scope = strings.TrimSuffix(v, `"`)
				}
			}
		}
		if !ok || rest == "" {
			t.Fatalf("malformed sample line: %q", line)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"), strings.HasSuffix(name, "_sum"):
			// counted via _count below
		case strings.HasSuffix(name, "_count"):
			histograms[strings.TrimSuffix(name, "_count")+"|"+scope]++
		default:
			plain[name+"|"+scope]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return plain, histograms
}

// TestWriteMetricsExposesEveryRegistry pins exposition completeness:
// every registered counter, gauge, and histogram appears exactly once in
// the Prometheus output, and nothing appears that is not registered. The
// grid comes from the SLO scenario so all of this PR's new series —
// per-reason drop counters, alert counters, the active-alert and drop
// gauges, flight-recorder dump counters — are live in the registries.
func TestWriteMetricsExposesEveryRegistry(t *testing.T) {
	_, g := perf.RunSLOScenario(1)
	var buf bytes.Buffer
	if err := g.WriteMetrics(&buf); err != nil {
		t.Fatalf("write metrics: %v", err)
	}
	plain, hists := parseExposition(t, buf.String())

	expectedPlain := map[string]int{}
	for _, cv := range g.Counters.Snapshot() {
		expectedPlain[expectedKey(cv.Name)]++
	}
	for _, name := range g.Gauges.Names() {
		expectedPlain[expectedKey(name)]++
	}
	expectedHists := map[string]int{}
	for _, name := range g.Hists.Names() {
		expectedHists[expectedKey(name)]++
	}

	// The scenario must actually exercise the observability plane, or the
	// completeness claim is vacuous.
	for _, want := range []string{
		"cogrid_slo_alert_fire|broker-orphans",
		"cogrid_flightrec_dump_slo|",
		"cogrid_transport_drops|",
		"cogrid_slo_alerts_active|",
		"cogrid_broker_orphans|broker0",
	} {
		if expectedPlain[want] == 0 {
			t.Errorf("scenario registered no %q metric", want)
		}
	}
	if err := diffCounts(expectedPlain, plain); err != nil {
		t.Errorf("counter/gauge exposition mismatch: %v", err)
	}
	if err := diffCounts(expectedHists, hists); err != nil {
		t.Errorf("histogram exposition mismatch: %v", err)
	}
}

// diffCounts requires want == got as multisets, reporting the first few
// differences.
func diffCounts(want, got map[string]int) error {
	var bad []string
	for k, n := range want {
		if got[k] != n {
			bad = append(bad, fmt.Sprintf("%s: registered %d, exposed %d", k, n, got[k]))
		}
	}
	for k, n := range got {
		if _, ok := want[k]; !ok {
			bad = append(bad, fmt.Sprintf("%s: exposed %d but never registered", k, n))
		}
	}
	if len(bad) > 0 {
		if len(bad) > 8 {
			bad = bad[:8]
		}
		return fmt.Errorf("%s", strings.Join(bad, "; "))
	}
	return nil
}
