package grid_test

import (
	"sort"
	"testing"
	"time"

	"cogrid/internal/grid"
	"cogrid/internal/lrm"
)

func TestNewGridHasWorkstationAndNIS(t *testing.T) {
	g := grid.New(grid.Options{})
	if g.Workstation == nil || g.Workstation.Name() != "workstation" {
		t.Fatal("missing workstation")
	}
	if g.Net.Host("nis0") == nil {
		t.Fatal("missing NIS host")
	}
	if g.UserCred.Name != grid.DefaultUser {
		t.Fatalf("user = %q", g.UserCred.Name)
	}
}

func TestAddMachineAndDial(t *testing.T) {
	g := grid.New(grid.Options{})
	m := g.AddMachine("origin", 64, lrm.Fork)
	if m.Processors() != 64 || m.Mode() != lrm.Fork {
		t.Fatalf("machine = %d procs %v", m.Processors(), m.Mode())
	}
	if g.Machine("origin") != m {
		t.Fatal("Machine lookup failed")
	}
	if g.Machine("nope") != nil {
		t.Fatal("missing machine lookup returned non-nil")
	}
	if got := g.Contact("origin").String(); got != "origin:gram" {
		t.Fatalf("contact = %q", got)
	}
	m.RegisterExecutable("noop", func(p *lrm.Proc) error { return nil })
	err := g.Sim.Run("client", func() {
		c, err := g.Dial("origin")
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		if _, err := c.Submit(`&(executable=noop)(count=1)`); err != nil {
			t.Errorf("Submit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestAddMachineDuplicatePanics(t *testing.T) {
	g := grid.New(grid.Options{})
	g.AddMachine("dup", 4, lrm.Fork)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddMachine did not panic")
		}
	}()
	g.AddMachine("dup", 4, lrm.Fork)
}

func TestRegisterEverywhere(t *testing.T) {
	g := grid.New(grid.Options{})
	a := g.AddMachine("a", 4, lrm.Fork)
	b := g.AddMachine("b", 4, lrm.Fork)
	g.RegisterEverywhere("x", func(p *lrm.Proc) error { return nil })
	err := g.Sim.Run("main", func() {
		for _, m := range []*lrm.Machine{a, b} {
			if _, err := m.Submit(lrm.JobSpec{Executable: "x", Count: 1}); err != nil {
				t.Errorf("%s: %v", m.Name(), err)
			}
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestMachinesLists(t *testing.T) {
	g := grid.New(grid.Options{})
	g.AddMachine("b", 4, lrm.Fork)
	g.AddMachine("a", 4, lrm.Fork)
	names := g.Machines()
	sort.Strings(names)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Machines = %v", names)
	}
}

func TestTimelineRecordingOption(t *testing.T) {
	g := grid.New(grid.Options{RecordTimeline: true})
	if g.Timeline == nil {
		t.Fatal("RecordTimeline did not attach a timeline")
	}
	g.AddMachine("m", 4, lrm.Fork)
	g.RegisterEverywhere("noop", func(p *lrm.Proc) error { return nil })
	err := g.Sim.Run("client", func() {
		c, err := g.Dial("m")
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		if _, err := c.Submit(`&(executable=noop)(count=1)`); err != nil {
			t.Errorf("Submit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if len(g.Timeline.Spans()) == 0 {
		t.Fatal("no spans recorded")
	}
}

func TestCustomLatency(t *testing.T) {
	g := grid.New(grid.Options{Latency: 10 * time.Millisecond})
	g.AddMachine("far", 4, lrm.Fork)
	err := g.Sim.Run("client", func() {
		start := g.Sim.Now()
		if _, err := g.Workstation.Dial(g.Contact("far")); err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		if rtt := g.Sim.Now() - start; rtt != 20*time.Millisecond {
			t.Errorf("dial RTT = %v, want 20ms", rtt)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
