// Package grid assembles simulated computational grids: a client
// workstation, a NIS server, and any number of GRAM-fronted machines on a
// common network, with shared security credentials — the testbed every
// experiment, example, and benchmark builds on.
package grid

import (
	"fmt"
	"io"
	"time"

	"cogrid/internal/flightrec"
	"cogrid/internal/gram"
	"cogrid/internal/gsi"
	"cogrid/internal/lrm"
	"cogrid/internal/metrics"
	"cogrid/internal/nis"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// DefaultUser is the principal experiments submit as.
const DefaultUser = "user/grid"

// Options configures a grid testbed. Zero values select the paper's
// calibration: 1 ms one-way network latency (a ~2 ms round trip between
// client and resource, as in Section 4.2), Figure 3 cost models, and a
// deterministic seed.
type Options struct {
	Seed           int64
	Latency        time.Duration
	LatencyModel   transport.LatencyModel // overrides Latency when set
	User           string
	AuthCost       gsi.CostModel
	GRAMCost       gram.CostModel
	LRMCosts       lrm.Costs
	NISServiceTime time.Duration
	// RecordTimeline attaches a shared metrics.Timeline to every
	// gatekeeper (for Figures 3 and 5).
	RecordTimeline bool
	// Trace attaches a trace.Tracer and trace.Counters to the network,
	// capturing structured events from every layer (transport hops, RPC
	// calls, GRAM state transitions, DUROC commit and barrier phases).
	Trace bool
	// TimerEngine selects the kernel's timer queue implementation. The
	// zero value is the production default (hierarchical timing wheel);
	// the kernel-equivalence suite sets this to run identical scenarios on
	// the reference heap and diff every artifact byte.
	TimerEngine vtime.TimerEngine
}

// Grid is an assembled testbed.
type Grid struct {
	Sim         *vtime.Sim
	Net         *transport.Network
	Registry    *gsi.Registry
	NISAddr     transport.Addr
	NIS         *nis.Server
	Workstation *transport.Host
	UserCred    gsi.Credential
	Timeline    *metrics.Timeline
	Tracer      *trace.Tracer
	Counters    *trace.Counters
	Gauges      *metrics.GaugeSet
	Hists       *metrics.HistogramSet
	Samples     *metrics.SampleLogSet
	Flight      *flightrec.Recorder

	opts     Options
	machines map[string]*lrm.Machine
	servers  map[string]*gram.Server
}

// New builds a grid with a client workstation and a NIS server.
func New(opts Options) *Grid {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Latency == 0 {
		opts.Latency = time.Millisecond
	}
	if opts.User == "" {
		opts.User = DefaultUser
	}
	sim := vtime.NewWithConfig(vtime.Config{Seed: opts.Seed, Engine: opts.TimerEngine})
	lm := opts.LatencyModel
	if lm == nil {
		lm = transport.UniformLatency(opts.Latency)
	}
	net := transport.New(sim, lm)
	g := &Grid{
		Sim:         sim,
		Net:         net,
		Registry:    gsi.NewRegistry(),
		Workstation: net.AddHost("workstation"),
		opts:        opts,
		machines:    make(map[string]*lrm.Machine),
		servers:     make(map[string]*gram.Server),
	}
	if opts.RecordTimeline {
		g.Timeline = metrics.NewTimeline(sim)
	}
	if opts.Trace {
		g.Tracer = trace.New(sim)
		g.Counters = trace.NewCounters()
		g.Gauges = metrics.NewGaugeSet(sim)
		g.Hists = metrics.NewHistogramSet()
		g.Samples = metrics.NewSampleLogSet(sim)
		g.Flight = flightrec.New(sim, flightrec.Options{})
		g.Flight.SetCounters(g.Counters)
		net.SetTracer(g.Tracer)
		net.SetCounters(g.Counters)
		net.SetGauges(g.Gauges)
		net.SetHists(g.Hists)
		net.SetSamples(g.Samples)
		net.SetFlightRec(g.Flight)
		// The flight recorder taps the tracer: every event any layer emits
		// is mirrored into its bounded per-component ring, so the black box
		// is always armed without any layer opting in.
		g.Tracer.SetTap(g.Flight)
		// Kernel probes: timer lead times and dispatch batch sizes land in
		// the same registry as the layer histograms. Histogram recording is
		// atomic-only, so it is safe under the kernel lock.
		sim.SetStats(vtime.KernelStats{
			TimerLead:     g.Hists.H("vtime.timer.lead"),
			DispatchBatch: g.Hists.H("vtime.dispatch.batch"),
		})
	}
	nisHost := net.AddHost("nis0")
	srv, err := nis.NewServer(nisHost, opts.NISServiceTime)
	if err != nil {
		panic(err) // fresh host: cannot fail
	}
	g.NIS = srv
	g.NISAddr = transport.Addr{Host: "nis0", Service: nis.ServiceName}
	g.UserCred = g.Registry.Issue(opts.User)
	srv.AddUser(opts.User, "users", "grid")
	return g
}

// AddMachine creates a machine with a gatekeeper. The machine's host takes
// the machine name.
func (g *Grid) AddMachine(name string, processors int, mode lrm.Mode) *lrm.Machine {
	if _, exists := g.machines[name]; exists {
		panic(fmt.Sprintf("grid: machine %q already exists", name))
	}
	host := g.Net.AddHost(name)
	machine := lrm.NewMachine(host, processors, lrm.Config{Mode: mode, Costs: g.opts.LRMCosts})
	var recorder gram.PhaseRecorder
	if g.Timeline != nil {
		recorder = g.Timeline
	}
	server, err := gram.StartServer(machine, gram.ServerConfig{
		Credential: g.Registry.Issue("host/" + name),
		Registry:   g.Registry,
		AuthCost:   g.opts.AuthCost,
		Cost:       g.opts.GRAMCost,
		NISAddr:    g.NISAddr,
		Timeline:   recorder,
	})
	if err != nil {
		panic(err) // fresh host: cannot fail
	}
	g.machines[name] = machine
	g.servers[name] = server
	return machine
}

// RestartMachine reboots a crashed machine's host and starts a fresh
// gatekeeper on it. The LRM keeps its job table — a crash severs the
// network (listeners, live connections), not the simulated scheduler
// state — so jobs that survived locally stay visible and cancellable,
// which is what lets an orphan reaper drain a machine after it returns.
// Panics if the machine is unknown.
func (g *Grid) RestartMachine(name string) {
	machine, ok := g.machines[name]
	if !ok {
		panic(fmt.Sprintf("grid: restart of unknown machine %q", name))
	}
	machine.Host().RestoreCrashed()
	var recorder gram.PhaseRecorder
	if g.Timeline != nil {
		recorder = g.Timeline
	}
	server, err := gram.StartServer(machine, gram.ServerConfig{
		Credential: g.Registry.Issue("host/" + name),
		Registry:   g.Registry,
		AuthCost:   g.opts.AuthCost,
		Cost:       g.opts.GRAMCost,
		NISAddr:    g.NISAddr,
		Timeline:   recorder,
	})
	if err != nil {
		panic(err) // restored host has no listeners: cannot fail
	}
	g.servers[name] = server
}

// Machine returns a machine by name, or nil.
func (g *Grid) Machine(name string) *lrm.Machine { return g.machines[name] }

// Machines returns all machine names in no particular order.
func (g *Grid) Machines() []string {
	out := make([]string, 0, len(g.machines))
	for name := range g.machines {
		out = append(out, name)
	}
	return out
}

// Contact returns the GRAM contact for a machine.
func (g *Grid) Contact(name string) transport.Addr {
	return transport.Addr{Host: name, Service: gram.ServiceName}
}

// RegisterEverywhere installs an executable on every existing machine.
func (g *Grid) RegisterEverywhere(name string, fn lrm.ExecFunc) {
	for _, m := range g.machines {
		m.RegisterExecutable(name, fn)
	}
}

// ClientConfig returns the GRAM client configuration for the grid user.
func (g *Grid) ClientConfig() gram.ClientConfig {
	return gram.ClientConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
		AuthCost:   g.opts.AuthCost,
	}
}

// Dial opens an authenticated GRAM connection from the workstation.
func (g *Grid) Dial(machine string) (*gram.Client, error) {
	return gram.Dial(g.Workstation, g.Contact(machine), g.ClientConfig())
}

// WriteMetrics writes every counter, gauge, and histogram the run
// collected in Prometheus text format. Gauges are sampled at the current
// virtual time. The output is deterministic for a fixed seed; without
// Options.Trace all registries are empty and the exposition is too.
func (g *Grid) WriteMetrics(w io.Writer) error {
	snap := metrics.PromSnapshot{
		Gauges:  g.Gauges,
		GaugeAt: g.Sim.Now(),
		Hists:   g.Hists,
	}
	for _, cv := range g.Counters.Snapshot() {
		snap.Counters = append(snap.Counters, metrics.NamedValue{Name: cv.Name, Value: cv.Value})
	}
	return metrics.WritePrometheus(w, snap)
}
