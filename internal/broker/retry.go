package broker

import (
	"errors"
	"strings"
	"time"

	"cogrid/internal/core"
)

// ErrNoCandidates reports that the cache held fewer viable resources than
// the request needs.
var ErrNoCandidates = errors.New("broker: not enough candidate resources")

// ErrForwardUnavailable reports that a Forward hook found no peer worth
// offering the request to; the local retry policy resumes.
var ErrForwardUnavailable = errors.New("broker: no forwarding peer available")

// ErrForwardIndeterminate reports a forward whose outcome is unknown —
// the peer accepted the connection but the reply was lost. The request
// must not be retried: the peer may have committed it.
var ErrForwardIndeterminate = errors.New("broker: forward outcome indeterminate")

// Class partitions co-allocation failures by what went wrong, so the
// retry policy can react differently to congestion, churn, and dead
// resources — the failure taxonomy of the paper's Section 3.2 lifted to
// broker policy.
type Class string

const (
	// ClassNoCandidates: the directory view held too few machines.
	// Retrying waits for publishers to register or records to refresh.
	ClassNoCandidates Class = "no-candidates"
	// ClassCommitTimeout: the ensemble never fully checked in — typically
	// batch queues too deep. Backing off lets queues drain.
	ClassCommitTimeout Class = "commit-timeout"
	// ClassPoolExhausted: subjobs failed faster than the substitution
	// pool could cover. A re-selection on fresher records may pick
	// healthier machines.
	ClassPoolExhausted Class = "pool-exhausted"
	// ClassAborted: the co-allocation aborted (e.g. a required failure
	// or lost resource-manager contact mid-flight).
	ClassAborted Class = "aborted"
	// ClassOther: anything else (submission or protocol errors).
	ClassOther Class = "other"
)

// Classify maps a co-allocation error to its failure class.
func Classify(err error) Class {
	switch {
	case errors.Is(err, ErrNoCandidates):
		return ClassNoCandidates
	case errors.Is(err, core.ErrCommitTimeout):
		return ClassCommitTimeout
	case errors.Is(err, core.ErrSubjobNotReady):
		return ClassPoolExhausted
	case errors.Is(err, core.ErrAborted):
		return ClassAborted
	}
	return ClassOther
}

// ClassDecision is the policy for one failure class.
type ClassDecision struct {
	// Retry enables another attempt for this class.
	Retry bool
	// Backoff is the base delay before the next attempt; it grows by the
	// policy's BackoffFactor with each further attempt.
	Backoff time.Duration
}

// DefaultMaxBackoff caps exponential backoff growth when a policy does
// not set its own bound. A broker sleep should never outlive the queue
// of work behind it, let alone the multi-hour delays an uncapped
// doubling schedule reaches within a few dozen attempts.
const DefaultMaxBackoff = 10 * time.Minute

// RetryPolicy is the broker's per-failure-class retry/backoff schedule.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per request (>= 1).
	MaxAttempts int
	// BackoffFactor multiplies the class backoff per additional attempt
	// (1.0 = constant; default 2.0).
	BackoffFactor float64
	// MaxBackoff caps the grown backoff; zero or negative selects
	// DefaultMaxBackoff. The cap also guards against float overflow at
	// high attempt counts, which would otherwise wrap into a bogus
	// (possibly negative) Duration.
	MaxBackoff time.Duration
	// Classes overrides the decision per class; classes not present use
	// Default.
	Classes map[Class]ClassDecision
	// Default applies to classes without an explicit entry.
	Default ClassDecision
}

// DefaultRetryPolicy is the stock schedule: three attempts, doubling
// backoff, with congestion (commit-timeout) backing off longest and
// thin directories waiting for the next publish round.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   3,
		BackoffFactor: 2,
		MaxBackoff:    5 * time.Minute,
		Classes: map[Class]ClassDecision{
			ClassNoCandidates:  {Retry: true, Backoff: 30 * time.Second},
			ClassCommitTimeout: {Retry: true, Backoff: time.Minute},
			ClassPoolExhausted: {Retry: true, Backoff: 15 * time.Second},
			ClassAborted:       {Retry: true, Backoff: 15 * time.Second},
		},
		Default: ClassDecision{Retry: true, Backoff: 15 * time.Second},
	}
}

// For returns the decision for class.
func (p RetryPolicy) For(class Class) ClassDecision {
	if d, ok := p.Classes[class]; ok {
		return d
	}
	return p.Default
}

// BackoffFor returns the delay before the attempt following failed
// attempt n (1-based): base * factor^(n-1), clamped to the policy's
// MaxBackoff (DefaultMaxBackoff when unset).
func (p RetryPolicy) BackoffFor(class Class, n int) time.Duration {
	d := p.For(class).Backoff
	factor := p.BackoffFactor
	if factor <= 0 {
		factor = 1
	}
	limit := p.MaxBackoff
	if limit <= 0 {
		limit = DefaultMaxBackoff
	}
	out := float64(d)
	// Stop growing as soon as the cap is reached: iterating further would
	// overflow float64 into a value time.Duration cannot represent.
	for i := 1; i < n && out < float64(limit); i++ {
		out *= factor
	}
	if out > float64(limit) {
		return limit
	}
	return time.Duration(out)
}

// FaultClass buckets a subjob failure reason by the kind of injected or
// natural fault that produced it — the observable form each of the
// paper's Section 2 failure modes takes at the broker. It powers the
// broker.fault.<class> counters a chaos run is read through.
func FaultClass(reason string) string {
	switch {
	case strings.Contains(reason, "gsi:"):
		return "auth-rejected"
	case strings.Contains(reason, "lost contact"):
		return "lost-contact"
	case strings.Contains(reason, "startup timeout"):
		return "slow-start"
	case strings.Contains(reason, "machine is down"):
		return "machine-down"
	case strings.Contains(reason, "dial"):
		return "unreachable"
	case strings.Contains(reason, "resource manager reported failure"):
		return "lrm-report"
	case strings.Contains(reason, "exited before"):
		return "early-exit"
	}
	return "other"
}
