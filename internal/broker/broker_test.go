package broker_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cogrid/internal/broker"
	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// rig is a grid with a directory, publishing machines, and one broker.
type rig struct {
	g   *grid.Grid
	dir transport.Addr
	b   *broker.Broker
}

// newRig builds machines machines of procs processors each (fork mode),
// publishing to an MDS every 37 s, and a broker on its own host. The
// "app" executable passes the barrier and works for one second.
func newRig(t *testing.T, machines, procs int, opts broker.Options) *rig {
	t.Helper()
	g := grid.New(grid.Options{Seed: 1, Trace: true})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		t.Fatalf("mds.NewServer: %v", err)
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
	for i := 0; i < machines; i++ {
		name := fmt.Sprintf("m%02d", i)
		m := g.AddMachine(name, procs, lrm.Fork)
		mds.Publish(m, dir, g.Contact(name), 37*time.Second, 4, 8, procs)
	}
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(time.Second, time.Second)
	})
	opts.Directory = dir
	b, err := broker.New(g.Net.AddHost("broker0"), core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}, opts)
	if err != nil {
		t.Fatalf("broker.New: %v", err)
	}
	return &rig{g: g, dir: dir, b: b}
}

// submitFrom runs one submission; it uses Errorf (not Fatalf) because it
// is called from simulated goroutines.
func submitFrom(t *testing.T, r *rig, host *transport.Host, req broker.Request) broker.Reply {
	t.Helper()
	c, err := broker.Dial(host, r.b.Contact())
	if err != nil {
		t.Errorf("broker.Dial: %v", err)
		return broker.Reply{}
	}
	defer c.Close()
	reply, err := c.Submit(req, 0)
	if err != nil {
		t.Errorf("Submit: %v", err)
	}
	return reply
}

func TestBrokerServesConcurrentTenants(t *testing.T) {
	r := newRig(t, 6, 32, broker.Options{Workers: 3})
	const tenants = 3
	replies := make([]broker.Reply, tenants)
	var wg *vtime.WaitGroup
	err := r.g.Sim.Run("main", func() {
		wg = vtime.NewWaitGroup(r.g.Sim)
		wg.Add(tenants)
		for i := 0; i < tenants; i++ {
			i := i
			host := r.g.Net.AddHost(fmt.Sprintf("t%d", i))
			r.g.Sim.GoDaemon(fmt.Sprintf("tenant%d", i), func() {
				defer wg.Done()
				// Distinct arrival instants keep the schedule exact.
				r.g.Sim.Sleep(10*time.Second + time.Duration(i)*111*time.Millisecond)
				replies[i] = submitFrom(t, r, host, broker.Request{
					Tenant:       fmt.Sprintf("tenant%d", i),
					Sites:        2,
					ProcsPerSite: 8,
					Executable:   "app",
					Spares:       1,
				})
			})
		}
		wg.Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for i, reply := range replies {
		if !reply.OK() {
			t.Errorf("tenant%d: reply not ok: %+v", i, reply)
		}
		if reply.WorldSize != 16 {
			t.Errorf("tenant%d: world size = %d, want 16", i, reply.WorldSize)
		}
		if reply.Attempts != 1 {
			t.Errorf("tenant%d: attempts = %d, want 1", i, reply.Attempts)
		}
	}
	c := r.g.Counters
	if got := c.Get(trace.Key("broker", "request", "ok", "broker0")); got != tenants {
		t.Errorf("broker.request.ok = %d, want %d", got, tenants)
	}
	if got := c.Get(trace.Key("broker", "queue", "enqueue", "broker0")); got != tenants {
		t.Errorf("broker.queue.enqueue = %d, want %d", got, tenants)
	}
	if got := c.Get(trace.Key("broker", "queue", "reject", "broker0")); got != 0 {
		t.Errorf("broker.queue.reject = %d, want 0", got)
	}
}

func TestBrokerBackpressureRejectsWithRetryAfter(t *testing.T) {
	r := newRig(t, 4, 32, broker.Options{
		Workers:    1,
		QueueBound: 1,
		RetryAfter: 10 * time.Second,
	})
	const n = 4
	type outcome struct {
		reply   broker.Reply
		rejects int
	}
	outcomes := make([]outcome, n)
	err := r.g.Sim.Run("main", func() {
		wg := vtime.NewWaitGroup(r.g.Sim)
		wg.Add(n)
		for i := 0; i < n; i++ {
			i := i
			host := r.g.Net.AddHost(fmt.Sprintf("t%d", i))
			r.g.Sim.GoDaemon(fmt.Sprintf("tenant%d", i), func() {
				defer wg.Done()
				r.g.Sim.Sleep(10*time.Second + time.Duration(i)*time.Millisecond)
				c, err := broker.Dial(host, r.b.Contact())
				if err != nil {
					t.Errorf("Dial: %v", err)
					return
				}
				defer c.Close()
				reply, rejects, err := c.SubmitWait(broker.Request{
					Tenant:       fmt.Sprintf("tenant%d", i),
					Sites:        1,
					ProcsPerSite: 4,
					Executable:   "app",
				}, 0, 20)
				if err != nil {
					t.Errorf("SubmitWait: %v", err)
					return
				}
				outcomes[i] = outcome{reply: reply, rejects: rejects}
			})
		}
		wg.Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	totalRejects := 0
	for i, o := range outcomes {
		if !o.reply.OK() {
			t.Errorf("request %d failed: %+v", i, o.reply)
		}
		totalRejects += o.rejects
	}
	if totalRejects == 0 {
		t.Errorf("expected at least one admission rejection with queue bound 1")
	}
	if got := r.g.Counters.Get(trace.Key("broker", "queue", "reject", "broker0")); got != int64(totalRejects) {
		t.Errorf("broker.queue.reject = %d, client-observed rejects = %d", got, totalRejects)
	}
}

func TestBrokerSubstitutesDeadResource(t *testing.T) {
	r := newRig(t, 3, 32, broker.Options{Workers: 1})
	// One machine is down but still published: the broker will select it
	// (its record looks idle) and must substitute from the spare.
	r.g.Machine("m00").SetDown(true)
	var reply broker.Reply
	err := r.g.Sim.Run("main", func() {
		r.g.Sim.Sleep(10 * time.Second)
		host := r.g.Net.AddHost("t0")
		reply = submitFrom(t, r, host, broker.Request{
			Tenant:       "tenant0",
			Sites:        2,
			ProcsPerSite: 8,
			Executable:   "app",
			Spares:       1,
		})
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !reply.OK() {
		t.Fatalf("reply not ok: %+v", reply)
	}
	if reply.Substitutions != 1 {
		t.Errorf("substitutions = %d, want 1", reply.Substitutions)
	}
}

func TestBrokerRetriesUntilResourcesAppear(t *testing.T) {
	// No machines publish until t=45s: the first attempts find an empty
	// directory and the no-candidates class must back off, force-refresh,
	// and eventually succeed.
	g := grid.New(grid.Options{Seed: 1, Trace: true})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		t.Fatalf("mds.NewServer: %v", err)
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("m%02d", i)
		m := g.AddMachine(name, 32, lrm.Fork)
		g.Sim.AfterFunc(45*time.Second, func() {
			mds.Publish(m, dir, g.Contact(name), 37*time.Second, 8)
		})
	}
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		rt.Barrier(true, "", 0)
		return nil
	})
	b, err := broker.New(g.Net.AddHost("broker0"), core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}, broker.Options{
		Directory: dir,
		Workers:   1,
		Retry: broker.RetryPolicy{
			MaxAttempts:   4,
			BackoffFactor: 2,
			Default:       broker.ClassDecision{Retry: true, Backoff: 20 * time.Second},
		},
	})
	if err != nil {
		t.Fatalf("broker.New: %v", err)
	}
	var reply broker.Reply
	simErr := g.Sim.Run("main", func() {
		g.Sim.Sleep(time.Second)
		host := g.Net.AddHost("t0")
		c, err := broker.Dial(host, b.Contact())
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		reply, err = c.Submit(broker.Request{
			Tenant:       "tenant0",
			Sites:        2,
			ProcsPerSite: 8,
			Executable:   "app",
		}, 0)
		if err != nil {
			t.Errorf("Submit: %v", err)
		}
	})
	if simErr != nil {
		t.Fatalf("sim: %v", simErr)
	}
	if !reply.OK() {
		t.Fatalf("reply not ok: %+v", reply)
	}
	if reply.Attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (directory was empty at first)", reply.Attempts)
	}
	if got := g.Counters.Get(trace.Key("broker", "retry", "no-candidates", "broker0")); got == 0 {
		t.Errorf("broker.retry.no-candidates = 0, want > 0")
	}
}

func TestBrokerRoundRobinFairness(t *testing.T) {
	r := newRig(t, 4, 32, broker.Options{Workers: 1, QueueBound: 16})
	type result struct {
		tenant string
		doneAt time.Duration
	}
	var mu sync.Mutex
	var results []result
	err := r.g.Sim.Run("main", func() {
		wg := vtime.NewWaitGroup(r.g.Sim)
		// Tenant A floods five requests; tenant B submits one just after.
		// Round-robin must serve B second, not sixth.
		submit := func(tenant string, host *transport.Host, delay time.Duration) {
			wg.Add(1)
			r.g.Sim.GoDaemon("driver:"+tenant+host.Name(), func() {
				defer wg.Done()
				r.g.Sim.Sleep(delay)
				reply := submitFrom(t, r, host, broker.Request{
					Tenant:       tenant,
					Sites:        1,
					ProcsPerSite: 8,
					Executable:   "app",
				})
				if !reply.OK() {
					t.Errorf("%s: reply not ok: %+v", tenant, reply)
				}
				mu.Lock()
				results = append(results, result{tenant: tenant, doneAt: r.g.Sim.Now()})
				mu.Unlock()
			})
		}
		base := 10 * time.Second
		for i := 0; i < 5; i++ {
			host := r.g.Net.AddHost(fmt.Sprintf("a%d", i))
			submit("tenantA", host, base+time.Duration(i)*time.Millisecond)
		}
		submit("tenantB", r.g.Net.AddHost("b0"), base+7*time.Millisecond)
		wg.Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results", len(results))
	}
	// results is completion-ordered (single worker serializes requests).
	// A's first request is already running when B arrives, and the ring
	// gives A one more turn before B joins the rotation, so round-robin
	// serves B third at the latest — well before A's flood drains. FIFO
	// would have served B sixth.
	bIndex := -1
	for i, res := range results {
		if res.tenant == "tenantB" {
			bIndex = i
		}
	}
	if bIndex < 0 || bIndex > 2 {
		t.Errorf("tenantB completed at position %d, want <= 2 (round-robin); order: %v", bIndex, results)
	}
}

func TestBrokerCacheHitAndStaleCounters(t *testing.T) {
	r := newRig(t, 2, 32, broker.Options{
		Workers:         1,
		CacheMaxAge:     10 * time.Second,
		RefreshInterval: time.Hour, // background refresh effectively off
		RefreshOffset:   5 * time.Second,
	})
	err := r.g.Sim.Run("main", func() {
		host := r.g.Net.AddHost("t0")
		req := broker.Request{Tenant: "t", Sites: 1, ProcsPerSite: 4, Executable: "app"}
		r.g.Sim.Sleep(6 * time.Second) // cache refreshed at t=5s: hit
		submitFrom(t, r, host, req)
		r.g.Sim.SleepUntil(40 * time.Second) // cache now 35s old: stale
		submitFrom(t, r, host, req)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	c := r.g.Counters
	if got := c.Get(trace.Key("broker", "cache", "hit", "broker0")); got != 1 {
		t.Errorf("broker.cache.hit = %d, want 1", got)
	}
	if got := c.Get(trace.Key("broker", "cache", "stale", "broker0")); got != 1 {
		t.Errorf("broker.cache.stale = %d, want 1", got)
	}
	if got := c.Get(trace.Key("broker", "cache", "refresh", "broker0")); got < 2 {
		t.Errorf("broker.cache.refresh = %d, want >= 2 (offset refresh + stale refill)", got)
	}
}

func TestBrokerStats(t *testing.T) {
	r := newRig(t, 2, 32, broker.Options{Workers: 2, QueueBound: 7})
	err := r.g.Sim.Run("main", func() {
		r.g.Sim.Sleep(10 * time.Second)
		host := r.g.Net.AddHost("t0")
		c, err := broker.Dial(host, r.b.Contact())
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		s, err := c.Stats()
		if err != nil {
			t.Errorf("Stats: %v", err)
			return
		}
		if s.QueueBound != 7 || s.Workers != 2 {
			t.Errorf("stats = %+v", s)
		}
		if s.CacheSize != 2 {
			t.Errorf("cache size = %d, want 2", s.CacheSize)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestBrokerRejectsMalformedRequests(t *testing.T) {
	r := newRig(t, 1, 8, broker.Options{})
	err := r.g.Sim.Run("main", func() {
		host := r.g.Net.AddHost("t0")
		c, err := broker.Dial(host, r.b.Contact())
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		if _, err := c.Submit(broker.Request{Sites: 0, ProcsPerSite: 1, Executable: "app"}, 0); err == nil {
			t.Errorf("Submit with zero sites succeeded")
		}
		if _, err := c.Submit(broker.Request{Sites: 1, ProcsPerSite: 1}, 0); err == nil {
			t.Errorf("Submit without executable succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRetryPolicyBackoffSchedule(t *testing.T) {
	p := broker.DefaultRetryPolicy()
	if d := p.BackoffFor(broker.ClassCommitTimeout, 1); d != time.Minute {
		t.Errorf("first backoff = %v, want 1m", d)
	}
	if d := p.BackoffFor(broker.ClassCommitTimeout, 2); d != 2*time.Minute {
		t.Errorf("second backoff = %v, want 2m", d)
	}
	if !p.For(broker.ClassNoCandidates).Retry {
		t.Errorf("no-candidates should retry by default")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want broker.Class
	}{
		{broker.ErrNoCandidates, broker.ClassNoCandidates},
		{core.ErrCommitTimeout, broker.ClassCommitTimeout},
		{core.ErrSubjobNotReady, broker.ClassPoolExhausted},
		{core.ErrAborted, broker.ClassAborted},
		{fmt.Errorf("wrapped: %w", core.ErrCommitTimeout), broker.ClassCommitTimeout},
		{fmt.Errorf("something else"), broker.ClassOther},
	}
	for _, tc := range cases {
		if got := broker.Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %s, want %s", tc.err, got, tc.want)
		}
	}
}

// TestBrokerCachePerOriginStaleness exercises the federation contract:
// hit/stale accounting keys by the origin replica that decided on the
// view, and a forwarded request carrying ViewAsOf is never answered from
// a cache fetched before that floor. Several origins submit concurrently
// while the refresh daemon runs, so `go test -race` also checks the
// per-origin bookkeeping for data races.
func TestBrokerCachePerOriginStaleness(t *testing.T) {
	r := newRig(t, 3, 32, broker.Options{
		Workers:         3,
		CacheMaxAge:     time.Hour, // age alone never forces a refresh
		RefreshInterval: time.Hour,
		RefreshOffset:   5 * time.Second,
	})
	const origins = 3
	err := r.g.Sim.Run("main", func() {
		wg := vtime.NewWaitGroup(r.g.Sim)
		for i := 0; i < origins; i++ {
			i := i
			host := r.g.Net.AddHost(fmt.Sprintf("o%d", i))
			wg.Add(1)
			r.g.Sim.GoDaemon(fmt.Sprintf("origin%d", i), func() {
				defer wg.Done()
				r.g.Sim.Sleep(20*time.Second + time.Duration(i)*131*time.Millisecond)
				// Served from the 5s-old view: a hit for this origin.
				submitFrom(t, r, host, broker.Request{
					Tenant: "t", Sites: 1, ProcsPerSite: 4, Executable: "app",
					Origin: fmt.Sprintf("fed%02d", i),
				})
				// A forward whose origin decided on a fresher view than
				// the broker holds: must refresh before answering.
				submitFrom(t, r, host, broker.Request{
					Tenant: "t", Sites: 1, ProcsPerSite: 4, Executable: "app",
					Origin:   fmt.Sprintf("fed%02d", i),
					ViewAsOf: r.g.Sim.Now(),
				})
			})
		}
		wg.Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	c := r.g.Counters
	for i := 0; i < origins; i++ {
		origin := fmt.Sprintf("fed%02d", i)
		if got := c.Get(trace.Key("broker", "cache", "hit", origin)); got != 1 {
			t.Errorf("broker.cache.hit@%s = %d, want 1", origin, got)
		}
		if got := c.Get(trace.Key("broker", "cache", "stale", origin)); got != 1 {
			t.Errorf("broker.cache.stale@%s = %d, want 1", origin, got)
		}
	}
	// Nothing was attributed to the serving process's own id.
	if got := c.Get(trace.Key("broker", "cache", "hit", "broker0")); got != 0 {
		t.Errorf("broker.cache.hit@broker0 = %d, want 0 (all lookups carried origins)", got)
	}
}
