package broker

import (
	"strconv"
	"sync"
	"time"

	"cogrid/internal/mds"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// cache is the broker's staleness-aware view of the directory. A refresh
// daemon re-queries the MDS every interval; lookups served within the
// staleness bound are hits, older ones refresh synchronously before
// answering. This replaces the per-request directory query of the
// in-process agents — the paper's [14] point that load information is
// only worth acting on while it remains valid, applied as a cache policy.
type cache struct {
	sim      *vtime.Sim
	host     *transport.Host
	dir      transport.Addr
	maxAge   time.Duration
	interval time.Duration
	stop     *vtime.Event
	// ctx roots the cache's own causal tree: refreshes are broker-side
	// maintenance, not part of any one tenant request. All refresh spans
	// merge under a single child node.
	ctx trace.Ctx

	mu        sync.Mutex
	records   []mds.Record
	fetchedAt time.Duration
	have      bool
}

func newCache(host *transport.Host, dir transport.Addr, maxAge, interval, offset time.Duration) *cache {
	sim := host.Network().Sim()
	c := &cache{
		sim:      sim,
		host:     host,
		dir:      dir,
		maxAge:   maxAge,
		interval: interval,
		stop:     vtime.NewEvent(sim, "broker-cache-stop:"+host.Name()),
		ctx:      trace.NewRequest("cache@" + host.Name()).Child("refresh"),
	}
	sim.GoDaemon("broker-cache:"+host.Name(), func() {
		// The offset keeps periodic refreshes off the instants where
		// publishers re-register, so a refresh never races a register
		// at the directory within one virtual instant.
		if c.stop.WaitTimeout(offset) {
			return
		}
		for {
			c.refresh()
			if c.stop.WaitTimeout(c.interval) {
				return
			}
		}
	})
	return c
}

func (c *cache) stopRefresh() { c.stop.Set() }

// refresh queries the directory and replaces the cached records. Failures
// (directory unreachable) keep the previous records; staleness accounting
// surfaces the gap.
func (c *cache) refresh() {
	start := c.sim.Now()
	client, err := mds.DialCtx(c.host, c.dir, c.ctx)
	if err != nil {
		c.count("refresh-error", 1)
		return
	}
	records, err := client.Query(mds.Filter{})
	client.Close()
	if err != nil {
		c.count("refresh-error", 1)
		return
	}
	c.mu.Lock()
	c.records = records
	c.fetchedAt = c.sim.Now()
	c.have = true
	c.mu.Unlock()
	c.count("refresh", 1)
	c.host.Network().Tracer().SpanCtx(c.ctx, "broker", "cache-refresh", c.host.Name(), "cache", "", start,
		trace.Arg{Key: "records", Val: strconv.Itoa(len(records))})
}

// get returns the cached records, refreshing synchronously when the copy
// is older than the staleness bound (or absent). Counters classify every
// lookup as hit or stale.
func (c *cache) get() []mds.Record {
	c.mu.Lock()
	fresh := c.have && c.sim.Now()-c.fetchedAt <= c.maxAge
	records := c.records
	c.mu.Unlock()
	if fresh {
		c.count("hit", 1)
		return records
	}
	c.count("stale", 1)
	c.refresh()
	c.mu.Lock()
	records = c.records
	c.mu.Unlock()
	return records
}

// peek returns the cached records and their age without refreshing.
func (c *cache) peek() ([]mds.Record, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.have {
		return nil, 0
	}
	return c.records, c.sim.Now() - c.fetchedAt
}

func (c *cache) count(verb string, delta int64) {
	c.host.Network().Counters().Add(trace.Key("broker", "cache", verb, c.host.Name()), delta)
}
