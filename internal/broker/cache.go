package broker

import (
	"strconv"
	"sync"
	"time"

	"cogrid/internal/mds"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// cache is the broker's staleness-aware view of the directory. A refresh
// daemon re-queries the MDS every interval; lookups served within the
// staleness bound are hits, older ones refresh synchronously before
// answering. This replaces the per-request directory query of the
// in-process agents — the paper's [14] point that load information is
// only worth acting on while it remains valid, applied as a cache policy.
//
// Staleness is keyed per requesting replica id, not per process: a
// forwarded request carries the fetch time of the view its origin
// replica decided on (Request.ViewAsOf), and a lookup on the origin's
// behalf is only a hit if the local copy is at least that fresh — a
// forward is never answered from a view staler than the one that
// justified it. Hit/stale counters are likewise attributed to the
// origin replica (broker.cache.hit@<replica-id>), so a federation's
// cache behavior reads per decider, not per serving process.
type cache struct {
	sim      *vtime.Sim
	host     *transport.Host
	replica  string // owning replica id: scope for refresh counters
	dir      transport.Addr
	maxAge   time.Duration
	interval time.Duration
	stop     *vtime.Event
	// ctx roots the cache's own causal tree: refreshes are broker-side
	// maintenance, not part of any one tenant request. All refresh spans
	// merge under a single child node.
	ctx trace.Ctx

	mu        sync.Mutex
	records   []mds.Record
	fetchedAt time.Duration
	have      bool
}

func newCache(host *transport.Host, replica string, dir transport.Addr, maxAge, interval, offset time.Duration) *cache {
	sim := host.Network().Sim()
	if replica == "" {
		replica = host.Name()
	}
	c := &cache{
		sim:      sim,
		host:     host,
		replica:  replica,
		dir:      dir,
		maxAge:   maxAge,
		interval: interval,
		stop:     vtime.NewEvent(sim, "broker-cache-stop:"+host.Name()),
		ctx:      trace.NewRequest("cache@" + host.Name()).Child("refresh"),
	}
	sim.GoDaemon("broker-cache:"+host.Name(), func() {
		// The offset keeps periodic refreshes off the instants where
		// publishers re-register, so a refresh never races a register
		// at the directory within one virtual instant.
		if c.stop.WaitTimeout(offset) {
			return
		}
		for {
			c.refresh()
			if c.stop.WaitTimeout(c.interval) {
				return
			}
		}
	})
	return c
}

func (c *cache) stopRefresh() { c.stop.Set() }

// refresh queries the directory and replaces the cached records. Failures
// (directory unreachable) keep the previous records; staleness accounting
// surfaces the gap.
func (c *cache) refresh() {
	start := c.sim.Now()
	client, err := mds.DialCtx(c.host, c.dir, c.ctx)
	if err != nil {
		c.count("refresh-error", c.replica, 1)
		return
	}
	records, err := client.Query(mds.Filter{})
	client.Close()
	if err != nil {
		c.count("refresh-error", c.replica, 1)
		return
	}
	c.mu.Lock()
	c.records = records
	c.fetchedAt = c.sim.Now()
	c.have = true
	c.mu.Unlock()
	c.count("refresh", c.replica, 1)
	c.host.Network().Tracer().SpanCtx(c.ctx, "broker", "cache-refresh", c.host.Name(), "cache", "", start,
		trace.Arg{Key: "records", Val: strconv.Itoa(len(records))})
}

// get returns the cached records on behalf of the given replica id,
// refreshing synchronously when the copy is older than the staleness
// bound, absent, or fetched before asOf (the view floor a forwarding
// replica demands). Counters classify every lookup as hit or stale under
// the requesting replica's key.
func (c *cache) get(origin string, asOf time.Duration) []mds.Record {
	if origin == "" {
		origin = c.replica
	}
	c.mu.Lock()
	fresh := c.have && c.sim.Now()-c.fetchedAt <= c.maxAge && c.fetchedAt >= asOf
	records := c.records
	c.mu.Unlock()
	if fresh {
		c.count("hit", origin, 1)
		return records
	}
	c.count("stale", origin, 1)
	c.refresh()
	c.mu.Lock()
	records = c.records
	c.mu.Unlock()
	return records
}

// peek returns the cached records, their age, and the fetch time without
// refreshing.
func (c *cache) peek() ([]mds.Record, time.Duration) {
	records, _, age := c.view()
	return records, age
}

// view returns the cached records with their fetch time and age.
func (c *cache) view() ([]mds.Record, time.Duration, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.have {
		return nil, 0, 0
	}
	return c.records, c.fetchedAt, c.sim.Now() - c.fetchedAt
}

func (c *cache) count(verb, scope string, delta int64) {
	c.host.Network().Counters().Add(trace.Key("broker", "cache", verb, scope), delta)
}
