package broker_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cogrid/internal/broker"
	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
)

func TestBackoffCapped(t *testing.T) {
	p := broker.DefaultRetryPolicy()
	// The stock policy caps at 5 minutes: 1m, 2m, 4m, then the cap.
	if d := p.BackoffFor(broker.ClassCommitTimeout, 3); d != 4*time.Minute {
		t.Errorf("third backoff = %v, want 4m", d)
	}
	if d := p.BackoffFor(broker.ClassCommitTimeout, 4); d != 5*time.Minute {
		t.Errorf("fourth backoff = %v, want the 5m cap", d)
	}
	if d := p.BackoffFor(broker.ClassCommitTimeout, 100); d != 5*time.Minute {
		t.Errorf("100th backoff = %v, want the 5m cap", d)
	}
	// A policy without its own cap falls back to DefaultMaxBackoff, even
	// at attempt counts where the uncapped float math would overflow into
	// a bogus (possibly negative) Duration.
	unset := broker.RetryPolicy{
		MaxAttempts:   1000,
		BackoffFactor: 2,
		Default:       broker.ClassDecision{Retry: true, Backoff: time.Minute},
	}
	for _, n := range []int{1, 10, 64, 500, 1000} {
		d := unset.BackoffFor(broker.ClassOther, n)
		if d <= 0 {
			t.Fatalf("backoff for attempt %d = %v, overflowed", n, d)
		}
		if d > broker.DefaultMaxBackoff {
			t.Errorf("backoff for attempt %d = %v, want <= %v", n, d, broker.DefaultMaxBackoff)
		}
	}
}

func TestFaultClass(t *testing.T) {
	cases := []struct {
		reason, want string
	}{
		{"gsi: rejected by server: unknown principal", "auth-rejected"},
		{"lost contact with resource manager", "lost-contact"},
		{"startup timeout after 2m0s", "slow-start"},
		{"submit: lrm: machine is down", "machine-down"},
		{"gram: dial m01:gram: host crashed", "unreachable"},
		{"resource manager reported failure: wall-time limit exceeded", "lrm-report"},
		{"processes exited before the co-allocation barrier", "early-exit"},
		{"some novel condition", "other"},
	}
	for _, tc := range cases {
		if got := broker.FaultClass(tc.reason); got != tc.want {
			t.Errorf("FaultClass(%q) = %q, want %q", tc.reason, got, tc.want)
		}
	}
}

// saturatedBroker is a fake broker endpoint that rejects every submission
// with a retry-after hint, for exercising the client's total budget.
type saturatedBroker struct {
	retryAfter time.Duration
	rejects    int
}

func (s *saturatedBroker) HandleCall(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
	s.rejects++
	return broker.Reply{Accepted: false, RetryAfter: s.retryAfter}, nil
}

func (s *saturatedBroker) HandleNotify(sc *rpc.ServerConn, method string, body json.RawMessage) {}

func TestSubmitWaitTotalBudget(t *testing.T) {
	g := grid.New(grid.Options{Seed: 1})
	srvHost := g.Net.AddHost("fake0")
	l, err := srvHost.Listen("broker")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	fake := &saturatedBroker{retryAfter: 10 * time.Second}
	rpc.Serve(g.Sim, l, fake, nil)

	const budget = 2 * time.Minute
	var elapsed time.Duration
	var rejects int
	var submitErr error
	simErr := g.Sim.Run("main", func() {
		host := g.Net.AddHost("t0")
		c, err := broker.Dial(host, transport.Addr{Host: "fake0", Service: "broker"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		start := g.Sim.Now()
		_, rejects, submitErr = c.SubmitWait(broker.Request{
			Tenant: "t", Sites: 1, ProcsPerSite: 1, Executable: "app",
		}, budget, 1000)
		elapsed = g.Sim.Now() - start
	})
	if simErr != nil {
		t.Fatalf("sim: %v", simErr)
	}
	if submitErr == nil {
		t.Fatalf("SubmitWait against a saturated broker succeeded")
	}
	if !strings.Contains(submitErr.Error(), "budget exhausted") {
		t.Errorf("error = %v, want budget exhausted", submitErr)
	}
	// The timeout is a total budget: ~12 rejection rounds at 10 s apart,
	// not 1000 rounds each granted a fresh 2-minute timeout.
	if elapsed > budget {
		t.Errorf("SubmitWait consumed %v, want <= the %v budget", elapsed, budget)
	}
	if elapsed < budget-15*time.Second {
		t.Errorf("SubmitWait gave up after %v, want close to the %v budget", elapsed, budget)
	}
	if rejects < 10 || rejects >= 1000 {
		t.Errorf("rejects = %d, want ~12 budget-bounded rounds", rejects)
	}
}

func TestAbandonedRequestStopsRetries(t *testing.T) {
	// No machines ever publish: every attempt fails no-candidates and the
	// policy wants to back off 30s, 60s, ... The client's 45-second
	// timeout becomes the request deadline, so the broker must abandon at
	// the second backoff instead of burning the remaining attempts.
	g := grid.New(grid.Options{Seed: 1, Trace: true})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		t.Fatalf("mds.NewServer: %v", err)
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
	b, err := broker.New(g.Net.AddHost("broker0"), core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}, broker.Options{
		Directory: dir,
		Workers:   1,
		Retry: broker.RetryPolicy{
			MaxAttempts:   10,
			BackoffFactor: 2,
			Default:       broker.ClassDecision{Retry: true, Backoff: 30 * time.Second},
		},
	})
	if err != nil {
		t.Fatalf("broker.New: %v", err)
	}
	var reply broker.Reply
	simErr := g.Sim.Run("main", func() {
		g.Sim.Sleep(time.Second)
		host := g.Net.AddHost("t0")
		c, err := broker.Dial(host, b.Contact())
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		reply, err = c.Submit(broker.Request{
			Tenant: "t", Sites: 2, ProcsPerSite: 8, Executable: "app",
		}, 45*time.Second)
		if err != nil {
			t.Errorf("Submit: %v", err)
		}
		// Give the broker room: had it kept retrying, attempts would land
		// at +90s, +210s, ... well inside this window.
		g.Sim.Sleep(10 * time.Minute)
	})
	if simErr != nil {
		t.Fatalf("sim: %v", simErr)
	}
	if reply.OK() {
		t.Fatalf("reply unexpectedly ok: %+v", reply)
	}
	if !strings.Contains(reply.Error, "abandoned") {
		t.Errorf("reply error = %q, want abandoned", reply.Error)
	}
	c := g.Counters
	if got := c.Get(trace.Key("broker", "request", "abandoned", "broker0")); got != 1 {
		t.Errorf("broker.request.abandoned = %d, want 1", got)
	}
	if got := c.Get(trace.Key("broker", "request", "fail", "broker0")); got != 0 {
		t.Errorf("broker.request.fail = %d, want 0 (abandoned, not failed)", got)
	}
	// Two attempts fit before the deadline; the rest must not run.
	if got := c.Get(trace.Key("broker", "retry", "no-candidates", "broker0")); got != 2 {
		t.Errorf("broker.retry.no-candidates = %d, want 2", got)
	}
}

func TestOrphanReapedAfterHangHeals(t *testing.T) {
	// One batch machine, fully occupied: the broker's subjob queues behind
	// the occupant. The machine then hangs, the attempt times out, and the
	// abort-time cancel cannot be confirmed — an orphan. When the machine
	// is restored, the reaper must land the cancel and the queued job must
	// die without ever holding processors.
	g := grid.New(grid.Options{Seed: 1, Trace: true})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		t.Fatalf("mds.NewServer: %v", err)
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
	m := g.AddMachine("m00", 8, lrm.Batch)
	mds.Publish(m, dir, g.Contact("m00"), 37*time.Second, 8)
	m.RegisterExecutable("hold", func(p *lrm.Proc) error {
		return p.Work(2*time.Minute, time.Second)
	})
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		rt.Barrier(true, "", 0)
		return nil
	})
	b, err := broker.New(g.Net.AddHost("broker0"), core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}, broker.Options{
		Directory:    dir,
		Workers:      1,
		ReapInterval: 30 * time.Second,
		Retry: broker.RetryPolicy{
			MaxAttempts: 1,
			Default:     broker.ClassDecision{Retry: false},
		},
	})
	if err != nil {
		t.Fatalf("broker.New: %v", err)
	}
	var reply broker.Reply
	simErr := g.Sim.Run("main", func() {
		// Fill the machine so the broker's subjob queues as PENDING.
		if _, err := m.Submit(lrm.JobSpec{Executable: "hold", Count: 8}); err != nil {
			t.Errorf("occupant submit: %v", err)
			return
		}
		g.Sim.Sleep(10 * time.Second)
		// Hang the machine once the subjob has been queued there.
		g.Sim.AfterFunc(20*time.Second, func() { m.Host().Hang() })
		// Heal well after the failed cancel has been recorded.
		g.Sim.AfterFunc(4*time.Minute, func() { m.Host().Restore() })
		host := g.Net.AddHost("t0")
		c, err := broker.Dial(host, b.Contact())
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		defer c.Close()
		reply, err = c.Submit(broker.Request{
			Tenant:        "t",
			Sites:         1,
			ProcsPerSite:  8,
			Executable:    "app",
			CommitTimeout: time.Minute,
		}, 0)
		if err != nil {
			t.Errorf("Submit: %v", err)
		}
		// Run past the heal plus a reap sweep.
		g.Sim.SleepUntil(6 * time.Minute)
	})
	if simErr != nil {
		t.Fatalf("sim: %v", simErr)
	}
	if reply.OK() {
		t.Fatalf("reply unexpectedly ok: %+v", reply)
	}
	c := g.Counters
	if got := c.Get(trace.Key("broker", "orphan", "record", "broker0")); got != 1 {
		t.Errorf("broker.orphan.record = %d, want 1", got)
	}
	if got := c.Get(trace.Key("broker", "orphan", "reaped", "broker0")); got != 1 {
		t.Errorf("broker.orphan.reaped = %d, want 1", got)
	}
	if got := b.OrphansPending(); got != 0 {
		t.Errorf("OrphansPending = %d, want 0", got)
	}
	if got := m.LiveJobs(); got != 0 {
		t.Errorf("LiveJobs = %d, want 0 (queued subjob reaped, occupant done)", got)
	}
}

func TestBrokerDialClosesConnOnHandshakeFailure(t *testing.T) {
	// Dialing a host with no broker service must not leak the transport
	// connection. The transport errors the dial itself when nothing
	// listens, so exercise the error path and then confirm the dialing
	// host can still open its full connection budget elsewhere.
	g := grid.New(grid.Options{Seed: 1})
	g.Net.AddHost("empty0")
	err := g.Sim.Run("main", func() {
		host := g.Net.AddHost("t0")
		if _, err := broker.Dial(host, transport.Addr{Host: "empty0", Service: "broker"}); err == nil {
			t.Errorf("Dial to host without broker service succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
