// Package broker implements a multi-tenant co-allocation broker: the
// collective-layer resource broker the paper's architecture names but
// deliberately leaves above DUROC ("some other agent" must pick the
// resources, Section 2.2).
//
// The broker runs as a long-lived simulated process and serves
// co-allocation requests over internal/rpc from many concurrent clients.
// It closes the resource-selection loop the mechanism layer leaves open:
//
//   - a staleness-aware cache of MDS records, refreshed periodically
//     instead of queried per request (cache.go);
//   - candidate selection by published queue-wait forecasts
//     (agent.SelectByForecast);
//   - a bounded admission queue with backpressure — saturated brokers
//     reject with a retry-after hint rather than queueing unboundedly;
//   - per-tenant round-robin fairness, so one flooding client cannot
//     starve the others;
//   - a per-failure-class retry/backoff-and-substitute policy (retry.go)
//     built on the agent strategies, driving each admitted request
//     through DUROC until it commits or the policy gives up.
//
// Every decision is instrumented with trace events (category "broker")
// and layer.object.verb@scope counters, so a load study can read queue
// depth, admission rejects, cache staleness, retries, and end-to-end
// latency out of one run.
package broker

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/core"
	"cogrid/internal/mds"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// ServiceName is the transport service the broker listens on.
const ServiceName = "broker"

// Defaults for Options zero values.
const (
	DefaultQueueBound      = 16
	DefaultWorkers         = 4
	DefaultCacheMaxAge     = 2 * time.Minute
	DefaultRefreshInterval = time.Minute
	DefaultRefreshOffset   = 5 * time.Second
	DefaultRetryAfter      = 30 * time.Second
	DefaultCommitTimeout   = 30 * time.Minute
)

// Options configures a broker.
type Options struct {
	// Directory is the MDS the broker caches records from.
	Directory transport.Addr
	// QueueBound caps requests waiting for a worker; submissions beyond
	// it are rejected with a retry-after hint. Default DefaultQueueBound.
	QueueBound int
	// Workers is the number of co-allocations driven concurrently.
	// Default DefaultWorkers.
	Workers int
	// CacheMaxAge is the staleness bound: a lookup older than this
	// refreshes synchronously. Default DefaultCacheMaxAge.
	CacheMaxAge time.Duration
	// RefreshInterval is the periodic background refresh. Default
	// DefaultRefreshInterval.
	RefreshInterval time.Duration
	// RefreshOffset delays the first background refresh, keeping it off
	// the t=0 instant where every publisher's initial registration is
	// still in flight. Default DefaultRefreshOffset.
	RefreshOffset time.Duration
	// RetryAfter is the hint returned with admission rejections.
	// Default DefaultRetryAfter.
	RetryAfter time.Duration
	// Retry is the per-failure-class policy. Zero value replaced by
	// DefaultRetryPolicy().
	Retry RetryPolicy
}

func (o *Options) fill() {
	if o.QueueBound <= 0 {
		o.QueueBound = DefaultQueueBound
	}
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
	}
	if o.CacheMaxAge <= 0 {
		o.CacheMaxAge = DefaultCacheMaxAge
	}
	if o.RefreshInterval <= 0 {
		o.RefreshInterval = DefaultRefreshInterval
	}
	if o.RefreshOffset <= 0 {
		o.RefreshOffset = DefaultRefreshOffset
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	if o.Retry.MaxAttempts == 0 {
		o.Retry = DefaultRetryPolicy()
	}
}

// Request is one tenant's co-allocation ask: Sites subjobs of
// ProcsPerSite processes each, placed on the best forecast candidates,
// with Spares extra candidates held back as the substitution pool.
type Request struct {
	Tenant       string `json:"tenant"`
	Sites        int    `json:"sites"`
	ProcsPerSite int    `json:"procs_per_site"`
	Executable   string `json:"executable"`
	// Spares is how many extra candidates beyond Sites are selected into
	// the substitution pool.
	Spares int `json:"spares,omitempty"`
	// CommitTimeout bounds each co-allocation attempt. Default
	// DefaultCommitTimeout.
	CommitTimeout time.Duration `json:"commit_timeout,omitempty"`
	// StartupTimeout bounds each subjob's submission-to-check-in (0 =
	// controller default).
	StartupTimeout time.Duration `json:"startup_timeout,omitempty"`
	// MaxTime is the batch wall-time limit per subjob (0 = none).
	MaxTime time.Duration `json:"max_time,omitempty"`
}

// Reply reports the outcome of one submission.
type Reply struct {
	// Accepted is false when the broker's admission queue was full; the
	// client should wait RetryAfter and resubmit.
	Accepted   bool          `json:"accepted"`
	RetryAfter time.Duration `json:"retry_after,omitempty"`
	// JobID identifies the committed co-allocation (empty on failure).
	JobID         string `json:"job_id,omitempty"`
	Attempts      int    `json:"attempts,omitempty"`
	Substitutions int    `json:"substitutions,omitempty"`
	WorldSize     int    `json:"world_size,omitempty"`
	// QueueWait is the time spent waiting for a worker; Elapsed the
	// broker-side end-to-end time from admission to outcome.
	QueueWait time.Duration `json:"queue_wait,omitempty"`
	Elapsed   time.Duration `json:"elapsed,omitempty"`
	// Error is the terminal failure after retries were exhausted.
	Error string `json:"error,omitempty"`
}

// OK reports whether the request was admitted and committed.
func (r Reply) OK() bool { return r.Accepted && r.Error == "" }

// ticket is one admitted request waiting for, or being driven by, a
// worker.
type ticket struct {
	id         int
	req        Request
	enqueuedAt time.Duration
	done       *vtime.Event
	reply      Reply
}

// Broker is a running broker service.
type Broker struct {
	sim  *vtime.Sim
	host *transport.Host
	ctrl *core.Controller
	opts Options

	cache  *cache
	server *rpc.Server

	mu      sync.Mutex
	queues  map[string][]*ticket // per-tenant FIFO
	ring    []string             // tenant round-robin order (first arrival)
	ringPos int
	queued  int // total tickets waiting for a worker
	nextID  int

	wake     *vtime.Chan[struct{}] // kicks the dispatcher on enqueue
	ready    *vtime.Chan[struct{}] // a worker announcing it is idle
	dispatch *vtime.Chan[*ticket]  // rendezvous: dispatcher -> idle worker
}

// New starts a broker on host: a DUROC controller for its own use, the
// broker RPC endpoint, the cache refresh daemon, the dispatcher, and the
// worker pool. The controller submits with ctrlCfg's credential.
func New(host *transport.Host, ctrlCfg core.ControllerConfig, opts Options) (*Broker, error) {
	opts.fill()
	ctrl, err := core.NewController(host, ctrlCfg)
	if err != nil {
		return nil, err
	}
	sim := host.Network().Sim()
	b := &Broker{
		sim:      sim,
		host:     host,
		ctrl:     ctrl,
		opts:     opts,
		cache:    newCache(host, opts.Directory, opts.CacheMaxAge, opts.RefreshInterval, opts.RefreshOffset),
		queues:   make(map[string][]*ticket),
		wake:     vtime.NewChan[struct{}](sim, "broker-wake:"+host.Name(), 1),
		ready:    vtime.NewChan[struct{}](sim, "broker-ready:"+host.Name(), 0),
		dispatch: vtime.NewChan[*ticket](sim, "broker-dispatch:"+host.Name(), 0),
	}
	l, err := host.Listen(ServiceName)
	if err != nil {
		return nil, err
	}
	b.server = rpc.Serve(sim, l, rpc.HandlerFuncs{Call: b.handleCall}, nil)
	sim.GoDaemon("broker-dispatch:"+host.Name(), b.dispatcher)
	for i := 0; i < opts.Workers; i++ {
		sim.GoDaemon(fmt.Sprintf("broker-worker%d:%s", i, host.Name()), b.worker)
	}
	return b, nil
}

// Contact returns the broker's service address.
func (b *Broker) Contact() transport.Addr {
	return transport.Addr{Host: b.host.Name(), Service: ServiceName}
}

// Controller exposes the broker's DUROC controller (for tests).
func (b *Broker) Controller() *core.Controller { return b.ctrl }

// QueueDepth returns the number of requests waiting for a worker.
func (b *Broker) QueueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queued
}

// Close stops accepting connections and halts the cache refresh daemon.
// In-flight requests run to completion.
func (b *Broker) Close() {
	b.server.Close()
	b.cache.stopRefresh()
}

func (b *Broker) tracer() *trace.Tracer     { return b.host.Network().Tracer() }
func (b *Broker) counters() *trace.Counters { return b.host.Network().Counters() }

// count increments broker.object.verb@<broker-host>.
func (b *Broker) count(object, verb string, delta int64) {
	b.counters().Add(trace.Key("broker", object, verb, b.host.Name()), delta)
}

func (b *Broker) handleCall(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
	switch method {
	case "submit":
		var req Request
		if err := rpc.Decode(body, &req); err != nil {
			return nil, err
		}
		return b.submit(req)
	case "stats":
		return b.stats(), nil
	}
	return nil, fmt.Errorf("broker: unknown method %s", method)
}

// Stats is a point-in-time snapshot served to clients.
type Stats struct {
	QueueDepth int           `json:"queue_depth"`
	QueueBound int           `json:"queue_bound"`
	Workers    int           `json:"workers"`
	Tenants    int           `json:"tenants"`
	CacheAge   time.Duration `json:"cache_age"`
	CacheSize  int           `json:"cache_size"`
}

func (b *Broker) stats() Stats {
	records, age := b.cache.peek()
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		QueueDepth: b.queued,
		QueueBound: b.opts.QueueBound,
		Workers:    b.opts.Workers,
		Tenants:    len(b.ring),
		CacheAge:   age,
		CacheSize:  len(records),
	}
}

// submit is the blocking server side of one request: admission control,
// then wait for the worker-driven outcome. It runs in the per-connection
// RPC loop, so each connection has at most one request in flight — the
// many-clients concurrency lives in the many connections.
func (b *Broker) submit(req Request) (Reply, error) {
	if req.Sites <= 0 || req.ProcsPerSite <= 0 {
		return Reply{}, fmt.Errorf("broker: need sites > 0 and procs_per_site > 0")
	}
	if req.Executable == "" {
		return Reply{}, fmt.Errorf("broker: missing executable")
	}
	if req.Tenant == "" {
		req.Tenant = "anonymous"
	}
	if req.CommitTimeout <= 0 {
		req.CommitTimeout = DefaultCommitTimeout
	}

	b.mu.Lock()
	if b.queued >= b.opts.QueueBound {
		depth := b.queued
		b.mu.Unlock()
		b.count("queue", "reject", 1)
		b.counters().Add(trace.Key("broker", "tenant", "reject", req.Tenant), 1)
		b.tracer().Instant("broker", "reject", b.host.Name(), req.Tenant, "",
			trace.Arg{Key: "depth", Val: strconv.Itoa(depth)},
			trace.Arg{Key: "retry_after", Val: b.opts.RetryAfter.String()})
		return Reply{Accepted: false, RetryAfter: b.opts.RetryAfter}, nil
	}
	b.nextID++
	t := &ticket{
		id:         b.nextID,
		req:        req,
		enqueuedAt: b.sim.Now(),
		done:       vtime.NewEvent(b.sim, fmt.Sprintf("broker-ticket:%d", b.nextID)),
	}
	if _, known := b.queues[req.Tenant]; !known {
		b.ring = append(b.ring, req.Tenant)
	}
	b.queues[req.Tenant] = append(b.queues[req.Tenant], t)
	b.queued++
	depth := b.queued
	b.mu.Unlock()

	b.count("queue", "enqueue", 1)
	b.tracer().Instant("broker", "enqueue", b.host.Name(), req.Tenant, b.corr(t),
		trace.Arg{Key: "depth", Val: strconv.Itoa(depth)})
	b.wake.TrySend(struct{}{})

	t.done.Wait()
	return t.reply, nil
}

// corr is the correlation ID tying one ticket's queue-wait, attempts, and
// request span together.
func (b *Broker) corr(t *ticket) string { return b.host.Name() + "#req" + strconv.Itoa(t.id) }

// dispatcher pops tickets in per-tenant round-robin order and hands each
// to an idle worker. A ticket leaves the queue only once a worker has
// announced readiness, so QueueDepth and the admission bound account for
// every waiting request exactly.
func (b *Broker) dispatcher() {
	for {
		b.ready.Recv()
		for {
			t := b.pop()
			if t != nil {
				b.dispatch.Send(t)
				break
			}
			b.wake.Recv()
		}
	}
}

// pop removes the next ticket by round-robin across tenants with waiting
// requests. The ring preserves first-arrival tenant order, making the
// schedule deterministic.
func (b *Broker) pop() *ticket {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.ring)
	for i := 0; i < n; i++ {
		tenant := b.ring[(b.ringPos+i)%n]
		q := b.queues[tenant]
		if len(q) == 0 {
			continue
		}
		t := q[0]
		b.queues[tenant] = q[1:]
		b.queued--
		b.ringPos = (b.ringPos + i + 1) % n
		return t
	}
	return nil
}

// worker drives admitted requests through DUROC, one at a time,
// announcing idleness to the dispatcher between requests.
func (b *Broker) worker() {
	for {
		b.ready.Send(struct{}{})
		t, ok := b.dispatch.Recv()
		if !ok {
			return
		}
		b.serve(t)
	}
}

// serve runs one ticket to a terminal reply: select candidates from the
// cache, drive the co-allocation with substitution, and on failure apply
// the per-class retry policy.
func (b *Broker) serve(t *ticket) {
	req := t.req
	dequeuedAt := b.sim.Now()
	b.count("queue", "dequeue", 1)
	b.tracer().SpanAt("broker", "queue-wait", b.host.Name(), req.Tenant, b.corr(t),
		t.enqueuedAt, dequeuedAt)

	var reply Reply
	reply.Accepted = true
	reply.QueueWait = dequeuedAt - t.enqueuedAt

	policy := b.opts.Retry
	var lastErr error
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		reply.Attempts = attempt
		res, err := b.attempt(t, attempt)
		if err == nil {
			reply.JobID = res.Job.ID()
			reply.Substitutions += res.Substitutions
			reply.WorldSize = res.Config.WorldSize
			break
		}
		lastErr = err
		class := Classify(err)
		b.count("retry", string(class), 1)
		decision := policy.For(class)
		if !decision.Retry || attempt == policy.MaxAttempts {
			reply.Error = err.Error()
			break
		}
		backoff := policy.BackoffFor(class, attempt)
		b.tracer().Instant("broker", "backoff", b.host.Name(), req.Tenant, b.corr(t),
			trace.Arg{Key: "class", Val: string(class)},
			trace.Arg{Key: "backoff", Val: backoff.String()})
		b.sim.Sleep(backoff)
		if class == ClassNoCandidates {
			// A fresh-but-thin cache would fail identically; force a
			// refresh so the next attempt sees newly published records.
			b.cache.refresh()
		}
	}
	_ = lastErr

	reply.Elapsed = b.sim.Now() - t.enqueuedAt
	outcome := "ok"
	if reply.Error != "" {
		outcome = "fail"
	}
	b.count("request", outcome, 1)
	b.counters().Add(trace.Key("broker", "tenant", outcome, req.Tenant), 1)
	b.tracer().SpanAt("broker", "request", b.host.Name(), req.Tenant, b.corr(t),
		t.enqueuedAt, b.sim.Now(),
		trace.Arg{Key: "outcome", Val: outcome},
		trace.Arg{Key: "attempts", Val: strconv.Itoa(reply.Attempts)})
	t.reply = reply
	t.done.Set()
}

// attempt performs one candidate selection and one substitution-strategy
// co-allocation for t.
func (b *Broker) attempt(t *ticket, attempt int) (agent.Result, error) {
	req := t.req
	start := b.sim.Now()
	records := b.cache.get()
	want := req.Sites + req.Spares
	// Selection trusts the published forecasts exactly (sigma 0): broker
	// determinism must not depend on concurrent draw order from the
	// kernel's shared RNG.
	candidates := agent.SelectByForecast(records, req.ProcsPerSite, want, 0, nil)
	finish := func(outcome string) {
		b.tracer().Span("broker", "attempt", b.host.Name(), req.Tenant, b.corr(t), start,
			trace.Arg{Key: "n", Val: strconv.Itoa(attempt)},
			trace.Arg{Key: "outcome", Val: outcome})
	}
	if len(candidates) < req.Sites {
		finish(string(ClassNoCandidates))
		return agent.Result{}, fmt.Errorf("%w: %d of %d sites available",
			ErrNoCandidates, len(candidates), req.Sites)
	}
	creq := core.Request{}
	for i := 0; i < req.Sites; i++ {
		contact, err := transport.ParseAddr(candidates[i].Contact)
		if err != nil {
			finish("bad-contact")
			return agent.Result{}, fmt.Errorf("broker: record %q: %v", candidates[i].Name, err)
		}
		creq.Subjobs = append(creq.Subjobs, core.SubjobSpec{
			Label:          fmt.Sprintf("req%d.%d/%s", t.id, attempt, candidates[i].Name),
			Contact:        contact,
			Count:          req.ProcsPerSite,
			Executable:     req.Executable,
			Type:           core.Interactive,
			MaxTime:        req.MaxTime,
			StartupTimeout: req.StartupTimeout,
		})
	}
	var pool []transport.Addr
	for _, rec := range candidates[req.Sites:] {
		contact, err := transport.ParseAddr(rec.Contact)
		if err != nil {
			continue
		}
		pool = append(pool, contact)
	}
	res, err := agent.WithSubstitution(b.ctrl, creq, agent.SubstituteOptions{
		Pool:          pool,
		CommitTimeout: req.CommitTimeout,
	})
	if err != nil {
		finish(string(Classify(err)))
		return res, err
	}
	finish("ok")
	return res, nil
}

// RecordsForTest exposes the cache contents (for tests).
func (b *Broker) RecordsForTest() []mds.Record {
	records, _ := b.cache.peek()
	return records
}
