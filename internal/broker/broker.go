// Package broker implements a multi-tenant co-allocation broker: the
// collective-layer resource broker the paper's architecture names but
// deliberately leaves above DUROC ("some other agent" must pick the
// resources, Section 2.2).
//
// The broker runs as a long-lived simulated process and serves
// co-allocation requests over internal/rpc from many concurrent clients.
// It closes the resource-selection loop the mechanism layer leaves open:
//
//   - a staleness-aware cache of MDS records, refreshed periodically
//     instead of queried per request (cache.go);
//   - candidate selection by published queue-wait forecasts
//     (agent.SelectByForecast);
//   - a bounded admission queue with backpressure — saturated brokers
//     reject with a retry-after hint rather than queueing unboundedly;
//   - per-tenant round-robin fairness, so one flooding client cannot
//     starve the others;
//   - a per-failure-class retry/backoff-and-substitute policy (retry.go)
//     built on the agent strategies, driving each admitted request
//     through DUROC until it commits or the policy gives up.
//
// Every decision is instrumented with trace events (category "broker")
// and layer.object.verb@scope counters, so a load study can read queue
// depth, admission rejects, cache staleness, retries, and end-to-end
// latency out of one run.
package broker

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/core"
	"cogrid/internal/flightrec"
	"cogrid/internal/gram"
	"cogrid/internal/mds"
	"cogrid/internal/metrics"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// ServiceName is the transport service the broker listens on.
const ServiceName = "broker"

// Defaults for Options zero values.
const (
	DefaultQueueBound      = 16
	DefaultWorkers         = 4
	DefaultCacheMaxAge     = 2 * time.Minute
	DefaultRefreshInterval = time.Minute
	DefaultRefreshOffset   = 5 * time.Second
	DefaultRetryAfter      = 30 * time.Second
	DefaultCommitTimeout   = 30 * time.Minute
	// DefaultReapInterval paces the orphan reaper's retry sweeps. Off
	// the minute boundary so sweeps don't pile onto publisher rounds.
	DefaultReapInterval = 45 * time.Second
)

// watchdogGrace is how far past its commit budget one attempt may run
// before the per-attempt watchdog aborts it: the margin within which the
// substitution agent's own timeout is expected to fire first.
const watchdogGrace = 30 * time.Second

// reapCancelTimeout bounds each reap-sweep cancel RPC, so one still-hung
// resource manager delays, but cannot stall, a sweep.
const reapCancelTimeout = 30 * time.Second

// Options configures a broker.
type Options struct {
	// Directory is the MDS the broker caches records from.
	Directory transport.Addr
	// QueueBound caps requests waiting for a worker; submissions beyond
	// it are rejected with a retry-after hint. Default DefaultQueueBound.
	QueueBound int
	// Workers is the number of co-allocations driven concurrently.
	// Default DefaultWorkers.
	Workers int
	// CacheMaxAge is the staleness bound: a lookup older than this
	// refreshes synchronously. Default DefaultCacheMaxAge.
	CacheMaxAge time.Duration
	// RefreshInterval is the periodic background refresh. Default
	// DefaultRefreshInterval.
	RefreshInterval time.Duration
	// RefreshOffset delays the first background refresh, keeping it off
	// the t=0 instant where every publisher's initial registration is
	// still in flight. Default DefaultRefreshOffset.
	RefreshOffset time.Duration
	// RetryAfter is the hint returned with admission rejections.
	// Default DefaultRetryAfter.
	RetryAfter time.Duration
	// ReapInterval paces the orphan reaper: how often unconfirmed
	// subjob cancellations are retried at their resource managers.
	// Default DefaultReapInterval.
	ReapInterval time.Duration
	// Retry is the per-failure-class policy. Zero value replaced by
	// DefaultRetryPolicy().
	Retry RetryPolicy

	// ReplicaID identifies this broker instance inside a federation; it
	// keys every per-broker counter, gauge, and cache-staleness account,
	// so forwarded requests are attributed to the replica that decided
	// them rather than to whichever process served them. Defaults to the
	// host name, which preserves the single-broker behavior exactly.
	ReplicaID string
	// CandidateFilter, when set, restricts candidate selection to a
	// subset of the cached directory records — a federation replica
	// passes its shard here so it only co-allocates machines it owns.
	// The filter must be deterministic and must not retain the slice.
	CandidateFilter func([]mds.Record) []mds.Record
	// Forward, when set, is offered requests that failed locally with
	// ErrNoCandidates — a federation replica forwards them to the peer
	// whose shard has capacity. Returning a committed reply ends the
	// request; ErrForwardUnavailable resumes the local retry policy;
	// ErrForwardIndeterminate terminates the request without further
	// attempts (a retry after an unacknowledged forward could allocate
	// twice).
	Forward func(req Request, ctx trace.Ctx) (Reply, error)
	// OnTicket, when set, observes ticket lifecycle transitions (open at
	// worker pickup, close at terminal reply) — the federation's journal
	// feed. Must not block.
	OnTicket func(ev TicketEvent)
	// OnOrphan, when set, is called for every orphan recorded (in
	// addition to the broker's own reaper taking it). Must not block.
	OnOrphan func(o core.Orphan)
	// OnReap, when set, is called with the orphan's job/subjob key after
	// the broker's own reaper confirms its cancellation. Must not block.
	OnReap func(key string)
}

// TicketEvent is one ticket lifecycle transition offered to
// Options.OnTicket.
type TicketEvent struct {
	// Kind is "open" (worker picked the ticket up) or "close" (terminal
	// reply produced).
	Kind string
	// Ticket is the replica-unique correlation id (ReplicaID + "#reqN").
	Ticket string
	// Key is the request's idempotency key (empty if the client set none).
	Key    string
	Tenant string
	// JobIDs lists every DUROC job the ticket's attempts created; close
	// only. All their allocations are settled once the ticket closes.
	JobIDs []string
	// JobID is the committed co-allocation; empty on failure or when the
	// outcome came from a forwarded peer (Forwarded true), whose own
	// broker journals the commit.
	JobID     string
	Forwarded bool
	Err       string
}

func (o *Options) fill() {
	if o.QueueBound <= 0 {
		o.QueueBound = DefaultQueueBound
	}
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
	}
	if o.CacheMaxAge <= 0 {
		o.CacheMaxAge = DefaultCacheMaxAge
	}
	if o.RefreshInterval <= 0 {
		o.RefreshInterval = DefaultRefreshInterval
	}
	if o.RefreshOffset <= 0 {
		o.RefreshOffset = DefaultRefreshOffset
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = DefaultRetryAfter
	}
	if o.ReapInterval <= 0 {
		o.ReapInterval = DefaultReapInterval
	}
	if o.Retry.MaxAttempts == 0 {
		o.Retry = DefaultRetryPolicy()
	}
}

// fillHost defaults ReplicaID to the host name; split from fill so fill
// stays host-independent.
func (o *Options) fillHost(host *transport.Host) {
	if o.ReplicaID == "" {
		o.ReplicaID = host.Name()
	}
}

// Request is one tenant's co-allocation ask: Sites subjobs of
// ProcsPerSite processes each, placed on the best forecast candidates,
// with Spares extra candidates held back as the substitution pool.
type Request struct {
	Tenant       string `json:"tenant"`
	Sites        int    `json:"sites"`
	ProcsPerSite int    `json:"procs_per_site"`
	Executable   string `json:"executable"`
	// Spares is how many extra candidates beyond Sites are selected into
	// the substitution pool.
	Spares int `json:"spares,omitempty"`
	// CommitTimeout bounds each co-allocation attempt. Default
	// DefaultCommitTimeout.
	CommitTimeout time.Duration `json:"commit_timeout,omitempty"`
	// StartupTimeout bounds each subjob's submission-to-check-in (0 =
	// controller default).
	StartupTimeout time.Duration `json:"startup_timeout,omitempty"`
	// MaxTime is the batch wall-time limit per subjob (0 = none).
	MaxTime time.Duration `json:"max_time,omitempty"`
	// Deadline is the absolute virtual time past which the client has
	// abandoned this request (its RPC timeout will have fired); zero
	// means none. The broker threads it through queue wait, attempt
	// budgets, and backoff sleeps: once it passes, the request is marked
	// abandoned instead of burning further attempts into the void.
	// Client.Submit stamps it from its timeout; client and broker share
	// one virtual clock, so no skew correction is needed.
	Deadline time.Duration `json:"deadline,omitempty"`
	// Key is an idempotency key naming the co-allocation across the
	// whole federation: forwarded copies of a request carry the same
	// key, and the at-most-once invariant is "at most one committed
	// co-allocation per key". Empty outside federations.
	Key string `json:"key,omitempty"`
	// Origin is the replica id that first admitted the request; stamped
	// by the forwarding replica so the serving replica attributes cache
	// consultations and counters to the decider. Empty means local.
	Origin string `json:"origin,omitempty"`
	// Hops counts broker-to-broker forwards this request has taken.
	Hops int `json:"hops,omitempty"`
	// ViewAsOf is the fetch time of the directory view the forwarding
	// replica decided on. The serving replica refuses to select from a
	// cache older than this: a forward must never be answered from a
	// view staler than the one that justified it.
	ViewAsOf time.Duration `json:"view_as_of,omitempty"`
}

// Reply reports the outcome of one submission.
type Reply struct {
	// Accepted is false when the broker's admission queue was full; the
	// client should wait RetryAfter and resubmit.
	Accepted   bool          `json:"accepted"`
	RetryAfter time.Duration `json:"retry_after,omitempty"`
	// JobID identifies the committed co-allocation (empty on failure).
	JobID         string `json:"job_id,omitempty"`
	Attempts      int    `json:"attempts,omitempty"`
	Substitutions int    `json:"substitutions,omitempty"`
	WorldSize     int    `json:"world_size,omitempty"`
	// QueueWait is the time spent waiting for a worker; Elapsed the
	// broker-side end-to-end time from admission to outcome.
	QueueWait time.Duration `json:"queue_wait,omitempty"`
	Elapsed   time.Duration `json:"elapsed,omitempty"`
	// Hops is how many broker-to-broker forwards served this request
	// (0 = the broker the client dialed committed it from its own shard).
	Hops int `json:"hops,omitempty"`
	// Error is the terminal failure after retries were exhausted.
	Error string `json:"error,omitempty"`
}

// OK reports whether the request was admitted and committed.
func (r Reply) OK() bool { return r.Accepted && r.Error == "" }

// ticket is one admitted request waiting for, or being driven by, a
// worker.
type ticket struct {
	id         int
	req        Request
	ctx        trace.Ctx // causal span context: adopted from the client, else rooted at corr
	enqueuedAt time.Duration
	done       *vtime.Event
	reply      Reply
}

// Broker is a running broker service.
type Broker struct {
	sim     *vtime.Sim
	host    *transport.Host
	ctrl    *core.Controller
	ctrlCfg core.ControllerConfig // kept for reap-sweep redials
	opts    Options

	cache  *cache
	server *rpc.Server

	mu      sync.Mutex
	queues  map[string][]*ticket // per-tenant FIFO
	ring    []string             // tenant round-robin order (first arrival)
	ringPos int
	queued  int // total tickets waiting for a worker
	nextID  int
	orphans map[string]core.Orphan // unconfirmed cancels awaiting reap

	wake     *vtime.Chan[struct{}] // kicks the dispatcher on enqueue
	ready    *vtime.Chan[struct{}] // a worker announcing it is idle
	dispatch *vtime.Chan[*ticket]  // rendezvous: dispatcher -> idle worker
	reapStop *vtime.Event          // halts the orphan reaper
}

// New starts a broker on host: a DUROC controller for its own use, the
// broker RPC endpoint, the cache refresh daemon, the dispatcher, the
// worker pool, and the orphan reaper. The controller submits with
// ctrlCfg's credential; subjobs whose cancellation the controller cannot
// confirm are handed to the reaper, which retries them until their
// resource managers answer.
func New(host *transport.Host, ctrlCfg core.ControllerConfig, opts Options) (*Broker, error) {
	opts.fill()
	opts.fillHost(host)
	sim := host.Network().Sim()
	b := &Broker{
		sim:      sim,
		host:     host,
		ctrlCfg:  ctrlCfg,
		opts:     opts,
		queues:   make(map[string][]*ticket),
		orphans:  make(map[string]core.Orphan),
		wake:     vtime.NewChan[struct{}](sim, "broker-wake:"+host.Name(), 1),
		ready:    vtime.NewChan[struct{}](sim, "broker-ready:"+host.Name(), 0),
		dispatch: vtime.NewChan[*ticket](sim, "broker-dispatch:"+host.Name(), 0),
		reapStop: vtime.NewEvent(sim, "broker-reap-stop:"+host.Name()),
	}
	ctrlCfg.OnOrphan = b.addOrphan
	if opts.OnOrphan != nil {
		hook := opts.OnOrphan
		ctrlCfg.OnOrphan = func(o core.Orphan) {
			b.addOrphan(o)
			hook(o)
		}
	}
	ctrl, err := core.NewController(host, ctrlCfg)
	if err != nil {
		return nil, err
	}
	b.ctrl = ctrl
	l, err := host.Listen(ServiceName)
	if err != nil {
		// Tear the controller (and its barrier listener) back down: a
		// half-constructed broker must not leak it.
		ctrl.Close()
		return nil, err
	}
	// The cache starts its refresh daemon immediately, so it is created
	// only after every fallible construction step has passed.
	b.cache = newCache(host, opts.ReplicaID, opts.Directory, opts.CacheMaxAge, opts.RefreshInterval, opts.RefreshOffset)
	b.server = rpc.Serve(sim, l, rpc.HandlerFuncs{Call: b.handleCall}, nil)
	sim.GoDaemon("broker-dispatch:"+host.Name(), b.dispatcher)
	for i := 0; i < opts.Workers; i++ {
		sim.GoDaemon(fmt.Sprintf("broker-worker%d:%s", i, host.Name()), b.worker)
	}
	sim.GoDaemon("broker-reaper:"+host.Name(), b.reaper)
	return b, nil
}

// Contact returns the broker's service address.
func (b *Broker) Contact() transport.Addr {
	return transport.Addr{Host: b.host.Name(), Service: ServiceName}
}

// Controller exposes the broker's DUROC controller (for tests).
func (b *Broker) Controller() *core.Controller { return b.ctrl }

// QueueDepth returns the number of requests waiting for a worker.
func (b *Broker) QueueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queued
}

// Close stops accepting connections and halts the cache refresh and
// orphan-reap daemons. In-flight requests run to completion. The DUROC
// controller (and its barrier listener) deliberately stays up: committed
// computations outlive their broker replies and still need the barrier
// endpoint and cancel paths — the construction-time listener leak lived
// in New's error path, which tears the controller down itself. Orphans
// still pending when Close is called are abandoned; drain them first via
// OrphansPending if that matters.
func (b *Broker) Close() {
	b.server.Close()
	b.cache.stopRefresh()
	b.reapStop.Set()
}

// OrphansPending reports how many unconfirmed cancellations await a
// successful reap. Zero after quiescence means no subjob leaked.
func (b *Broker) OrphansPending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.orphans)
}

func (b *Broker) tracer() *trace.Tracer          { return b.host.Network().Tracer() }
func (b *Broker) counters() *trace.Counters      { return b.host.Network().Counters() }
func (b *Broker) gauges() *metrics.GaugeSet      { return b.host.Network().Gauges() }
func (b *Broker) hists() *metrics.HistogramSet   { return b.host.Network().Hists() }
func (b *Broker) samples() *metrics.SampleLogSet { return b.host.Network().Samples() }
func (b *Broker) flight() *flightrec.Recorder    { return b.host.Network().FlightRec() }

// count increments broker.object.verb@<replica-id> (the host name
// outside federations).
func (b *Broker) count(object, verb string, delta int64) {
	b.counters().Add(trace.Key("broker", object, verb, b.opts.ReplicaID), delta)
}

func (b *Broker) handleCall(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
	switch method {
	case "submit":
		var req Request
		if err := rpc.Decode(body, &req); err != nil {
			return nil, err
		}
		return b.submit(req, sc.Ctx)
	case "stats":
		return b.stats(), nil
	}
	return nil, fmt.Errorf("broker: unknown method %s", method)
}

// Stats is a point-in-time snapshot served to clients.
type Stats struct {
	QueueDepth int           `json:"queue_depth"`
	QueueBound int           `json:"queue_bound"`
	Workers    int           `json:"workers"`
	Tenants    int           `json:"tenants"`
	CacheAge   time.Duration `json:"cache_age"`
	CacheSize  int           `json:"cache_size"`
}

func (b *Broker) stats() Stats {
	records, age := b.cache.peek()
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		QueueDepth: b.queued,
		QueueBound: b.opts.QueueBound,
		Workers:    b.opts.Workers,
		Tenants:    len(b.ring),
		CacheAge:   age,
		CacheSize:  len(records),
	}
}

// submit is the blocking server side of one request: admission control,
// then wait for the worker-driven outcome. It runs in the per-connection
// RPC loop, so each connection has at most one request in flight — the
// many-clients concurrency lives in the many connections. ctx is the
// client's propagated span context; when absent a fresh request tree is
// rooted at the ticket's correlation id, so every admitted request has a
// causal tree either way.
func (b *Broker) submit(req Request, ctx trace.Ctx) (Reply, error) {
	if req.Sites <= 0 || req.ProcsPerSite <= 0 {
		return Reply{}, fmt.Errorf("broker: need sites > 0 and procs_per_site > 0")
	}
	if req.Executable == "" {
		return Reply{}, fmt.Errorf("broker: missing executable")
	}
	if req.Tenant == "" {
		req.Tenant = "anonymous"
	}
	if req.CommitTimeout <= 0 {
		req.CommitTimeout = DefaultCommitTimeout
	}

	b.mu.Lock()
	if b.queued >= b.opts.QueueBound {
		depth := b.queued
		b.mu.Unlock()
		b.count("queue", "reject", 1)
		b.counters().Add(trace.Key("broker", "tenant", "reject", req.Tenant), 1)
		b.tracer().InstantCtx(ctx, "broker", "reject", b.host.Name(), req.Tenant, "",
			trace.Arg{Key: "depth", Val: strconv.Itoa(depth)},
			trace.Arg{Key: "retry_after", Val: b.opts.RetryAfter.String()})
		return Reply{Accepted: false, RetryAfter: b.opts.RetryAfter}, nil
	}
	b.nextID++
	t := &ticket{
		id:         b.nextID,
		req:        req,
		ctx:        ctx,
		enqueuedAt: b.sim.Now(),
		done:       vtime.NewEvent(b.sim, fmt.Sprintf("broker-ticket:%d", b.nextID)),
	}
	if !t.ctx.Valid() {
		t.ctx = trace.NewRequest(b.corr(t))
	}
	if _, known := b.queues[req.Tenant]; !known {
		b.ring = append(b.ring, req.Tenant)
	}
	b.queues[req.Tenant] = append(b.queues[req.Tenant], t)
	b.queued++
	depth := b.queued
	b.mu.Unlock()

	b.count("queue", "enqueue", 1)
	b.gauges().G("broker.queue_depth@" + b.opts.ReplicaID).Add(1)
	b.tracer().InstantCtx(t.ctx, "broker", "enqueue", b.host.Name(), req.Tenant, b.corr(t),
		trace.Arg{Key: "depth", Val: strconv.Itoa(depth)})
	b.wake.TrySend(struct{}{})

	t.done.Wait()
	return t.reply, nil
}

// corr is the correlation ID tying one ticket's queue-wait, attempts, and
// request span together.
func (b *Broker) corr(t *ticket) string { return b.opts.ReplicaID + "#req" + strconv.Itoa(t.id) }

// dispatcher pops tickets in per-tenant round-robin order and hands each
// to an idle worker. A ticket leaves the queue only once a worker has
// announced readiness, so QueueDepth and the admission bound account for
// every waiting request exactly.
func (b *Broker) dispatcher() {
	for {
		b.ready.Recv()
		for {
			t := b.pop()
			if t != nil {
				b.dispatch.Send(t)
				break
			}
			b.wake.Recv()
		}
	}
}

// pop removes the next ticket by round-robin across tenants with waiting
// requests. The ring preserves first-arrival tenant order, making the
// schedule deterministic.
func (b *Broker) pop() *ticket {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.ring)
	for i := 0; i < n; i++ {
		tenant := b.ring[(b.ringPos+i)%n]
		q := b.queues[tenant]
		if len(q) == 0 {
			continue
		}
		t := q[0]
		b.queues[tenant] = q[1:]
		b.queued--
		b.ringPos = (b.ringPos + i + 1) % n
		b.gauges().G("broker.queue_depth@" + b.opts.ReplicaID).Add(-1)
		return t
	}
	return nil
}

// worker drives admitted requests through DUROC, one at a time,
// announcing idleness to the dispatcher between requests.
func (b *Broker) worker() {
	for {
		b.ready.Send(struct{}{})
		t, ok := b.dispatch.Recv()
		if !ok {
			return
		}
		b.serve(t)
	}
}

// serve runs one ticket to a terminal reply: select candidates from the
// cache, drive the co-allocation with substitution, and on failure apply
// the per-class retry policy. The request's deadline is checked before
// every attempt and every backoff sleep: past it the client's RPC
// timeout has already fired, so further work would serve nobody — the
// request is marked abandoned instead.
func (b *Broker) serve(t *ticket) {
	req := t.req
	dequeuedAt := b.sim.Now()
	// Admission wait: enqueue-to-worker-pickup latency under fair queueing.
	b.hists().H("broker.admission.wait").Record(int64(dequeuedAt - t.enqueuedAt))
	b.count("queue", "dequeue", 1)
	b.tracer().SpanAtCtx(t.ctx.Child("queue-wait"), "broker", "queue-wait", b.host.Name(), req.Tenant, b.corr(t),
		t.enqueuedAt, dequeuedAt)

	var reply Reply
	reply.Accepted = true
	reply.QueueWait = dequeuedAt - t.enqueuedAt

	if b.opts.OnTicket != nil {
		b.opts.OnTicket(TicketEvent{Kind: "open", Ticket: b.corr(t), Key: req.Key, Tenant: req.Tenant})
	}

	deadline := req.Deadline
	expired := func() bool { return deadline > 0 && b.sim.Now() >= deadline }

	policy := b.opts.Retry
	abandoned := false
	forwarded := false
	var jobIDs []string
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		if expired() {
			// Queue wait or the previous attempt consumed the budget.
			abandoned = true
			break
		}
		reply.Attempts = attempt
		res, err := b.attempt(t, attempt, deadline)
		b.countFaults(res.Job)
		if res.Job != nil {
			jobIDs = append(jobIDs, res.Job.ID())
		}
		if err == nil {
			reply.JobID = res.Job.ID()
			reply.Substitutions += res.Substitutions
			reply.WorldSize = res.Config.WorldSize
			break
		}
		class := Classify(err)
		if class == ClassNoCandidates && b.opts.Forward != nil {
			// The local shard cannot host this request; offer it to a
			// peer before burning local retries.
			fwd, ferr := b.opts.Forward(req, t.ctx)
			if ferr == nil && fwd.OK() {
				reply.JobID = fwd.JobID
				reply.Substitutions += fwd.Substitutions
				reply.WorldSize = fwd.WorldSize
				reply.Hops = fwd.Hops + 1
				forwarded = true
				break
			}
			if errors.Is(ferr, ErrForwardIndeterminate) {
				// The peer may have committed the co-allocation but the
				// acknowledgment was lost. Another attempt — local or
				// forwarded — could allocate the same key twice, so the
				// request terminates here; at-most-once beats retry.
				reply.Error = ferr.Error()
				b.count("fail", "forward-indeterminate", 1)
				break
			}
			// ErrForwardUnavailable or a definitive peer failure: fall
			// through to the local retry policy.
		}
		b.count("retry", string(class), 1)
		decision := policy.For(class)
		if !decision.Retry || attempt == policy.MaxAttempts {
			reply.Error = err.Error()
			b.count("fail", string(class), 1)
			break
		}
		backoff := policy.BackoffFor(class, attempt)
		if deadline > 0 && b.sim.Now()+backoff >= deadline {
			// The deadline lands inside the backoff sleep: the next
			// attempt could only start after the client has given up.
			abandoned = true
			break
		}
		b.tracer().InstantCtx(t.ctx, "broker", "backoff", b.host.Name(), req.Tenant, b.corr(t),
			trace.Arg{Key: "class", Val: string(class)},
			trace.Arg{Key: "backoff", Val: backoff.String()})
		b.sim.Sleep(backoff)
		if class == ClassNoCandidates {
			// A fresh-but-thin cache would fail identically; force a
			// refresh so the next attempt sees newly published records.
			b.cache.refresh()
		}
	}
	if abandoned {
		reply.Error = fmt.Sprintf("broker: request abandoned at deadline after %d attempts", reply.Attempts)
		b.tracer().InstantCtx(t.ctx, "broker", "abandon", b.host.Name(), req.Tenant, b.corr(t),
			trace.Arg{Key: "attempts", Val: strconv.Itoa(reply.Attempts)})
	}

	reply.Elapsed = b.sim.Now() - t.enqueuedAt
	// End-to-end broker-side request latency, all outcomes: the cumulative
	// histogram for end-of-run quantiles, and the timestamped sample log
	// the SLO engine burn-rates over sliding windows.
	b.hists().H("broker.request.latency").Record(int64(reply.Elapsed))
	b.samples().L("broker.request.latency@" + b.opts.ReplicaID).Record(int64(reply.Elapsed))
	outcome := "ok"
	switch {
	case abandoned:
		outcome = "abandoned"
	case reply.Error != "":
		outcome = "fail"
	}
	b.count("request", outcome, 1)
	b.counters().Add(trace.Key("broker", "tenant", outcome, req.Tenant), 1)
	b.tracer().SpanAtCtx(t.ctx, "broker", "request", b.host.Name(), req.Tenant, b.corr(t),
		t.enqueuedAt, b.sim.Now(),
		trace.Arg{Key: "outcome", Val: outcome},
		trace.Arg{Key: "attempts", Val: strconv.Itoa(reply.Attempts)})
	if b.opts.OnTicket != nil {
		ev := TicketEvent{
			Kind:      "close",
			Ticket:    b.corr(t),
			Key:       req.Key,
			Tenant:    req.Tenant,
			JobIDs:    jobIDs,
			Forwarded: forwarded,
			Err:       reply.Error,
		}
		if !forwarded {
			ev.JobID = reply.JobID
		}
		b.opts.OnTicket(ev)
	}
	t.reply = reply
	t.done.Set()
}

// countFaults rolls each failed subjob's reason into a per-fault-class
// counter (broker.fault.<class>), so a chaos run can read which failure
// modes the serve path absorbed — substitutions included, which the
// attempt's terminal error alone would hide.
func (b *Broker) countFaults(job *core.Job) {
	if job == nil {
		return
	}
	for _, ev := range job.History() {
		if ev.Kind == core.EvSubjobFailed {
			b.count("fault", FaultClass(ev.Reason), 1)
		}
	}
}

// attempt performs one candidate selection and one substitution-strategy
// co-allocation for t, with its commit budget trimmed to the request
// deadline and a watchdog that aborts the attempt if it wedges past that
// budget (a lost resource manager mid-2PC shows up only as lack of
// progress; the abort discards the subjobs, whose unconfirmed cancels
// then flow to the orphan reaper).
func (b *Broker) attempt(t *ticket, attempt int, deadline time.Duration) (agent.Result, error) {
	req := t.req
	start := b.sim.Now()
	origin := req.Origin
	if origin == "" {
		origin = b.opts.ReplicaID
	}
	records := b.cache.get(origin, req.ViewAsOf)
	if b.opts.CandidateFilter != nil {
		records = b.opts.CandidateFilter(records)
	}
	want := req.Sites + req.Spares
	// Selection trusts the published forecasts exactly (sigma 0): broker
	// determinism must not depend on concurrent draw order from the
	// kernel's shared RNG.
	candidates := agent.SelectByForecast(records, req.ProcsPerSite, want, 0, nil)
	attemptCtx := t.ctx.Child("attempt" + strconv.Itoa(attempt))
	finish := func(outcome string) {
		b.hists().H("broker.attempt.latency").Record(int64(b.sim.Now() - start))
		b.tracer().SpanCtx(attemptCtx, "broker", "attempt", b.host.Name(), req.Tenant, b.corr(t), start,
			trace.Arg{Key: "n", Val: strconv.Itoa(attempt)},
			trace.Arg{Key: "outcome", Val: outcome})
	}
	if len(candidates) < req.Sites {
		finish(string(ClassNoCandidates))
		return agent.Result{}, fmt.Errorf("%w: %d of %d sites available",
			ErrNoCandidates, len(candidates), req.Sites)
	}
	creq := core.Request{}
	for i := 0; i < req.Sites; i++ {
		contact, err := transport.ParseAddr(candidates[i].Contact)
		if err != nil {
			finish("bad-contact")
			return agent.Result{}, fmt.Errorf("broker: record %q: %v", candidates[i].Name, err)
		}
		creq.Subjobs = append(creq.Subjobs, core.SubjobSpec{
			Label:          fmt.Sprintf("req%d.%d/%s", t.id, attempt, candidates[i].Name),
			Contact:        contact,
			Count:          req.ProcsPerSite,
			Executable:     req.Executable,
			Type:           core.Interactive,
			MaxTime:        req.MaxTime,
			StartupTimeout: req.StartupTimeout,
		})
	}
	var pool []transport.Addr
	for _, rec := range candidates[req.Sites:] {
		contact, err := transport.ParseAddr(rec.Contact)
		if err != nil {
			continue
		}
		pool = append(pool, contact)
	}
	budget := req.CommitTimeout
	if deadline > 0 {
		if remaining := deadline - b.sim.Now(); remaining < budget {
			budget = remaining
		}
	}
	var watchdog *vtime.Timer
	res, err := agent.WithSubstitution(b.ctrl, creq, agent.SubstituteOptions{
		Pool:          pool,
		CommitTimeout: budget,
		Ctx:           attemptCtx,
		OnJob: func(job *core.Job) {
			watchdog = b.sim.AfterFunc(budget+watchdogGrace, func() {
				if attemptSettled(job) {
					return
				}
				b.count("watchdog", "abort", 1)
				b.tracer().InstantCtx(attemptCtx, "broker", "watchdog-abort", b.host.Name(), req.Tenant, b.corr(t),
					trace.Arg{Key: "budget", Val: (budget + watchdogGrace).String()})
				// A hung 2PC attempt is exactly the moment the black box
				// exists for: freeze the recent past before aborting.
				b.flight().Trigger("watchdog-abort", b.opts.ReplicaID+" "+b.corr(t))
				job.Abort("broker: attempt watchdog fired after " + (budget + watchdogGrace).String())
			})
		},
	})
	if watchdog != nil {
		watchdog.Stop()
	}
	if err != nil {
		finish(string(Classify(err)))
		return res, err
	}
	finish("ok")
	return res, nil
}

// attemptSettled reports whether the attempt's job already reached a
// decision — committed (a released subjob exists) or terminated — in
// which case a late watchdog firing must not abort a healthy
// computation.
func attemptSettled(job *core.Job) bool {
	if job.Done().IsSet() {
		return true
	}
	for _, info := range job.Status() {
		if info.Status == core.SJReleased {
			return true
		}
	}
	return false
}

// addOrphan receives a subjob whose cancel the controller could not
// confirm and queues it for the reaper.
func (b *Broker) addOrphan(o core.Orphan) {
	key := o.Job + "/" + o.Subjob
	b.mu.Lock()
	_, known := b.orphans[key]
	b.orphans[key] = o
	b.mu.Unlock()
	if !known {
		// Gauge tracks distinct unreaped orphans; a re-recorded key (the
		// same subjob orphaned again before its reap) must not double-count.
		b.gauges().G("broker.orphans@" + b.opts.ReplicaID).Add(1)
		b.flight().Trigger("orphan", b.opts.ReplicaID+" "+key)
	}
	b.count("orphan", "record", 1)
	// The event args must not depend on the orphan set's size: concurrent
	// cancel daemons record at the same instant in nondeterministic order,
	// and a running count would leak that order into the trace.
	b.tracer().InstantCtx(o.Ctx, "broker", "orphan", b.host.Name(), key, "",
		trace.Arg{Key: "rm", Val: o.RM.String()},
		trace.Arg{Key: "reason", Val: o.Reason})
}

// reaper retries the cancellation of every orphaned subjob until its
// resource manager confirms — the guarantee that a committed-but-lost
// subjob stops holding processors as soon as the fault that hid it
// heals.
func (b *Broker) reaper() {
	for {
		if b.reapStop.WaitTimeout(b.opts.ReapInterval) {
			return
		}
		b.reapPending()
	}
}

// reapPending sweeps the orphan set once. Orphans are recorded by
// concurrent cancel daemons in nondeterministic order, so the sweep
// walks a sorted snapshot to keep reap timing (and the trace) identical
// across same-seed runs.
func (b *Broker) reapPending() {
	b.mu.Lock()
	keys := make([]string, 0, len(b.orphans))
	for k := range b.orphans {
		keys = append(keys, k)
	}
	b.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		b.mu.Lock()
		o, ok := b.orphans[k]
		b.mu.Unlock()
		if !ok || !b.reapOne(k, o) {
			continue
		}
		b.mu.Lock()
		delete(b.orphans, k)
		b.mu.Unlock()
		b.gauges().G("broker.orphans@" + b.opts.ReplicaID).Add(-1)
		b.count("orphan", "reaped", 1)
		if b.opts.OnReap != nil {
			b.opts.OnReap(k)
		}
	}
}

// reapOne re-dials the orphan's resource manager and re-issues the
// cancel. Cancellation is idempotent at the LRM — cancelling a job that
// already finished, failed, or was cancelled by the earlier attempt
// whose acknowledgment was lost is a no-op — so confirmation here is
// always safe.
func (b *Broker) reapOne(key string, o core.Orphan) bool {
	start := b.sim.Now()
	// Reap traffic parents under the leaked subjob's own span context, so
	// an orphaned request's tree shows its cleanup too.
	ctx := o.Ctx.Child("reap")
	client, err := gram.Dial(b.host, o.RM, gram.ClientConfig{
		Credential: b.ctrlCfg.Credential,
		Registry:   b.ctrlCfg.Registry,
		AuthCost:   b.ctrlCfg.AuthCost,
		Ctx:        ctx,
	})
	if err != nil {
		b.count("reap", "retry", 1)
		return false
	}
	defer client.Close()
	if err := client.CancelTimeout(o.JobContact, reapCancelTimeout); err != nil {
		b.count("reap", "retry", 1)
		return false
	}
	b.tracer().SpanAtCtx(ctx, "broker", "reap", b.host.Name(), key, "", start, b.sim.Now(),
		trace.Arg{Key: "rm", Val: o.RM.String()})
	return true
}

// RecordsForTest exposes the cache contents (for tests).
func (b *Broker) RecordsForTest() []mds.Record {
	records, _ := b.cache.peek()
	return records
}

// CacheView returns the cached directory records and their fetch time
// without triggering a refresh — what a federation forwarder stamps into
// Request.ViewAsOf so the serving peer never answers from a staler view.
func (b *Broker) CacheView() ([]mds.Record, time.Duration) {
	records, fetchedAt, _ := b.cache.view()
	return records, fetchedAt
}

// ReplicaID reports the identity this broker's decisions are keyed by.
func (b *Broker) ReplicaID() string { return b.opts.ReplicaID }
