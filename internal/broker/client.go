package broker

import (
	"fmt"
	"time"

	"cogrid/internal/rpc"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// Client submits co-allocation requests to a broker.
type Client struct {
	sim  *vtime.Sim
	rpcc *rpc.Client
}

// Dial connects to a broker service.
func Dial(from *transport.Host, addr transport.Addr) (*Client, error) {
	conn, err := from.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("broker: dial: %v", err)
	}
	sim := from.Network().Sim()
	return &Client{sim: sim, rpcc: rpc.NewClient(sim, conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() { c.rpcc.Close() }

// Submit sends one request and waits for the broker's terminal reply —
// which may be an admission rejection (Accepted false) carrying a
// retry-after hint. The timeout bounds the whole broker-side execution
// (queueing, retries, commits); 0 selects a generous default.
func (c *Client) Submit(req Request, timeout time.Duration) (Reply, error) {
	if timeout <= 0 {
		timeout = 24 * time.Hour
	}
	var reply Reply
	err := c.rpcc.Call("submit", req, &reply, timeout)
	return reply, err
}

// SubmitWait submits and, while the broker reports saturation, honors
// the retry-after hint and resubmits, up to maxRejects rejections. It
// returns the terminal reply and the number of rejections absorbed.
func (c *Client) SubmitWait(req Request, timeout time.Duration, maxRejects int) (Reply, int, error) {
	rejects := 0
	for {
		reply, err := c.Submit(req, timeout)
		if err != nil {
			return reply, rejects, err
		}
		if reply.Accepted {
			return reply, rejects, nil
		}
		rejects++
		if rejects > maxRejects {
			return reply, rejects, fmt.Errorf("broker: saturated after %d rejections", rejects)
		}
		wait := reply.RetryAfter
		if wait <= 0 {
			wait = DefaultRetryAfter
		}
		c.sim.Sleep(wait)
	}
}

// Stats fetches the broker's current queue and cache snapshot.
func (c *Client) Stats() (Stats, error) {
	var s Stats
	err := c.rpcc.Call("stats", nil, &s, time.Minute)
	return s, err
}
