package broker

import (
	"fmt"
	"time"

	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// Client submits co-allocation requests to a broker.
type Client struct {
	sim  *vtime.Sim
	rpcc *rpc.Client
}

// Dial connects to a broker service. On any construction failure the
// dialed connection is closed before returning.
func Dial(from *transport.Host, addr transport.Addr) (c *Client, err error) {
	return DialCtx(from, addr, trace.Ctx{})
}

// DialCtx is Dial under a causal span context. Everything the broker does
// on this client's behalf — queue wait, attempts, DUROC 2PC legs, GRAM
// submissions — parents beneath ctx, and resubmissions after admission
// rejections stay in the same request tree.
func DialCtx(from *transport.Host, addr transport.Addr, ctx trace.Ctx) (c *Client, err error) {
	conn, err := from.DialCtx(addr, ctx)
	if err != nil {
		return nil, fmt.Errorf("broker: dial: %v", err)
	}
	defer func() {
		if err != nil {
			conn.Close()
		}
	}()
	sim := from.Network().Sim()
	return &Client{sim: sim, rpcc: rpc.NewClient(sim, conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() { c.rpcc.Close() }

// DefaultSubmitTimeout is the broker-side execution bound applied when a
// submit's timeout is zero.
const DefaultSubmitTimeout = 24 * time.Hour

// Submit sends one request and waits for the broker's terminal reply —
// which may be an admission rejection (Accepted false) carrying a
// retry-after hint. The timeout bounds the whole broker-side execution
// (queueing, retries, commits); 0 selects DefaultSubmitTimeout. Unless
// the request already carries one, the timeout is also stamped into
// req.Deadline so the broker stops working on the request once this
// call has abandoned it (client and broker share the virtual clock).
func (c *Client) Submit(req Request, timeout time.Duration) (Reply, error) {
	if timeout <= 0 {
		timeout = DefaultSubmitTimeout
	}
	if req.Deadline == 0 {
		req.Deadline = c.sim.Now() + timeout
	}
	var reply Reply
	err := c.rpcc.Call("submit", req, &reply, timeout)
	return reply, err
}

// SubmitWait submits and, while the broker reports saturation, honors
// the retry-after hint and resubmits, up to maxRejects rejections. It
// returns the terminal reply and the number of rejections absorbed.
// The timeout is a total budget across every round — attempts and
// retry-after sleeps included — not a per-attempt allowance; once spent,
// SubmitWait fails fast instead of granting each resubmission a fresh
// timeout. 0 selects DefaultSubmitTimeout.
func (c *Client) SubmitWait(req Request, timeout time.Duration, maxRejects int) (Reply, int, error) {
	if timeout <= 0 {
		timeout = DefaultSubmitTimeout
	}
	deadline := c.sim.Now() + timeout
	if req.Deadline == 0 {
		req.Deadline = deadline
	}
	rejects := 0
	for {
		remaining := deadline - c.sim.Now()
		if remaining <= 0 {
			return Reply{}, rejects, fmt.Errorf("broker: submit budget exhausted after %d rejections", rejects)
		}
		reply, err := c.Submit(req, remaining)
		if err != nil {
			return reply, rejects, err
		}
		if reply.Accepted {
			return reply, rejects, nil
		}
		rejects++
		if rejects > maxRejects {
			return reply, rejects, fmt.Errorf("broker: saturated after %d rejections", rejects)
		}
		wait := reply.RetryAfter
		if wait <= 0 {
			wait = DefaultRetryAfter
		}
		if c.sim.Now()+wait >= deadline {
			return reply, rejects, fmt.Errorf("broker: submit budget exhausted after %d rejections", rejects)
		}
		c.sim.Sleep(wait)
	}
}

// Stats fetches the broker's current queue and cache snapshot.
func (c *Client) Stats() (Stats, error) {
	var s Stats
	err := c.rpcc.Call("stats", nil, &s, time.Minute)
	return s, err
}
