package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cogrid/internal/lrm"
)

func TestCategoryBuckets(t *testing.T) {
	cases := []struct {
		exe   string
		count int
		want  string
	}{
		{"sim", 1, "sim/2^0"},
		{"sim", 2, "sim/2^1"},
		{"sim", 3, "sim/2^1"},
		{"sim", 4, "sim/2^2"},
		{"sim", 64, "sim/2^6"},
		{"other", 64, "other/2^6"},
	}
	for _, c := range cases {
		if got := Category(c.exe, c.count); got != c.want {
			t.Errorf("Category(%s,%d) = %q, want %q", c.exe, c.count, got, c.want)
		}
	}
}

func TestHistoryPredictMean(t *testing.T) {
	h := NewHistory()
	cat := Category("sim", 16)
	if _, n := h.Predict(cat); n != 0 {
		t.Fatal("empty history predicted")
	}
	h.Observe(cat, 10*time.Minute)
	h.Observe(cat, 20*time.Minute)
	h.Observe(cat, 30*time.Minute)
	mean, n := h.Predict(cat)
	if n != 3 || mean != 20*time.Minute {
		t.Errorf("Predict = %v, %d; want 20m, 3", mean, n)
	}
	upper, _ := h.PredictUpper(cat, 2)
	if upper <= mean {
		t.Errorf("PredictUpper = %v, want > mean %v", upper, mean)
	}
	if u1, _ := h.PredictUpper(cat, 0); u1 != mean {
		t.Errorf("PredictUpper(0) = %v, want mean", u1)
	}
}

func TestHistoryCategoriesIndependent(t *testing.T) {
	h := NewHistory()
	h.Observe(Category("a", 4), time.Hour)
	if _, n := h.Predict(Category("b", 4)); n != 0 {
		t.Error("categories leaked")
	}
}

func TestRemainingQuantile(t *testing.T) {
	age := 10 * time.Minute
	if got := RemainingMedian(age); got != age {
		t.Errorf("median remaining = %v, want age %v", got, age)
	}
	if got := RemainingQuantile(age, 0.75); got != 30*time.Minute {
		t.Errorf("q75 = %v, want 30m (age·3)", got)
	}
	if got := RemainingQuantile(age, 0); got != 0 {
		t.Errorf("q0 = %v", got)
	}
	if got := RemainingQuantile(age, 1); got != time.Duration(math.MaxInt64) {
		t.Errorf("q1 = %v", got)
	}
}

// Property: remaining quantile is monotone in q and in age.
func TestRemainingQuantileMonotoneProperty(t *testing.T) {
	f := func(ageMin uint16, q1, q2 float64) bool {
		q1 = math.Mod(math.Abs(q1), 0.99)
		q2 = math.Mod(math.Abs(q2), 0.99)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		age := time.Duration(ageMin%10000) * time.Minute
		return RemainingQuantile(age, q1) <= RemainingQuantile(age, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func fullQueue() lrm.QueueInfo {
	return lrm.QueueInfo{
		Machine:        "sp2",
		Processors:     64,
		FreeProcessors: 0,
		RunningJobs:    2,
		Running: []lrm.RunningJob{
			{Count: 32, Elapsed: 30 * time.Minute, TimeLimit: time.Hour},
			{Count: 32, Elapsed: 10 * time.Minute, TimeLimit: 2 * time.Hour},
		},
		QueuedJobs: []lrm.QueuedJob{
			{Count: 64, TimeLimit: time.Hour},
		},
	}
}

func TestForecastWaitWithLimits(t *testing.T) {
	info := fullQueue()
	est := LimitEstimator{}
	// Job of 64: wait for both running (30m and 110m remaining), then the
	// queued 64-proc job (1h) => 110m + 60m = 170m.
	got := ForecastWait(info, 64, est)
	if got != 170*time.Minute {
		t.Errorf("ForecastWait(64) = %v, want 170m", got)
	}
	// Job of 32: after the queued 64-proc job starts at 110m and ends at
	// 170m... a 32-proc job can start when 32 procs free after it: the
	// queued job used all 64, so also 170m.
	if got := ForecastWait(info, 32, est); got != 170*time.Minute {
		t.Errorf("ForecastWait(32) = %v, want 170m", got)
	}
}

func TestForecastWaitDowneyShorter(t *testing.T) {
	info := fullQueue()
	limit := ForecastWait(info, 64, LimitEstimator{})
	downey := ForecastWait(info, 64, DowneyEstimator{})
	if downey >= limit {
		t.Errorf("Downey forecast %v not shorter than limit forecast %v", downey, limit)
	}
}

func TestForecastWaitImpossibleJob(t *testing.T) {
	info := fullQueue()
	if got := ForecastWait(info, 128, LimitEstimator{}); got < 300*24*time.Hour {
		t.Errorf("impossible job forecast = %v, want 'never'", got)
	}
}

func TestForecastWaitIdleMachine(t *testing.T) {
	info := lrm.QueueInfo{Processors: 64, FreeProcessors: 64}
	if got := ForecastWait(info, 64, LimitEstimator{}); got != 0 {
		t.Errorf("idle machine forecast = %v, want 0", got)
	}
}

func TestDowneyEstimatorBoundedByLimit(t *testing.T) {
	e := DowneyEstimator{Quantile: 0.99}
	r := lrm.RunningJob{Count: 4, Elapsed: 50 * time.Minute, TimeLimit: time.Hour}
	if got := e.Remaining(r); got != 10*time.Minute {
		t.Errorf("Remaining = %v, want capped at 10m", got)
	}
}

func TestHistoryEstimatorBeatsLimitsWithGoodHistory(t *testing.T) {
	// Jobs systematically use a third of their limit. The history learns
	// this; the limit estimator cannot.
	h := NewHistory()
	cat := Category("job", 32)
	for i := 0; i < 20; i++ {
		h.Observe(cat, 20*time.Minute)
	}
	info := lrm.QueueInfo{
		Processors:     64,
		FreeProcessors: 0,
		Running: []lrm.RunningJob{
			{Count: 64, Elapsed: 5 * time.Minute, TimeLimit: time.Hour},
		},
	}
	// True remaining ≈ 15m (actual runtime 20m); limits say 55m.
	hist := ForecastWait(info, 32, HistoryEstimator{History: h, CategoryFunc: func(count int) string { return cat }})
	lim := ForecastWait(info, 32, LimitEstimator{})
	if hist != 15*time.Minute {
		t.Errorf("history forecast = %v, want 15m", hist)
	}
	if lim != 55*time.Minute {
		t.Errorf("limit forecast = %v, want 55m", lim)
	}
}

func TestHistoryEstimatorFallsBackWithoutHistory(t *testing.T) {
	e := HistoryEstimator{History: NewHistory()}
	r := lrm.RunningJob{Count: 8, Elapsed: 10 * time.Minute, TimeLimit: time.Hour}
	if got := e.Remaining(r); got != 50*time.Minute {
		t.Errorf("fallback Remaining = %v, want 50m (limit-based)", got)
	}
	w := lrm.QueuedJob{Count: 8, TimeLimit: 40 * time.Minute}
	if got := e.Runtime(w); got != 40*time.Minute {
		t.Errorf("fallback Runtime = %v, want 40m", got)
	}
}

func TestHistoryEstimatorClampedByLimit(t *testing.T) {
	h := NewHistory()
	cat := Category("job", 16)
	h.Observe(cat, 10*time.Hour) // history says very long
	e := HistoryEstimator{History: h, CategoryFunc: func(int) string { return cat }}
	r := lrm.RunningJob{Count: 16, Elapsed: 30 * time.Minute, TimeLimit: time.Hour}
	if got := e.Remaining(r); got != 30*time.Minute {
		t.Errorf("Remaining = %v, want clamped 30m", got)
	}
	w := lrm.QueuedJob{Count: 16, TimeLimit: 2 * time.Hour}
	if got := e.Runtime(w); got != 2*time.Hour {
		t.Errorf("Runtime = %v, want clamped 2h", got)
	}
}

func TestNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := time.Hour
	if got := Noisy(base, 0, rng.NormFloat64); got != base {
		t.Errorf("sigma 0 changed the value: %v", got)
	}
	same := true
	for i := 0; i < 10; i++ {
		if Noisy(base, 1.0, rng.NormFloat64) != base {
			same = false
		}
	}
	if same {
		t.Error("sigma 1 never perturbed the value")
	}
	// Noise is multiplicative: result stays positive.
	for i := 0; i < 100; i++ {
		if Noisy(base, 2.0, rng.NormFloat64) <= 0 {
			t.Fatal("noisy forecast went non-positive")
		}
	}
}
