// Package predict implements queue-wait forecasting: the techniques
// Section 2.2 cites for improving co-allocation success by predicting
// expected future resource availability ([9] Downey's analytic estimators,
// [26] Smith–Foster–Taylor historical categories).
//
// Two families are provided. History predicts a job's runtime from the
// mean of past runtimes in its category (executable and size bucket).
// Downey's conditional estimator predicts the remaining lifetime of a
// running job from its age under a heavy-tailed (log-uniform style)
// lifetime model, where the median remaining life equals the current age.
// ForecastWait combines either with a queue simulation to estimate how
// long a new job would wait.
package predict

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"cogrid/internal/lrm"
)

// --- Smith–Foster historical predictor ---

// History records observed runtimes by category and predicts new ones
// from category means.
type History struct {
	mu   sync.Mutex
	byCt map[string][]float64
}

// NewHistory creates an empty history.
func NewHistory() *History {
	return &History{byCt: make(map[string][]float64)}
}

// Category buckets a job by executable and log2 size class, the
// template-attribute approach of Smith–Foster–Taylor.
func Category(executable string, count int) string {
	bucket := 0
	for n := count; n > 1; n >>= 1 {
		bucket++
	}
	return fmt.Sprintf("%s/2^%d", executable, bucket)
}

// Observe records a completed job's runtime.
func (h *History) Observe(category string, runtime time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.byCt[category] = append(h.byCt[category], runtime.Seconds())
}

// Predict returns the mean runtime of the category and the sample count.
// With no history it returns (0, 0).
func (h *History) Predict(category string) (time.Duration, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	xs := h.byCt[category]
	if len(xs) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return time.Duration(sum / float64(len(xs)) * float64(time.Second)), len(xs)
}

// PredictUpper returns a mean-plus-k-standard-errors upper bound, the
// conservative estimate used for admission decisions.
func (h *History) PredictUpper(category string, k float64) (time.Duration, int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	xs := h.byCt[category]
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	se := math.Sqrt(ss/float64(n)) / math.Sqrt(float64(n))
	return time.Duration((mean + k*se) * float64(time.Second)), n
}

// --- Downey conditional remaining-life estimator ---

// RemainingQuantile estimates the q-quantile of a running job's remaining
// lifetime given its age, under the heavy-tailed model P(T > x·t | T > t)
// = 1/x: remaining(q) = age · q/(1-q). The median (q = 0.5) equals the
// age — "the longer it has run, the longer it will keep running".
func RemainingQuantile(age time.Duration, q float64) time.Duration {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(float64(age) * q / (1 - q))
}

// RemainingMedian is RemainingQuantile at q = 0.5.
func RemainingMedian(age time.Duration) time.Duration { return age }

// HistoryEstimator predicts runtimes from recorded history, falling back
// to the wall-time limit when a category has no observations — the
// Smith–Foster–Taylor approach applied to queue-wait forecasting.
type HistoryEstimator struct {
	History *History
	// Category maps a job's size to its history category; a nil func
	// uses Category("job", count).
	CategoryFunc func(count int) string
	// Fallback handles categories without history.
	Fallback Estimator
}

func (e HistoryEstimator) category(count int) string {
	if e.CategoryFunc != nil {
		return e.CategoryFunc(count)
	}
	return Category("job", count)
}

func (e HistoryEstimator) fallback() Estimator {
	if e.Fallback != nil {
		return e.Fallback
	}
	return LimitEstimator{}
}

// Remaining implements Estimator: predicted total runtime minus elapsed,
// clamped at zero; limit-bounded.
func (e HistoryEstimator) Remaining(r lrm.RunningJob) time.Duration {
	mean, n := e.History.Predict(e.category(r.Count))
	if n == 0 {
		return e.fallback().Remaining(r)
	}
	rem := mean - r.Elapsed
	if rem < 0 {
		rem = 0
	}
	if r.TimeLimit > 0 {
		if bound := r.TimeLimit - r.Elapsed; rem > bound {
			rem = max(bound, 0)
		}
	}
	return rem
}

// Runtime implements Estimator.
func (e HistoryEstimator) Runtime(w lrm.QueuedJob) time.Duration {
	mean, n := e.History.Predict(e.category(w.Count))
	if n == 0 {
		return e.fallback().Runtime(w)
	}
	if w.TimeLimit > 0 && mean > w.TimeLimit {
		return w.TimeLimit
	}
	return mean
}

// --- queue-wait forecasting ---

// Estimator predicts runtimes for queue simulation.
type Estimator interface {
	// Remaining estimates how much longer a running job will run.
	Remaining(r lrm.RunningJob) time.Duration
	// Runtime estimates a waiting job's total runtime.
	Runtime(w lrm.QueuedJob) time.Duration
}

// LimitEstimator assumes every job consumes its full wall-time limit —
// what a local manager can guarantee without any modeling.
type LimitEstimator struct {
	// DefaultLimit stands in for jobs with no limit.
	DefaultLimit time.Duration
}

func (e LimitEstimator) limit(l time.Duration) time.Duration {
	if l > 0 {
		return l
	}
	if e.DefaultLimit > 0 {
		return e.DefaultLimit
	}
	return 24 * time.Hour
}

// Remaining implements Estimator.
func (e LimitEstimator) Remaining(r lrm.RunningJob) time.Duration {
	rem := e.limit(r.TimeLimit) - r.Elapsed
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Runtime implements Estimator.
func (e LimitEstimator) Runtime(w lrm.QueuedJob) time.Duration { return e.limit(w.TimeLimit) }

// DowneyEstimator predicts remaining life from age (median remaining =
// age) and waiting jobs' runtimes from a quantile of their limits.
type DowneyEstimator struct {
	// Quantile of the remaining-life distribution to use for running
	// jobs; 0.5 (the median) if zero.
	Quantile float64
	// WaitingFraction scales waiting jobs' limits (jobs rarely use their
	// full request); 0.5 if zero.
	WaitingFraction float64
	// DefaultLimit stands in for jobs with no limit.
	DefaultLimit time.Duration
}

// Remaining implements Estimator.
func (e DowneyEstimator) Remaining(r lrm.RunningJob) time.Duration {
	q := e.Quantile
	if q == 0 {
		q = 0.5
	}
	rem := RemainingQuantile(r.Elapsed, q)
	if r.TimeLimit > 0 {
		if bound := r.TimeLimit - r.Elapsed; rem > bound {
			rem = max(bound, 0)
		}
	}
	return rem
}

// Runtime implements Estimator.
func (e DowneyEstimator) Runtime(w lrm.QueuedJob) time.Duration {
	f := e.WaitingFraction
	if f == 0 {
		f = 0.5
	}
	l := w.TimeLimit
	if l == 0 {
		l = e.DefaultLimit
		if l == 0 {
			l = 24 * time.Hour
		}
	}
	return time.Duration(float64(l) * f)
}

// ForecastWait predicts how long a new job of the given size would wait in
// the published queue state, by simulating FCFS scheduling with the
// estimator's runtimes. It returns a very large value when the job can
// never fit.
func ForecastWait(info lrm.QueueInfo, count int, est Estimator) time.Duration {
	const never = 365 * 24 * time.Hour
	if count > info.Processors {
		return never
	}
	type release struct {
		at    time.Duration
		procs int
	}
	var rels []release
	for _, r := range info.Running {
		rels = append(rels, release{at: est.Remaining(r), procs: r.Count})
	}
	avail := info.FreeProcessors
	var t time.Duration
	startOne := func(need int, runtime time.Duration) time.Duration {
		sort.Slice(rels, func(i, j int) bool { return rels[i].at < rels[j].at })
		idx := 0
		for avail < need && idx < len(rels) {
			if rels[idx].at > t {
				t = rels[idx].at
			}
			avail += rels[idx].procs
			idx++
		}
		rels = rels[idx:]
		if avail < need {
			return never
		}
		avail -= need
		rels = append(rels, release{at: t + runtime, procs: need})
		return t
	}
	for _, q := range info.QueuedJobs {
		if startOne(q.Count, est.Runtime(q)) >= never {
			return never
		}
	}
	return startOne(count, time.Hour)
}

// --- forecast quality model for experiments ---

// Noisy wraps a true wait with multiplicative log-normal noise of the
// given sigma, modeling forecast quality in the Section 2.2 experiments:
// sigma 0 is a perfect oracle, large sigma is uninformed guessing.
func Noisy(trueWait time.Duration, sigma float64, gauss func() float64) time.Duration {
	if sigma <= 0 {
		return trueWait
	}
	factor := math.Exp(gauss() * sigma)
	return time.Duration(float64(trueWait) * factor)
}
