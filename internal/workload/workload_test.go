package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cogrid/internal/lrm"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

func model() Model {
	return Model{
		MeanInterarrival: 5 * time.Minute,
		MaxSize:          64,
		MinRuntime:       time.Minute,
		MaxRuntime:       2 * time.Hour,
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	jobs := model().Generate(rng, 24*time.Hour)
	if len(jobs) < 100 {
		t.Fatalf("only %d jobs over 24h at 5m interarrival", len(jobs))
	}
	var prev time.Duration
	for i, j := range jobs {
		if j.At < prev {
			t.Fatalf("arrivals not ordered at %d", i)
		}
		prev = j.At
		if j.At >= 24*time.Hour {
			t.Fatalf("arrival %v beyond horizon", j.At)
		}
		if j.Size < 1 || j.Size > 64 {
			t.Fatalf("size %d out of range", j.Size)
		}
		if j.Runtime < time.Minute || j.Runtime > 2*time.Hour {
			t.Fatalf("runtime %v out of range", j.Runtime)
		}
		if j.Limit < j.Runtime {
			t.Fatalf("limit %v below runtime %v", j.Limit, j.Runtime)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a := model().Generate(rand.New(rand.NewSource(7)), 12*time.Hour)
	b := model().Generate(rand.New(rand.NewSource(7)), 12*time.Hour)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestPowerOfTwoBias(t *testing.T) {
	m := model()
	m.PowerOfTwoProb = 1.0
	rng := rand.New(rand.NewSource(3))
	jobs := m.Generate(rng, 24*time.Hour)
	for _, j := range jobs {
		if j.Size&(j.Size-1) != 0 {
			t.Fatalf("size %d not a power of two with prob 1", j.Size)
		}
	}
}

func TestForLoadHitsTargetUtilization(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		m := ForLoad(rho, 64, 10*time.Minute, 2*time.Hour)
		rng := rand.New(rand.NewSource(11))
		const horizon = 30 * 24 * time.Hour
		jobs := m.Generate(rng, horizon)
		got := OfferedLoad(jobs, 64, horizon)
		if got < rho*0.8 || got > rho*1.2 {
			t.Errorf("rho %.1f: offered load = %.3f (want within 20%%)", rho, got)
		}
	}
}

// Property: offered load scales linearly with arrival rate.
func TestOfferedLoadScalesProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := model()
		fast := m
		fast.MeanInterarrival = m.MeanInterarrival / 2
		const horizon = 10 * 24 * time.Hour
		slow := OfferedLoad(m.Generate(rand.New(rand.NewSource(seed)), horizon), 64, horizon)
		quick2 := OfferedLoad(fast.Generate(rand.New(rand.NewSource(seed)), horizon), 64, horizon)
		// Same seed, double rate: roughly double the load.
		ratio := quick2 / slow
		return ratio > 1.5 && ratio < 2.6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDriveSubmitsAndRuns(t *testing.T) {
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	host := net.AddHost("m")
	m := lrm.NewMachine(host, 16, lrm.Config{Mode: lrm.Batch})
	RegisterExecutable(m, "bg")
	jobs := []Job{
		{At: time.Minute, Size: 8, Runtime: 10 * time.Minute, Limit: 30 * time.Minute},
		{At: 2 * time.Minute, Size: 16, Runtime: 5 * time.Minute, Limit: 20 * time.Minute},
	}
	Drive(sim, m, "bg", jobs)
	err := sim.Run("main", func() {
		sim.SleepUntil(90 * time.Second)
		info := m.QueueInfo()
		if info.RunningJobs != 1 {
			t.Errorf("at t=90s: %d running jobs, want 1", info.RunningJobs)
		}
		// Let everything drain; the 16-wide job runs after the first.
		sim.SleepUntil(time.Hour)
		info = m.QueueInfo()
		if info.RunningJobs != 0 || len(info.QueuedJobs) != 0 {
			t.Errorf("at t=1h queue not drained: %+v", info)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRegisterExecutableRejectsBadEnv(t *testing.T) {
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	host := net.AddHost("m")
	m := lrm.NewMachine(host, 4, lrm.Config{Mode: lrm.Fork})
	RegisterExecutable(m, "bg")
	err := sim.Run("main", func() {
		job, err := m.Submit(lrm.JobSpec{Executable: "bg", Count: 1})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		job.Done().Wait()
		if job.State() != lrm.StateFailed {
			t.Errorf("job without runtime env = %v, want FAILED", job.State())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
