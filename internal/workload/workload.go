// Package workload generates synthetic parallel workloads in the style of
// the job-scheduling literature the paper leans on ([9] Downey, [14]
// Gehring & Preiss, [26] Smith–Foster–Taylor): Poisson arrivals, sizes
// biased to powers of two, heavy-tailed log-uniform runtimes, and user
// wall-limit overestimates. These drive batch machines as background load
// for the co-allocation-under-load studies.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"cogrid/internal/lrm"
	"cogrid/internal/vtime"
)

// Model parameterizes a synthetic workload.
type Model struct {
	// MeanInterarrival is the Poisson arrival process's mean gap.
	MeanInterarrival time.Duration
	// MaxSize bounds job sizes (usually the machine size).
	MaxSize int
	// MinRuntime and MaxRuntime bound the log-uniform runtime
	// distribution.
	MinRuntime time.Duration
	MaxRuntime time.Duration
	// PowerOfTwoProb is the probability a job size is rounded to a power
	// of two (the well-known cluster workload artifact). Default 0.75.
	PowerOfTwoProb float64
	// LimitOverestimateMax: user wall limits are runtime times
	// uniform[1, this]. Default 3.
	LimitOverestimateMax float64
}

// Job is one generated background job.
type Job struct {
	At      time.Duration
	Size    int
	Runtime time.Duration
	Limit   time.Duration
}

// Generate draws jobs with arrivals in [0, horizon).
func (m Model) Generate(rng *rand.Rand, horizon time.Duration) []Job {
	p2 := m.PowerOfTwoProb
	if p2 == 0 {
		p2 = 0.75
	}
	overMax := m.LimitOverestimateMax
	if overMax < 1 {
		overMax = 3
	}
	var jobs []Job
	at := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(m.MeanInterarrival))
		at += gap
		if at >= horizon {
			return jobs
		}
		jobs = append(jobs, Job{
			At:      at,
			Size:    m.drawSize(rng),
			Runtime: m.drawRuntime(rng),
		})
		j := &jobs[len(jobs)-1]
		j.Limit = time.Duration(float64(j.Runtime) * (1 + rng.Float64()*(overMax-1)))
	}
}

// drawSize draws a log-uniform size in [1, MaxSize], usually rounded to a
// power of two.
func (m Model) drawSize(rng *rand.Rand) int {
	maxLog := math.Log2(float64(m.MaxSize))
	size := int(math.Exp2(rng.Float64() * maxLog))
	if size < 1 {
		size = 1
	}
	if size > m.MaxSize {
		size = m.MaxSize
	}
	if rng.Float64() < m.PowerOfTwoProbOrDefault() {
		p := 1
		for p*2 <= size {
			p *= 2
		}
		size = p
	}
	return size
}

// PowerOfTwoProbOrDefault returns the configured probability or 0.75.
func (m Model) PowerOfTwoProbOrDefault() float64 {
	if m.PowerOfTwoProb == 0 {
		return 0.75
	}
	return m.PowerOfTwoProb
}

// drawRuntime draws a log-uniform runtime in [MinRuntime, MaxRuntime].
func (m Model) drawRuntime(rng *rand.Rand) time.Duration {
	lo, hi := math.Log(float64(m.MinRuntime)), math.Log(float64(m.MaxRuntime))
	return time.Duration(math.Exp(lo + rng.Float64()*(hi-lo)))
}

// OfferedLoad is the workload's demand as a fraction of a machine's
// capacity over the horizon: sum(size_i * runtime_i) / (procs * horizon).
func OfferedLoad(jobs []Job, procs int, horizon time.Duration) float64 {
	var work float64
	for _, j := range jobs {
		work += float64(j.Size) * j.Runtime.Seconds()
	}
	return work / (float64(procs) * horizon.Seconds())
}

// ForLoad builds a model whose offered load on a machine of the given
// size is approximately rho: interarrival = E[size]*E[runtime] /
// (rho*procs). Expectations use the log-uniform means.
func ForLoad(rho float64, procs int, minRuntime, maxRuntime time.Duration) Model {
	m := Model{
		MaxSize:    procs,
		MinRuntime: minRuntime,
		MaxRuntime: maxRuntime,
	}
	// Mean job size under the mixed distribution: with probability p2 the
	// log-uniform draw 2^(U·L) is rounded down to a power of two
	// (E = (procs-1)/L, since floor(U·L) is uniform over 0..L-1 and
	// sum 2^k = procs-1); otherwise it stays continuous
	// (E = (procs-1)/(L·ln2)).
	l := math.Log2(float64(procs))
	p2 := m.PowerOfTwoProbOrDefault()
	meanSize := p2*(float64(procs)-1)/l + (1-p2)*(float64(procs)-1)/(l*math.Ln2)
	lo, hi := math.Log(float64(minRuntime)), math.Log(float64(maxRuntime))
	meanRuntime := (math.Exp(hi) - math.Exp(lo)) / (hi - lo)
	m.MeanInterarrival = time.Duration(meanSize * meanRuntime / (rho * float64(procs)))
	return m
}

// EnvRuntime is the environment key carrying a background job's runtime
// in milliseconds.
const EnvRuntime = "WORKLOAD_RUNTIME_MS"

// RegisterExecutable installs the background-load executable: each
// process works for the runtime passed through the environment.
func RegisterExecutable(m *lrm.Machine, name string) {
	m.RegisterExecutable(name, func(p *lrm.Proc) error {
		ms, err := strconv.Atoi(p.Getenv(EnvRuntime))
		if err != nil {
			return fmt.Errorf("workload: bad %s: %v", EnvRuntime, err)
		}
		return p.Work(time.Duration(ms)*time.Millisecond, time.Minute)
	})
}

// Drive schedules the workload's submissions onto a machine. The
// executable must have been installed with RegisterExecutable. Submissions
// happen at each job's arrival time; jobs queue under the machine's
// scheduler like any other work.
//
// Batch-mode submission never blocks on kernel primitives, so those
// arrivals ride the kernel's passive dispatch pool rather than paying one
// goroutine per arrival — at 10⁶ arrivals that is the difference between a
// bounded worker set and a million short-lived goroutines. Fork-mode
// Submit sleeps for the fork cost and keeps the goroutine-per-timer path.
func Drive(sim *vtime.Sim, m *lrm.Machine, executable string, jobs []Job) {
	after := sim.AfterFunc
	if m.Mode() == lrm.Batch {
		after = sim.AfterFuncPassive
	}
	for _, job := range jobs {
		job := job
		after(job.At, func() {
			m.Submit(lrm.JobSpec{
				Executable: executable,
				Count:      job.Size,
				TimeLimit:  job.Limit,
				Env: map[string]string{
					EnvRuntime: strconv.Itoa(int(job.Runtime / time.Millisecond)),
				},
			})
		})
	}
}
