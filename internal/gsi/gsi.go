// Package gsi simulates the Grid Security Infrastructure: a mutual
// authentication handshake between a requestor and a resource, with a
// configurable computational cost model.
//
// The real GSI performs SSL mutual authentication with X.509 certificates;
// the paper's Figure 3 attributes 0.5 s of a GRAM request to it, split
// between computation on both sides and network round trips. We reproduce
// the protocol structure — a four-message mutual challenge–response with
// real HMAC-SHA256 proofs — using a trusted registry of shared secrets in
// place of a certificate authority, and charge the configured compute cost
// on each side.
package gsi

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// Errors returned by handshakes.
var (
	ErrUnknownPrincipal = errors.New("gsi: unknown principal")
	ErrRevoked          = errors.New("gsi: credential revoked")
	ErrBadProof         = errors.New("gsi: proof verification failed")
	ErrProtocol         = errors.New("gsi: protocol violation")
	ErrTimeout          = errors.New("gsi: handshake timed out")
)

// CostModel gives the computational cost charged on each side of a
// handshake. The defaults reproduce Figure 3's 0.5 s authentication
// budget, split evenly.
type CostModel struct {
	ClientCompute time.Duration
	ServerCompute time.Duration
}

// DefaultCost is the Figure 3 calibration.
var DefaultCost = CostModel{ClientCompute: 250 * time.Millisecond, ServerCompute: 250 * time.Millisecond}

// Total returns the combined compute cost of one handshake.
func (c CostModel) Total() time.Duration { return c.ClientCompute + c.ServerCompute }

// Credential identifies a principal. The secret plays the role of a
// private key; it is distributed through the Registry, which plays the
// role of the certificate authority.
type Credential struct {
	Name   string
	secret []byte
}

// Registry is the trust database shared by all parties (the simulated CA).
type Registry struct {
	mu      sync.Mutex
	nextID  uint64
	secrets map[string][]byte
	revoked map[string]bool
}

// NewRegistry creates an empty trust database.
func NewRegistry() *Registry {
	return &Registry{secrets: make(map[string][]byte), revoked: make(map[string]bool)}
}

// Issue creates and registers a credential for name. Issuing for an
// existing name replaces the old secret.
func (r *Registry) Issue(name string) Credential {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	secret := make([]byte, 16)
	binary.BigEndian.PutUint64(secret, r.nextID)
	copy(secret[8:], name)
	sum := sha256.Sum256(append(secret, name...))
	r.secrets[name] = sum[:]
	delete(r.revoked, name)
	return Credential{Name: name, secret: sum[:]}
}

// Revoke marks a principal's credential invalid; handshakes involving it
// fail with ErrRevoked. Used for auth-failure injection.
func (r *Registry) Revoke(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.revoked[name] = true
}

// Reinstate clears a revocation.
func (r *Registry) Reinstate(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.revoked, name)
}

func (r *Registry) lookup(name string) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.revoked[name] {
		return nil, ErrRevoked
	}
	s, ok := r.secrets[name]
	if !ok {
		return nil, ErrUnknownPrincipal
	}
	return s, nil
}

// proof computes HMAC-SHA256(secret, nonce || name).
func proof(secret []byte, nonce, name string) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(nonce))
	mac.Write([]byte(name))
	return hex.EncodeToString(mac.Sum(nil))
}

type helloMsg struct {
	Kind   string `json:"kind"`
	Client string `json:"client"`
	NonceC string `json:"nonce_c"`
}

type challengeMsg struct {
	Kind   string `json:"kind"`
	Server string `json:"server"`
	NonceS string `json:"nonce_s"`
	ProofS string `json:"proof_s"`
}

type responseMsg struct {
	Kind   string `json:"kind"`
	ProofC string `json:"proof_c"`
}

type resultMsg struct {
	Kind  string `json:"kind"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// HandshakeTimeout bounds each message wait within a handshake.
const HandshakeTimeout = 60 * time.Second

func nonce(sim *vtime.Sim) string {
	return fmt.Sprintf("%08x%08x", sim.RandIntn(1<<31), sim.RandIntn(1<<31))
}

// ClientHandshake authenticates cred to the peer on conn and verifies the
// peer in return. It returns the authenticated peer name. The configured
// ClientCompute cost is charged before the client's proof is produced.
func ClientHandshake(sim *vtime.Sim, conn *transport.Conn, cred Credential, reg *Registry, cost CostModel) (string, error) {
	nc := nonce(sim)
	if err := sendJSON(conn, helloMsg{Kind: "gsi-hello", Client: cred.Name, NonceC: nc}); err != nil {
		return "", err
	}
	var ch challengeMsg
	if err := recvJSON(conn, &ch); err != nil {
		return "", err
	}
	if ch.Kind != "gsi-challenge" {
		return "", ErrProtocol
	}
	serverSecret, err := reg.lookup(ch.Server)
	if err != nil {
		return "", err
	}
	sim.Sleep(cost.ClientCompute)
	if !hmac.Equal([]byte(ch.ProofS), []byte(proof(serverSecret, nc, ch.Server))) {
		return "", ErrBadProof
	}
	pc := proof(cred.secret, ch.NonceS, cred.Name)
	if err := sendJSON(conn, responseMsg{Kind: "gsi-response", ProofC: pc}); err != nil {
		return "", err
	}
	var res resultMsg
	if err := recvJSON(conn, &res); err != nil {
		return "", err
	}
	if res.Kind != "gsi-result" {
		return "", ErrProtocol
	}
	if !res.OK {
		return "", fmt.Errorf("gsi: rejected by server: %s", res.Error)
	}
	return ch.Server, nil
}

// ServerHandshake runs the resource side of the handshake, verifying the
// client and proving the server's own identity. It returns the
// authenticated client name. The configured ServerCompute cost is charged
// before the server's proof is produced.
func ServerHandshake(sim *vtime.Sim, conn *transport.Conn, cred Credential, reg *Registry, cost CostModel) (string, error) {
	var hello helloMsg
	if err := recvJSON(conn, &hello); err != nil {
		return "", err
	}
	if hello.Kind != "gsi-hello" {
		return "", ErrProtocol
	}
	clientSecret, err := reg.lookup(hello.Client)
	if err != nil {
		// Tell the client before failing so it gets an error report
		// rather than a timeout.
		sendJSON(conn, resultMsg{Kind: "gsi-result", OK: false, Error: err.Error()})
		return "", err
	}
	if _, err := reg.lookup(cred.Name); err != nil {
		sendJSON(conn, resultMsg{Kind: "gsi-result", OK: false, Error: err.Error()})
		return "", err
	}
	sim.Sleep(cost.ServerCompute)
	ns := nonce(sim)
	ch := challengeMsg{
		Kind:   "gsi-challenge",
		Server: cred.Name,
		NonceS: ns,
		ProofS: proof(cred.secret, hello.NonceC, cred.Name),
	}
	if err := sendJSON(conn, ch); err != nil {
		return "", err
	}
	var resp responseMsg
	if err := recvJSON(conn, &resp); err != nil {
		return "", err
	}
	if resp.Kind != "gsi-response" {
		return "", ErrProtocol
	}
	if !hmac.Equal([]byte(resp.ProofC), []byte(proof(clientSecret, ns, hello.Client))) {
		sendJSON(conn, resultMsg{Kind: "gsi-result", OK: false, Error: ErrBadProof.Error()})
		return "", ErrBadProof
	}
	if err := sendJSON(conn, resultMsg{Kind: "gsi-result", OK: true}); err != nil {
		return "", err
	}
	return hello.Client, nil
}

func sendJSON(conn *transport.Conn, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return conn.Send(raw)
}

func recvJSON(conn *transport.Conn, v any) error {
	raw, err := conn.RecvTimeout(HandshakeTimeout)
	if err != nil {
		if err == transport.ErrRecvTimeout {
			return ErrTimeout
		}
		return err
	}
	// A gsi-result frame can arrive where another kind was expected when
	// the server rejects early; surface it as a protocol-level rejection.
	var probe resultMsg
	if json.Unmarshal(raw, &probe) == nil && probe.Kind == "gsi-result" && !probe.OK {
		if _, isResult := v.(*resultMsg); !isResult {
			return fmt.Errorf("gsi: rejected by peer: %s", probe.Error)
		}
	}
	return json.Unmarshal(raw, v)
}
