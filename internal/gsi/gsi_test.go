package gsi

import (
	"errors"
	"testing"
	"time"

	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// handshakePair runs a server on host b and returns the outcome of both
// sides of one handshake.
type outcome struct {
	peer string
	err  error
	at   time.Duration
}

func runHandshake(t *testing.T, mutate func(reg *Registry, client, server *Credential)) (clientRes, serverRes outcome) {
	t.Helper()
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	a, b := net.AddHost("a"), net.AddHost("b")
	reg := NewRegistry()
	clientCred := reg.Issue("user/alice")
	serverCred := reg.Issue("host/b")
	if mutate != nil {
		mutate(reg, &clientCred, &serverCred)
	}
	l, err := b.Listen("gk")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serverDone := vtime.NewChan[outcome](sim, "server-done", 1)
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		peer, err := ServerHandshake(sim, conn, serverCred, reg, DefaultCost)
		serverDone.Send(outcome{peer: peer, err: err, at: sim.Now()})
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "gk"})
		if err != nil {
			clientRes = outcome{err: err}
			return
		}
		peer, err := ClientHandshake(sim, conn, clientCred, reg, DefaultCost)
		clientRes = outcome{peer: peer, err: err, at: sim.Now()}
		if sr, res := serverDone.RecvTimeout(time.Minute); res == vtime.RecvOK {
			serverRes = sr
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return clientRes, serverRes
}

func TestMutualAuthenticationSucceeds(t *testing.T) {
	c, s := runHandshake(t, nil)
	if c.err != nil {
		t.Fatalf("client handshake: %v", c.err)
	}
	if s.err != nil {
		t.Fatalf("server handshake: %v", s.err)
	}
	if c.peer != "host/b" {
		t.Errorf("client authenticated peer %q, want host/b", c.peer)
	}
	if s.peer != "user/alice" {
		t.Errorf("server authenticated peer %q, want user/alice", s.peer)
	}
}

func TestHandshakeChargesComputeCost(t *testing.T) {
	c, _ := runHandshake(t, nil)
	if c.err != nil {
		t.Fatalf("client handshake: %v", c.err)
	}
	// Timeline: dial RTT 2ms; hello 1ms; server compute 250ms; challenge
	// 1ms; client compute 250ms; response 1ms; result 1ms.
	want := 2*time.Millisecond + time.Millisecond + 250*time.Millisecond +
		time.Millisecond + 250*time.Millisecond + time.Millisecond + time.Millisecond
	if c.at != want {
		t.Errorf("handshake completed at %v, want %v", c.at, want)
	}
}

func TestRevokedClientRejected(t *testing.T) {
	c, s := runHandshake(t, func(reg *Registry, client, server *Credential) {
		reg.Revoke("user/alice")
	})
	if c.err == nil {
		t.Error("client handshake succeeded with revoked credential")
	}
	if !errors.Is(s.err, ErrRevoked) {
		t.Errorf("server error = %v, want ErrRevoked", s.err)
	}
}

func TestUnknownClientRejected(t *testing.T) {
	c, s := runHandshake(t, func(reg *Registry, client, server *Credential) {
		*client = Credential{Name: "user/mallory", secret: []byte("guess")}
	})
	if c.err == nil {
		t.Error("client handshake succeeded with unknown principal")
	}
	if !errors.Is(s.err, ErrUnknownPrincipal) {
		t.Errorf("server error = %v, want ErrUnknownPrincipal", s.err)
	}
}

func TestForgedClientProofRejected(t *testing.T) {
	c, s := runHandshake(t, func(reg *Registry, client, server *Credential) {
		// Mallory knows alice's name but holds the wrong secret.
		stale := *client
		reg.Issue("user/alice") // rotate the registered secret
		*client = stale
	})
	if c.err == nil {
		t.Error("client with stale secret authenticated")
	}
	if !errors.Is(s.err, ErrBadProof) {
		t.Errorf("server error = %v, want ErrBadProof", s.err)
	}
}

func TestClientDetectsServerImpersonation(t *testing.T) {
	c, _ := runHandshake(t, func(reg *Registry, client, server *Credential) {
		// The server presents an identity whose registered secret differs
		// from the secret it actually signs with.
		stale := *server
		reg.Issue("host/b")
		*server = stale
	})
	if !errors.Is(c.err, ErrBadProof) {
		t.Errorf("client error = %v, want ErrBadProof (must verify the server)", c.err)
	}
}

func TestRevokedServerRefusesToServe(t *testing.T) {
	c, s := runHandshake(t, func(reg *Registry, client, server *Credential) {
		reg.Revoke("host/b")
	})
	if c.err == nil {
		t.Error("client handshake succeeded against revoked server")
	}
	if !errors.Is(s.err, ErrRevoked) {
		t.Errorf("server error = %v, want ErrRevoked", s.err)
	}
}

func TestReinstateClearsRevocation(t *testing.T) {
	c, s := runHandshake(t, func(reg *Registry, client, server *Credential) {
		reg.Revoke("user/alice")
		reg.Reinstate("user/alice")
	})
	if c.err != nil || s.err != nil {
		t.Fatalf("handshake after reinstate failed: client=%v server=%v", c.err, s.err)
	}
}

func TestCostModelTotal(t *testing.T) {
	if got := DefaultCost.Total(); got != 500*time.Millisecond {
		t.Errorf("DefaultCost.Total = %v, want 500ms (Figure 3 calibration)", got)
	}
}
