package gsi

import (
	"errors"
	"testing"
	"time"

	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

func TestClientHandshakeTimesOutAgainstSilentServer(t *testing.T) {
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	a, b := net.AddHost("a"), net.AddHost("b")
	reg := NewRegistry()
	cred := reg.Issue("user/alice")
	l, err := b.Listen("gk")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	// The server accepts but never speaks GSI.
	sim.GoDaemon("mute-server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		conn.Recv() // swallow the hello and go silent
		parked := vtime.NewChan[int](sim, "parked", 0)
		parked.Recv()
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "gk"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		start := sim.Now()
		_, err = ClientHandshake(sim, conn, cred, reg, DefaultCost)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("handshake = %v, want ErrTimeout", err)
		}
		if took := sim.Now() - start; took < HandshakeTimeout {
			t.Errorf("gave up after %v, want at least %v", took, HandshakeTimeout)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestServerHandshakeRejectsGarbage(t *testing.T) {
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	a, b := net.AddHost("a"), net.AddHost("b")
	reg := NewRegistry()
	serverCred := reg.Issue("host/b")
	l, err := b.Listen("gk")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	result := vtime.NewChan[error](sim, "result", 1)
	sim.GoDaemon("server", func() {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		_, err := ServerHandshake(sim, conn, serverCred, reg, DefaultCost)
		result.Send(err)
	})
	err = sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "gk"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		conn.Send([]byte(`{"kind":"not-gsi"}`))
		err, _ = func() (error, bool) {
			e, ok := result.Recv()
			return e, ok
		}()
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("server error = %v, want ErrProtocol", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
