package gram

import (
	"strings"
	"testing"
	"time"

	"cogrid/internal/gsi"
	"cogrid/internal/lrm"
	"cogrid/internal/metrics"
	"cogrid/internal/nis"
	"cogrid/internal/rpc"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// testbed is a one-machine grid: a client workstation, a gatekeeper
// machine, and a NIS server, all 1ms (one-way) apart.
type testbed struct {
	sim      *vtime.Sim
	client   *transport.Host
	machine  *lrm.Machine
	server   *Server
	registry *gsi.Registry
	userCred gsi.Credential
	timeline *metrics.Timeline
}

func newTestbed(t *testing.T, mode lrm.Mode) *testbed {
	t.Helper()
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	tb := &testbed{sim: sim, registry: gsi.NewRegistry(), timeline: metrics.NewTimeline(sim)}
	tb.client = net.AddHost("workstation")
	origin := net.AddHost("origin")
	nisHost := net.AddHost("nis1")

	nisSrv, err := nis.NewServer(nisHost, 0)
	if err != nil {
		t.Fatalf("nis: %v", err)
	}
	tb.userCred = tb.registry.Issue("user/alice")
	nisSrv.AddUser("user/alice", "users", "grid")

	tb.machine = lrm.NewMachine(origin, 64, lrm.Config{Mode: mode})
	tb.machine.RegisterExecutable("work", func(p *lrm.Proc) error {
		return p.Work(time.Second, time.Second)
	})
	tb.machine.RegisterExecutable("forever", func(p *lrm.Proc) error {
		return p.Work(time.Hour, time.Second)
	})
	tb.server, err = StartServer(tb.machine, ServerConfig{
		Credential: tb.registry.Issue("host/origin"),
		Registry:   tb.registry,
		NISAddr:    transport.Addr{Host: "nis1", Service: nis.ServiceName},
		Timeline:   tb.timeline,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	return tb
}

func (tb *testbed) dial(t *testing.T) *Client {
	t.Helper()
	c, err := Dial(tb.client, tb.server.Contact(), ClientConfig{
		Credential: tb.userCred,
		Registry:   tb.registry,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return c
}

// waitForState drains events until the wanted state or stream end.
func waitForState(c *Client, want lrm.JobState) (StateEvent, bool) {
	for {
		ev, ok := c.Events().Recv()
		if !ok {
			return StateEvent{}, false
		}
		if ev.State == want {
			return ev, true
		}
	}
}

func TestSubmitForkJobLifecycle(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		contact, err := c.Submit(`&(executable=work)(count=8)`)
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if !strings.HasPrefix(contact, "origin:gram/") {
			t.Errorf("contact = %q", contact)
		}
		if _, ok := waitForState(c, lrm.StateActive); !ok {
			t.Error("never saw ACTIVE callback")
			return
		}
		if ev, ok := waitForState(c, lrm.StateDone); !ok {
			t.Error("never saw DONE callback")
		} else if ev.Contact != contact {
			t.Errorf("event contact = %q, want %q", ev.Contact, contact)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSubmitLatencyMatchesPipeline(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		dialDone := tb.sim.Now()
		// Dial includes connection (2ms) + GSI handshake (504ms).
		if dialDone != 506*time.Millisecond {
			t.Errorf("dial+auth took %v, want 506ms", dialDone)
		}
		if _, err := c.Submit(`&(executable=work)(count=1)`); err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		// Submit: request 1ms + misc 10ms + initgroups 700ms + fork 1ms +
		// reply 1ms = 713ms.
		if took := tb.sim.Now() - dialDone; took != 713*time.Millisecond {
			t.Errorf("submit took %v, want 713ms", took)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSubmitLatencyInsensitiveToProcessCount(t *testing.T) {
	// Figure 2's finding: GRAM submission cost is flat in process count.
	durations := make(map[int]time.Duration)
	for _, count := range []int{1, 16, 32, 64} {
		tb := newTestbed(t, lrm.Fork)
		count := count
		err := tb.sim.Run("main", func() {
			c := tb.dial(t)
			defer c.Close()
			start := tb.sim.Now()
			if _, err := c.Submit(`&(executable=work)(count=` + itoa(count) + `)`); err != nil {
				t.Errorf("Submit %d: %v", count, err)
				return
			}
			durations[count] = tb.sim.Now() - start
		})
		if err != nil {
			t.Fatalf("sim: %v", err)
		}
	}
	base := durations[1]
	for count, d := range durations {
		if d != base {
			t.Errorf("submission latency for %d procs = %v, want %v (flat)", count, d, base)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestFigure3Breakdown(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		if _, err := c.Submit(`&(executable=work)(count=1)`); err != nil {
			t.Errorf("Submit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	totals := tb.timeline.PhaseTotals()
	// 500ms compute + message latencies, measured from the server side
	// (accept to final result frame).
	if got := totals["authentication"]; got != 503*time.Millisecond {
		t.Errorf("authentication = %v, want 503ms (paper: 0.5s)", got)
	}
	if got := totals["initgroups"]; got != 700*time.Millisecond {
		t.Errorf("initgroups = %v, want 700ms (paper: 0.7s)", got)
	}
	if got := totals["misc"]; got != 10*time.Millisecond {
		t.Errorf("misc = %v, want 10ms (paper: 0.01s)", got)
	}
	if got := totals["fork"]; got != time.Millisecond {
		t.Errorf("fork = %v, want 1ms (paper: 0.001s)", got)
	}
}

func TestSubmitUnknownExecutable(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		_, err := c.Submit(`&(executable=missing)(count=1)`)
		if err == nil || !strings.Contains(err.Error(), "unknown executable") {
			t.Errorf("Submit = %v, want unknown-executable error", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSubmitBadRSL(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		for _, src := range []string{"not rsl ((", `&(count=2)`, `&(executable=work)`, `&(executable=work)(count=zero)`} {
			if _, err := c.Submit(src); err == nil {
				t.Errorf("Submit(%q) succeeded", src)
			}
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCancelJob(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		contact, err := c.Submit(`&(executable=forever)(count=4)`)
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if err := c.Cancel(contact); err != nil {
			t.Errorf("Cancel: %v", err)
		}
		if _, ok := waitForState(c, lrm.StateCancelled); !ok {
			t.Error("never saw CANCELLED callback")
		}
		state, _, err := c.Status(contact)
		if err != nil || state != lrm.StateCancelled {
			t.Errorf("Status = %v, %v", state, err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCancelUnknownContact(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		if err := c.Cancel("origin:gram/999"); err == nil {
			t.Error("Cancel of unknown contact succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestRevokedUserCannotDial(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	tb.registry.Revoke("user/alice")
	err := tb.sim.Run("main", func() {
		_, err := Dial(tb.client, tb.server.Contact(), ClientConfig{
			Credential: tb.userCred,
			Registry:   tb.registry,
		})
		if err == nil {
			t.Error("Dial with revoked credential succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestQueueInfoAndEstimateWait(t *testing.T) {
	tb := newTestbed(t, lrm.Batch)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		if _, err := c.Submit(`&(executable=forever)(count=64)(maxTime=30)`); err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		info, err := c.QueueInfo()
		if err != nil {
			t.Errorf("QueueInfo: %v", err)
			return
		}
		if info.Machine != "origin" || info.RunningJobs != 1 || info.FreeProcessors != 0 {
			t.Errorf("QueueInfo = %+v", info)
		}
		wait, err := c.EstimateWait(64)
		if err != nil {
			t.Errorf("EstimateWait: %v", err)
			return
		}
		if wait <= 0 || wait > 30*time.Minute {
			t.Errorf("EstimateWait = %v, want within (0, 30m]", wait)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestGatekeeperCrashFailsSubmit(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		tb.sim.AfterFunc(100*time.Millisecond, func() {
			tb.machine.Host().Crash()
		})
		_, err := c.Submit(`&(executable=work)(count=1)`)
		if err != rpc.ErrClosed {
			t.Errorf("Submit during crash = %v, want rpc.ErrClosed", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestParseJobRSLEnvironmentAndMaxTime(t *testing.T) {
	spec, err := ParseJobRSL(`&(executable=worker)(count=4)(maxTime=15)(environment=(DUROC_CONTACT host:duroc INDEX 3))`)
	if err != nil {
		t.Fatalf("ParseJobRSL: %v", err)
	}
	if spec.Executable != "worker" || spec.Count != 4 {
		t.Errorf("spec = %+v", spec)
	}
	if spec.TimeLimit != 15*time.Minute {
		t.Errorf("TimeLimit = %v, want 15m", spec.TimeLimit)
	}
	if spec.Env["DUROC_CONTACT"] != "host:duroc" || spec.Env["INDEX"] != "3" {
		t.Errorf("Env = %v", spec.Env)
	}
}

func TestParseJobRSLRejectsOddEnvironment(t *testing.T) {
	if _, err := ParseJobRSL(`&(executable=w)(count=1)(environment=(A))`); err == nil {
		t.Error("odd environment sequence accepted")
	}
}
