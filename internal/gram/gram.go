// Package gram implements the Globus Resource Allocation Manager: the
// per-resource service through which all jobs are submitted.
//
// A request follows the pipeline the paper's Figure 3 breaks down: the
// gatekeeper authenticates the client (GSI, 0.5 s), resolves the local
// user's groups (initgroups via NIS, 0.7 s), parses the RSL and performs
// miscellaneous request handling (0.01 s), and creates processes through
// the local resource manager (fork, 0.001 s). The submit reply carries a
// job contact; subsequent job state transitions are pushed to the
// submitting client as callbacks over the same connection.
package gram

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"cogrid/internal/gsi"
	"cogrid/internal/lrm"
	"cogrid/internal/nis"
	"cogrid/internal/rpc"
	"cogrid/internal/rsl"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// ServiceName is the transport service the gatekeeper listens on.
const ServiceName = "gram"

// Errors returned by GRAM operations.
var (
	ErrBadRSL    = errors.New("gram: invalid RSL")
	ErrNoSuchJob = errors.New("gram: no such job contact")
)

// CostModel captures gatekeeper overheads besides authentication and
// initgroups, which are owned by the gsi and nis packages.
type CostModel struct {
	// Misc is request parsing and bookkeeping (Figure 3: 0.01 s).
	Misc time.Duration
}

// DefaultCost is the Figure 3 calibration.
var DefaultCost = CostModel{Misc: 10 * time.Millisecond}

// StateEvent is a job state callback.
type StateEvent struct {
	Contact string        `json:"contact"`
	State   lrm.JobState  `json:"state"`
	Reason  string        `json:"reason,omitempty"`
	At      time.Duration `json:"at"`
}

type submitArgs struct {
	RSL string `json:"rsl"`
}

type submitReply struct {
	JobContact string `json:"job_contact"`
}

type contactArgs struct {
	JobContact string `json:"job_contact"`
}

type signalArgs struct {
	JobContact string `json:"job_contact"`
	Signal     string `json:"signal"`
}

type statusReply struct {
	State  lrm.JobState `json:"state"`
	Reason string       `json:"reason,omitempty"`
}

// ServerConfig configures a gatekeeper.
type ServerConfig struct {
	Credential gsi.Credential
	Registry   *gsi.Registry
	AuthCost   gsi.CostModel // zero value replaced by gsi.DefaultCost
	Cost       CostModel     // zero value replaced by DefaultCost
	NISAddr    transport.Addr
	// Timeline, if set, records the phases of each request for the
	// Figure 3 breakdown and Figure 5 timeline.
	Timeline PhaseRecorder
}

// PhaseRecorder receives phase spans from the gatekeeper.
type PhaseRecorder interface {
	Add(actor, phase string, start, end time.Duration)
}

// Server is a gatekeeper bound to one machine.
type Server struct {
	sim     *vtime.Sim
	host    *transport.Host
	machine *lrm.Machine
	cfg     ServerConfig

	mu   sync.Mutex
	jobs map[string]*lrm.Job
}

// StartServer starts a gatekeeper for machine.
func StartServer(machine *lrm.Machine, cfg ServerConfig) (*Server, error) {
	if cfg.AuthCost == (gsi.CostModel{}) {
		cfg.AuthCost = gsi.DefaultCost
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCost
	}
	s := &Server{
		sim:     machine.Host().Network().Sim(),
		host:    machine.Host(),
		machine: machine,
		cfg:     cfg,
		jobs:    make(map[string]*lrm.Job),
	}
	l, err := machine.Host().Listen(ServiceName)
	if err != nil {
		return nil, err
	}
	rpc.Serve(s.sim, l, s, s.preamble)
	return s, nil
}

// Contact returns the gatekeeper's address.
func (s *Server) Contact() transport.Addr {
	return transport.Addr{Host: s.host.Name(), Service: ServiceName}
}

// preamble is the GSI server handshake; the authenticated identity becomes
// the connection's Meta.
func (s *Server) preamble(conn *transport.Conn) (any, error) {
	start := s.sim.Now()
	peer, err := gsi.ServerHandshake(s.sim, conn, s.cfg.Credential, s.cfg.Registry, s.cfg.AuthCost)
	s.record(conn.Ctx(), "gram", "authentication", start, s.sim.Now())
	if err != nil {
		return nil, err
	}
	return peer, nil
}

func (s *Server) record(ctx trace.Ctx, actor, phase string, start, end time.Duration) {
	if s.cfg.Timeline != nil {
		s.cfg.Timeline.Add(actor, phase, start, end)
	}
	// The same phase also lands in the trace stream, so the Figure 3
	// breakdown is derivable from a trace without a dedicated Timeline.
	s.host.Network().Tracer().SpanAtCtx(ctx.Child(trace.Seg(phase)), "gram", phase, s.host.Name(), actor, "", start, end)
}

// HandleCall implements rpc.Handler.
func (s *Server) HandleCall(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
	switch method {
	case "submit":
		return s.handleSubmit(sc, body)
	case "cancel":
		var args contactArgs
		if err := rpc.Decode(body, &args); err != nil {
			return nil, err
		}
		job, err := s.lookup(args.JobContact)
		if err != nil {
			return nil, err
		}
		job.Cancel()
		return nil, nil
	case "status":
		var args contactArgs
		if err := rpc.Decode(body, &args); err != nil {
			return nil, err
		}
		job, err := s.lookup(args.JobContact)
		if err != nil {
			return nil, err
		}
		return statusReply{State: job.State(), Reason: job.Reason()}, nil
	case "signal":
		var args signalArgs
		if err := rpc.Decode(body, &args); err != nil {
			return nil, err
		}
		job, err := s.lookup(args.JobContact)
		if err != nil {
			return nil, err
		}
		switch args.Signal {
		case "suspend":
			return nil, job.Suspend()
		case "resume":
			return nil, job.Resume()
		}
		return nil, fmt.Errorf("gram: unknown signal %q", args.Signal)
	case "queueinfo":
		return s.machine.QueueInfo(), nil
	case "estimatewait":
		var args struct {
			Count int `json:"count"`
		}
		if err := rpc.Decode(body, &args); err != nil {
			return nil, err
		}
		return struct {
			Wait time.Duration `json:"wait"`
		}{Wait: s.machine.EstimateWait(args.Count)}, nil
	case "reserve":
		var args reserveArgs
		if err := rpc.Decode(body, &args); err != nil {
			return nil, err
		}
		res, err := s.machine.Reserve(args.Count, args.Start, args.Duration)
		if err != nil {
			return nil, err
		}
		return reserveReply{ID: res.ID, Start: res.Start, End: res.End, Count: res.Count}, nil
	case "cancelreservation":
		var args struct {
			ID string `json:"id"`
		}
		if err := rpc.Decode(body, &args); err != nil {
			return nil, err
		}
		s.machine.CancelReservation(args.ID)
		return nil, nil
	case "earliestslot":
		var args slotArgs
		if err := rpc.Decode(body, &args); err != nil {
			return nil, err
		}
		start, err := s.machine.EarliestSlot(args.Count, args.Duration, args.NotBefore)
		if err != nil {
			return nil, err
		}
		return struct {
			Start time.Duration `json:"start"`
		}{Start: start}, nil
	}
	return nil, fmt.Errorf("gram: unknown method %s", method)
}

// Reservation wire types (the GARA-style extension of Section 5).
type reserveArgs struct {
	Count    int           `json:"count"`
	Start    time.Duration `json:"start"`
	Duration time.Duration `json:"duration"`
}

type reserveReply struct {
	ID    string        `json:"id"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
	Count int           `json:"count"`
}

type slotArgs struct {
	Count     int           `json:"count"`
	Duration  time.Duration `json:"duration"`
	NotBefore time.Duration `json:"not_before"`
}

// HandleNotify implements rpc.Handler; GRAM has no inbound notifications.
func (s *Server) HandleNotify(sc *rpc.ServerConn, method string, body json.RawMessage) {}

func (s *Server) lookup(contact string) (*lrm.Job, error) {
	s.mu.Lock()
	job, ok := s.jobs[contact]
	s.mu.Unlock()
	if ok {
		return job, nil
	}
	// The contact embeds its LRM job id, so a gatekeeper restarted after
	// a host crash — empty contact table, but the machine's job state
	// intact — still resolves contacts its predecessor issued. Without
	// this, a committed-but-lost job on a rebooted machine could never be
	// cancelled again.
	if id, ok := strings.CutPrefix(contact, s.Contact().String()+"/"); ok {
		if job, err := s.machine.Job(id); err == nil {
			return job, nil
		}
	}
	return nil, ErrNoSuchJob
}

// handleSubmit runs the gatekeeper pipeline: misc parsing, initgroups,
// submission to the local manager. It runs after the preamble's
// authentication, in the per-connection loop.
func (s *Server) handleSubmit(sc *rpc.ServerConn, body json.RawMessage) (any, error) {
	user, _ := sc.Meta.(string)
	// Capture the serve context now: sc.Ctx is rebound per call, but the
	// watch daemon below outlives this one.
	ctx := sc.Ctx
	var args submitArgs
	if err := rpc.Decode(body, &args); err != nil {
		return nil, err
	}

	// Misc: parse and validate the request.
	miscStart := s.sim.Now()
	spec, err := ParseJobRSL(args.RSL)
	s.sim.Sleep(s.cfg.Cost.Misc)
	s.record(ctx, "gram", "misc", miscStart, s.sim.Now())
	if err != nil {
		return nil, err
	}

	// initgroups: resolve the authenticated user's groups via NIS.
	igStart := s.sim.Now()
	if _, err := nis.InitgroupsCtx(s.host, s.cfg.NISAddr, user, gsi.HandshakeTimeout, ctx.Child("nis")); err != nil {
		return nil, fmt.Errorf("gram: initgroups for %s: %w", user, err)
	}
	s.record(ctx, "gram", "initgroups", igStart, s.sim.Now())

	// Create processes through the local resource manager.
	forkStart := s.sim.Now()
	job, err := s.machine.Submit(spec)
	s.record(ctx, "gram", "fork", forkStart, s.sim.Now())
	if err != nil {
		return nil, err
	}

	// The contact is derived from the LRM job id (not a per-server
	// counter) so it stays resolvable across gatekeeper restarts.
	contact := fmt.Sprintf("%s/%s", s.Contact(), job.ID())
	s.mu.Lock()
	s.jobs[contact] = job
	s.mu.Unlock()

	net := s.host.Network()
	net.Counters().Add(trace.Key("gram", "job", "submit", s.host.Name()), 1)

	// Push every state transition back to the submitter as a callback,
	// parented to the submit that created the job.
	jobCtx := ctx.Child("job")
	s.sim.GoDaemon("gram-watch:"+contact, func() {
		for {
			state, ok := job.Events().Recv()
			if !ok {
				return
			}
			reason := job.Reason()
			net.Tracer().InstantCtx(jobCtx, "gram", "state:"+state.String(), s.host.Name(), contact, "",
				trace.Arg{Key: "reason", Val: reason})
			net.Counters().Add(trace.Key("gram", "state", state.String(), s.host.Name()), 1)
			sc.NotifyCtx(jobCtx, "job-state", StateEvent{
				Contact: contact,
				State:   state,
				Reason:  reason,
				At:      s.sim.Now(),
			})
		}
	})
	return submitReply{JobContact: contact}, nil
}

// ParseJobRSL converts a single-subjob RSL conjunction into an lrm.JobSpec.
// Recognized attributes: executable (required), count (required),
// maxTime (minutes, optional), environment (optional sequence of
// alternating names and values), plus the DUROC attributes handled by the
// co-allocator (ignored here).
func ParseJobRSL(src string) (lrm.JobSpec, error) {
	node, err := rsl.Parse(src)
	if err != nil {
		return lrm.JobSpec{}, fmt.Errorf("%w: %v", ErrBadRSL, err)
	}
	return JobSpecFromNode(node)
}

// JobSpecFromNode converts a parsed conjunction into an lrm.JobSpec.
func JobSpecFromNode(node rsl.Node) (lrm.JobSpec, error) {
	spec := lrm.JobSpec{}
	exe, ok, err := rsl.GetString(node, "executable", nil)
	if err != nil || !ok {
		return spec, fmt.Errorf("%w: missing executable (%v)", ErrBadRSL, err)
	}
	spec.Executable = exe
	count, ok, err := rsl.GetInt(node, "count", nil)
	if err != nil || !ok {
		return spec, fmt.Errorf("%w: missing or bad count (%v)", ErrBadRSL, err)
	}
	spec.Count = count
	if minutes, ok, err := rsl.GetInt(node, "maxTime", nil); err != nil {
		return spec, fmt.Errorf("%w: bad maxTime (%v)", ErrBadRSL, err)
	} else if ok {
		spec.TimeLimit = time.Duration(minutes) * time.Minute
	}
	if resID, ok, err := rsl.GetString(node, "reservationID", nil); err != nil {
		return spec, fmt.Errorf("%w: bad reservationID (%v)", ErrBadRSL, err)
	} else if ok {
		spec.ReservationID = resID
	}
	if env, ok := rsl.Attributes(node)["environment"]; ok {
		seq, isSeq := env.(rsl.Seq)
		if !isSeq || len(seq)%2 != 0 {
			return spec, fmt.Errorf("%w: environment must be a sequence of name value pairs", ErrBadRSL)
		}
		spec.Env = make(map[string]string, len(seq)/2)
		for i := 0; i < len(seq); i += 2 {
			k, err := rsl.Eval(seq[i], nil)
			if err != nil {
				return spec, fmt.Errorf("%w: %v", ErrBadRSL, err)
			}
			v, err := rsl.Eval(seq[i+1], nil)
			if err != nil {
				return spec, fmt.Errorf("%w: %v", ErrBadRSL, err)
			}
			spec.Env[k] = v
		}
	}
	return spec, nil
}
