package gram

import (
	"testing"
	"time"

	"cogrid/internal/lrm"
)

func TestSignalSuspendResume(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		contact, err := c.Submit(`&(executable=work)(count=2)`)
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		tb.sim.Sleep(time.Second)
		if err := c.Suspend(contact); err != nil {
			t.Errorf("Suspend: %v", err)
			return
		}
		state, _, err := c.Status(contact)
		if err != nil || state != lrm.StateSuspended {
			t.Errorf("Status = %v, %v; want SUSPENDED", state, err)
		}
		if ev, ok := waitForState(c, lrm.StateSuspended); !ok {
			t.Error("no SUSPENDED callback")
		} else if ev.Contact != contact {
			t.Errorf("callback contact = %q", ev.Contact)
		}
		if err := c.Resume(contact); err != nil {
			t.Errorf("Resume: %v", err)
			return
		}
		if _, ok := waitForState(c, lrm.StateDone); !ok {
			t.Error("job never finished after resume")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSignalValidation(t *testing.T) {
	tb := newTestbed(t, lrm.Fork)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		if err := c.Suspend("origin:gram/404"); err == nil {
			t.Error("Suspend of unknown contact succeeded")
		}
		contact, err := c.Submit(`&(executable=work)(count=1)`)
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if err := c.Resume(contact); err == nil {
			t.Error("Resume of running job succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestConcurrentSubmissionsOverlap(t *testing.T) {
	// Separate connections to one gatekeeper process their pipelines
	// concurrently (the real gatekeeper forks a handler per request);
	// only DUROC's client-side sequencing serializes them.
	tb := newTestbed(t, lrm.Fork)
	const n = 6
	var oneAt time.Duration
	{
		tbSolo := newTestbed(t, lrm.Fork)
		err := tbSolo.sim.Run("solo", func() {
			c := tbSolo.dial(t)
			defer c.Close()
			if _, err := c.Submit(`&(executable=work)(count=1)`); err != nil {
				t.Errorf("solo Submit: %v", err)
			}
			oneAt = tbSolo.sim.Now()
		})
		if err != nil {
			t.Fatalf("solo sim: %v", err)
		}
	}
	done := 0
	err := tb.sim.Run("main", func() {
		results := make(chan error, n)
		for i := 0; i < n; i++ {
			tb.sim.Go("submitter", func() {
				c := tb.dial(t)
				defer c.Close()
				_, err := c.Submit(`&(executable=work)(count=1)`)
				results <- err
			})
		}
		for i := 0; i < n; i++ {
			// Drain results without blocking the kernel: poll with sleeps.
			for {
				select {
				case err := <-results:
					if err != nil {
						t.Errorf("Submit: %v", err)
					}
					done++
				default:
					tb.sim.Sleep(100 * time.Millisecond)
					continue
				}
				break
			}
		}
		// Concurrent submissions cost barely more than one.
		if tb.sim.Now() > oneAt+2*time.Second {
			t.Errorf("%d concurrent submissions took %v; one takes %v", n, tb.sim.Now(), time.Duration(oneAt))
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if done != n {
		t.Fatalf("%d of %d submissions completed", done, n)
	}
}

func TestReservationRPCs(t *testing.T) {
	tb := newTestbed(t, lrm.Batch)
	err := tb.sim.Run("main", func() {
		c := tb.dial(t)
		defer c.Close()
		slot, err := c.EarliestSlot(32, time.Hour, 10*time.Minute)
		if err != nil {
			t.Errorf("EarliestSlot: %v", err)
			return
		}
		if slot != 10*time.Minute {
			t.Errorf("slot = %v, want 10m (idle machine)", slot)
		}
		res, err := c.Reserve(64, slot, time.Hour)
		if err != nil {
			t.Errorf("Reserve: %v", err)
			return
		}
		if res.Count != 64 || res.Start != slot || res.End != slot+time.Hour {
			t.Errorf("reservation = %+v", res)
		}
		// The window is taken: the next full-machine slot moves past it.
		slot2, err := c.EarliestSlot(64, time.Hour, 10*time.Minute)
		if err != nil {
			t.Errorf("EarliestSlot 2: %v", err)
			return
		}
		if slot2 != res.End {
			t.Errorf("slot2 = %v, want %v", slot2, res.End)
		}
		if _, err := c.Reserve(64, slot, time.Hour); err == nil {
			t.Error("conflicting Reserve succeeded")
		}
		if err := c.CancelReservation(res.ID); err != nil {
			t.Errorf("CancelReservation: %v", err)
		}
		if _, err := c.Reserve(64, slot, time.Hour); err != nil {
			t.Errorf("Reserve after cancel: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
