package gram

import (
	"fmt"
	"time"

	"cogrid/internal/gsi"
	"cogrid/internal/lrm"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// CallTimeout bounds individual GRAM calls. Submissions include
// initgroups and local-manager work, so this is generous.
const CallTimeout = 5 * time.Minute

// Client is an authenticated connection to one gatekeeper.
type Client struct {
	sim    *vtime.Sim
	rpcc   *rpc.Client
	peer   string
	events *vtime.Chan[StateEvent]
}

// ClientConfig configures dialing a gatekeeper.
type ClientConfig struct {
	Credential gsi.Credential
	Registry   *gsi.Registry
	AuthCost   gsi.CostModel // zero value replaced by gsi.DefaultCost
	// Ctx is the causal span context the connection serves (e.g. one
	// subjob's context). Every call on the client parents under it.
	Ctx trace.Ctx
}

// Dial connects to a gatekeeper and performs mutual authentication. The
// returned client carries the job-state callback stream for jobs submitted
// on this connection.
func Dial(from *transport.Host, contact transport.Addr, cfg ClientConfig) (*Client, error) {
	if cfg.AuthCost == (gsi.CostModel{}) {
		cfg.AuthCost = gsi.DefaultCost
	}
	sim := from.Network().Sim()
	conn, err := from.DialCtx(contact, cfg.Ctx)
	if err != nil {
		return nil, fmt.Errorf("gram: dial %s: %w", contact, err)
	}
	peer, err := gsi.ClientHandshake(sim, conn, cfg.Credential, cfg.Registry, cfg.AuthCost)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("gram: authenticate to %s: %w", contact, err)
	}
	c := &Client{
		sim:    sim,
		rpcc:   rpc.NewClient(sim, conn),
		peer:   peer,
		events: vtime.NewChan[StateEvent](sim, "gram-events:"+contact.String(), 64),
	}
	sim.GoDaemon("gram-client-events:"+contact.String(), c.pump)
	return c, nil
}

// pump converts raw notifications into typed state events.
func (c *Client) pump() {
	for {
		n, ok := c.rpcc.Notifications().Recv()
		if !ok {
			c.events.Close()
			return
		}
		if n.Method != "job-state" {
			continue
		}
		var ev StateEvent
		if n.Decode(&ev) == nil {
			c.events.TrySend(ev)
		}
	}
}

// Peer returns the authenticated gatekeeper identity.
func (c *Client) Peer() string { return c.peer }

// Events returns the job-state callback stream for this connection. The
// channel closes when the connection does.
func (c *Client) Events() *vtime.Chan[StateEvent] { return c.events }

// Close tears down the connection; callbacks stop flowing.
func (c *Client) Close() { c.rpcc.Close() }

// Submit submits an RSL job specification and returns its job contact.
// The call returns after the gatekeeper has authenticated the request,
// resolved groups, and created (fork mode) or queued (batch mode) the job.
func (c *Client) Submit(rslSrc string) (string, error) {
	var reply submitReply
	if err := c.rpcc.Call("submit", submitArgs{RSL: rslSrc}, &reply, CallTimeout); err != nil {
		return "", err
	}
	return reply.JobContact, nil
}

// Cancel kills the job with the given contact.
func (c *Client) Cancel(contact string) error {
	return c.CancelTimeout(contact, CallTimeout)
}

// CancelTimeout is Cancel with a caller-chosen deadline, for best-effort
// cleanup paths that must detect an unresponsive resource manager
// quickly rather than blocking for the full CallTimeout.
func (c *Client) CancelTimeout(contact string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = CallTimeout
	}
	return c.rpcc.Call("cancel", contactArgs{JobContact: contact}, nil, timeout)
}

// Suspend pauses the job's processes.
func (c *Client) Suspend(contact string) error {
	return c.rpcc.Call("signal", signalArgs{JobContact: contact, Signal: "suspend"}, nil, CallTimeout)
}

// Resume continues a suspended job.
func (c *Client) Resume(contact string) error {
	return c.rpcc.Call("signal", signalArgs{JobContact: contact, Signal: "resume"}, nil, CallTimeout)
}

// Status polls a job's state.
func (c *Client) Status(contact string) (lrm.JobState, string, error) {
	var reply statusReply
	if err := c.rpcc.Call("status", contactArgs{JobContact: contact}, &reply, CallTimeout); err != nil {
		return 0, "", err
	}
	return reply.State, reply.Reason, nil
}

// QueueInfo fetches the machine's published scheduler state.
func (c *Client) QueueInfo() (lrm.QueueInfo, error) {
	var reply lrm.QueueInfo
	err := c.rpcc.Call("queueinfo", nil, &reply, CallTimeout)
	return reply, err
}

// EstimateWait fetches the machine's queue-wait forecast for a job of the
// given size.
func (c *Client) EstimateWait(count int) (time.Duration, error) {
	var reply struct {
		Wait time.Duration `json:"wait"`
	}
	err := c.rpcc.Call("estimatewait", struct {
		Count int `json:"count"`
	}{Count: count}, &reply, CallTimeout)
	return reply.Wait, err
}

// Reservation is a remotely held advance reservation.
type Reservation struct {
	ID    string
	Start time.Duration
	End   time.Duration
	Count int
}

// Reserve books count processors for [start, start+duration) — the
// reservation extension the paper's Section 5 identifies as future work.
func (c *Client) Reserve(count int, start, duration time.Duration) (Reservation, error) {
	var reply reserveReply
	err := c.rpcc.Call("reserve", reserveArgs{Count: count, Start: start, Duration: duration}, &reply, CallTimeout)
	if err != nil {
		return Reservation{}, err
	}
	return Reservation{ID: reply.ID, Start: reply.Start, End: reply.End, Count: reply.Count}, nil
}

// CancelReservation releases a reservation.
func (c *Client) CancelReservation(id string) error {
	return c.rpcc.Call("cancelreservation", struct {
		ID string `json:"id"`
	}{ID: id}, nil, CallTimeout)
}

// EarliestSlot queries when count processors could next be reserved for
// duration, at or after notBefore.
func (c *Client) EarliestSlot(count int, duration, notBefore time.Duration) (time.Duration, error) {
	var reply struct {
		Start time.Duration `json:"start"`
	}
	err := c.rpcc.Call("earliestslot", slotArgs{Count: count, Duration: duration, NotBefore: notBefore}, &reply, CallTimeout)
	return reply.Start, err
}
