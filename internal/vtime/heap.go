package vtime

import "container/heap"

// heapQueue is the original binary-heap timer engine, retained as the
// reference scheduler: the differential kernel-equivalence suite runs every
// scenario on both engines and asserts byte-identical output. It is exact
// but O(log n) per operation, which is why the wheel replaced it as the
// default.
type heapQueue struct {
	h timerHeap
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (q *heapQueue) push(e *timerEntry) { heap.Push(&q.h, e) }

func (q *heapQueue) pop() *timerEntry {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*timerEntry)
}

func (q *heapQueue) peek() *timerEntry {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) len() int { return len(q.h) }

type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	entry := x.(*timerEntry)
	entry.index = len(*h)
	*h = append(*h, entry)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	entry := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return entry
}
