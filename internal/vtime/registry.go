package vtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The blocked-process registry exists only to make deadlock reports
// informative, yet under the old design every block/wake paid for it at the
// center of the kernel: one global map guarded by s.mu and an eager
// fmt.Sprintf per Sleep. At million-job scale that is real contention and
// real garbage. The registry is now sharded by wait ID under its own locks
// (so paths like Sleep can register before touching s.mu at all) and
// records are plain structs formatted only if a deadlock actually happens.

const waitShardCount = 16

type waitKind uint8

const (
	waitSleep waitKind = iota
	waitSend
	waitRecv
	waitWaitGroup
	waitEvent
)

// waitInfo describes one blocked process, for deadlock reports.
type waitInfo struct {
	id       uint64
	kind     waitKind
	name     string
	deadline time.Duration
	since    time.Duration
}

func (w *waitInfo) describe() string {
	switch w.kind {
	case waitSleep:
		return fmt.Sprintf("sleep until t=%v (since t=%v)", w.deadline, w.since)
	case waitSend:
		return fmt.Sprintf("send on %s (since t=%v)", w.name, w.since)
	case waitRecv:
		return fmt.Sprintf("recv on %s (since t=%v)", w.name, w.since)
	case waitWaitGroup:
		return fmt.Sprintf("waitgroup wait (since t=%v)", w.since)
	default:
		return fmt.Sprintf("event %s (since t=%v)", w.name, w.since)
	}
}

type waitShard struct {
	mu sync.Mutex
	m  map[uint64]*waitInfo
	// Pad shards apart so their locks do not share a cache line.
	_ [40]byte
}

type waitRegistry struct {
	nextID atomic.Uint64
	shards [waitShardCount]waitShard
}

// add registers a blocked process and returns its wait ID. Safe to call
// with or without s.mu held (lock order is always s.mu → shard.mu).
func (r *waitRegistry) add(kind waitKind, name string, deadline, since time.Duration) uint64 {
	id := r.nextID.Add(1)
	sh := &r.shards[id%waitShardCount]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]*waitInfo)
	}
	sh.m[id] = &waitInfo{id: id, kind: kind, name: name, deadline: deadline, since: since}
	sh.mu.Unlock()
	return id
}

func (r *waitRegistry) drop(id uint64) {
	sh := &r.shards[id%waitShardCount]
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// snapshot returns every registered record ordered by wait ID.
func (r *waitRegistry) snapshot() []*waitInfo {
	var infos []*waitInfo
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, w := range sh.m {
			infos = append(infos, w)
		}
		sh.mu.Unlock()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].id < infos[j].id })
	return infos
}
