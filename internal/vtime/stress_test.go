package vtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCloseWhileRecvTimeoutPending(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "closing", 0)
	err := s.Run("main", func() {
		s.AfterFunc(2*time.Second, func() { ch.Close() })
		_, res := ch.RecvTimeout(time.Hour)
		if res != RecvClosed {
			t.Errorf("res = %v, want closed", res)
		}
		if s.Now() != 2*time.Second {
			t.Errorf("woke at %v, want 2s", s.Now())
		}
		// The cancelled hour-long timer must not hold the clock hostage:
		// the simulation ends now, not at t=1h.
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if now := s.Now(); now != 2*time.Second {
		t.Fatalf("simulation ended at %v, want 2s", now)
	}
}

func TestAfterFuncCascade(t *testing.T) {
	s := New()
	var order []string
	var mu sync.Mutex
	note := func(tag string) {
		mu.Lock()
		order = append(order, tag)
		mu.Unlock()
	}
	done := NewEvent(s, "done")
	s.AfterFunc(time.Second, func() {
		note("outer")
		s.Sleep(time.Second) // AfterFunc bodies may block in virtual time
		note("outer+1s")
		s.AfterFunc(time.Second, func() {
			note("inner")
			done.Set()
		})
	})
	err := s.Run("main", func() {
		done.Wait()
		if s.Now() != 3*time.Second {
			t.Errorf("cascade finished at %v, want 3s", s.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"outer", "outer+1s", "inner"}
	for i, tag := range want {
		if i >= len(order) || order[i] != tag {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWaitGroupConcurrentAddDone(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	const spawners, each = 8, 25
	wg.Add(spawners)
	for i := 0; i < spawners; i++ {
		s.Go("spawner", func() {
			for j := 0; j < each; j++ {
				wg.Add(1)
				s.Go("worker", func() {
					s.Sleep(time.Duration(1+j%7) * time.Millisecond)
					wg.Done()
				})
			}
			wg.Done()
		})
	}
	released := false
	err := s.Run("main", func() {
		wg.Wait()
		released = true
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !released {
		t.Fatal("WaitGroup never released")
	}
	if wg.Count() != 0 {
		t.Fatalf("count = %d", wg.Count())
	}
}

func TestMessageConservationUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	// Producers and consumers over a shared buffered channel with random
	// virtual delays: every message sent is received exactly once.
	s := NewSeeded(99)
	ch := NewChan[int](s, "load", 16)
	const producers, perProducer, consumers = 6, 100, 4
	var sent, received atomic.Int64
	prodWG := NewWaitGroup(s)
	prodWG.Add(producers)
	for p := 0; p < producers; p++ {
		s.Go("producer", func() {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				s.Sleep(time.Duration(s.RandIntn(5)) * time.Millisecond)
				ch.Send(1)
				sent.Add(1)
			}
		})
	}
	for c := 0; c < consumers; c++ {
		s.Go("consumer", func() {
			for {
				_, ok := ch.Recv()
				if !ok {
					return
				}
				received.Add(1)
				s.Sleep(time.Duration(s.RandIntn(3)) * time.Millisecond)
			}
		})
	}
	s.Go("closer", func() {
		prodWG.Wait()
		ch.Close()
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sent.Load() != producers*perProducer {
		t.Fatalf("sent = %d", sent.Load())
	}
	if received.Load() != sent.Load() {
		t.Fatalf("received %d of %d messages", received.Load(), sent.Load())
	}
}

func TestThousandsOfProcsSettle(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	s := New()
	const n = 5000
	var count atomic.Int64
	wg := NewWaitGroup(s)
	wg.Add(n)
	// Spawn from inside a simulated process: while the spawner is
	// runnable the clock cannot advance, so every sleep is relative to
	// t=0. Spawning from the real test goroutine would race with the
	// clock.
	err := s.Run("main", func() {
		for i := 0; i < n; i++ {
			d := time.Duration(i%100) * time.Millisecond
			s.Go("p", func() {
				s.Sleep(d)
				count.Add(1)
				wg.Done()
			})
		}
		wg.Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if count.Load() != n {
		t.Fatalf("only %d of %d procs ran", count.Load(), n)
	}
	if s.Now() != 99*time.Millisecond {
		t.Fatalf("clock = %v, want 99ms", s.Now())
	}
}

func TestRecvAfterTimedOutWaiterStillWorks(t *testing.T) {
	// A waiter that timed out leaves a dead entry in the receive queue;
	// later senders must skip it and reach live receivers.
	s := New()
	ch := NewChan[int](s, "stale", 0)
	err := s.Run("main", func() {
		if _, res := ch.RecvTimeout(time.Second); res != RecvTimedOut {
			t.Errorf("first recv = %v", res)
		}
		got := NewChan[int](s, "got", 1)
		s.Go("receiver", func() {
			v, _ := ch.Recv()
			got.Send(v)
		})
		s.Go("sender", func() {
			s.Sleep(time.Second)
			ch.Send(42)
		})
		v, _ := got.Recv()
		if v != 42 {
			t.Errorf("received %d", v)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
