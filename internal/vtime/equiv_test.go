// Package vtime_test holds the kernel-equivalence suite: full DST
// scenarios executed twice, once on the reference heap timer engine and
// once on the production timing wheel, with every observable artifact
// diffed byte for byte. The wheel earns its place in the kernel not by
// unit tests alone but by being indistinguishable from the engine it
// replaced under the harshest workloads the repo can generate —
// co-allocations, broker federations, injected faults, background load.
//
// This lives in an external test package because the dst harness imports
// vtime; the suite still runs under `go test ./internal/vtime/...`, where
// the engine it locks down lives.
package vtime_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"cogrid/internal/dst"
	"cogrid/internal/vtime"
)

// equivSeeds is how many generated scenarios the suite replays per
// profile. Each seed produces a different machine mix, driver, fault
// schedule, and background workload.
const equivSeeds = 16

// runEngine executes one scenario on the given engine, returning the
// invariant verdict (as canonical JSON) and the byte artifacts.
func runEngine(t *testing.T, sc dst.Scenario, engine vtime.TimerEngine) ([]byte, dst.Artifacts) {
	t.Helper()
	var arts dst.Artifacts
	res, err := dst.Run(sc, dst.RunOptions{Engine: engine, Artifacts: &arts})
	if err != nil {
		t.Fatalf("engine %v: %v", engine, err)
	}
	verdict, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("engine %v: marshal result: %v", engine, err)
	}
	return verdict, arts
}

// diffByteArtifact fails with a focused message locating the first
// differing line, so an equivalence break points at the drifting record
// rather than dumping two multi-megabyte blobs.
func diffByteArtifact(t *testing.T, name string, heap, wheel []byte) {
	t.Helper()
	if bytes.Equal(heap, wheel) {
		return
	}
	hLines := bytes.Split(heap, []byte("\n"))
	wLines := bytes.Split(wheel, []byte("\n"))
	n := len(hLines)
	if len(wLines) < n {
		n = len(wLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(hLines[i], wLines[i]) {
			t.Fatalf("%s: line %d differs\n  heap:  %s\n  wheel: %s", name, i+1, hLines[i], wLines[i])
		}
	}
	t.Fatalf("%s: line counts differ: heap %d, wheel %d", name, len(hLines), len(wLines))
}

// TestKernelEquivalenceDST is the lockdown: sixteen generated DST
// scenarios, each run start-to-finish on both timer engines, demanding
// byte-identical trace JSONL, gauge CSV, Prometheus exposition, and
// invariant verdicts. Any divergence — an event reordered across a virtual
// instant, a timer fired out of (when, seq) order, a gauge sampled
// differently — fails with the first differing line.
func TestKernelEquivalenceDST(t *testing.T) {
	for seed := int64(1); seed <= equivSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := dst.Generate(seed, dst.SmokeProfile)
			heapVerdict, heapArts := runEngine(t, sc, vtime.EngineHeap)
			wheelVerdict, wheelArts := runEngine(t, sc, vtime.EngineWheel)
			diffByteArtifact(t, "invariant verdict", heapVerdict, wheelVerdict)
			diffByteArtifact(t, "trace JSONL", heapArts.TraceJSONL, wheelArts.TraceJSONL)
			diffByteArtifact(t, "gauge CSV", heapArts.GaugeCSV, wheelArts.GaugeCSV)
			diffByteArtifact(t, "metrics exposition", heapArts.Metrics, wheelArts.Metrics)
			if len(heapArts.TraceJSONL) == 0 {
				t.Fatal("trace artifact is empty; the equivalence check compared nothing")
			}
		})
	}
}

// TestKernelSelfDeterminism pins schedule-independence directly: the same
// scenario run twice on the same engine must produce byte-identical
// artifacts, even when the Go scheduler is perturbed (the -race build is
// the harshest perturbation check.sh applies). This is the property the
// run-token scheduler provides; before it, a machine-crash scenario could
// flip an SLO alert depending on which of two same-instant wakes won the
// race. Cross-engine equivalence (the tests below) would be vacuous if a
// single engine could not even agree with itself.
func TestKernelSelfDeterminism(t *testing.T) {
	for _, engine := range []vtime.TimerEngine{vtime.EngineHeap, vtime.EngineWheel} {
		engine := engine
		t.Run(engine.String(), func(t *testing.T) {
			t.Parallel()
			sc := dst.Generate(3, dst.SmokeProfile)
			aVerdict, aArts := runEngine(t, sc, engine)
			bVerdict, bArts := runEngine(t, sc, engine)
			diffByteArtifact(t, "invariant verdict", aVerdict, bVerdict)
			diffByteArtifact(t, "trace JSONL", aArts.TraceJSONL, bArts.TraceJSONL)
			diffByteArtifact(t, "gauge CSV", aArts.GaugeCSV, bArts.GaugeCSV)
			diffByteArtifact(t, "metrics exposition", aArts.Metrics, bArts.Metrics)
		})
	}
}

// TestKernelEquivalenceReplaysRegressionScenarios replays the shrunk
// regression scenarios the DST corpus has accumulated — each one a real
// bug's minimal reproducer — on both engines. These are the exact
// interleavings that broke the system before; the wheel must walk through
// them identically.
func TestKernelEquivalenceReplaysRegressionScenarios(t *testing.T) {
	scenarios, err := dst.RegressionScenarios()
	if err != nil {
		t.Fatalf("loading regression corpus: %v", err)
	}
	if len(scenarios) == 0 {
		t.Fatal("no regression scenarios found")
	}
	for _, named := range scenarios {
		named := named
		t.Run(named.Name, func(t *testing.T) {
			t.Parallel()
			heapVerdict, heapArts := runEngine(t, named.Scenario, vtime.EngineHeap)
			wheelVerdict, wheelArts := runEngine(t, named.Scenario, vtime.EngineWheel)
			diffByteArtifact(t, "invariant verdict", heapVerdict, wheelVerdict)
			diffByteArtifact(t, "trace JSONL", heapArts.TraceJSONL, wheelArts.TraceJSONL)
			diffByteArtifact(t, "gauge CSV", heapArts.GaugeCSV, wheelArts.GaugeCSV)
			diffByteArtifact(t, "metrics exposition", heapArts.Metrics, wheelArts.Metrics)
		})
	}
}
