package vtime

import "time"

// WaitGroup is a simulated analogue of sync.WaitGroup: Wait blocks in
// virtual time until the counter reaches zero.
type WaitGroup struct {
	s       *Sim
	count   int
	waiters []*wgWaiter
}

type wgWaiter struct {
	park  chan struct{}
	state int
	wid   uint64
	timer *timerEntry
}

// NewWaitGroup creates a WaitGroup bound to s.
func NewWaitGroup(s *Sim) *WaitGroup { return &WaitGroup{s: s} }

// Add adds delta (which may be negative) to the counter. If the counter
// reaches zero, all blocked Wait calls are released. A negative counter
// panics.
func (wg *WaitGroup) Add(delta int) {
	s := wg.s
	s.mu.Lock()
	wg.count += delta
	if wg.count < 0 {
		s.mu.Unlock()
		panic("vtime: negative WaitGroup counter")
	}
	if wg.count == 0 {
		wg.releaseLocked()
	}
	s.mu.Unlock()
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Count returns the current counter value.
func (wg *WaitGroup) Count() int {
	wg.s.mu.Lock()
	defer wg.s.mu.Unlock()
	return wg.count
}

// Wait blocks in virtual time until the counter is zero.
func (wg *WaitGroup) Wait() { wg.wait(-1) }

// WaitTimeout blocks until the counter is zero or d of virtual time has
// elapsed; it reports whether the counter reached zero.
func (wg *WaitGroup) WaitTimeout(d time.Duration) bool {
	if d < 0 {
		panic("vtime: negative WaitGroup timeout")
	}
	return wg.wait(d)
}

func (wg *WaitGroup) wait(d time.Duration) bool {
	s := wg.s
	s.mu.Lock()
	if s.completed {
		s.mu.Unlock()
		parkForever()
	}
	if wg.count == 0 {
		s.mu.Unlock()
		return true
	}
	if d == 0 {
		s.mu.Unlock()
		return false
	}
	w := &wgWaiter{park: make(chan struct{}, 1)}
	w.wid = s.addWaitLocked(waitWaitGroup, "", 0)
	if d > 0 {
		w.timer = s.pushTimerLocked(s.now+d, func() {
			if w.state != wsWaiting {
				return
			}
			w.state = wsTimedOut
			s.wakeLocked(w.wid, w.park)
		})
	}
	wg.waiters = append(wg.waiters, w)
	s.blockLocked()
	s.mu.Unlock()
	<-w.park
	return w.state == wsDelivered
}

func (wg *WaitGroup) releaseLocked() {
	for _, w := range wg.waiters {
		if w.state != wsWaiting {
			continue
		}
		w.state = wsDelivered
		if w.timer != nil {
			wg.s.cancelTimerLocked(w.timer)
		}
		wg.s.wakeLocked(w.wid, w.park)
	}
	wg.waiters = nil
}

// Event is a one-shot broadcast flag: Wait blocks in virtual time until Set
// is called. Once set, an Event stays set. It is useful for cancellation
// and shutdown signals.
type Event struct {
	s       *Sim
	name    string
	set     bool
	waiters []*wgWaiter
}

// NewEvent creates an unset Event. The name appears in deadlock reports.
func NewEvent(s *Sim, name string) *Event { return &Event{s: s, name: name} }

// Set sets the event, releasing all current and future Wait calls. Setting
// an already-set event is a no-op.
func (e *Event) Set() {
	s := e.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.set {
		return
	}
	e.set = true
	for _, w := range e.waiters {
		if w.state != wsWaiting {
			continue
		}
		w.state = wsDelivered
		if w.timer != nil {
			s.cancelTimerLocked(w.timer)
		}
		s.wakeLocked(w.wid, w.park)
	}
	e.waiters = nil
}

// IsSet reports whether the event has been set.
func (e *Event) IsSet() bool {
	e.s.mu.Lock()
	defer e.s.mu.Unlock()
	return e.set
}

// Wait blocks in virtual time until the event is set.
func (e *Event) Wait() { e.wait(-1) }

// WaitTimeout blocks until the event is set or d of virtual time has
// elapsed; it reports whether the event was set.
func (e *Event) WaitTimeout(d time.Duration) bool {
	if d < 0 {
		panic("vtime: negative Event timeout")
	}
	return e.wait(d)
}

func (e *Event) wait(d time.Duration) bool {
	s := e.s
	s.mu.Lock()
	if s.completed {
		s.mu.Unlock()
		parkForever()
	}
	if e.set {
		s.mu.Unlock()
		return true
	}
	if d == 0 {
		s.mu.Unlock()
		return false
	}
	w := &wgWaiter{park: make(chan struct{}, 1)}
	w.wid = s.addWaitLocked(waitEvent, e.name, 0)
	if d > 0 {
		w.timer = s.pushTimerLocked(s.now+d, func() {
			if w.state != wsWaiting {
				return
			}
			w.state = wsTimedOut
			s.wakeLocked(w.wid, w.park)
		})
	}
	e.waiters = append(e.waiters, w)
	s.blockLocked()
	s.mu.Unlock()
	<-w.park
	return w.state == wsDelivered
}
