package vtime

import "math/bits"

// timerWheel is the default timer engine: a hierarchical timing wheel with
// a calendar-queue overflow level. It delivers entries in exactly the same
// (when, seq) order as the reference heap, but push and pop are O(1)
// amortized, which is what keeps a 10⁶-job simulation inside single-digit
// minutes.
//
// Layout. Virtual time is quantized into ticks of 2^wheelTickShift ns
// (≈8.2µs). Five levels of 64 slots each cover spans of 64, 64², … 64⁵
// ticks ahead of the wheel cursor; entries beyond the last level land in a
// calendar of overflow buckets keyed by epoch (tick >> 30, ≈2.4h each).
// Entries at or before the cursor's tick sit in a small "due" min-heap
// ordered by (when, seq) — only same-tick collisions pay the log cost.
//
// The cursor advances lazily: pop drains the due heap, and when it is
// empty finds the minimal occupied region across all levels and the
// overflow calendar (per-level uint64 occupancy bitmaps make this a
// rotate + trailing-zeros), advances the cursor to that region's start —
// safe, because nothing earlier is pending — and cascades the region's
// entries back through place(). A cascaded entry always lands strictly
// below its previous level (its delta from the new cursor is smaller than
// the old level's slot span), so each entry is touched at most
// wheelLevels+1 times over its life: O(1) amortized.
//
// Cancelled entries are discarded lazily when popped, exactly like the
// heap engine; the kernel tracks the live count separately.
type timerWheel struct {
	cursor   int64 // current tick; only advances
	due      dueHeap
	slots    [wheelLevels][wheelSlots][]*timerEntry
	occupied [wheelLevels]uint64
	overflow map[int64][]*timerEntry
	count    int
}

const (
	wheelTickShift = 13 // 1 tick = 2^13 ns ≈ 8.2µs
	wheelLevelBits = 6
	wheelSlots     = 1 << wheelLevelBits
	wheelMask      = wheelSlots - 1
	wheelLevels    = 5
	// overflowShift converts a tick index to its overflow epoch: one epoch
	// spans the whole wheel (64⁵ ticks ≈ 2.4h of virtual time).
	overflowShift = wheelLevelBits * wheelLevels
)

func newTimerWheel() *timerWheel { return &timerWheel{} }

func (w *timerWheel) push(e *timerEntry) {
	w.count++
	w.place(e)
}

func (w *timerWheel) pop() *timerEntry {
	for {
		if len(w.due.h) > 0 {
			w.count--
			return w.due.pop()
		}
		if !w.advance() {
			return nil
		}
	}
}

func (w *timerWheel) peek() *timerEntry {
	for {
		if len(w.due.h) > 0 {
			return w.due.h[0]
		}
		if !w.advance() {
			return nil
		}
	}
}

func (w *timerWheel) len() int { return w.count }

// place files e by its distance from the cursor: due heap (at or before the
// cursor's tick), a wheel level, or an overflow bucket. Slot indexes are
// absolute (tick >> levelShift, mod 64), so an entry's slot never depends
// on where the cursor happened to be when it was pushed.
//
// The level is chosen by unit-index distance, not tick delta: level l takes
// entries whose level-l unit lies within 63 units of the cursor's. A raw
// tick-delta bound (delta < 64^(l+1)) admits entries exactly 64 units ahead
// when the two phases straddle a unit boundary, which aliases onto the
// cursor's own occupancy bit and corrupts the wrap-around slot mapping —
// the classic hierarchical-wheel off-by-one. Index distance keeps every
// occupied slot inside (cursor, cursor+63] at its level, making the bitmap
// rotation in advance unambiguous.
func (w *timerWheel) place(e *timerEntry) {
	t := int64(e.when) >> wheelTickShift
	if t <= w.cursor {
		w.due.push(e)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelLevelBits * l)
		if (t>>shift)-(w.cursor>>shift) < wheelSlots {
			idx := (t >> shift) & wheelMask
			w.slots[l][idx] = append(w.slots[l][idx], e)
			w.occupied[l] |= 1 << uint(idx)
			return
		}
	}
	if w.overflow == nil {
		w.overflow = make(map[int64][]*timerEntry)
	}
	epoch := t >> overflowShift
	w.overflow[epoch] = append(w.overflow[epoch], e)
}

// advance moves the cursor to the earliest occupied region — the minimal
// slot start across all levels, or the minimal overflow epoch if that
// starts sooner — and cascades its entries down. It reports false when the
// wheel holds no entries outside the due heap.
//
// Choosing the minimal *start* is sound even though a coarse slot's start
// underestimates its entries' deadlines: cascading is a pure refinement
// (entries re-file relative to the new cursor without firing), and the
// next iteration compares the finer candidates. Ties prefer the finest
// level, so a due entry is never delayed behind a coarse cascade.
func (w *timerWheel) advance() bool {
	bestLevel := -1
	var bestStart, bestIdx int64
	for l := 0; l < wheelLevels; l++ {
		occ := w.occupied[l]
		if occ == 0 {
			continue
		}
		shift := uint(wheelLevelBits * l)
		cl := w.cursor >> shift
		c := int(cl & wheelMask)
		// Rotate so bit i corresponds to slot (c+i) mod 64: the first set
		// bit is the next occupied slot at or after the cursor's, in
		// absolute tick order (slots strictly between the old and new
		// cursor are always empty, so wrap-around is unambiguous).
		rot := bits.RotateLeft64(occ, -c)
		i := int64(bits.TrailingZeros64(rot))
		abs := cl + i
		start := abs << shift
		if bestLevel == -1 || start < bestStart {
			bestLevel, bestStart, bestIdx = l, start, abs&wheelMask
		}
	}
	if len(w.overflow) > 0 {
		minEpoch := int64(-1)
		for epoch := range w.overflow {
			if minEpoch == -1 || epoch < minEpoch {
				minEpoch = epoch
			}
		}
		if oStart := minEpoch << overflowShift; bestLevel == -1 || oStart < bestStart {
			if oStart > w.cursor {
				w.cursor = oStart
			}
			bucket := w.overflow[minEpoch]
			delete(w.overflow, minEpoch)
			for i, e := range bucket {
				w.place(e)
				bucket[i] = nil
			}
			return true
		}
	}
	if bestLevel == -1 {
		return false
	}
	if bestStart > w.cursor {
		w.cursor = bestStart
	}
	slot := w.slots[bestLevel][bestIdx]
	w.slots[bestLevel][bestIdx] = slot[:0]
	w.occupied[bestLevel] &^= 1 << uint(bestIdx)
	for i, e := range slot {
		w.place(e)
		slot[i] = nil
	}
	return true
}

// dueHeap is a minimal (when, seq) min-heap for entries at or before the
// cursor's tick. Unlike the reference heap it holds only one tick's worth
// of entries at a time.
type dueHeap struct {
	h []*timerEntry
}

func (d *dueHeap) push(e *timerEntry) {
	d.h = append(d.h, e)
	i := len(d.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !dueLess(d.h[i], d.h[parent]) {
			break
		}
		d.h[i], d.h[parent] = d.h[parent], d.h[i]
		i = parent
	}
}

func (d *dueHeap) pop() *timerEntry {
	top := d.h[0]
	n := len(d.h) - 1
	d.h[0] = d.h[n]
	d.h[n] = nil
	d.h = d.h[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && dueLess(d.h[right], d.h[left]) {
			least = right
		}
		if !dueLess(d.h[least], d.h[i]) {
			break
		}
		d.h[i], d.h[least] = d.h[least], d.h[i]
		i = least
	}
	return top
}

func dueLess(a, b *timerEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}
