// Package vtime implements a deterministic discrete-event virtual-time
// kernel for simulating distributed systems.
//
// Simulated processes are ordinary goroutines registered with a Sim via
// [Sim.Go] or [Sim.GoDaemon]. All blocking inside the simulation must go
// through kernel primitives — [Sim.Sleep], [Chan] operations, [WaitGroup],
// [Event] — so the kernel can account for runnable processes. Virtual time
// advances only when every registered process is blocked: the kernel then
// jumps the clock to the earliest pending timer and fires it. This makes
// timing exact (no wall-clock jitter) and fast (simulated seconds cost
// microseconds of real time).
//
// Processes may use plain sync.Mutex for instantaneous critical sections,
// but must never block on ordinary Go channels or hold a mutex across a
// kernel blocking call; doing so breaks runnable accounting.
//
// If every live non-daemon process is blocked and no timers are pending,
// the simulation has deadlocked: the kernel records a *DeadlockError
// describing each blocked process and terminates the run, and [Sim.Wait]
// returns the error.
package vtime

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sim is a discrete-event simulation kernel. Create one with New or
// NewSeeded; a zero Sim is not usable.
type Sim struct {
	mu        sync.Mutex
	now       time.Duration
	seq       uint64 // tiebreaker for timers scheduled at the same instant
	runnable  int    // processes currently executing (not blocked in the kernel)
	alive     int    // non-daemon processes that have not exited
	started   bool   // at least one non-daemon process was spawned
	completed bool   // all non-daemon processes exited, or deadlock detected
	timers    timerHeap
	waiting   map[uint64]*waitInfo
	nextWait  uint64
	done      chan struct{}
	deadlock  *DeadlockError

	rngMu sync.Mutex
	rng   *rand.Rand

	stats       KernelStats
	timersFired int64
	batchWhen   time.Duration // virtual instant of the open dispatch batch
	batchCount  int64         // timers dispatched at batchWhen so far
}

// Recorder consumes one non-negative int64 sample. It is the kernel's view
// of a latency histogram: vtime cannot import the metrics package (metrics
// builds on vtime), so callers inject recorders — *metrics.Histogram
// satisfies this interface — via SetStats. Implementations are invoked with
// the kernel lock held and therefore must not block or call back into the
// Sim; an atomic-only histogram qualifies.
type Recorder interface {
	Record(v int64)
}

// KernelStats wires distribution recorders into the kernel hot paths. Any
// nil field disables that probe at zero cost beyond a nil check.
type KernelStats struct {
	// TimerLead receives, for every timer that fires, its virtual lead time
	// in nanoseconds: how far ahead of the then-current clock it was set.
	// Fired timers are the deterministic population — whether a timeout
	// timer is even created can depend on real goroutine interleaving
	// within one virtual instant (a waiter may take a fast path and never
	// block), but a timer that fires exists and fires in every schedule.
	TimerLead Recorder
	// DispatchBatch receives, for every virtual instant at which at least
	// one timer fired, the number of timer callbacks dispatched at that
	// instant. Batches are keyed by the virtual clock, not by scheduler
	// invocation, so the recorded multiset is deterministic for a fixed
	// seed even though real goroutine interleaving varies run to run.
	DispatchBatch Recorder
}

// SetStats installs kernel probes. Call it during setup, before processes
// are spawned; recorders must be safe for use under the kernel lock (see
// Recorder).
func (s *Sim) SetStats(ks KernelStats) {
	s.mu.Lock()
	s.stats = ks
	s.mu.Unlock()
}

// TimersFired returns the total number of timer callbacks dispatched so
// far — the kernel's event throughput counter.
func (s *Sim) TimersFired() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timersFired
}

// waitInfo describes one blocked process, for deadlock reports.
type waitInfo struct {
	id     uint64
	kind   string
	detail string
	since  time.Duration
}

// DeadlockError reports that every live process was blocked with no pending
// timers. Blocked lists a human-readable description of each blocked
// process at the moment of detection.
type DeadlockError struct {
	Now     time.Duration
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("vtime: deadlock at t=%v: %d blocked: [%s]",
		e.Now, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// New returns a kernel seeded deterministically (seed 1).
func New() *Sim { return NewSeeded(1) }

// NewSeeded returns a kernel whose random source is seeded with seed.
func NewSeeded(seed int64) *Sim {
	return &Sim{
		waiting: make(map[uint64]*waitInfo),
		done:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time, measured from the start of the
// simulation.
func (s *Sim) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Go spawns fn as a simulated process. The simulation is complete when all
// non-daemon processes have returned.
func (s *Sim) Go(name string, fn func()) { s.spawn(name, fn, false) }

// GoDaemon spawns fn as a daemon process. Daemons (servers, background
// monitors) do not keep the simulation alive: once every non-daemon process
// has exited, the simulation completes and any still-blocked daemons are
// abandoned.
func (s *Sim) GoDaemon(name string, fn func()) { s.spawn(name, fn, true) }

func (s *Sim) spawn(name string, fn func(), daemon bool) {
	s.mu.Lock()
	if s.completed {
		s.mu.Unlock()
		return
	}
	s.runnable++
	if !daemon {
		s.alive++
		s.started = true
	}
	s.mu.Unlock()
	go func() {
		defer s.procExit(daemon)
		fn()
	}()
}

func (s *Sim) procExit(daemon bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runnable--
	if !daemon {
		s.alive--
		if s.alive == 0 && !s.completed {
			s.flushBatchLocked()
			s.completed = true
			close(s.done)
			return
		}
	}
	if s.runnable == 0 && !s.completed {
		s.advanceLocked()
	}
}

// Wait blocks the calling (real) goroutine until the simulation completes:
// every non-daemon process has exited, or a deadlock was detected. It
// returns the *DeadlockError in the latter case. At least one non-daemon
// process must have been spawned before calling Wait.
func (s *Sim) Wait() error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		panic("vtime: Wait called before any process was spawned")
	}
	s.mu.Unlock()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deadlock != nil {
		return s.deadlock
	}
	return nil
}

// Run spawns fn as a non-daemon process and waits for the simulation to
// complete. It is shorthand for Go followed by Wait.
func (s *Sim) Run(name string, fn func()) error {
	s.Go(name, fn)
	return s.Wait()
}

// Sleep suspends the calling process for d of virtual time. A non-positive
// d returns immediately.
func (s *Sim) Sleep(d time.Duration) {
	s.mu.Lock()
	if s.completed {
		s.mu.Unlock()
		parkForever()
	}
	if d <= 0 {
		s.mu.Unlock()
		return
	}
	park := make(chan struct{}, 1)
	wid := s.addWaitLocked("sleep", fmt.Sprintf("until t=%v", s.now+d))
	s.pushTimerLocked(s.now+d, func() {
		s.wakeLocked(wid, park)
	})
	s.blockLocked()
	s.mu.Unlock()
	<-park
}

// SleepUntil suspends the calling process until virtual time t. If t is not
// in the future it returns immediately.
func (s *Sim) SleepUntil(t time.Duration) {
	s.mu.Lock()
	d := t - s.now
	s.mu.Unlock()
	s.Sleep(d)
}

// Timer is a handle to a callback scheduled with AfterFunc.
type Timer struct {
	s *Sim
	t *timerEntry
}

// Stop cancels the timer. It reports whether the callback was prevented
// from running.
func (t *Timer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.t.cancelled || t.t.fired {
		return false
	}
	t.t.cancelled = true
	return true
}

// AfterFunc schedules fn to run as a new daemon process after d of virtual
// time. fn may use all kernel primitives.
func (s *Sim) AfterFunc(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry := s.pushTimerLocked(s.now+d, func() {
		// Runs under s.mu from advanceLocked: spawn without re-locking.
		s.runnable++
		go func() {
			defer s.procExit(true)
			fn()
		}()
	})
	return &Timer{s: s, t: entry}
}

// --- random helpers (safe for concurrent use by processes) ---

// RandFloat64 returns a pseudo-random float64 in [0,1).
func (s *Sim) RandFloat64() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Float64()
}

// RandIntn returns a pseudo-random int in [0,n).
func (s *Sim) RandIntn(n int) int {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Intn(n)
}

// RandNorm returns a normally distributed float64 with mean 0 and
// standard deviation 1.
func (s *Sim) RandNorm() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.NormFloat64()
}

// RandExp returns an exponentially distributed float64 with rate 1.
func (s *Sim) RandExp() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.ExpFloat64()
}

// --- kernel internals ---

// blockLocked marks the calling process blocked. Must be called with s.mu
// held; the caller must subsequently release s.mu and park on its wake
// channel.
func (s *Sim) blockLocked() {
	s.runnable--
	if s.runnable == 0 && !s.completed {
		s.advanceLocked()
	}
}

// wakeLocked makes one blocked process runnable and signals its parker.
// Must be called with s.mu held.
func (s *Sim) wakeLocked(wid uint64, park chan struct{}) {
	delete(s.waiting, wid)
	s.runnable++
	park <- struct{}{}
}

func (s *Sim) addWaitLocked(kind, detail string) uint64 {
	s.nextWait++
	id := s.nextWait
	s.waiting[id] = &waitInfo{id: id, kind: kind, detail: detail, since: s.now}
	return id
}

// advanceLocked advances virtual time while no process is runnable, firing
// timers in (time, insertion) order. Must be called with s.mu held and
// s.runnable == 0.
func (s *Sim) advanceLocked() {
	if s.alive == 0 {
		// No non-daemon process exists yet: the simulation has not
		// started. Daemons (servers) parking before the first Go call is
		// idle setup, not deadlock, and the clock stays at zero.
		return
	}
	for s.runnable == 0 && !s.completed {
		for len(s.timers) > 0 && s.timers[0].cancelled {
			heap.Pop(&s.timers)
		}
		if len(s.timers) == 0 {
			s.reportDeadlockLocked()
			return
		}
		entry := heap.Pop(&s.timers).(*timerEntry)
		if entry.when > s.now {
			s.now = entry.when
		}
		entry.fired = true
		// Dispatch batches are keyed by the clock value at fire time: a
		// woken process that blocks again at the same instant continues
		// the open batch, keeping the statistic independent of where the
		// scheduler happened to pause.
		if s.batchCount > 0 && s.now != s.batchWhen {
			s.flushBatchLocked()
		}
		s.batchWhen = s.now
		s.batchCount++
		s.timersFired++
		if s.stats.TimerLead != nil {
			s.stats.TimerLead.Record(int64(entry.when - entry.born))
		}
		entry.fn()
	}
}

// flushBatchLocked records and resets the open dispatch batch. Must be
// called with s.mu held.
func (s *Sim) flushBatchLocked() {
	if s.batchCount > 0 && s.stats.DispatchBatch != nil {
		s.stats.DispatchBatch.Record(s.batchCount)
	}
	s.batchCount = 0
}

func (s *Sim) reportDeadlockLocked() {
	s.flushBatchLocked()
	infos := make([]*waitInfo, 0, len(s.waiting))
	for _, w := range s.waiting {
		infos = append(infos, w)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].id < infos[j].id })
	blocked := make([]string, len(infos))
	for i, w := range infos {
		blocked[i] = fmt.Sprintf("%s %s (since t=%v)", w.kind, w.detail, w.since)
	}
	s.deadlock = &DeadlockError{Now: s.now, Blocked: blocked}
	s.completed = true
	close(s.done)
}

// parkForever parks the calling goroutine permanently. Used for daemons
// that block after the simulation has completed.
func parkForever() {
	select {}
}

// --- timer heap ---

type timerEntry struct {
	when      time.Duration
	born      time.Duration // clock value when the timer was scheduled
	seq       uint64
	fn        func() // runs under s.mu
	cancelled bool
	fired     bool
	index     int
}

func (s *Sim) pushTimerLocked(when time.Duration, fn func()) *timerEntry {
	s.seq++
	entry := &timerEntry{when: when, born: s.now, seq: s.seq, fn: fn}
	heap.Push(&s.timers, entry)
	return entry
}

type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	entry := x.(*timerEntry)
	entry.index = len(*h)
	*h = append(*h, entry)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	entry := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return entry
}
