// Package vtime implements a deterministic discrete-event virtual-time
// kernel for simulating distributed systems.
//
// Simulated processes are ordinary goroutines registered with a Sim via
// [Sim.Go] or [Sim.GoDaemon]. All blocking inside the simulation must go
// through kernel primitives — [Sim.Sleep], [Chan] operations, [WaitGroup],
// [Event] — so the kernel can account for runnable processes. Virtual time
// advances only when every registered process is blocked: the kernel then
// jumps the clock to the earliest pending timer and fires it. This makes
// timing exact (no wall-clock jitter) and fast (simulated seconds cost
// microseconds of real time).
//
// Timers are kept in one of two interchangeable engines selected at
// construction ([Config.Engine]): a hierarchical timer wheel with a
// calendar-queue overflow level (the default; O(1) amortized push/pop at
// million-timer scale) and the original binary heap, retained as the
// reference scheduler for differential testing. Both fire timers in
// identical (time, insertion) order.
//
// Execution is serialized: the kernel grants a run token to one process at
// a time, in FIFO wake order, so two processes woken at the same virtual
// instant never race — the same seed replays the same interleaving even
// under the race detector. Parked goroutines resume only when granted the
// token, and passive timer batches hold it until their last callback
// returns.
//
// Processes may use plain sync.Mutex for instantaneous critical sections,
// but must never block on ordinary Go channels or hold a mutex across a
// kernel blocking call; doing so breaks runnable accounting.
//
// If every live non-daemon process is blocked and no timers are pending,
// the simulation has deadlocked: the kernel records a *DeadlockError
// describing each blocked process and terminates the run, and [Sim.Wait]
// returns the error.
package vtime

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TimerEngine selects the data structure behind the kernel's timer queue.
type TimerEngine uint8

const (
	// EngineWheel is the default: a hierarchical timing wheel with a
	// calendar-queue overflow level. O(1) amortized push/pop.
	EngineWheel TimerEngine = iota
	// EngineHeap is the original container/heap scheduler, retained as the
	// reference implementation for differential kernel-equivalence tests.
	EngineHeap
)

func (e TimerEngine) String() string {
	switch e {
	case EngineWheel:
		return "wheel"
	case EngineHeap:
		return "heap"
	}
	return fmt.Sprintf("TimerEngine(%d)", uint8(e))
}

// ParseTimerEngine converts an engine name ("wheel" or "heap") to its
// TimerEngine value.
func ParseTimerEngine(name string) (TimerEngine, error) {
	switch name {
	case "wheel", "":
		return EngineWheel, nil
	case "heap":
		return EngineHeap, nil
	}
	return EngineWheel, fmt.Errorf("vtime: unknown timer engine %q", name)
}

// Config parameterizes kernel construction.
type Config struct {
	// Seed seeds the kernel's random source (0 means seed 1).
	Seed int64
	// Engine selects the timer queue implementation (default EngineWheel).
	Engine TimerEngine
	// PassiveWorkers bounds the worker pool that executes passive timer
	// callbacks (see AfterFuncPassive). 0 means 1: batches execute
	// sequentially in (when, seq) order, which preserves byte-for-byte run
	// determinism. Values > 1 run same-instant callbacks concurrently —
	// a multicore throughput option that forfeits determinism unless the
	// callbacks commute.
	PassiveWorkers int
}

// Sim is a discrete-event simulation kernel. Create one with New, NewSeeded
// or NewWithConfig; a zero Sim is not usable.
type Sim struct {
	mu        sync.Mutex
	now       time.Duration
	seq       uint64 // tiebreaker for timers scheduled at the same instant
	runnable  int    // processes ready to run: the token holder, the run queue, an in-flight passive batch
	alive     int    // non-daemon processes that have not exited
	started   bool   // at least one non-daemon process was spawned
	completed bool   // all non-daemon processes exited, or deadlock detected

	// Deterministic cooperative scheduling: at most one simulated process
	// executes at a time, selected in FIFO wake order. running marks the
	// run token as held; runq holds the grant channels of processes that
	// are ready but waiting their turn (runqHead is the pop index, reset
	// when the queue drains). Without this serialization two processes
	// woken at the same virtual instant race, and the winner — hence the
	// entire downstream run — is decided by the Go scheduler instead of
	// the seed.
	running  bool
	runq     []chan struct{}
	runqHead int

	timers     timerQueue
	liveTimers int // pending timers that are neither cancelled nor fired
	engine     TimerEngine

	waits    waitRegistry
	done     chan struct{}
	deadlock *DeadlockError

	// nowA mirrors now so that Now() never takes the kernel lock: the
	// clock is frozen whenever the reader is runnable, so a relaxed
	// atomic read is exact for simulated processes.
	nowA atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand

	stats       KernelStats
	timersFired atomic.Int64
	batchWhen   time.Duration // virtual instant of the open dispatch batch
	batchCount  int64         // timers dispatched at batchWhen so far

	pool       passivePool
	passiveBuf []*timerEntry // reusable batch buffer (one batch in flight at a time)
}

// Recorder consumes one non-negative int64 sample. It is the kernel's view
// of a latency histogram: vtime cannot import the metrics package (metrics
// builds on vtime), so callers inject recorders — *metrics.Histogram
// satisfies this interface — via SetStats. Implementations are invoked with
// the kernel lock held and therefore must not block or call back into the
// Sim; an atomic-only histogram qualifies.
type Recorder interface {
	Record(v int64)
}

// KernelStats wires distribution recorders into the kernel hot paths. Any
// nil field disables that probe at zero cost beyond a nil check.
type KernelStats struct {
	// TimerLead receives, for every timer that fires, its virtual lead time
	// in nanoseconds: how far ahead of the then-current clock it was set.
	// Fired timers are the deterministic population — whether a timeout
	// timer is even created can depend on real goroutine interleaving
	// within one virtual instant (a waiter may take a fast path and never
	// block), but a timer that fires exists and fires in every schedule.
	TimerLead Recorder
	// DispatchBatch receives, for every virtual instant at which at least
	// one timer fired, the number of timer callbacks dispatched at that
	// instant. Batches are keyed by the virtual clock, not by scheduler
	// invocation, so the recorded multiset is deterministic for a fixed
	// seed even though real goroutine interleaving varies run to run.
	DispatchBatch Recorder
}

// SetStats installs kernel probes. Call it during setup, before processes
// are spawned; recorders must be safe for use under the kernel lock (see
// Recorder).
func (s *Sim) SetStats(ks KernelStats) {
	s.mu.Lock()
	s.stats = ks
	s.mu.Unlock()
}

// TimersFired returns the total number of timer callbacks dispatched so
// far — the kernel's event throughput counter.
func (s *Sim) TimersFired() int64 { return s.timersFired.Load() }

// Engine returns the timer engine this kernel was constructed with.
func (s *Sim) Engine() TimerEngine { return s.engine }

// DeadlockError reports that every live process was blocked with no pending
// timers. Blocked lists a human-readable description of each blocked
// process at the moment of detection.
type DeadlockError struct {
	Now     time.Duration
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("vtime: deadlock at t=%v: %d blocked: [%s]",
		e.Now, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// New returns a kernel seeded deterministically (seed 1).
func New() *Sim { return NewSeeded(1) }

// NewSeeded returns a kernel whose random source is seeded with seed.
func NewSeeded(seed int64) *Sim { return NewWithConfig(Config{Seed: seed}) }

// NewWithConfig returns a kernel built per cfg.
func NewWithConfig(cfg Config) *Sim {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Sim{
		done:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		engine: cfg.Engine,
	}
	switch cfg.Engine {
	case EngineHeap:
		s.timers = newHeapQueue()
	default:
		s.timers = newTimerWheel()
	}
	s.pool.init(s, cfg.PassiveWorkers)
	return s
}

// Now returns the current virtual time, measured from the start of the
// simulation. It is lock-free: for a simulated process the clock cannot
// move while the caller is runnable, so the value is exact.
func (s *Sim) Now() time.Duration { return time.Duration(s.nowA.Load()) }

// setNowLocked advances the clock and its lock-free mirror. Must be called
// with s.mu held.
func (s *Sim) setNowLocked(t time.Duration) {
	s.now = t
	s.nowA.Store(int64(t))
}

// Go spawns fn as a simulated process. The simulation is complete when all
// non-daemon processes have returned.
func (s *Sim) Go(name string, fn func()) { s.spawn(name, fn, false) }

// GoDaemon spawns fn as a daemon process. Daemons (servers, background
// monitors) do not keep the simulation alive: once every non-daemon process
// has exited, the simulation completes and any still-blocked daemons are
// abandoned.
func (s *Sim) GoDaemon(name string, fn func()) { s.spawn(name, fn, true) }

func (s *Sim) spawn(name string, fn func(), daemon bool) {
	s.mu.Lock()
	if s.completed {
		s.mu.Unlock()
		return
	}
	s.runnable++
	if !daemon {
		s.alive++
		s.started = true
	}
	start := make(chan struct{}, 1)
	s.readyLocked(start)
	s.mu.Unlock()
	go func() {
		<-start
		defer s.procExit(daemon)
		fn()
	}()
}

func (s *Sim) procExit(daemon bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runnable--
	s.yieldLocked()
	if !daemon {
		s.alive--
		if s.alive == 0 && !s.completed {
			s.flushBatchLocked()
			s.completed = true
			close(s.done)
			return
		}
	}
	if s.runnable == 0 && !s.completed {
		s.advanceLocked()
	}
}

// Wait blocks the calling (real) goroutine until the simulation completes:
// every non-daemon process has exited, or a deadlock was detected. It
// returns the *DeadlockError in the latter case. At least one non-daemon
// process must have been spawned before calling Wait.
func (s *Sim) Wait() error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		panic("vtime: Wait called before any process was spawned")
	}
	s.mu.Unlock()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deadlock != nil {
		return s.deadlock
	}
	return nil
}

// Run spawns fn as a non-daemon process and waits for the simulation to
// complete. It is shorthand for Go followed by Wait.
func (s *Sim) Run(name string, fn func()) error {
	s.Go(name, fn)
	return s.Wait()
}

// Sleep suspends the calling process for d of virtual time. A non-positive
// d returns immediately.
func (s *Sim) Sleep(d time.Duration) {
	// The wait registration happens before the kernel lock: the caller is
	// runnable, so the clock is frozen and the lock-free Now() is exact.
	// This keeps registry writes (a sharded map) off the kernel hot path.
	var wid uint64
	var park chan struct{}
	if d > 0 {
		now := s.Now()
		wid = s.waits.add(waitSleep, "", now+d, now)
		park = make(chan struct{}, 1)
	}
	s.mu.Lock()
	if s.completed {
		s.mu.Unlock()
		if d > 0 {
			s.waits.drop(wid)
		}
		parkForever()
	}
	if d <= 0 {
		s.mu.Unlock()
		return
	}
	s.pushTimerLocked(s.now+d, func() {
		s.wakeLocked(wid, park)
	})
	s.blockLocked()
	s.mu.Unlock()
	<-park
}

// SleepUntil suspends the calling process until virtual time t. If t is not
// in the future it returns immediately.
func (s *Sim) SleepUntil(t time.Duration) {
	s.Sleep(t - s.Now())
}

// Timer is a handle to a callback scheduled with AfterFunc or
// AfterFuncPassive.
type Timer struct {
	s *Sim
	t *timerEntry
}

// Stop cancels the timer. It reports whether the callback was prevented
// from running.
func (t *Timer) Stop() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.s.cancelTimerLocked(t.t)
}

// Reset reschedules the timer to fire after d from the current virtual
// instant, whether or not it has already fired or been stopped. It reports
// whether the timer was still pending (and was therefore cancelled) at the
// time of the call, with the same meaning as Stop's return value.
func (t *Timer) Reset(d time.Duration) bool {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	was := s.cancelTimerLocked(t.t)
	entry := s.pushTimerLocked(s.now+d, t.t.fn)
	entry.passive = t.t.passive
	t.t = entry
	return was
}

// AfterFunc schedules fn to run as a new daemon process after d of virtual
// time. fn may use all kernel primitives, including blocking ones.
func (s *Sim) AfterFunc(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry := s.pushTimerLocked(s.now+d, func() {
		// Runs under s.mu from advanceLocked: spawn without re-locking.
		s.runnable++
		start := make(chan struct{}, 1)
		s.readyLocked(start)
		go func() {
			<-start
			defer s.procExit(true)
			fn()
		}()
	})
	return &Timer{s: s, t: entry}
}

// AfterFuncPassive schedules fn to run after d of virtual time on the
// kernel's bounded passive-dispatch worker pool instead of a dedicated
// goroutine. Same-instant passive callbacks are batched onto the pool,
// which makes passive timers dramatically cheaper at scale.
//
// fn MUST NOT block on kernel primitives (Sleep, Chan Send/Recv, WaitGroup
// or Event waits): a blocked passive callback corrupts runnable accounting.
// Non-blocking kernel calls (TrySend, TryRecv, Set, Go, GoDaemon,
// AfterFunc) are allowed. Use AfterFunc for callbacks that may block.
func (s *Sim) AfterFuncPassive(d time.Duration, fn func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry := s.pushTimerLocked(s.now+d, fn)
	entry.passive = true
	return &Timer{s: s, t: entry}
}

// --- random helpers (safe for concurrent use by processes) ---

// RandFloat64 returns a pseudo-random float64 in [0,1).
func (s *Sim) RandFloat64() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Float64()
}

// RandIntn returns a pseudo-random int in [0,n).
func (s *Sim) RandIntn(n int) int {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Intn(n)
}

// RandNorm returns a normally distributed float64 with mean 0 and
// standard deviation 1.
func (s *Sim) RandNorm() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.NormFloat64()
}

// RandExp returns an exponentially distributed float64 with rate 1.
func (s *Sim) RandExp() float64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.ExpFloat64()
}

// --- kernel internals ---

// blockLocked marks the calling process blocked. Must be called with s.mu
// held; the caller must subsequently release s.mu and park on its wake
// channel.
func (s *Sim) blockLocked() {
	s.runnable--
	s.yieldLocked()
	if s.runnable == 0 && !s.completed {
		s.advanceLocked()
	}
}

// readyLocked makes a process runnable: its grant channel is signalled
// immediately if the run token is free, otherwise queued FIFO behind the
// current holder. The grant channel is the process's park channel — a
// parked process resumes only when it is actually its turn, which is what
// makes wake order (and therefore the whole run) deterministic. Must be
// called with s.mu held.
func (s *Sim) readyLocked(grant chan struct{}) {
	if s.running {
		s.runq = append(s.runq, grant)
		return
	}
	s.running = true
	grant <- struct{}{}
}

// yieldLocked releases the run token and hands it to the next queued
// process, if any. Must be called with s.mu held by the current holder
// (or on its behalf, for passive batches).
func (s *Sim) yieldLocked() {
	if s.runqHead < len(s.runq) {
		next := s.runq[s.runqHead]
		s.runq[s.runqHead] = nil
		s.runqHead++
		if s.runqHead == len(s.runq) {
			s.runq = s.runq[:0]
			s.runqHead = 0
		}
		next <- struct{}{}
		return
	}
	s.running = false
}

// wakeLocked makes one blocked process runnable and queues its parker for
// the run token. Must be called with s.mu held.
func (s *Sim) wakeLocked(wid uint64, park chan struct{}) {
	s.waits.drop(wid)
	s.runnable++
	s.readyLocked(park)
}

// addWaitLocked registers a blocked-process record for deadlock reports.
// Must be called with s.mu held (callers that can register before locking,
// like Sleep, use s.waits.add directly).
func (s *Sim) addWaitLocked(kind waitKind, name string, deadline time.Duration) uint64 {
	return s.waits.add(kind, name, deadline, s.now)
}

// pushTimerLocked schedules fn at virtual time when. Must be called with
// s.mu held.
func (s *Sim) pushTimerLocked(when time.Duration, fn func()) *timerEntry {
	s.seq++
	entry := &timerEntry{when: when, born: s.now, seq: s.seq, fn: fn}
	s.timers.push(entry)
	s.liveTimers++
	return entry
}

// cancelTimerLocked marks entry cancelled, keeping the live-timer count
// exact for deadlock detection. The entry itself is discarded lazily when
// the queue pops it. Reports whether the entry was still pending. Must be
// called with s.mu held.
func (s *Sim) cancelTimerLocked(entry *timerEntry) bool {
	if entry.cancelled || entry.fired {
		return false
	}
	entry.cancelled = true
	s.liveTimers--
	return true
}

// advanceLocked advances virtual time while no process is runnable, firing
// timers in (time, insertion) order. Must be called with s.mu held and
// s.runnable == 0.
func (s *Sim) advanceLocked() {
	if s.alive == 0 {
		// No non-daemon process exists yet: the simulation has not
		// started. Daemons (servers) parking before the first Go call is
		// idle setup, not deadlock, and the clock stays at zero.
		return
	}
	for s.runnable == 0 && !s.completed {
		if s.liveTimers == 0 {
			s.reportDeadlockLocked()
			return
		}
		entry := s.timers.pop()
		if entry == nil {
			panic("vtime: timer queue empty with live timers pending")
		}
		if entry.cancelled {
			continue
		}
		if entry.when > s.now {
			s.setNowLocked(entry.when)
		}
		// Dispatch batches are keyed by the clock value at fire time: a
		// woken process that blocks again at the same instant continues
		// the open batch, keeping the statistic independent of where the
		// scheduler happened to pause.
		if s.batchCount > 0 && s.now != s.batchWhen {
			s.flushBatchLocked()
		}
		s.batchWhen = s.now
		if entry.passive {
			s.dispatchPassiveLocked(entry)
			return
		}
		s.fireLocked(entry)
	}
}

// fireLocked dispatches one timer inline under the kernel lock.
func (s *Sim) fireLocked(entry *timerEntry) {
	entry.fired = true
	s.liveTimers--
	s.batchCount++
	s.timersFired.Add(1)
	if s.stats.TimerLead != nil {
		s.stats.TimerLead.Record(int64(entry.when - entry.born))
	}
	entry.fn()
}

// dispatchPassiveLocked collects first plus every consecutive same-instant
// passive timer (up to maxPassiveBatch) and hands the batch to the worker
// pool. The batch counts as one runnable unit until the last callback
// completes, so the clock cannot move past it. Must be called with s.mu
// held.
func (s *Sim) dispatchPassiveLocked(first *timerEntry) {
	batch := s.passiveBuf[:0]
	mark := func(e *timerEntry) {
		e.fired = true
		s.liveTimers--
		s.batchCount++
		s.timersFired.Add(1)
		if s.stats.TimerLead != nil {
			s.stats.TimerLead.Record(int64(e.when - e.born))
		}
		batch = append(batch, e)
	}
	mark(first)
	for len(batch) < maxPassiveBatch {
		next := s.timers.peek()
		if next == nil || next.when != s.now {
			break
		}
		if next.cancelled {
			s.timers.pop()
			continue
		}
		if !next.passive {
			break
		}
		s.timers.pop()
		mark(next)
	}
	s.passiveBuf = batch
	s.runnable++
	// The batch holds the run token while in flight: processes its
	// callbacks wake queue behind it and start, in FIFO order, only after
	// batchFinished — otherwise a woken process would race the remaining
	// callbacks.
	s.running = true
	s.pool.dispatch(batch)
}

// batchFinished is called by the worker pool when the last callback of a
// passive batch has returned.
func (s *Sim) batchFinished() {
	s.mu.Lock()
	s.runnable--
	s.yieldLocked()
	if s.runnable == 0 && !s.completed {
		s.advanceLocked()
	}
	s.mu.Unlock()
}

// flushBatchLocked records and resets the open dispatch batch. Must be
// called with s.mu held.
func (s *Sim) flushBatchLocked() {
	if s.batchCount > 0 && s.stats.DispatchBatch != nil {
		s.stats.DispatchBatch.Record(s.batchCount)
	}
	s.batchCount = 0
}

func (s *Sim) reportDeadlockLocked() {
	s.flushBatchLocked()
	infos := s.waits.snapshot()
	blocked := make([]string, len(infos))
	for i, w := range infos {
		blocked[i] = w.describe()
	}
	s.deadlock = &DeadlockError{Now: s.now, Blocked: blocked}
	s.completed = true
	close(s.done)
}

// parkForever parks the calling goroutine permanently. Used for daemons
// that block after the simulation has completed.
func parkForever() {
	select {}
}

// --- timer entries ---

type timerEntry struct {
	when      time.Duration
	born      time.Duration // clock value when the timer was scheduled
	seq       uint64
	fn        func() // under s.mu unless passive; on a pool worker if passive
	passive   bool
	cancelled bool
	fired     bool
	index     int // heap engine bookkeeping
}

// timerQueue is the kernel's timer store. Both engines return entries in
// exact (when, seq) order, including cancelled entries (the kernel skips
// those lazily). len counts every stored entry, cancelled included.
type timerQueue interface {
	push(e *timerEntry)
	pop() *timerEntry
	peek() *timerEntry
	len() int
}
