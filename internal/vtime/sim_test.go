package vtime

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New()
	var end time.Duration
	err := s.Run("main", func() {
		s.Sleep(3 * time.Second)
		end = s.Now()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 3*time.Second {
		t.Fatalf("Now after sleep = %v, want 3s", end)
	}
}

func TestSleepZeroOrNegativeReturnsImmediately(t *testing.T) {
	s := New()
	err := s.Run("main", func() {
		s.Sleep(0)
		s.Sleep(-time.Second)
		if got := s.Now(); got != 0 {
			t.Errorf("Now = %v, want 0", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestConcurrentSleepsOverlap(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	wg.Add(3)
	for i := 0; i < 3; i++ {
		s.Go("sleeper", func() {
			s.Sleep(5 * time.Second)
			wg.Done()
		})
	}
	var end time.Duration
	s.Go("main", func() {
		wg.Wait()
		end = s.Now()
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if end != 5*time.Second {
		t.Fatalf("three parallel 5s sleeps ended at %v, want 5s", end)
	}
}

func TestSequentialSleepsAccumulate(t *testing.T) {
	s := New()
	err := s.Run("main", func() {
		for i := 0; i < 10; i++ {
			s.Sleep(time.Second)
		}
		if got := s.Now(); got != 10*time.Second {
			t.Errorf("Now = %v, want 10s", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTimerFiringOrderIsDeterministic(t *testing.T) {
	s := New()
	var mu sync.Mutex
	var order []int
	wg := NewWaitGroup(s)
	// Unique delays: with ties the wake order would depend on which
	// goroutine reached Sleep first, which the Go scheduler decides.
	delays := []time.Duration{5, 3, 8, 1, 4, 9, 2}
	wg.Add(len(delays))
	s.Go("main", func() {
		// Spawn from inside the simulation so the clock stays at zero
		// until every sleeper is registered.
		for i, d := range delays {
			i, d := i, d
			s.Go("sleeper", func() {
				s.Sleep(d * time.Second)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				wg.Done()
			})
		}
		wg.Wait()
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// Expected: sorted by (delay, spawn order): indices 3(1s) 6(2s) 1(3s) 4(3s) 0(5s) 2(8s) 5(9s)
	want := []int{3, 6, 1, 4, 0, 2, 5}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("got %d wakeups, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("firing order = %v, want %v", order, want)
		}
	}
}

func TestAfterFuncRunsAtScheduledTime(t *testing.T) {
	s := New()
	var fired time.Duration
	done := NewEvent(s, "done")
	s.AfterFunc(7*time.Second, func() {
		fired = s.Now()
		done.Set()
	})
	err := s.Run("main", func() { done.Wait() })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 7*time.Second {
		t.Fatalf("AfterFunc fired at %v, want 7s", fired)
	}
}

func TestAfterFuncStopPreventsRun(t *testing.T) {
	s := New()
	ran := false
	timer := s.AfterFunc(5*time.Second, func() { ran = true })
	err := s.Run("main", func() {
		if !timer.Stop() {
			t.Error("Stop returned false for pending timer")
		}
		if timer.Stop() {
			t.Error("second Stop returned true")
		}
		s.Sleep(10 * time.Second)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("stopped timer still ran")
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "never", 0)
	s.Go("blocked", func() { ch.Recv() })
	err := s.Wait()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Wait error = %v, want *DeadlockError", err)
	}
	if len(de.Blocked) != 1 || !strings.Contains(de.Blocked[0], "never") {
		t.Fatalf("deadlock report %q does not name channel", de.Error())
	}
}

func TestDeadlockReportsMultipleWaiters(t *testing.T) {
	s := New()
	a := NewChan[int](s, "chan-a", 0)
	b := NewChan[int](s, "chan-b", 0)
	s.Go("p1", func() { a.Recv() })
	s.Go("p2", func() { b.Recv() })
	err := s.Wait()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Wait error = %v, want *DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked = %v, want 2 entries", de.Blocked)
	}
}

func TestDaemonDoesNotKeepSimulationAlive(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "daemon-inbox", 0)
	s.GoDaemon("server", func() {
		for {
			if _, ok := ch.Recv(); !ok {
				return
			}
		}
	})
	var end time.Duration
	err := s.Run("main", func() {
		s.Sleep(time.Second)
		ch.Send(42)
		end = s.Now()
	})
	if err != nil {
		t.Fatalf("Run: %v (daemon should not deadlock the sim)", err)
	}
	if end != time.Second {
		t.Fatalf("end = %v, want 1s", end)
	}
}

func TestDaemonSleepLoopDoesNotSpinClockAfterCompletion(t *testing.T) {
	s := New()
	s.GoDaemon("ticker", func() {
		for {
			s.Sleep(time.Millisecond)
		}
	})
	err := s.Run("main", func() { s.Sleep(time.Second) })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The daemon must not advance the clock after completion. Give the
	// runtime a moment, then verify the clock is frozen.
	now1 := s.Now()
	time.Sleep(10 * time.Millisecond)
	if now2 := s.Now(); now2 != now1 {
		t.Fatalf("clock advanced after completion: %v -> %v", now1, now2)
	}
}

func TestWaitBeforeSpawnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wait before spawn did not panic")
		}
	}()
	New().Wait()
}

func TestSleepUntil(t *testing.T) {
	s := New()
	err := s.Run("main", func() {
		s.SleepUntil(4 * time.Second)
		if s.Now() != 4*time.Second {
			t.Errorf("Now = %v, want 4s", s.Now())
		}
		s.SleepUntil(2 * time.Second) // in the past: no-op
		if s.Now() != 4*time.Second {
			t.Errorf("Now after past SleepUntil = %v, want 4s", s.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGoAfterCompletionIsIgnored(t *testing.T) {
	s := New()
	if err := s.Run("main", func() {}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ran := make(chan struct{})
	s.Go("late", func() { close(ran) })
	select {
	case <-ran:
		t.Fatal("process spawned after completion ran")
	case <-time.After(10 * time.Millisecond):
	}
}

func TestSpawnTreeCompletes(t *testing.T) {
	s := New()
	var mu sync.Mutex
	count := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		mu.Lock()
		count++
		mu.Unlock()
		if depth == 0 {
			return
		}
		s.Sleep(time.Duration(depth) * time.Millisecond)
		for i := 0; i < 2; i++ {
			d := depth - 1
			s.Go("child", func() { spawn(d) })
		}
	}
	s.Go("root", func() { spawn(5) })
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 63 { // 2^6 - 1 nodes
		t.Fatalf("spawned %d processes, want 63", count)
	}
}

func TestRandDeterministicAcrossSeeds(t *testing.T) {
	a, b := NewSeeded(42), NewSeeded(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.RandFloat64(), b.RandFloat64(); av != bv {
			t.Fatalf("same-seed kernels diverge at draw %d: %v vs %v", i, av, bv)
		}
	}
	c := NewSeeded(7)
	same := true
	d := NewSeeded(8)
	for i := 0; i < 10; i++ {
		if c.RandFloat64() != d.RandFloat64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestManyTimersSortedFiring(t *testing.T) {
	s := New()
	var mu sync.Mutex
	var times []time.Duration
	n := 500
	wg := NewWaitGroup(s)
	wg.Add(n)
	s.Go("main", func() {
		for i := 0; i < n; i++ {
			d := time.Duration((i*7919)%1000) * time.Millisecond
			s.Go("sleeper", func() {
				s.Sleep(d)
				mu.Lock()
				times = append(times, s.Now())
				mu.Unlock()
				wg.Done()
			})
		}
		wg.Wait()
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		t.Fatal("wakeup times are not monotonically non-decreasing")
	}
	if len(times) != n {
		t.Fatalf("got %d wakeups, want %d", len(times), n)
	}
}
