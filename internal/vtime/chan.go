package vtime

import "time"

// RecvResult classifies the outcome of a channel receive with timeout.
type RecvResult int

const (
	// RecvOK means a value was received.
	RecvOK RecvResult = iota
	// RecvClosed means the channel was closed and drained.
	RecvClosed
	// RecvTimedOut means the timeout expired before a value arrived.
	RecvTimedOut
)

func (r RecvResult) String() string {
	switch r {
	case RecvOK:
		return "ok"
	case RecvClosed:
		return "closed"
	case RecvTimedOut:
		return "timeout"
	}
	return "invalid"
}

const (
	wsWaiting = iota
	wsDelivered
	wsClosed
	wsTimedOut
)

type recvWaiter[T any] struct {
	park  chan struct{}
	val   T
	state int
	wid   uint64
	timer *timerEntry
}

type sendWaiter[T any] struct {
	park  chan struct{}
	val   T
	state int
	wid   uint64
}

// Chan is a simulated channel. Operations have Go channel semantics
// (rendezvous when unbuffered, FIFO buffering otherwise, close wakes
// receivers), but blocking is accounted by the kernel so that virtual time
// can advance while processes wait.
type Chan[T any] struct {
	s      *Sim
	name   string
	buf    []T
	cap    int
	recvq  []*recvWaiter[T]
	sendq  []*sendWaiter[T]
	closed bool
}

// NewChan creates a simulated channel with the given buffer capacity
// (0 for a rendezvous channel). The name appears in deadlock reports.
func NewChan[T any](s *Sim, name string, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("vtime: negative channel capacity")
	}
	return &Chan[T]{s: s, name: name, cap: capacity}
}

// Send delivers v, blocking in virtual time until a receiver or buffer
// space is available. Sending on a closed channel panics, as with Go
// channels.
func (c *Chan[T]) Send(v T) {
	s := c.s
	s.mu.Lock()
	if s.completed {
		s.mu.Unlock()
		parkForever()
	}
	if c.closed {
		s.mu.Unlock()
		panic("vtime: send on closed channel " + c.name)
	}
	if w := c.popRecvLocked(); w != nil {
		w.val = v
		w.state = wsDelivered
		if w.timer != nil {
			s.cancelTimerLocked(w.timer)
		}
		s.wakeLocked(w.wid, w.park)
		s.mu.Unlock()
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		s.mu.Unlock()
		return
	}
	sw := &sendWaiter[T]{park: make(chan struct{}, 1), val: v}
	sw.wid = s.addWaitLocked(waitSend, c.name, 0)
	c.sendq = append(c.sendq, sw)
	s.blockLocked()
	s.mu.Unlock()
	<-sw.park
	if sw.state == wsClosed {
		panic("vtime: send on closed channel " + c.name)
	}
}

// TrySend delivers v without blocking; it reports whether the value was
// accepted. TrySend on a closed channel returns false.
func (c *Chan[T]) TrySend(v T) bool {
	s := c.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed {
		return false
	}
	if w := c.popRecvLocked(); w != nil {
		w.val = v
		w.state = wsDelivered
		if w.timer != nil {
			s.cancelTimerLocked(w.timer)
		}
		s.wakeLocked(w.wid, w.park)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv receives a value, blocking in virtual time until one is available.
// ok is false if the channel is closed and drained.
func (c *Chan[T]) Recv() (v T, ok bool) {
	v, res := c.recv(-1)
	return v, res == RecvOK
}

// RecvTimeout receives a value, giving up after d of virtual time.
func (c *Chan[T]) RecvTimeout(d time.Duration) (v T, res RecvResult) {
	if d < 0 {
		panic("vtime: negative receive timeout")
	}
	return c.recv(d)
}

// recv implements Recv (d < 0 means no timeout) and RecvTimeout.
func (c *Chan[T]) recv(d time.Duration) (v T, res RecvResult) {
	s := c.s
	s.mu.Lock()
	if s.completed {
		s.mu.Unlock()
		parkForever()
	}
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf[0] = *new(T)
		c.buf = c.buf[1:]
		if w := c.popSendLocked(); w != nil {
			c.buf = append(c.buf, w.val)
			w.state = wsDelivered
			s.wakeLocked(w.wid, w.park)
		}
		s.mu.Unlock()
		return v, RecvOK
	}
	if w := c.popSendLocked(); w != nil {
		// Unbuffered rendezvous: take the value directly from the sender.
		v = w.val
		w.state = wsDelivered
		s.wakeLocked(w.wid, w.park)
		s.mu.Unlock()
		return v, RecvOK
	}
	if c.closed {
		s.mu.Unlock()
		return v, RecvClosed
	}
	if d == 0 {
		s.mu.Unlock()
		return v, RecvTimedOut
	}
	rw := &recvWaiter[T]{park: make(chan struct{}, 1)}
	rw.wid = s.addWaitLocked(waitRecv, c.name, 0)
	if d > 0 {
		rw.timer = s.pushTimerLocked(s.now+d, func() {
			if rw.state != wsWaiting {
				return
			}
			rw.state = wsTimedOut
			s.wakeLocked(rw.wid, rw.park)
		})
	}
	c.recvq = append(c.recvq, rw)
	s.blockLocked()
	s.mu.Unlock()
	<-rw.park
	switch rw.state {
	case wsDelivered:
		return rw.val, RecvOK
	case wsClosed:
		return v, RecvClosed
	default:
		return v, RecvTimedOut
	}
}

// TryRecv receives a value without blocking; ok is false if no value is
// immediately available (including when the channel is closed and drained).
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	v, res := c.recv(0)
	return v, res == RecvOK
}

// Close closes the channel. Blocked receivers wake with a closed result;
// blocked senders panic, as with Go channels. Closing twice panics.
func (c *Chan[T]) Close() {
	s := c.s
	s.mu.Lock()
	if c.closed {
		s.mu.Unlock()
		panic("vtime: close of closed channel " + c.name)
	}
	c.closed = true
	for _, w := range c.recvq {
		if w.state != wsWaiting {
			continue
		}
		w.state = wsClosed
		if w.timer != nil {
			s.cancelTimerLocked(w.timer)
		}
		s.wakeLocked(w.wid, w.park)
	}
	c.recvq = nil
	for _, w := range c.sendq {
		if w.state != wsWaiting {
			continue
		}
		w.state = wsClosed
		s.wakeLocked(w.wid, w.park)
	}
	c.sendq = nil
	s.mu.Unlock()
}

// IsClosed reports whether the channel has been closed.
func (c *Chan[T]) IsClosed() bool {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.closed
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return len(c.buf)
}

// Cap returns the buffer capacity.
func (c *Chan[T]) Cap() int { return c.cap }

// popRecvLocked removes and returns the first receiver still waiting.
func (c *Chan[T]) popRecvLocked() *recvWaiter[T] {
	for len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		if w.state == wsWaiting {
			return w
		}
	}
	return nil
}

// popSendLocked removes and returns the first sender still waiting.
func (c *Chan[T]) popSendLocked() *sendWaiter[T] {
	for len(c.sendq) > 0 {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		if w.state == wsWaiting {
			return w
		}
	}
	return nil
}
