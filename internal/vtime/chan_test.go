package vtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestChanRendezvousTransfersValue(t *testing.T) {
	s := New()
	ch := NewChan[string](s, "rv", 0)
	s.Go("sender", func() {
		s.Sleep(2 * time.Second)
		ch.Send("hello")
	})
	var got string
	var at time.Duration
	s.Go("receiver", func() {
		got, _ = ch.Recv()
		at = s.Now()
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got != "hello" {
		t.Fatalf("received %q, want hello", got)
	}
	if at != 2*time.Second {
		t.Fatalf("received at %v, want 2s (receiver must block until sender arrives)", at)
	}
}

func TestChanSenderBlocksUntilReceiver(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "rv", 0)
	var sendDone time.Duration
	s.Go("sender", func() {
		ch.Send(1)
		sendDone = s.Now()
	})
	s.Go("receiver", func() {
		s.Sleep(3 * time.Second)
		ch.Recv()
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if sendDone != 3*time.Second {
		t.Fatalf("send completed at %v, want 3s", sendDone)
	}
}

func TestChanBufferedSendDoesNotBlock(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "buf", 2)
	err := s.Run("main", func() {
		ch.Send(1)
		ch.Send(2)
		if got := s.Now(); got != 0 {
			t.Errorf("buffered sends advanced time to %v", got)
		}
		if ch.Len() != 2 {
			t.Errorf("Len = %d, want 2", ch.Len())
		}
		if v, ok := ch.Recv(); !ok || v != 1 {
			t.Errorf("Recv = %d,%t want 1,true", v, ok)
		}
		if v, ok := ch.Recv(); !ok || v != 2 {
			t.Errorf("Recv = %d,%t want 2,true", v, ok)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestChanBufferFullBlocksSender(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "buf", 1)
	var thirdAt time.Duration
	s.Go("sender", func() {
		ch.Send(1)
		ch.Send(2) // fills after receiver takes 1? no: cap 1, second blocks
		thirdAt = s.Now()
	})
	s.Go("receiver", func() {
		s.Sleep(5 * time.Second)
		ch.Recv()
		ch.Recv()
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if thirdAt != 5*time.Second {
		t.Fatalf("blocked send completed at %v, want 5s", thirdAt)
	}
}

func TestChanFIFOOrder(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "fifo", 4)
	var got []int
	s.Go("sender", func() {
		for i := 0; i < 100; i++ {
			ch.Send(i)
		}
		ch.Close()
	})
	s.Go("receiver", func() {
		for {
			v, ok := ch.Recv()
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(got) != 100 {
		t.Fatalf("received %d values, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, FIFO order violated", i, v)
		}
	}
}

func TestChanRecvTimeoutExpires(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "slow", 0)
	err := s.Run("main", func() {
		_, res := ch.RecvTimeout(4 * time.Second)
		if res != RecvTimedOut {
			t.Errorf("res = %v, want timeout", res)
		}
		if s.Now() != 4*time.Second {
			t.Errorf("timed out at %v, want 4s", s.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestChanRecvTimeoutValueArrivesFirst(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "race", 0)
	s.Go("sender", func() {
		s.Sleep(time.Second)
		ch.Send(7)
	})
	s.Go("receiver", func() {
		v, res := ch.RecvTimeout(10 * time.Second)
		if res != RecvOK || v != 7 {
			t.Errorf("got %d,%v want 7,ok", v, res)
		}
		if s.Now() != time.Second {
			t.Errorf("received at %v, want 1s", s.Now())
		}
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestChanRecvTimeoutZeroIsTryRecv(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "try", 1)
	err := s.Run("main", func() {
		if _, res := ch.RecvTimeout(0); res != RecvTimedOut {
			t.Errorf("empty RecvTimeout(0) = %v, want timeout", res)
		}
		ch.Send(1)
		if v, res := ch.RecvTimeout(0); res != RecvOK || v != 1 {
			t.Errorf("nonempty RecvTimeout(0) = %d,%v want 1,ok", v, res)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "closing", 0)
	results := NewChan[RecvResult](s, "results", 3)
	for i := 0; i < 3; i++ {
		s.Go("receiver", func() {
			_, res := ch.RecvTimeout(time.Hour)
			results.Send(res)
		})
	}
	s.Go("closer", func() {
		s.Sleep(time.Second)
		ch.Close()
	})
	s.Go("main", func() {
		for i := 0; i < 3; i++ {
			res, _ := results.Recv()
			if res != RecvClosed {
				t.Errorf("receiver %d got %v, want closed", i, res)
			}
		}
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestChanRecvDrainsBufferAfterClose(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "drain", 3)
	err := s.Run("main", func() {
		ch.Send(1)
		ch.Send(2)
		ch.Close()
		if v, ok := ch.Recv(); !ok || v != 1 {
			t.Errorf("first drain = %d,%t", v, ok)
		}
		if v, ok := ch.Recv(); !ok || v != 2 {
			t.Errorf("second drain = %d,%t", v, ok)
		}
		if _, ok := ch.Recv(); ok {
			t.Error("Recv on drained closed channel reported ok")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestChanSendOnClosedPanics(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "closed", 1)
	err := s.Run("main", func() {
		ch.Close()
		defer func() {
			if recover() == nil {
				t.Error("send on closed channel did not panic")
			}
		}()
		ch.Send(1)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestChanDoubleClosePanics(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "dbl", 0)
	err := s.Run("main", func() {
		ch.Close()
		defer func() {
			if recover() == nil {
				t.Error("double close did not panic")
			}
		}()
		ch.Close()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestChanTrySendTryRecv(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "try", 1)
	err := s.Run("main", func() {
		if _, ok := ch.TryRecv(); ok {
			t.Error("TryRecv on empty channel succeeded")
		}
		if !ch.TrySend(5) {
			t.Error("TrySend on empty buffered channel failed")
		}
		if ch.TrySend(6) {
			t.Error("TrySend on full channel succeeded")
		}
		if v, ok := ch.TryRecv(); !ok || v != 5 {
			t.Errorf("TryRecv = %d,%t want 5,true", v, ok)
		}
		ch.Close()
		if ch.TrySend(7) {
			t.Error("TrySend on closed channel succeeded")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestChanTrySendToWaitingReceiver(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "handoff", 0)
	var got int
	s.Go("receiver", func() { got, _ = ch.Recv() })
	s.Go("sender", func() {
		s.Sleep(time.Millisecond) // let the receiver block first
		if !ch.TrySend(9) {
			t.Error("TrySend with waiting receiver failed")
		}
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got != 9 {
		t.Fatalf("receiver got %d, want 9", got)
	}
}

func TestChanManyProducersOneConsumer(t *testing.T) {
	s := New()
	ch := NewChan[int](s, "mpsc", 8)
	const producers, each = 10, 50
	for p := 0; p < producers; p++ {
		s.Go("producer", func() {
			for i := 0; i < each; i++ {
				s.Sleep(time.Millisecond)
				ch.Send(1)
			}
		})
	}
	total := 0
	s.Go("consumer", func() {
		for i := 0; i < producers*each; i++ {
			v, ok := ch.Recv()
			if !ok {
				t.Error("channel closed unexpectedly")
				return
			}
			total += v
		}
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if total != producers*each {
		t.Fatalf("consumed %d, want %d", total, producers*each)
	}
}

// Property: for any sequence of buffered sends followed by receives, values
// come out in FIFO order and none are lost.
func TestChanFIFOProperty(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) > 256 {
			vals = vals[:256]
		}
		s := New()
		ch := NewChan[int16](s, "prop", len(vals)+1)
		ok := true
		err := s.Run("main", func() {
			for _, v := range vals {
				ch.Send(v)
			}
			for _, want := range vals {
				got, recvOK := ch.Recv()
				if !recvOK || got != want {
					ok = false
					return
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: RecvTimeout never reports a timeout earlier than requested and,
// when nothing is sent, times out exactly at the deadline.
func TestChanTimeoutExactnessProperty(t *testing.T) {
	f := func(ms uint16) bool {
		d := time.Duration(ms%5000+1) * time.Millisecond
		s := New()
		ch := NewChan[int](s, "prop-timeout", 0)
		exact := false
		err := s.Run("main", func() {
			_, res := ch.RecvTimeout(d)
			exact = res == RecvTimedOut && s.Now() == d
		})
		return err == nil && exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
