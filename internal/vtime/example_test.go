package vtime_test

import (
	"fmt"
	"time"

	"cogrid/internal/vtime"
)

// Two simulated processes rendezvous over a channel; a "10 minute" wait
// costs microseconds of real time and the timing is exact.
func Example() {
	sim := vtime.New()
	ch := vtime.NewChan[string](sim, "mailbox", 0)

	sim.Go("producer", func() {
		sim.Sleep(10 * time.Minute)
		ch.Send("results ready")
	})
	sim.Go("consumer", func() {
		msg, _ := ch.Recv()
		fmt.Printf("t=%v: received %q\n", sim.Now(), msg)
	})
	if err := sim.Wait(); err != nil {
		fmt.Println("deadlock:", err)
	}
	// Output:
	// t=10m0s: received "results ready"
}

// WaitTimeout distinguishes progress from silence — the mechanism every
// failure-detection timeout in the co-allocator builds on.
func ExampleEvent_WaitTimeout() {
	sim := vtime.New()
	started := vtime.NewEvent(sim, "started")
	sim.Go("watcher", func() {
		if !started.WaitTimeout(30 * time.Second) {
			fmt.Printf("t=%v: no progress, declaring failure\n", sim.Now())
		}
	})
	sim.Wait()
	// Output:
	// t=30s: no progress, declaring failure
}
