package vtime

import (
	"testing"
	"time"
)

func TestWaitGroupReleasesAtZero(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Second
		s.Go("worker", func() {
			s.Sleep(d)
			wg.Done()
		})
	}
	var end time.Duration
	s.Go("main", func() {
		wg.Wait()
		end = s.Now()
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if end != 3*time.Second {
		t.Fatalf("WaitGroup released at %v, want 3s (slowest worker)", end)
	}
}

func TestWaitGroupWaitOnZeroReturnsImmediately(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	err := s.Run("main", func() {
		wg.Wait()
		if s.Now() != 0 {
			t.Errorf("Wait on zero counter advanced time to %v", s.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWaitGroupWaitTimeout(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	wg.Add(1)
	s.Go("slow", func() {
		s.Sleep(10 * time.Second)
		wg.Done()
	})
	err := s.Run("main", func() {
		if wg.WaitTimeout(2 * time.Second) {
			t.Error("WaitTimeout(2s) reported success with a 10s worker")
		}
		if s.Now() != 2*time.Second {
			t.Errorf("timed out at %v, want 2s", s.Now())
		}
		if !wg.WaitTimeout(time.Hour) {
			t.Error("second WaitTimeout failed")
		}
		if s.Now() != 10*time.Second {
			t.Errorf("released at %v, want 10s", s.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	err := s.Run("main", func() {
		defer func() {
			if recover() == nil {
				t.Error("negative counter did not panic")
			}
		}()
		wg.Done()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWaitGroupCount(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	err := s.Run("main", func() {
		wg.Add(5)
		if wg.Count() != 5 {
			t.Errorf("Count = %d, want 5", wg.Count())
		}
		wg.Add(-2)
		if wg.Count() != 3 {
			t.Errorf("Count = %d, want 3", wg.Count())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventBroadcastsToAllWaiters(t *testing.T) {
	s := New()
	ev := NewEvent(s, "go-signal")
	const n = 5
	released := NewChan[time.Duration](s, "released", n)
	for i := 0; i < n; i++ {
		s.Go("waiter", func() {
			ev.Wait()
			released.Send(s.Now())
		})
	}
	s.Go("setter", func() {
		s.Sleep(4 * time.Second)
		ev.Set()
	})
	s.Go("main", func() {
		for i := 0; i < n; i++ {
			at, _ := released.Recv()
			if at != 4*time.Second {
				t.Errorf("waiter released at %v, want 4s", at)
			}
		}
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestEventWaitAfterSetReturnsImmediately(t *testing.T) {
	s := New()
	ev := NewEvent(s, "pre-set")
	err := s.Run("main", func() {
		ev.Set()
		ev.Set() // idempotent
		if !ev.IsSet() {
			t.Error("IsSet false after Set")
		}
		ev.Wait()
		if s.Now() != 0 {
			t.Errorf("Wait on set event advanced time to %v", s.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventWaitTimeout(t *testing.T) {
	s := New()
	ev := NewEvent(s, "never-set")
	err := s.Run("main", func() {
		if ev.WaitTimeout(3 * time.Second) {
			t.Error("WaitTimeout on unset event reported success")
		}
		if s.Now() != 3*time.Second {
			t.Errorf("timed out at %v, want 3s", s.Now())
		}
		if ev.WaitTimeout(0) {
			t.Error("WaitTimeout(0) on unset event reported success")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventAsKillSignalInterruptsSleepLoop(t *testing.T) {
	// The pattern components use for interruptible work loops.
	s := New()
	kill := NewEvent(s, "kill")
	var stoppedAt time.Duration
	s.Go("worker", func() {
		for !kill.WaitTimeout(time.Second) {
			// one "work step" per second until killed
		}
		stoppedAt = s.Now()
	})
	s.Go("killer", func() {
		s.Sleep(3500 * time.Millisecond)
		kill.Set()
	})
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if stoppedAt != 3500*time.Millisecond {
		t.Fatalf("worker stopped at %v, want 3.5s", stoppedAt)
	}
}
