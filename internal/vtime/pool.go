package vtime

import (
	"sync"
	"sync/atomic"
)

// maxPassiveBatch bounds how many same-instant passive callbacks are handed
// to the pool at once. Larger instants dispatch in successive batches at
// the same virtual time, which is observably identical.
const maxPassiveBatch = 256

// passiveBatch is one dispatch unit: workers claim entries by atomically
// advancing next; the worker that completes the final entry reports the
// batch finished. A fresh batch struct is allocated per dispatch (the
// entries buffer is reused) so that stragglers from a previous generation
// can never claim against a recycled counter.
type passiveBatch struct {
	entries []*timerEntry
	next    atomic.Int64
	done    atomic.Int64
}

// passivePool executes passive timer callbacks on a small fixed set of
// worker goroutines. Workers are started lazily on the first dispatch and
// exit when the simulation completes. Callbacks run without the kernel
// lock. The default is a single worker, which executes each batch
// sequentially in (when, seq) order — a requirement for deterministic
// runs, since the batch holds the run token and its callbacks' side
// effects (wakes, spawns, gauge updates) must happen in seed-determined
// order. Config.PassiveWorkers > 1 opts into concurrent execution within
// a batch for multicore throughput, at the cost of byte-determinism
// unless every passive callback commutes with its same-instant peers.
type passivePool struct {
	s       *Sim
	max     int
	mu      sync.Mutex
	cond    *sync.Cond
	cur     *passiveBatch
	gen     uint64
	stop    bool
	started bool
}

func (p *passivePool) init(s *Sim, workers int) {
	p.s = s
	if workers <= 0 {
		workers = 1
	}
	if workers > 8 {
		workers = 8
	}
	p.max = workers
	p.cond = sync.NewCond(&p.mu)
}

// dispatch hands a batch to the pool. Called with s.mu held; the lock order
// is always s.mu → p.mu, and workers never acquire p.mu while holding s.mu,
// so there is no cycle.
func (p *passivePool) dispatch(entries []*timerEntry) {
	b := &passiveBatch{entries: entries}
	p.mu.Lock()
	if !p.started {
		p.started = true
		for i := 0; i < p.max; i++ {
			go p.worker()
		}
		// Unpark the workers for exit once the simulation completes, so
		// finished Sims do not accumulate parked goroutines.
		go func() {
			<-p.s.done
			p.mu.Lock()
			p.stop = true
			p.mu.Unlock()
			p.cond.Broadcast()
		}()
	}
	p.cur = b
	p.gen++
	p.mu.Unlock()
	p.cond.Broadcast()
}

func (p *passivePool) worker() {
	var lastGen uint64
	for {
		p.mu.Lock()
		for p.gen == lastGen && !p.stop {
			p.cond.Wait()
		}
		if p.stop {
			p.mu.Unlock()
			return
		}
		lastGen = p.gen
		b := p.cur
		p.mu.Unlock()
		total := int64(len(b.entries))
		for {
			i := b.next.Add(1) - 1
			if i >= total {
				break
			}
			b.entries[i].fn()
			if b.done.Add(1) == total {
				p.s.batchFinished()
			}
		}
	}
}
