package vtime

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// popBoth pops one entry from each queue and asserts they agree. The oracle
// property: the wheel must deliver exactly the heap's (when, seq) order.
func popBoth(t *testing.T, wheel *timerWheel, heapq *heapQueue, step int) (*timerEntry, bool) {
	t.Helper()
	we := wheel.pop()
	he := heapq.pop()
	if (we == nil) != (he == nil) {
		t.Fatalf("step %d: wheel pop = %v, heap pop = %v", step, we, he)
	}
	if we == nil {
		return nil, false
	}
	if we.when != he.when || we.seq != he.seq {
		t.Fatalf("step %d: wheel popped (when=%v seq=%d), heap popped (when=%v seq=%d)",
			step, we.when, we.seq, he.when, he.seq)
	}
	return we, true
}

// TestWheelMatchesHeapOracle drives both timer engines through randomized
// push/pop interleavings spanning every placement class — same-instant
// collisions, sub-tick deltas, mid-wheel horizons, far-future deadlines in
// overflow epochs, and past-due entries — and asserts identical pop order.
func TestWheelMatchesHeapOracle(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wheel := newTimerWheel()
		heapq := newHeapQueue()
		var seq uint64
		now := time.Duration(0)
		push := func(when time.Duration) {
			seq++
			// Distinct entry objects per queue: the heap owns the index field.
			wheel.push(&timerEntry{when: when, seq: seq})
			heapq.push(&timerEntry{when: when, seq: seq})
		}
		for i := 0; i < 4000; i++ {
			switch rng.Intn(12) {
			case 0:
				push(now) // same-instant collision
			case 1:
				push(now + time.Duration(rng.Intn(8192))) // inside one tick
			case 2:
				push(now + time.Duration(rng.Intn(1000))*time.Microsecond)
			case 3:
				push(now + time.Duration(rng.Intn(1000))*time.Millisecond)
			case 4:
				push(now + time.Duration(1+rng.Intn(90))*time.Minute)
			case 5:
				push(now + time.Duration(1+rng.Intn(200))*time.Hour) // overflow epochs
			case 6:
				push(now - time.Duration(rng.Intn(int(now)+1))) // past due
			default:
				e, ok := popBoth(t, wheel, heapq, i)
				if ok && e.when > now {
					now = e.when // emulate the kernel clock
				}
			}
			if wheel.len() != heapq.len() {
				t.Fatalf("step %d: wheel len %d != heap len %d", i, wheel.len(), heapq.len())
			}
		}
		for {
			e, ok := popBoth(t, wheel, heapq, -1)
			if !ok {
				break
			}
			if e.when > now {
				now = e.when
			}
		}
	}
}

// TestWheelPeekAgreesWithPop checks that peek is a pure read of the next
// pop on both engines, including across lazy cascades.
func TestWheelPeekAgreesWithPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	wheel := newTimerWheel()
	heapq := newHeapQueue()
	var seq uint64
	for i := 0; i < 500; i++ {
		seq++
		when := time.Duration(rng.Intn(1 << 40))
		wheel.push(&timerEntry{when: when, seq: seq})
		heapq.push(&timerEntry{when: when, seq: seq})
	}
	for {
		wp, hp := wheel.peek(), heapq.peek()
		if (wp == nil) != (hp == nil) {
			t.Fatalf("peek mismatch: wheel %v heap %v", wp, hp)
		}
		if wp == nil {
			break
		}
		if wp.when != hp.when || wp.seq != hp.seq {
			t.Fatalf("peek: wheel (when=%v seq=%d) heap (when=%v seq=%d)", wp.when, wp.seq, hp.when, hp.seq)
		}
		we := wheel.pop()
		if we != wp {
			t.Fatalf("pop %v is not the peeked entry %v", we, wp)
		}
		heapq.pop()
	}
}

// engineScript runs a deterministic random program of AfterFunc, Stop,
// Reset, and Sleep against one engine and returns the multiset of fired
// callbacks (label@instant), the Stop/Reset result sequence, and the
// kernel's TimersFired counter.
func engineScript(t *testing.T, engine TimerEngine, seed int64) (fired []string, results []bool, count int64) {
	t.Helper()
	s := NewWithConfig(Config{Seed: seed, Engine: engine})
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed*31 + 7))
	randDur := func() time.Duration {
		switch rng.Intn(6) {
		case 0:
			return 0
		case 1:
			return -time.Duration(rng.Intn(1000)) // past due
		case 2:
			return time.Duration(rng.Intn(100)) * time.Millisecond // collisions
		case 3:
			return time.Duration(rng.Intn(100000)) * time.Microsecond
		case 4:
			return time.Duration(1+rng.Intn(50)) * time.Hour // overflow horizon
		default:
			return time.Duration(rng.Intn(int(10 * time.Second)))
		}
	}
	err := s.Run("driver", func() {
		var timers []*Timer
		for i := 0; i < 400; i++ {
			switch rng.Intn(6) {
			case 0, 1, 2:
				label := fmt.Sprintf("t%d", i)
				tm := s.AfterFunc(randDur(), func() {
					mu.Lock()
					fired = append(fired, fmt.Sprintf("%s@%v", label, s.Now()))
					mu.Unlock()
				})
				timers = append(timers, tm)
			case 3:
				if len(timers) > 0 {
					results = append(results, timers[rng.Intn(len(timers))].Stop())
				}
			case 4:
				if len(timers) > 0 {
					results = append(results, timers[rng.Intn(len(timers))].Reset(randDur()))
				}
			default:
				s.Sleep(time.Duration(rng.Intn(int(time.Second))))
			}
		}
		s.Sleep(100 * time.Hour) // let far-future survivors fire
	})
	if err != nil {
		t.Fatalf("engine %v seed %d: %v", engine, seed, err)
	}
	// Same-instant callbacks race within their instant on both engines;
	// compare as a sorted multiset.
	sort.Strings(fired)
	return fired, results, s.TimersFired()
}

// TestKernelEnginesEquivalentRandomOps runs the same randomized
// AfterFunc/Stop/Reset program on the heap and wheel kernels and demands
// identical fired multisets, identical Stop/Reset return sequences, and
// identical TimersFired counts.
func TestKernelEnginesEquivalentRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		hFired, hResults, hCount := engineScript(t, EngineHeap, seed)
		wFired, wResults, wCount := engineScript(t, EngineWheel, seed)
		if hCount != wCount {
			t.Fatalf("seed %d: TimersFired heap=%d wheel=%d", seed, hCount, wCount)
		}
		if len(hFired) != len(wFired) {
			t.Fatalf("seed %d: fired count heap=%d wheel=%d", seed, len(hFired), len(wFired))
		}
		for i := range hFired {
			if hFired[i] != wFired[i] {
				t.Fatalf("seed %d: fired[%d] heap=%q wheel=%q", seed, i, hFired[i], wFired[i])
			}
		}
		if len(hResults) != len(wResults) {
			t.Fatalf("seed %d: result count heap=%d wheel=%d", seed, len(hResults), len(wResults))
		}
		for i := range hResults {
			if hResults[i] != wResults[i] {
				t.Fatalf("seed %d: stop/reset result[%d] heap=%v wheel=%v", seed, i, hResults[i], wResults[i])
			}
		}
	}
}

// TestWheelFarFutureCancelDoesNotStallClock mirrors the heap-era
// regression: a cancelled far-future timer (deep in an overflow epoch)
// must neither fire nor hold the clock back.
func TestWheelFarFutureCancelDoesNotStallClock(t *testing.T) {
	s := NewWithConfig(Config{Seed: 1, Engine: EngineWheel})
	firedFar := false
	err := s.Run("main", func() {
		tm := s.AfterFunc(1000*time.Hour, func() { firedFar = true })
		s.Sleep(time.Millisecond)
		if !tm.Stop() {
			t.Error("Stop returned false for pending far-future timer")
		}
		s.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if firedFar {
		t.Fatal("cancelled far-future timer fired")
	}
	if got := s.Now(); got != 2*time.Millisecond {
		t.Fatalf("Now = %v, want 2ms", got)
	}
}

// FuzzTimerWheel feeds arbitrary op streams to the wheel with the heap as
// oracle. Each op consumes three bytes: an opcode and a 16-bit operand
// that is exponentially scaled so the corpus reaches every wheel level and
// the overflow calendar.
func FuzzTimerWheel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 255, 255, 3, 0, 0})
	f.Add([]byte{1, 0, 16, 1, 0, 16, 3, 0, 0, 3, 0, 0})
	f.Add([]byte{2, 255, 0, 0, 0, 0, 3, 0, 0, 1, 7, 7})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 3, 3, 3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		wheel := newTimerWheel()
		heapq := newHeapQueue()
		var seq uint64
		now := time.Duration(0)
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 4
			operand := int64(data[i+1]) | int64(data[i+2])<<8
			switch op {
			case 0, 1, 2:
				// Exponential scaling: low byte picks a shift, so 16 bits
				// of operand cover sub-tick through multi-epoch horizons.
				shift := uint(operand % 48)
				when := now + time.Duration((operand>>4)<<shift)
				seq++
				wheel.push(&timerEntry{when: when, seq: seq})
				heapq.push(&timerEntry{when: when, seq: seq})
			case 3:
				we := wheel.pop()
				he := heapq.pop()
				if (we == nil) != (he == nil) {
					t.Fatalf("op %d: wheel pop %v, heap pop %v", i, we, he)
				}
				if we != nil {
					if we.when != he.when || we.seq != he.seq {
						t.Fatalf("op %d: wheel (when=%v seq=%d) heap (when=%v seq=%d)",
							i, we.when, we.seq, he.when, he.seq)
					}
					if we.when > now {
						now = we.when
					}
				}
			}
		}
		for {
			we := wheel.pop()
			he := heapq.pop()
			if (we == nil) != (he == nil) {
				t.Fatalf("drain: wheel pop %v, heap pop %v", we, he)
			}
			if we == nil {
				break
			}
			if we.when != he.when || we.seq != he.seq {
				t.Fatalf("drain: wheel (when=%v seq=%d) heap (when=%v seq=%d)",
					we.when, we.seq, he.when, he.seq)
			}
		}
	})
}

// TestWheelLevelBoundaryAliasRegression pins the shrunk reproduction of
// the classic hierarchical-wheel off-by-one this refactor surfaced (and
// fixed): an entry whose tick delta from the cursor is below a level's
// span but whose unit-index distance at that level is exactly 64. Raw
// delta-based placement files it at that level, where its absolute slot
// index aliases onto the cursor's own occupancy bit; the next advance then
// drains the cursor slot while place() re-appends into the same backing
// array, corrupting it. Index-distance placement must send it one level
// up.
//
// The constants reconstruct the original failure: cursor at level-2 unit
// 716 (phase +1000 ticks), entry at level-2 unit 780 — tick delta 261144 <
// 64³ = 262144, unit distance exactly 64, slot index 780 mod 64 = 12 =
// 716 mod 64.
func TestWheelLevelBoundaryAliasRegression(t *testing.T) {
	const tick = int64(1) << wheelTickShift
	wheel := newTimerWheel()
	heapq := newHeapQueue()
	push := func(when time.Duration, seq uint64) {
		wheel.push(&timerEntry{when: when, seq: seq})
		heapq.push(&timerEntry{when: when, seq: seq})
	}
	// Advance the cursor to level-2 unit 716 with a non-zero phase.
	cursorTick := (716*64*64 + 1000) * tick
	push(time.Duration(cursorTick), 1)
	if we, he := wheel.pop(), heapq.pop(); we.seq != he.seq {
		t.Fatalf("setup pop: wheel seq %d, heap seq %d", we.seq, he.seq)
	}
	// The aliasing entry, plus a neighbor in the cursor's true slot range
	// so the corrupted-slot variant has something to destroy.
	push(time.Duration(780*64*64*tick), 2)
	push(time.Duration((716*64*64+1010)*tick), 3)
	for i := 0; ; i++ {
		we := wheel.pop()
		he := heapq.pop()
		if (we == nil) != (he == nil) {
			t.Fatalf("pop %d: wheel %v, heap %v", i, we, he)
		}
		if we == nil {
			break
		}
		if we.when != he.when || we.seq != he.seq {
			t.Fatalf("pop %d: wheel (when=%v seq=%d), heap (when=%v seq=%d)",
				i, we.when, we.seq, he.when, he.seq)
		}
	}
}
