package mpig_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mpig"
)

// TestPeerCrashSurfacesAsRecvError verifies that a machine crashing
// mid-computation turns a blocking receive into an error on the surviving
// side, not a hang — the monitoring-visibility property the paper demands
// of grid libraries.
func TestPeerCrashSurfacesAsRecvError(t *testing.T) {
	g := grid.New(grid.Options{})
	for _, name := range []string{"alive", "doomed"} {
		g.AddMachine(name, 8, lrm.Fork)
	}
	var mu sync.Mutex
	var recvErr error
	g.RegisterEverywhere("mpi", func(p *lrm.Proc) error {
		comm, err := mpig.Init(p)
		if err != nil {
			return nil
		}
		defer comm.Finalize()
		comm.OpTimeout = 2 * time.Minute
		if comm.Subjob() == 1 {
			// The doomed side: its host dies before it ever sends.
			p.Sleep(time.Hour)
			return nil
		}
		_, err = comm.Recv(1, 5) // rank 1 lives on the doomed machine
		mu.Lock()
		recvErr = err
		mu.Unlock()
		return nil
	})
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred, Registry: g.Registry,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	err = g.Sim.Run("agent", func() {
		job, err := ctrl.Submit(core.Request{Subjobs: []core.SubjobSpec{
			{Label: "alive", Contact: g.Contact("alive"), Count: 1, Executable: "mpi", Type: core.Required},
			{Label: "doomed", Contact: g.Contact("doomed"), Count: 1, Executable: "mpi", Type: core.Interactive},
		}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		g.Sim.Sleep(10 * time.Second)
		g.Net.Host("doomed").Crash()
		// Wait out the surviving rank's receive timeout.
		g.Sim.Sleep(3 * time.Minute)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if recvErr == nil {
		t.Fatal("surviving rank's Recv returned nil after peer crash")
	}
}

// TestLargeWorldCollectives exercises the binomial trees on a 64-rank
// world spanning four machines.
func TestLargeWorldCollectives(t *testing.T) {
	errs := launch(t, []string{"m1", "m2", "m3", "m4"}, 16, func(c *mpig.Comm) error {
		if c.Size() != 64 {
			return fmt.Errorf("size = %d", c.Size())
		}
		sum, err := c.AllReduceInt(1, func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		if sum != 64 {
			return fmt.Errorf("sum = %d, want 64", sum)
		}
		got, err := c.Bcast(17, []byte("payload"))
		if err != nil {
			return err
		}
		if string(got) != "payload" {
			return fmt.Errorf("bcast got %q", got)
		}
		return c.Barrier()
	})
	noErrors(t, errs)
}
