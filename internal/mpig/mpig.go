// Package mpig is a grid-enabled message passing library in the style of
// MPICH-G (reference [11]): co-allocation is hidden inside the library, so
// an application simply calls Init and finds itself in a fully formed
// multi-machine MPI world.
//
// Init attaches to the DUROC runtime, enters the co-allocation barrier,
// and derives the world — rank, size, and peer addresses — from the
// committed configuration of Section 3.3. Point-to-point messages flow
// over lazily established connections; collectives (Barrier, Bcast,
// AllReduce) use binomial trees.
package mpig

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/lrm"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// Errors returned by communication operations.
var (
	ErrLateJoiner = errors.New("mpig: process is not part of the committed world")
	ErrBadRank    = errors.New("mpig: rank out of range")
	ErrBadTag     = errors.New("mpig: user tags must be non-negative")
	ErrTimeout    = errors.New("mpig: operation timed out")
	ErrFinalized  = errors.New("mpig: communicator finalized")
)

// System tags used by collectives.
const (
	tagBarrierUp   = -1
	tagBarrierDown = -2
	tagBcast       = -3
	tagReduce      = -4
)

// DefaultOpTimeout bounds each blocking receive inside operations, so a
// dead peer surfaces as an error rather than a hang.
const DefaultOpTimeout = 10 * time.Minute

// frame is the wire format of one message.
type frame struct {
	From int    `json:"from"`
	Tag  int    `json:"tag"`
	Data []byte `json:"data,omitempty"`
}

type msgKey struct {
	from, tag int
}

// Comm is a communicator over the committed co-allocation world.
type Comm struct {
	sim    *vtime.Sim
	rt     *core.Runtime
	proc   *lrm.Proc
	rank   int
	size   int
	config core.Config

	// OpTimeout bounds blocking receives; DefaultOpTimeout if unset.
	OpTimeout time.Duration

	mu        sync.Mutex
	conns     map[int]*transport.Conn
	queues    map[msgKey]*vtime.Chan[[]byte]
	finalized bool
}

// Init performs startup: attach to the co-allocator, report successful
// startup, pass the barrier, and build the communicator from the
// committed configuration. Processes of late-joining optional subjobs
// cannot form part of a static MPI world and get ErrLateJoiner.
func Init(p *lrm.Proc) (*Comm, error) {
	rt, err := core.Attach(p)
	if err != nil {
		return nil, err
	}
	cfg, err := rt.Barrier(true, "", 0)
	if err != nil {
		rt.Close()
		return nil, err
	}
	if cfg.MyRank < 0 {
		rt.Close()
		return nil, ErrLateJoiner
	}
	c := &Comm{
		sim:    p.Sim(),
		rt:     rt,
		proc:   p,
		rank:   cfg.MyRank,
		size:   cfg.WorldSize,
		config: *cfg,
		conns:  make(map[int]*transport.Conn),
		queues: make(map[msgKey]*vtime.Chan[[]byte]),
	}
	c.sim.GoDaemon(fmt.Sprintf("mpig-accept:%s/%d", rt.JobID(), c.rank), c.acceptLoop)
	return c, nil
}

// Rank returns this process's rank in the world.
func (c *Comm) Rank() int { return c.rank }

// Proc returns the underlying process context.
func (c *Comm) Proc() *lrm.Proc { return c.proc }

// Size returns the world size.
func (c *Comm) Size() int { return c.size }

// Config returns the committed co-allocation configuration.
func (c *Comm) Config() core.Config { return c.config }

// Subjob returns this process's subjob index — the locality information
// grid-aware applications use to cluster communication.
func (c *Comm) Subjob() int { return c.config.MySubjob }

func (c *Comm) opTimeout() time.Duration {
	if c.OpTimeout > 0 {
		return c.OpTimeout
	}
	return DefaultOpTimeout
}

// acceptLoop receives peer connections and spawns a reader per connection.
func (c *Comm) acceptLoop() {
	for {
		conn, ok := c.rt.Listener().Accept()
		if !ok {
			return
		}
		c.sim.GoDaemon(fmt.Sprintf("mpig-read:%d<-%s", c.rank, conn.RemoteAddr()), func() {
			c.readLoop(conn)
		})
	}
}

func (c *Comm) readLoop(conn *transport.Conn) {
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		var f frame
		if json.Unmarshal(raw, &f) != nil {
			continue
		}
		c.queue(f.From, f.Tag).TrySend(f.Data)
	}
}

// queue returns (creating on demand) the receive queue for (from, tag).
func (c *Comm) queue(from, tag int) *vtime.Chan[[]byte] {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := msgKey{from: from, tag: tag}
	q, ok := c.queues[key]
	if !ok {
		q = vtime.NewChan[[]byte](c.sim, fmt.Sprintf("mpig-q:%d<-%d/%d", c.rank, from, tag), 256)
		c.queues[key] = q
	}
	return q
}

// connTo returns (dialing on demand) the connection to a peer rank.
func (c *Comm) connTo(rank int) (*transport.Conn, error) {
	c.mu.Lock()
	if c.finalized {
		c.mu.Unlock()
		return nil, ErrFinalized
	}
	if conn, ok := c.conns[rank]; ok {
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	conn, err := c.rt.DialRank(rank)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if existing, ok := c.conns[rank]; ok {
		c.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	c.conns[rank] = conn
	c.mu.Unlock()
	return conn, nil
}

// Send delivers data to a peer with a non-negative tag. It returns once
// the message is queued for transmission (eager, buffered semantics).
func (c *Comm) Send(to, tag int, data []byte) error {
	if tag < 0 {
		return ErrBadTag
	}
	return c.send(to, tag, data)
}

func (c *Comm) send(to, tag int, data []byte) error {
	if to < 0 || to >= c.size {
		return ErrBadRank
	}
	if to == c.rank {
		// Self-send: deliver locally without the network.
		c.queue(c.rank, tag).TrySend(data)
		return nil
	}
	conn, err := c.connTo(to)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(frame{From: c.rank, Tag: tag, Data: data})
	if err != nil {
		return err
	}
	return conn.Send(raw)
}

// Recv blocks until a message with the given source and non-negative tag
// arrives, bounded by the communicator's operation timeout.
func (c *Comm) Recv(from, tag int) ([]byte, error) {
	if tag < 0 {
		return nil, ErrBadTag
	}
	return c.recv(from, tag)
}

func (c *Comm) recv(from, tag int) ([]byte, error) {
	if from < 0 || from >= c.size {
		return nil, ErrBadRank
	}
	data, res := c.queue(from, tag).RecvTimeout(c.opTimeout())
	switch res {
	case vtime.RecvOK:
		return data, nil
	case vtime.RecvClosed:
		return nil, ErrFinalized
	default:
		return nil, fmt.Errorf("%w: receive from %d tag %d", ErrTimeout, from, tag)
	}
}

// Barrier blocks until every rank has entered it: ranks reduce to 0 and
// wait for its broadcast release.
func (c *Comm) Barrier() error {
	if _, err := c.reduce(0, tagBarrierUp, nil, nil); err != nil {
		return err
	}
	_, err := c.bcast(0, tagBarrierDown, nil)
	return err
}

// Bcast distributes root's data to every rank via a binomial tree and
// returns the received value (on root, data itself).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= c.size {
		return nil, ErrBadRank
	}
	return c.bcast(root, tagBcast, data)
}

func (c *Comm) bcast(root, tag int, data []byte) ([]byte, error) {
	relative := (c.rank - root + c.size) % c.size
	mask := 1
	for mask < c.size {
		if relative&mask != 0 {
			src := (relative - mask + root) % c.size
			got, err := c.recv(src, sysTag(tag, mask))
			if err != nil {
				return nil, err
			}
			data = got
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < c.size {
			dst := (relative + mask + root) % c.size
			if err := c.send(dst, sysTag(tag, mask), data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// ReduceFunc combines two byte payloads.
type ReduceFunc func(a, b []byte) []byte

// Reduce combines every rank's data at root via a binomial tree. Non-root
// ranks receive nil. A nil op keeps the first argument (used by Barrier).
func (c *Comm) Reduce(root int, data []byte, op ReduceFunc) ([]byte, error) {
	if root < 0 || root >= c.size {
		return nil, ErrBadRank
	}
	return c.reduce(root, tagReduce, data, op)
}

func (c *Comm) reduce(root, tag int, data []byte, op ReduceFunc) ([]byte, error) {
	relative := (c.rank - root + c.size) % c.size
	mask := 1
	for mask < c.size {
		if relative&mask == 0 {
			srcRel := relative | mask
			if srcRel < c.size {
				src := (srcRel + root) % c.size
				got, err := c.recv(src, sysTag(tag, mask))
				if err != nil {
					return nil, err
				}
				if op != nil {
					data = op(data, got)
				}
			}
		} else {
			dst := (relative - mask + root) % c.size
			if err := c.send(dst, sysTag(tag, mask), data); err != nil {
				return nil, err
			}
			return nil, nil
		}
		mask <<= 1
	}
	return data, nil
}

// sysTag disambiguates tree rounds: two collective phases on the same
// system tag could otherwise interleave between rounds. System tags are
// negative; rounds are encoded in steps of 16.
func sysTag(tag, mask int) int {
	round := 0
	for m := mask; m > 1; m >>= 1 {
		round++
	}
	return tag - 16*(round+1)
}

// AllReduceInt combines an int64 across all ranks with op and returns the
// result everywhere (reduce to 0, then broadcast).
func (c *Comm) AllReduceInt(v int64, op func(a, b int64) int64) (int64, error) {
	enc := func(x int64) []byte {
		b, _ := json.Marshal(x)
		return b
	}
	dec := func(b []byte) int64 {
		var x int64
		json.Unmarshal(b, &x)
		return x
	}
	reduced, err := c.Reduce(0, enc(v), func(a, b []byte) []byte {
		return enc(op(dec(a), dec(b)))
	})
	if err != nil {
		return 0, err
	}
	out, err := c.Bcast(0, reduced)
	if err != nil {
		return 0, err
	}
	return dec(out), nil
}

// Reserved high user-range tags for the linear collectives.
const (
	gatherTag   = 0x7fff0000
	scatterTag  = 0x7fff0001
	sendRecvTag = 0x7fff0002
)

// Gather collects every rank's data at root, indexed by rank; non-root
// ranks receive nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if root < 0 || root >= c.size {
		return nil, ErrBadRank
	}
	if c.rank != root {
		return nil, c.send(root, gatherTag, data)
	}
	out := make([][]byte, c.size)
	out[root] = data
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		got, err := c.recv(r, gatherTag)
		if err != nil {
			return nil, err
		}
		out[r] = got
	}
	return out, nil
}

// Scatter distributes parts[r] from root to each rank r and returns the
// receiving rank's part. Only root's parts argument is consulted; it must
// have exactly Size entries.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if root < 0 || root >= c.size {
		return nil, ErrBadRank
	}
	if c.rank != root {
		return c.recv(root, scatterTag)
	}
	if len(parts) != c.size {
		return nil, fmt.Errorf("mpig: Scatter needs %d parts, got %d", c.size, len(parts))
	}
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		if err := c.send(r, scatterTag, parts[r]); err != nil {
			return nil, err
		}
	}
	return parts[root], nil
}

// AllGather collects every rank's data everywhere: a Gather to rank 0
// followed by a broadcast of the assembled vector.
func (c *Comm) AllGather(data []byte) ([][]byte, error) {
	gathered, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.rank == 0 {
		packed, err = json.Marshal(gathered)
		if err != nil {
			return nil, err
		}
	}
	packed, err = c.Bcast(0, packed)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	if err := json.Unmarshal(packed, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SendRecv exchanges messages with a partner in one call, safe against the
// head-to-head deadlock of two blocking sends.
func (c *Comm) SendRecv(partner int, data []byte) ([]byte, error) {
	if partner < 0 || partner >= c.size {
		return nil, ErrBadRank
	}
	if partner == c.rank {
		return data, nil
	}
	if err := c.send(partner, sendRecvTag, data); err != nil {
		return nil, err
	}
	return c.recv(partner, sendRecvTag)
}

// Finalize tears down the communicator: connections close and pending
// receives fail.
func (c *Comm) Finalize() {
	c.mu.Lock()
	if c.finalized {
		c.mu.Unlock()
		return
	}
	c.finalized = true
	conns := make([]*transport.Conn, 0, len(c.conns))
	for _, conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	c.rt.Close()
}
