package mpig_test

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mpig"
)

// launch starts an MPI program body on the given machines (4 procs each)
// and returns collected per-rank errors after the job completes.
func launch(t *testing.T, machines []string, procsPer int, body func(c *mpig.Comm) error) []error {
	t.Helper()
	g := grid.New(grid.Options{})
	var mu sync.Mutex
	var errs []error
	for _, name := range machines {
		g.AddMachine(name, 64, lrm.Fork)
	}
	g.RegisterEverywhere("mpi", func(p *lrm.Proc) error {
		comm, err := mpig.Init(p)
		if err != nil {
			mu.Lock()
			errs = append(errs, fmt.Errorf("init: %w", err))
			mu.Unlock()
			return nil
		}
		defer comm.Finalize()
		if err := body(comm); err != nil {
			mu.Lock()
			errs = append(errs, fmt.Errorf("rank %d: %w", comm.Rank(), err))
			mu.Unlock()
		}
		return nil
	})
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	var subjobs []core.SubjobSpec
	for _, name := range machines {
		subjobs = append(subjobs, core.SubjobSpec{
			Contact: g.Contact(name), Count: procsPer, Executable: "mpi",
			Type: core.Required, Label: name,
		})
	}
	simErr := g.Sim.Run("agent", func() {
		job, err := ctrl.Submit(core.Request{Subjobs: subjobs})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if _, err := job.Commit(0); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		job.Done().Wait()
		if job.Err() != "" {
			t.Errorf("job error: %s", job.Err())
		}
	})
	if simErr != nil {
		t.Fatalf("sim: %v", simErr)
	}
	mu.Lock()
	defer mu.Unlock()
	return errs
}

func noErrors(t *testing.T, errs []error) {
	t.Helper()
	for _, err := range errs {
		t.Error(err)
	}
}

func TestWorldFormation(t *testing.T) {
	var mu sync.Mutex
	ranks := map[int]int{}
	errs := launch(t, []string{"m1", "m2", "m3"}, 4, func(c *mpig.Comm) error {
		if c.Size() != 12 {
			return fmt.Errorf("size = %d, want 12", c.Size())
		}
		if c.Subjob() < 0 || c.Subjob() > 2 {
			return fmt.Errorf("subjob = %d", c.Subjob())
		}
		mu.Lock()
		ranks[c.Rank()]++
		mu.Unlock()
		return nil
	})
	noErrors(t, errs)
	for r := 0; r < 12; r++ {
		if ranks[r] != 1 {
			t.Errorf("rank %d seen %d times", r, ranks[r])
		}
	}
}

func TestPointToPointAcrossSubjobs(t *testing.T) {
	errs := launch(t, []string{"m1", "m2"}, 2, func(c *mpig.Comm) error {
		// Ring: each rank sends to (rank+1) and receives from (rank-1).
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		msg := []byte(fmt.Sprintf("hello from %d", c.Rank()))
		if err := c.Send(next, 7, msg); err != nil {
			return fmt.Errorf("send: %w", err)
		}
		got, err := c.Recv(prev, 7)
		if err != nil {
			return fmt.Errorf("recv: %w", err)
		}
		want := fmt.Sprintf("hello from %d", prev)
		if string(got) != want {
			return fmt.Errorf("got %q, want %q", got, want)
		}
		return nil
	})
	noErrors(t, errs)
}

func TestSelfSend(t *testing.T) {
	errs := launch(t, []string{"m1"}, 2, func(c *mpig.Comm) error {
		if err := c.Send(c.Rank(), 1, []byte("me")); err != nil {
			return err
		}
		got, err := c.Recv(c.Rank(), 1)
		if err != nil || string(got) != "me" {
			return fmt.Errorf("self recv = %q, %v", got, err)
		}
		return nil
	})
	noErrors(t, errs)
}

func TestMessageOrderingPreserved(t *testing.T) {
	errs := launch(t, []string{"m1", "m2"}, 1, func(c *mpig.Comm) error {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if got[0] != byte(i) {
				return fmt.Errorf("message %d arrived as %d", i, got[0])
			}
		}
		return nil
	})
	noErrors(t, errs)
}

func TestBarrierSynchronizes(t *testing.T) {
	var mu sync.Mutex
	var after []time.Duration
	errs := launch(t, []string{"m1", "m2"}, 2, func(c *mpig.Comm) error {
		// Rank 0 dawdles; everyone must leave the barrier only after it
		// arrives.
		if c.Rank() == 0 {
			if err := c.Proc().Sleep(10 * time.Second); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		after = append(after, c.Proc().Sim().Now())
		mu.Unlock()
		return nil
	})
	noErrors(t, errs)
	mu.Lock()
	defer mu.Unlock()
	if len(after) != 4 {
		t.Fatalf("%d ranks passed the barrier", len(after))
	}
	var earliest time.Duration = after[0]
	for _, at := range after {
		if at < earliest {
			earliest = at
		}
	}
	// All exits happen at or after rank 0's arrival (~10s into the app).
	for _, at := range after {
		if at < 10*time.Second {
			t.Errorf("rank left barrier at %v, before rank 0 arrived", at)
		}
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	errs := launch(t, []string{"m1", "m2"}, 2, func(c *mpig.Comm) error {
		for root := 0; root < c.Size(); root++ {
			var payload []byte
			if c.Rank() == root {
				payload = []byte(fmt.Sprintf("from-%d", root))
			}
			got, err := c.Bcast(root, payload)
			if err != nil {
				return fmt.Errorf("bcast root %d: %w", root, err)
			}
			want := fmt.Sprintf("from-%d", root)
			if string(got) != want {
				return fmt.Errorf("bcast root %d: got %q", root, got)
			}
		}
		return nil
	})
	noErrors(t, errs)
}

func TestAllReduceSumAndMax(t *testing.T) {
	errs := launch(t, []string{"m1", "m2", "m3"}, 2, func(c *mpig.Comm) error {
		sum, err := c.AllReduceInt(int64(c.Rank()+1), func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		// 1+2+...+6 = 21
		if sum != 21 {
			return fmt.Errorf("sum = %d, want 21", sum)
		}
		maxv, err := c.AllReduceInt(int64(c.Rank()), func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if err != nil {
			return err
		}
		if maxv != int64(c.Size()-1) {
			return fmt.Errorf("max = %d, want %d", maxv, c.Size()-1)
		}
		return nil
	})
	noErrors(t, errs)
}

func TestGather(t *testing.T) {
	errs := launch(t, []string{"m1", "m2"}, 2, func(c *mpig.Comm) error {
		payload, _ := json.Marshal(c.Rank() * 10)
		out, err := c.Gather(0, payload)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if out != nil {
				return fmt.Errorf("non-root got gather output")
			}
			return nil
		}
		for r := 0; r < c.Size(); r++ {
			var v int
			if err := json.Unmarshal(out[r], &v); err != nil || v != r*10 {
				return fmt.Errorf("gather[%d] = %v, %v", r, v, err)
			}
		}
		return nil
	})
	noErrors(t, errs)
}

func TestScatter(t *testing.T) {
	errs := launch(t, []string{"m1", "m2"}, 2, func(c *mpig.Comm) error {
		var parts [][]byte
		if c.Rank() == 1 {
			for r := 0; r < c.Size(); r++ {
				parts = append(parts, []byte(fmt.Sprintf("part-%d", r)))
			}
		}
		got, err := c.Scatter(1, parts)
		if err != nil {
			return err
		}
		want := fmt.Sprintf("part-%d", c.Rank())
		if string(got) != want {
			return fmt.Errorf("scatter got %q, want %q", got, want)
		}
		return nil
	})
	noErrors(t, errs)
}

func TestScatterWrongPartCount(t *testing.T) {
	errs := launch(t, []string{"m1"}, 2, func(c *mpig.Comm) error {
		if c.Rank() != 0 {
			// Avoid blocking: only root runs the failing call.
			return nil
		}
		if _, err := c.Scatter(0, [][]byte{[]byte("only-one")}); err == nil {
			return fmt.Errorf("Scatter with wrong part count succeeded")
		}
		return nil
	})
	noErrors(t, errs)
}

func TestAllGather(t *testing.T) {
	errs := launch(t, []string{"m1", "m2", "m3"}, 2, func(c *mpig.Comm) error {
		all, err := c.AllGather([]byte(fmt.Sprintf("r%d", c.Rank())))
		if err != nil {
			return err
		}
		if len(all) != c.Size() {
			return fmt.Errorf("allgather returned %d entries", len(all))
		}
		for r, entry := range all {
			if string(entry) != fmt.Sprintf("r%d", r) {
				return fmt.Errorf("allgather[%d] = %q", r, entry)
			}
		}
		return nil
	})
	noErrors(t, errs)
}

func TestSendRecvPairwiseExchange(t *testing.T) {
	errs := launch(t, []string{"m1", "m2"}, 2, func(c *mpig.Comm) error {
		partner := c.Rank() ^ 1 // pair 0<->1, 2<->3
		got, err := c.SendRecv(partner, []byte(fmt.Sprintf("from-%d", c.Rank())))
		if err != nil {
			return err
		}
		want := fmt.Sprintf("from-%d", partner)
		if string(got) != want {
			return fmt.Errorf("sendrecv got %q, want %q", got, want)
		}
		// Self-exchange is the identity.
		self, err := c.SendRecv(c.Rank(), []byte("me"))
		if err != nil || string(self) != "me" {
			return fmt.Errorf("self sendrecv = %q, %v", self, err)
		}
		return nil
	})
	noErrors(t, errs)
}

func TestValidation(t *testing.T) {
	errs := launch(t, []string{"m1"}, 2, func(c *mpig.Comm) error {
		if err := c.Send(99, 0, nil); err != mpig.ErrBadRank {
			return fmt.Errorf("Send bad rank = %v", err)
		}
		if err := c.Send(0, -5, nil); err != mpig.ErrBadTag {
			return fmt.Errorf("Send bad tag = %v", err)
		}
		if _, err := c.Recv(0, -5); err != mpig.ErrBadTag {
			return fmt.Errorf("Recv bad tag = %v", err)
		}
		if _, err := c.Bcast(-1, nil); err != mpig.ErrBadRank {
			return fmt.Errorf("Bcast bad root = %v", err)
		}
		return nil
	})
	noErrors(t, errs)
}

func TestRecvTimeoutSurfacesAsError(t *testing.T) {
	errs := launch(t, []string{"m1"}, 2, func(c *mpig.Comm) error {
		c.OpTimeout = time.Second
		if c.Rank() == 1 {
			_, err := c.Recv(0, 9)
			if err == nil {
				return fmt.Errorf("Recv with no sender succeeded")
			}
		}
		return nil
	})
	noErrors(t, errs)
}
