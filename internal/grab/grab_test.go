package grab_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grab"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
)

type rig struct {
	g      *grid.Grid
	broker *grab.Broker

	mu        sync.Mutex
	proceeded int
	aborted   int
}

func newRig(t *testing.T, machines ...string) *rig {
	t.Helper()
	g := grid.New(grid.Options{})
	r := &rig{g: g}
	for _, name := range machines {
		g.AddMachine(name, 64, lrm.Fork)
	}
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			if errors.Is(err, core.ErrBarrierAbort) {
				r.mu.Lock()
				r.aborted++
				r.mu.Unlock()
				return nil
			}
			return err
		}
		r.mu.Lock()
		r.proceeded++
		r.mu.Unlock()
		return p.Work(time.Second, time.Second)
	})
	broker, err := grab.NewBroker(g.Workstation, grab.Config{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		t.Fatalf("NewBroker: %v", err)
	}
	r.broker = broker
	return r
}

func (r *rig) spec(machine string, count int) core.SubjobSpec {
	return core.SubjobSpec{
		Contact:    r.g.Contact(machine),
		Count:      count,
		Executable: "app",
		Label:      machine,
	}
}

func TestAtomicAllocationSucceeds(t *testing.T) {
	r := newRig(t, "m1", "m2", "m3")
	err := r.g.Sim.Run("agent", func() {
		alloc, err := r.broker.Allocate(core.Request{Subjobs: []core.SubjobSpec{
			r.spec("m1", 4), r.spec("m2", 4), r.spec("m3", 8),
		}})
		if err != nil {
			t.Errorf("Allocate: %v", err)
			return
		}
		defer alloc.Close()
		if alloc.Config.WorldSize != 16 || alloc.Config.NSubjobs != 3 {
			t.Errorf("config = %+v", alloc.Config)
		}
		if len(alloc.Config.AddressBook) != 16 {
			t.Errorf("address book size = %d", len(alloc.Config.AddressBook))
		}
		r.g.Sim.Sleep(5 * time.Second) // let the app run
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.proceeded != 16 {
		t.Fatalf("%d proceeded, want 16", r.proceeded)
	}
}

func TestAtomicAllocationAllOrNothing(t *testing.T) {
	// The defining property: one dead machine means nothing is acquired.
	r := newRig(t, "m1", "m2", "dead")
	r.g.Machine("dead").SetDown(true)
	err := r.g.Sim.Run("agent", func() {
		_, err := r.broker.Allocate(core.Request{Subjobs: []core.SubjobSpec{
			r.spec("m1", 4), r.spec("m2", 4), r.spec("dead", 4),
		}})
		if !errors.Is(err, grab.ErrAllocationFailed) {
			t.Errorf("Allocate = %v, want ErrAllocationFailed", err)
		}
		if err != nil && !strings.Contains(err.Error(), "dead") {
			t.Errorf("error %q does not name the failed subjob", err)
		}
		r.g.Sim.Sleep(5 * time.Second) // let aborts propagate
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.proceeded != 0 {
		t.Fatalf("%d processes proceeded despite failed transaction", r.proceeded)
	}
	// m1 and m2 checked in before the dead machine's failure was known:
	// their processes must have been released with an abort.
	if r.aborted != 8 {
		t.Fatalf("%d processes saw abort, want 8", r.aborted)
	}
}

func TestAtomicAllocationTimesOutOnSlowMachine(t *testing.T) {
	// The failure mode that motivated DUROC: a slow machine stalls the
	// whole transaction until the timeout aborts everything.
	g := grid.New(grid.Options{})
	for _, name := range []string{"m1", "slow"} {
		g.AddMachine(name, 64, lrm.Fork)
	}
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return nil
	})
	g.Machine("slow").SetSlowFactor(10000)
	broker, err := grab.NewBroker(g.Workstation, grab.Config{
		Credential:     g.UserCred,
		Registry:       g.Registry,
		StartupTimeout: time.Minute,
	})
	if err != nil {
		t.Fatalf("NewBroker: %v", err)
	}
	err = g.Sim.Run("agent", func() {
		start := g.Sim.Now()
		_, err := broker.Allocate(core.Request{Subjobs: []core.SubjobSpec{
			{Contact: g.Contact("m1"), Count: 4, Executable: "app", Label: "m1"},
			{Contact: g.Contact("slow"), Count: 4, Executable: "app", Label: "slow"},
		}})
		if !errors.Is(err, grab.ErrTimeout) {
			t.Errorf("Allocate = %v, want ErrTimeout", err)
		}
		if took := g.Sim.Now() - start; took > 2*time.Minute {
			t.Errorf("abort took %v", took)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestAtomicAllocationAppStartupFailure(t *testing.T) {
	r := newRig(t, "m1", "m2")
	r.g.RegisterEverywhere("badstart", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		rt.Barrier(false, "insufficient disk space", 0)
		return nil
	})
	err := r.g.Sim.Run("agent", func() {
		_, err := r.broker.Allocate(core.Request{Subjobs: []core.SubjobSpec{
			r.spec("m1", 4),
			{Contact: r.g.Contact("m2"), Count: 2, Executable: "badstart", Label: "m2"},
		}})
		if !errors.Is(err, grab.ErrAllocationFailed) {
			t.Errorf("Allocate = %v, want ErrAllocationFailed", err)
		}
		if err != nil && !strings.Contains(err.Error(), "unsuccessful startup") {
			t.Errorf("error %q lacks the application's report", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestEmptyRequestRejected(t *testing.T) {
	r := newRig(t, "m1")
	if _, err := r.broker.Allocate(core.Request{}); err == nil {
		t.Fatal("empty request accepted")
	}
	_ = r.g.Sim.Run("noop", func() {})
}

func TestKillCancelsSubjobs(t *testing.T) {
	r := newRig(t, "m1")
	r.g.RegisterEverywhere("longapp", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(time.Hour, time.Second)
	})
	err := r.g.Sim.Run("agent", func() {
		alloc, err := r.broker.Allocate(core.Request{Subjobs: []core.SubjobSpec{
			{Contact: r.g.Contact("m1"), Count: 4, Executable: "longapp", Label: "m1"},
		}})
		if err != nil {
			t.Errorf("Allocate: %v", err)
			return
		}
		r.g.Sim.Sleep(5 * time.Second)
		alloc.Kill()
		alloc.Close()
		machine := r.g.Machine("m1")
		r.g.Sim.Sleep(5 * time.Second)
		info := machine.QueueInfo()
		_ = info // fork mode: no queue; verify no panic and time passed
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
