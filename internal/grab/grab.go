// Package grab implements the Globus Resource Allocation Broker: the
// atomic-transaction co-allocator that preceded DUROC (Section 4.1).
//
// GRAB's strategy is all-or-nothing: the resource set is fixed when the
// request is issued; the allocation succeeds only if every subjob starts
// and checks in, and any failure or timeout aborts and releases
// everything. The paper found this inadequate in practice — a single slow
// or failed machine forces a full restart, at tremendous cost when
// application startup takes fifteen minutes — which motivated DUROC's
// interactive transactions. GRAB is retained as the experimental baseline.
//
// GRAB is wire-compatible with the DUROC application runtime: processes
// attach with core.Attach and call Barrier exactly as under DUROC; only
// the broker's policy differs.
package grab

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/gram"
	"cogrid/internal/gsi"
	"cogrid/internal/lrm"
	"cogrid/internal/rpc"
	"cogrid/internal/rsl"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// ServiceName is the transport service the broker's barrier listens on.
const ServiceName = "grab"

// Errors returned by Allocate.
var (
	ErrAllocationFailed = errors.New("grab: atomic allocation failed")
	ErrTimeout          = errors.New("grab: allocation timed out")
)

// Config configures a broker.
type Config struct {
	Credential gsi.Credential
	Registry   *gsi.Registry
	AuthCost   gsi.CostModel // zero value replaced by gsi.DefaultCost
	// StartupTimeout bounds each subjob's submission-to-check-in time;
	// default 10 minutes. On expiry the whole allocation aborts.
	StartupTimeout time.Duration
}

// Broker is an atomic-transaction co-allocator.
type Broker struct {
	sim  *vtime.Sim
	host *transport.Host
	cfg  Config

	mu      sync.Mutex
	nextID  int
	current map[string]*allocation
}

// allocation tracks one in-flight atomic transaction.
type allocation struct {
	id       string
	specs    []core.SubjobSpec
	checkins map[string]map[int]*waiter // subjob label -> rank -> waiter
	arrived  int
	total    int
	failed   bool
	reason   string
	released bool
	config   core.Config
	progress *vtime.Chan[struct{}]
}

type waiter struct {
	addr  string
	at    time.Duration
	reply *vtime.Chan[barrierReply]
}

// Wire format; compatible with the DUROC runtime's checkin call.
type barrierArgs struct {
	Job    string `json:"job"`
	Subjob string `json:"subjob"`
	Rank   int    `json:"rank"`
	OK     bool   `json:"ok"`
	Msg    string `json:"msg,omitempty"`
	Addr   string `json:"addr,omitempty"`
}

type barrierReply struct {
	Proceed bool        `json:"proceed"`
	Reason  string      `json:"reason,omitempty"`
	Config  core.Config `json:"config"`
}

// NewBroker starts a broker on host.
func NewBroker(host *transport.Host, cfg Config) (*Broker, error) {
	if cfg.AuthCost == (gsi.CostModel{}) {
		cfg.AuthCost = gsi.DefaultCost
	}
	if cfg.StartupTimeout == 0 {
		cfg.StartupTimeout = 10 * time.Minute
	}
	b := &Broker{
		sim:     host.Network().Sim(),
		host:    host,
		cfg:     cfg,
		current: make(map[string]*allocation),
	}
	l, err := host.Listen(ServiceName)
	if err != nil {
		return nil, err
	}
	rpc.Serve(b.sim, l, b, nil)
	return b, nil
}

// Contact returns the broker's barrier address.
func (b *Broker) Contact() transport.Addr {
	return transport.Addr{Host: b.host.Name(), Service: ServiceName}
}

// Allocation is a successfully committed atomic co-allocation.
type Allocation struct {
	Config  core.Config
	broker  *Broker
	clients []*gram.Client
	jobs    []string
}

// Kill cancels every subjob.
func (a *Allocation) Kill() {
	for i, c := range a.clients {
		c.Cancel(a.jobs[i])
	}
}

// Close releases the broker-side connections without killing the jobs.
func (a *Allocation) Close() {
	for _, c := range a.clients {
		c.Close()
	}
}

// Allocate runs one atomic transaction: submit every subjob, wait for
// every process to check in, release the barrier, and return the
// configuration. Any submission failure, resource failure, application
// startup failure, or timeout aborts the whole transaction, cancelling
// everything that was acquired. Subjob Type fields are ignored: under the
// atomic strategy every resource is effectively required.
func (b *Broker) Allocate(req core.Request) (*Allocation, error) {
	if len(req.Subjobs) == 0 {
		return nil, fmt.Errorf("grab: empty request")
	}
	b.mu.Lock()
	b.nextID++
	id := fmt.Sprintf("%s/grab%d", b.host.Name(), b.nextID)
	alloc := &allocation{
		id:       id,
		checkins: make(map[string]map[int]*waiter),
		progress: vtime.NewChan[struct{}](b.sim, "grab-progress:"+id, 1),
	}
	for i := range req.Subjobs {
		spec := req.Subjobs[i]
		if spec.Label == "" {
			spec.Label = "sj" + strconv.Itoa(i)
		}
		if _, dup := alloc.checkins[spec.Label]; dup {
			b.mu.Unlock()
			return nil, fmt.Errorf("grab: duplicate subjob label %q", spec.Label)
		}
		alloc.specs = append(alloc.specs, spec)
		alloc.checkins[spec.Label] = make(map[int]*waiter)
		alloc.total += spec.Count
	}
	b.current[id] = alloc
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.current, id)
		b.mu.Unlock()
	}()

	result := &Allocation{broker: b}
	abort := func(reason string) {
		b.mu.Lock()
		alloc.failed = true
		if alloc.reason == "" {
			alloc.reason = reason
		}
		var replies []*waiter
		for _, ranks := range alloc.checkins {
			for _, w := range ranks {
				replies = append(replies, w)
			}
		}
		b.mu.Unlock()
		for _, w := range replies {
			w.reply.TrySend(barrierReply{Proceed: false, Reason: reason})
		}
		for i, c := range result.clients {
			c.Cancel(result.jobs[i])
			c.Close()
		}
	}

	// Phase one: submit every subjob, sequentially, as DUROC does.
	deadline := b.sim.Now() + b.cfg.StartupTimeout
	for _, spec := range alloc.specs {
		client, err := gram.Dial(b.host, spec.Contact, gram.ClientConfig{
			Credential: b.cfg.Credential,
			Registry:   b.cfg.Registry,
			AuthCost:   b.cfg.AuthCost,
		})
		if err != nil {
			abort(err.Error())
			return nil, fmt.Errorf("%w: subjob %q: %v", ErrAllocationFailed, spec.Label, err)
		}
		contact, err := client.Submit(b.subjobRSL(alloc.id, spec))
		if err != nil {
			client.Close()
			abort(err.Error())
			return nil, fmt.Errorf("%w: subjob %q: %v", ErrAllocationFailed, spec.Label, err)
		}
		result.clients = append(result.clients, client)
		result.jobs = append(result.jobs, contact)
		label := spec.Label
		b.sim.GoDaemon("grab-monitor:"+id+"/"+label, func() {
			b.monitor(alloc, label, client)
		})
	}

	// Phase two: wait for every process, then commit.
	for {
		b.mu.Lock()
		failed, reason := alloc.failed, alloc.reason
		complete := alloc.arrived == alloc.total
		b.mu.Unlock()
		if failed {
			abort(reason)
			return nil, fmt.Errorf("%w: %s", ErrAllocationFailed, reason)
		}
		if complete {
			break
		}
		remaining := deadline - b.sim.Now()
		if remaining <= 0 {
			abort("startup timeout")
			return nil, fmt.Errorf("%w after %v", ErrTimeout, b.cfg.StartupTimeout)
		}
		alloc.progress.RecvTimeout(remaining)
	}

	result.Config = b.release(alloc)
	return result, nil
}

// subjobRSL builds the GRAM request; the environment uses the DUROC keys
// so the same application runtime works under either co-allocator.
func (b *Broker) subjobRSL(id string, spec core.SubjobSpec) string {
	node := rsl.Conj(
		[2]string{"executable", spec.Executable},
		[2]string{"count", strconv.Itoa(spec.Count)},
	)
	if spec.MaxTime > 0 {
		node.Children = append(node.Children, &rsl.Relation{
			Attribute: "maxTime", Op: rsl.OpEq,
			Value: rsl.Literal(strconv.Itoa(int(spec.MaxTime / time.Minute))),
		})
	}
	node.Children = append(node.Children, &rsl.Relation{
		Attribute: "environment", Op: rsl.OpEq,
		Value: rsl.Seq{
			rsl.Literal(core.EnvContact), rsl.Literal(b.Contact().String()),
			rsl.Literal(core.EnvJob), rsl.Literal(id),
			rsl.Literal(core.EnvSubjob), rsl.Literal(spec.Label),
		},
	})
	return node.String()
}

// monitor watches one subjob's GRAM callbacks for failure.
func (b *Broker) monitor(alloc *allocation, label string, client *gram.Client) {
	for {
		ev, ok := client.Events().Recv()
		if !ok {
			b.fail(alloc, label, "lost contact with resource manager")
			return
		}
		switch ev.State {
		case lrm.StateDone:
			b.mu.Lock()
			released := alloc.released
			b.mu.Unlock()
			if !released {
				b.fail(alloc, label, "processes exited before the barrier")
			}
			return
		case lrm.StateFailed:
			b.fail(alloc, label, "resource manager reported failure: "+ev.Reason)
			return
		}
	}
}

func (b *Broker) fail(alloc *allocation, label, reason string) {
	b.mu.Lock()
	already := alloc.failed || alloc.released
	if !already {
		alloc.failed = true
		alloc.reason = fmt.Sprintf("subjob %q: %s", label, reason)
	}
	b.mu.Unlock()
	alloc.progress.TrySend(struct{}{})
}

// release assigns ranks and releases every waiting process.
func (b *Broker) release(alloc *allocation) core.Config {
	b.mu.Lock()
	cfg := core.Config{}
	for _, spec := range alloc.specs {
		cfg.NSubjobs++
		cfg.SubjobSizes = append(cfg.SubjobSizes, spec.Count)
		cfg.SubjobLabels = append(cfg.SubjobLabels, spec.Label)
		cfg.WorldSize += spec.Count
	}
	for _, spec := range alloc.specs {
		ranks := alloc.checkins[spec.Label]
		for r := 0; r < spec.Count; r++ {
			cfg.AddressBook = append(cfg.AddressBook, ranks[r].addr)
		}
	}
	alloc.config = cfg
	alloc.released = true
	for idx, spec := range alloc.specs {
		for r := 0; r < spec.Count; r++ {
			w := alloc.checkins[spec.Label][r]
			reply := barrierReply{Proceed: true, Config: cfg}
			reply.Config.MySubjob = idx
			reply.Config.MyRank = cfg.RankOf(idx, r)
			w.reply.TrySend(reply)
		}
	}
	b.mu.Unlock()
	return cfg
}

// HandleCall implements rpc.Handler for the barrier service.
func (b *Broker) HandleCall(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
	if method != "checkin" {
		return nil, fmt.Errorf("grab: unknown method %s", method)
	}
	var args barrierArgs
	if err := rpc.Decode(body, &args); err != nil {
		return nil, err
	}
	b.mu.Lock()
	alloc := b.current[args.Job]
	if alloc == nil {
		b.mu.Unlock()
		return barrierReply{Proceed: false, Reason: "unknown allocation " + args.Job}, nil
	}
	if alloc.failed {
		reason := alloc.reason
		b.mu.Unlock()
		return barrierReply{Proceed: false, Reason: reason}, nil
	}
	ranks, ok := alloc.checkins[args.Subjob]
	if !ok {
		b.mu.Unlock()
		return barrierReply{Proceed: false, Reason: "unknown subjob " + args.Subjob}, nil
	}
	if !args.OK {
		b.mu.Unlock()
		b.fail(alloc, args.Subjob, "process reported unsuccessful startup: "+args.Msg)
		return barrierReply{Proceed: false, Reason: "startup rejected"}, nil
	}
	w := &waiter{
		addr:  args.Addr,
		at:    b.sim.Now(),
		reply: vtime.NewChan[barrierReply](b.sim, "grab-release:"+args.Job+"/"+args.Subjob+"/"+strconv.Itoa(args.Rank), 1),
	}
	if _, dup := ranks[args.Rank]; !dup {
		alloc.arrived++
	}
	ranks[args.Rank] = w
	b.mu.Unlock()
	alloc.progress.TrySend(struct{}{})
	reply, _ := w.reply.Recv()
	return reply, nil
}

// HandleNotify implements rpc.Handler; the barrier has no notifications.
func (b *Broker) HandleNotify(sc *rpc.ServerConn, method string, body json.RawMessage) {}
