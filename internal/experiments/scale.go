package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cogrid/internal/lrm"
	"cogrid/internal/metrics"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// --- B4: million-scale kernel throughput ---

// ScaleConfig parameterizes the scale study: a Poisson stream of batch
// jobs spread round-robin across a fleet of machines, run raw on the
// kernel (no GRAM/DUROC protocol layers) so the numbers measure timer
// dispatch, the blocked-process registry, and the batch scheduler — the
// paths the timing wheel and release index exist for. Zero values select
// the full-size run: 10⁶ jobs over 10⁴ 32-processor machines.
type ScaleConfig struct {
	Jobs        int
	Machines    int
	MachineSize int
	// MaxProcs caps the per-job process count (drawn uniformly from
	// 1..MaxProcs).
	MaxProcs int
	// MinRuntime/MaxRuntime bound the per-process work time (drawn
	// uniformly). The wall-time limit is 2× the drawn runtime, so every
	// running job also carries a passive limit timer that outlives it.
	MinRuntime time.Duration
	MaxRuntime time.Duration
	// MeanInterarrival is the Poisson arrival spacing. The default keeps
	// offered load slightly above fleet capacity, so queues form and the
	// backfill/release-index paths stay hot for the whole run.
	MeanInterarrival time.Duration
	// Engines lists the timer engines to run, one row each. Empty means
	// the production wheel only; the smoke configuration runs both and
	// benchgrid diffs the rows' virtual-time columns.
	Engines []vtime.TimerEngine
	Seed    int64
}

func (c *ScaleConfig) fill() {
	if c.Jobs <= 0 {
		c.Jobs = 1_000_000
	}
	if c.Machines <= 0 {
		c.Machines = 10_000
	}
	if c.MachineSize <= 0 {
		c.MachineSize = 32
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 4
	}
	if c.MinRuntime <= 0 {
		c.MinRuntime = 30 * time.Second
	}
	if c.MaxRuntime <= c.MinRuntime {
		c.MaxRuntime = 10 * time.Minute
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = 2 * time.Millisecond
	}
	if len(c.Engines) == 0 {
		c.Engines = []vtime.TimerEngine{vtime.EngineWheel}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ScaleRow is one engine's outcome. The virtual-time columns (everything
// except the wall-clock trio at the end) are deterministic for a fixed
// config, identical across engines, and form the smoke differential
// benchgrid -app scale enforces.
type ScaleRow struct {
	Engine      string `json:"engine"`
	Jobs        int    `json:"jobs"`
	Machines    int    `json:"machines"`
	MachineSize int    `json:"machine_size"`
	Done        int64  `json:"done"`
	Failed      int64  `json:"failed"`
	TimersFired int64  `json:"timers_fired"`
	// VirtualEnd is the drain time: the first poll tick at which every
	// job had reached a terminal state.
	VirtualEnd time.Duration `json:"virtual_end_ns"`
	MeanWait   time.Duration `json:"mean_wait_ns"` // accept-to-launch queue wait
	P99Wait    time.Duration `json:"p99_wait_ns"`
	// Wall-clock cost of the run — real time, informational only.
	Wall       time.Duration `json:"wall_ns"`
	NsPerJob   float64       `json:"ns_per_job"`
	JobsPerSec float64       `json:"jobs_per_sec"`
}

// ScaleResult is the B4 study.
type ScaleResult struct {
	Jobs     int        `json:"jobs"`
	Machines int        `json:"machines"`
	Rows     []ScaleRow `json:"rows"`
}

// scalePollInterval is the drain-poll spacing. The driver scans the fleet's
// terminal counts on this virtual-time grid, so VirtualEnd is quantized to
// it — deterministically, since completion state is a pure function of
// virtual time.
const scalePollInterval = 10 * time.Second

// ScaleStudy runs the config once per engine.
func ScaleStudy(cfg ScaleConfig) ScaleResult {
	cfg.fill()
	res := ScaleResult{Jobs: cfg.Jobs, Machines: cfg.Machines}
	for _, engine := range cfg.Engines {
		res.Rows = append(res.Rows, ScaleRun(cfg, engine))
	}
	return res
}

// ScaleRun pushes cfg.Jobs batch jobs through the fleet on one timer
// engine. Arrivals are a chained passive timer — each firing submits one
// job and schedules the next — so the stream itself rides the engine under
// test, alongside every wall-limit timer, process-startup wait, and work
// sleep the jobs generate.
func ScaleRun(cfg ScaleConfig, engine vtime.TimerEngine) ScaleRow {
	cfg.fill()
	row := ScaleRow{
		Engine:      engine.String(),
		Jobs:        cfg.Jobs,
		Machines:    cfg.Machines,
		MachineSize: cfg.MachineSize,
	}
	sim := vtime.NewWithConfig(vtime.Config{Seed: cfg.Seed, Engine: engine})
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	hists := metrics.NewHistogramSet()
	net.SetHists(hists)

	machines := make([]*lrm.Machine, cfg.Machines)
	for i := range machines {
		host := net.AddHost(fmt.Sprintf("m%05d", i))
		machines[i] = lrm.NewMachine(host, cfg.MachineSize, lrm.Config{
			Mode:  lrm.Batch,
			Costs: lrm.Costs{Fork: time.Millisecond, ProcStartup: time.Second},
			// Terminal jobs leave the table immediately: memory stays
			// proportional to live work, and Stats() keeps the counts.
			RetireTerminal: true,
		})
		machines[i].RegisterExecutable("work", func(p *lrm.Proc) error {
			// Per-process runtime arrives via Env to keep the executable
			// closure-free; the step is coarse so long runs sleep in one go.
			d, err := time.ParseDuration(p.Env["runtime"])
			if err != nil {
				return err
			}
			return p.Work(d, time.Hour)
		})
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	runtimeSpan := int64(cfg.MaxRuntime - cfg.MinRuntime)
	var arrive func(i int)
	arrive = func(i int) {
		m := machines[i%len(machines)]
		runtime := cfg.MinRuntime + time.Duration(rng.Int63n(runtimeSpan))
		_, err := m.Submit(lrm.JobSpec{
			Executable: "work",
			Count:      1 + rng.Intn(cfg.MaxProcs),
			Env:        map[string]string{"runtime": runtime.String()},
			TimeLimit:  2 * runtime,
		})
		if err != nil {
			// Machines are sized for every draw and never down, so Submit
			// cannot fail; a failure here is a harness bug worth crashing on.
			panic(fmt.Sprintf("scale: submit job %d: %v", i, err))
		}
		if next := i + 1; next < cfg.Jobs {
			gap := time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
			sim.AfterFuncPassive(gap, func() { arrive(next) })
		}
	}

	start := time.Now()
	err := sim.Run("scale-driver", func() {
		arrive(0)
		for {
			var done, failed int64
			for _, m := range machines {
				st := m.Stats()
				done += st.Done
				failed += st.Failed
			}
			if done+failed >= int64(cfg.Jobs) {
				row.Done, row.Failed = done, failed
				row.VirtualEnd = sim.Now()
				return
			}
			sim.Sleep(scalePollInterval)
		}
	})
	row.Wall = time.Since(start)
	if err != nil {
		panic(fmt.Sprintf("scale: sim: %v", err))
	}
	row.TimersFired = sim.TimersFired()
	if h := hists.H("lrm.queue.wait"); h.Count() > 0 {
		row.MeanWait = time.Duration(h.Mean())
		row.P99Wait = time.Duration(h.Quantile(0.99))
	}
	if cfg.Jobs > 0 {
		row.NsPerJob = float64(row.Wall.Nanoseconds()) / float64(cfg.Jobs)
	}
	if s := row.Wall.Seconds(); s > 0 {
		row.JobsPerSec = float64(cfg.Jobs) / s
	}
	return row
}

// VirtualEqual reports whether two rows agree on every deterministic
// virtual-time column — the engine-equivalence bar for the smoke run.
func (r ScaleRow) VirtualEqual(o ScaleRow) bool {
	return r.Done == o.Done && r.Failed == o.Failed &&
		r.TimersFired == o.TimersFired && r.VirtualEnd == o.VirtualEnd &&
		r.MeanWait == o.MeanWait && r.P99Wait == o.P99Wait
}

// Table renders the study as text.
func (r ScaleResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d jobs over %d machines\n", r.Jobs, r.Machines)
	fmt.Fprintf(&sb, "%-6s %9s %7s %12s %12s %10s %10s %9s %9s %10s\n",
		"engine", "done", "failed", "timers", "virt end", "mean wait", "p99 wait",
		"wall", "ns/job", "jobs/sec")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-6s %9d %7d %12d %12s %10s %10s %9s %9.0f %10.0f\n",
			row.Engine, row.Done, row.Failed, row.TimersFired,
			row.VirtualEnd.Truncate(time.Second), row.MeanWait.Truncate(time.Millisecond),
			row.P99Wait.Truncate(time.Millisecond), row.Wall.Truncate(time.Millisecond),
			row.NsPerJob, row.JobsPerSec)
	}
	return sb.String()
}
