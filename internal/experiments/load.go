package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/metrics"
	"cogrid/internal/reservation"
	"cogrid/internal/workload"
)

// --- R2: best-effort co-allocation vs co-reservation under load ---

// LoadRow aggregates one utilization setting.
type LoadRow struct {
	Rho            float64       // offered background load per machine
	BestEffort     time.Duration // mean time from decision to committed start
	BestEffortP95  time.Duration
	Reserved       time.Duration // mean time from decision to reserved start
	Trials         int
	BestEffortWins int // trials where best effort beat the reservation
}

// LoadResult is the R2 study.
type LoadResult struct {
	Machines int
	Rows     []LoadRow
}

// BestEffortVsReservation quantifies the paper's closing argument: the
// co-allocation mechanisms "do not address the problem of ensuring that a
// given co-allocation request will succeed — for this, some form of
// advance reservation will ultimately be required" (Section 5).
//
// Machines carry synthetic batch workloads at offered load rho. A
// three-machine co-allocation submitted best-effort waits for all three
// queues at once; the same request made through co-reservation starts at
// the negotiated window regardless of load (reservations take priority
// over the best-effort queue in this model — the GARA-style guarantee).
// As rho grows, best-effort time diverges while the reserved start stays
// flat, crossing over at moderate load.
func BestEffortVsReservation(machines int, rhos []float64, trials int, seed int64) LoadResult {
	res := LoadResult{Machines: machines}
	for _, rho := range rhos {
		row := LoadRow{Rho: rho, Trials: trials}
		var be, rv []float64
		for trial := 0; trial < trials; trial++ {
			tseed := seed + int64(trial)*65537 + int64(rho*1000)
			beT := loadTrial(machines, rho, tseed, false)
			rvT := loadTrial(machines, rho, tseed, true)
			be = append(be, beT.Seconds())
			rv = append(rv, rvT.Seconds())
			if beT < rvT {
				row.BestEffortWins++
			}
		}
		bs, rs := metrics.Summarize(be), metrics.Summarize(rv)
		row.BestEffort = time.Duration(bs.Mean * float64(time.Second))
		row.BestEffortP95 = time.Duration(bs.P95 * float64(time.Second))
		row.Reserved = time.Duration(rs.Mean * float64(time.Second))
		res.Rows = append(res.Rows, row)
	}
	return res
}

// loadTrial measures time from the decision instant to a running
// co-allocation, with or without reservations.
func loadTrial(machines int, rho float64, seed int64, reserved bool) time.Duration {
	const (
		machineSize = 64
		needPerSite = 32
		decisionAt  = 4 * time.Hour
		horizon     = 16 * time.Hour
		bookAhead   = 15 * time.Minute // operator books the window slightly ahead
	)
	g := grid.New(grid.Options{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	model := workload.ForLoad(rho, machineSize, 10*time.Minute, 2*time.Hour)

	names := make([]string, machines)
	for i := range names {
		names[i] = fmt.Sprintf("site%02d", i)
		m := g.AddMachine(names[i], machineSize, lrm.Batch)
		workload.RegisterExecutable(m, "bg")
		workload.Drive(g.Sim, m, "bg", model.Generate(rng, horizon))
	}
	g.RegisterEverywhere("app", barrierApp(0))
	ctrl := newController(g)

	var elapsed time.Duration
	err := g.Sim.Run("agent", func() {
		g.Sim.SleepUntil(decisionAt)
		if reserved {
			var parts []reservation.Participant
			for _, name := range names {
				parts = append(parts, reservation.Participant{Contact: g.Contact(name), Count: needPerSite})
			}
			cr, err := reservation.CoReserve(g.Workstation, g.ClientConfig(), parts,
				reservation.Options{Duration: time.Hour, Earliest: decisionAt + bookAhead})
			if err != nil {
				panic(fmt.Sprintf("co-reserve: %v", err))
			}
			req := cr.Request("app", g.Sim.Now(), 30*time.Minute)
			job, err := ctrl.Submit(req)
			if err != nil {
				panic(err)
			}
			if _, err := job.Commit(0); err != nil {
				panic(fmt.Sprintf("reserved commit: %v", err))
			}
			elapsed = g.Sim.Now() - decisionAt
			job.Kill()
			cr.Close()
			return
		}
		var req core.Request
		for i, name := range names {
			req.Subjobs = append(req.Subjobs, core.SubjobSpec{
				Label: fmt.Sprintf("w%d", i), Contact: g.Contact(name), Count: needPerSite,
				Executable: "app", Type: core.Required, StartupTimeout: 24 * time.Hour,
			})
		}
		job, err := ctrl.Submit(req)
		if err != nil {
			panic(err)
		}
		if _, err := job.Commit(0); err != nil {
			panic(fmt.Sprintf("best-effort commit: %v", err))
		}
		elapsed = g.Sim.Now() - decisionAt
		job.Kill()
	})
	if err != nil {
		panic(err)
	}
	return elapsed
}

// Table renders the study.
func (r LoadResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("R2: best-effort co-allocation vs co-reservation, %d machines under load", r.Machines),
		"rho", "best-effort mean", "best-effort p95", "reserved start", "best-effort wins")
	for _, row := range r.Rows {
		t.Add(row.Rho, row.BestEffort, row.BestEffortP95, row.Reserved,
			fmt.Sprintf("%d/%d", row.BestEffortWins, row.Trials))
	}
	return t
}
