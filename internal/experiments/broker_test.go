package experiments

import (
	"bytes"
	"testing"
	"time"

	"cogrid/internal/trace"
)

// tinyBrokerConfig keeps the study small enough for the test gate.
func tinyBrokerConfig() BrokerLoadConfig {
	return BrokerLoadConfig{
		Machines:      3,
		MachineSize:   16,
		Sites:         2,
		ProcsPerSite:  4,
		Workers:       2,
		WorkTime:      time.Minute,
		Requests:      8,
		Tenants:       2,
		RatesPerMin:   []float64{4, 12},
		QueueBounds:   []int{2},
		ClosedClients: []int{2},
		Seed:          1,
	}
}

func TestBrokerLoadStudySmoke(t *testing.T) {
	res := BrokerLoadStudy(tinyBrokerConfig())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (2 open + 1 closed)", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.Completed+row.Failed != row.Requests {
			t.Errorf("row %d: completed %d + failed %d != requests %d",
				i, row.Completed, row.Failed, row.Requests)
		}
		if row.Completed > 0 && (row.P50 <= 0 || row.P99 < row.P50) {
			t.Errorf("row %d: implausible latencies p50=%v p99=%v", i, row.P50, row.P99)
		}
		if row.Completed > 0 && row.ThroughputPerMin <= 0 {
			t.Errorf("row %d: throughput = %v with %d completed",
				i, row.ThroughputPerMin, row.Completed)
		}
	}
	if tbl := res.Table().String(); tbl == "" {
		t.Errorf("empty table")
	}
}

func TestBrokerLoadBackpressureVisible(t *testing.T) {
	// At the top offered rate with a tiny queue bound, admission rejects
	// must show up in the counters (the acceptance criterion for B1).
	cfg := tinyBrokerConfig()
	row, _ := BrokerLoadRun(cfg, 12, 1)
	if row.Rejects == 0 {
		t.Errorf("rejects = 0 at 12/min with queue bound 1; row = %+v", row)
	}
	if row.Completed == 0 {
		t.Errorf("nothing completed: %+v", row)
	}
}

func TestBrokerLoadDeterminism(t *testing.T) {
	// Two same-config runs must agree byte for byte on both the counter
	// registry and the full trace export.
	cfg := tinyBrokerConfig()
	row1, g1 := BrokerLoadRun(cfg, 12, 2)
	row2, g2 := BrokerLoadRun(cfg, 12, 2)
	if row1 != row2 {
		t.Errorf("rows differ:\n  %+v\n  %+v", row1, row2)
	}
	if c1, c2 := g1.Counters.String(), g2.Counters.String(); c1 != c2 {
		t.Errorf("counter registries differ:\n--- run1\n%s--- run2\n%s", c1, c2)
	}
	var t1, t2 bytes.Buffer
	if err := g1.Tracer.WriteJSONL(&t1); err != nil {
		t.Fatalf("trace 1: %v", err)
	}
	if err := g2.Tracer.WriteJSONL(&t2); err != nil {
		t.Fatalf("trace 2: %v", err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Errorf("trace exports differ (%d vs %d bytes)", t1.Len(), t2.Len())
	}
	// The derived telemetry must be byte-identical too: the causal
	// critical-path report and the gauge time series.
	r1 := trace.Analyze(g1.Tracer.Events()).Report()
	r2 := trace.Analyze(g2.Tracer.Events()).Report()
	if r1 != r2 {
		t.Errorf("analyzer reports differ:\n--- run1\n%s--- run2\n%s", r1, r2)
	}
	var s1, s2 bytes.Buffer
	if err := g1.Gauges.Series(5*time.Second, g1.Sim.Now()).WriteCSV(&s1); err != nil {
		t.Fatalf("gauges 1: %v", err)
	}
	if err := g2.Gauges.Series(5*time.Second, g2.Sim.Now()).WriteCSV(&s2); err != nil {
		t.Fatalf("gauges 2: %v", err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Errorf("gauge series differ:\n--- run1\n%s--- run2\n%s", s1.String(), s2.String())
	}
}

func TestBrokerLoadCausalInvariants(t *testing.T) {
	// A B1 smoke run must satisfy the causal-tracing invariants end to
	// end: every event attributed to a request (coverage ≥ 99%), every
	// request tree single-rooted, and every request's critical path
	// summing exactly to its end-to-end latency. This is the in-process
	// version of `make trace-smoke`.
	_, g := BrokerLoadRun(tinyBrokerConfig(), 12, 2)
	a := trace.Analyze(g.Tracer.Events())
	if problems := a.Check(); len(problems) > 0 {
		for _, p := range problems {
			t.Errorf("invariant violated: %s", p)
		}
	}
	if len(a.RequestTrees()) == 0 {
		t.Fatal("no request trees reconstructed")
	}
	for _, tree := range a.RequestTrees() {
		if tree.GatingSubjob() == "" {
			t.Errorf("request %s: no gating subjob identified", tree.Req)
		}
	}
}
