package experiments

import (
	"bytes"
	"testing"
	"time"

	"cogrid/internal/trace"
)

// tinyChaosConfig keeps the chaos study small enough for the test gate
// while still injecting faults at the top rate.
func tinyChaosConfig() ChaosConfig {
	return ChaosConfig{
		Machines:     4,
		MachineSize:  16,
		Sites:        2,
		ProcsPerSite: 4,
		Spares:       1,
		Workers:      2,
		WorkTime:     45 * time.Second,
		Requests:     6,
		Tenants:      2,
		RatePerMin:   4,
		FaultRates:   []float64{0, 0.75},
		Window:       2 * time.Minute,
		MaxTime:      4 * time.Minute,
		SubmitBudget: 6 * time.Minute,
		// Seed 3 is chosen so the chaotic row exercises the full orphan
		// pipeline: a host crash strands committed subjobs, a later
		// machine-restart brings the gatekeeper back, and the reaper
		// confirms every cancellation.
		Seed: 3,
	}
}

func TestChaosStudySmoke(t *testing.T) {
	res := ChaosStudy(tinyChaosConfig())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	calm, chaotic := res.Rows[0], res.Rows[1]
	if calm.Faults != 0 {
		t.Errorf("fault-free row injected %d faults", calm.Faults)
	}
	if calm.Completed != calm.Requests {
		t.Errorf("fault-free row: %d/%d completed; row = %+v",
			calm.Completed, calm.Requests, calm)
	}
	if chaotic.Faults == 0 {
		t.Errorf("fault rate 0.75 injected no faults")
	}
	if chaotic.OrphansRecorded == 0 {
		t.Errorf("chaotic row exercised no orphans; pick a different seed")
	}
	for i, row := range res.Rows {
		if row.Completed+row.Failed != row.Requests {
			t.Errorf("row %d: completed %d + failed %d != requests %d",
				i, row.Completed, row.Failed, row.Requests)
		}
		// The resilience criterion: whatever the faults did, nothing may
		// keep holding processors, and every recorded orphan must have
		// been confirmed cancelled at its resource manager.
		if row.LeakedJobs != 0 {
			t.Errorf("row %d: %d leaked jobs after quiescence", i, row.LeakedJobs)
		}
		if row.OrphansRecorded != row.OrphansReaped {
			t.Errorf("row %d: orphans recorded %d != reaped %d",
				i, row.OrphansRecorded, row.OrphansReaped)
		}
	}
	if tbl := res.Table().String(); tbl == "" {
		t.Errorf("empty table")
	}
}

func TestChaosDeterminism(t *testing.T) {
	// Two same-seed chaos runs must agree byte for byte on the counter
	// registry and the full trace export — fault injection, substitution,
	// watchdog, and reaping included.
	cfg := tinyChaosConfig()
	row1, g1 := ChaosRun(cfg, 0.75)
	row2, g2 := ChaosRun(cfg, 0.75)
	if row1 != row2 {
		t.Errorf("rows differ:\n  %+v\n  %+v", row1, row2)
	}
	if c1, c2 := g1.Counters.String(), g2.Counters.String(); c1 != c2 {
		t.Errorf("counter registries differ:\n--- run1\n%s--- run2\n%s", c1, c2)
	}
	var t1, t2 bytes.Buffer
	if err := g1.Tracer.WriteJSONL(&t1); err != nil {
		t.Fatalf("trace 1: %v", err)
	}
	if err := g2.Tracer.WriteJSONL(&t2); err != nil {
		t.Fatalf("trace 2: %v", err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Errorf("trace exports differ (%d vs %d bytes)", t1.Len(), t2.Len())
	}
	// The derived telemetry must be byte-identical too: the causal
	// critical-path report and the gauge time series.
	r1 := trace.Analyze(g1.Tracer.Events()).Report()
	r2 := trace.Analyze(g2.Tracer.Events()).Report()
	if r1 != r2 {
		t.Errorf("analyzer reports differ:\n--- run1\n%s--- run2\n%s", r1, r2)
	}
	var s1, s2 bytes.Buffer
	if err := g1.Gauges.Series(5*time.Second, g1.Sim.Now()).WriteCSV(&s1); err != nil {
		t.Fatalf("gauges 1: %v", err)
	}
	if err := g2.Gauges.Series(5*time.Second, g2.Sim.Now()).WriteCSV(&s2); err != nil {
		t.Fatalf("gauges 2: %v", err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Errorf("gauge series differ:\n--- run1\n%s--- run2\n%s", s1.String(), s2.String())
	}
}
