package experiments

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/core"
	"cogrid/internal/failure"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/transport"
	"cogrid/internal/workload"
)

// TestSoakRandomGridsNeverWedge is the repository's chaos net: random
// topologies, random fault plans, random background load, both
// co-allocation strategies. Every run must terminate — commit, clean
// failure, or timeout — without a kernel deadlock, which the virtual-time
// kernel would report as an error.
func TestSoakRandomGridsNeverWedge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			soakOnce(t, seed)
		})
	}
}

func soakOnce(t *testing.T, seed int64) {
	g := grid.New(grid.Options{Seed: seed})
	nMachines := 3 + int(seed%5)
	var names []string
	for i := 0; i < nMachines; i++ {
		name := fmt.Sprintf("m%02d", i)
		names = append(names, name)
		mode := lrm.Fork
		if i%2 == 1 {
			mode = lrm.Batch
		}
		m := g.AddMachine(name, 32, mode)
		if mode == lrm.Batch {
			workload.RegisterExecutable(m, "bg")
			model := workload.ForLoad(0.4, 32, 5*time.Minute, 30*time.Minute)
			workload.Drive(g.Sim, m, "bg", model.Generate(rand.New(newRand(seed+int64(i))), 2*time.Hour))
		}
	}
	g.RegisterEverywhere("app", barrierApp(time.Minute))

	plan := failure.RandomPlan(g, failure.RandomOptions{
		Targets:   names[:nMachines/2+1],
		Window:    time.Minute,
		CrashProb: 0.25,
		HangProb:  0.15,
		SlowProb:  0.2,
	})
	plan.Apply(g)

	ctrl := newController(g)
	err := g.Sim.Run("agent", func() {
		var req core.Request
		typ := core.Interactive
		if seed%3 == 0 {
			typ = core.Required
		}
		for i, name := range names {
			if i >= 3 {
				break
			}
			req.Subjobs = append(req.Subjobs, core.SubjobSpec{
				Label: name, Contact: g.Contact(name), Count: 8, Executable: "app",
				Type: typ, StartupTimeout: 10 * time.Minute,
			})
		}
		var pool []transport.Addr
		for _, name := range names[3:] {
			pool = append(pool, g.Contact(name))
		}
		res, err := agent.WithSubstitution(ctrl, req, agent.SubstituteOptions{
			Pool:              pool,
			CommitTimeout:     2 * time.Hour,
			DropUnreplaceable: true,
		})
		if err != nil {
			t.Logf("seed %d: clean failure: %v", seed, err)
			return
		}
		t.Logf("seed %d: committed %d processes (%d substituted, %d dropped)",
			seed, res.Config.WorldSize, res.Substitutions, res.Deleted)
		res.Job.Kill()
	})
	if err != nil {
		t.Fatalf("seed %d: kernel error (deadlock or stall): %v", seed, err)
	}
}

// newRand is a tiny local PRNG helper for soak workload generation.
func newRand(seed int64) *randSource { return &randSource{state: uint64(seed)*2685821657736338717 + 1} }

type randSource struct{ state uint64 }

func (r *randSource) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

// The workload generator wants a *rand.Rand; adapt via rand.New(Source).
func (r *randSource) Int63() int64 { return int64(r.next() >> 1) }
func (r *randSource) Seed(s int64) { r.state = uint64(s) }
