package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/metrics"
)

// --- Figure 2: GRAM submission latency vs process count ---

// Figure2Row is one point of Figure 2.
type Figure2Row struct {
	Processes int
	Latency   time.Duration
}

// Figure2Result holds the Figure 2 series.
type Figure2Result struct {
	Rows []Figure2Row
}

// Figure2 measures GRAM submission latency — from invocation of the
// allocation command to successful startup of the processes — for several
// job sizes on a fork-mode machine, reproducing the paper's finding that
// the cost is insensitive to process count.
func Figure2(counts []int) Figure2Result {
	var res Figure2Result
	for _, count := range counts {
		g := grid.New(grid.Options{})
		g.AddMachine("origin", 64, lrm.Fork)
		// The executable exits as soon as startup completes, so the DONE
		// callback marks "successful startup of the processes".
		g.RegisterEverywhere("probe", func(p *lrm.Proc) error { return nil })
		var latency time.Duration
		count := count
		err := g.Sim.Run("client", func() {
			// The paper times "from invocation of the allocation command":
			// connection and authentication are part of the request.
			start := g.Sim.Now()
			client, err := g.Dial("origin")
			if err != nil {
				panic(fmt.Sprintf("figure2: dial: %v", err))
			}
			defer client.Close()
			if _, err := client.Submit(fmt.Sprintf(`&(executable=probe)(count=%d)`, count)); err != nil {
				panic(fmt.Sprintf("figure2: submit: %v", err))
			}
			for {
				ev, ok := client.Events().Recv()
				if !ok {
					panic("figure2: callback stream closed")
				}
				if ev.State == lrm.StateDone {
					latency = g.Sim.Now() - start
					return
				}
				if ev.State == lrm.StateFailed {
					panic("figure2: job failed: " + ev.Reason)
				}
			}
		})
		if err != nil {
			panic(err)
		}
		res.Rows = append(res.Rows, Figure2Row{Processes: count, Latency: latency})
	}
	return res
}

// Table renders the result.
func (r Figure2Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 2: GRAM submission latency vs process count",
		"processes", "latency")
	for _, row := range r.Rows {
		t.Add(row.Processes, row.Latency)
	}
	return t
}

// --- Figure 3: single-process GRAM request breakdown ---

// Figure3Result is the per-phase breakdown of one GRAM request.
type Figure3Result struct {
	Phases map[string]time.Duration
	Total  time.Duration
}

// Figure3 instruments a single-process GRAM request and reports where the
// time goes, reproducing the paper's breakdown (initgroups 0.7 s,
// authentication 0.5 s, misc 0.01 s, fork 0.001 s).
func Figure3() Figure3Result {
	g := grid.New(grid.Options{RecordTimeline: true})
	g.AddMachine("origin", 64, lrm.Fork)
	g.RegisterEverywhere("probe", func(p *lrm.Proc) error { return nil })
	err := g.Sim.Run("client", func() {
		client, err := g.Dial("origin")
		if err != nil {
			panic(fmt.Sprintf("figure3: dial: %v", err))
		}
		defer client.Close()
		if _, err := client.Submit(`&(executable=probe)(count=1)`); err != nil {
			panic(fmt.Sprintf("figure3: submit: %v", err))
		}
	})
	if err != nil {
		panic(err)
	}
	res := Figure3Result{Phases: g.Timeline.PhaseTotals()}
	for _, d := range res.Phases {
		res.Total += d
	}
	return res
}

// Table renders the breakdown largest-first, as the paper's table does.
func (r Figure3Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 3: breakdown of a single-process GRAM request",
		"operation", "latency")
	type kv struct {
		name string
		d    time.Duration
	}
	rows := make([]kv, 0, len(r.Phases))
	for name, d := range r.Phases {
		rows = append(rows, kv{name, d})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	for _, row := range rows {
		t.Add(row.name, row.d)
	}
	t.Add("total", r.Total)
	return t
}

// --- Figure 4: DUROC submission time vs subjob count ---

// Figure4Row is one point of Figure 4.
type Figure4Row struct {
	Subjobs        int
	Measured       time.Duration // DUROC: submit to barrier release
	Synthetic      time.Duration // k·(M-1) + T(1) pipeline model
	GRAMTimesCount time.Duration // zero-concurrency expectation
	AvgBarrierWait time.Duration
	HalfMeasured   time.Duration // the paper's "DUROC / 2" reference line
}

// Figure4Result holds the Figure 4 series and the fitted pipeline
// parameters.
type Figure4Result struct {
	TotalProcesses int
	Rows           []Figure4Row
	// K is the fitted per-subjob pipeline latency (the paper's k).
	K time.Duration
	// SingleGRAM is the single-subjob latency used for the
	// zero-concurrency line.
	SingleGRAM time.Duration
	// PipelineSaving is 1 - T(maxM) / (maxM · T(1)): the fraction saved
	// versus zero concurrency (the paper reports 44%).
	PipelineSaving float64
	// MeanWaitRatio averages AvgBarrierWait/Measured across rows with
	// more than one subjob (the paper's "approximately one half").
	MeanWaitRatio float64
	// MinWaitMax is the largest per-run minimum barrier wait observed
	// ("the shortest wait time is always zero").
	MinWaitMax time.Duration
}

// durocTiming runs one co-allocation of totalProcs processes split over m
// subjobs on a single 64-processor fork-mode machine, returning the
// submit-to-release time and the per-process barrier waits.
func durocTiming(totalProcs, m int, parallel bool) (time.Duration, []time.Duration) {
	g := grid.New(grid.Options{})
	g.AddMachine("origin", 64, lrm.Fork)
	g.RegisterEverywhere("app", barrierApp(0))
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential:         g.UserCred,
		Registry:           g.Registry,
		ParallelSubmission: parallel,
	})
	if err != nil {
		panic(err)
	}
	sizes := splitProcs(totalProcs, m)
	var req core.Request
	for i, size := range sizes {
		req.Subjobs = append(req.Subjobs, core.SubjobSpec{
			Label: fmt.Sprintf("sj%d", i), Contact: g.Contact("origin"),
			Count: size, Executable: "app", Type: core.Required,
		})
	}
	var measured time.Duration
	var waits []time.Duration
	err = g.Sim.Run("agent", func() {
		start := g.Sim.Now()
		job, err := ctrl.Submit(req)
		if err != nil {
			panic(fmt.Sprintf("duroc run: submit: %v", err))
		}
		if _, err := job.Commit(0); err != nil {
			panic(fmt.Sprintf("duroc run: commit: %v", err))
		}
		measured = g.Sim.Now() - start
		waits = job.BarrierWaits()
		job.Done().Wait()
	})
	if err != nil {
		panic(err)
	}
	return measured, waits
}

// Figure4 measures DUROC co-allocation time as the number of subjobs
// varies while the total process count stays fixed, all subjobs on one
// 64-processor fork-mode machine as in the paper's experiment.
func Figure4(totalProcs int, subjobCounts []int) Figure4Result {
	res := Figure4Result{TotalProcesses: totalProcs}
	type run struct {
		m        int
		measured time.Duration
		waits    []time.Duration
	}
	var runs []run
	for _, m := range subjobCounts {
		r := run{m: m}
		r.measured, r.waits = durocTiming(totalProcs, m, false)
		runs = append(runs, r)
	}

	// Fit k from the extreme points, as the paper does from its plot.
	first, last := runs[0], runs[len(runs)-1]
	res.SingleGRAM = first.measured
	if last.m > first.m {
		res.K = (last.measured - first.measured) / time.Duration(last.m-first.m)
	}
	var ratioSum float64
	var ratioN int
	for _, r := range runs {
		var sum time.Duration
		minWait := time.Duration(1<<62 - 1)
		for _, w := range r.waits {
			sum += w
			if w < minWait {
				minWait = w
			}
		}
		avg := time.Duration(0)
		if len(r.waits) > 0 {
			avg = sum / time.Duration(len(r.waits))
		}
		if minWait > res.MinWaitMax && len(r.waits) > 0 {
			res.MinWaitMax = minWait
		}
		if r.m > 1 {
			ratioSum += float64(avg) / float64(r.measured)
			ratioN++
		}
		res.Rows = append(res.Rows, Figure4Row{
			Subjobs:        r.m,
			Measured:       r.measured,
			Synthetic:      first.measured + res.K*time.Duration(r.m-1),
			GRAMTimesCount: first.measured * time.Duration(r.m),
			AvgBarrierWait: avg,
			HalfMeasured:   r.measured / 2,
		})
	}
	if ratioN > 0 {
		res.MeanWaitRatio = ratioSum / float64(ratioN)
	}
	if last.m > 1 {
		res.PipelineSaving = 1 - float64(last.measured)/(float64(last.m)*float64(first.measured))
	}
	return res
}

// Table renders the series.
func (r Figure4Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 4: DUROC submission time vs subjob count (%d processes total)", r.TotalProcesses),
		"subjobs", "measured", "synthetic k*M", "GRAM*count", "avg barrier wait", "measured/2")
	for _, row := range r.Rows {
		t.Add(row.Subjobs, row.Measured, row.Synthetic, row.GRAMTimesCount, row.AvgBarrierWait, row.HalfMeasured)
	}
	return t
}

// Summary states the paper's three claims against the measurements.
func (r Figure4Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fitted pipeline step k = %s per subjob (single subjob %s)\n",
		seconds(r.K), seconds(r.SingleGRAM))
	fmt.Fprintf(&sb, "pipelining saves %.0f%% versus zero concurrency (paper: 44%%)\n",
		r.PipelineSaving*100)
	fmt.Fprintf(&sb, "average barrier wait / total time = %.2f (paper: ~0.5)\n", r.MeanWaitRatio)
	fmt.Fprintf(&sb, "largest minimum barrier wait across runs = %s (paper: always zero)\n",
		seconds(r.MinWaitMax))
	return sb.String()
}

// --- Figure 4 flatness companion: DUROC time vs process count ---

// Figure4FlatRow is one point of the process-count sweep.
type Figure4FlatRow struct {
	Processes int
	Measured  time.Duration
}

// Figure4Flat verifies the other half of the paper's Section 4.2 finding:
// with the subjob count fixed, co-allocation time is essentially
// independent of the number of processes.
func Figure4Flat(subjobs int, procCounts []int) []Figure4FlatRow {
	var rows []Figure4FlatRow
	for _, total := range procCounts {
		r := Figure4(total, []int{subjobs})
		rows = append(rows, Figure4FlatRow{Processes: total, Measured: r.Rows[0].Measured})
	}
	return rows
}

// --- wide-area companion: where the time goes as latency grows ---

// WideAreaRow decomposes co-allocation cost at one network latency.
type WideAreaRow struct {
	OneWayLatency time.Duration
	Total         time.Duration
	AvgBarrier    time.Duration
	BarrierShare  float64 // avg barrier wait / total
}

// WideAreaStudy reproduces the paper's closing Section 4.2 observation:
// "barrier synchronization costs are negligible in the wide-area compared
// to local startup delays introduced both by GRAM and by local scheduler
// queues". Co-allocations of fixed shape run at increasing one-way
// latencies; the barrier's share of the total barely moves because the
// dominant costs (authentication compute, initgroups, process startup)
// are not network-bound.
func WideAreaStudy(subjobs, totalProcs int, latencies []time.Duration) []WideAreaRow {
	var rows []WideAreaRow
	for _, lat := range latencies {
		g := grid.New(grid.Options{Latency: lat})
		g.AddMachine("origin", 64, lrm.Fork)
		g.RegisterEverywhere("app", barrierApp(0))
		ctrl := newController(g)
		sizes := splitProcs(totalProcs, subjobs)
		var req core.Request
		for i, size := range sizes {
			req.Subjobs = append(req.Subjobs, core.SubjobSpec{
				Label: fmt.Sprintf("sj%d", i), Contact: g.Contact("origin"),
				Count: size, Executable: "app", Type: core.Required,
			})
		}
		var row WideAreaRow
		row.OneWayLatency = lat
		err := g.Sim.Run("agent", func() {
			start := g.Sim.Now()
			job, err := ctrl.Submit(req)
			if err != nil {
				panic(err)
			}
			if _, err := job.Commit(0); err != nil {
				panic(err)
			}
			row.Total = g.Sim.Now() - start
			waits := job.BarrierWaits()
			var sum time.Duration
			for _, w := range waits {
				sum += w
			}
			if len(waits) > 0 {
				row.AvgBarrier = sum / time.Duration(len(waits))
			}
			job.Done().Wait()
		})
		if err != nil {
			panic(err)
		}
		if row.Total > 0 {
			row.BarrierShare = float64(row.AvgBarrier) / float64(row.Total)
		}
		rows = append(rows, row)
	}
	return rows
}

// WideAreaTable renders the study.
func WideAreaTable(rows []WideAreaRow) *metrics.Table {
	t := metrics.NewTable("Wide-area companion: cost decomposition vs one-way network latency",
		"one-way latency", "total", "avg barrier wait", "barrier share")
	for _, row := range rows {
		t.Add(row.OneWayLatency, row.Total, row.AvgBarrier,
			fmt.Sprintf("%.2f", row.BarrierShare))
	}
	return t
}

// --- ablation: sequential pipeline vs parallel submission ---

// AblationRow compares submission disciplines at one subjob count.
type AblationRow struct {
	Subjobs    int
	Sequential time.Duration
	Parallel   time.Duration
	Speedup    float64
}

// SubmissionAblation quantifies the design choice Figure 5 documents: the
// paper's DUROC submits its GRAM requests sequentially (cost T1 + k(M-1)),
// leaving pipelining as the only overlap. The ablation runs the same
// co-allocations with fully parallel submission, which is flat in the
// subjob count — the improvement the paper's timeline analysis hints at
// ("some opportunity for overlap in processing a DUROC request").
func SubmissionAblation(totalProcs int, subjobCounts []int) []AblationRow {
	var rows []AblationRow
	for _, m := range subjobCounts {
		seq, _ := durocTiming(totalProcs, m, false)
		par, _ := durocTiming(totalProcs, m, true)
		rows = append(rows, AblationRow{
			Subjobs:    m,
			Sequential: seq,
			Parallel:   par,
			Speedup:    float64(seq) / float64(par),
		})
	}
	return rows
}

// AblationTable renders the comparison.
func AblationTable(rows []AblationRow) *metrics.Table {
	t := metrics.NewTable("Ablation: sequential (paper) vs parallel subjob submission, 64 processes",
		"subjobs", "sequential", "parallel", "speedup")
	for _, row := range rows {
		t.Add(row.Subjobs, row.Sequential, row.Parallel, row.Speedup)
	}
	return t
}

// --- Figure 5: timeline of a DUROC submission ---

// Figure5 runs one multi-subjob DUROC co-allocation with full phase
// recording and renders the submission timeline: the staggered per-subjob
// GRAM requests (authentication, initgroups, fork), the startup waits, and
// the barrier intervals ending together at commit.
func Figure5(subjobs, totalProcs int) string {
	g := grid.New(grid.Options{RecordTimeline: true})
	g.AddMachine("origin", 64, lrm.Fork)
	g.RegisterEverywhere("app", barrierApp(0))
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
		Timeline:   g.Timeline,
	})
	if err != nil {
		panic(err)
	}
	sizes := splitProcs(totalProcs, subjobs)
	var req core.Request
	for i, size := range sizes {
		req.Subjobs = append(req.Subjobs, core.SubjobSpec{
			Label: fmt.Sprintf("sj%d", i), Contact: g.Contact("origin"),
			Count: size, Executable: "app", Type: core.Required,
		})
	}
	err = g.Sim.Run("agent", func() {
		job, err := ctrl.Submit(req)
		if err != nil {
			panic(fmt.Sprintf("figure5: submit: %v", err))
		}
		if _, err := job.Commit(0); err != nil {
			panic(fmt.Sprintf("figure5: commit: %v", err))
		}
		job.Done().Wait()
	})
	if err != nil {
		panic(err)
	}
	return "Figure 5: timeline of a DUROC submission\n" + g.Timeline.Render(96)
}
