package experiments

import (
	"fmt"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/metrics"
	"cogrid/internal/transport"
)

// --- S2: information staleness (Section 2.2, reference [14]) ---

// StalenessRow aggregates one information-age setting.
type StalenessRow struct {
	Age        time.Duration // how old the published records are at decision time
	MeanCommit time.Duration
	P95Commit  time.Duration
	Trials     int
}

// StalenessResult is the S2 study.
type StalenessResult struct {
	Needed   int
	PoolSize int
	Rows     []StalenessRow
}

// StalenessSweep reproduces the claim the paper takes from [14]: selecting
// resources from published load information "can be effective if there is
// a minimum period of time over which load information remains valid".
//
// Machines run churning batch loads (a new full-machine job with a random
// limit whenever the previous finishes). The agent selects the Needed
// machines with the best *published* forecasts, but the records it reads
// were published Age ago — by which time the loads have changed. Older
// information yields worse selections and longer times to commit.
func StalenessSweep(needed, poolSize int, ages []time.Duration, trials int, seed int64) StalenessResult {
	res := StalenessResult{Needed: needed, PoolSize: poolSize}
	for _, age := range ages {
		row := StalenessRow{Age: age, Trials: trials}
		var commits []float64
		for trial := 0; trial < trials; trial++ {
			d := stalenessTrial(needed, poolSize, age, seed+int64(trial)*104729)
			commits = append(commits, d.Seconds())
		}
		s := metrics.Summarize(commits)
		row.MeanCommit = time.Duration(s.Mean * float64(time.Second))
		row.P95Commit = time.Duration(s.P95 * float64(time.Second))
		res.Rows = append(res.Rows, row)
	}
	return res
}

func stalenessTrial(needed, poolSize int, age time.Duration, seed int64) time.Duration {
	const machineSize = 32
	// Decision time: late enough that initial conditions have churned.
	const decisionAt = 6 * time.Hour
	g := grid.New(grid.Options{Seed: seed})

	names := make([]string, poolSize)
	for i := range names {
		names[i] = fmt.Sprintf("ch%02d", i)
		m := g.AddMachine(names[i], machineSize, lrm.Batch)
		m.RegisterExecutable("bg", func(p *lrm.Proc) error {
			return p.Work(48*time.Hour, time.Minute) // bounded by its limit
		})
	}
	g.RegisterEverywhere("app", barrierApp(0))

	// Churn daemons: every machine alternates random full-machine loads.
	for _, name := range names {
		m := g.Machine(name)
		g.Sim.GoDaemon("churn:"+name, func() {
			for {
				// Sim.RandIntn is mutex-protected: churn daemons draw
				// concurrently. Long jobs keep information valid longer,
				// making the staleness effect visible above trial noise.
				limit := time.Duration(20+g.Sim.RandIntn(140)) * time.Minute
				job, err := m.Submit(lrm.JobSpec{Executable: "bg", Count: machineSize, TimeLimit: limit})
				if err != nil {
					return
				}
				job.Done().Wait()
			}
		})
	}

	// Snapshot the records at decisionAt-age: this is what the directory
	// will still be serving at decision time.
	var snapshot []mds.Record
	g.Sim.AfterFunc(decisionAt-age, func() {
		for _, name := range names {
			snapshot = append(snapshot, mds.RecordFor(g.Machine(name), g.Contact(name), machineSize))
		}
	})

	ctrl := newController(g)
	var commit time.Duration
	err := g.Sim.Run("agent", func() {
		g.Sim.SleepUntil(decisionAt)
		chosen := agent.SelectByForecast(snapshot, machineSize, needed, 0, g.Sim.RandNorm)
		var req core.Request
		for i, rec := range chosen {
			contact, err := transport.ParseAddr(rec.Contact)
			if err != nil {
				panic(err)
			}
			req.Subjobs = append(req.Subjobs, core.SubjobSpec{
				Label: fmt.Sprintf("w%d", i), Contact: contact, Count: machineSize,
				Executable: "app", Type: core.Required, StartupTimeout: 12 * time.Hour,
			})
		}
		job, err := ctrl.Submit(req)
		if err != nil {
			panic(err)
		}
		start := g.Sim.Now()
		if _, err := job.Commit(0); err != nil {
			panic(fmt.Sprintf("staleness trial commit: %v", err))
		}
		commit = g.Sim.Now() - start
		job.Kill()
	})
	if err != nil {
		panic(err)
	}
	return commit
}

// Table renders the sweep.
func (r StalenessResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("S2: co-allocation time vs load-information age (%d of %d machines)", r.Needed, r.PoolSize),
		"info age", "mean time-to-commit", "p95")
	for _, row := range r.Rows {
		t.Add(row.Age, row.MeanCommit, row.P95Commit)
	}
	return t
}
