package experiments

import (
	"fmt"
	"time"

	"cogrid/internal/flightrec"
	"cogrid/internal/grid"
	"cogrid/internal/metrics"
	"cogrid/internal/slo"
)

// --- B7: SLO detection latency under injected faults ---

// SLOConfig parameterizes the detection-latency study: B2's chaos
// workload with the SLO engine armed, measuring how long (in virtual
// time) the observability plane takes to notice each fault plan.
type SLOConfig struct {
	Chaos ChaosConfig
	// EvalInterval is the engine's evaluation cadence; the evaluation
	// horizon lags wall time by the same amount, so it is a floor on any
	// achievable detection lag.
	EvalInterval time.Duration
	// DetectBudget bounds the acceptable lag from the first fault onset
	// to the first alert fire on a faulted row.
	DetectBudget time.Duration
}

func (c *SLOConfig) fill() {
	if len(c.Chaos.FaultRates) == 0 {
		c.Chaos.FaultRates = []float64{0, 0.5, 1}
	}
	c.Chaos.fill()
	if c.EvalInterval <= 0 {
		c.EvalInterval = 15 * time.Second
	}
	if c.DetectBudget <= 0 {
		c.DetectBudget = 5 * time.Minute
	}
}

// SLOSmokeConfig is the seconds-long CI configuration shared by
// `benchgrid -app slo -smoke`, the perf scenario series, and
// `gridtop -smoke`. It mirrors the B2 chaos smoke setting: seeds 0 and 1
// shift to 3, where the high-fault row exercises the full orphan
// pipeline (a crash strands committed subjobs and the reaper drains
// them), so the orphan rule has something real to page about.
func SLOSmokeConfig(seed int64) SLOConfig {
	if seed == 0 || seed == 1 {
		seed = 3
	}
	return SLOConfig{Chaos: ChaosConfig{
		Machines:     4,
		MachineSize:  16,
		Sites:        2,
		ProcsPerSite: 4,
		Spares:       1,
		Workers:      2,
		WorkTime:     45 * time.Second,
		Requests:     6,
		Tenants:      2,
		RatePerMin:   4,
		FaultRates:   []float64{0, 0.75},
		Window:       2 * time.Minute,
		MaxTime:      4 * time.Minute,
		SubmitBudget: 6 * time.Minute,
		Seed:         seed,
	}}
}

// SLORow is one fault-rate setting's outcome. Alerts/Resolves count the
// engine's edge transitions; Dumps counts every black box the flight
// recorder froze (SLO fires plus watchdog, orphan, and crash triggers);
// DetectionLag is first-alert-fire minus first-fault-onset.
type SLORow struct {
	FaultRate    float64       `json:"fault_rate"`
	Faults       int           `json:"faults"`
	FirstFault   time.Duration `json:"first_fault,omitempty"`
	Requests     int           `json:"requests"`
	Completed    int           `json:"completed"`
	Failed       int           `json:"failed"`
	Alerts       int           `json:"alerts"`
	Resolves     int           `json:"resolves"`
	FirstRule    string        `json:"first_rule,omitempty"`
	Dumps        int           `json:"dumps"`
	SLODumps     int           `json:"slo_dumps"`
	DumpSkipped  int64         `json:"dump_skipped,omitempty"`
	DumpErrors   int           `json:"dump_errors"`
	Detected     bool          `json:"detected"`
	DetectionLag time.Duration `json:"detection_lag,omitempty"`
}

// SLOResult is the B7 study.
type SLOResult struct {
	Machines     int           `json:"machines"`
	Workers      int           `json:"workers"`
	EvalInterval time.Duration `json:"eval_interval"`
	DetectBudget time.Duration `json:"detect_budget"`
	Rows         []SLORow      `json:"rows"`
}

// SLORules is the study's objective set, scaled to the chaos workload.
// Unlike the DST rules (which must stay silent across arbitrary random
// scenarios), these watch user-facing symptoms — request latency and
// queue depth — whose healthy envelope is known because the workload is
// fixed.
func SLORules(cfg ChaosConfig) []slo.Rule {
	return []slo.Rule{
		{
			// Burn rate on the broker's served-request latency: healthy
			// requests finish well under half the submit budget; burning
			// more than a quarter of the window's requests past it means
			// clients are feeling the fault.
			Name: "broker-latency-burn", Kind: slo.KindBurnRate, Severity: "page",
			Metric:    "broker.request.latency@broker0",
			Threshold: cfg.SubmitBudget / 2, Budget: 0.25,
			Window: cfg.SubmitBudget, MinCount: 3,
		},
		{
			// Sustained deep queue: the broker's admission bound is 16; a
			// backlog parked at 12+ for a minute and a half means workers
			// are wedged, not merely busy.
			Name: "broker-queue-depth", Kind: slo.KindGaugeLevel, Severity: "warn",
			Metric: "broker.queue_depth@broker0",
			Op:     ">=", Value: 12, HoldFor: 90 * time.Second,
		},
		{
			// Any message the transport destroyed (buffer overflow,
			// unreachable peer, send-queue full) within the window.
			Name: "transport-drop-storm", Kind: slo.KindRateDelta, Severity: "page",
			Metric: "transport.drops", Window: 2 * time.Minute, Value: 1,
		},
		{
			// An orphaned allocation is an SLO breach in itself: processors
			// are held by a job whose co-allocation already failed.
			Name: "broker-orphans", Kind: slo.KindGaugeLevel, Severity: "page",
			Metric: "broker.orphans@broker0",
			Op:     ">=", Value: 1,
		},
	}
}

// SLORun executes one row: the B2 chaos workload with the engine armed
// before the first arrival. The returned grid and engine carry the run's
// full observability state (alert log, dumps, gauges, histograms) for
// callers that render it — gridtop replays exactly this run.
func SLORun(cfg SLOConfig, faultRate float64) (SLORow, *grid.Grid, *slo.Engine) {
	cfg.fill()
	var eng *slo.Engine
	crow, g := chaosRun(cfg.Chaos, faultRate, func(g *grid.Grid) {
		eng = slo.New(slo.Deps{
			Sim: g.Sim, Tracer: g.Tracer, Counters: g.Counters,
			Gauges: g.Gauges, Samples: g.Samples, Flight: g.Flight,
		}, SLORules(cfg.Chaos), slo.Options{EvalInterval: cfg.EvalInterval})
		eng.Start()
	})
	eng.Stop()

	row := SLORow{
		FaultRate:  crow.FaultRate,
		Faults:     crow.Faults,
		FirstFault: crow.FirstFault,
		Requests:   crow.Requests,
		Completed:  crow.Completed,
		Failed:     crow.Failed,
	}
	alerts := eng.Alerts()
	for _, a := range alerts {
		switch a.State {
		case "fire":
			row.Alerts++
			if !row.Detected {
				row.Detected = true
				row.FirstRule = a.Rule
				row.DetectionLag = a.At - row.FirstFault
			}
		case "resolve":
			row.Resolves++
		}
	}
	dumps := g.Flight.Dumps()
	row.Dumps = len(dumps)
	row.DumpSkipped = g.Flight.Skipped()
	for _, d := range dumps {
		if d.Kind() == "slo" {
			row.SLODumps++
		}
		if err := flightrec.Validate(d.Events); err != nil {
			row.DumpErrors++
		}
	}
	return row, g, eng
}

// SLOStudy sweeps the fault rate.
func SLOStudy(cfg SLOConfig) SLOResult {
	cfg.fill()
	res := SLOResult{
		Machines:     cfg.Chaos.Machines,
		Workers:      cfg.Chaos.Workers,
		EvalInterval: cfg.EvalInterval,
		DetectBudget: cfg.DetectBudget,
	}
	for _, rate := range cfg.Chaos.FaultRates {
		row, _, _ := SLORun(cfg, rate)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Check is the study's acceptance gate: fault-free rows are completely
// silent (no alerts, no dumps), every faulted row detects its plan
// within the budget, each fire froze exactly one black box, and every
// retained dump validates. Returns one message per violation.
func (r SLOResult) Check() []string {
	var bad []string
	for _, row := range r.Rows {
		id := fmt.Sprintf("rate %.2f", row.FaultRate)
		if row.DumpErrors > 0 {
			bad = append(bad, fmt.Sprintf("%s: %d flight dumps failed validation", id, row.DumpErrors))
		}
		if row.DumpSkipped == 0 && row.SLODumps != row.Alerts {
			bad = append(bad, fmt.Sprintf("%s: %d alert fires but %d slo dumps", id, row.Alerts, row.SLODumps))
		}
		if row.Faults == 0 {
			if row.Alerts > 0 {
				bad = append(bad, fmt.Sprintf("%s: fault-free row fired %d alerts (first: %s)",
					id, row.Alerts, row.FirstRule))
			}
			if row.Dumps > 0 || row.DumpSkipped > 0 {
				bad = append(bad, fmt.Sprintf("%s: fault-free row froze %d black boxes",
					id, row.Dumps+int(row.DumpSkipped)))
			}
			continue
		}
		if !row.Detected {
			bad = append(bad, fmt.Sprintf("%s: %d faults injected but no alert fired", id, row.Faults))
			continue
		}
		if row.DetectionLag < 0 {
			bad = append(bad, fmt.Sprintf("%s: alert %s fired %v before the first fault",
				id, row.FirstRule, -row.DetectionLag))
		}
		if row.DetectionLag > r.DetectBudget {
			bad = append(bad, fmt.Sprintf("%s: detection lag %v exceeds budget %v",
				id, row.DetectionLag, r.DetectBudget))
		}
	}
	return bad
}

// Table renders the study.
func (r SLOResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("B7: SLO detection latency, %d machines, %d workers, eval every %v, budget %v",
			r.Machines, r.Workers, r.EvalInterval, r.DetectBudget),
		"fault rate", "faults", "reqs", "ok", "fail", "alerts",
		"resolved", "first rule", "dumps", "lag")
	for _, row := range r.Rows {
		lag := "-"
		if row.Detected {
			lag = row.DetectionLag.String()
		}
		first := row.FirstRule
		if first == "" {
			first = "-"
		}
		t.Add(fmt.Sprintf("%.2f", row.FaultRate), row.Faults, row.Requests,
			row.Completed, row.Failed, row.Alerts, row.Resolves, first,
			fmt.Sprintf("%d/%d", row.SLODumps, row.Dumps), lag)
	}
	return t
}
