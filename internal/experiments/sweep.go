package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/metrics"
	"cogrid/internal/transport"
)

// --- S1: over-provisioning and forecast quality (Section 2.2) ---

// OverProvisionRow aggregates one (factor, sigma) setting.
type OverProvisionRow struct {
	Factor      float64 // candidates requested / subjobs needed
	Sigma       float64 // forecast noise (0 = oracle)
	MeanCommit  time.Duration
	P95Commit   time.Duration
	SuccessRate float64
	Trials      int
}

// OverProvisionResult is the S1 sweep.
type OverProvisionResult struct {
	Needed   int
	PoolSize int
	Rows     []OverProvisionRow
}

// OverProvisionSweep quantifies the Section 2.2 strategies: a co-allocator
// that consults queue-wait forecasts can pick lightly loaded machines, and
// one that requests more resources than it needs and commits to the first
// K that become available tolerates both load and forecast error.
//
// Every machine runs a batch queue occupied by a background job of random
// remaining duration. The agent queries the directory, selects candidates
// by published forecast (perturbed by sigma), over-provisions by the given
// factor, and commits to the first Needed subjobs that reach the barrier.
func OverProvisionSweep(needed, poolSize int, factors, sigmas []float64, trials int, seed int64) OverProvisionResult {
	res := OverProvisionResult{Needed: needed, PoolSize: poolSize}
	for _, factor := range factors {
		for _, sigma := range sigmas {
			row := OverProvisionRow{Factor: factor, Sigma: sigma, Trials: trials}
			var commits []float64
			for trial := 0; trial < trials; trial++ {
				d, ok := overProvisionTrial(needed, poolSize, factor, sigma,
					seed+int64(trial)*7919+int64(factor*100)+int64(sigma*10))
				if ok {
					commits = append(commits, d.Seconds())
				}
			}
			row.SuccessRate = float64(len(commits)) / float64(trials)
			if len(commits) > 0 {
				s := metrics.Summarize(commits)
				row.MeanCommit = time.Duration(s.Mean * float64(time.Second))
				row.P95Commit = time.Duration(s.P95 * float64(time.Second))
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

func overProvisionTrial(needed, poolSize int, factor, sigma float64, seed int64) (time.Duration, bool) {
	const machineSize = 64
	g := grid.New(grid.Options{Seed: seed})
	rng := rand.New(rand.NewSource(seed))

	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		panic(err)
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}

	names := make([]string, poolSize)
	for i := range names {
		names[i] = fmt.Sprintf("bq%02d", i)
		m := g.AddMachine(names[i], machineSize, lrm.Batch)
		m.RegisterExecutable("bg", func(p *lrm.Proc) error {
			return p.Work(24*time.Hour, time.Minute) // killed by its limit
		})
	}
	g.RegisterEverywhere("app", barrierApp(0))

	ctrl := newController(g)
	var commitAt time.Duration
	ok := false
	err := g.Sim.Run("agent", func() {
		// Occupy each machine with a background job whose wall limit (its
		// actual remaining time) is uniform in [0, 2h).
		for _, name := range names {
			limit := time.Duration(rng.Float64() * float64(2*time.Hour))
			if limit < time.Minute {
				limit = time.Minute
			}
			if _, err := g.Machine(name).Submit(lrm.JobSpec{
				Executable: "bg", Count: machineSize, TimeLimit: limit,
			}); err != nil {
				panic(err)
			}
		}
		// Publish every machine's record with a forecast for full-machine
		// jobs, then query the directory as the agent would.
		for _, name := range names {
			client, err := mds.Dial(g.Machine(name).Host(), dir)
			if err != nil {
				panic(err)
			}
			client.Register(mds.RecordFor(g.Machine(name), g.Contact(name), machineSize))
			client.Close()
		}
		dirClient, err := mds.Dial(g.Workstation, dir)
		if err != nil {
			panic(err)
		}
		records, err := dirClient.Query(mds.Filter{MinProcessors: machineSize})
		dirClient.Close()
		if err != nil {
			panic(err)
		}

		nCandidates := int(factor*float64(needed) + 0.5)
		if nCandidates > len(records) {
			nCandidates = len(records)
		}
		chosen := agent.SelectByForecast(records, machineSize, nCandidates, sigma, g.Sim.RandNorm)
		var req core.Request
		for i, rec := range chosen {
			contact, err := transport.ParseAddr(rec.Contact)
			if err != nil {
				panic(err)
			}
			req.Subjobs = append(req.Subjobs, core.SubjobSpec{
				Label: fmt.Sprintf("w%d", i), Contact: contact, Count: machineSize,
				Executable: "app", StartupTimeout: 5 * time.Hour,
			})
		}
		start := g.Sim.Now()
		out, err := agent.OverProvision(ctrl, req, agent.OverProvisionOptions{
			Needed:        needed,
			CommitTimeout: 5 * time.Hour,
		})
		if err != nil {
			return
		}
		commitAt = g.Sim.Now() - start
		ok = true
		out.Job.Kill()
	})
	if err != nil {
		panic(err)
	}
	return commitAt, ok
}

// Table renders the sweep.
func (r OverProvisionResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("S1: over-provisioning and forecast quality (%d of %d machines needed)", r.Needed, r.PoolSize),
		"factor", "sigma", "mean time-to-commit", "p95", "success")
	for _, row := range r.Rows {
		t.Add(row.Factor, row.Sigma, row.MeanCommit, row.P95Commit,
			fmt.Sprintf("%.0f%%", row.SuccessRate*100))
	}
	return t
}
