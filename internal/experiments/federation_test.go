package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// fedSmokeConfig is the seconds-fast B6 setting CI runs: the stock grid
// with just the one- and two-replica rows.
func fedSmokeConfig() FederationLoadConfig {
	return FederationLoadConfig{ReplicaCounts: []int{1, 2}}
}

// TestFederationScalingBeatsSingleReplica locks the study's acceptance
// criterion: two replicas sustain higher admitted throughput than one at
// no worse tail latency — even though the two-replica row also absorbs a
// replica crash and restart mid-run, which the single-replica row is
// spared.
func TestFederationScalingBeatsSingleReplica(t *testing.T) {
	res := FederationLoadStudy(fedSmokeConfig())
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(res.Rows))
	}
	one, two := res.Rows[0], res.Rows[1]
	if one.Replicas != 1 || two.Replicas != 2 {
		t.Fatalf("row order wrong: %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if row.Completed < row.Requests*4/5 {
			t.Errorf("%d replicas: only %d/%d completed", row.Replicas, row.Completed, row.Requests)
		}
	}
	if two.ThroughputPerMin <= one.ThroughputPerMin {
		t.Errorf("2 replicas did not beat 1: %.3f/min vs %.3f/min",
			two.ThroughputPerMin, one.ThroughputPerMin)
	}
	if two.P99 > one.P99 {
		t.Errorf("2 replicas worsened p99: %v vs %v", two.P99, one.P99)
	}
	// The two-replica row must have earned its numbers under failure:
	// one crash, with the dead replica's journal entries handed off.
	if two.Crashes != 1 {
		t.Errorf("expected exactly one crash in the 2-replica row, got %d", two.Crashes)
	}
	if two.Handoffs == 0 {
		t.Error("replica crash produced no journal hand-offs")
	}
	if two.Elections == 0 {
		t.Error("leader crash triggered no election")
	}
	if one.Crashes != 0 || one.Failovers != 0 {
		t.Errorf("single-replica row saw crashes/failovers: %+v", one)
	}
}

// TestFederationLoadDeterminism: the same config yields an identical row
// and a byte-identical Prometheus exposition — elections, hand-offs,
// failovers and all. This is the observatory's determinism contract
// extended to the federation series.
func TestFederationLoadDeterminism(t *testing.T) {
	cfg := fedSmokeConfig()
	rowA, gA := FederationLoadRun(cfg, 2)
	rowB, gB := FederationLoadRun(cfg, 2)
	if !reflect.DeepEqual(rowA, rowB) {
		t.Errorf("rows differ:\n%+v\n%+v", rowA, rowB)
	}
	var a, b bytes.Buffer
	if err := gA.WriteMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := gB.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Prometheus expositions differ between identical runs")
	}
	// The exposition must actually carry the federation series: the
	// per-replica queue depth gauge, the liveness gauge, and the
	// election / hand-off / forward histograms.
	text := a.String()
	for _, want := range []string{
		"cogrid_fed_live_replicas", "cogrid_fed_election_latency",
		"cogrid_fed_handoff_time", "cogrid_broker_queue_depth",
	} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %q:\n%.2000s", want, text)
		}
	}
}
