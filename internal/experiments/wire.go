package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"cogrid/internal/metrics"
	"cogrid/internal/rpc"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// --- B3: wire codec and batching throughput ---

// WireConfig parameterizes the wire throughput study. Zero values select
// the stock setting: 4000-message virtual rows, 64-byte bodies, and a
// 32-message / 500µs batching policy.
type WireConfig struct {
	// Messages is the per-row message count of the deterministic
	// virtual-time run (wire bytes, drops, batch sizes).
	Messages int
	// Body is the filler payload length in bytes; the envelope fields
	// around it are what the codecs differ on.
	Body int
	// BenchTime is the testing -benchtime for the wall-clock rows
	// ("20ms", "200x"); empty keeps the testing default of 1s.
	BenchTime string
	// Batch is the coalescing policy of the batched rows.
	Batch transport.BatchOptions
	Seed  int64
}

func (c *WireConfig) fill() {
	if c.Messages <= 0 {
		c.Messages = 4000
	}
	if c.Body <= 0 {
		c.Body = 64
	}
	if c.Batch.Delay <= 0 {
		c.Batch = transport.BatchOptions{MaxMsgs: 32, MaxBytes: 64 << 10, Delay: 500 * time.Microsecond}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// WireRow is one codec/batching setting's outcome: wall-clock messages/sec
// and allocations from a testing.Benchmark run, plus the deterministic
// virtual-time wire statistics of a fixed-size streaming run.
type WireRow struct {
	Codec       string  `json:"codec"` // "json" or "binary"
	Batched     bool    `json:"batched"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Virtual-time statistics (deterministic for a fixed config).
	Messages    int     `json:"messages"`
	Delivered   int64   `json:"delivered"`
	Dropped     int64   `json:"dropped"`
	WireBytes   int64   `json:"wire_bytes"`
	BytesPerMsg float64 `json:"bytes_per_msg"`
	BatchP50    float64 `json:"batch_p50,omitempty"` // median messages per batch
	VirtualMs   float64 `json:"virtual_ms"`
}

// WireResult is the B3 study.
type WireResult struct {
	Body  int       `json:"body_bytes"`
	Batch string    `json:"batch_policy"`
	Rows  []WireRow `json:"rows"`
}

// wireSyncEvery is the flow-control window: the streaming client issues a
// synchronous call after this many notifications, bounding the number in
// flight well under the delivery queue so nothing is dropped.
const wireSyncEvery = 256

// wireCodecs enumerates the study's rows in fixed order.
var wireCodecs = []struct {
	name  string
	codec rpc.Codec
}{
	{"json", rpc.JSON},
	{"binary", rpc.Binary},
}

// WireStudy measures envelope codec and batching cost head to head: for
// each codec × batching setting it streams notifications from a client to
// a sink server — wall-clock throughput and allocations via
// testing.Benchmark, wire bytes and batch sizes via a deterministic
// virtual-time run. The acceptance bar (enforced by benchgrid -app wire)
// is the binary codec beating JSON on both messages/sec and allocs/op.
func WireStudy(cfg WireConfig) WireResult {
	cfg.fill()
	if cfg.BenchTime != "" {
		testing.Init()
		// Best effort: the flag may be locked by an enclosing test binary.
		_ = setBenchTime(cfg.BenchTime)
	}
	res := WireResult{
		Body:  cfg.Body,
		Batch: fmt.Sprintf("%d msgs / %d B / %v", cfg.Batch.MaxMsgs, cfg.Batch.MaxBytes, cfg.Batch.Delay),
	}
	for _, batched := range []bool{false, true} {
		for _, c := range wireCodecs {
			batch := transport.BatchOptions{}
			if batched {
				batch = cfg.Batch
			}
			row := WireNetRun(c.codec, batch, cfg.Messages, cfg.Body)
			r := testing.Benchmark(wireBenchFunc(c.codec, batch, cfg.Body))
			if r.N > 0 && r.T > 0 {
				row.MsgsPerSec = float64(r.N) / r.T.Seconds()
				row.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
				row.AllocsPerOp = float64(r.AllocsPerOp())
				row.BytesPerOp = float64(r.AllocedBytesPerOp())
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// WireNetRun is the deterministic half of a B3 row: it streams a fixed
// message count through the simulated wire and reads back delivery, drop,
// size, and batch statistics. Every value is a virtual-time quantity, so
// the row is byte-stable run to run.
func WireNetRun(codec rpc.Codec, batch transport.BatchOptions, messages, bodyLen int) WireRow {
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	ctrs := trace.NewCounters()
	net.SetCounters(ctrs)
	hists := metrics.NewHistogramSet()
	net.SetHists(hists)
	if batch.Delay > 0 {
		net.SetBatching(batch)
	}
	row := WireRow{Batched: batch.Delay > 0, Messages: messages}
	for _, c := range wireCodecs {
		if c.codec == codec {
			row.Codec = c.name
		}
	}
	if err := wireStream(sim, net, codec, messages, bodyLen); err != nil {
		// The row is still emitted; zero deliveries flag the failure.
		return row
	}
	row.Delivered = ctrs.Get(trace.Key("transport", "msgs", "recv", "sink"))
	row.Dropped = ctrs.Get(trace.Key("transport", "msgs", "drop", "client"))
	row.WireBytes = net.Bytes()
	if n := net.Messages(); n > 0 {
		row.BytesPerMsg = float64(row.WireBytes) / float64(n)
	}
	if h := hists.H("transport.batch.msgs"); h.Count() > 0 {
		row.BatchP50 = float64(h.Quantile(0.50))
	}
	row.VirtualMs = float64(sim.Now()) / float64(time.Millisecond)
	return row
}

// wireStream drives one client→sink notification stream to completion.
func wireStream(sim *vtime.Sim, net *transport.Network, codec rpc.Codec, messages, bodyLen int) error {
	client, sink := net.AddHost("client"), net.AddHost("sink")
	l, err := sink.Listen("sink")
	if err != nil {
		return err
	}
	rpc.ServeCodec(sim, l, rpc.HandlerFuncs{
		Call: func(sc *rpc.ServerConn, method string, body json.RawMessage) (any, error) {
			return nil, nil
		},
	}, nil, codec)
	body := json.RawMessage(`"` + strings.Repeat("x", bodyLen) + `"`)
	var streamErr error
	err = sim.Run("driver", func() {
		conn, err := client.Dial(transport.Addr{Host: "sink", Service: "sink"})
		if err != nil {
			streamErr = err
			return
		}
		c := rpc.NewClientCodec(sim, conn, codec)
		defer c.Close()
		for i := 0; i < messages; i++ {
			if err := c.Notify("job-state", body); err != nil {
				streamErr = err
				return
			}
			// Flow control: a periodic synchronous call drains the pipe so
			// the delivery queue never saturates.
			if i%wireSyncEvery == wireSyncEvery-1 {
				if err := c.Call("checkin", nil, nil, time.Minute); err != nil {
					streamErr = err
					return
				}
			}
		}
		if err := c.Call("checkin", nil, nil, time.Minute); err != nil {
			streamErr = err
		}
	})
	if err == nil {
		err = streamErr
	}
	return err
}

// wireBenchFunc builds the wall-clock half of a B3 row: a testing.B
// function streaming b.N notifications through a fresh simulated network.
func wireBenchFunc(codec rpc.Codec, batch transport.BatchOptions, bodyLen int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		sim := vtime.New()
		net := transport.New(sim, transport.UniformLatency(time.Millisecond))
		if batch.Delay > 0 {
			net.SetBatching(batch)
		}
		b.ResetTimer()
		if err := wireStream(sim, net, codec, b.N, bodyLen); err != nil {
			b.Fatal(err)
		}
	}
}

// setBenchTime adjusts the testing benchtime flag registered by
// testing.Init.
func setBenchTime(v string) error {
	return flag.Set("test.benchtime", v)
}

// WireTable renders the study as text.
func (r WireResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "body %dB, batch policy %s\n", r.Body, r.Batch)
	fmt.Fprintf(&sb, "%-8s %-8s %12s %12s %10s %12s %10s %8s\n",
		"codec", "batched", "msgs/sec", "ns/op", "allocs/op", "bytes/msg", "batch p50", "dropped")
	for _, row := range r.Rows {
		batchP50 := "-"
		if row.BatchP50 > 0 {
			batchP50 = fmt.Sprintf("%.0f", row.BatchP50)
		}
		fmt.Fprintf(&sb, "%-8s %-8t %12.0f %12.0f %10.1f %12.1f %10s %8d\n",
			row.Codec, row.Batched, row.MsgsPerSec, row.NsPerOp, row.AllocsPerOp,
			row.BytesPerMsg, batchP50, row.Dropped)
	}
	return sb.String()
}
