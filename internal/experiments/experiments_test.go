package experiments

import (
	"strings"
	"testing"
	"time"
)

// These tests assert the paper's qualitative claims — the shapes of the
// figures — not absolute numbers.

func TestFigure2LatencyFlatInProcessCount(t *testing.T) {
	res := Figure2([]int{1, 16, 32, 64})
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	base := res.Rows[0].Latency
	if base < 1500*time.Millisecond || base > 2500*time.Millisecond {
		t.Errorf("single-process latency = %v, want ~2s", base)
	}
	for _, row := range res.Rows {
		if row.Latency != base {
			t.Errorf("latency for %d procs = %v, differs from %v (paper: flat)", row.Processes, row.Latency, base)
		}
	}
}

func TestFigure3BreakdownMatchesPaper(t *testing.T) {
	res := Figure3()
	ig := res.Phases["initgroups"]
	auth := res.Phases["authentication"]
	misc := res.Phases["misc"]
	fork := res.Phases["fork"]
	if ig < 650*time.Millisecond || ig > 750*time.Millisecond {
		t.Errorf("initgroups = %v, want ~0.7s", ig)
	}
	if auth < 450*time.Millisecond || auth > 550*time.Millisecond {
		t.Errorf("authentication = %v, want ~0.5s", auth)
	}
	if misc != 10*time.Millisecond {
		t.Errorf("misc = %v, want 0.01s", misc)
	}
	if fork != time.Millisecond {
		t.Errorf("fork = %v, want 0.001s", fork)
	}
	// Ordering claim: initgroups is the largest contributor, then auth,
	// with everything else an order of magnitude smaller.
	if !(ig > auth && auth > 10*misc && misc > fork) {
		t.Errorf("breakdown ordering violated: %v", res.Phases)
	}
}

func TestFigure4LinearInSubjobs(t *testing.T) {
	res := Figure4(64, []int{1, 2, 4, 8, 16, 25})
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Monotonically increasing in subjob count.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Measured <= res.Rows[i-1].Measured {
			t.Errorf("not increasing: %d subjobs %v vs %d subjobs %v",
				res.Rows[i].Subjobs, res.Rows[i].Measured,
				res.Rows[i-1].Subjobs, res.Rows[i-1].Measured)
		}
	}
	// Linear: the fitted model tracks every point within 10%.
	for _, row := range res.Rows {
		diff := row.Measured - row.Synthetic
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.1*float64(row.Measured) {
			t.Errorf("%d subjobs: measured %v vs model %v (>10%% off linear)",
				row.Subjobs, row.Measured, row.Synthetic)
		}
	}
	// Pipelining: 25 subjobs cost well below zero-concurrency (paper: 44% less).
	if res.PipelineSaving < 0.20 || res.PipelineSaving > 0.60 {
		t.Errorf("pipeline saving = %.0f%%, want 20-60%% (paper: 44%%)", res.PipelineSaving*100)
	}
	// Average barrier wait approximately half the total.
	if res.MeanWaitRatio < 0.35 || res.MeanWaitRatio > 0.65 {
		t.Errorf("mean wait ratio = %.2f, want ~0.5", res.MeanWaitRatio)
	}
	// The shortest wait is always (nearly) zero.
	if res.MinWaitMax > 50*time.Millisecond {
		t.Errorf("largest minimum barrier wait = %v, want ~0", res.MinWaitMax)
	}
}

func TestFigure4FlatInProcessCount(t *testing.T) {
	rows := Figure4Flat(4, []int{8, 16, 32, 64})
	base := rows[0].Measured
	for _, row := range rows {
		if row.Measured != base {
			t.Errorf("4 subjobs with %d procs = %v, differs from %v (paper: independent of processes)",
				row.Processes, row.Measured, base)
		}
	}
}

func TestFigure5TimelineShowsPipelinedPhases(t *testing.T) {
	out := Figure5(4, 16)
	for _, phase := range []string{"authentication", "initgroups", "fork", "submit", "startup-wait", "barrier"} {
		if !strings.Contains(out, phase) {
			t.Errorf("timeline lacks phase %q:\n%s", phase, out)
		}
	}
	for _, sj := range []string{"sj0", "sj1", "sj2", "sj3"} {
		if !strings.Contains(out, sj) {
			t.Errorf("timeline lacks subjob %q", sj)
		}
	}
}

func TestAtomicVsInteractive(t *testing.T) {
	res := AtomicVsInteractive(3, 2*time.Minute, []float64{0, 0.35}, 3, 11)
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	noFail, withFail := res.Rows[0], res.Rows[1]
	if noFail.AtomicRestarts != 0 || noFail.Substitutions != 0 {
		t.Errorf("p=0 row has restarts/substitutions: %+v", noFail)
	}
	// Without failures the strategies cost about the same.
	ratio := float64(noFail.AtomicTime) / float64(noFail.InteractiveTime)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("p=0 atomic/interactive = %.2f, want ~1", ratio)
	}
	// With failures, atomic restarts make it strictly slower — the
	// paper's core claim.
	if withFail.AtomicRestarts == 0 {
		t.Skip("no failures drawn at p=0.35 in this seed; increase trials")
	}
	if withFail.AtomicTime <= withFail.InteractiveTime {
		t.Errorf("atomic %v not slower than interactive %v despite %0.1f restarts",
			withFail.AtomicTime, withFail.InteractiveTime, withFail.AtomicRestarts)
	}
}

func TestBigRunConfiguresAroundFailures(t *testing.T) {
	res := BigRun(5)
	if res.RequestedPE != 1386 {
		t.Fatalf("requested PE = %d, want 1386", res.RequestedPE)
	}
	if res.StartTime == 0 {
		t.Fatalf("big run failed to start: %v", res.Narrative)
	}
	// Three induced failures, two spares: two substitutions, one drop.
	if res.Substitutions != 2 {
		t.Errorf("substitutions = %d, want 2", res.Substitutions)
	}
	if res.Deleted != 1 {
		t.Errorf("deleted = %d, want 1", res.Deleted)
	}
	if res.Subjobs != 12 {
		t.Errorf("committed subjobs = %d, want 12", res.Subjobs)
	}
	if res.CommittedPE < 1386-256 || res.CommittedPE >= 1386 {
		t.Errorf("committed PE = %d", res.CommittedPE)
	}
	if len(res.Narrative) < 3 {
		t.Errorf("narrative too short: %v", res.Narrative)
	}
}

func TestOverProvisionSweep(t *testing.T) {
	res := OverProvisionSweep(2, 6, []float64{1, 2}, []float64{0}, 3, 21)
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	exact, over := res.Rows[0], res.Rows[1]
	if exact.SuccessRate < 1 || over.SuccessRate < 1 {
		t.Errorf("success rates = %v / %v, want 1", exact.SuccessRate, over.SuccessRate)
	}
	// Requesting twice as many candidates and committing to the first 2
	// must not be slower than committing to exactly 2 chosen by forecast.
	if over.MeanCommit > exact.MeanCommit {
		t.Errorf("over-provisioned commit %v slower than exact %v", over.MeanCommit, exact.MeanCommit)
	}
}

func TestForecastQualityMatters(t *testing.T) {
	res := OverProvisionSweep(2, 8, []float64{1}, []float64{0, 8}, 4, 31)
	oracle, blind := res.Rows[0], res.Rows[1]
	if oracle.MeanCommit > blind.MeanCommit {
		t.Errorf("oracle forecasts (%v) slower than blind selection (%v)",
			oracle.MeanCommit, blind.MeanCommit)
	}
}

func TestStalenessSweep(t *testing.T) {
	res := StalenessSweep(2, 8, []time.Duration{0, 2 * time.Hour}, 5, 17)
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	fresh, stale := res.Rows[0], res.Rows[1]
	if fresh.MeanCommit <= 0 || stale.MeanCommit <= 0 {
		t.Fatalf("degenerate commits: %+v", res.Rows)
	}
	// Fresh information must not be worse than two-hour-old information.
	if fresh.MeanCommit > stale.MeanCommit {
		t.Errorf("fresh info (%v) worse than stale info (%v)", fresh.MeanCommit, stale.MeanCommit)
	}
}

func TestSubmissionAblation(t *testing.T) {
	rows := SubmissionAblation(64, []int{1, 8})
	if rows[0].Sequential != rows[0].Parallel {
		t.Errorf("single subjob differs: %v vs %v", rows[0].Sequential, rows[0].Parallel)
	}
	if rows[1].Parallel != rows[0].Parallel {
		t.Errorf("parallel submission not flat: %v vs %v", rows[1].Parallel, rows[0].Parallel)
	}
	if rows[1].Speedup < 3 {
		t.Errorf("speedup at 8 subjobs = %.2f, want > 3", rows[1].Speedup)
	}
}

func TestBestEffortVsReservationCrossover(t *testing.T) {
	res := BestEffortVsReservation(3, []float64{0.3, 0.85}, 3, 9)
	light, heavy := res.Rows[0], res.Rows[1]
	if heavy.BestEffort <= light.BestEffort {
		t.Errorf("best-effort at rho 0.85 (%v) not above rho 0.3 (%v)",
			heavy.BestEffort, light.BestEffort)
	}
	// The reserved start is load-independent.
	if light.Reserved != heavy.Reserved {
		t.Errorf("reserved start varies with load: %v vs %v", light.Reserved, heavy.Reserved)
	}
	// At heavy load the reservation must win.
	if heavy.BestEffort <= heavy.Reserved {
		t.Errorf("reservation did not win at rho 0.85: best-effort %v vs reserved %v",
			heavy.BestEffort, heavy.Reserved)
	}
}

func TestWideAreaBarrierShareStable(t *testing.T) {
	rows := WideAreaStudy(4, 16, []time.Duration{time.Millisecond, 100 * time.Millisecond})
	lan, wan := rows[0], rows[1]
	if wan.Total <= lan.Total {
		t.Errorf("wide-area total %v not above LAN total %v", wan.Total, lan.Total)
	}
	// The barrier's share of the total stays in the same band: latency
	// does not make synchronization the bottleneck.
	if diff := wan.BarrierShare - lan.BarrierShare; diff > 0.15 || diff < -0.15 {
		t.Errorf("barrier share moved from %.2f to %.2f with latency", lan.BarrierShare, wan.BarrierShare)
	}
	if wan.BarrierShare > 0.6 {
		t.Errorf("barrier dominates in the wide area (share %.2f)", wan.BarrierShare)
	}
}

func TestCoReservationStudy(t *testing.T) {
	res := CoReservationStudy(3)
	// sp2 is fully reserved until 2h and sp3 holds 48/64 during
	// [90m,150m): the earliest common hour-long window starts at 2.5h.
	if res.NegotiatedStart != 150*time.Minute {
		t.Errorf("negotiated start = %v, want 2h30m", res.NegotiatedStart)
	}
	if res.WorldSize != 128 {
		t.Errorf("world size = %d, want 128", res.WorldSize)
	}
	if len(res.Releases) != 128 {
		t.Errorf("%d processes released, want 128", len(res.Releases))
	}
	if res.Spread > time.Second {
		t.Errorf("release spread = %v, want simultaneous start", res.Spread)
	}
	for _, at := range res.Releases {
		if at < res.NegotiatedStart {
			t.Errorf("process released at %v, before the window", at)
		}
	}
}
