// Package experiments implements the paper's evaluation: each function
// regenerates one figure, table, or application study on the simulated
// grid, returning both structured results and formatted text. The same
// code backs cmd/benchgrid and the repository's benchmarks; EXPERIMENTS.md
// records paper-versus-measured values.
package experiments

import (
	"fmt"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
)

// barrierApp returns the standard instrumented executable: attach, report
// successful startup, pass the barrier, run for workTime, exit. The
// barrier timeout is generous: experiments with batch queues legitimately
// keep processes waiting for hours.
func barrierApp(workTime time.Duration) lrm.ExecFunc {
	return func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 24*time.Hour); err != nil {
			return nil // aborted: exit before irreversible initialization
		}
		if workTime > 0 {
			return p.Work(workTime, time.Second)
		}
		return nil
	}
}

// newController builds a DUROC controller on the grid's workstation.
func newController(g *grid.Grid) *core.Controller {
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		panic(err) // fresh workstation host: cannot fail
	}
	return ctrl
}

// splitProcs spreads total processes over m subjobs as evenly as possible.
func splitProcs(total, m int) []int {
	out := make([]int, m)
	base, rem := total/m, total%m
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// seconds formats a duration as seconds with millisecond precision.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
