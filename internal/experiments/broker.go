package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"cogrid/internal/broker"
	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/metrics"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// --- B1: broker throughput and latency vs offered load and queue bound ---

// BrokerLoadConfig parameterizes the broker load study. Zero values select
// the stock setting: 6 batch machines of 32 processors serving 2-site,
// 8-processes-per-site requests through a 3-worker broker.
type BrokerLoadConfig struct {
	Machines     int
	MachineSize  int
	Sites        int
	ProcsPerSite int
	Spares       int
	Workers      int
	// WorkTime is how long each committed application holds its
	// processors — the resource that saturates first.
	WorkTime time.Duration
	// Requests is the open-loop request count per row (split across
	// closed-loop clients in closed rows).
	Requests int
	// Tenants spreads open-loop requests round-robin over this many
	// tenant identities.
	Tenants int
	// RatesPerMin are the open-loop offered loads (Poisson arrivals).
	RatesPerMin []float64
	// QueueBounds are the broker admission bounds swept per rate.
	QueueBounds []int
	// ClosedClients are closed-loop client counts (each client resubmits
	// as soon as its previous request finishes); closed rows run at the
	// first queue bound.
	ClosedClients []int
	Seed          int64
}

func (c *BrokerLoadConfig) fill() {
	if c.Machines <= 0 {
		c.Machines = 6
	}
	if c.MachineSize <= 0 {
		c.MachineSize = 32
	}
	if c.Sites <= 0 {
		c.Sites = 2
	}
	if c.ProcsPerSite <= 0 {
		c.ProcsPerSite = 8
	}
	if c.Spares < 0 {
		c.Spares = 0
	} else if c.Spares == 0 {
		c.Spares = 1
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.WorkTime <= 0 {
		c.WorkTime = 2 * time.Minute
	}
	if c.Requests <= 0 {
		c.Requests = 30
	}
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	if len(c.RatesPerMin) == 0 {
		c.RatesPerMin = []float64{2, 6, 12}
	}
	if len(c.QueueBounds) == 0 {
		c.QueueBounds = []int{4, 16}
	}
	if len(c.ClosedClients) == 0 {
		c.ClosedClients = []int{2, 6}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// BrokerLoadRow is one load setting's aggregate outcome. Rejects, Retries,
// CacheHits, and CacheStale are read back from the run's counter registry —
// the same numbers `gridsim -counters` prints.
type BrokerLoadRow struct {
	Mode             string        `json:"mode"` // "open" or "closed"
	OfferedPerMin    float64       `json:"offered_per_min,omitempty"`
	Clients          int           `json:"clients,omitempty"`
	QueueBound       int           `json:"queue_bound"`
	Requests         int           `json:"requests"`
	Completed        int           `json:"completed"`
	Failed           int           `json:"failed"`
	Rejects          int64         `json:"rejects"`
	Retries          int64         `json:"retries"`
	CacheHits        int64         `json:"cache_hits"`
	CacheStale       int64         `json:"cache_stale"`
	ThroughputPerMin float64       `json:"throughput_per_min"`
	P50              time.Duration `json:"p50"`
	P99              time.Duration `json:"p99"`
}

// BrokerLoadResult is the B1 study.
type BrokerLoadResult struct {
	Machines     int             `json:"machines"`
	MachineSize  int             `json:"machine_size"`
	Workers      int             `json:"workers"`
	Sites        int             `json:"sites"`
	ProcsPerSite int             `json:"procs_per_site"`
	Rows         []BrokerLoadRow `json:"rows"`
}

// BrokerLoadStudy measures the broker under offered load: open-loop rows
// sweep Poisson arrival rates against admission queue bounds, closed-loop
// rows measure the sustainable ceiling with clients that resubmit
// immediately. Throughput is committed co-allocations per virtual minute;
// latencies are client-observed end to end (admission waits, queueing,
// retries, and the DUROC barrier all included). When the offered rate
// exceeds what the machines drain, the bounded queue pushes back and the
// rejects column — read from the broker.queue.reject counter — goes
// positive.
func BrokerLoadStudy(cfg BrokerLoadConfig) BrokerLoadResult {
	cfg.fill()
	res := BrokerLoadResult{
		Machines:     cfg.Machines,
		MachineSize:  cfg.MachineSize,
		Workers:      cfg.Workers,
		Sites:        cfg.Sites,
		ProcsPerSite: cfg.ProcsPerSite,
	}
	for _, bound := range cfg.QueueBounds {
		for _, rate := range cfg.RatesPerMin {
			row, _ := BrokerLoadRun(cfg, rate, bound)
			res.Rows = append(res.Rows, row)
		}
	}
	for _, clients := range cfg.ClosedClients {
		row, _ := brokerClosedRun(cfg, clients, cfg.QueueBounds[0])
		res.Rows = append(res.Rows, row)
	}
	return res
}

// brokerTestbed assembles one run: a grid with tracing on, a directory,
// publishing batch machines, the instrumented application, and a broker.
func brokerTestbed(cfg BrokerLoadConfig, queueBound int, seed int64) (*grid.Grid, *broker.Broker) {
	g := grid.New(grid.Options{Seed: seed, Trace: true})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		panic(err) // fresh host: cannot fail
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
	for i := 0; i < cfg.Machines; i++ {
		name := fmt.Sprintf("site%02d", i)
		m := g.AddMachine(name, cfg.MachineSize, lrm.Batch)
		mds.Publish(m, dir, g.Contact(name), 31*time.Second, cfg.ProcsPerSite, cfg.MachineSize)
	}
	g.RegisterEverywhere("app", barrierApp(cfg.WorkTime))
	b, err := broker.New(g.Net.AddHost("broker0"), core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}, broker.Options{
		Directory:       dir,
		QueueBound:      queueBound,
		Workers:         cfg.Workers,
		CacheMaxAge:     45 * time.Second,
		RefreshInterval: 40 * time.Second,
		RetryAfter:      20 * time.Second,
	})
	if err != nil {
		panic(err) // fresh host: cannot fail
	}
	return g, b
}

// BrokerLoadRun executes one open-loop row: Requests Poisson arrivals at
// ratePerMin against a broker with the given admission bound. The returned
// grid carries the run's Tracer and Counters — two runs with the same
// config produce byte-identical exports, which TestBrokerLoadDeterminism
// locks in.
func BrokerLoadRun(cfg BrokerLoadConfig, ratePerMin float64, queueBound int) (BrokerLoadRow, *grid.Grid) {
	cfg.fill()
	seed := cfg.Seed + int64(ratePerMin*1000)*31 + int64(queueBound)*7
	g, b := brokerTestbed(cfg, queueBound, seed)

	// Pre-draw the arrival schedule so the run itself is RNG-free.
	rng := rand.New(rand.NewSource(seed))
	arrivals := make([]time.Duration, cfg.Requests)
	at := 10 * time.Second
	for i := range arrivals {
		at += time.Duration(rng.ExpFloat64() / ratePerMin * float64(time.Minute))
		arrivals[i] = at
	}
	hosts := make([]*transport.Host, cfg.Requests)
	for i := range hosts {
		hosts[i] = g.Net.AddHost(fmt.Sprintf("client%03d", i))
	}

	row := BrokerLoadRow{
		Mode:          "open",
		OfferedPerMin: ratePerMin,
		QueueBound:    queueBound,
		Requests:      cfg.Requests,
	}
	var mu sync.Mutex
	var latencies []float64
	var lastDone time.Duration
	err := g.Sim.Run("driver", func() {
		wg := vtime.NewWaitGroup(g.Sim)
		wg.Add(cfg.Requests)
		for i := range arrivals {
			i := i
			g.Sim.GoDaemon(fmt.Sprintf("client%03d", i), func() {
				defer wg.Done()
				g.Sim.SleepUntil(arrivals[i])
				reply, ok := brokerSubmit(g, hosts[i], b, hosts[i].Name(), broker.Request{
					Tenant:       fmt.Sprintf("tenant%d", i%cfg.Tenants),
					Sites:        cfg.Sites,
					ProcsPerSite: cfg.ProcsPerSite,
					Executable:   "app",
					Spares:       cfg.Spares,
				})
				done := g.Sim.Now()
				mu.Lock()
				if ok && reply.OK() {
					row.Completed++
					latencies = append(latencies, (done - arrivals[i]).Seconds())
					if done > lastDone {
						lastDone = done
					}
				} else {
					row.Failed++
				}
				mu.Unlock()
			})
		}
		wg.Wait()
		// Quiesce: let the committed jobs run out and their final state
		// callbacks land before the sim stops. Ending the run at the very
		// instant the last reply arrives would race shutdown against
		// in-flight callback delivery, making counter totals depend on
		// goroutine interleaving.
		g.Sim.Sleep(cfg.WorkTime + time.Minute)
	})
	if err != nil {
		panic(err)
	}
	finishRow(&row, g, latencies, lastDone-arrivals[0])
	return row, g
}

// brokerClosedRun executes one closed-loop row: clients concurrent
// submitters, each resubmitting the instant its previous request finishes,
// until cfg.Requests have been issued in total.
func brokerClosedRun(cfg BrokerLoadConfig, clients, queueBound int) (BrokerLoadRow, *grid.Grid) {
	cfg.fill()
	seed := cfg.Seed + int64(clients)*101 + int64(queueBound)*7
	g, b := brokerTestbed(cfg, queueBound, seed)

	perClient := cfg.Requests / clients
	if perClient < 1 {
		perClient = 1
	}
	hosts := make([]*transport.Host, clients)
	for i := range hosts {
		hosts[i] = g.Net.AddHost(fmt.Sprintf("client%03d", i))
	}
	row := BrokerLoadRow{
		Mode:       "closed",
		Clients:    clients,
		QueueBound: queueBound,
		Requests:   perClient * clients,
	}
	start := 10 * time.Second
	var mu sync.Mutex
	var latencies []float64
	var lastDone time.Duration
	err := g.Sim.Run("driver", func() {
		wg := vtime.NewWaitGroup(g.Sim)
		wg.Add(clients)
		for i := 0; i < clients; i++ {
			i := i
			g.Sim.GoDaemon(fmt.Sprintf("client%03d", i), func() {
				defer wg.Done()
				// Stagger starts so no two clients share an instant.
				g.Sim.SleepUntil(start + time.Duration(i)*17*time.Millisecond)
				for k := 0; k < perClient; k++ {
					issued := g.Sim.Now()
					reply, ok := brokerSubmit(g, hosts[i], b, fmt.Sprintf("%s/r%d", hosts[i].Name(), k), broker.Request{
						Tenant:       fmt.Sprintf("tenant%d", i),
						Sites:        cfg.Sites,
						ProcsPerSite: cfg.ProcsPerSite,
						Executable:   "app",
						Spares:       cfg.Spares,
					})
					done := g.Sim.Now()
					mu.Lock()
					if ok && reply.OK() {
						row.Completed++
						latencies = append(latencies, (done - issued).Seconds())
						if done > lastDone {
							lastDone = done
						}
					} else {
						row.Failed++
					}
					mu.Unlock()
				}
			})
		}
		wg.Wait()
		// Quiesce as in BrokerLoadRun: drain the last jobs' callbacks so
		// the counter totals are scheduling-independent.
		g.Sim.Sleep(cfg.WorkTime + time.Minute)
	})
	if err != nil {
		panic(err)
	}
	finishRow(&row, g, latencies, lastDone-start)
	return row, g
}

// brokerSubmit performs one submission with reject-retry, reporting
// failures as ok=false rather than aborting the run. id names the causal
// request tree this submission roots: every hop, RPC, broker decision, and
// DUROC 2PC leg it causes parents beneath one root span whose window is
// the client-observed issue-to-reply latency.
func brokerSubmit(g *grid.Grid, host *transport.Host, b *broker.Broker, id string, req broker.Request) (broker.Reply, bool) {
	ctx := trace.NewRequest(id)
	sim := host.Network().Sim()
	start := sim.Now()
	c, err := broker.DialCtx(host, b.Contact(), ctx)
	if err != nil {
		return broker.Reply{}, false
	}
	defer c.Close()
	reply, _, err := c.SubmitWait(req, 0, 50)
	host.Network().Tracer().SpanAtCtx(ctx, "client", "request", host.Name(), req.Tenant, "", start, sim.Now())
	return reply, err == nil
}

// finishRow folds the run's latency sample and counter registry into row.
func finishRow(row *BrokerLoadRow, g *grid.Grid, latencies []float64, makespan time.Duration) {
	s := metrics.Summarize(latencies)
	row.P50 = time.Duration(s.P50 * float64(time.Second))
	row.P99 = time.Duration(s.P99 * float64(time.Second))
	if makespan > 0 {
		row.ThroughputPerMin = float64(row.Completed) / makespan.Minutes()
	}
	row.Rejects = g.Counters.Get(trace.Key("broker", "queue", "reject", "broker0"))
	row.CacheHits = g.Counters.Get(trace.Key("broker", "cache", "hit", "broker0"))
	row.CacheStale = g.Counters.Get(trace.Key("broker", "cache", "stale", "broker0"))
	for _, cv := range g.Counters.Snapshot() {
		if strings.HasPrefix(cv.Name, "broker.retry.") {
			row.Retries += cv.Value
		}
	}
}

// Table renders the study.
func (r BrokerLoadResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("B1: broker load study, %d machines x %d procs, %d workers, %dx%d requests",
			r.Machines, r.MachineSize, r.Workers, r.Sites, r.ProcsPerSite),
		"mode", "offered/min", "clients", "qbound", "reqs", "ok", "fail",
		"rejects", "retries", "cache h/s", "thr/min", "p50", "p99")
	for _, row := range r.Rows {
		offered, clients := "-", "-"
		if row.Mode == "open" {
			offered = fmt.Sprintf("%.1f", row.OfferedPerMin)
		} else {
			clients = fmt.Sprint(row.Clients)
		}
		t.Add(row.Mode, offered, clients, row.QueueBound, row.Requests,
			row.Completed, row.Failed, row.Rejects, row.Retries,
			fmt.Sprintf("%d/%d", row.CacheHits, row.CacheStale),
			row.ThroughputPerMin, row.P50, row.P99)
	}
	return t
}
