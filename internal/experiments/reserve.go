package experiments

import (
	"fmt"
	"sync"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/metrics"
	"cogrid/internal/reservation"
)

// --- R1: co-reservation (Section 5 future work) ---

// CoReservationResult reports one co-reservation negotiation and claim.
type CoReservationResult struct {
	Machines        int
	NegotiatedStart time.Duration
	Releases        []time.Duration // per-process barrier release times
	WorldSize       int
	Spread          time.Duration // max - min release time
}

// CoReservationStudy negotiates a common window across machines whose
// reservation tables conflict, claims it through DUROC, and verifies that
// every process starts together inside the window — the guarantee the
// paper argues co-allocation ultimately requires.
func CoReservationStudy(seed int64) CoReservationResult {
	g := grid.New(grid.Options{Seed: seed})
	names := []string{"sp1", "sp2", "sp3", "sp4"}
	for _, name := range names {
		g.AddMachine(name, 64, lrm.Batch)
	}
	// Pre-existing reservations stagger each machine's availability.
	mustReserve(g, "sp1", 64, 0, 1*time.Hour)
	mustReserve(g, "sp2", 64, 0, 2*time.Hour)
	mustReserve(g, "sp3", 48, 90*time.Minute, time.Hour)
	res := CoReservationResult{Machines: len(names)}

	var mu sync.Mutex
	var releases []time.Duration
	g.RegisterEverywhere("synced", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		mu.Lock()
		releases = append(releases, p.Sim().Now())
		mu.Unlock()
		return p.Work(time.Minute, time.Second)
	})
	ctrl := newController(g)
	err := g.Sim.Run("agent", func() {
		var parts []reservation.Participant
		for _, name := range names {
			parts = append(parts, reservation.Participant{Contact: g.Contact(name), Count: 32})
		}
		cr, err := reservation.CoReserve(g.Workstation, g.ClientConfig(), parts,
			reservation.Options{Duration: time.Hour})
		if err != nil {
			panic(fmt.Sprintf("co-reserve: %v", err))
		}
		res.NegotiatedStart = cr.Start
		req := cr.Request("synced", g.Sim.Now(), 10*time.Minute)
		job, err := ctrl.Submit(req)
		if err != nil {
			panic(err)
		}
		cfg, err := job.Commit(0)
		if err != nil {
			panic(fmt.Sprintf("commit: %v", err))
		}
		res.WorldSize = cfg.WorldSize
		job.Done().Wait()
		cr.Close()
	})
	if err != nil {
		panic(err)
	}
	mu.Lock()
	res.Releases = append(res.Releases, releases...)
	mu.Unlock()
	if len(res.Releases) > 0 {
		minAt, maxAt := res.Releases[0], res.Releases[0]
		for _, at := range res.Releases {
			if at < minAt {
				minAt = at
			}
			if at > maxAt {
				maxAt = at
			}
		}
		res.Spread = maxAt - minAt
	}
	return res
}

func mustReserve(g *grid.Grid, machine string, count int, start, duration time.Duration) {
	if _, err := g.Machine(machine).Reserve(count, start, duration); err != nil {
		panic(err)
	}
}

// Table renders the study.
func (r CoReservationResult) Table() *metrics.Table {
	t := metrics.NewTable("R1: co-reservation across machines with conflicting reservation tables",
		"metric", "value")
	t.Add("machines", r.Machines)
	t.Add("negotiated common start", r.NegotiatedStart)
	t.Add("world size at release", r.WorldSize)
	t.Add("processes released", len(r.Releases))
	t.Add("release-time spread", r.Spread)
	return t
}
