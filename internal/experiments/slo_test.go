package experiments

import (
	"bytes"
	"testing"
	"time"

	"cogrid/internal/flightrec"
	"cogrid/internal/slo"
)

func sloSmokeConfig() SLOConfig { return SLOSmokeConfig(3) }

// sloArtifacts runs the faulted smoke row and serializes its observable
// outputs: the alert log plus every flight-recorder dump.
func sloArtifacts(t *testing.T) []byte {
	t.Helper()
	row, g, eng := SLORun(sloSmokeConfig(), 0.75)
	if row.Alerts == 0 {
		t.Fatal("faulted smoke row fired no alerts")
	}
	var buf bytes.Buffer
	if err := eng.WriteLog(&buf); err != nil {
		t.Fatalf("write alert log: %v", err)
	}
	for _, d := range g.Flight.Dumps() {
		if err := flightrec.WriteDump(&buf, d); err != nil {
			t.Fatalf("write dump: %v", err)
		}
	}
	return buf.Bytes()
}

// TestSLOArtifactsDeterministic pins the observability plane's own
// determinism: two same-seed chaos runs produce byte-identical alert
// logs and black-box dumps (run under -race in CI).
func TestSLOArtifactsDeterministic(t *testing.T) {
	a := sloArtifacts(t)
	b := sloArtifacts(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed observability artifacts differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestSLOStudySmokeGate runs the full smoke sweep through the acceptance
// gate: fault-free row silent, faulted row detected within budget.
func TestSLOStudySmokeGate(t *testing.T) {
	res := SLOStudy(sloSmokeConfig())
	if bad := res.Check(); len(bad) > 0 {
		t.Fatalf("gate violations: %v", bad)
	}
	if len(res.Rows) != 2 || res.Rows[0].Alerts != 0 || res.Rows[1].Alerts == 0 {
		t.Fatalf("unexpected rows: %+v", res.Rows)
	}
	if res.Rows[1].DetectionLag <= 0 || res.Rows[1].DetectionLag > res.DetectBudget {
		t.Fatalf("detection lag out of range: %v", res.Rows[1].DetectionLag)
	}
}

// TestSLOCheckCatches pins that the gate actually rejects bad rows.
func TestSLOCheckCatches(t *testing.T) {
	res := SLOResult{DetectBudget: time.Minute, Rows: []SLORow{
		{FaultRate: 0, Faults: 0, Alerts: 1, SLODumps: 1, FirstRule: "x"},
		{FaultRate: 1, Faults: 2},
		{FaultRate: 1, Faults: 2, Alerts: 1, SLODumps: 1, Detected: true,
			DetectionLag: 2 * time.Minute},
		{FaultRate: 1, Faults: 2, Alerts: 2, SLODumps: 1, Detected: true,
			DetectionLag: time.Second},
	}}
	bad := res.Check()
	if len(bad) != 4 {
		t.Fatalf("want 4 violations (false positive, undetected, slow, dump mismatch), got %v", bad)
	}
}

// TestSLORulesScale pins that the rule thresholds derive from the
// workload configuration rather than hard-coding the stock numbers.
func TestSLORulesScale(t *testing.T) {
	cfg := ChaosConfig{SubmitBudget: 20 * time.Minute}
	cfg.fill()
	for _, r := range SLORules(cfg) {
		if r.Kind == slo.KindBurnRate && r.Threshold != 10*time.Minute {
			t.Fatalf("burn threshold does not track the submit budget: %v", r.Threshold)
		}
	}
}
