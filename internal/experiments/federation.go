package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"cogrid/internal/broker"
	"cogrid/internal/core"
	"cogrid/internal/federation"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/metrics"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// --- B6: federated broker scaling — throughput and tail latency vs
// --- replica count under Poisson load with a replica crash ---

// FederationLoadConfig parameterizes the federation scaling study. Zero
// values select the stock setting: 8 batch machines of 32 processors
// behind a replica group swept over {1, 2, 4, 8}, each replica a
// single-worker broker so the control plane — not the machines — is the
// bottleneck the extra replicas relieve.
type FederationLoadConfig struct {
	// ReplicaCounts are the peer-group sizes swept, one row each.
	ReplicaCounts []int
	Machines      int
	MachineSize   int
	Sites         int
	ProcsPerSite  int
	Spares        int
	// Workers is the broker worker count per replica; keep it small so a
	// lone replica saturates and the sweep shows the federation scaling.
	Workers int
	// WorkTime is how long each committed application holds its
	// processors.
	WorkTime time.Duration
	// QueueBound is each replica's admission bound.
	QueueBound int
	// Requests is the open-loop request count per row.
	Requests int
	// Tenants spreads requests round-robin over tenant identities.
	Tenants int
	// RatePerMin is the Poisson arrival rate offered to the whole group.
	RatePerMin float64
	// Outage is how long the crashed replica stays down. Rows with two or
	// more replicas crash the initial leader a third of the way into the
	// arrival schedule; the single-replica row runs crash-free (killing
	// the only broker would measure the outage, not the scaling).
	Outage time.Duration
	Seed   int64
}

func (c *FederationLoadConfig) fill() {
	if len(c.ReplicaCounts) == 0 {
		c.ReplicaCounts = []int{1, 2, 4, 8}
	}
	if c.Machines <= 0 {
		c.Machines = 8
	}
	if c.MachineSize <= 0 {
		c.MachineSize = 32
	}
	if c.Sites <= 0 {
		c.Sites = 2
	}
	if c.ProcsPerSite <= 0 {
		c.ProcsPerSite = 4
	}
	if c.Spares < 0 {
		c.Spares = 0
	} else if c.Spares == 0 {
		c.Spares = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.WorkTime <= 0 {
		c.WorkTime = 2 * time.Minute
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 4
	}
	if c.Requests <= 0 {
		c.Requests = 40
	}
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	if c.RatePerMin <= 0 {
		c.RatePerMin = 10
	}
	if c.Outage <= 0 {
		c.Outage = 90 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// FederationLoadRow is one replica count's aggregate outcome. Elections,
// Handoffs, Forwards, and Crashes are read back from the run's counter
// registry — the same "fed.*" series the Prometheus exposition carries.
type FederationLoadRow struct {
	Replicas  int   `json:"replicas"`
	Requests  int   `json:"requests"`
	Completed int   `json:"completed"`
	Failed    int   `json:"failed"`
	Rejects   int64 `json:"rejects"`
	// Failovers counts client-side retargets: a client whose replica was
	// down (or died mid-call) redialing the next replica in the ring.
	Failovers int   `json:"failovers"`
	Forwards  int64 `json:"forwards"`
	Elections int64 `json:"elections"`
	Handoffs  int64 `json:"handoffs"`
	Crashes   int64 `json:"crashes"`
	// ThroughputPerMin is committed co-allocations per virtual minute of
	// makespan — the admitted throughput the replica group sustained.
	ThroughputPerMin float64       `json:"throughput_per_min"`
	P50              time.Duration `json:"p50"`
	P99              time.Duration `json:"p99"`
}

// FederationLoadResult is the B6 study.
type FederationLoadResult struct {
	Machines     int                 `json:"machines"`
	MachineSize  int                 `json:"machine_size"`
	Workers      int                 `json:"workers"`
	Sites        int                 `json:"sites"`
	ProcsPerSite int                 `json:"procs_per_site"`
	RatePerMin   float64             `json:"rate_per_min"`
	Rows         []FederationLoadRow `json:"rows"`
}

// FederationLoadStudy measures how admitted throughput and tail latency
// scale with the broker replica count. Every row offers the same Poisson
// arrival stream to the whole group, round-robin across replicas, with
// requests carrying federation idempotency keys; rows with two or more
// replicas additionally crash one replica mid-run and restart it, so the
// multi-replica numbers are earned under the failure mode the federation
// exists to survive. Clients fail over to the next replica when their
// target is down; the shard map forwards requests to their owners; a dead
// replica's journal entries are handed off and reaped by the survivors.
func FederationLoadStudy(cfg FederationLoadConfig) FederationLoadResult {
	cfg.fill()
	res := FederationLoadResult{
		Machines:     cfg.Machines,
		MachineSize:  cfg.MachineSize,
		Workers:      cfg.Workers,
		Sites:        cfg.Sites,
		ProcsPerSite: cfg.ProcsPerSite,
		RatePerMin:   cfg.RatePerMin,
	}
	for _, n := range cfg.ReplicaCounts {
		row, _ := FederationLoadRun(cfg, n)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// fedTestbed assembles one run: a traced grid, a directory, publishing
// batch machines, the instrumented application, and an n-replica
// federation whose per-replica brokers share one configuration.
func fedTestbed(cfg FederationLoadConfig, n int, seed int64) (*grid.Grid, *federation.Federation) {
	g := grid.New(grid.Options{Seed: seed, Trace: true})
	dirHost := g.Net.AddHost("mds0")
	if _, err := mds.NewServer(dirHost, 0); err != nil {
		panic(err) // fresh host: cannot fail
	}
	dir := transport.Addr{Host: "mds0", Service: mds.ServiceName}
	for i := 0; i < cfg.Machines; i++ {
		name := fmt.Sprintf("site%02d", i)
		m := g.AddMachine(name, cfg.MachineSize, lrm.Batch)
		mds.Publish(m, dir, g.Contact(name), 31*time.Second, cfg.ProcsPerSite, cfg.MachineSize)
	}
	g.RegisterEverywhere("app", barrierApp(cfg.WorkTime))
	fed, err := federation.New(g.Net, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	}, federation.Options{
		Replicas:  n,
		Directory: dir,
		Broker: broker.Options{
			Directory:       dir,
			QueueBound:      cfg.QueueBound,
			Workers:         cfg.Workers,
			CacheMaxAge:     45 * time.Second,
			RefreshInterval: 40 * time.Second,
			RetryAfter:      15 * time.Second,
		},
	})
	if err != nil {
		panic(err) // fresh hosts: cannot fail
	}
	return g, fed
}

// FederationLoadRun executes one row: Requests Poisson arrivals offered
// round-robin to an n-replica federation, with replica 0 crashed and
// restarted mid-run when n >= 2. The returned grid carries the run's full
// metric registries; two runs with the same config produce byte-identical
// Prometheus expositions, which TestFederationLoadDeterminism locks in.
func FederationLoadRun(cfg FederationLoadConfig, n int) (FederationLoadRow, *grid.Grid) {
	cfg.fill()
	seed := cfg.Seed + int64(n)*1009
	g, fed := fedTestbed(cfg, n, seed)

	// Pre-draw the arrival schedule so the run itself is RNG-free.
	rng := rand.New(rand.NewSource(seed))
	arrivals := make([]time.Duration, cfg.Requests)
	at := 10 * time.Second
	for i := range arrivals {
		at += time.Duration(rng.ExpFloat64() / cfg.RatePerMin * float64(time.Minute))
		arrivals[i] = at
	}
	hosts := make([]*transport.Host, cfg.Requests)
	for i := range hosts {
		hosts[i] = g.Net.AddHost(fmt.Sprintf("client%03d", i))
	}

	row := FederationLoadRow{Replicas: n, Requests: cfg.Requests}
	var mu sync.Mutex
	var latencies []float64
	var lastDone time.Duration
	err := g.Sim.Run("driver", func() {
		if n >= 2 {
			// Kill the initial leader (the highest id wins the first
			// election) a third of the way into the arrival schedule: the
			// survivors elect a new leader, the dead replica's shard hands
			// off, its journal entries are adopted, and its clients fail
			// over — the full failure mode the federation exists to mask.
			crashAt := arrivals[len(arrivals)/3]
			leader := fed.Replica(n - 1)
			g.Sim.GoDaemon("b6-crash", func() {
				g.Sim.SleepUntil(crashAt)
				leader.Crash()
				g.Sim.Sleep(cfg.Outage)
				if err := leader.Restart(); err != nil {
					panic(fmt.Sprintf("experiments: restart %s: %v", leader.Name(), err))
				}
			})
		}
		wg := vtime.NewWaitGroup(g.Sim)
		wg.Add(cfg.Requests)
		for i := range arrivals {
			i := i
			g.Sim.GoDaemon(fmt.Sprintf("client%03d", i), func() {
				defer wg.Done()
				g.Sim.SleepUntil(arrivals[i])
				reply, ok, failovers := fedSubmit(g, hosts[i], fed, i%n, hosts[i].Name(), broker.Request{
					Tenant:       fmt.Sprintf("tenant%d", i%cfg.Tenants),
					Sites:        cfg.Sites,
					ProcsPerSite: cfg.ProcsPerSite,
					Executable:   "app",
					Spares:       cfg.Spares,
					Key:          fmt.Sprintf("req%03d", i),
				})
				done := g.Sim.Now()
				mu.Lock()
				row.Failovers += failovers
				if ok && reply.OK() {
					row.Completed++
					latencies = append(latencies, (done - arrivals[i]).Seconds())
					if done > lastDone {
						lastDone = done
					}
				} else {
					row.Failed++
				}
				mu.Unlock()
			})
		}
		wg.Wait()
		// Quiesce: let committed jobs run out, then give the peer reaper
		// time to drain any journal entries the crash handed off, so the
		// counter totals are scheduling-independent.
		g.Sim.Sleep(cfg.WorkTime + time.Minute)
		g.Sim.Sleep(3 * fed.Options().PeerReapInterval)
	})
	if err != nil {
		panic(err)
	}

	s := metrics.Summarize(latencies)
	row.P50 = time.Duration(s.P50 * float64(time.Second))
	row.P99 = time.Duration(s.P99 * float64(time.Second))
	if makespan := lastDone - arrivals[0]; makespan > 0 {
		row.ThroughputPerMin = float64(row.Completed) / makespan.Minutes()
	}
	for _, cv := range g.Counters.Snapshot() {
		switch {
		case strings.HasPrefix(cv.Name, "broker.queue.reject@"):
			row.Rejects += cv.Value
		case strings.HasPrefix(cv.Name, "fed.forward.commit@"):
			row.Forwards += cv.Value
		case strings.HasPrefix(cv.Name, "fed.election.win@"):
			row.Elections += cv.Value
		case strings.HasPrefix(cv.Name, "fed.handoff."):
			row.Handoffs += cv.Value
		case strings.HasPrefix(cv.Name, "fed.replica.crash@"):
			row.Crashes += cv.Value
		}
	}
	return row, g
}

// fedSubmit performs one keyed submission with client-side failover:
// starting from the client's home replica, it walks the ring until a
// replica answers. A dead target costs the dial timeout before the client
// moves on — that tail is part of what the study measures. The federation
// idempotency key makes the walk safe: if a replica committed the
// co-allocation but died before replying, the retried key is answered
// from the replicated journal, not allocated twice. Returns the reply,
// whether any replica answered, and how many failovers the walk took.
func fedSubmit(g *grid.Grid, host *transport.Host, fed *federation.Federation, home int, id string, req broker.Request) (broker.Reply, bool, int) {
	ctx := trace.NewRequest(id)
	sim := host.Network().Sim()
	start := sim.Now()
	n := len(fed.Replicas())
	var reply broker.Reply
	ok := false
	failovers := 0
	for k := 0; k < n; k++ {
		r := fed.Replica((home + k) % n)
		c, err := broker.DialCtx(host, r.BrokerContact(), ctx)
		if err != nil {
			failovers++
			continue
		}
		re, _, err := c.SubmitWait(req, 0, 50)
		c.Close()
		if err != nil {
			failovers++
			continue
		}
		reply, ok = re, true
		break
	}
	host.Network().Tracer().SpanAtCtx(ctx, "client", "request", host.Name(), req.Tenant, "", start, sim.Now())
	return reply, ok, failovers
}

// Table renders the study.
func (r FederationLoadResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("B6: federated broker scaling, %d machines x %d procs, %d worker(s)/replica, %dx%d requests at %.0f/min",
			r.Machines, r.MachineSize, r.Workers, r.Sites, r.ProcsPerSite, r.RatePerMin),
		"replicas", "reqs", "ok", "fail", "rejects", "failovers",
		"fwd", "elect", "handoff", "crash", "thr/min", "p50", "p99")
	for _, row := range r.Rows {
		t.Add(row.Replicas, row.Requests, row.Completed, row.Failed,
			row.Rejects, row.Failovers, row.Forwards, row.Elections,
			row.Handoffs, row.Crashes, row.ThroughputPerMin, row.P50, row.P99)
	}
	return t
}
