package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/core"
	"cogrid/internal/failure"
	"cogrid/internal/grab"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/metrics"
	"cogrid/internal/transport"
)

// --- A1: atomic restarts vs interactive transactions (Section 4.3) ---

// AtomicVsInteractiveRow aggregates one failure-probability setting.
type AtomicVsInteractiveRow struct {
	FailProb          float64
	AtomicTime        time.Duration // mean time to a running ensemble
	InteractiveTime   time.Duration
	AtomicRestarts    float64 // mean full restarts under the atomic strategy
	Substitutions     float64 // mean substitutions under DUROC
	AtomicSlowdown    float64 // AtomicTime / InteractiveTime
	Trials            int
	AtomicFailures    int // trials where atomic never succeeded
	InteractiveFailed int
}

// AtomicVsInteractiveResult is the A1 study.
type AtomicVsInteractiveResult struct {
	Machines int
	Startup  time.Duration
	Rows     []AtomicVsInteractiveRow
}

// AtomicVsInteractive reproduces the experience that motivated DUROC
// (Section 4.3): with application startup taking many minutes, an atomic
// transaction must restart the entire ensemble whenever any machine turns
// out bad, while the interactive transaction substitutes the bad machine
// and keeps everything else waiting at the barrier.
//
// n machines are needed; each candidate machine is independently bad with
// probability p (its processes report unsuccessful startup at the
// barrier, discovered only after the startup delay). Both strategies see
// the same bad set per trial and draw replacements from the same spare
// pool.
func AtomicVsInteractive(n int, startup time.Duration, failProbs []float64, trials int, seed int64) AtomicVsInteractiveResult {
	res := AtomicVsInteractiveResult{Machines: n, Startup: startup}
	for _, p := range failProbs {
		row := AtomicVsInteractiveRow{FailProb: p, Trials: trials}
		var atomicSum, interactiveSum time.Duration
		var restartSum, substSum int
		for trial := 0; trial < trials; trial++ {
			// Common random numbers: each machine gets one uniform draw
			// per trial, independent of p, so the bad set grows
			// monotonically with the failure probability and the p-sweep
			// is a paired comparison.
			rng := rand.New(rand.NewSource(seed + int64(trial)*1000003))
			poolSize := n + n + 4
			bad := make(map[string]bool)
			for i := 0; i < poolSize; i++ {
				if rng.Float64() < p {
					bad[machineName(i)] = true
				}
			}
			at, restarts, ok := atomicTrial(n, startup, poolSize, bad, seed+int64(trial))
			if !ok {
				row.AtomicFailures++
			} else {
				atomicSum += at
				restartSum += restarts
			}
			it, subs, ok := interactiveTrial(n, startup, poolSize, bad, seed+int64(trial))
			if !ok {
				row.InteractiveFailed++
			} else {
				interactiveSum += it
				substSum += subs
			}
		}
		okAtomic := trials - row.AtomicFailures
		okInter := trials - row.InteractiveFailed
		if okAtomic > 0 {
			row.AtomicTime = atomicSum / time.Duration(okAtomic)
			row.AtomicRestarts = float64(restartSum) / float64(okAtomic)
		}
		if okInter > 0 {
			row.InteractiveTime = interactiveSum / time.Duration(okInter)
			row.Substitutions = float64(substSum) / float64(okInter)
		}
		if row.InteractiveTime > 0 {
			row.AtomicSlowdown = float64(row.AtomicTime) / float64(row.InteractiveTime)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func machineName(i int) string { return fmt.Sprintf("sc%02d", i) }

// a1Grid builds the trial testbed: poolSize machines whose "sim"
// executable reports unsuccessful startup on bad machines.
func a1Grid(startup time.Duration, poolSize int, bad map[string]bool, seed int64) *grid.Grid {
	g := grid.New(grid.Options{
		Seed:     seed,
		LRMCosts: lrm.Costs{Fork: time.Millisecond, ProcStartup: startup},
	})
	for i := 0; i < poolSize; i++ {
		g.AddMachine(machineName(i), 128, lrm.Fork)
	}
	g.RegisterEverywhere("sim", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if bad[p.Host().Name()] {
			rt.Barrier(false, "numerical library check failed", 0)
			return nil
		}
		if _, err := rt.Barrier(true, "", 24*time.Hour); err != nil {
			return nil
		}
		return p.Work(time.Minute, time.Second)
	})
	return g
}

// atomicTrial runs the GRAB strategy with restart-and-replace: on each
// failure the named machine is dropped for the next full attempt.
func atomicTrial(n int, startup time.Duration, poolSize int, bad map[string]bool, seed int64) (elapsed time.Duration, restarts int, ok bool) {
	g := a1Grid(startup, poolSize, bad, seed)
	broker, err := grab.NewBroker(g.Workstation, grab.Config{
		Credential:     g.UserCred,
		Registry:       g.Registry,
		StartupTimeout: 4*startup + time.Hour,
	})
	if err != nil {
		panic(err)
	}
	simErr := g.Sim.Run("agent", func() {
		excluded := make(map[string]bool)
		for attempt := 0; attempt <= poolSize-n; attempt++ {
			var req core.Request
			picked := 0
			for i := 0; i < poolSize && picked < n; i++ {
				name := machineName(i)
				if excluded[name] {
					continue
				}
				req.Subjobs = append(req.Subjobs, core.SubjobSpec{
					Label: name, Contact: g.Contact(name), Count: 64, Executable: "sim",
				})
				picked++
			}
			if picked < n {
				return // pool exhausted
			}
			alloc, err := broker.Allocate(req)
			if err == nil {
				alloc.Close()
				elapsed = g.Sim.Now()
				ok = true
				return
			}
			restarts++
			// The error names the failed subjob (machine); exclude it.
			if name, found := extractSubjob(err.Error()); found {
				excluded[name] = true
			} else {
				return
			}
		}
	})
	if simErr != nil {
		panic(simErr)
	}
	return elapsed, restarts, ok
}

// extractSubjob pulls the quoted subjob label from a GRAB failure message.
func extractSubjob(msg string) (string, bool) {
	i := strings.Index(msg, `subjob "`)
	if i < 0 {
		return "", false
	}
	rest := msg[i+len(`subjob "`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// interactiveTrial runs the DUROC substitution strategy over the same bad
// set: failures are replaced from the spare pool while healthy machines
// wait in the barrier.
func interactiveTrial(n int, startup time.Duration, poolSize int, bad map[string]bool, seed int64) (elapsed time.Duration, substitutions int, ok bool) {
	g := a1Grid(startup, poolSize, bad, seed)
	ctrl := newController(g)
	simErr := g.Sim.Run("agent", func() {
		var req core.Request
		for i := 0; i < n; i++ {
			req.Subjobs = append(req.Subjobs, core.SubjobSpec{
				Label: machineName(i), Contact: g.Contact(machineName(i)),
				Count: 64, Executable: "sim", Type: core.Interactive,
				StartupTimeout: 4*startup + time.Hour,
			})
		}
		var pool []transport.Addr
		for i := n; i < poolSize; i++ {
			pool = append(pool, g.Contact(machineName(i)))
		}
		res, err := agent.WithSubstitution(ctrl, req, agent.SubstituteOptions{Pool: pool})
		if err != nil {
			return
		}
		elapsed = g.Sim.Now()
		substitutions = res.Substitutions
		ok = true
		res.Job.Kill() // the measurement ends at successful start
	})
	if simErr != nil {
		panic(simErr)
	}
	return elapsed, substitutions, ok
}

// Table renders the study.
func (r AtomicVsInteractiveResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("A1: time to running ensemble, atomic (GRAB) vs interactive (DUROC); %d machines, %s startup",
			r.Machines, r.Startup),
		"fail prob", "atomic", "interactive", "restarts", "substitutions", "atomic/interactive")
	for _, row := range r.Rows {
		t.Add(row.FailProb, row.AtomicTime, row.InteractiveTime,
			row.AtomicRestarts, row.Substitutions, row.AtomicSlowdown)
	}
	return t
}

// --- A2: the 1386-process, 13-machine, 9-site run (Section 4.3) ---

// BigRunResult reports the distributed-interactive-simulation style start.
type BigRunResult struct {
	Machines      int
	Sites         int
	RequestedPE   int
	CommittedPE   int
	Subjobs       int
	StartTime     time.Duration
	Substitutions int
	Deleted       int
	Narrative     []string
}

// BigRun reproduces the paper's flagship DUROC experience: starting the
// largest distributed interactive simulation ever performed — 1386
// processors across 13 supercomputers at 9 sites — while configuring
// around machine, network, and application failures.
func BigRun(seed int64) BigRunResult {
	sizes := []int{256, 222, 128, 128, 128, 96, 96, 64, 64, 64, 64, 48, 28} // = 1386
	const sites = 9
	lat := transport.NewMatrixLatency(25 * time.Millisecond)
	g := grid.New(grid.Options{Seed: seed, LatencyModel: lat})

	res := BigRunResult{Machines: len(sizes), Sites: sites}
	names := make([]string, len(sizes))
	siteOf := func(i int) int { return i % sites }
	for i, size := range sizes {
		names[i] = fmt.Sprintf("sc%02d", i)
		g.AddMachine(names[i], size, lrm.Fork)
		res.RequestedPE += size
	}
	// Two spare machines, large enough to substitute for any primary.
	spares := []string{"spare0", "spare1"}
	for _, s := range spares {
		g.AddMachine(s, 256, lrm.Fork)
	}
	// Same-site machines are close; cross-site links are tens of ms.
	all := append(append([]string{}, names...), spares...)
	for i, a := range all {
		for j, b := range all {
			if i >= j {
				continue
			}
			if siteOf(i) == siteOf(j) {
				lat.Set(a, b, 500*time.Microsecond)
			}
		}
	}

	// The application: one process per PE; sc03's processes fail their
	// local startup checks (application failure).
	appFailed := "sc03"
	g.RegisterEverywhere("dis", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if p.Host().Name() == appFailed {
			rt.Barrier(false, "terrain database missing", 0)
			return nil
		}
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(10*time.Minute, time.Minute)
	})

	// Failure plan: sc07 crashes during startup (machine failure); the
	// workstation's link to sc09 partitions (network failure) so its
	// subjob times out silently.
	failure.Plan{
		{At: 20 * time.Second, Kind: failure.HostCrash, Target: "sc07"},
		{At: 1 * time.Second, Kind: failure.Partition, Target: "workstation", Target2: "sc09"},
	}.Apply(g)

	ctrl := newController(g)
	var req core.Request
	for i, name := range names {
		typ := core.Interactive
		if i == 0 {
			typ = core.Required // the simulation coordinator
		}
		req.Subjobs = append(req.Subjobs, core.SubjobSpec{
			Label: name, Contact: g.Contact(name), Count: sizes[i],
			Executable: "dis", Type: typ, StartupTimeout: 2 * time.Minute,
		})
	}
	var pool []transport.Addr
	for _, s := range spares {
		pool = append(pool, g.Contact(s))
	}
	err := g.Sim.Run("agent", func() {
		out, err := agent.WithSubstitution(ctrl, req, agent.SubstituteOptions{
			Pool:              pool,
			DropUnreplaceable: true,
		})
		if err != nil {
			res.Narrative = append(res.Narrative, "FAILED: "+err.Error())
			return
		}
		res.StartTime = g.Sim.Now()
		res.CommittedPE = out.Config.WorldSize
		res.Subjobs = out.Config.NSubjobs
		res.Substitutions = out.Substitutions
		res.Deleted = out.Deleted
		for _, info := range out.Job.Status() {
			if info.Status == core.SJFailed || info.Status == core.SJDeleted {
				res.Narrative = append(res.Narrative,
					fmt.Sprintf("subjob %-8s %-8s %s", info.Spec.Label, info.Status, info.Reason))
			}
		}
		out.Job.Kill()
	})
	if err != nil {
		panic(err)
	}
	return res
}

// Table renders the run summary.
func (r BigRunResult) Table() *metrics.Table {
	t := metrics.NewTable("A2: 1386-processor start across 13 machines at 9 sites, configured around failures",
		"metric", "value")
	t.Add("machines requested", r.Machines)
	t.Add("processors requested", r.RequestedPE)
	t.Add("subjobs committed", r.Subjobs)
	t.Add("processors committed", r.CommittedPE)
	t.Add("substitutions", r.Substitutions)
	t.Add("subjobs dropped", r.Deleted)
	t.Add("time to committed start", r.StartTime)
	return t
}
