package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"cogrid/internal/broker"
	"cogrid/internal/failure"
	"cogrid/internal/grid"
	"cogrid/internal/metrics"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// --- B2: broker resilience under injected faults (chaos study) ---

// ChaosConfig parameterizes the chaos study: B1's open-loop Poisson load
// replayed against a grid where a seeded fraction of the machines
// suffers one of the paper's Section 2 failure modes mid-run.
type ChaosConfig struct {
	Machines     int
	MachineSize  int
	Sites        int
	ProcsPerSite int
	Spares       int
	Workers      int
	// WorkTime is how long each committed application computes.
	WorkTime time.Duration
	// Requests arrive open-loop at RatePerMin, spread over Tenants.
	Requests   int
	Tenants    int
	RatePerMin float64
	// FaultRates is the swept per-machine fault probability, one row each.
	FaultRates []float64
	// Window is the span fault onsets are drawn from (measured from the
	// first arrival).
	Window time.Duration
	// MaxTime is the per-subjob wall-time limit: the LRM-side bound on how
	// long a committed-but-lost job can hold processors even if every
	// cancel were lost.
	MaxTime time.Duration
	// SubmitBudget is each client's total SubmitWait budget; the broker
	// sees it as the request deadline and abandons work past it.
	SubmitBudget time.Duration
	Seed         int64
}

func (c *ChaosConfig) fill() {
	if c.Machines <= 0 {
		c.Machines = 6
	}
	if c.MachineSize <= 0 {
		c.MachineSize = 32
	}
	if c.Sites <= 0 {
		c.Sites = 2
	}
	if c.ProcsPerSite <= 0 {
		c.ProcsPerSite = 8
	}
	if c.Spares == 0 {
		c.Spares = 2
	} else if c.Spares < 0 {
		c.Spares = 0
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.WorkTime <= 0 {
		c.WorkTime = 90 * time.Second
	}
	if c.Requests <= 0 {
		c.Requests = 24
	}
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	if c.RatePerMin <= 0 {
		c.RatePerMin = 4
	}
	if len(c.FaultRates) == 0 {
		c.FaultRates = []float64{0, 0.25, 0.5, 1}
	}
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 8 * time.Minute
	}
	if c.SubmitBudget <= 0 {
		c.SubmitBudget = 10 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ChaosRow is one fault-rate setting's outcome. Abandoned, orphan, and
// fault-class columns are read from the run's counter registry; LeakedJobs
// is the machine-side ground truth — non-terminal LRM jobs surviving
// quiescence, which must be zero when every orphan was reaped.
type ChaosRow struct {
	FaultRate       float64       `json:"fault_rate"`
	Faults          int           `json:"faults"`
	FaultKinds      string        `json:"fault_kinds,omitempty"`
	FirstFault      time.Duration `json:"first_fault,omitempty"`
	Requests        int           `json:"requests"`
	Completed       int           `json:"completed"`
	Failed          int           `json:"failed"`
	Abandoned       int64         `json:"abandoned"`
	Rejects         int64         `json:"rejects"`
	Retries         int64         `json:"retries"`
	WatchdogAborts  int64         `json:"watchdog_aborts"`
	FaultClasses    string        `json:"fault_classes,omitempty"`
	OrphansRecorded int64         `json:"orphans_recorded"`
	OrphansReaped   int64         `json:"orphans_reaped"`
	LeakedJobs      int           `json:"leaked_jobs"`
	SuccessRate     float64       `json:"success_rate"`
	P50             time.Duration `json:"p50"`
	P99             time.Duration `json:"p99"`
}

// ChaosResult is the B2 study.
type ChaosResult struct {
	Machines     int        `json:"machines"`
	MachineSize  int        `json:"machine_size"`
	Workers      int        `json:"workers"`
	Sites        int        `json:"sites"`
	ProcsPerSite int        `json:"procs_per_site"`
	Rows         []ChaosRow `json:"rows"`
}

// ChaosStudy sweeps the fault rate: at each setting the same Poisson load
// runs against a grid with proportionally more injected failures, and the
// row records how many requests still commit, how long they take, and —
// the resilience criterion — that no allocation leaks: every subjob whose
// cancel was lost mid-2PC is eventually reaped at its resource manager.
func ChaosStudy(cfg ChaosConfig) ChaosResult {
	cfg.fill()
	res := ChaosResult{
		Machines:     cfg.Machines,
		MachineSize:  cfg.MachineSize,
		Workers:      cfg.Workers,
		Sites:        cfg.Sites,
		ProcsPerSite: cfg.ProcsPerSite,
	}
	for _, rate := range cfg.FaultRates {
		row, _ := ChaosRun(cfg, rate)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// drawPlan draws one fault plan from rng: each machine suffers at most
// one fault with probability faultRate — hang, overload, partition from
// the broker, resource-manager outage, or crash — paired with the action
// that later heals it, plus (at the same probability) one grid-wide
// credential revocation window. Crashes pair with MachineRestart so the
// machine comes back reachable and the reaper can drain it. Every fault
// heals inside the run, which is what entitles the zero-leak assertion.
func drawPlan(cfg ChaosConfig, faultRate float64, rng *rand.Rand, start time.Duration) failure.Plan {
	var plan failure.Plan
	for i := 0; i < cfg.Machines; i++ {
		if rng.Float64() >= faultRate {
			continue
		}
		name := fmt.Sprintf("site%02d", i)
		at := start + time.Duration(rng.Float64()*float64(cfg.Window))
		dur := 30*time.Second + time.Duration(rng.Float64()*float64(90*time.Second))
		switch rng.Intn(5) {
		case 0: // silent hang: failures surface only as lack of progress
			plan = append(plan,
				failure.Action{At: at, Kind: failure.HostHang, Target: name},
				failure.Action{At: at + dur, Kind: failure.HostRestore, Target: name})
		case 1: // overload: startup slows 25x, then recovers
			plan = append(plan,
				failure.Action{At: at, Kind: failure.MachineSlow, Target: name, Factor: 25},
				failure.Action{At: at + dur, Kind: failure.MachineSlow, Target: name, Factor: 1})
		case 2: // partition between broker and site, later healed
			plan = append(plan,
				failure.Action{At: at, Kind: failure.Partition, Target: "broker0", Target2: name},
				failure.Action{At: at + dur, Kind: failure.Heal, Target: "broker0", Target2: name})
		case 3: // resource manager outage: submissions error out (detectable)
			plan = append(plan,
				failure.Action{At: at, Kind: failure.MachineDown, Target: name},
				failure.Action{At: at + dur, Kind: failure.MachineUp, Target: name})
		case 4: // crash, then reboot with the LRM job table intact
			plan = append(plan,
				failure.Action{At: at, Kind: failure.HostCrash, Target: name},
				failure.Action{At: at + dur, Kind: failure.MachineRestart, Target: name})
		}
	}
	if rng.Float64() < faultRate {
		// One grid-wide authentication outage: the broker's own credential
		// is revoked, so submissions and reap dials are rejected until it
		// is reinstated.
		at := start + time.Duration(rng.Float64()*float64(cfg.Window))
		dur := 30*time.Second + time.Duration(rng.Float64()*float64(60*time.Second))
		plan = append(plan,
			failure.Action{At: at, Kind: failure.RevokeUser, Target: grid.DefaultUser},
			failure.Action{At: at + dur, Kind: failure.ReinstateUser, Target: grid.DefaultUser})
	}
	return plan.Sorted()
}

// ChaosRun executes one chaos row: pre-drawn Poisson arrivals and a
// pre-drawn fault plan (the run itself is RNG-free), then a quiescence
// window long enough for every fault to heal, every wall-time limit to
// fire, and the orphan reaper to drain. The returned grid carries the
// run's Tracer and Counters; two same-seed runs export byte-identical
// traces and counter tables.
func ChaosRun(cfg ChaosConfig, faultRate float64) (ChaosRow, *grid.Grid) {
	return chaosRun(cfg, faultRate, nil)
}

// chaosRun is ChaosRun with a pre-run hook: onGrid (when non-nil) runs
// after the testbed is assembled but before the simulation starts, so the
// SLO study can arm its engine against the same workload B2 uses.
func chaosRun(cfg ChaosConfig, faultRate float64, onGrid func(*grid.Grid)) (ChaosRow, *grid.Grid) {
	cfg.fill()
	seed := cfg.Seed + int64(faultRate*1000)*13
	blc := BrokerLoadConfig{
		Machines:     cfg.Machines,
		MachineSize:  cfg.MachineSize,
		Sites:        cfg.Sites,
		ProcsPerSite: cfg.ProcsPerSite,
		Spares:       cfg.Spares,
		Workers:      cfg.Workers,
		WorkTime:     cfg.WorkTime,
	}
	blc.fill()
	g, b := brokerTestbed(blc, 16, seed)

	rng := rand.New(rand.NewSource(seed))
	arrivals := make([]time.Duration, cfg.Requests)
	at := 10 * time.Second
	for i := range arrivals {
		at += time.Duration(rng.ExpFloat64() / cfg.RatePerMin * float64(time.Minute))
		arrivals[i] = at
	}
	plan := drawPlan(cfg, faultRate, rng, arrivals[0])
	var healBy time.Duration
	for _, a := range plan {
		if a.At > healBy {
			healBy = a.At
		}
	}
	hosts := make([]*transport.Host, cfg.Requests)
	for i := range hosts {
		hosts[i] = g.Net.AddHost(fmt.Sprintf("client%03d", i))
	}

	row := ChaosRow{
		FaultRate:  faultRate,
		Requests:   cfg.Requests,
		Faults:     countFaultOnsets(plan),
		FaultKinds: faultKindSummary(plan),
		FirstFault: firstFaultOnset(plan),
	}
	if onGrid != nil {
		onGrid(g)
	}
	var mu sync.Mutex
	var latencies []float64
	err := g.Sim.Run("driver", func() {
		plan.Apply(g)
		wg := vtime.NewWaitGroup(g.Sim)
		wg.Add(cfg.Requests)
		for i := range arrivals {
			i := i
			g.Sim.GoDaemon(fmt.Sprintf("client%03d", i), func() {
				defer wg.Done()
				g.Sim.SleepUntil(arrivals[i])
				reply, ok := chaosSubmit(hosts[i], b, broker.Request{
					Tenant:         fmt.Sprintf("tenant%d", i%cfg.Tenants),
					Sites:          cfg.Sites,
					ProcsPerSite:   cfg.ProcsPerSite,
					Executable:     "app",
					Spares:         cfg.Spares,
					CommitTimeout:  3 * time.Minute,
					StartupTimeout: 2 * time.Minute,
					MaxTime:        cfg.MaxTime,
				}, cfg.SubmitBudget)
				done := g.Sim.Now()
				mu.Lock()
				if ok && reply.OK() {
					row.Completed++
					latencies = append(latencies, (done - arrivals[i]).Seconds())
				} else {
					row.Failed++
				}
				mu.Unlock()
			})
		}
		wg.Wait()
		// Quiesce: every fault must have healed and every committed or
		// leaked job must have run out (WorkTime for healthy ones, the
		// MaxTime wall limit for any the faults detached), plus two reap
		// intervals so the reaper observes the healed grid.
		if now := g.Sim.Now(); now < healBy {
			g.Sim.SleepUntil(healBy)
		}
		g.Sim.Sleep(cfg.MaxTime + cfg.WorkTime + 2*time.Minute)
	})
	if err != nil {
		panic(err)
	}

	s := metrics.Summarize(latencies)
	row.P50 = time.Duration(s.P50 * float64(time.Second))
	row.P99 = time.Duration(s.P99 * float64(time.Second))
	if row.Requests > 0 {
		row.SuccessRate = float64(row.Completed) / float64(row.Requests)
	}
	row.Abandoned = g.Counters.Get(trace.Key("broker", "request", "abandoned", "broker0"))
	row.Rejects = g.Counters.Get(trace.Key("broker", "queue", "reject", "broker0"))
	row.WatchdogAborts = g.Counters.Get(trace.Key("broker", "watchdog", "abort", "broker0"))
	row.OrphansRecorded = g.Counters.Get(trace.Key("broker", "orphan", "record", "broker0"))
	row.OrphansReaped = g.Counters.Get(trace.Key("broker", "orphan", "reaped", "broker0"))
	var classes []string
	for _, cv := range g.Counters.Snapshot() {
		if strings.HasPrefix(cv.Name, "broker.retry.") {
			row.Retries += cv.Value
		}
		if rest, ok := strings.CutPrefix(cv.Name, "broker.fault."); ok {
			classes = append(classes, strings.TrimSuffix(rest, "@broker0")+":"+fmt.Sprint(cv.Value))
		}
	}
	sort.Strings(classes)
	row.FaultClasses = strings.Join(classes, " ")
	for _, name := range g.Machines() {
		row.LeakedJobs += g.Machine(name).LiveJobs()
	}
	return row, g
}

// chaosSubmit is brokerSubmit with an explicit total budget. The client
// host's name roots the request's causal tree (one request per host in
// the chaos study).
func chaosSubmit(host *transport.Host, b *broker.Broker, req broker.Request, budget time.Duration) (broker.Reply, bool) {
	ctx := trace.NewRequest(host.Name())
	sim := host.Network().Sim()
	start := sim.Now()
	c, err := broker.DialCtx(host, b.Contact(), ctx)
	if err != nil {
		return broker.Reply{}, false
	}
	defer c.Close()
	reply, _, err := c.SubmitWait(req, budget, 50)
	host.Network().Tracer().SpanAtCtx(ctx, "client", "request", host.Name(), req.Tenant, "", start, sim.Now())
	return reply, err == nil
}

// firstFaultOnset returns the earliest onset time in the plan (the plan
// is sorted, but healing actions of an earlier fault can precede a later
// onset, so scan for the first real onset). Zero when the plan is empty.
func firstFaultOnset(plan failure.Plan) time.Duration {
	for _, a := range plan {
		switch a.Kind {
		case failure.HostHang, failure.MachineDown, failure.Partition,
			failure.HostCrash, failure.RevokeUser:
			return a.At
		case failure.MachineSlow:
			if a.Factor > 1 {
				return a.At
			}
		}
	}
	return 0
}

// countFaultOnsets counts fault injections (healing actions excluded).
func countFaultOnsets(plan failure.Plan) int {
	n := 0
	for _, a := range plan {
		switch a.Kind {
		case failure.HostHang, failure.MachineDown, failure.Partition,
			failure.HostCrash, failure.RevokeUser:
			n++
		case failure.MachineSlow:
			if a.Factor > 1 {
				n++
			}
		}
	}
	return n
}

// faultKindSummary renders the plan's onset kinds as "kind:count ...".
func faultKindSummary(plan failure.Plan) string {
	counts := map[string]int{}
	for _, a := range plan {
		switch a.Kind {
		case failure.HostHang, failure.MachineDown, failure.Partition,
			failure.HostCrash, failure.RevokeUser:
			counts[a.Kind.String()]++
		case failure.MachineSlow:
			if a.Factor > 1 {
				counts[a.Kind.String()]++
			}
		}
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s:%d", k, counts[k]))
	}
	return strings.Join(parts, " ")
}

// Table renders the study.
func (r ChaosResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("B2: broker chaos study, %d machines x %d procs, %d workers, %dx%d requests",
			r.Machines, r.MachineSize, r.Workers, r.Sites, r.ProcsPerSite),
		"fault rate", "faults", "reqs", "ok", "fail", "abandoned",
		"retries", "watchdog", "orphans rec/reap", "leaked", "success", "p50", "p99")
	for _, row := range r.Rows {
		t.Add(fmt.Sprintf("%.2f", row.FaultRate), row.Faults, row.Requests,
			row.Completed, row.Failed, row.Abandoned, row.Retries, row.WatchdogAborts,
			fmt.Sprintf("%d/%d", row.OrphansRecorded, row.OrphansReaped),
			row.LeakedJobs, fmt.Sprintf("%.0f%%", row.SuccessRate*100),
			row.P50, row.P99)
	}
	return t
}
