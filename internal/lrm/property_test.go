package lrm

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// Property: under a random stream of batch jobs, the scheduler never
// oversubscribes the machine and every job reaches a terminal state.
func TestBatchSchedulerCapacityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		sim := vtime.NewSeeded(seed)
		net := transport.New(sim, transport.UniformLatency(time.Millisecond))
		host := net.AddHost("m")
		const procs = 32
		m := NewMachine(host, procs, Config{Mode: Batch})
		rng := rand.New(rand.NewSource(seed))

		var mu sync.Mutex
		running := 0
		peak := 0
		ok := true
		m.RegisterExecutable("job", func(p *Proc) error {
			if p.Rank == 0 {
				mu.Lock()
				running += p.Count
				if running > procs {
					ok = false
				}
				if running > peak {
					peak = running
				}
				mu.Unlock()
				defer func() {
					mu.Lock()
					running -= p.Count
					mu.Unlock()
				}()
			}
			return p.Work(time.Duration(1+rng.Intn(30))*time.Second, time.Second)
		})

		var jobs []*Job
		err := sim.Run("driver", func() {
			for i := 0; i < 20; i++ {
				count := 1 + rng.Intn(procs)
				limit := time.Duration(5+rng.Intn(120)) * time.Second
				job, err := m.Submit(JobSpec{Executable: "job", Count: count, TimeLimit: limit})
				if err != nil {
					ok = false
					return
				}
				jobs = append(jobs, job)
				sim.Sleep(time.Duration(rng.Intn(10)) * time.Second)
			}
			for _, job := range jobs {
				job.Done().Wait()
			}
		})
		if err != nil {
			return false
		}
		for _, job := range jobs {
			if !job.State().Terminal() {
				return false
			}
		}
		mu.Lock()
		defer mu.Unlock()
		return ok && peak <= procs
	}
	cfg := &quick.Config{
		MaxCount: 15,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: random reservation requests that are admitted never
// oversubscribe the machine at any instant.
func TestReservationAdmissionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		sim := vtime.NewSeeded(seed)
		net := transport.New(sim, transport.UniformLatency(time.Millisecond))
		host := net.AddHost("m")
		const procs = 64
		m := NewMachine(host, procs, Config{Mode: Batch})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			count := 1 + rng.Intn(procs)
			start := time.Duration(rng.Intn(3600)) * time.Second
			duration := time.Duration(1+rng.Intn(1800)) * time.Second
			m.Reserve(count, start, duration) // admission may refuse; fine
		}
		// Verify capacity at every reservation boundary.
		reservations := m.Reservations()
		var points []time.Duration
		for _, r := range reservations {
			points = append(points, r.Start, r.End-1)
		}
		for _, p := range points {
			total := 0
			for _, r := range reservations {
				if r.Start <= p && p < r.End {
					total += r.Count
				}
			}
			if total > procs {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
