package lrm

import (
	"testing"
	"time"
)

func TestSuspendPausesWork(t *testing.T) {
	sim, m := newMachine(8, Fork)
	registerWork(m, 10*time.Second)
	err := sim.Run("main", func() {
		job, err := m.Submit(JobSpec{Executable: "work", Count: 2})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		// Let the job get going, then suspend for a minute.
		sim.Sleep(DefaultCosts.Fork + DefaultCosts.ProcStartup + 3*time.Second)
		if err := job.Suspend(); err != nil {
			t.Errorf("Suspend: %v", err)
			return
		}
		if job.State() != StateSuspended {
			t.Errorf("state = %v, want SUSPENDED", job.State())
		}
		sim.Sleep(time.Minute)
		if job.State() != StateSuspended {
			t.Errorf("job left suspension by itself: %v", job.State())
		}
		if err := job.Resume(); err != nil {
			t.Errorf("Resume: %v", err)
			return
		}
		job.Done().Wait()
		if job.State() != StateDone {
			t.Errorf("terminal state = %v (%s)", job.State(), job.Reason())
		}
		// 1ms fork + 750ms startup + 10s work + 60s suspension; the work
		// step granularity (1s) allows one step of slack.
		base := DefaultCosts.Fork + DefaultCosts.ProcStartup + 10*time.Second + time.Minute
		if got := sim.Now(); got < base-time.Second || got > base+time.Second {
			t.Errorf("finished at %v, want ~%v", got, base)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSuspendEventsAndStateChecks(t *testing.T) {
	sim, m := newMachine(8, Fork)
	registerWork(m, 5*time.Second)
	err := sim.Run("main", func() {
		job, err := m.Submit(JobSpec{Executable: "work", Count: 1})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if err := job.Resume(); err == nil {
			t.Error("Resume of non-suspended job succeeded")
		}
		if err := job.Suspend(); err != nil {
			t.Errorf("Suspend: %v", err)
			return
		}
		if err := job.Suspend(); err == nil {
			t.Error("double Suspend succeeded")
		}
		if err := job.Resume(); err != nil {
			t.Errorf("Resume: %v", err)
		}
		var states []JobState
		for {
			s, ok := job.Events().Recv()
			if !ok {
				break
			}
			states = append(states, s)
		}
		want := []JobState{StateActive, StateSuspended, StateActive, StateDone}
		if len(states) != len(want) {
			t.Fatalf("events = %v, want %v", states, want)
		}
		for i := range want {
			if states[i] != want[i] {
				t.Fatalf("events = %v, want %v", states, want)
			}
		}
		if err := job.Suspend(); err == nil {
			t.Error("Suspend of finished job succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCancelWhileSuspendedReleasesProcesses(t *testing.T) {
	sim, m := newMachine(8, Fork)
	registerWork(m, time.Hour)
	err := sim.Run("main", func() {
		job, err := m.Submit(JobSpec{Executable: "work", Count: 4})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		sim.Sleep(2 * time.Second)
		if err := job.Suspend(); err != nil {
			t.Errorf("Suspend: %v", err)
			return
		}
		job.Cancel()
		if job.State() != StateCancelled {
			t.Errorf("state = %v, want CANCELLED", job.State())
		}
		// The simulation must quiesce: suspended processes must have been
		// woken to observe the kill, or the kernel would deadlock with
		// live non-daemon waiters... they are daemons, but a leak of the
		// suspension would show as the clock never settling. Sleep past
		// any step boundary to let them drain.
		sim.Sleep(5 * time.Second)
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSuspendPendingJobFails(t *testing.T) {
	sim, m := newMachine(2, Batch)
	registerWork(m, 10*time.Second)
	err := sim.Run("main", func() {
		a, _ := m.Submit(JobSpec{Executable: "work", Count: 2, TimeLimit: time.Minute})
		b, _ := m.Submit(JobSpec{Executable: "work", Count: 2, TimeLimit: time.Minute})
		if err := b.Suspend(); err == nil {
			t.Error("Suspend of pending job succeeded")
		}
		_ = a
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
