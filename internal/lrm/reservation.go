package lrm

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Reservation is an advance reservation of processors for a time window —
// the local-manager capability the paper argues co-allocation ultimately
// requires (Sections 2.2 and 5, and [13]).
//
// Reserved capacity is carved out of the batch queue's view for the whole
// window; admission checks reservations against each other and machine
// size. This models a manager whose reservations take priority over the
// best-effort queue.
type Reservation struct {
	ID    string
	Start time.Duration
	End   time.Duration
	Count int
}

// Errors returned by reservation operations.
var (
	ErrReservationConflict = errors.New("lrm: reservation conflicts with existing reservations")
	ErrReservationExpired  = errors.New("lrm: reservation window has ended")
	ErrPastStart           = errors.New("lrm: reservation start is in the past")
)

// reservedAtLocked sums reservation carve-outs active at time t. Caller
// holds m.mu.
func (m *Machine) reservedAtLocked(t time.Duration) int {
	total := 0
	for _, r := range m.reservations {
		if r.Start <= t && t < r.End {
			total += r.Count
		}
	}
	return total
}

// Reserve books count processors for [start, start+duration). It fails if
// the window would oversubscribe the machine against existing
// reservations.
func (m *Machine) Reserve(count int, start, duration time.Duration) (*Reservation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, ErrMachineDown
	}
	if count <= 0 {
		return nil, ErrBadCount
	}
	if count > m.processors {
		return nil, ErrTooLarge
	}
	if start < m.sim.Now() {
		return nil, ErrPastStart
	}
	end := start + duration
	// Capacity must hold at every point of the window; checking at all
	// reservation boundaries inside the window suffices.
	points := []time.Duration{start}
	for _, r := range m.reservations {
		if r.Start > start && r.Start < end {
			points = append(points, r.Start)
		}
	}
	for _, p := range points {
		if m.reservedAtLocked(p)+count > m.processors {
			return nil, ErrReservationConflict
		}
	}
	m.nextResID++
	res := &Reservation{
		ID:    fmt.Sprintf("%s/res%d", m.name, m.nextResID),
		Start: start,
		End:   end,
		Count: count,
	}
	m.reservations[res.ID] = res
	return res, nil
}

// CancelReservation releases a reservation.
func (m *Machine) CancelReservation(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.reservations, id)
}

// Reservations lists current reservations sorted by start time.
func (m *Machine) Reservations() []*Reservation {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Reservation, 0, len(m.reservations))
	for _, r := range m.reservations {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// EarliestSlot finds the earliest start at or after notBefore when count
// processors can be reserved for duration, considering existing
// reservations. The best-effort batch queue is not consulted: reservations
// preempt it by construction.
func (m *Machine) EarliestSlot(count int, duration, notBefore time.Duration) (time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if count <= 0 {
		return 0, ErrBadCount
	}
	if count > m.processors {
		return 0, ErrTooLarge
	}
	if now := m.sim.Now(); notBefore < now {
		notBefore = now
	}
	// Candidate starts: notBefore and every reservation end after it.
	candidates := []time.Duration{notBefore}
	for _, r := range m.reservations {
		if r.End > notBefore {
			candidates = append(candidates, r.End)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	for _, start := range candidates {
		if m.windowFitsLocked(count, start, start+duration) {
			return start, nil
		}
	}
	return 0, ErrReservationConflict
}

// windowFitsLocked reports whether count processors are free of
// reservations throughout [start, end). Caller holds m.mu.
func (m *Machine) windowFitsLocked(count int, start, end time.Duration) bool {
	points := []time.Duration{start}
	for _, r := range m.reservations {
		if r.Start > start && r.Start < end {
			points = append(points, r.Start)
		}
	}
	for _, p := range points {
		if m.reservedAtLocked(p)+count > m.processors {
			return false
		}
	}
	return true
}

// startReserved waits for the reservation window, launches the job, and
// enforces the window's end as a hard limit.
func (m *Machine) startReserved(job *Job, res *Reservation) {
	m.sim.SleepUntil(res.Start)
	if m.sim.Now() >= res.End {
		m.finishJob(job, StateFailed, ErrReservationExpired.Error())
		return
	}
	m.launch(job)
	m.sim.AfterFuncPassive(res.End-m.sim.Now(), func() {
		m.finishJob(job, StateFailed, "reservation window ended")
	})
	job.done.Wait()
	m.CancelReservation(res.ID)
}
