package lrm

import (
	"errors"
	"testing"
	"time"

	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

func newResMachine(procs int) (*vtime.Sim, *Machine) {
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	host := net.AddHost("sp2")
	m := NewMachine(host, procs, Config{Mode: Batch})
	m.RegisterExecutable("work", func(p *Proc) error { return p.Work(10*time.Second, time.Second) })
	return sim, m
}

func TestReserveAdmission(t *testing.T) {
	sim, m := newResMachine(16)
	err := sim.Run("main", func() {
		r1, err := m.Reserve(10, time.Minute, time.Minute)
		if err != nil {
			t.Errorf("Reserve r1: %v", err)
			return
		}
		// Overlapping second reservation beyond capacity fails.
		if _, err := m.Reserve(10, 90*time.Second, time.Minute); !errors.Is(err, ErrReservationConflict) {
			t.Errorf("oversubscribing Reserve = %v, want conflict", err)
		}
		// Disjoint window is fine.
		if _, err := m.Reserve(10, 3*time.Minute, time.Minute); err != nil {
			t.Errorf("disjoint Reserve: %v", err)
		}
		// Fits beside r1.
		if _, err := m.Reserve(6, 90*time.Second, 10*time.Second); err != nil {
			t.Errorf("fitting Reserve: %v", err)
		}
		m.CancelReservation(r1.ID)
		if _, err := m.Reserve(10, 90*time.Second, time.Minute); err != nil {
			t.Errorf("Reserve after cancel: %v", err)
		}
		if _, err := m.Reserve(0, time.Minute, time.Minute); !errors.Is(err, ErrBadCount) {
			t.Errorf("zero count: %v", err)
		}
		if _, err := m.Reserve(17, time.Minute, time.Minute); !errors.Is(err, ErrTooLarge) {
			t.Errorf("too large: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestReserveInPastFails(t *testing.T) {
	sim, m := newResMachine(16)
	err := sim.Run("main", func() {
		sim.Sleep(time.Minute)
		if _, err := m.Reserve(4, 30*time.Second, time.Minute); !errors.Is(err, ErrPastStart) {
			t.Errorf("past Reserve = %v, want ErrPastStart", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestEarliestSlotSkipsConflicts(t *testing.T) {
	sim, m := newResMachine(16)
	err := sim.Run("main", func() {
		if _, err := m.Reserve(16, time.Minute, time.Minute); err != nil {
			t.Errorf("Reserve: %v", err)
			return
		}
		// Whole machine is taken for [60s,120s): a 1-hour 8-proc slot
		// starting "now" cannot fit before 120s.
		slot, err := m.EarliestSlot(8, time.Hour, 0)
		if err != nil {
			t.Errorf("EarliestSlot: %v", err)
			return
		}
		if slot != 2*time.Minute {
			t.Errorf("slot = %v, want 2m", slot)
		}
		// A small job that ends before the big reservation starts fits now.
		slot2, err := m.EarliestSlot(8, 30*time.Second, 0)
		if err != nil {
			t.Errorf("EarliestSlot small: %v", err)
			return
		}
		if slot2 != 0 {
			t.Errorf("small slot = %v, want 0", slot2)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestReservedJobStartsAtWindow(t *testing.T) {
	sim, m := newResMachine(16)
	err := sim.Run("main", func() {
		res, err := m.Reserve(8, time.Minute, 5*time.Minute)
		if err != nil {
			t.Errorf("Reserve: %v", err)
			return
		}
		job, err := m.Submit(JobSpec{Executable: "work", Count: 8, ReservationID: res.ID})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		job.Done().Wait()
		if job.State() != StateDone {
			t.Errorf("state = %v (%s)", job.State(), job.Reason())
		}
		want := time.Minute + DefaultCosts.ProcStartup + 10*time.Second
		if sim.Now() != want {
			t.Errorf("reserved job finished at %v, want %v", sim.Now(), want)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestReservedJobKilledAtWindowEnd(t *testing.T) {
	sim, m := newResMachine(16)
	m.RegisterExecutable("forever", func(p *Proc) error { return p.Work(time.Hour, time.Second) })
	err := sim.Run("main", func() {
		res, err := m.Reserve(8, time.Minute, time.Minute)
		if err != nil {
			t.Errorf("Reserve: %v", err)
			return
		}
		job, err := m.Submit(JobSpec{Executable: "forever", Count: 8, ReservationID: res.ID})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		job.Done().Wait()
		if job.State() != StateFailed {
			t.Errorf("state = %v, want FAILED at window end", job.State())
		}
		if sim.Now() != 2*time.Minute {
			t.Errorf("killed at %v, want 2m", sim.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestReservationCarveOutBlocksBatchQueue(t *testing.T) {
	sim, m := newResMachine(16)
	err := sim.Run("main", func() {
		// Reserve the whole machine starting now.
		if _, err := m.Reserve(16, 0, time.Minute); err != nil {
			t.Errorf("Reserve: %v", err)
			return
		}
		job, err := m.Submit(JobSpec{Executable: "work", Count: 4, TimeLimit: time.Minute})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		sim.Sleep(time.Second)
		if job.State() != StatePending {
			t.Errorf("batch job state = %v, want PENDING during reservation window", job.State())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSubmitWithUnknownOrUndersizedReservation(t *testing.T) {
	sim, m := newResMachine(16)
	err := sim.Run("main", func() {
		if _, err := m.Submit(JobSpec{Executable: "work", Count: 4, ReservationID: "nope"}); err == nil {
			t.Error("Submit with unknown reservation succeeded")
		}
		res, err := m.Reserve(2, time.Minute, time.Minute)
		if err != nil {
			t.Errorf("Reserve: %v", err)
			return
		}
		if _, err := m.Submit(JobSpec{Executable: "work", Count: 4, ReservationID: res.ID}); err == nil {
			t.Error("Submit larger than reservation succeeded")
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
