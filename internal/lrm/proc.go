package lrm

import (
	"time"

	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// Proc is the execution context handed to a simulated application
// process: its identity within the job, its environment, and interruptible
// blocking primitives that observe job cancellation.
type Proc struct {
	sim     *vtime.Sim
	host    *transport.Host
	machine *Machine
	job     *Job

	// Rank is this process's rank within its job (0-based).
	Rank int
	// Count is the number of processes in the job.
	Count int
	// Env carries submission environment values (e.g. the DUROC contact).
	Env map[string]string
}

// Sim returns the kernel.
func (p *Proc) Sim() *vtime.Sim { return p.sim }

// Host returns the machine's network host, for dialing out.
func (p *Proc) Host() *transport.Host { return p.host }

// JobID returns the local job identifier.
func (p *Proc) JobID() string { return p.job.id }

// Getenv returns an environment value, or "" if unset.
func (p *Proc) Getenv(key string) string {
	if p.Env == nil {
		return ""
	}
	return p.Env[key]
}

// Killed reports whether the job has been killed.
func (p *Proc) Killed() bool { return p.job.kill.IsSet() }

// KillEvent returns the job's kill event for custom waits.
func (p *Proc) KillEvent() *vtime.Event { return p.job.kill }

// Sleep blocks for d of virtual time, returning ErrKilled early if the job
// is killed.
func (p *Proc) Sleep(d time.Duration) error {
	if p.job.kill.WaitTimeout(d) {
		return ErrKilled
	}
	return nil
}

// Suspended reports whether the job is currently suspended.
func (p *Proc) Suspended() bool { return p.job.suspension() != nil }

// PauseWhileSuspended blocks while the job is suspended, returning
// ErrKilled if it is killed in the meantime.
func (p *Proc) PauseWhileSuspended() error {
	for {
		ev := p.job.suspension()
		if ev == nil {
			if p.Killed() {
				return ErrKilled
			}
			return nil
		}
		ev.Wait()
	}
}

// Work simulates computation in interruptible steps: it sleeps for total,
// checking for cancellation every step and pausing while the job is
// suspended (suspended wall time does not count as progress, at step
// granularity).
func (p *Proc) Work(total, step time.Duration) error {
	if step <= 0 {
		step = total
	}
	for total > 0 {
		if err := p.PauseWhileSuspended(); err != nil {
			return err
		}
		d := step
		if d > total {
			d = total
		}
		if err := p.Sleep(d); err != nil {
			return err
		}
		total -= d
	}
	return nil
}
