package lrm

import "time"

// The batch scheduler's shadow-time and queue-wait estimates need the
// running set's expected releases in ascending end order. The old code
// rebuilt that order from scratch on every scheduling pass — copy the
// running map, sort, discard — which is O(R log R) of allocation and
// comparison per job completion. At million-job scale those scans dominate
// the profile. The releaseIndex below maintains the order incrementally: a
// binary min-heap of (end, seq) entries updated in O(log R) as jobs start,
// consulted with reusable scratch buffers so steady-state scheduling does
// not allocate.
//
// Deletion is lazy. m.running stays the ground truth; an index entry is
// live only while its job is still in m.running with the same expected
// end. Entries for finished jobs surface at the heap top eventually and
// are dropped there. The property test in scale_test.go drives random
// start/finish interleavings and checks every consultation against a naive
// recompute from m.running.

// releaseEntry is one expected job release.
type releaseEntry struct {
	at    time.Duration // expected end (start + wall limit)
	procs int
	job   *Job
	seq   uint64 // push order, tie-break for deterministic ascent
}

// releaseIndex is a min-heap of releaseEntry ordered by (at, seq).
type releaseIndex struct {
	h       []releaseEntry
	nextSeq uint64
}

func (ri *releaseIndex) len() int { return len(ri.h) }

// note records a job's expected release.
func (ri *releaseIndex) note(job *Job, at time.Duration) {
	ri.nextSeq++
	ri.push(releaseEntry{at: at, procs: job.spec.Count, job: job, seq: ri.nextSeq})
}

func (ri *releaseIndex) push(e releaseEntry) {
	ri.h = append(ri.h, e)
	i := len(ri.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !releaseLess(ri.h[i], ri.h[parent]) {
			break
		}
		ri.h[i], ri.h[parent] = ri.h[parent], ri.h[i]
		i = parent
	}
}

// pop removes and returns the minimum entry. The caller is responsible for
// stale filtering.
func (ri *releaseIndex) pop() (releaseEntry, bool) {
	if len(ri.h) == 0 {
		return releaseEntry{}, false
	}
	top := ri.h[0]
	n := len(ri.h) - 1
	ri.h[0] = ri.h[n]
	ri.h[n] = releaseEntry{}
	ri.h = ri.h[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && releaseLess(ri.h[right], ri.h[left]) {
			least = right
		}
		if !releaseLess(ri.h[least], ri.h[i]) {
			break
		}
		ri.h[i], ri.h[least] = ri.h[least], ri.h[i]
		i = least
	}
	return top, true
}

func releaseLess(a, b releaseEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// ascendReleasesLocked visits live releases in ascending (end, push) order
// until fn returns false. Visited live entries are re-filed with their
// original sequence numbers (so revisits keep the same order); stale
// entries — job finished, no longer in m.running — are dropped for good.
// Caller holds m.mu.
func (m *Machine) ascendReleasesLocked(fn func(at time.Duration, procs int) bool) {
	visited := m.relScratch[:0]
	for {
		e, ok := m.releases.pop()
		if !ok {
			break
		}
		if end, running := m.running[e.job]; !running || end != e.at {
			continue
		}
		visited = append(visited, e)
		if !fn(e.at, e.procs) {
			break
		}
	}
	for _, e := range visited {
		m.releases.push(e)
	}
	m.relScratch = visited[:0]
}

// relPoint is a (release time, processor count) pair used by the
// queue-wait simulation's reusable scratch.
type relPoint struct {
	at    time.Duration
	procs int
}
