package lrm

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// naiveShadowLocked is the pre-index shadow-time computation: copy the
// running map, sort by expected end, accumulate. It is the oracle the
// incremental release index must agree with. Caller holds m.mu.
func naiveShadowLocked(m *Machine, need int) time.Duration {
	avail := m.availableLocked()
	if need <= avail {
		return m.sim.Now()
	}
	type rel struct {
		at    time.Duration
		procs int
	}
	rels := make([]rel, 0, len(m.running))
	for job, end := range m.running {
		rels = append(rels, rel{at: end, procs: job.spec.Count})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].at < rels[j].at })
	for _, r := range rels {
		avail += r.procs
		if need <= avail {
			return r.at
		}
	}
	return m.sim.Now() + defaultLimit
}

// naiveAscendLocked lists live releases sorted by (at) from the running
// map, for comparing the index's ascent order. Caller holds m.mu.
func naiveAscendLocked(m *Machine) []relPoint {
	out := make([]relPoint, 0, len(m.running))
	for job, end := range m.running {
		out = append(out, relPoint{at: end, procs: job.spec.Count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}

// TestReleaseIndexMatchesNaiveRecompute drives a batch machine through
// random start/finish interleavings (via runningAdd and the real removal
// path's delete) and checks, after every mutation, that the incremental
// release index reproduces the naive recompute: same ascent multiset and
// same shadow time for every relevant request size.
func TestReleaseIndexMatchesNaiveRecompute(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sim := vtime.NewSeeded(seed)
			net := transport.New(sim, transport.UniformLatency(time.Millisecond))
			host := net.AddHost("origin")
			m := NewMachine(host, 512, Config{Mode: Batch})
			rng := rand.New(rand.NewSource(seed * 97))
			err := sim.Run("driver", func() {
				var active []*Job
				check := func() {
					m.mu.Lock()
					defer m.mu.Unlock()
					// Ascent order: same (at, procs) sequence as sorting the
					// running map. Ties in at may permute, so compare as
					// multisets bucketed by at.
					var got []relPoint
					m.ascendReleasesLocked(func(at time.Duration, procs int) bool {
						got = append(got, relPoint{at: at, procs: procs})
						return true
					})
					want := naiveAscendLocked(m)
					if len(got) != len(want) {
						t.Fatalf("ascent visited %d releases, naive has %d", len(got), len(want))
					}
					sort.Slice(got, func(i, j int) bool {
						if got[i].at != got[j].at {
							return got[i].at < got[j].at
						}
						return got[i].procs < got[j].procs
					})
					sort.Slice(want, func(i, j int) bool {
						if want[i].at != want[j].at {
							return want[i].at < want[j].at
						}
						return want[i].procs < want[j].procs
					})
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("ascent[%d] = %+v, naive %+v", i, got[i], want[i])
						}
					}
					// Shadow times agree for every request size that matters.
					for _, need := range []int{1, 32, 256, 512} {
						if g, w := m.shadowTimeIndexLocked(need), naiveShadowLocked(m, need); g != w {
							t.Fatalf("shadow(need=%d) index=%v naive=%v", need, g, w)
						}
					}
					// Index never leaks: at most one entry (live or stale)
					// per runningAdd call, and every live job is found.
					if m.releases.len() < len(m.running) {
						t.Fatalf("index holds %d entries, %d jobs running", m.releases.len(), len(m.running))
					}
				}
				for step := 0; step < 400; step++ {
					switch {
					case rng.Intn(3) > 0 && len(m.running) < 64:
						// Start: mimic the scheduler's bookkeeping.
						m.mu.Lock()
						m.nextJobID++
						job := &Job{
							machine: m,
							id:      fmt.Sprintf("%s/job%d", m.name, m.nextJobID),
							spec:    JobSpec{Count: 1 + rng.Intn(64), TimeLimit: time.Duration(rng.Intn(3600)) * time.Second},
						}
						m.runningAdd(job)
						m.mu.Unlock()
						active = append(active, job)
					case len(active) > 0:
						// Finish: the same delete finishJob performs.
						i := rng.Intn(len(active))
						job := active[i]
						active[i] = active[len(active)-1]
						active = active[:len(active)-1]
						m.mu.Lock()
						delete(m.running, job)
						m.mu.Unlock()
					}
					check()
					if rng.Intn(4) == 0 {
						sim.Sleep(time.Duration(rng.Intn(int(time.Minute))))
					}
				}
			})
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
		})
	}
}

// shadowTimeIndexLocked is shadowTimeLocked generalized to a raw request
// size, so the property test can probe sizes without fabricating head
// jobs. Caller holds m.mu.
func (m *Machine) shadowTimeIndexLocked(need int) time.Duration {
	avail := m.availableLocked()
	if need <= avail {
		return m.sim.Now()
	}
	shadow := m.sim.Now() + defaultLimit
	m.ascendReleasesLocked(func(at time.Duration, procs int) bool {
		avail += procs
		if need <= avail {
			shadow = at
			return false
		}
		return true
	})
	return shadow
}

// TestBatchStress queues 10⁵ jobs on one large batch machine and runs the
// backlog to completion — the single-machine slice of the B4 scale study,
// exercising the release index, the bounded backfill scan, the passive
// wall-limit timers, and terminal-job retirement under real scheduling.
func TestBatchStress(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-job stress run skipped in -short mode")
	}
	const jobs = 100_000
	sim := vtime.NewSeeded(42)
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	host := net.AddHost("origin")
	m := NewMachine(host, 1024, Config{
		Mode:           Batch,
		Costs:          Costs{Fork: time.Millisecond, ProcStartup: time.Millisecond},
		RetireTerminal: true,
	})
	rng := rand.New(rand.NewSource(7))
	m.RegisterExecutable("work", func(p *Proc) error {
		return p.Work(time.Duration(1+p.Rank%120)*time.Second, time.Minute)
	})
	err := sim.Run("driver", func() {
		handles := make([]*Job, 0, jobs)
		for i := 0; i < jobs; i++ {
			job, err := m.Submit(JobSpec{
				Executable: "work",
				Count:      1 + rng.Intn(32),
				TimeLimit:  time.Hour,
			})
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			handles = append(handles, job)
		}
		for _, job := range handles {
			job.Done().Wait()
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	st := m.Stats()
	if st.Done+st.Failed != jobs {
		t.Fatalf("Stats done=%d failed=%d, want total %d", st.Done, st.Failed, jobs)
	}
	if st.Failed != 0 {
		t.Fatalf("%d jobs failed; first-class batch work should all finish", st.Failed)
	}
	// Processor conservation after quiescence.
	if free := m.FreeProcessors(); free != m.Processors() {
		t.Fatalf("FreeProcessors = %d after quiescence, want %d", free, m.Processors())
	}
	// RetireTerminal bounds the job table.
	m.mu.Lock()
	tableLen := len(m.jobs)
	idxLen := m.releases.len()
	// Lazy deletion may leave entries that went stale after the final
	// ascent; all of them must be stale (their jobs finished), and the
	// next ascent would drain them.
	stale := 0
	for _, e := range m.releases.h {
		if _, running := m.running[e.job]; !running {
			stale++
		}
	}
	m.mu.Unlock()
	if tableLen != 0 {
		t.Fatalf("job table holds %d entries after retirement", tableLen)
	}
	if stale != idxLen {
		t.Fatalf("release index holds %d live entries after quiescence", idxLen-stale)
	}
}
