// Package lrm implements local resource managers: the per-machine
// schedulers (LoadLeveler, PBS, NQE in the paper's related work) that GRAM
// submits jobs to.
//
// A Machine runs in one of two modes. Fork mode starts processes
// immediately — the configuration the paper's microbenchmarks used "to
// eliminate any source of queuing delay". Batch mode runs a FCFS queue
// with EASY backfill and wall-time limits, used by the application-scale
// experiments. Machines also keep an advance-reservation table for the
// co-reservation extension (the paper's §5 future work).
package lrm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cogrid/internal/metrics"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// Errors returned by machine operations.
var (
	ErrUnknownExecutable = errors.New("lrm: unknown executable")
	ErrBadCount          = errors.New("lrm: process count must be positive")
	ErrTooLarge          = errors.New("lrm: request exceeds machine size")
	ErrMachineDown       = errors.New("lrm: machine is down")
	ErrKilled            = errors.New("lrm: process killed")
	ErrNoSuchJob         = errors.New("lrm: no such job")
)

// Mode selects the scheduling discipline.
type Mode int

const (
	// Fork starts processes immediately, with no queueing.
	Fork Mode = iota
	// Batch queues jobs FCFS with EASY backfill.
	Batch
)

func (m Mode) String() string {
	if m == Fork {
		return "fork"
	}
	return "batch"
}

// JobState is the lifecycle state of a job, mirroring GRAM's state machine.
type JobState int

const (
	// StatePending means queued, not yet running.
	StatePending JobState = iota
	// StateActive means processes are running.
	StateActive
	// StateDone means all processes exited successfully.
	StateDone
	// StateFailed means a process failed or a limit was exceeded.
	StateFailed
	// StateCancelled means the job was killed on request.
	StateCancelled
	// StateSuspended means the job's processes are paused.
	StateSuspended
)

func (s JobState) String() string {
	switch s {
	case StatePending:
		return "PENDING"
	case StateActive:
		return "ACTIVE"
	case StateDone:
		return "DONE"
	case StateFailed:
		return "FAILED"
	case StateCancelled:
		return "CANCELLED"
	case StateSuspended:
		return "SUSPENDED"
	}
	return "INVALID"
}

// Terminal reports whether no further transitions can occur.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Costs models the local overheads of job management.
type Costs struct {
	// Fork is the per-job cost of creating processes (Figure 3: 0.001 s).
	Fork time.Duration
	// ProcStartup is the time a created process spends loading and
	// initializing before application code runs. Together with the GRAM
	// protocol costs this reproduces the ~2 s single-subjob latency of
	// Figure 4.
	ProcStartup time.Duration
}

// DefaultCosts is the Figure 3 / Figure 4 calibration.
var DefaultCosts = Costs{Fork: time.Millisecond, ProcStartup: 750 * time.Millisecond}

// ExecFunc is a simulated application executable. It runs once per
// process; a non-nil error marks the process (and hence the job) failed.
type ExecFunc func(p *Proc) error

// Machine is a parallel computer under the control of one local resource
// manager.
type Machine struct {
	sim        *vtime.Sim
	host       *transport.Host
	name       string
	processors int
	mode       Mode
	costs      Costs
	retire     bool
	backfill   int

	// Metric handles are resolved once, on the first launch, and cached:
	// the registry lookup and the per-machine gauge-name concatenation used
	// to run once per job, which is measurable garbage at 10⁶ jobs.
	metricsOnce sync.Once
	queueWait   *metrics.Histogram
	service     *metrics.Histogram
	busy        *metrics.Gauge

	mu         sync.Mutex
	execs      map[string]ExecFunc
	jobs       map[string]*Job
	nextJobID  int
	freeProcs  int
	queue      []*Job                 // batch: pending jobs, FCFS order
	running    map[*Job]time.Duration // batch: active job -> expected end
	releases   releaseIndex           // batch: running releases, ascending
	relScratch []releaseEntry
	estScratch []relPoint
	slowFactor float64
	down       bool
	doneJobs   int64
	failedJobs int64

	reservations map[string]*Reservation
	nextResID    int
}

// defaultBackfillDepth bounds how many queued jobs one scheduling pass
// considers for backfill behind a blocked head. An unbounded scan is
// O(queue²) across a draining backlog, which a 10⁵-job queue cannot
// afford; candidates past the window simply wait for a later pass.
const defaultBackfillDepth = 256

// Config carries optional machine settings.
type Config struct {
	Mode  Mode
	Costs Costs // zero value replaced by DefaultCosts
	// RetireTerminal drops jobs from the machine's job table once they
	// reach a terminal state, so a long simulation's memory stays
	// proportional to live work rather than total history. Job() lookups
	// for retired jobs return ErrNoSuchJob; Stats() keeps the counts.
	RetireTerminal bool
	// BackfillDepth overrides how many queued jobs behind a blocked head
	// each scheduling pass considers for backfill. Zero means
	// defaultBackfillDepth; negative means unbounded.
	BackfillDepth int
}

// NewMachine creates a machine with the given processor count on host.
func NewMachine(host *transport.Host, processors int, cfg Config) *Machine {
	costs := cfg.Costs
	if costs == (Costs{}) {
		costs = DefaultCosts
	}
	backfill := cfg.BackfillDepth
	if backfill == 0 {
		backfill = defaultBackfillDepth
	}
	return &Machine{
		sim:          host.Network().Sim(),
		host:         host,
		name:         host.Name(),
		processors:   processors,
		mode:         cfg.Mode,
		costs:        costs,
		retire:       cfg.RetireTerminal,
		backfill:     backfill,
		execs:        make(map[string]ExecFunc),
		jobs:         make(map[string]*Job),
		freeProcs:    processors,
		slowFactor:   1,
		reservations: make(map[string]*Reservation),
	}
}

// metricHandles resolves the machine's metric handles on first use. Both
// registries are nil-safe, so the cached handles may legitimately be nil.
func (m *Machine) metricHandles() {
	m.metricsOnce.Do(func() {
		net := m.host.Network()
		m.queueWait = net.Hists().H("lrm.queue.wait")
		m.service = net.Hists().H("lrm.job.service")
		m.busy = net.Gauges().G("lrm.busy@" + m.host.Name())
	})
}

// Stats is a machine's cumulative job accounting.
type Stats struct {
	Done   int64 // jobs that reached StateDone
	Failed int64 // jobs that reached StateFailed or StateCancelled
}

// Stats returns cumulative terminal-job counts. Unlike the jobs table,
// these survive RetireTerminal.
func (m *Machine) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Done: m.doneJobs, Failed: m.failedJobs}
}

// Name returns the machine (host) name.
func (m *Machine) Name() string { return m.name }

// Host returns the machine's network host.
func (m *Machine) Host() *transport.Host { return m.host }

// Processors returns the machine size.
func (m *Machine) Processors() int { return m.processors }

// Mode returns the scheduling mode.
func (m *Machine) Mode() Mode { return m.mode }

// RegisterExecutable installs a named application executable.
func (m *Machine) RegisterExecutable(name string, fn ExecFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.execs[name] = fn
}

// SetSlowFactor scales process startup time; the "system was overloaded
// with other work" failure mode from the paper's Section 2 scenario.
func (m *Machine) SetSlowFactor(f float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f < 1 {
		f = 1
	}
	m.slowFactor = f
}

// SetDown marks the machine's resource manager down (submissions fail) or
// back up.
func (m *Machine) SetDown(down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down = down
}

// LiveJobs counts jobs that have not reached a terminal state — the
// machine-side ground truth a chaos run checks against zero after
// quiescence: any survivor is a leaked allocation whose cancel never
// landed. Job states are read outside m.mu (each Job has its own lock,
// taken by completion paths that also take m.mu), so the count is a
// snapshot, exact once the machine is quiescent.
func (m *Machine) LiveJobs() int {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	live := 0
	for _, j := range jobs {
		if !j.State().Terminal() {
			live++
		}
	}
	return live
}

// FreeProcessors returns the batch scheduler's idle-processor count.
// Fork-mode machines do not meter processors and always report the full
// machine size. Once a batch machine is quiescent — no live jobs, no held
// reservations — the count must equal Processors(); any other value means
// the allocate/release accounting double-counted somewhere, which is the
// processor-conservation invariant the simulation-testing harness checks.
func (m *Machine) FreeProcessors() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.mode == Fork {
		return m.processors
	}
	return m.freeProcs
}

// JobSpec describes one job submission.
type JobSpec struct {
	Executable string
	Count      int
	Env        map[string]string
	// TimeLimit is the batch wall-time limit; the job is killed when it
	// expires. Zero means unlimited.
	TimeLimit time.Duration
	// ReservationID binds the job to an advance reservation.
	ReservationID string
}

// Job is a submitted job.
type Job struct {
	machine *Machine
	id      string
	spec    JobSpec

	mu        sync.Mutex
	state     JobState
	reason    string
	liveProcs int
	failed    bool
	released  bool

	kill     *vtime.Event
	done     *vtime.Event
	events   *vtime.Chan[JobState]
	startRes *Reservation
	queuedAt time.Duration // when the job was accepted by Submit
	startAt  time.Duration // when the job became active
	resumeEv *vtime.Event  // non-nil while suspended
}

// ID returns the machine-unique job identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the submitted specification.
func (j *Job) Spec() JobSpec { return j.spec }

// State returns the current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Reason describes why the job reached a terminal state.
func (j *Job) Reason() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reason
}

// Events returns the job's state-transition stream. It carries every
// transition in order and is closed after the terminal state is delivered.
// There must be at most one consumer.
func (j *Job) Events() *vtime.Chan[JobState] { return j.events }

// Done returns an event set when the job reaches a terminal state.
func (j *Job) Done() *vtime.Event { return j.done }

// KillEvent returns the event processes watch for cancellation.
func (j *Job) KillEvent() *vtime.Event { return j.kill }

// setState transitions the job, delivering the event. Terminal states
// close the event stream and set done.
func (j *Job) setState(s JobState, reason string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	if reason != "" {
		j.reason = reason
	}
	terminal := s.Terminal()
	var release *vtime.Event
	if terminal && j.resumeEv != nil {
		// Wake suspended processes so they can observe the kill.
		release = j.resumeEv
		j.resumeEv = nil
	}
	j.mu.Unlock()
	if release != nil {
		release.Set()
	}
	j.events.TrySend(s)
	if terminal {
		j.events.Close()
		j.kill.Set()
		j.done.Set()
	}
}

// Suspend pauses the job's processes: interruptible work stops consuming
// progress until Resume. Only an active job can be suspended.
func (j *Job) Suspend() error {
	j.mu.Lock()
	if j.state != StateActive {
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("lrm: cannot suspend job in state %v", state)
	}
	j.resumeEv = vtime.NewEvent(j.machine.sim, "resume:"+j.id)
	j.mu.Unlock()
	j.setState(StateSuspended, "")
	return nil
}

// Resume continues a suspended job.
func (j *Job) Resume() error {
	j.mu.Lock()
	if j.state != StateSuspended {
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("lrm: cannot resume job in state %v", state)
	}
	release := j.resumeEv
	j.resumeEv = nil
	j.mu.Unlock()
	j.setState(StateActive, "")
	if release != nil {
		release.Set()
	}
	return nil
}

// suspension returns the event processes must wait on, or nil when
// running.
func (j *Job) suspension() *vtime.Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resumeEv
}

// Cancel kills the job. It is the collective "kill" control operation of
// Section 3.4 applied to one subjob.
func (j *Job) Cancel() {
	j.machine.finishJob(j, StateCancelled, "cancelled by request")
}

// Submit submits a job. In fork mode it returns once processes are
// created; in batch mode it returns with the job queued.
func (m *Machine) Submit(spec JobSpec) (*Job, error) {
	m.mu.Lock()
	if m.down {
		m.mu.Unlock()
		return nil, ErrMachineDown
	}
	if spec.Count <= 0 {
		m.mu.Unlock()
		return nil, ErrBadCount
	}
	if _, ok := m.execs[spec.Executable]; !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownExecutable, spec.Executable)
	}
	if m.mode == Batch && spec.Count > m.processors {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, spec.Count, m.processors)
	}
	var res *Reservation
	if spec.ReservationID != "" {
		res = m.reservations[spec.ReservationID]
		if res == nil {
			m.mu.Unlock()
			return nil, fmt.Errorf("lrm: unknown reservation %q", spec.ReservationID)
		}
		if res.Count < spec.Count {
			m.mu.Unlock()
			return nil, fmt.Errorf("lrm: reservation %q holds %d processors, job needs %d",
				spec.ReservationID, res.Count, spec.Count)
		}
	}
	m.nextJobID++
	job := &Job{
		machine:  m,
		id:       fmt.Sprintf("%s/job%d", m.name, m.nextJobID),
		spec:     spec,
		state:    StatePending,
		kill:     vtime.NewEvent(m.sim, "kill"),
		done:     vtime.NewEvent(m.sim, "done"),
		startRes: res,
		queuedAt: m.sim.Now(),
	}
	job.events = vtime.NewChan[JobState](m.sim, "job-events:"+job.id, 16)
	m.jobs[job.id] = job
	m.mu.Unlock()

	switch {
	case res != nil:
		m.sim.GoDaemon("reserved-start:"+job.id, func() { m.startReserved(job, res) })
	case m.mode == Fork:
		m.sim.Sleep(m.costs.Fork)
		m.launch(job)
	default:
		m.mu.Lock()
		m.queue = append(m.queue, job)
		m.mu.Unlock()
		m.schedule()
	}
	return job, nil
}

// Job returns a submitted job by ID.
func (m *Machine) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNoSuchJob
	}
	return j, nil
}

// launch transitions a job to Active and spawns its processes. In batch
// mode the caller has already debited freeProcs.
func (m *Machine) launch(job *Job) {
	m.mu.Lock()
	fn := m.execs[job.spec.Executable]
	slow := m.slowFactor
	m.mu.Unlock()

	job.mu.Lock()
	if job.state.Terminal() { // cancelled while queued
		job.mu.Unlock()
		return
	}
	job.liveProcs = job.spec.Count
	job.startAt = m.sim.Now()
	queuedAt := job.queuedAt
	job.mu.Unlock()
	m.metricHandles()
	// Queue service wait: accept-to-launch latency. In fork mode this is
	// the fork cost; in batch mode it includes FCFS/backfill queueing.
	m.queueWait.Record(int64(m.sim.Now() - queuedAt))
	// Per-machine utilization gauge: processors busy running application
	// processes. Decremented symmetrically when finishJob releases them.
	m.busy.Add(float64(job.spec.Count))
	job.setState(StateActive, "")

	if job.spec.TimeLimit > 0 {
		// finishJob never blocks on kernel primitives, so wall-limit
		// enforcement rides the passive dispatch pool instead of paying a
		// goroutine per running job.
		m.sim.AfterFuncPassive(job.spec.TimeLimit, func() {
			m.finishJob(job, StateFailed, "wall-time limit exceeded")
		})
	}
	startup := time.Duration(float64(m.costs.ProcStartup) * slow)
	for rank := 0; rank < job.spec.Count; rank++ {
		p := &Proc{
			sim:     m.sim,
			host:    m.host,
			machine: m,
			job:     job,
			Rank:    rank,
			Count:   job.spec.Count,
			Env:     job.spec.Env,
		}
		m.sim.GoDaemon(fmt.Sprintf("proc:%s/%d", job.id, rank), func() {
			// Process load/init time; interruptible by kill.
			if job.kill.WaitTimeout(startup) {
				m.procExit(job, ErrKilled)
				return
			}
			m.procExit(job, fn(p))
		})
	}
}

// procExit accounts for one process finishing.
func (m *Machine) procExit(job *Job, err error) {
	job.mu.Lock()
	job.liveProcs--
	if err != nil && err != ErrKilled {
		job.failed = true
		if job.reason == "" {
			job.reason = err.Error()
		}
	}
	last := job.liveProcs == 0
	failed := job.failed
	reason := job.reason
	job.mu.Unlock()
	if err != nil && err != ErrKilled {
		// One process failing fails the job and kills its siblings —
		// LoadLeveler/LSF semantics at the single-resource level.
		m.finishJob(job, StateFailed, reason)
		return
	}
	if last {
		if failed {
			m.finishJob(job, StateFailed, reason)
		} else {
			m.finishJob(job, StateDone, "")
		}
	}
}

// finishJob drives a job to a terminal state once, releasing processors.
func (m *Machine) finishJob(job *Job, state JobState, reason string) {
	job.mu.Lock()
	if job.state.Terminal() {
		job.mu.Unlock()
		return
	}
	wasPending := job.state == StatePending
	release := !job.released && !wasPending
	job.released = true
	startAt := job.startAt
	job.mu.Unlock()

	if release {
		m.metricHandles()
		// Launch-to-terminal service time of jobs that actually ran.
		m.service.Record(int64(m.sim.Now() - startAt))
	}

	if wasPending {
		m.mu.Lock()
		for i, q := range m.queue {
			if q == job {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
	}
	job.setState(state, reason)
	if release {
		m.busy.Add(-float64(job.spec.Count))
	}
	m.mu.Lock()
	if state == StateDone {
		m.doneJobs++
	} else {
		m.failedJobs++
	}
	if m.retire {
		delete(m.jobs, job.id)
	}
	m.mu.Unlock()
	if release && m.mode == Batch && job.startRes == nil {
		m.mu.Lock()
		m.freeProcs += job.spec.Count
		// The release index entry goes stale here and is dropped lazily
		// the next time it surfaces during an ascent.
		delete(m.running, job)
		m.mu.Unlock()
		m.schedule()
	}
}
