package lrm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// newMachine builds a machine on a fresh simulation.
func newMachine(procs int, mode Mode) (*vtime.Sim, *Machine) {
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	host := net.AddHost("origin")
	m := NewMachine(host, procs, Config{Mode: mode})
	return sim, m
}

// registerWork installs a "work" executable running for the given time.
func registerWork(m *Machine, d time.Duration) {
	m.RegisterExecutable("work", func(p *Proc) error {
		return p.Work(d, time.Second)
	})
}

func TestForkSubmitStartsImmediately(t *testing.T) {
	sim, m := newMachine(64, Fork)
	registerWork(m, time.Second)
	err := sim.Run("main", func() {
		start := sim.Now()
		job, err := m.Submit(JobSpec{Executable: "work", Count: 4})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if took := sim.Now() - start; took != DefaultCosts.Fork {
			t.Errorf("Submit took %v, want fork cost %v", took, DefaultCosts.Fork)
		}
		if job.State() != StateActive {
			t.Errorf("state after submit = %v, want ACTIVE", job.State())
		}
		job.Done().Wait()
		if job.State() != StateDone {
			t.Errorf("terminal state = %v, want DONE", job.State())
		}
		// fork 1ms + startup 750ms + 1s work
		want := DefaultCosts.Fork + DefaultCosts.ProcStartup + time.Second
		if sim.Now() != want {
			t.Errorf("job finished at %v, want %v", sim.Now(), want)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestForkAllowsOversubscription(t *testing.T) {
	sim, m := newMachine(4, Fork)
	registerWork(m, time.Millisecond)
	err := sim.Run("main", func() {
		job, err := m.Submit(JobSpec{Executable: "work", Count: 16})
		if err != nil {
			t.Errorf("Submit 16 procs on 4-proc fork machine: %v", err)
			return
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestJobEventsStream(t *testing.T) {
	sim, m := newMachine(8, Fork)
	registerWork(m, time.Second)
	err := sim.Run("main", func() {
		job, err := m.Submit(JobSpec{Executable: "work", Count: 2})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		var states []JobState
		for {
			s, ok := job.Events().Recv()
			if !ok {
				break
			}
			states = append(states, s)
		}
		if len(states) != 2 || states[0] != StateActive || states[1] != StateDone {
			t.Errorf("events = %v, want [ACTIVE DONE]", states)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestProcessFailureFailsJobAndKillsSiblings(t *testing.T) {
	sim, m := newMachine(8, Fork)
	m.RegisterExecutable("flaky", func(p *Proc) error {
		if p.Rank == 1 {
			if err := p.Sleep(time.Second); err != nil {
				return err
			}
			return fmt.Errorf("disk check failed")
		}
		// Siblings would run for an hour; the failure must cut them short.
		return p.Work(time.Hour, time.Second)
	})
	err := sim.Run("main", func() {
		job, err := m.Submit(JobSpec{Executable: "flaky", Count: 4})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		job.Done().Wait()
		if job.State() != StateFailed {
			t.Errorf("state = %v, want FAILED", job.State())
		}
		if job.Reason() != "disk check failed" {
			t.Errorf("reason = %q", job.Reason())
		}
		if sim.Now() > 10*time.Second {
			t.Errorf("failure took %v; siblings were not killed promptly", sim.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCancelKillsProcesses(t *testing.T) {
	sim, m := newMachine(8, Fork)
	registerWork(m, time.Hour)
	err := sim.Run("main", func() {
		job, err := m.Submit(JobSpec{Executable: "work", Count: 4})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		sim.Sleep(5 * time.Second)
		job.Cancel()
		if job.State() != StateCancelled {
			t.Errorf("state = %v, want CANCELLED", job.State())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	sim, m := newMachine(8, Batch)
	registerWork(m, time.Second)
	err := sim.Run("main", func() {
		if _, err := m.Submit(JobSpec{Executable: "nope", Count: 1}); !errors.Is(err, ErrUnknownExecutable) {
			t.Errorf("unknown executable: %v", err)
		}
		if _, err := m.Submit(JobSpec{Executable: "work", Count: 0}); !errors.Is(err, ErrBadCount) {
			t.Errorf("zero count: %v", err)
		}
		if _, err := m.Submit(JobSpec{Executable: "work", Count: 9}); !errors.Is(err, ErrTooLarge) {
			t.Errorf("oversized batch job: %v", err)
		}
		m.SetDown(true)
		if _, err := m.Submit(JobSpec{Executable: "work", Count: 1}); !errors.Is(err, ErrMachineDown) {
			t.Errorf("down machine: %v", err)
		}
		m.SetDown(false)
		if _, err := m.Submit(JobSpec{Executable: "work", Count: 1}); err != nil {
			t.Errorf("after restore: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSlowFactorStretchesStartup(t *testing.T) {
	sim, m := newMachine(8, Fork)
	m.RegisterExecutable("noop", func(p *Proc) error { return nil })
	m.SetSlowFactor(10)
	err := sim.Run("main", func() {
		job, err := m.Submit(JobSpec{Executable: "noop", Count: 1})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		job.Done().Wait()
		want := DefaultCosts.Fork + 10*DefaultCosts.ProcStartup
		if sim.Now() != want {
			t.Errorf("slow job finished at %v, want %v", sim.Now(), want)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestBatchFCFSQueueing(t *testing.T) {
	sim, m := newMachine(4, Batch)
	registerWork(m, 10*time.Second)
	err := sim.Run("main", func() {
		a, err := m.Submit(JobSpec{Executable: "work", Count: 4, TimeLimit: time.Minute})
		if err != nil {
			t.Errorf("Submit a: %v", err)
			return
		}
		b, err := m.Submit(JobSpec{Executable: "work", Count: 4, TimeLimit: time.Minute})
		if err != nil {
			t.Errorf("Submit b: %v", err)
			return
		}
		if a.State() != StateActive {
			t.Errorf("first job state = %v, want ACTIVE", a.State())
		}
		if b.State() != StatePending {
			t.Errorf("second job state = %v, want PENDING (machine full)", b.State())
		}
		b.Done().Wait()
		// a: startup 750ms + 10s; b starts when a ends, same again.
		wantA := DefaultCosts.ProcStartup + 10*time.Second
		want := 2 * wantA
		if sim.Now() != want {
			t.Errorf("second job finished at %v, want %v", sim.Now(), want)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestBatchBackfillRunsSmallShortJob(t *testing.T) {
	sim, m := newMachine(4, Batch)
	registerWork(m, 10*time.Second)
	m.RegisterExecutable("short", func(p *Proc) error { return p.Work(time.Second, time.Second) })
	err := sim.Run("main", func() {
		// a occupies 3 of 4 processors for ~10s.
		_, err := m.Submit(JobSpec{Executable: "work", Count: 3, TimeLimit: 20 * time.Second})
		if err != nil {
			t.Errorf("Submit a: %v", err)
			return
		}
		// head needs the whole machine: blocked behind a.
		head, err := m.Submit(JobSpec{Executable: "work", Count: 4, TimeLimit: 20 * time.Second})
		if err != nil {
			t.Errorf("Submit head: %v", err)
			return
		}
		// small short job fits in the hole and finishes before the shadow
		// time: must be backfilled.
		bf, err := m.Submit(JobSpec{Executable: "short", Count: 1, TimeLimit: 5 * time.Second})
		if err != nil {
			t.Errorf("Submit bf: %v", err)
			return
		}
		if bf.State() != StateActive {
			t.Errorf("backfill job state = %v, want ACTIVE", bf.State())
		}
		if head.State() != StatePending {
			t.Errorf("head state = %v, want PENDING", head.State())
		}
		// A long small job must NOT be backfilled: it would delay the head.
		long, err := m.Submit(JobSpec{Executable: "work", Count: 1, TimeLimit: time.Hour})
		if err != nil {
			t.Errorf("Submit long: %v", err)
			return
		}
		if long.State() != StatePending {
			t.Errorf("long small job state = %v, want PENDING (would delay head)", long.State())
		}
		head.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestBatchTimeLimitKillsJob(t *testing.T) {
	sim, m := newMachine(4, Batch)
	registerWork(m, time.Hour)
	err := sim.Run("main", func() {
		job, err := m.Submit(JobSpec{Executable: "work", Count: 2, TimeLimit: 5 * time.Second})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		job.Done().Wait()
		if job.State() != StateFailed {
			t.Errorf("state = %v, want FAILED", job.State())
		}
		if job.Reason() != "wall-time limit exceeded" {
			t.Errorf("reason = %q", job.Reason())
		}
		if sim.Now() != 5*time.Second {
			t.Errorf("killed at %v, want 5s", sim.Now())
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCancelPendingJobLeavesQueue(t *testing.T) {
	sim, m := newMachine(2, Batch)
	registerWork(m, 10*time.Second)
	err := sim.Run("main", func() {
		a, _ := m.Submit(JobSpec{Executable: "work", Count: 2, TimeLimit: time.Minute})
		b, _ := m.Submit(JobSpec{Executable: "work", Count: 2, TimeLimit: time.Minute})
		c, _ := m.Submit(JobSpec{Executable: "work", Count: 2, TimeLimit: time.Minute})
		b.Cancel()
		if b.State() != StateCancelled {
			t.Errorf("cancelled pending job state = %v", b.State())
		}
		c.Done().Wait()
		_ = a
		// c runs right after a: cancelled b must not hold the queue.
		want := 2 * (DefaultCosts.ProcStartup + 10*time.Second)
		if sim.Now() != want {
			t.Errorf("c finished at %v, want %v", sim.Now(), want)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestQueueInfoAndEstimateWait(t *testing.T) {
	sim, m := newMachine(4, Batch)
	registerWork(m, time.Hour)
	err := sim.Run("main", func() {
		m.Submit(JobSpec{Executable: "work", Count: 4, TimeLimit: 100 * time.Second})
		m.Submit(JobSpec{Executable: "work", Count: 2, TimeLimit: 50 * time.Second})
		info := m.QueueInfo()
		if info.RunningJobs != 1 || len(info.QueuedJobs) != 1 || info.FreeProcessors != 0 {
			t.Errorf("QueueInfo = %+v", info)
		}
		// New 4-proc job: waits for running (100s) then queued (50s).
		est := m.EstimateWait(4)
		if est != 150*time.Second {
			t.Errorf("EstimateWait(4) = %v, want 150s", est)
		}
		// A 2-proc job could start beside the queued 2-proc job at 100s.
		est2 := m.EstimateWait(2)
		if est2 != 100*time.Second {
			t.Errorf("EstimateWait(2) = %v, want 100s", est2)
		}
		if m.EstimateWait(5) != defaultLimit {
			t.Errorf("EstimateWait(too big) = %v, want %v", m.EstimateWait(5), defaultLimit)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestProcContext(t *testing.T) {
	sim, m := newMachine(8, Fork)
	ranks := make([]bool, 3)
	m.RegisterExecutable("probe", func(p *Proc) error {
		if p.Count != 3 {
			t.Errorf("Count = %d, want 3", p.Count)
		}
		if p.Getenv("DUROC_INDEX") != "7" {
			t.Errorf("env DUROC_INDEX = %q", p.Getenv("DUROC_INDEX"))
		}
		if p.Getenv("MISSING") != "" {
			t.Errorf("missing env = %q", p.Getenv("MISSING"))
		}
		if p.Host().Name() != "origin" {
			t.Errorf("host = %q", p.Host().Name())
		}
		ranks[p.Rank] = true
		return nil
	})
	err := sim.Run("main", func() {
		job, err := m.Submit(JobSpec{Executable: "probe", Count: 3, Env: map[string]string{"DUROC_INDEX": "7"}})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for r, seen := range ranks {
		if !seen {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestJobLookup(t *testing.T) {
	sim, m := newMachine(8, Fork)
	registerWork(m, time.Millisecond)
	err := sim.Run("main", func() {
		job, _ := m.Submit(JobSpec{Executable: "work", Count: 1})
		got, err := m.Job(job.ID())
		if err != nil || got != job {
			t.Errorf("Job(%q) = %v, %v", job.ID(), got, err)
		}
		if _, err := m.Job("nope"); !errors.Is(err, ErrNoSuchJob) {
			t.Errorf("missing job lookup: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
