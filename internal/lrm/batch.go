package lrm

import (
	"sort"
	"time"
)

// defaultLimit stands in for "unknown runtime" in scheduler arithmetic
// when a job has no wall-time limit.
const defaultLimit = 24 * time.Hour

func limitOf(j *Job) time.Duration {
	if j.spec.TimeLimit > 0 {
		return j.spec.TimeLimit
	}
	return defaultLimit
}

// availableLocked returns processors available to the batch queue now:
// free processors minus active reservation carve-outs. Machines with no
// reservations — the common case for pure batch load — skip the carve-out
// walk and the clock read entirely.
func (m *Machine) availableLocked() int {
	if len(m.reservations) == 0 {
		return m.freeProcs
	}
	avail := m.freeProcs - m.reservedAtLocked(m.sim.Now())
	if avail < 0 {
		avail = 0
	}
	return avail
}

// schedule starts queued jobs: FCFS from the head, then conservative EASY
// backfill — a later job may start only if it fits now and its wall-time
// limit guarantees it finishes before the head job's shadow time (the
// earliest the head could otherwise start).
func (m *Machine) schedule() {
	if m.mode != Batch {
		return
	}
	var toLaunch []*Job
	m.mu.Lock()
	// FCFS: start head jobs while they fit.
	for len(m.queue) > 0 && m.queue[0].spec.Count <= m.availableLocked() {
		job := m.queue[0]
		m.queue = m.queue[1:]
		m.freeProcs -= job.spec.Count
		m.runningAdd(job)
		toLaunch = append(toLaunch, job)
	}
	// Backfill behind a blocked head. The scan is bounded: past
	// m.backfill candidates the pass gives up and leaves the tail queued,
	// keeping each pass O(depth) instead of O(queue) — across a draining
	// backlog that is the difference between linear and quadratic work.
	if len(m.queue) > 1 {
		now := m.sim.Now()
		shadow := m.shadowTimeLocked(m.queue[0])
		avail := m.availableLocked()
		kept := m.queue[:1]
		for i, job := range m.queue[1:] {
			if m.backfill >= 0 && i >= m.backfill {
				kept = append(kept, m.queue[1+i:]...)
				break
			}
			if job.spec.Count <= avail && now+limitOf(job) <= shadow {
				avail -= job.spec.Count
				m.freeProcs -= job.spec.Count
				m.runningAdd(job)
				toLaunch = append(toLaunch, job)
				continue
			}
			kept = append(kept, job)
		}
		m.queue = kept
	}
	m.mu.Unlock()
	for _, job := range toLaunch {
		m.launch(job)
	}
}

// runningAdd records a batch job's expected end for shadow-time
// computation, both in the ground-truth map and the incremental release
// index. Caller holds m.mu.
func (m *Machine) runningAdd(job *Job) {
	if m.running == nil {
		m.running = make(map[*Job]time.Duration)
	}
	end := m.sim.Now() + limitOf(job)
	m.running[job] = end
	m.releases.note(job, end)
}

// shadowTimeLocked computes the earliest time the given head job could
// start, assuming running jobs end at their wall-time limits. The release
// index yields expected ends in ascending order, so the walk stops as soon
// as enough capacity accumulates — no per-pass sort of the running set.
// Caller holds m.mu.
func (m *Machine) shadowTimeLocked(head *Job) time.Duration {
	avail := m.availableLocked()
	if head.spec.Count <= avail {
		return m.sim.Now()
	}
	// Cannot determine (should not happen for admissible jobs): no backfill.
	shadow := m.sim.Now() + defaultLimit
	m.ascendReleasesLocked(func(at time.Duration, procs int) bool {
		avail += procs
		if head.spec.Count <= avail {
			shadow = at
			return false
		}
		return true
	})
	return shadow
}

// QueuedJob summarizes one waiting job for information services.
type QueuedJob struct {
	Count     int           `json:"count"`
	TimeLimit time.Duration `json:"time_limit"`
}

// RunningJob summarizes one active job for information services and
// queue-wait predictors.
type RunningJob struct {
	Count     int           `json:"count"`
	Elapsed   time.Duration `json:"elapsed"`
	TimeLimit time.Duration `json:"time_limit"`
}

// QueueInfo is the scheduler state a resource manager publishes — the
// "information about the current queue contents and scheduling policy" of
// Section 2.2.
type QueueInfo struct {
	Machine        string       `json:"machine"`
	Processors     int          `json:"processors"`
	FreeProcessors int          `json:"free_processors"`
	RunningJobs    int          `json:"running_jobs"`
	Running        []RunningJob `json:"running,omitempty"`
	QueuedJobs     []QueuedJob  `json:"queued,omitempty"`
}

// QueueInfo snapshots the batch queue.
func (m *Machine) QueueInfo() QueueInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.sim.Now()
	info := QueueInfo{
		Machine:        m.name,
		Processors:     m.processors,
		FreeProcessors: m.availableLocked(),
		RunningJobs:    len(m.running),
	}
	for job := range m.running {
		info.Running = append(info.Running, RunningJob{
			Count:     job.spec.Count,
			Elapsed:   now - job.startAt,
			TimeLimit: job.spec.TimeLimit,
		})
	}
	sort.Slice(info.Running, func(i, j int) bool {
		return info.Running[i].Elapsed > info.Running[j].Elapsed
	})
	for _, j := range m.queue {
		info.QueuedJobs = append(info.QueuedJobs, QueuedJob{Count: j.spec.Count, TimeLimit: j.spec.TimeLimit})
	}
	return info
}

// EstimateWait predicts how long a newly submitted job of the given size
// would wait before starting, assuming running and queued jobs consume
// their full wall-time limits and FCFS order. This is the queue-time
// forecast a local manager can publish (Section 2.2, [9, 26]).
func (m *Machine) EstimateWait(count int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if count > m.processors {
		return defaultLimit
	}
	now := m.sim.Now()
	// Seed the simulation from the release index (already ascending;
	// clamping past-due ends to now preserves the order) into a reusable
	// scratch buffer, so a forecast allocates nothing in steady state.
	rels := m.estScratch[:0]
	m.ascendReleasesLocked(func(at time.Duration, procs int) bool {
		if at < now {
			at = now
		}
		rels = append(rels, relPoint{at: at, procs: procs})
		return true
	})
	m.estScratch = rels
	avail := m.availableLocked()
	t := now
	startOne := func(need int, limit time.Duration) time.Duration {
		sort.Slice(rels, func(i, j int) bool { return rels[i].at < rels[j].at })
		idx := 0
		for avail < need && idx < len(rels) {
			if rels[idx].at > t {
				t = rels[idx].at
			}
			avail += rels[idx].procs
			idx++
		}
		rels = rels[idx:]
		if avail < need {
			return defaultLimit // never fits
		}
		avail -= need
		rels = append(rels, relPoint{at: t + limit, procs: need})
		return t
	}
	for _, queued := range m.queue {
		startOne(queued.spec.Count, limitOf(queued))
	}
	start := startOne(count, defaultLimit)
	if start >= defaultLimit {
		return defaultLimit
	}
	return start - now
}
