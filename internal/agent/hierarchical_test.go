package agent_test

import (
	"errors"
	"testing"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/core"
	"cogrid/internal/lrm"
)

func TestHierarchicalCommitsAllGroups(t *testing.T) {
	g, ctrl := newRig(t, "a1", "a2", "b1", "b2")
	err := g.Sim.Run("agent", func() {
		groups := []core.Request{
			{Subjobs: []core.SubjobSpec{spec(g, "a1", 4), spec(g, "a2", 4)}},
			{Subjobs: []core.SubjobSpec{spec(g, "b1", 2), spec(g, "b2", 2)}},
		}
		res, err := agent.Hierarchical(ctrl, groups, 0)
		if err != nil {
			t.Errorf("Hierarchical: %v", err)
			return
		}
		if len(res.Configs) != 2 {
			t.Fatalf("%d configs", len(res.Configs))
		}
		if res.Configs[0].WorldSize != 8 || res.Configs[1].WorldSize != 4 {
			t.Errorf("world sizes = %d, %d", res.Configs[0].WorldSize, res.Configs[1].WorldSize)
		}
		if res.WorldSize() != 12 {
			t.Errorf("total world = %d", res.WorldSize())
		}
		for _, job := range res.Jobs {
			job.Done().Wait()
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestHierarchicalAbortsAllWhenOneGroupCannotCommit(t *testing.T) {
	g, ctrl := newRig(t, "a1", "b1", "dead")
	g.Machine("dead").SetDown(true)
	err := g.Sim.Run("agent", func() {
		groups := []core.Request{
			{Subjobs: []core.SubjobSpec{spec(g, "a1", 4)}},
			{Subjobs: []core.SubjobSpec{
				spec(g, "b1", 4),
				{Contact: g.Contact("dead"), Count: 4, Executable: "app", Type: core.Interactive, Label: "dead"},
			}},
		}
		res, err := agent.Hierarchical(ctrl, groups, 0)
		if !errors.Is(err, core.ErrSubjobNotReady) {
			t.Errorf("Hierarchical = %v, want ErrSubjobNotReady", err)
		}
		for _, job := range res.Jobs {
			job.Done().Wait()
			if job.Err() == "" {
				t.Error("sibling group was not aborted")
			}
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestHierarchicalRequiredFailureAbortsSiblings(t *testing.T) {
	g, ctrl := newRig(t, "a1", "dead")
	g.Machine("dead").SetDown(true)
	err := g.Sim.Run("agent", func() {
		groups := []core.Request{
			{Subjobs: []core.SubjobSpec{spec(g, "a1", 4)}},
			{Subjobs: []core.SubjobSpec{
				{Contact: g.Contact("dead"), Count: 4, Executable: "app", Type: core.Required, Label: "dead"},
			}},
		}
		_, err := agent.Hierarchical(ctrl, groups, 0)
		// The parent may observe the failed required subjob either before
		// or after the child finishes aborting itself.
		if !errors.Is(err, core.ErrAborted) && !errors.Is(err, core.ErrSubjobNotReady) {
			t.Errorf("Hierarchical = %v, want ErrAborted or ErrSubjobNotReady", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestHierarchicalTimeout(t *testing.T) {
	g, ctrl := newRig(t, "a1", "stuck")
	g.RegisterEverywhere("sleeper", func(p *lrm.Proc) error {
		return p.Work(2*time.Hour, time.Second)
	})
	err := g.Sim.Run("agent", func() {
		groups := []core.Request{
			{Subjobs: []core.SubjobSpec{spec(g, "a1", 2)}},
			{Subjobs: []core.SubjobSpec{
				{Contact: g.Contact("stuck"), Count: 2, Executable: "sleeper",
					Type: core.Required, Label: "stuck", StartupTimeout: time.Hour},
			}},
		}
		start := g.Sim.Now()
		_, err := agent.Hierarchical(ctrl, groups, 5*time.Minute)
		if !errors.Is(err, core.ErrCommitTimeout) {
			t.Errorf("Hierarchical = %v, want ErrCommitTimeout", err)
		}
		if took := g.Sim.Now() - start; took < 5*time.Minute || took > 6*time.Minute {
			t.Errorf("timed out after %v, want ~5m", took)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestHierarchicalEmptyGroups(t *testing.T) {
	g, ctrl := newRig(t, "a1")
	if _, err := agent.Hierarchical(ctrl, nil, 0); err == nil {
		t.Fatal("empty groups accepted")
	}
	_ = g.Sim.Run("noop", func() {})
}
