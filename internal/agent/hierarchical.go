package agent

import (
	"fmt"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/vtime"
)

// HierarchicalResult reports a hierarchical co-allocation: one committed
// configuration per child.
type HierarchicalResult struct {
	Configs []core.Config
	Jobs    []*core.Job
}

// WorldSize sums the children's committed processes.
func (r HierarchicalResult) WorldSize() int {
	total := 0
	for _, cfg := range r.Configs {
		total += cfg.WorldSize
	}
	return total
}

// Hierarchical runs a two-level co-allocation, the composition Section
// 3.1 says the common mechanism layer enables ("nested or hierarchical
// co-allocators"): each group is co-allocated as its own child
// transaction, and the parent commits only when every child could commit
// — so either every group starts, or none does. Children keep separate
// rank spaces and address books (each group is a collective unit, like
// the paper's subjobs on one parallel computer).
//
// Child-internal failures are handled by the children's own semantics
// (required/interactive/optional); the parent treats a child that can no
// longer commit as fatal and aborts all children.
func Hierarchical(ctrl *core.Controller, groups []core.Request, timeout time.Duration) (HierarchicalResult, error) {
	if len(groups) == 0 {
		return HierarchicalResult{}, fmt.Errorf("agent: hierarchical co-allocation with no groups")
	}
	var res HierarchicalResult
	abortAll := func(reason string) {
		for _, job := range res.Jobs {
			job.Abort(reason)
		}
	}
	for _, group := range groups {
		job, err := ctrl.Submit(group)
		if err != nil {
			abortAll("hierarchical: sibling group failed to submit")
			return res, err
		}
		res.Jobs = append(res.Jobs, job)
	}

	sim := ctrl.Sim()
	var deadline time.Duration
	if timeout > 0 {
		deadline = sim.Now() + timeout
	}
	// Parent phase one: wait until every child is ready to commit.
	for {
		allReady := true
		for _, job := range res.Jobs {
			r := job.Readiness()
			if len(r.Failed) > 0 {
				reason := fmt.Sprintf("hierarchical: child subjobs %v failed", r.Failed)
				abortAll(reason)
				return res, fmt.Errorf("%w: %s", core.ErrSubjobNotReady, reason)
			}
			if job.Err() != "" {
				abortAll("hierarchical: sibling child aborted")
				return res, fmt.Errorf("%w: child: %s", core.ErrAborted, job.Err())
			}
			if !r.Ready {
				allReady = false
			}
		}
		if allReady {
			break
		}
		if deadline > 0 && sim.Now() >= deadline {
			abortAll("hierarchical: timed out")
			return res, core.ErrCommitTimeout
		}
		waitForProgress(sim, res.Jobs, deadline)
	}
	// Parent phase two: commit every child. Children are ready, so these
	// commits release immediately; a failure racing in here kills the
	// whole hierarchy (parent-level atomicity).
	for _, job := range res.Jobs {
		cfg, err := job.Commit(commitSlice)
		if err != nil {
			abortAll("hierarchical: child failed during parent commit")
			for _, j := range res.Jobs {
				j.Kill()
			}
			return res, err
		}
		res.Configs = append(res.Configs, cfg)
	}
	return res, nil
}

// waitForProgress blocks briefly on any child's event stream so the
// parent's readiness poll is event-driven rather than a busy loop.
func waitForProgress(sim *vtime.Sim, jobs []*core.Job, deadline time.Duration) {
	wait := commitSlice
	if deadline > 0 {
		if remaining := deadline - sim.Now(); remaining < wait {
			wait = remaining
		}
	}
	if wait <= 0 {
		return
	}
	// Draining one stream suffices: every child state change pokes its
	// own stream, and the parent re-checks all children each round.
	for _, job := range jobs {
		if _, res := job.Events().RecvTimeout(wait); res != vtime.RecvTimedOut {
			return
		}
		return // only ever block on the first live stream per round
	}
	sim.Sleep(wait)
}
