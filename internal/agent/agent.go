// Package agent implements application-level co-allocation strategies on
// top of the DUROC mechanisms, demonstrating the paper's layering: the
// mechanism component provides editing, typed failure callbacks, and
// two-phase commit; agents compose them into policies.
//
// Three strategies from Section 3.2 are provided: Atomic (all-or-nothing,
// GRAB semantics expressed through DUROC), WithSubstitution (replace
// failed interactive subjobs from a pool of alternatives), and
// OverProvision (request more resources than needed and commit to the
// first K that become available, terminating the rest). SelectByForecast
// implements the Section 2.2 resource selection using published queue-wait
// forecasts of varying quality.
package agent

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"cogrid/internal/core"
	"cogrid/internal/mds"
	"cogrid/internal/predict"
	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// Result reports a strategy's outcome.
type Result struct {
	Config core.Config
	Job    *core.Job
	// Substitutions counts resources replaced along the way.
	Substitutions int
	// Deleted counts subjobs dropped (over-provision surplus or
	// unsubstitutable failures).
	Deleted int
}

// commitSlice is how long a strategy lets Commit block between servicing
// failure callbacks.
const commitSlice = time.Second

// Atomic runs an all-or-nothing co-allocation: every subjob is forced to
// required, so any failure aborts the whole request — the GRAB strategy
// expressed through DUROC mechanisms.
func Atomic(ctrl *core.Controller, req core.Request, timeout time.Duration) (Result, error) {
	for i := range req.Subjobs {
		req.Subjobs[i].Type = core.Required
	}
	job, err := ctrl.Submit(req)
	if err != nil {
		return Result{}, err
	}
	cfg, err := job.Commit(timeout)
	if err != nil {
		job.Abort("atomic strategy: " + err.Error())
		return Result{Job: job}, err
	}
	return Result{Config: cfg, Job: job}, nil
}

// SubstituteOptions configures WithSubstitution.
type SubstituteOptions struct {
	// Pool lists alternative resource manager contacts, used in order.
	Pool []transport.Addr
	// CommitTimeout bounds the whole allocation (0 = wait indefinitely).
	CommitTimeout time.Duration
	// DropUnreplaceable deletes a failed interactive subjob when the pool
	// is exhausted (proceed with reduced fidelity); otherwise the
	// allocation aborts.
	DropUnreplaceable bool
	// OnJob, if set, is called with the job as soon as submission
	// succeeds, before the strategy starts driving it. Callers use it to
	// attach external supervision (e.g. the broker's per-attempt
	// watchdog) to a job they otherwise only see after the strategy
	// returns.
	OnJob func(*core.Job)
	// Ctx is the causal span context the allocation runs under; the
	// submitted job and all its 2PC legs parent beneath it. Zero roots a
	// fresh request tree at the job id.
	Ctx trace.Ctx
}

// WithSubstitution submits the request and services interactive-failure
// callbacks by substituting resources from a pool — the paper's Section 2
// scenario (replace a crashed machine; drop a slow one). The agent runs
// single-threaded: it alternates between servicing the event stream and
// attempting to commit.
func WithSubstitution(ctrl *core.Controller, req core.Request, opts SubstituteOptions) (Result, error) {
	job, err := ctrl.SubmitCtx(req, opts.Ctx)
	if err != nil {
		return Result{}, err
	}
	if opts.OnJob != nil {
		opts.OnJob(job)
	}
	res := Result{Job: job}
	sim := ctrl.Sim()
	var deadline time.Duration
	if opts.CommitTimeout > 0 {
		deadline = sim.Now() + opts.CommitTimeout
	}
	poolNext := 0
	for {
		if job.Readiness().Ready {
			cfg, err := job.Commit(commitSlice)
			if err == nil {
				res.Config = cfg
				return res, nil
			}
			if errors.Is(err, core.ErrAborted) {
				return res, err
			}
			// A failure raced the commit; fall through and service it.
		}
		wait := commitSlice
		if deadline > 0 {
			remaining := deadline - sim.Now()
			if remaining <= 0 {
				job.Abort("substitution strategy: timed out")
				return res, core.ErrCommitTimeout
			}
			if remaining < wait {
				wait = remaining
			}
		}
		ev, recvRes := job.Events().RecvTimeout(wait)
		switch recvRes {
		case vtime.RecvClosed:
			return res, fmt.Errorf("%w: %s", core.ErrAborted, job.Err())
		case vtime.RecvTimedOut:
			continue
		}
		if ev.Kind != core.EvSubjobFailed || ev.Type != core.Interactive {
			continue
		}
		if poolNext < len(opts.Pool) {
			alt := opts.Pool[poolNext]
			poolNext++
			var spec core.SubjobSpec
			for _, info := range job.Status() {
				if info.Spec.Label == ev.Label {
					spec = info.Spec
					break
				}
			}
			spec.Contact = alt
			spec.Label = fmt.Sprintf("%s~%d", ev.Label, poolNext)
			if err := job.Substitute(ev.Label, spec); err != nil {
				job.Abort("substitution strategy: " + err.Error())
				return res, err
			}
			res.Substitutions++
			continue
		}
		if opts.DropUnreplaceable {
			if err := job.Delete(ev.Label); err == nil {
				res.Deleted++
			}
			continue
		}
		job.Abort(fmt.Sprintf("subjob %q failed and the substitution pool is exhausted", ev.Label))
		return res, fmt.Errorf("%w: pool exhausted after subjob %q failed", core.ErrSubjobNotReady, ev.Label)
	}
}

// OverProvisionOptions configures OverProvision.
type OverProvisionOptions struct {
	// Needed is the number of worker subjobs that must commit.
	Needed int
	// CommitTimeout bounds the allocation (0 = wait indefinitely).
	CommitTimeout time.Duration
}

// OverProvision implements the Section 3.2 strategy of requesting several
// alternative resources simultaneously and committing to the first that
// become available: all subjobs are submitted as interactive; once Needed
// of them have checked in, the remainder are deleted ("terminate subjobs
// that have not yet responded to the request prior to committing") and
// the configuration commits.
func OverProvision(ctrl *core.Controller, req core.Request, opts OverProvisionOptions) (Result, error) {
	if opts.Needed <= 0 || opts.Needed > len(req.Subjobs) {
		return Result{}, fmt.Errorf("agent: need %d of %d subjobs", opts.Needed, len(req.Subjobs))
	}
	for i := range req.Subjobs {
		req.Subjobs[i].Type = core.Interactive
	}
	job, err := ctrl.Submit(req)
	if err != nil {
		return Result{}, err
	}
	res := Result{Job: job}
	sim := ctrl.Sim()
	var deadline time.Duration
	if opts.CommitTimeout > 0 {
		deadline = sim.Now() + opts.CommitTimeout
	}
	checkedIn := make(map[string]bool)
	failed := make(map[string]bool)
	for len(checkedIn) < opts.Needed {
		wait := time.Hour
		if deadline > 0 {
			wait = deadline - sim.Now()
			if wait <= 0 {
				job.Abort("over-provision: timed out")
				return res, core.ErrCommitTimeout
			}
		}
		ev, recvRes := job.Events().RecvTimeout(wait)
		switch recvRes {
		case vtime.RecvClosed:
			return res, fmt.Errorf("%w: %s", core.ErrAborted, job.Err())
		case vtime.RecvTimedOut:
			continue
		}
		switch ev.Kind {
		case core.EvCheckedIn:
			checkedIn[ev.Label] = true
		case core.EvSubjobFailed:
			failed[ev.Label] = true
			if len(req.Subjobs)-len(failed) < opts.Needed {
				job.Abort("over-provision: too many failures")
				return res, fmt.Errorf("%w: only %d candidates remain, need %d",
					core.ErrSubjobNotReady, len(req.Subjobs)-len(failed), opts.Needed)
			}
		}
	}
	// Terminate every subjob not in the chosen set.
	for _, info := range job.Status() {
		if checkedIn[info.Spec.Label] || info.Status == core.SJDeleted {
			continue
		}
		if err := job.Delete(info.Spec.Label); err == nil {
			res.Deleted++
		}
	}
	timeout := opts.CommitTimeout
	if timeout == 0 {
		timeout = time.Hour
	}
	cfg, err := job.Commit(timeout)
	if err != nil {
		job.Abort("over-provision: " + err.Error())
		return res, err
	}
	res.Config = cfg
	return res, nil
}

// SelectByForecast orders candidate records by their published queue-wait
// forecast for jobs of the given size, perturbed by multiplicative
// log-normal noise of the given sigma (0 = trust the forecasts exactly),
// and returns the best k. Records without a forecast for the size sort
// last.
func SelectByForecast(records []mds.Record, count, k int, sigma float64, gauss func() float64) []mds.Record {
	type scored struct {
		rec  mds.Record
		wait time.Duration
	}
	scoredRecs := make([]scored, 0, len(records))
	for _, rec := range records {
		wait, ok := rec.ForecastWait[count]
		if !ok {
			wait = 365 * 24 * time.Hour
		}
		scoredRecs = append(scoredRecs, scored{rec: rec, wait: predict.Noisy(wait, sigma, gauss)})
	}
	sort.SliceStable(scoredRecs, func(i, j int) bool { return scoredRecs[i].wait < scoredRecs[j].wait })
	if k > len(scoredRecs) {
		k = len(scoredRecs)
	}
	out := make([]mds.Record, k)
	for i := 0; i < k; i++ {
		out[i] = scoredRecs[i].rec
	}
	return out
}
