package agent_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"cogrid/internal/agent"
	"cogrid/internal/core"
	"cogrid/internal/grid"
	"cogrid/internal/lrm"
	"cogrid/internal/mds"
	"cogrid/internal/transport"
)

func newRig(t *testing.T, machines ...string) (*grid.Grid, *core.Controller) {
	t.Helper()
	g := grid.New(grid.Options{})
	for _, name := range machines {
		g.AddMachine(name, 64, lrm.Fork)
	}
	g.RegisterEverywhere("app", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(time.Second, time.Second)
	})
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return g, ctrl
}

func spec(g *grid.Grid, machine string, count int) core.SubjobSpec {
	return core.SubjobSpec{
		Contact:    g.Contact(machine),
		Count:      count,
		Executable: "app",
		Label:      machine,
	}
}

func TestAtomicStrategySucceeds(t *testing.T) {
	g, ctrl := newRig(t, "m1", "m2")
	err := g.Sim.Run("agent", func() {
		res, err := agent.Atomic(ctrl, core.Request{Subjobs: []core.SubjobSpec{
			spec(g, "m1", 4), spec(g, "m2", 4),
		}}, 0)
		if err != nil {
			t.Errorf("Atomic: %v", err)
			return
		}
		if res.Config.WorldSize != 8 {
			t.Errorf("world size = %d", res.Config.WorldSize)
		}
		res.Job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestAtomicStrategyFailsOnAnyFailure(t *testing.T) {
	g, ctrl := newRig(t, "m1", "dead")
	g.Machine("dead").SetDown(true)
	err := g.Sim.Run("agent", func() {
		// Even marked interactive, Atomic forces required semantics.
		req := core.Request{Subjobs: []core.SubjobSpec{
			spec(g, "m1", 4),
			{Contact: g.Contact("dead"), Count: 4, Executable: "app", Type: core.Interactive, Label: "dead"},
		}}
		_, err := agent.Atomic(ctrl, req, 0)
		if !errors.Is(err, core.ErrAborted) {
			t.Errorf("Atomic = %v, want ErrAborted", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSubstitutionReplacesFailures(t *testing.T) {
	g, ctrl := newRig(t, "m1", "bad1", "bad2", "spare1", "spare2")
	g.Machine("bad1").SetDown(true)
	g.Machine("bad2").SetDown(true)
	err := g.Sim.Run("agent", func() {
		req := core.Request{Subjobs: []core.SubjobSpec{
			{Contact: g.Contact("m1"), Count: 4, Executable: "app", Type: core.Required, Label: "m1"},
			{Contact: g.Contact("bad1"), Count: 4, Executable: "app", Type: core.Interactive, Label: "bad1"},
			{Contact: g.Contact("bad2"), Count: 4, Executable: "app", Type: core.Interactive, Label: "bad2"},
		}}
		res, err := agent.WithSubstitution(ctrl, req, agent.SubstituteOptions{
			Pool: []transport.Addr{g.Contact("spare1"), g.Contact("spare2")},
		})
		if err != nil {
			t.Errorf("WithSubstitution: %v", err)
			return
		}
		if res.Substitutions != 2 {
			t.Errorf("substitutions = %d, want 2", res.Substitutions)
		}
		if res.Config.WorldSize != 12 {
			t.Errorf("world size = %d, want 12", res.Config.WorldSize)
		}
		res.Job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSubstitutionDropsWhenPoolExhausted(t *testing.T) {
	g, ctrl := newRig(t, "m1", "bad1")
	g.Machine("bad1").SetDown(true)
	err := g.Sim.Run("agent", func() {
		req := core.Request{Subjobs: []core.SubjobSpec{
			{Contact: g.Contact("m1"), Count: 4, Executable: "app", Type: core.Required, Label: "m1"},
			{Contact: g.Contact("bad1"), Count: 4, Executable: "app", Type: core.Interactive, Label: "bad1"},
		}}
		res, err := agent.WithSubstitution(ctrl, req, agent.SubstituteOptions{
			DropUnreplaceable: true,
		})
		if err != nil {
			t.Errorf("WithSubstitution: %v", err)
			return
		}
		if res.Deleted != 1 {
			t.Errorf("deleted = %d, want 1", res.Deleted)
		}
		if res.Config.WorldSize != 4 {
			t.Errorf("world size = %d, want 4 (reduced fidelity)", res.Config.WorldSize)
		}
		res.Job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSubstitutionAbortsWhenPoolExhaustedAndStrict(t *testing.T) {
	g, ctrl := newRig(t, "m1", "bad1")
	g.Machine("bad1").SetDown(true)
	err := g.Sim.Run("agent", func() {
		req := core.Request{Subjobs: []core.SubjobSpec{
			{Contact: g.Contact("m1"), Count: 4, Executable: "app", Type: core.Required, Label: "m1"},
			{Contact: g.Contact("bad1"), Count: 4, Executable: "app", Type: core.Interactive, Label: "bad1"},
		}}
		_, err := agent.WithSubstitution(ctrl, req, agent.SubstituteOptions{})
		if !errors.Is(err, core.ErrSubjobNotReady) {
			t.Errorf("WithSubstitution = %v, want ErrSubjobNotReady", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestSubstitutionTimesOut(t *testing.T) {
	g, ctrl := newRig(t, "m1", "stuck")
	g.RegisterEverywhere("sleeper", func(p *lrm.Proc) error {
		return p.Work(2*time.Hour, time.Second)
	})
	err := g.Sim.Run("agent", func() {
		req := core.Request{Subjobs: []core.SubjobSpec{
			{Contact: g.Contact("m1"), Count: 2, Executable: "app", Type: core.Required, Label: "m1"},
			{Contact: g.Contact("stuck"), Count: 2, Executable: "sleeper", Type: core.Interactive,
				Label: "stuck", StartupTimeout: time.Hour},
		}}
		start := g.Sim.Now()
		_, err := agent.WithSubstitution(ctrl, req, agent.SubstituteOptions{
			CommitTimeout: 3 * time.Minute,
		})
		if !errors.Is(err, core.ErrCommitTimeout) {
			t.Errorf("WithSubstitution = %v, want ErrCommitTimeout", err)
		}
		if took := g.Sim.Now() - start; took < 3*time.Minute || took > 4*time.Minute {
			t.Errorf("timed out after %v, want ~3m", took)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestOverProvisionCommitsFirstK(t *testing.T) {
	g, ctrl := newRig(t, "w1", "w2", "w3", "w4", "w5")
	// Two machines are slower: they check in later and must be the ones
	// terminated before commit.
	g.Machine("w4").SetSlowFactor(20)
	g.Machine("w5").SetSlowFactor(20)
	err := g.Sim.Run("agent", func() {
		req := core.Request{Subjobs: []core.SubjobSpec{
			spec(g, "w1", 4), spec(g, "w2", 4), spec(g, "w3", 4), spec(g, "w4", 4), spec(g, "w5", 4),
		}}
		res, err := agent.OverProvision(ctrl, req, agent.OverProvisionOptions{Needed: 3})
		if err != nil {
			t.Errorf("OverProvision: %v", err)
			return
		}
		if res.Config.NSubjobs != 3 || res.Config.WorldSize != 12 {
			t.Errorf("config = %+v, want 3 subjobs / 12 procs", res.Config)
		}
		if res.Deleted != 2 {
			t.Errorf("deleted = %d, want 2", res.Deleted)
		}
		for _, label := range res.Config.SubjobLabels {
			if label == "w4" || label == "w5" {
				t.Errorf("slow machine %s committed", label)
			}
		}
		res.Job.Done().Wait()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// TestOverProvisionCancelsSurplusAtLRM pins down that the losing subjobs
// are actually terminated at their resource managers — processors
// released, nothing left running or queued — not merely dropped from the
// DUROC job's bookkeeping. A leak here would quietly hold every
// over-provisioned machine for the full run time. Batch machines are used
// because their LRMs account processors and running jobs observably.
func TestOverProvisionCancelsSurplusAtLRM(t *testing.T) {
	g := grid.New(grid.Options{})
	for _, name := range []string{"w1", "w2", "w3", "w4", "w5"} {
		g.AddMachine(name, 64, lrm.Batch)
	}
	g.Machine("w4").SetSlowFactor(20)
	g.Machine("w5").SetSlowFactor(20)
	// A long-running app keeps the winners visibly holding processors
	// while the losers' cancellations are verified.
	g.RegisterEverywhere("holder", func(p *lrm.Proc) error {
		rt, err := core.Attach(p)
		if err != nil {
			return err
		}
		defer rt.Close()
		if _, err := rt.Barrier(true, "", 0); err != nil {
			return nil
		}
		return p.Work(10*time.Minute, time.Second)
	})
	ctrl, err := core.NewController(g.Workstation, core.ControllerConfig{
		Credential: g.UserCred,
		Registry:   g.Registry,
	})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	simErr := g.Sim.Run("agent", func() {
		var req core.Request
		for _, name := range []string{"w1", "w2", "w3", "w4", "w5"} {
			req.Subjobs = append(req.Subjobs, core.SubjobSpec{
				Contact: g.Contact(name), Count: 4, Executable: "holder", Label: name,
			})
		}
		res, err := agent.OverProvision(ctrl, req, agent.OverProvisionOptions{Needed: 3})
		if err != nil {
			t.Errorf("OverProvision: %v", err)
			return
		}
		if res.Deleted != 2 {
			t.Errorf("deleted = %d, want 2", res.Deleted)
		}
		committed := make(map[string]bool)
		for _, label := range res.Config.SubjobLabels {
			committed[label] = true
		}
		// The winners are mid-barrier-release right now: still holding
		// their processors.
		for name := range committed {
			info := g.Machine(name).QueueInfo()
			if info.RunningJobs == 0 || info.FreeProcessors == info.Processors {
				t.Errorf("%s: committed subjob not running at its LRM: %+v", name, info)
			}
		}
		// Give the cancellations a moment to propagate through GRAM to
		// the losing machines, then inspect their LRMs directly.
		g.Sim.Sleep(time.Minute)
		for _, name := range []string{"w1", "w2", "w3", "w4", "w5"} {
			if committed[name] {
				continue
			}
			info := g.Machine(name).QueueInfo()
			if info.RunningJobs != 0 || len(info.QueuedJobs) != 0 {
				t.Errorf("%s: surplus subjob leaked at the LRM: %d running, %d queued",
					name, info.RunningJobs, len(info.QueuedJobs))
			}
			if info.FreeProcessors != info.Processors {
				t.Errorf("%s: %d of %d processors still held after cancellation",
					name, info.Processors-info.FreeProcessors, info.Processors)
			}
		}
		res.Job.Done().Wait()
	})
	if simErr != nil {
		t.Fatalf("sim: %v", simErr)
	}
}

func TestOverProvisionFailsWhenTooFewSurvive(t *testing.T) {
	g, ctrl := newRig(t, "w1", "w2", "w3")
	g.Machine("w2").SetDown(true)
	g.Machine("w3").SetDown(true)
	err := g.Sim.Run("agent", func() {
		req := core.Request{Subjobs: []core.SubjobSpec{
			spec(g, "w1", 4), spec(g, "w2", 4), spec(g, "w3", 4),
		}}
		_, err := agent.OverProvision(ctrl, req, agent.OverProvisionOptions{Needed: 2})
		if !errors.Is(err, core.ErrSubjobNotReady) {
			t.Errorf("OverProvision = %v, want ErrSubjobNotReady", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestOverProvisionValidation(t *testing.T) {
	g, ctrl := newRig(t, "w1")
	req := core.Request{Subjobs: []core.SubjobSpec{spec(g, "w1", 4)}}
	if _, err := agent.OverProvision(ctrl, req, agent.OverProvisionOptions{Needed: 2}); err == nil {
		t.Error("Needed > len(subjobs) accepted")
	}
	if _, err := agent.OverProvision(ctrl, req, agent.OverProvisionOptions{Needed: 0}); err == nil {
		t.Error("Needed 0 accepted")
	}
	_ = g.Sim.Run("noop", func() {})
}

func TestSelectByForecast(t *testing.T) {
	records := []mds.Record{
		{Name: "slowq", ForecastWait: map[int]time.Duration{16: time.Hour}},
		{Name: "fastq", ForecastWait: map[int]time.Duration{16: time.Minute}},
		{Name: "midq", ForecastWait: map[int]time.Duration{16: 10 * time.Minute}},
		{Name: "noinfo"},
	}
	rng := rand.New(rand.NewSource(1))
	// Perfect forecasts: order fastq, midq.
	got := agent.SelectByForecast(records, 16, 2, 0, rng.NormFloat64)
	if len(got) != 2 || got[0].Name != "fastq" || got[1].Name != "midq" {
		t.Fatalf("perfect selection = %v", names(got))
	}
	// k larger than pool clips.
	all := agent.SelectByForecast(records, 16, 10, 0, rng.NormFloat64)
	if len(all) != 4 {
		t.Fatalf("clipped selection = %d records", len(all))
	}
	if all[3].Name != "noinfo" {
		t.Errorf("record without forecast should sort last, got %v", names(all))
	}
	// Heavy noise: with many trials, the perfect order must sometimes be
	// violated, otherwise the noise parameter does nothing.
	violated := false
	for i := 0; i < 50 && !violated; i++ {
		noisy := agent.SelectByForecast(records, 16, 2, 3.0, rng.NormFloat64)
		if noisy[0].Name != "fastq" {
			violated = true
		}
	}
	if !violated {
		t.Error("sigma 3.0 never changed the selection in 50 trials")
	}
}

func names(recs []mds.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Name
	}
	return out
}
