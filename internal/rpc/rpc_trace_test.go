package rpc

import (
	"testing"
	"time"

	"cogrid/internal/trace"
	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

// newTracedPair is newPair with a tracer and counter registry attached.
func newTracedPair(t *testing.T) (*vtime.Sim, *trace.Tracer, *trace.Counters, *transport.Host, *transport.Host) {
	t.Helper()
	sim := vtime.New()
	net := transport.New(sim, transport.UniformLatency(time.Millisecond))
	tr := trace.New(sim)
	ctrs := trace.NewCounters()
	net.SetTracer(tr)
	net.SetCounters(ctrs)
	return sim, tr, ctrs, net.AddHost("a"), net.AddHost("b")
}

// A timed-out call must (a) leave no entry behind in the pending table and
// (b) surface the late reply as a dropped-reply trace event correlated with
// the call span by ID, so a trace reader can pair them up.
func TestTimedOutCallCorrelatesLateReplyAsDropped(t *testing.T) {
	sim, tr, ctrs, a, b := newTracedPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		// Handler sleeps 5 s, call allows 1 s: guaranteed timeout, with the
		// reply still in flight afterwards.
		if err := c.Call("echo", echoArgs{Text: "slow", Delay: 5000}, nil, time.Second); err != ErrTimeout {
			t.Errorf("Call = %v, want ErrTimeout", err)
		}
		sim.Sleep(10 * time.Second) // let the late reply arrive and be dropped
		c.mu.Lock()
		leaked := len(c.pending)
		c.mu.Unlock()
		if leaked != 0 {
			t.Errorf("pending table has %d entries after timeout, want 0", leaked)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}

	var callID string
	for _, ev := range tr.Events() {
		if ev.Cat == "rpc" && ev.Name == "call:echo" {
			callID = ev.ID
			for _, arg := range ev.Args {
				if arg.Key == "outcome" && arg.Val != "timeout" {
					t.Errorf("call:echo outcome = %q, want timeout", arg.Val)
				}
			}
		}
	}
	if callID == "" {
		t.Fatal("no call:echo span in trace")
	}
	found := false
	for _, ev := range tr.Events() {
		if ev.Cat == "rpc" && ev.Name == "dropped-reply" {
			found = true
			if ev.ID != callID {
				t.Errorf("dropped-reply ID = %q, want %q (the timed-out call)", ev.ID, callID)
			}
		}
	}
	if !found {
		t.Error("late reply produced no dropped-reply event")
	}
	if got := ctrs.Get(trace.Key("rpc", "reply", "drop", "a")); got != 1 {
		t.Errorf("rpc.reply.drop@a = %d, want 1", got)
	}
	if got := ctrs.Get(trace.Key("rpc", "call", "timeout", "a")); got != 1 {
		t.Errorf("rpc.call.timeout@a = %d, want 1", got)
	}
}

// A call that times out and is retried under the same span context must
// keep the whole exchange — both call attempts, both server handlers, and
// the late dropped reply of the first attempt — attributed to the one
// request id, with each attempt on its own span path so a causal tree
// keeps them apart.
func TestRetriedCallKeepsRequestID(t *testing.T) {
	sim, tr, _, a, b := newTracedPair(t)
	startEcho(t, sim, b)
	ctx := trace.NewRequest("retry-req")
	err := sim.Run("client", func() {
		conn, err := a.DialCtx(transport.Addr{Host: "b", Service: "echo"}, ctx)
		if err != nil {
			t.Errorf("DialCtx: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		// First attempt: handler sleeps 5 s, call allows 1 s — the reply is
		// dropped in flight.
		if err := c.CallCtx(ctx, "echo", echoArgs{Text: "slow", Delay: 5000}, nil, time.Second); err != ErrTimeout {
			t.Errorf("first call = %v, want ErrTimeout", err)
		}
		// Retry under the same request context succeeds.
		var reply echoReply
		if err := c.CallCtx(ctx, "echo", echoArgs{Text: "again"}, &reply, time.Minute); err != nil {
			t.Errorf("retry: %v", err)
		}
		sim.Sleep(10 * time.Second) // let the first attempt's late reply arrive and be dropped
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}

	// Every event of the exchange — transport hops included — must carry
	// the request id: the retry may not start a second tree.
	var calls, serves, dropped []trace.Event
	for _, ev := range tr.Events() {
		if ev.Req != "retry-req" {
			t.Errorf("event %s/%s has req %q, want retry-req", ev.Cat, ev.Name, ev.Req)
		}
		switch {
		case ev.Cat == "rpc" && ev.Name == "call:echo":
			calls = append(calls, ev)
		case ev.Cat == "rpc" && ev.Name == "serve:echo":
			serves = append(serves, ev)
		case ev.Cat == "rpc" && ev.Name == "dropped-reply":
			dropped = append(dropped, ev)
		}
	}
	if len(calls) != 2 || len(serves) != 2 || len(dropped) != 1 {
		t.Fatalf("spans: %d calls, %d serves, %d dropped-replies; want 2, 2, 1",
			len(calls), len(serves), len(dropped))
	}
	if calls[0].Span == calls[1].Span {
		t.Errorf("both call attempts share span path %q; retries must get distinct paths", calls[0].Span)
	}
	a2 := trace.Analyze(tr.Events())
	if len(a2.Trees) != 1 || a2.Trees[0].Req != "retry-req" {
		t.Fatalf("analysis built %d trees, want 1 for retry-req", len(a2.Trees))
	}
	if cov := a2.Coverage(); cov != 1 {
		t.Errorf("coverage = %v, want 1", cov)
	}
}

// Client call and server handler spans of one RPC share a correlation ID.
func TestCallAndServeSpansShareCorrelationID(t *testing.T) {
	sim, tr, _, a, b := newTracedPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		var reply echoReply
		if err := c.Call("echo", echoArgs{Text: "hi"}, &reply, time.Minute); err != nil {
			t.Errorf("Call: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	var callID, serveID string
	for _, ev := range tr.Events() {
		switch {
		case ev.Name == "call:echo":
			callID = ev.ID
			if ev.Proc != "a" {
				t.Errorf("call:echo proc = %q, want a", ev.Proc)
			}
		case ev.Name == "serve:echo":
			serveID = ev.ID
			if ev.Proc != "b" {
				t.Errorf("serve:echo proc = %q, want b", ev.Proc)
			}
		}
	}
	if callID == "" || serveID == "" {
		t.Fatalf("missing spans: call=%q serve=%q", callID, serveID)
	}
	if callID != serveID {
		t.Errorf("correlation mismatch: call=%q serve=%q", callID, serveID)
	}
}
