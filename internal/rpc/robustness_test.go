package rpc

import (
	"encoding/json"
	"testing"
	"time"

	"cogrid/internal/transport"
	"cogrid/internal/vtime"
)

func TestMalformedFramesIgnored(t *testing.T) {
	sim, a, b := newPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		// Splice garbage onto the wire before real traffic.
		conn.Send([]byte("not json at all"))
		conn.Send([]byte(`{"kind": 42}`))
		conn.Send([]byte(`{"kind":"call"}`)) // no method: handler errors, reply dropped by client (no id)
		c := NewClient(sim, conn)
		var reply echoReply
		if err := c.Call("echo", echoArgs{Text: "still works"}, &reply, time.Minute); err != nil {
			t.Errorf("Call after garbage: %v", err)
			return
		}
		if reply.Text != "still works" {
			t.Errorf("reply = %q", reply.Text)
		}
		c.Close()
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestCallAfterCloseFails(t *testing.T) {
	sim, a, b := newPair(t)
	startEcho(t, sim, b)
	err := sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "echo"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		c.Close()
		sim.Sleep(10 * time.Millisecond) // let the demux observe the close
		if err := c.Call("echo", echoArgs{Text: "x"}, nil, time.Minute); err != ErrClosed {
			t.Errorf("Call after Close = %v, want ErrClosed", err)
		}
		if err := c.Notify("poke", nil); err != ErrClosed {
			t.Errorf("Notify after Close = %v, want ErrClosed", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestUnknownMethodViaHandlerFuncsNil(t *testing.T) {
	sim, a, b := newPair(t)
	l, err := b.Listen("empty")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	Serve(sim, l, HandlerFuncs{}, nil) // no Call func at all
	err = sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "empty"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		err = c.Call("anything", nil, nil, time.Minute)
		if _, ok := err.(RemoteError); !ok {
			t.Errorf("Call = %v, want RemoteError", err)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestServerPushAfterClientGoneIsHarmless(t *testing.T) {
	sim, a, b := newPair(t)
	l, err := b.Listen("pusher")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	pushed := vtime.NewChan[error](sim, "pushed", 1)
	Serve(sim, l, HandlerFuncs{
		NotifyFunc: func(sc *ServerConn, method string, body json.RawMessage) {
			// Reply long after the client hung up.
			sim.Sleep(5 * time.Second)
			pushed.Send(sc.Notify("late", nil))
		},
	}, nil)
	err = sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "pusher"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		c.Notify("poke", nil)
		sim.Sleep(time.Second)
		c.Close()
		// The server's late push must not panic or wedge anything; it may
		// error or be dropped.
		if _, res := pushed.RecvTimeout(time.Minute); res != vtime.RecvOK {
			t.Errorf("server never finished its late push: %v", res)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestNotificationBufferOverflowDropsNotBlocks(t *testing.T) {
	sim, a, b := newPair(t)
	l, err := b.Listen("flood")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	Serve(sim, l, HandlerFuncs{
		NotifyFunc: func(sc *ServerConn, method string, body json.RawMessage) {
			for i := 0; i < 1000; i++ { // past the client's 256 buffer
				sc.Notify("spam", nil)
			}
		},
	}, nil)
	err = sim.Run("client", func() {
		conn, err := a.Dial(transport.Addr{Host: "b", Service: "flood"})
		if err != nil {
			t.Errorf("Dial: %v", err)
			return
		}
		c := NewClient(sim, conn)
		defer c.Close()
		c.Notify("go", nil)
		sim.Sleep(time.Second)
		// The client is alive despite the flood; drain what was kept.
		kept := 0
		for {
			if _, ok := c.Notifications().TryRecv(); !ok {
				break
			}
			kept++
		}
		if kept == 0 || kept > 256 {
			t.Errorf("kept %d notifications, want (0,256]", kept)
		}
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
}
